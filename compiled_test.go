package llstar_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"llstar"
)

// predSrc hoists semantic predicates into the lookahead DFA (paper
// Section 3.2): both alternatives start with ID, so prediction must
// evaluate {isType()}?/{isVar()}? to resolve — exercising the PredSem
// edge kind through serialization.
const predSrc = `
grammar Pred;
s : {isType()}? ID ID ';'
  | {isVar()}? ID '=' INT ';'
  ;
ID : ('a'..'z')+ ;
INT : ('0'..'9')+ ;
WS : (' ')+ { skip(); } ;
`

// collectingTracer records every event for assertions.
type collectingTracer struct {
	mu     sync.Mutex
	epoch  time.Time
	events []llstar.TraceEvent
}

func newCollectingTracer() *collectingTracer {
	return &collectingTracer{epoch: time.Now()}
}

func (c *collectingTracer) Emit(ev llstar.TraceEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ev)
}

func (c *collectingTracer) Now() time.Duration { return time.Since(c.epoch) }

func (c *collectingTracer) count(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ev := range c.events {
		if ev.Name == name {
			n++
		}
	}
	return n
}

// TestCacheColdThenWarm is the acceptance criterion for the persistent
// cache: the first CacheDir load analyzes live and stores the artifact;
// the second serves the artifact, increments the hit counter, and emits
// zero per-decision subset-construction spans — subset construction is
// skipped entirely.
func TestCacheColdThenWarm(t *testing.T) {
	dir := t.TempDir()

	coldTr, coldM := newCollectingTracer(), llstar.NewMetrics()
	cold, err := llstar.LoadWith("fig2.g", fig2Src, llstar.LoadOptions{
		CacheDir: dir, Tracer: coldTr, Metrics: coldM,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cold.LoadedFromCache() {
		t.Error("cold load claims to have come from the cache")
	}
	if got := coldM.Counter("llstar_cache_misses_total").Value(); got != 1 {
		t.Errorf("cold load: misses = %d, want 1", got)
	}
	if got := coldM.Counter("llstar_cache_hits_total").Value(); got != 0 {
		t.Errorf("cold load: hits = %d, want 0", got)
	}
	if coldTr.count("dfa.construct") == 0 {
		t.Error("cold load emitted no dfa.construct spans")
	}
	if coldTr.count("cache.store") != 1 {
		t.Error("cold load did not emit a cache.store span")
	}
	if coldM.Gauge("llstar_cache_bytes").Value() <= 0 {
		t.Error("cold load did not record cache size")
	}

	warmTr, warmM := newCollectingTracer(), llstar.NewMetrics()
	warm, err := llstar.LoadWith("fig2.g", fig2Src, llstar.LoadOptions{
		CacheDir: dir, Tracer: warmTr, Metrics: warmM,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.LoadedFromCache() {
		t.Error("warm load did not come from the cache")
	}
	if got := warmM.Counter("llstar_cache_hits_total").Value(); got != 1 {
		t.Errorf("warm load: hits = %d, want 1", got)
	}
	if got := warmM.Counter("llstar_cache_misses_total").Value(); got != 0 {
		t.Errorf("warm load: misses = %d, want 0", got)
	}
	if n := warmTr.count("dfa.construct"); n != 0 {
		t.Errorf("warm load ran subset construction: %d dfa.construct spans, want 0", n)
	}
	if warmTr.count("cache.load") != 1 {
		t.Error("warm load did not emit a cache.load span")
	}

	if cd, wd := cold.AnalysisDigest(), warm.AnalysisDigest(); cd != wd {
		t.Errorf("cold and warm grammars diverge: %s vs %s", cd, wd)
	}
	if cold.Fingerprint() != warm.Fingerprint() {
		t.Error("cold and warm grammars have different cache keys")
	}

	// The warm grammar must parse exactly like the cold one.
	for _, input := range []string{"- - 5 !", "7 ;", "- 1 ;"} {
		ct, cerr := cold.NewParser(llstar.WithTree()).Parse("t", input)
		wt, werr := warm.NewParser(llstar.WithTree()).Parse("t", input)
		if (cerr == nil) != (werr == nil) {
			t.Fatalf("%q: cold/warm disagree: %v vs %v", input, cerr, werr)
		}
		if cerr == nil && ct.String() != wt.String() {
			t.Errorf("%q: cold and warm parsers build different trees", input)
		}
	}
}

// TestCacheKeySensitivity: analysis-relevant options must change the
// cache key; observability options must not.
func TestCacheKeySensitivity(t *testing.T) {
	base, err := llstar.LoadWith("fig2.g", fig2Src, llstar.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	same, err := llstar.LoadWith("fig2.g", fig2Src, llstar.LoadOptions{
		AnalysisWorkers: 8, Metrics: llstar.NewMetrics(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint() != same.Fingerprint() {
		t.Error("worker count / metrics changed the cache key; analysis output does not depend on them")
	}
	diff, err := llstar.LoadWith("fig2.g", fig2Src, llstar.LoadOptions{MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint() == diff.Fingerprint() {
		t.Error("MaxK did not change the cache key; different analyses would collide")
	}
}

// TestCacheCorruptionFallThrough flips a byte in the stored artifact;
// the next load must detect the damage, fall through to live analysis,
// and heal the entry so the load after that hits again.
func TestCacheCorruptionFallThrough(t *testing.T) {
	dir := t.TempDir()
	opts := func(m *llstar.Metrics) llstar.LoadOptions {
		return llstar.LoadOptions{CacheDir: dir, Metrics: m}
	}
	if _, err := llstar.LoadWith("fig2.g", fig2Src, opts(nil)); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.llsc"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want exactly one cache entry, got %v (%v)", entries, err)
	}
	data, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(entries[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	m := llstar.NewMetrics()
	g, err := llstar.LoadWith("fig2.g", fig2Src, opts(m))
	if err != nil {
		t.Fatalf("corrupt cache entry must fall through to live analysis, got: %v", err)
	}
	if g.LoadedFromCache() {
		t.Error("grammar claims to come from a corrupt cache entry")
	}
	if got := m.Counter("llstar_cache_misses_total").Value(); got != 1 {
		t.Errorf("corrupt entry: misses = %d, want 1", got)
	}

	m2 := llstar.NewMetrics()
	g2, err := llstar.LoadWith("fig2.g", fig2Src, opts(m2))
	if err != nil {
		t.Fatal(err)
	}
	if !g2.LoadedFromCache() || m2.Counter("llstar_cache_hits_total").Value() != 1 {
		t.Error("cache entry was not healed after corruption fall-through")
	}
}

// TestCacheEviction: a byte cap small enough for one artifact must
// evict the older entry when a second grammar is stored, and count the
// eviction.
func TestCacheEviction(t *testing.T) {
	dir := t.TempDir()
	g1, err := llstar.LoadWith("fig2.g", fig2Src, llstar.LoadOptions{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	size, err := os.Stat(filepath.Join(dir, g1.Fingerprint()+".llsc"))
	if err != nil {
		t.Fatal(err)
	}

	// Cap below two artifacts: storing the predicate grammar must evict
	// fig2. (Both artifacts are a few KB; the cap leaves room for the
	// newer one only.)
	m := llstar.NewMetrics()
	g2, err := llstar.LoadWith("pred.g", predSrc, llstar.LoadOptions{
		CacheDir: dir, CacheMaxBytes: size.Size() + 1, Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("llstar_cache_evictions_total").Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, g1.Fingerprint()+".llsc")); !os.IsNotExist(err) {
		t.Error("older entry survived eviction")
	}
	if _, err := os.Stat(filepath.Join(dir, g2.Fingerprint()+".llsc")); err != nil {
		t.Error("just-written entry was evicted")
	}
}

// TestCacheDirUnusable: a cache rooted somewhere unwritable must not
// break loading — the worst outcome of a broken cache is a cold load.
func TestCacheDirUnusable(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := llstar.LoadWith("fig2.g", fig2Src, llstar.LoadOptions{
		CacheDir: filepath.Join(file, "cache"),
	})
	if err != nil {
		t.Fatalf("unusable cache dir must degrade to a live load, got: %v", err)
	}
	if g.LoadedFromCache() {
		t.Error("grammar claims to come from an unusable cache")
	}
}

// TestDecodedGrammarConcurrent is the satellite fix check: a
// cache-loaded Grammar must flow through ParserPool and
// ParseConcurrent exactly like a live one — the lazy pool
// initialization must not re-trigger analysis or differ in behavior.
func TestDecodedGrammarConcurrent(t *testing.T) {
	data, err := mustLoad(t, "fig2.g", fig2Src).MarshalAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	g, err := llstar.UnmarshalAnalysis(data)
	if err != nil {
		t.Fatal(err)
	}

	pool := g.NewParserPool(llstar.WithTree())
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			input := fmt.Sprintf("- %d ;", i)
			if _, err := pool.Parse("t", input); err != nil {
				errs <- fmt.Errorf("pool %q: %w", input, err)
			}
			if _, err := g.ParseConcurrent("t", input); err != nil {
				errs <- fmt.Errorf("concurrent %q: %w", input, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCompiledFileRoundTrip covers the artifact-file surface behind
// `llstar compile` and `llstar-parse -compiled`.
func TestCompiledFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig2.llsc")
	live := mustLoad(t, "fig2.g", fig2Src)
	if err := live.WriteCompiled(path); err != nil {
		t.Fatal(err)
	}
	g, err := llstar.LoadCompiled(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.AnalysisDigest() != live.AnalysisDigest() {
		t.Error("LoadCompiled grammar diverges from the one that wrote the file")
	}
	if _, err := llstar.LoadCompiled(filepath.Join(t.TempDir(), "missing.llsc")); err == nil {
		t.Error("LoadCompiled of a missing file must fail")
	}
}

// TestUnmarshalRobustness: hostile artifacts must produce descriptive
// errors — never panics, never silently wrong grammars.
func TestUnmarshalRobustness(t *testing.T) {
	valid, err := mustLoad(t, "pred.g", predSrc).MarshalAnalysis()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated", func(t *testing.T) {
		for i := 0; i < len(valid); i += 7 {
			if _, err := llstar.UnmarshalAnalysis(valid[:i]); err == nil {
				t.Fatalf("truncation to %d bytes decoded without error", i)
			}
		}
	})
	t.Run("bit-flipped", func(t *testing.T) {
		for i := 0; i < len(valid); i += 11 {
			mut := append([]byte(nil), valid...)
			mut[i] ^= 0x01
			g, err := llstar.UnmarshalAnalysis(mut)
			// Any byte change must flip the checksum (or earlier magic /
			// version / fingerprint checks); a nil error here would mean
			// a corrupted artifact was accepted.
			if err == nil {
				t.Fatalf("bit flip at byte %d decoded without error: %v", i, g.Name())
			}
		}
	})
	t.Run("wrong-magic", func(t *testing.T) {
		mut := append([]byte(nil), valid...)
		copy(mut, "NOPE")
		if _, err := llstar.UnmarshalAnalysis(mut); err == nil || !strings.Contains(err.Error(), "artifact") {
			t.Fatalf("want not-an-artifact error, got %v", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := llstar.UnmarshalAnalysis(nil); err == nil {
			t.Fatal("nil artifact decoded without error")
		}
	})
}

func mustLoad(t *testing.T, name, src string) *llstar.Grammar {
	t.Helper()
	g, err := llstar.Load(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// FuzzUnmarshalAnalysis hammers the decoder with mutated artifacts.
// The invariant is total: any input either decodes to a working
// grammar or returns an error — no panics, no index overflows, no
// runaway allocations from hostile length prefixes.
func FuzzUnmarshalAnalysis(f *testing.F) {
	for _, src := range []struct{ name, text string }{
		{"fig2.g", fig2Src},
		{"pred.g", predSrc},
	} {
		g, err := llstar.Load(src.name, src.text)
		if err != nil {
			f.Fatal(err)
		}
		data, err := g.MarshalAnalysis()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte("LLSC"))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := llstar.UnmarshalAnalysis(data)
		if err == nil {
			// The rare mutants that still decode must be fully usable.
			_ = g.AnalysisDigest()
			_, _ = g.NewParser().Parse("", "x")
		}
	})
}
