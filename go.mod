module llstar

go 1.22
