package core

import (
	"strings"
	"testing"

	"llstar/internal/dfa"
	"llstar/internal/grammar"
	"llstar/internal/meta"
	"llstar/internal/token"
)

// analyze parses, validates, and analyzes grammar text.
func analyze(t *testing.T, src string) *Result {
	t.Helper()
	g, err := meta.Parse("test.g", src)
	if err != nil {
		t.Fatalf("parse grammar: %v", err)
	}
	if err := grammar.FirstFatal(grammar.Validate(g)); err != nil {
		t.Fatalf("validate: %v", err)
	}
	res, err := Analyze(g, Options{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res
}

// types converts names/literals to token types via the vocabulary.
func types(t *testing.T, g *grammar.Grammar, names ...string) []token.Type {
	t.Helper()
	out := make([]token.Type, len(names))
	for i, n := range names {
		var tt token.Type
		if strings.HasPrefix(n, "'") {
			tt = g.Vocab.Literal(strings.Trim(n, "'"))
		} else if n == "EOF" {
			tt = token.EOF
		} else {
			tt = g.Vocab.Lookup(n)
		}
		if tt == token.Invalid {
			t.Fatalf("unknown token %q", n)
		}
		out[i] = tt
	}
	return out
}

// predict runs the decision's DFA over the named tokens.
func predict(t *testing.T, res *Result, decision int, names ...string) (alt, used int) {
	t.Helper()
	alt, used, err := res.DFAs[decision].PredictTypes(types(t, res.Grammar, names...))
	if err != nil {
		t.Fatalf("predict %v: %v", names, err)
	}
	return alt, used
}

// decisionFor finds the rule-level decision for a rule name.
func decisionFor(t *testing.T, res *Result, rule string) int {
	t.Helper()
	for _, di := range res.Decisions {
		if di.Decision.Rule.Name == rule && di.Decision.Kind == 0 /* RuleDecision */ {
			return di.Decision.ID
		}
	}
	t.Fatalf("no rule decision for %s", rule)
	return -1
}

// Figure 1: the lookahead DFA for rule s needs arbitrary lookahead to
// separate alternatives 3 and 4 but uses minimal lookahead per input.
const figure1Grammar = `
grammar Fig1;
s : ID
  | ID '=' expr
  | ('unsigned')* 'int' ID
  | ('unsigned')* ID ID
  ;
expr : INT ;
ID : ('a'..'z'|'A'..'Z')+ ;
INT : ('0'..'9')+ ;
`

func TestFigure1DFA(t *testing.T) {
	res := analyze(t, figure1Grammar)
	dec := decisionFor(t, res, "s")
	d := res.DFAs[dec]
	if d.Fallback != "" {
		t.Fatalf("rule s should get an exact DFA, got fallback: %s", d.Fallback)
	}
	if !d.Cyclic() {
		t.Errorf("rule s DFA should be cyclic (arbitrary lookahead)")
	}
	info := res.Decisions[dec]
	if info.Class != ClassCyclic {
		t.Errorf("rule s should classify cyclic, got %v", info.Class)
	}

	// Upon int from "int x": immediately alternative 3 with k=1.
	if alt, used := predict(t, res, dec, "'int'", "ID"); alt != 3 || used != 1 {
		t.Errorf("int x: got alt %d with k=%d, want alt 3 with k=1", alt, used)
	}
	// Upon T from "Tx": k=2 to separate 1, 2, 4.
	if alt, used := predict(t, res, dec, "ID", "EOF"); alt != 1 || used != 2 {
		t.Errorf("T<EOF>: got alt %d k=%d, want alt 1 k=2", alt, used)
	}
	if alt, used := predict(t, res, dec, "ID", "'='", "INT"); alt != 2 || used != 2 {
		t.Errorf("T=expr: got alt %d k=%d, want alt 2 k=2", alt, used)
	}
	if alt, used := predict(t, res, dec, "ID", "ID"); alt != 4 || used != 2 {
		t.Errorf("T x: got alt %d k=%d, want alt 4 k=2", alt, used)
	}
	// Upon unsigned: scan arbitrarily far for int vs ID ID.
	if alt, _ := predict(t, res, dec, "'unsigned'", "'unsigned'", "'unsigned'", "'int'", "ID"); alt != 3 {
		t.Errorf("unsigned* int: got alt %d, want 3", alt)
	}
	if alt, _ := predict(t, res, dec, "'unsigned'", "'unsigned'", "'unsigned'", "ID", "ID"); alt != 4 {
		t.Errorf("unsigned* ID ID: got alt %d, want 4", alt)
	}

	if len(res.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", res.Warnings)
	}
}

// Figure 2: recursion in one alternative; with m=1 the DFA matches a
// bounded number of '-' and then fails over to backtracking.
const figure2Grammar = `
grammar Fig2;
options { backtrack=true; }
t : ('-')* ID
  | expr
  ;
expr : INT | '-' expr ;
ID : ('a'..'z')+ ;
INT : ('0'..'9')+ ;
`

func TestFigure2DFA(t *testing.T) {
	res := analyze(t, figure2Grammar)
	dec := decisionFor(t, res, "t")
	d := res.DFAs[dec]
	info := res.Decisions[dec]
	if info.Class != ClassBacktrack {
		t.Fatalf("rule t should classify backtrack, got %v (fallback=%q)", info.Class, d.Fallback)
	}
	// Immediate choice on first symbol x or 1.
	if alt, used := predict(t, res, dec, "ID"); alt != 1 || used != 1 {
		t.Errorf("x: got alt %d k=%d, want alt 1 k=1", alt, used)
	}
	if alt, used := predict(t, res, dec, "INT"); alt != 2 || used != 1 {
		t.Errorf("1: got alt %d k=%d, want alt 2 k=1", alt, used)
	}
	// '-' leads toward speculation: walking '-' symbols must reach a
	// state with predicate (backtracking) edges.
	tt := types(t, res.Grammar, "'-'")[0]
	s := d.Start
	sawPreds := false
	for i := 0; i < 10 && s != nil; i++ {
		if len(s.PredEdges) > 0 {
			sawPreds = true
			break
		}
		s = s.Target(tt)
	}
	if !sawPreds {
		t.Errorf("expected a backtracking state along '-' path")
	}
}

// Section 2 / LPG comparison: LL(*) but not LR(k) for any k; ANTLR builds
// a small cyclic DFA quickly.
const lpgGrammar = `
grammar LPG;
a : b A X
  | c A Y
  ;
b : ;
c : ;
A : 'a' ;
X : 'x' ;
Y : 'y' ;
`

// Note: the paper's grammar uses A+; EBNF on token A exercises the same
// cyclic-DFA machinery.
const lpgPlusGrammar = `
grammar LPG;
a : b (A)+ X
  | c (A)+ Y
  ;
b : ;
c : ;
A : 'a' ;
X : 'x' ;
Y : 'y' ;
`

func TestLPGGrammarCyclic(t *testing.T) {
	res := analyze(t, lpgPlusGrammar)
	dec := decisionFor(t, res, "a")
	d := res.DFAs[dec]
	if d.Fallback != "" {
		t.Fatalf("expected exact DFA, got fallback %q", d.Fallback)
	}
	if !d.Cyclic() {
		t.Errorf("expected cyclic DFA for LPG grammar")
	}
	if alt, _ := predict(t, res, dec, "A", "A", "A", "A", "X"); alt != 1 {
		t.Errorf("A+X: got alt %d, want 1", alt)
	}
	if alt, _ := predict(t, res, dec, "A", "A", "A", "A", "A", "A", "Y"); alt != 2 {
		t.Errorf("A+Y: got alt %d, want 2", alt)
	}
	if len(res.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", res.Warnings)
	}
}

func TestLPGFixedLookahead(t *testing.T) {
	res := analyze(t, lpgGrammar)
	dec := decisionFor(t, res, "a")
	if alt, used := predict(t, res, dec, "A", "X"); alt != 1 || used != 2 {
		t.Errorf("AX: got alt %d k=%d, want alt 1 k=2", alt, used)
	}
	if alt, _ := predict(t, res, dec, "A", "Y"); alt != 2 {
		t.Errorf("AY: got alt %d, want 2", alt)
	}
}

// Figure 6 / Section 5.4: S → Ac | Ad with recursive A has recursion in
// both alternatives; analysis must abort and fall back (the paper:
// "we terminate DFA construction for nonterminal A upon discovering
// recursion in more than one alternative").
const figure6Grammar = `
grammar Fig6;
s : a C
  | a D
  ;
a : A a | B ;
A : 'a' ;
B : 'b' ;
C : 'c' ;
D : 'd' ;
`

func TestFigure6NonLLRegular(t *testing.T) {
	res := analyze(t, figure6Grammar)
	dec := decisionFor(t, res, "s")
	d := res.DFAs[dec]
	if d.Fallback == "" {
		t.Fatalf("expected fallback DFA for non-LL-regular decision")
	}
	found := false
	for _, w := range res.Warnings {
		if w.Decision == dec && w.Kind == WarnNonLLRegular {
			found = true
		}
	}
	if !found {
		t.Errorf("expected non-LL-regular warning, got %v", res.Warnings)
	}
}

// Ambiguity: identical alternatives resolve to the lowest number and the
// higher one is reported dead (the PEG A → a | ab hazard analogue the
// paper says ANTLR can detect statically).
func TestAmbiguityAndDeadProduction(t *testing.T) {
	res := analyze(t, `
grammar Amb;
a : X | X ;
X : 'x' ;
`)
	dec := decisionFor(t, res, "a")
	if alt, _ := predict(t, res, dec, "X"); alt != 1 {
		t.Errorf("ambiguous input predicted alt %d, want 1", alt)
	}
	var sawAmb, sawDead bool
	for _, w := range res.Warnings {
		if w.Kind == WarnAmbiguity {
			sawAmb = true
		}
		if w.Kind == WarnDeadProduction {
			sawDead = true
		}
	}
	if !sawAmb || !sawDead {
		t.Errorf("want ambiguity+dead warnings, got %v", res.Warnings)
	}
}

// PEG hazard A → a | a b is NOT a hazard for LL(*): unlike PEGs, both
// productions remain live.
func TestPEGHazardHandled(t *testing.T) {
	res := analyze(t, `
grammar Haz;
a : X | X Y ;
X : 'x' ;
Y : 'y' ;
`)
	dec := decisionFor(t, res, "a")
	if alt, _ := predict(t, res, dec, "X", "EOF"); alt != 1 {
		t.Errorf("x$: want alt 1")
	}
	if alt, _ := predict(t, res, dec, "X", "Y"); alt != 2 {
		t.Errorf("xy: want alt 2 (dead under PEG, live under LL(*))")
	}
	for _, w := range res.Warnings {
		if w.Kind == WarnDeadProduction {
			t.Errorf("no production should be dead: %v", w)
		}
	}
}

// Semantic predicates resolve an otherwise ambiguous decision
// (Section 4.2/5.2 predicated example).
func TestPredicateResolution(t *testing.T) {
	res := analyze(t, `
grammar Preds;
a : {isType()}? X | {isVar()}? X ;
X : 'x' ;
`)
	dec := decisionFor(t, res, "a")
	d := res.DFAs[dec]
	if !d.HasSemPreds() {
		t.Fatalf("expected semantic predicate edges")
	}
	for _, w := range res.Warnings {
		if w.Kind == WarnAmbiguity {
			t.Errorf("predicates should suppress ambiguity warning: %v", w)
		}
	}
	info := res.Decisions[dec]
	if info.Class != ClassFixed {
		t.Errorf("sem-pred decision should still classify fixed, got %v", info.Class)
	}
}

// A plain LL(1) decision: one token of lookahead, acyclic.
func TestLL1Decision(t *testing.T) {
	res := analyze(t, `
grammar LL1;
a : X b | Y b ;
b : Z ;
X : 'x' ;
Y : 'y' ;
Z : 'z' ;
`)
	dec := decisionFor(t, res, "a")
	info := res.Decisions[dec]
	if info.Class != ClassFixed || info.FixedK != 1 {
		t.Errorf("want fixed LL(1), got %v k=%d", info.Class, info.FixedK)
	}
	if alt, used := predict(t, res, dec, "X"); alt != 1 || used != 1 {
		t.Errorf("X: alt %d k=%d", alt, used)
	}
}

// The bracketed-identifier example from Section 5: A → [ A ] | id has a
// context-free continuation language but an LL(1)-separable lookahead.
func TestBracketLL1(t *testing.T) {
	res := analyze(t, `
grammar Brack;
a : LB a RB | ID ;
LB : '[' ;
RB : ']' ;
ID : ('a'..'z')+ ;
`)
	dec := decisionFor(t, res, "a")
	info := res.Decisions[dec]
	if info.Class != ClassFixed || info.FixedK != 1 {
		t.Errorf("want fixed LL(1), got %v k=%d (fallback=%q)", info.Class, info.FixedK, res.DFAs[dec].Fallback)
	}
	if alt, _ := predict(t, res, dec, "LB"); alt != 1 {
		t.Errorf("[: want alt 1")
	}
	if alt, _ := predict(t, res, dec, "ID"); alt != 2 {
		t.Errorf("id: want alt 2")
	}
}

// EBNF loop decisions get exit alternatives; greedy loops predict
// iteration on body tokens and exit otherwise.
func TestLoopDecision(t *testing.T) {
	res := analyze(t, `
grammar Loop;
a : (X)* Y ;
X : 'x' ;
Y : 'y' ;
`)
	// The only decision is the loop.
	if len(res.Decisions) != 1 {
		t.Fatalf("want 1 decision, got %d", len(res.Decisions))
	}
	dec := res.Decisions[0].Decision.ID
	if alt, _ := predict(t, res, dec, "X"); alt != 1 {
		t.Errorf("x: want iterate (alt 1)")
	}
	if alt, _ := predict(t, res, dec, "Y"); alt != 2 {
		t.Errorf("y: want exit (alt 2)")
	}
}

// Fixed-k cap: with k=1 a decision that needs k=2 must be resolved at
// depth 1 (by order, with a warning) instead of building deeper DFA.
func TestFixedKCap(t *testing.T) {
	res := analyze(t, `
grammar K1;
options { k=1; }
a : X Y | X Z ;
X : 'x' ;
Y : 'y' ;
Z : 'z' ;
`)
	dec := decisionFor(t, res, "a")
	info := res.Decisions[dec]
	if info.Class != ClassFixed || info.FixedK > 1 {
		t.Errorf("k=1 cap violated: %v k=%d", info.Class, info.FixedK)
	}
	sawWarn := false
	for _, w := range res.Warnings {
		if w.Decision == dec {
			sawWarn = true
		}
	}
	if !sawWarn {
		t.Errorf("expected a warning about the k=1 resolution")
	}
}

func TestFixedKHistogram(t *testing.T) {
	res := analyze(t, `
grammar H;
a : X | Y ;
b : X Y | X Z ;
X : 'x' ;
Y : 'y' ;
Z : 'z' ;
`)
	hist := res.FixedKHistogram()
	if hist[1] != 1 || hist[2] != 1 {
		t.Errorf("histogram = %v, want one k=1 and one k=2", hist)
	}
}

// PEG-mode (backtrack=true) decisions that the analysis can make
// deterministic must not be counted as backtracking — the paper's
// "ANTLR strips away syntactic predicates" behavior.
func TestPEGModeStripsBacktracking(t *testing.T) {
	res := analyze(t, `
grammar Strip;
options { backtrack=true; }
a : X b | Y b ;
b : Z ;
X : 'x' ;
Y : 'y' ;
Z : 'z' ;
`)
	dec := decisionFor(t, res, "a")
	info := res.Decisions[dec]
	if info.Class != ClassFixed {
		t.Errorf("PEG-mode LL(1) decision should be fixed, got %v", info.Class)
	}
	if res.DFAs[dec].HasBacktrack() {
		t.Errorf("no backtracking edges expected")
	}
}

// Explicit syntactic predicate forces speculation on the gated
// alternative when lookahead conflicts.
func TestExplicitSynPred(t *testing.T) {
	res := analyze(t, `
grammar Syn;
a : (X Y)=> X Y | X Z ;
X : 'x' ;
Y : 'y' ;
Z : 'z' ;
`)
	dec := decisionFor(t, res, "a")
	// LL(2) separates these, so the synpred gets stripped; the decision
	// stays fixed. (ANTLR would also strip it.)
	info := res.Decisions[dec]
	if info.Class != ClassFixed {
		t.Errorf("strippable synpred should leave a fixed decision, got %v", info.Class)
	}
}

func TestResultCounters(t *testing.T) {
	res := analyze(t, figure1Grammar)
	if res.NumDecisions() == 0 {
		t.Fatal("expected decisions")
	}
	total := res.CountClass(ClassFixed) + res.CountClass(ClassCyclic) + res.CountClass(ClassBacktrack)
	if total != res.NumDecisions() {
		t.Errorf("class counts %d != decisions %d", total, res.NumDecisions())
	}
	if res.Elapsed <= 0 {
		t.Errorf("elapsed not recorded")
	}
}

var _ = dfa.PredEdge{} // keep import if assertions above change
