package core

import (
	"strings"
	"testing"

	"llstar/internal/token"
)

// Wildcard and negated-set transitions produce default edges that match
// any unmentioned token.
func TestWildcardDecision(t *testing.T) {
	res := analyze(t, `
grammar W;
s : A . B | A SEMI B ;
A : 'a' ;
B : 'b' ;
SEMI : ';' ;
X : 'x' ;
`)
	dec := decisionFor(t, res, "s")
	// ';' after A picks... both alternatives are viable (wildcard also
	// matches ';'): conflict resolved by order → alt 1. Actually the
	// paper's policy: lowest number wins on ambiguity.
	if alt, _ := predict(t, res, dec, "A", "SEMI", "B"); alt != 1 {
		t.Errorf("A ; B: got alt %d, want 1 (order policy)", alt)
	}
	// 'x' after A only matches the wildcard.
	if alt, _ := predict(t, res, dec, "A", "X", "B"); alt != 1 {
		t.Errorf("A x B: got alt %d, want 1", alt)
	}
}

func TestNotTokenDecision(t *testing.T) {
	res := analyze(t, `
grammar N;
s : A ~SEMI | A SEMI ;
A : 'a' ;
SEMI : ';' ;
X : 'x' ;
`)
	dec := decisionFor(t, res, "s")
	if alt, _ := predict(t, res, dec, "A", "X"); alt != 1 {
		t.Errorf("A x: want alt 1")
	}
	if alt, _ := predict(t, res, dec, "A", "SEMI"); alt != 2 {
		t.Errorf("A ;: want alt 2")
	}
}

// EOF distinguishes alternatives whose difference is only whether input
// continues.
func TestEOFDistinguishes(t *testing.T) {
	res := analyze(t, `
grammar E;
s : A | A B ;
A : 'a' ;
B : 'b' ;
`)
	dec := decisionFor(t, res, "s")
	if alt, _ := predict(t, res, dec, "A", "EOF"); alt != 1 {
		t.Errorf("a$: want alt 1")
	}
	if alt, _ := predict(t, res, dec, "A", "B"); alt != 2 {
		t.Errorf("ab: want alt 2")
	}
}

// (A)? A is not ambiguous — it is LL(2): two A's must enter the
// optional, one A must skip it. The analysis gets this right where a
// naive greedy match would not.
func TestOptionalIsLL2NotAmbiguous(t *testing.T) {
	res := analyze(t, `
grammar O;
s : (A)? A ;
A : 'a' ;
`)
	dec := res.Decisions[0].Decision.ID
	if alt, _ := predict(t, res, dec, "A", "A"); alt != 1 {
		t.Errorf("aa: optional should enter, got alt %d", alt)
	}
	if alt, _ := predict(t, res, dec, "A", "EOF"); alt != 2 {
		t.Errorf("a$: optional should skip, got alt %d", alt)
	}
	for _, w := range res.Warnings {
		if w.Kind == WarnAmbiguity {
			t.Errorf("decision is LL(2), not ambiguous: %v", w)
		}
	}
}

// Rule-level option k caps lookahead for that rule only.
func TestPerRuleKOption(t *testing.T) {
	res := analyze(t, `
grammar PK;
a options { k=1; } : X Y | X Z ;
b : X Y | X Z ;
X : 'x' ;
Y : 'y' ;
Z : 'z' ;
`)
	// Rule b is unreachable (a is the start rule) — that's fine here,
	// analysis covers all rules.
	decA := decisionFor(t, res, "a")
	decB := decisionFor(t, res, "b")
	if k := res.Decisions[decA].FixedK; k > 1 {
		t.Errorf("rule a must be capped at k=1, got %d", k)
	}
	if k := res.Decisions[decB].FixedK; k != 2 {
		t.Errorf("rule b should use k=2, got %d", k)
	}
}

// The recursion governor m widens the DFA before failover.
func TestGovernorDepth(t *testing.T) {
	src := `
grammar M;
options { backtrack=true; }
t : ('-')* ID | e ;
e : INT | '-' e ;
ID : ('a'..'z')+ ;
INT : ('0'..'9')+ ;
`
	countTokenDepth := func(m int) int {
		g := analyzeWith(t, src, Options{M: m})
		dec := decisionFor(t, g, "t")
		d := g.DFAs[dec]
		// Walk the '-' chain until a predicated state appears.
		minus := g.Grammar.Vocab.Literal("-")
		s := d.Start
		depth := 0
		for s != nil && len(s.PredEdges) == 0 {
			s = s.Target(minus)
			depth++
			if depth > 20 {
				break
			}
		}
		return depth
	}
	d1, d3 := countTokenDepth(1), countTokenDepth(3)
	if d3 <= d1 {
		t.Errorf("larger m should explore deeper before failing over: m=1→%d, m=3→%d", d1, d3)
	}
}

// analyzeWith mirrors analyze with explicit options.
func analyzeWith(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	res := analyze(t, src) // reuse parsing/validation path
	res2, err := Analyze(res.Grammar, opts)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res2
}

// Empty alternatives predict via follow.
func TestEmptyAlternative(t *testing.T) {
	res := analyze(t, `
grammar Emp;
s : a B ;
a : A | ;
A : 'a' ;
B : 'b' ;
`)
	dec := decisionFor(t, res, "a")
	if alt, _ := predict(t, res, dec, "A"); alt != 1 {
		t.Errorf("a: want alt 1")
	}
	if alt, _ := predict(t, res, dec, "B"); alt != 2 {
		t.Errorf("b: want empty alt 2")
	}
}

// Lookahead sets are minimal (Definition 5): once the DFA can uniquely
// identify the production it stops, even though R_i continues.
func TestMinimalLookahead(t *testing.T) {
	res := analyze(t, `
grammar Min;
s : A B C D E | B B C D E ;
A : 'a' ;
B : 'b' ;
C : 'c' ;
D : 'd' ;
E : 'e' ;
`)
	dec := decisionFor(t, res, "s")
	if alt, used := predict(t, res, dec, "A", "B", "C", "D", "E"); alt != 1 || used != 1 {
		t.Errorf("k must be 1, got alt=%d k=%d", alt, used)
	}
	if k := res.Decisions[dec].FixedK; k != 1 {
		t.Errorf("fixed k = %d, want 1", k)
	}
}

// Large token-type values exercise the compiled dense edge tables.
func TestCompiledEdgeTables(t *testing.T) {
	var b strings.Builder
	b.WriteString("grammar Big;\ns : ")
	for i := 0; i < 60; i++ {
		if i > 0 {
			b.WriteString(" | ")
		}
		b.WriteString(tokName(i))
	}
	b.WriteString(" ;\n")
	for i := 0; i < 60; i++ {
		lit := string(rune('a'+i/26)) + string(rune('a'+i%26))
		b.WriteString(tokName(i) + " : '" + lit + "' ;\n")
	}
	res := analyze(t, b.String())
	dec := decisionFor(t, res, "s")
	for i := 0; i < 60; i++ {
		tt := res.Grammar.Vocab.Lookup(tokName(i))
		alt, _, err := res.DFAs[dec].PredictTypes([]token.Type{tt})
		if err != nil || alt != i+1 {
			t.Fatalf("token %d: alt=%d err=%v", i, alt, err)
		}
	}
}

func tokName(i int) string {
	return "T" + string(rune('A'+i/26)) + string(rune('A'+i%26))
}
