package core

import (
	"fmt"
	goruntime "runtime"
	"sync"
	"time"

	"llstar/internal/atn"
	"llstar/internal/dfa"
	"llstar/internal/grammar"
	"llstar/internal/obs"
)

// Options tune the analysis.
type Options struct {
	// M is the recursion-depth governor m (Section 5.3). 0 uses the
	// grammar's option, which itself defaults to grammar.DefaultM.
	M int
	// MaxDFAStates caps DFA states per decision (the paper's "land-mine"
	// escape hatch); exceeding it falls back to LL(1)+backtracking.
	// 0 means DefaultMaxDFAStates.
	MaxDFAStates int
	// MaxK, when > 0, caps lookahead depth at a fixed k (classic LL(k)
	// mode). 0 uses the grammar option (0 = unbounded LL(*)).
	MaxK int
	// Tracer, if set, receives structured analysis events: the overall
	// analysis span, ATN construction, one dfa.construct span per
	// decision, and instants for warnings and Section 5.4 fallbacks.
	Tracer obs.Tracer
	// Metrics, if set, accumulates analysis counters (decision classes,
	// DFA states, closure calls, fallbacks, warnings by kind).
	Metrics *obs.Metrics
	// Workers bounds the worker pool that constructs per-decision
	// lookahead DFAs. Decisions are mutually independent (each runs the
	// Algorithms 8–11 subset construction against read-only ATN and
	// FIRST-set data), so they parallelize freely; results are assembled
	// in decision order, so the output is byte-identical to a serial
	// run. 0 means GOMAXPROCS; 1 forces the serial path.
	Workers int
}

// DefaultMaxDFAStates bounds DFA construction per decision.
const DefaultMaxDFAStates = 4000

// WarningKind classifies analysis diagnostics.
type WarningKind int

const (
	// WarnAmbiguity: the decision can match the same input with multiple
	// productions; resolved in favor of the lowest-numbered one.
	WarnAmbiguity WarningKind = iota
	// WarnRecursionOverflow: closure hit the recursion governor m and the
	// state may predict multiple alternatives.
	WarnRecursionOverflow
	// WarnNonLLRegular: recursion in more than one alternative; DFA
	// construction was aborted (Section 5.4).
	WarnNonLLRegular
	// WarnResourceLimit: DFA construction exceeded MaxDFAStates.
	WarnResourceLimit
	// WarnDeadProduction: an alternative can never be predicted.
	WarnDeadProduction
)

func (k WarningKind) String() string {
	switch k {
	case WarnAmbiguity:
		return "ambiguity"
	case WarnRecursionOverflow:
		return "recursion-overflow"
	case WarnNonLLRegular:
		return "non-LL-regular"
	case WarnResourceLimit:
		return "resource-limit"
	case WarnDeadProduction:
		return "dead-production"
	default:
		return "warning"
	}
}

// Warning is one analysis diagnostic.
type Warning struct {
	Decision int
	Kind     WarningKind
	Alts     []int
	Msg      string
}

func (w Warning) String() string {
	return fmt.Sprintf("decision %d: %s: %s", w.Decision, w.Kind, w.Msg)
}

// Class classifies a decision's lookahead machinery (Table 1 columns).
type Class int

const (
	// ClassFixed: acyclic DFA, fixed LL(k).
	ClassFixed Class = iota
	// ClassCyclic: cyclic DFA, arbitrary regular lookahead.
	ClassCyclic
	// ClassBacktrack: some state fails over to speculation.
	ClassBacktrack
)

func (c Class) String() string {
	switch c {
	case ClassFixed:
		return "fixed"
	case ClassCyclic:
		return "cyclic"
	default:
		return "backtrack"
	}
}

// DecisionInfo summarizes one analyzed decision.
type DecisionInfo struct {
	Decision *atn.Decision
	DFA      *dfa.DFA
	Class    Class
	// FixedK is the lookahead depth for ClassFixed decisions.
	FixedK int
	// Elapsed is the wall-clock time spent constructing, minimizing,
	// and compiling this decision's DFA.
	Elapsed time.Duration
	// ClosureCalls counts invocations of the closure operation
	// (Algorithm 9) during this decision's subset construction — the
	// dominant analysis cost.
	ClosureCalls int
}

// Result is the full analysis output for a grammar.
type Result struct {
	Grammar   *grammar.Grammar
	Machine   *atn.Machine
	DFAs      []*dfa.DFA // indexed by decision ID
	Decisions []DecisionInfo
	Warnings  []Warning
	Elapsed   time.Duration
}

// NumDecisions returns the number of parsing decisions analyzed.
func (r *Result) NumDecisions() int { return len(r.Decisions) }

// CountClass returns how many decisions have the given class.
func (r *Result) CountClass(c Class) int {
	n := 0
	for _, d := range r.Decisions {
		if d.Class == c {
			n++
		}
	}
	return n
}

// FixedKHistogram returns counts of fixed decisions per lookahead depth k
// (index 0 unused), as in Table 2. Decisions that consult no tokens at
// all (pure predicate dispatch) count as k=1.
func (r *Result) FixedKHistogram() []int {
	maxK := 1
	for _, d := range r.Decisions {
		if d.Class == ClassFixed && d.FixedK > maxK {
			maxK = d.FixedK
		}
	}
	hist := make([]int, maxK+1)
	for _, d := range r.Decisions {
		if d.Class != ClassFixed {
			continue
		}
		k := d.FixedK
		if k < 1 {
			k = 1
		}
		hist[k]++
	}
	return hist
}

// Analyze builds the ATN for g and constructs a lookahead DFA for every
// parsing decision. The grammar must already validate cleanly.
func Analyze(g *grammar.Grammar, opts Options) (*Result, error) {
	tr := obs.Active(opts.Tracer)
	mx := opts.Metrics
	start := time.Now()
	var analysisT0, atnT0 time.Duration
	if tr != nil {
		analysisT0 = tr.Now()
		atnT0 = analysisT0
	}
	m, err := atn.Build(g)
	if err != nil {
		return nil, err
	}
	if tr != nil {
		tr.Emit(obs.Event{
			Name: "atn.build", Cat: obs.PhaseAnalysis, Ph: obs.PhSpan,
			TS: atnT0, Dur: tr.Now() - atnT0, Decision: -1,
			OK: true, N: int64(len(m.Decisions)),
		})
	}
	res := &Result{Grammar: g, Machine: m}
	if opts.M == 0 {
		opts.M = g.Options.Governor()
	}
	if opts.MaxDFAStates == 0 {
		opts.MaxDFAStates = DefaultMaxDFAStates
	}
	if opts.MaxK == 0 {
		opts.MaxK = g.Options.K
	}

	shared := computeFirstSets(m)
	res.DFAs = make([]*dfa.DFA, len(m.Decisions))

	workers := opts.Workers
	if workers <= 0 {
		workers = goruntime.GOMAXPROCS(0)
	}
	if workers > len(m.Decisions) {
		workers = len(m.Decisions)
	}

	// Each decision's subset construction touches only read-only shared
	// state (the ATN, the grammar, the FIRST sets) plus its own decAnalysis
	// scratch, so the per-decision work fans out across a bounded pool.
	// Outcomes land in a slice indexed by decision ID and are assembled in
	// decision order below, making the parallel result byte-identical to a
	// serial run.
	outcomes := make([]decOutcome, len(m.Decisions))
	if workers <= 1 {
		for _, dec := range m.Decisions {
			outcomes[dec.ID] = analyzeDecision(m, dec, opts, shared, tr, 0)
		}
	} else {
		feed := make(chan *atn.Decision)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				var wT0 time.Duration
				if tr != nil {
					wT0 = tr.Now()
				}
				n := 0
				for dec := range feed {
					outcomes[dec.ID] = analyzeDecision(m, dec, opts, shared, tr, worker)
					n++
				}
				if tr != nil {
					tr.Emit(obs.Event{
						Name: "analysis.worker", Cat: obs.PhaseAnalysis, Ph: obs.PhSpan,
						TS: wT0, Dur: tr.Now() - wT0, Decision: -1,
						Worker: worker, OK: true, N: int64(n),
					})
				}
			}(w)
		}
		for _, dec := range m.Decisions {
			feed <- dec
		}
		close(feed)
		wg.Wait()
	}

	for _, dec := range m.Decisions {
		o := &outcomes[dec.ID]
		res.DFAs[dec.ID] = o.info.DFA
		res.Decisions = append(res.Decisions, o.info)
		res.Warnings = append(res.Warnings, o.warnings...)
		if mx != nil {
			d := o.info.DFA
			mx.Counter(obs.Label("llstar_analysis_decisions_total", "class", o.info.Class.String())).Inc()
			mx.Counter("llstar_analysis_dfa_states_total").Add(int64(d.NumStates()))
			mx.Counter("llstar_analysis_closure_calls_total").Add(int64(o.info.ClosureCalls))
			if d.Fallback != "" {
				mx.Counter("llstar_analysis_fallbacks_total").Inc()
			}
			for _, w := range o.warnings {
				mx.Counter(obs.Label("llstar_analysis_warnings_total", "kind", w.Kind.String())).Inc()
			}
		}
	}
	res.Elapsed = time.Since(start)
	if tr != nil {
		tr.Emit(obs.Event{
			Name: "analysis", Cat: obs.PhaseAnalysis, Ph: obs.PhSpan,
			TS: analysisT0, Dur: tr.Now() - analysisT0, Decision: -1,
			Rule: g.Name, OK: true, N: int64(len(res.Decisions)),
		})
	}
	if mx != nil {
		mx.Gauge("llstar_analysis_elapsed_us").Set(res.Elapsed.Microseconds())
	}
	return res, nil
}

// decOutcome is one decision's completed analysis, produced by a worker
// and assembled into the Result in decision order.
type decOutcome struct {
	info     DecisionInfo
	warnings []Warning
}

// analyzeDecision runs the full per-decision pipeline — subset
// construction (Algorithms 8–11), minimization, edge-table compilation,
// classification, dead-production detection — against read-only shared
// state. It is safe to call concurrently for distinct decisions; worker
// tags the trace events with the emitting worker's index.
func analyzeDecision(m *atn.Machine, dec *atn.Decision, opts Options, shared *firstSets, tr obs.Tracer, worker int) decOutcome {
	decOpts := opts
	// Per-rule lookahead caps (rule options override grammar-level).
	if k := dec.Rule.OptionInt("k", 0); k > 0 {
		decOpts.MaxK = k
	}
	if g := dec.Rule.OptionInt("m", 0); g > 0 {
		decOpts.M = g
	}
	var decT0 time.Duration
	if tr != nil {
		decT0 = tr.Now()
	}
	decStart := time.Now()
	da := newDecAnalysis(m, dec, decOpts, shared)
	d := da.construct()
	d.Minimize()
	d.Compile(m.Grammar.Vocab.MaxType())

	info := DecisionInfo{
		Decision:     dec,
		DFA:          d,
		Elapsed:      time.Since(decStart),
		ClosureCalls: da.closureCalls,
	}
	switch {
	case d.HasBacktrack():
		info.Class = ClassBacktrack
	case d.Cyclic():
		info.Class = ClassCyclic
	default:
		info.Class = ClassFixed
		info.FixedK = d.MaxLookahead()
	}
	warnings := append(da.warnings, deadProductions(dec, d)...)

	if tr != nil {
		tr.Emit(obs.Event{
			Name: "dfa.construct", Cat: obs.PhaseAnalysis, Ph: obs.PhSpan,
			TS: decT0, Dur: tr.Now() - decT0,
			Decision: dec.ID, Rule: dec.Rule.Name, Detail: dec.Desc,
			Throttle: info.Class.String(), OK: d.Fallback == "",
			Worker: worker, N: int64(d.NumStates()),
		})
		if d.Fallback != "" {
			tr.Emit(obs.Event{
				Name: "analysis.fallback", Cat: obs.PhaseAnalysis, Ph: obs.PhInstant, TS: tr.Now(),
				Decision: dec.ID, Rule: dec.Rule.Name, Detail: d.Fallback, Worker: worker,
			})
		}
		for _, w := range warnings {
			tr.Emit(obs.Event{
				Name: "analysis.warning", Cat: obs.PhaseAnalysis, Ph: obs.PhInstant, TS: tr.Now(),
				Decision: w.Decision, Rule: dec.Rule.Name,
				Detail: w.Kind.String() + ": " + w.Msg, Worker: worker,
			})
		}
	}
	return decOutcome{info: info, warnings: warnings}
}

// deadProductions reports alternatives never predicted by the DFA —
// the static analogue of the PEG A → a | ab hazard from Section 1.
func deadProductions(dec *atn.Decision, d *dfa.DFA) []Warning {
	reachable := map[int]bool{}
	for _, s := range d.States {
		if s.AcceptAlt > 0 {
			reachable[s.AcceptAlt] = true
		}
		for _, e := range s.PredEdges {
			reachable[e.Alt] = true
		}
	}
	var ws []Warning
	for alt := 1; alt <= dec.NAlts; alt++ {
		if !reachable[alt] {
			label := fmt.Sprintf("alternative %d", alt)
			if dec.HasExitAlt() && alt == dec.NAlts {
				// An unreachable exit branch means an infinite loop
				// grammar; still worth reporting, with a clearer label.
				label = "loop exit branch"
			}
			ws = append(ws, Warning{
				Decision: dec.ID,
				Kind:     WarnDeadProduction,
				Alts:     []int{alt},
				Msg:      fmt.Sprintf("%s of %s can never be matched", label, dec.Desc),
			})
		}
	}
	return ws
}
