package core

import (
	"fmt"
	"time"

	"llstar/internal/atn"
	"llstar/internal/dfa"
	"llstar/internal/grammar"
)

// Options tune the analysis.
type Options struct {
	// M is the recursion-depth governor m (Section 5.3). 0 uses the
	// grammar's option, which itself defaults to grammar.DefaultM.
	M int
	// MaxDFAStates caps DFA states per decision (the paper's "land-mine"
	// escape hatch); exceeding it falls back to LL(1)+backtracking.
	// 0 means DefaultMaxDFAStates.
	MaxDFAStates int
	// MaxK, when > 0, caps lookahead depth at a fixed k (classic LL(k)
	// mode). 0 uses the grammar option (0 = unbounded LL(*)).
	MaxK int
}

// DefaultMaxDFAStates bounds DFA construction per decision.
const DefaultMaxDFAStates = 4000

// WarningKind classifies analysis diagnostics.
type WarningKind int

const (
	// WarnAmbiguity: the decision can match the same input with multiple
	// productions; resolved in favor of the lowest-numbered one.
	WarnAmbiguity WarningKind = iota
	// WarnRecursionOverflow: closure hit the recursion governor m and the
	// state may predict multiple alternatives.
	WarnRecursionOverflow
	// WarnNonLLRegular: recursion in more than one alternative; DFA
	// construction was aborted (Section 5.4).
	WarnNonLLRegular
	// WarnResourceLimit: DFA construction exceeded MaxDFAStates.
	WarnResourceLimit
	// WarnDeadProduction: an alternative can never be predicted.
	WarnDeadProduction
)

func (k WarningKind) String() string {
	switch k {
	case WarnAmbiguity:
		return "ambiguity"
	case WarnRecursionOverflow:
		return "recursion-overflow"
	case WarnNonLLRegular:
		return "non-LL-regular"
	case WarnResourceLimit:
		return "resource-limit"
	case WarnDeadProduction:
		return "dead-production"
	default:
		return "warning"
	}
}

// Warning is one analysis diagnostic.
type Warning struct {
	Decision int
	Kind     WarningKind
	Alts     []int
	Msg      string
}

func (w Warning) String() string {
	return fmt.Sprintf("decision %d: %s: %s", w.Decision, w.Kind, w.Msg)
}

// Class classifies a decision's lookahead machinery (Table 1 columns).
type Class int

const (
	// ClassFixed: acyclic DFA, fixed LL(k).
	ClassFixed Class = iota
	// ClassCyclic: cyclic DFA, arbitrary regular lookahead.
	ClassCyclic
	// ClassBacktrack: some state fails over to speculation.
	ClassBacktrack
)

func (c Class) String() string {
	switch c {
	case ClassFixed:
		return "fixed"
	case ClassCyclic:
		return "cyclic"
	default:
		return "backtrack"
	}
}

// DecisionInfo summarizes one analyzed decision.
type DecisionInfo struct {
	Decision *atn.Decision
	DFA      *dfa.DFA
	Class    Class
	// FixedK is the lookahead depth for ClassFixed decisions.
	FixedK int
}

// Result is the full analysis output for a grammar.
type Result struct {
	Grammar   *grammar.Grammar
	Machine   *atn.Machine
	DFAs      []*dfa.DFA // indexed by decision ID
	Decisions []DecisionInfo
	Warnings  []Warning
	Elapsed   time.Duration
}

// NumDecisions returns the number of parsing decisions analyzed.
func (r *Result) NumDecisions() int { return len(r.Decisions) }

// CountClass returns how many decisions have the given class.
func (r *Result) CountClass(c Class) int {
	n := 0
	for _, d := range r.Decisions {
		if d.Class == c {
			n++
		}
	}
	return n
}

// FixedKHistogram returns counts of fixed decisions per lookahead depth k
// (index 0 unused), as in Table 2. Decisions that consult no tokens at
// all (pure predicate dispatch) count as k=1.
func (r *Result) FixedKHistogram() []int {
	maxK := 1
	for _, d := range r.Decisions {
		if d.Class == ClassFixed && d.FixedK > maxK {
			maxK = d.FixedK
		}
	}
	hist := make([]int, maxK+1)
	for _, d := range r.Decisions {
		if d.Class != ClassFixed {
			continue
		}
		k := d.FixedK
		if k < 1 {
			k = 1
		}
		hist[k]++
	}
	return hist
}

// Analyze builds the ATN for g and constructs a lookahead DFA for every
// parsing decision. The grammar must already validate cleanly.
func Analyze(g *grammar.Grammar, opts Options) (*Result, error) {
	start := time.Now()
	m, err := atn.Build(g)
	if err != nil {
		return nil, err
	}
	res := &Result{Grammar: g, Machine: m}
	if opts.M == 0 {
		opts.M = g.Options.Governor()
	}
	if opts.MaxDFAStates == 0 {
		opts.MaxDFAStates = DefaultMaxDFAStates
	}
	if opts.MaxK == 0 {
		opts.MaxK = g.Options.K
	}

	shared := computeFirstSets(m)
	res.DFAs = make([]*dfa.DFA, len(m.Decisions))
	for _, dec := range m.Decisions {
		decOpts := opts
		// Per-rule lookahead caps (rule options override grammar-level).
		if k := dec.Rule.OptionInt("k", 0); k > 0 {
			decOpts.MaxK = k
		}
		if m := dec.Rule.OptionInt("m", 0); m > 0 {
			decOpts.M = m
		}
		da := newDecAnalysis(m, dec, decOpts, shared)
		d := da.construct()
		d.Minimize()
		d.Compile(g.Vocab.MaxType())
		res.DFAs[dec.ID] = d
		res.Warnings = append(res.Warnings, da.warnings...)

		info := DecisionInfo{Decision: dec, DFA: d}
		switch {
		case d.HasBacktrack():
			info.Class = ClassBacktrack
		case d.Cyclic():
			info.Class = ClassCyclic
		default:
			info.Class = ClassFixed
			info.FixedK = d.MaxLookahead()
		}
		res.Decisions = append(res.Decisions, info)

		res.Warnings = append(res.Warnings, deadProductions(dec, d)...)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// deadProductions reports alternatives never predicted by the DFA —
// the static analogue of the PEG A → a | ab hazard from Section 1.
func deadProductions(dec *atn.Decision, d *dfa.DFA) []Warning {
	reachable := map[int]bool{}
	for _, s := range d.States {
		if s.AcceptAlt > 0 {
			reachable[s.AcceptAlt] = true
		}
		for _, e := range s.PredEdges {
			reachable[e.Alt] = true
		}
	}
	var ws []Warning
	for alt := 1; alt <= dec.NAlts; alt++ {
		if !reachable[alt] {
			label := fmt.Sprintf("alternative %d", alt)
			if dec.HasExitAlt() && alt == dec.NAlts {
				// An unreachable exit branch means an infinite loop
				// grammar; still worth reporting, with a clearer label.
				label = "loop exit branch"
			}
			ws = append(ws, Warning{
				Decision: dec.ID,
				Kind:     WarnDeadProduction,
				Alts:     []int{alt},
				Msg:      fmt.Sprintf("%s of %s can never be matched", label, dec.Desc),
			})
		}
	}
	return ws
}
