package core

import (
	"errors"
	"fmt"
	"sort"

	"llstar/internal/atn"
	"llstar/internal/dfa"
	"llstar/internal/token"
)

// errLikelyNonLLRegular aborts DFA construction when closure detects
// recursive submachine invocations in more than one alternative
// (Section 5.4).
var errLikelyNonLLRegular = errors.New("likely non-LL-regular decision")

// errResourceLimit aborts construction when the DFA grows past
// MaxDFAStates.
var errResourceLimit = errors.New("DFA construction resource limit")

// decAnalysis constructs the lookahead DFA for one decision.
type decAnalysis struct {
	m      *atn.Machine
	dec    *atn.Decision
	opts   Options
	shared *firstSets

	d        *dfa.DFA
	interned map[string]*dfa.State // signature -> materialized state
	work     []*dState
	warnings []Warning

	// closureCalls counts invocations of closure (Algorithm 9) for the
	// analysis profile; an int increment, so cheap enough to track
	// unconditionally.
	closureCalls int
}

func newDecAnalysis(m *atn.Machine, dec *atn.Decision, opts Options, shared *firstSets) *decAnalysis {
	return &decAnalysis{
		m:      m,
		dec:    dec,
		opts:   opts,
		shared: shared,
		d:      dfa.New(dec.ID, dec.Desc),
	}
}

// hoistedPred returns the predicate gating alternative alt: an explicit
// semantic predicate, an explicit syntactic predicate (erased to a
// semantic predicate per Section 4.1), or — in PEG mode — the auto
// speculation predicate. Loop/optional exit branches are never gated.
func (a *decAnalysis) hoistedPred(alt int) *predRef {
	if sp := a.dec.SemPreds[alt-1]; sp != nil {
		return &predRef{kind: dfa.PredSem, sem: sp, alt: alt}
	}
	if id := a.dec.SynPreds[alt-1]; id >= 0 {
		return &predRef{kind: dfa.PredSyn, synID: id, alt: alt}
	}
	if a.dec.HasExitAlt() && alt == a.dec.NAlts {
		// Loop/optional exit: always viable. This is what lets a
		// predicated precedence loop (Section 1.1) exit when the
		// operator predicate fails, and what makes PEG-mode loops exit
		// when every speculative body attempt fails.
		return &predRef{kind: dfa.PredTrue, alt: alt}
	}
	if a.dec.Backtrack {
		return &predRef{kind: dfa.PredAuto, alt: alt}
	}
	return nil
}

// construct is createDFA (Algorithm 8). On a likely-non-LL-regular abort
// or resource exhaustion it builds the Section 5.4 fallback instead.
func (a *decAnalysis) construct() *dfa.DFA {
	d, err := a.constructExact()
	if err != nil {
		kind := WarnNonLLRegular
		msg := fmt.Sprintf("%s: recursion in more than one alternative; failing over to LL(1) with backtracking", a.dec.Desc)
		if errors.Is(err, errResourceLimit) {
			kind = WarnResourceLimit
			msg = fmt.Sprintf("%s: DFA construction exceeded %d states; failing over to LL(1) with backtracking", a.dec.Desc, a.opts.MaxDFAStates)
		}
		a.warnings = append(a.warnings, Warning{Decision: a.dec.ID, Kind: kind, Msg: msg})
		return a.constructFallback(err.Error())
	}
	return d
}

func (a *decAnalysis) constructExact() (*dfa.DFA, error) {
	a.interned = make(map[string]*dfa.State)
	a.work = nil

	D0 := newDState()
	for alt := 1; alt <= a.dec.NAlts; alt++ {
		c := &config{state: a.dec.AltStart[alt-1], alt: alt, pred: a.hoistedPred(alt)}
		if err := a.closure(D0, c); err != nil {
			return nil, err
		}
	}
	a.d.Start = a.materialize(D0)

	for len(a.work) > 0 {
		D := a.work[0]
		a.work = a.work[1:]
		if err := a.expand(D); err != nil {
			return nil, err
		}
	}
	return a.d, nil
}

// materialize interns D as a DFA state (or returns the existing one) and
// queues it for edge expansion if it predicts more than one alternative.
func (a *decAnalysis) materialize(D *dState) *dfa.State {
	sig := D.signature()
	if s, ok := a.interned[sig]; ok {
		return s
	}
	s := a.d.NewState()
	s.Configs = D.configsDesc()
	a.interned[sig] = s
	D.ds = s

	// Predicate edges for resolved configurations (end of Algorithm 8's
	// main loop), one per alternative, in precedence order.
	predByAlt := map[int]*predRef{}
	for _, c := range D.configs {
		if c.resolved && c.pred != nil {
			predByAlt[c.alt] = c.pred
		}
	}
	if len(predByAlt) > 0 {
		alts := make([]int, 0, len(predByAlt))
		for alt := range predByAlt {
			alts = append(alts, alt)
		}
		sort.Ints(alts)
		for i, alt := range alts {
			p := predByAlt[alt]
			e := dfa.PredEdge{Alt: alt}
			switch p.kind {
			case dfa.PredSem:
				e.Kind, e.Sem = dfa.PredSem, p.sem
			case dfa.PredSyn:
				e.Kind, e.SynID = dfa.PredSyn, p.synID
			case dfa.PredTrue:
				e.Kind = dfa.PredTrue
			default:
				e.Kind = dfa.PredAuto
				// The lowest-precedence speculation becomes the default
				// branch: if everything else failed, parse it normally
				// and let errors surface with full context.
				if i == len(alts)-1 && !a.hasUnresolved(D) {
					e.Kind = dfa.PredTrue
				}
			}
			s.PredEdges = append(s.PredEdges, e)
		}
	}

	if a.hasUnresolved(D) {
		a.work = append(a.work, D)
	}
	return s
}

// hasUnresolved reports whether D still has configurations that should be
// pursued with more lookahead.
func (a *decAnalysis) hasUnresolved(D *dState) bool {
	for _, c := range D.configs {
		if !c.resolved {
			return true
		}
	}
	return false
}

// expand computes D's outgoing token edges: move+closure per symbol class
// (the TD loop of Algorithm 8).
func (a *decAnalysis) expand(D *dState) error {
	mentioned, hasOther := a.symbolClasses(D)

	for _, t := range mentioned {
		tt := t
		target, err := a.moveClosure(D, func(tr *atn.Trans) bool { return tr.Matches(tt) })
		if err != nil {
			return err
		}
		if target != nil {
			D.ds.Edges[tt] = target
		}
	}
	if hasOther {
		// All token types not explicitly mentioned behave identically:
		// they can only be matched by wildcard or negated-set edges.
		target, err := a.moveClosure(D, func(tr *atn.Trans) bool {
			switch tr.Kind {
			case atn.TWildcard:
				return true
			case atn.TSet:
				return tr.Negated
			}
			return false
		})
		if err != nil {
			return err
		}
		if target != nil {
			D.ds.Default = target
		}
	}
	return nil
}

// symbolClasses returns the token types explicitly mentioned by D's
// terminal transitions (sorted) and whether an "everything else" class
// exists (wildcard or negated-set transitions).
func (a *decAnalysis) symbolClasses(D *dState) ([]token.Type, bool) {
	set := token.NewSet()
	hasEOF := false
	hasOther := false
	for _, c := range D.configs {
		if c.resolved {
			continue
		}
		for _, tr := range c.state.Trans {
			switch tr.Kind {
			case atn.TAtom:
				if tr.Sym == token.EOF {
					hasEOF = true
				} else {
					set.Add(tr.Sym)
				}
			case atn.TSet:
				set.AddSet(tr.Set)
				if tr.Negated {
					hasOther = true
				}
			case atn.TWildcard:
				hasOther = true
			}
		}
	}
	types := set.Types()
	if hasEOF {
		types = append(types, token.EOF)
	}
	return types, hasOther
}

// moveClosure is move(D, a) followed by closure of each reached
// configuration, then resolution and materialization of the target state.
// It returns nil if no configuration moves on this class.
func (a *decAnalysis) moveClosure(D *dState, match func(*atn.Trans) bool) (*dfa.State, error) {
	Dp := newDState()
	Dp.depth = D.depth + 1
	moved := false
	for _, c := range D.configs {
		if c.resolved {
			continue
		}
		for _, tr := range c.state.Trans {
			if !match(tr) {
				continue
			}
			moved = true
			nc := &config{state: tr.To, alt: c.alt, stk: c.stk, pred: c.pred}
			if err := a.closure(Dp, nc); err != nil {
				return nil, err
			}
		}
	}
	if !moved || len(Dp.configs) == 0 {
		return nil, nil
	}

	a.resolve(Dp)
	if a.opts.MaxK > 0 && Dp.depth >= a.opts.MaxK && a.hasUnresolved(Dp) && len(Dp.alts()) > 1 {
		// Fixed-k mode: out of lookahead budget; force a resolution now.
		a.forceResolve(Dp, fmt.Sprintf("exceeds fixed lookahead k=%d", a.opts.MaxK))
	}

	alts := Dp.alts()
	if len(alts) == 1 {
		// All configurations predict the same production: accept state,
		// no more lookahead needed (this is what makes the DFA match the
		// minimal lookahead sets LA_i rather than all of R_i).
		return a.d.Accept(alts[0]), nil
	}
	if a.d.NumStates() >= a.opts.MaxDFAStates {
		return nil, errResourceLimit
	}
	return a.materialize(Dp), nil
}

// closure is Algorithm 9: it adds c and every configuration reachable
// from c via non-terminal edges, simulating rule invocation and return.
func (a *decAnalysis) closure(D *dState, c *config) error {
	a.closureCalls++
	key := c.key()
	if D.busy[key] {
		return nil
	}
	D.busy[key] = true
	D.add(c)

	p := c.state
	if p.Stop {
		if c.stk != nil {
			// Pop the return state and continue there.
			if err := a.closure(D, &config{state: c.stk.state, alt: c.alt, stk: c.stk.parent, pred: c.pred}); err != nil {
				return err
			}
		} else {
			// Empty stack: statically unknown caller. Chase every call
			// site of this rule — and EOF, since any rule can be invoked
			// as the start rule, in which case nothing follows it.
			if err := a.closure(D, &config{state: a.m.EOFState(), alt: c.alt, pred: c.pred}); err != nil {
				return err
			}
			for _, f := range a.followRefs(p.RuleIndex) {
				if err := a.closure(D, &config{state: f, alt: c.alt, pred: c.pred}); err != nil {
					return err
				}
			}
		}
	}

	for _, tr := range p.Trans {
		switch tr.Kind {
		case atn.TRule:
			depth := 0
			if c.stk != nil {
				depth = c.stk.count(tr.Follow)
			}
			if depth == 1 {
				D.recursiveAlts[c.alt] = true
				if len(D.recursiveAlts) > 1 {
					return errLikelyNonLLRegular
				}
			}
			if depth >= a.opts.M {
				// Recursion governor m: stop pursuing this configuration
				// (Section 5.3) and mark the state overflowed.
				D.overflowed = true
				return nil
			}
			if err := a.closure(D, &config{state: tr.Start, alt: c.alt, stk: push(c.stk, tr.Follow), pred: c.pred}); err != nil {
				return err
			}
		case atn.TEpsilon, atn.TPred, atn.TAction:
			if err := a.closure(D, &config{state: tr.To, alt: c.alt, stk: c.stk, pred: c.pred}); err != nil {
				return err
			}
		}
	}
	return nil
}

// followRefs returns the call-site follow states for a rule index,
// guarding synthetic (negative) indexes used by synpred fragments.
func (a *decAnalysis) followRefs(ruleIndex int) []*atn.State {
	if ruleIndex < 0 || ruleIndex >= len(a.m.FollowRefs) {
		return nil
	}
	return a.m.FollowRefs[ruleIndex]
}
