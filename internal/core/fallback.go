package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"llstar/internal/atn"
	"llstar/internal/dfa"
	"llstar/internal/grammar"
	"llstar/internal/token"
)

// firstInfo is an approximate FIRST set for an alternative or rule: the
// token types it can start with, whether it can start with "anything"
// (wildcard / negated-set / unknown follow), and whether it can match
// nothing at all (transparent — its continuation is the enclosing
// context, statically unknown here).
type firstInfo struct {
	set         *token.Set
	any         bool
	transparent bool
}

// firstSets holds per-rule approximate FIRST data shared across decisions.
type firstSets struct {
	m        *atn.Machine
	nullable []bool       // by parser-rule index
	first    []*firstInfo // by parser-rule index
}

func computeFirstSets(m *atn.Machine) *firstSets {
	g := m.Grammar
	byName := grammar.NullableRules(g)
	fs := &firstSets{
		m:        m,
		nullable: make([]bool, len(g.Rules)),
		first:    make([]*firstInfo, len(g.Rules)),
	}
	for _, r := range g.Rules {
		fs.nullable[r.Index] = byName[r.Name]
		fs.first[r.Index] = &firstInfo{set: token.NewSet()}
	}
	// Fixpoint: rules may be mutually recursive.
	for changed := true; changed; {
		changed = false
		for _, r := range g.Rules {
			info := fs.walkFirst(m.RuleStart[r.Index])
			cur := fs.first[r.Index]
			if !cur.set.Equal(info.set) || cur.any != info.any {
				cur.set = info.set
				cur.any = info.any
				changed = true
			}
		}
	}
	return fs
}

// walkFirst computes the FIRST info reachable from an ATN state without
// entering callee submachines (their FIRST sets are unioned in; nullable
// callees are stepped over).
func (fs *firstSets) walkFirst(start *atn.State) *firstInfo {
	info := &firstInfo{set: token.NewSet()}
	seen := map[int]bool{}
	var walk func(s *atn.State)
	walk = func(s *atn.State) {
		if seen[s.ID] {
			return
		}
		seen[s.ID] = true
		if s.Stop {
			info.transparent = true
			return
		}
		for _, tr := range s.Trans {
			switch tr.Kind {
			case atn.TAtom:
				info.set.Add(tr.Sym)
			case atn.TSet:
				if tr.Negated {
					info.any = true
				} else {
					info.set.AddSet(tr.Set)
				}
			case atn.TWildcard:
				info.any = true
			case atn.TRule:
				callee := fs.first[tr.RuleIndex]
				info.set.AddSet(callee.set)
				if callee.any {
					info.any = true
				}
				if fs.nullable[tr.RuleIndex] {
					walk(tr.Follow)
				}
			case atn.TEpsilon, atn.TPred, atn.TAction:
				walk(tr.To)
			}
		}
	}
	walk(start)
	return info
}

// constructFallback builds the Section 5.4 decision: approximate LL(1)
// token dispatch, with backtracking/predicate states for tokens claimed
// by more than one alternative.
func (a *decAnalysis) constructFallback(reason string) *dfa.DFA {
	d := dfa.New(a.dec.ID, a.dec.Desc)
	d.Fallback = reason
	start := d.NewState()
	d.Start = start

	n := a.dec.NAlts
	alts := make([]*firstInfo, n)
	for i := 0; i < n; i++ {
		alts[i] = a.shared.walkFirst(a.dec.AltStart[i])
	}

	mentioned := token.NewSet()
	for _, fi := range alts {
		mentioned.AddSet(fi.set)
	}

	conflictStates := map[string]*dfa.State{}
	target := func(owners []int) *dfa.State {
		if len(owners) == 1 {
			return d.Accept(owners[0])
		}
		key := ownersKey(owners)
		if s, ok := conflictStates[key]; ok {
			return s
		}
		s := d.NewState()
		s.PredEdges = a.fallbackPredEdges(owners)
		conflictStates[key] = s
		return s
	}

	// Owners of any token not explicitly mentioned: alternatives that can
	// start with anything, or that can match nothing (their continuation
	// is unknown).
	var anyOwners []int
	for i, fi := range alts {
		if fi.any || fi.transparent {
			anyOwners = append(anyOwners, i+1)
		}
	}

	for _, t := range mentioned.Types() {
		var owners []int
		for i, fi := range alts {
			if fi.set.Contains(t) || fi.any || fi.transparent {
				owners = append(owners, i+1)
			}
		}
		if len(owners) > 0 {
			start.Edges[t] = target(owners)
		}
	}
	if len(anyOwners) > 0 {
		start.Default = target(anyOwners)
	}
	// EOF can only follow transparent alternatives.
	var eofOwners []int
	for i, fi := range alts {
		if fi.transparent {
			eofOwners = append(eofOwners, i+1)
		}
	}
	if len(eofOwners) > 0 {
		start.Edges[token.EOF] = target(eofOwners)
	}
	return d
}

func ownersKey(owners []int) string {
	parts := make([]string, len(owners))
	for i, o := range owners {
		parts[i] = strconv.Itoa(o)
	}
	return strings.Join(parts, ",")
}

// fallbackPredEdges resolves a token claimed by several alternatives:
// predicate edges in precedence order if every owner has one, otherwise a
// static order-based resolution with a warning.
func (a *decAnalysis) fallbackPredEdges(owners []int) []dfa.PredEdge {
	sort.Ints(owners)
	preds := make([]*predRef, len(owners))
	all := true
	for i, alt := range owners {
		preds[i] = a.hoistedPred(alt)
		if preds[i] == nil {
			// The `(α)=> a | b` idiom: a single unpredicated owner in
			// last (lowest-precedence) position is the default branch.
			if i == len(owners)-1 && all {
				preds[i] = &predRef{kind: dfa.PredTrue, alt: alt}
			} else {
				all = false
			}
		}
	}
	if !all {
		min := owners[0]
		a.warnings = append(a.warnings, Warning{
			Decision: a.dec.ID,
			Kind:     WarnAmbiguity,
			Alts:     owners,
			Msg: fmt.Sprintf("%s: approximate lookahead cannot separate alternatives %v; resolving in favor of alternative %d",
				a.dec.Desc, owners, min),
		})
		return []dfa.PredEdge{{Kind: dfa.PredTrue, Alt: min}}
	}
	edges := make([]dfa.PredEdge, 0, len(owners))
	for i, alt := range owners {
		p := preds[i]
		e := dfa.PredEdge{Alt: alt}
		switch p.kind {
		case dfa.PredSem:
			e.Kind, e.Sem = dfa.PredSem, p.sem
		case dfa.PredSyn:
			e.Kind, e.SynID = dfa.PredSyn, p.synID
		case dfa.PredTrue:
			e.Kind = dfa.PredTrue
		default:
			e.Kind = dfa.PredAuto
			if i == len(owners)-1 {
				e.Kind = dfa.PredTrue
			}
		}
		edges = append(edges, e)
	}
	return edges
}
