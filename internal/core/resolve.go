package core

import (
	"fmt"
	"sort"

	"llstar/internal/dfa"
)

// resolve is Algorithm 10: detect conflicting configurations in D and
// resolve them — with predicates if every conflicting alternative has
// one, otherwise statically in favor of the lowest-numbered alternative
// (production order, the paper's ambiguity policy).
func (a *decAnalysis) resolve(D *dState) {
	conflicts := a.conflictSet(D)
	if len(conflicts) == 0 && !D.overflowed {
		return
	}
	if len(conflicts) == 0 {
		// Recursion overflow: the state may still predict multiple
		// alternatives even without formally conflicting configurations.
		alts := D.alts()
		if len(alts) <= 1 {
			return
		}
		conflicts = alts
	}

	if a.resolveWithPreds(D, conflicts) {
		return
	}

	// Remove every conflicting configuration not belonging to the
	// lowest-numbered conflicting alternative.
	min := conflicts[0]
	a.removeAlts(D, conflicts[1:])

	kind := WarnAmbiguity
	verb := "input can be matched by multiple alternatives"
	if D.overflowed {
		kind = WarnRecursionOverflow
		verb = "recursion overflow while computing lookahead"
	}
	a.warnings = append(a.warnings, Warning{
		Decision: a.dec.ID,
		Kind:     kind,
		Alts:     conflicts,
		Msg: fmt.Sprintf("%s: %s between alternatives %v; resolving in favor of alternative %d",
			a.dec.Desc, verb, conflicts, min),
	})
}

// conflictSet returns the sorted set of alternatives involved in
// conflicting configurations (Definition 7): same ATN state, equivalent
// stacks, different alternatives.
func (a *decAnalysis) conflictSet(D *dState) []int {
	byState := map[int][]*config{}
	for _, c := range D.configs {
		byState[c.state.ID] = append(byState[c.state.ID], c)
	}
	conflict := map[int]bool{}
	for _, group := range byState {
		if len(group) < 2 {
			continue
		}
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				ci, cj := group[i], group[j]
				if ci.alt != cj.alt && equivStacks(ci.stk, cj.stk) {
					conflict[ci.alt] = true
					conflict[cj.alt] = true
				}
			}
		}
	}
	out := make([]int, 0, len(conflict))
	for alt := range conflict {
		out = append(out, alt)
	}
	sort.Ints(out)
	return out
}

// resolveWithPreds is Algorithm 11: if every conflicting alternative has
// a (hoisted) predicate, mark its configurations resolved so the DFA gets
// predicate transitions instead of an ambiguity warning. One extension
// beyond the paper's strict rule, matching ANTLR's behavior for the
// standard `(α)=> a | b` idiom: when exactly one conflicting alternative
// lacks a predicate and it is the lowest-precedence (highest-numbered)
// one, it becomes the always-true default branch.
func (a *decAnalysis) resolveWithPreds(D *dState, conflicts []int) bool {
	havePred := map[int]bool{}
	for _, c := range D.configs {
		if c.pred != nil {
			havePred[c.alt] = true
		}
	}
	var unpred []int
	for _, alt := range conflicts {
		if !havePred[alt] {
			unpred = append(unpred, alt)
		}
	}
	var defaultAlt int
	switch {
	case len(unpred) == 0:
		// Algorithm 11's normal success case.
	case len(unpred) == 1 && unpred[0] == conflicts[len(conflicts)-1]:
		defaultAlt = unpred[0]
	default:
		return false
	}
	inConflict := map[int]bool{}
	for _, alt := range conflicts {
		inConflict[alt] = true
	}
	for _, c := range D.configs {
		if !inConflict[c.alt] {
			continue
		}
		if c.alt == defaultAlt && c.pred == nil {
			c.pred = &predRef{kind: dfa.PredTrue, alt: c.alt}
		}
		c.resolved = true
	}
	return true
}

// forceResolve resolves all of D's remaining alternatives immediately —
// used when a fixed lookahead budget k runs out.
func (a *decAnalysis) forceResolve(D *dState, reason string) {
	alts := a.unresolvedAlts(D)
	if len(alts) <= 1 {
		return
	}
	if a.resolveWithPreds(D, alts) {
		return
	}
	min := alts[0]
	a.removeAlts(D, alts[1:])
	a.warnings = append(a.warnings, Warning{
		Decision: a.dec.ID,
		Kind:     WarnAmbiguity,
		Alts:     alts,
		Msg: fmt.Sprintf("%s: %s; resolving alternatives %v in favor of alternative %d",
			a.dec.Desc, reason, alts, min),
	})
}

func (a *decAnalysis) unresolvedAlts(D *dState) []int {
	seen := map[int]bool{}
	for _, c := range D.configs {
		if !c.resolved {
			seen[c.alt] = true
		}
	}
	out := make([]int, 0, len(seen))
	for alt := range seen {
		out = append(out, alt)
	}
	sort.Ints(out)
	return out
}

// removeAlts deletes configurations belonging to the given alternatives
// unless they are already predicate-resolved.
func (a *decAnalysis) removeAlts(D *dState, alts []int) {
	drop := map[int]bool{}
	for _, alt := range alts {
		drop[alt] = true
	}
	kept := D.configs[:0]
	for _, c := range D.configs {
		if drop[c.alt] && !c.resolved {
			// Also remove from the subsumption group index.
			gk := c.groupKey()
			group := D.groups[gk]
			for i, e := range group {
				if e == c {
					D.groups[gk] = append(group[:i], group[i+1:]...)
					break
				}
			}
			continue
		}
		kept = append(kept, c)
	}
	D.configs = kept
}
