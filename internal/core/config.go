// Package core implements the LL(*) grammar analysis algorithm (Section 5
// of the paper): for every parsing decision it runs a modified subset
// construction over the ATN (Algorithms 8–11) to build a lookahead DFA,
// resolving ambiguities with predicates or production order, guarding
// recursion with the depth governor m (Section 5.3), and falling back to
// approximate LL(1)-plus-backtracking when the decision is likely not
// LL-regular (Section 5.4).
package core

import (
	"sort"
	"strconv"
	"strings"

	"llstar/internal/atn"
	"llstar/internal/dfa"
	"llstar/internal/grammar"
)

// stack is an immutable ATN call stack (γ in the paper). The top of the
// stack is the most recent return state. nil is the empty stack, which
// Definition 6 treats as a wildcard.
type stack struct {
	state  *atn.State
	parent *stack
	size   int
	key    string
}

func push(st *stack, s *atn.State) *stack {
	n := &stack{state: s, parent: st, size: 1}
	if st != nil {
		n.size += st.size
		n.key = strconv.Itoa(s.ID) + "." + st.key
	} else {
		n.key = strconv.Itoa(s.ID)
	}
	return n
}

func (st *stack) count(s *atn.State) int {
	n := 0
	for p := st; p != nil; p = p.parent {
		if p.state == s {
			n++
		}
	}
	return n
}

// equivStacks implements Definition 6 stack equivalence: equal, at least
// one empty, or the shorter equal to the top portion of the longer (the
// paper's "suffix" in leftmost-top string notation).
func equivStacks(a, b *stack) bool {
	for a != nil && b != nil {
		if a.state != b.state {
			return false
		}
		a, b = a.parent, b.parent
	}
	return true // one (or both) ran out: empty or top-aligned prefix
}

// predRef is the hoisted predicate attached to an alternative's
// configurations (π in the paper). Kind reuses the DFA predicate kinds:
// semantic, compiled syntactic predicate, or PEG-mode auto speculation.
type predRef struct {
	kind  dfa.PredKind
	sem   *grammar.SemPred
	synID int
	alt   int
}

func (p *predRef) key() string {
	if p == nil {
		return "-"
	}
	switch p.kind {
	case dfa.PredSem:
		return "s:" + p.sem.Text
	case dfa.PredSyn:
		return "y:" + strconv.Itoa(p.synID)
	case dfa.PredTrue:
		return "t:" + strconv.Itoa(p.alt)
	default:
		return "a:" + strconv.Itoa(p.alt)
	}
}

// config is an ATN configuration (p, i, γ, π) with the wasResolved mark
// used by Algorithms 10–11.
type config struct {
	state    *atn.State
	alt      int
	stk      *stack
	pred     *predRef
	resolved bool
}

func (c *config) key() string {
	k := strconv.Itoa(c.state.ID) + "|" + strconv.Itoa(c.alt) + "|"
	if c.stk != nil {
		k += c.stk.key
	}
	return k + "|" + c.pred.key()
}

// groupKey identifies the (state, alt, pred) group for subsumption.
func (c *config) groupKey() string {
	return strconv.Itoa(c.state.ID) + "|" + strconv.Itoa(c.alt) + "|" + c.pred.key()
}

// dState is a DFA state under construction: a set of ATN configurations
// plus the bookkeeping from Algorithms 8–9.
type dState struct {
	configs []*config
	groups  map[string][]*config // groupKey -> configs, for subsumption
	busy    map[string]bool      // closure busy set

	recursiveAlts map[int]bool
	overflowed    bool

	depth int // token edges from D0, for fixed-k capping

	ds *dfa.State // materialized DFA state, once interned
}

func newDState() *dState {
	return &dState{
		groups:        make(map[string][]*config),
		busy:          make(map[string]bool),
		recursiveAlts: make(map[int]bool),
	}
}

// add inserts c unless an equivalent (Definition 6) configuration already
// subsumes it; a more general c (shorter/empty stack) replaces subsumed
// entries. Reports whether the set changed.
func (D *dState) add(c *config) bool {
	gk := c.groupKey()
	group := D.groups[gk]
	for i, e := range group {
		if equivStacks(e.stk, c.stk) {
			if sizeOf(e.stk) <= sizeOf(c.stk) {
				return false // existing is as general or more
			}
			// c is more general: replace in place.
			group[i] = c
			for j, o := range D.configs {
				if o == e {
					D.configs[j] = c
					break
				}
			}
			return true
		}
	}
	D.groups[gk] = append(group, c)
	D.configs = append(D.configs, c)
	return true
}

func sizeOf(st *stack) int {
	if st == nil {
		return 0
	}
	return st.size
}

// signature returns a canonical identity for the configuration set,
// including resolution marks (Definition 6 state equivalence, after
// subsumption canonicalization).
func (D *dState) signature() string {
	keys := make([]string, 0, len(D.configs))
	for _, c := range D.configs {
		k := c.key()
		if c.resolved {
			k += "|R"
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// alts returns the distinct predicted alternatives, ascending.
func (D *dState) alts() []int {
	seen := map[int]bool{}
	for _, c := range D.configs {
		seen[c.alt] = true
	}
	out := make([]int, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// configsDesc renders the configuration set for diagnostics.
func (D *dState) configsDesc() string {
	var parts []string
	for _, c := range D.configs {
		s := "(" + c.state.String() + "," + strconv.Itoa(c.alt)
		if c.stk != nil {
			s += ",[" + c.stk.key + "]"
		}
		if c.pred != nil {
			s += "," + c.pred.key()
		}
		if c.resolved {
			s += ",resolved"
		}
		parts = append(parts, s+")")
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}
