package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func grammarNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("grammar-%03d", i)
	}
	return names
}

func peerSet(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("10.0.0.%d:8080", i+1)
	}
	return peers
}

// Same peer set (any permutation) must yield byte-identical
// grammar→owner assignment — the property every node and every client
// relies on to route without coordination.
func TestRingDeterminism(t *testing.T) {
	peers := peerSet(5)
	keys := grammarNames(500)
	want := NewRing(peers, 0).Assign(keys, 0, nil)
	if len(want) != len(keys) {
		t.Fatalf("assigned %d of %d keys", len(want), len(keys))
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		shuffledPeers := append([]string(nil), peers...)
		rng.Shuffle(len(shuffledPeers), func(i, j int) {
			shuffledPeers[i], shuffledPeers[j] = shuffledPeers[j], shuffledPeers[i]
		})
		shuffledKeys := append([]string(nil), keys...)
		rng.Shuffle(len(shuffledKeys), func(i, j int) {
			shuffledKeys[i], shuffledKeys[j] = shuffledKeys[j], shuffledKeys[i]
		})
		got := NewRing(shuffledPeers, 0).Assign(shuffledKeys, 0, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: assignment differs under permutation", trial)
		}
	}
}

// Owner must be deterministic too (session routing uses the plain ring
// walk, not the bounded placement).
func TestRingOwnerDeterminism(t *testing.T) {
	a := NewRing(peerSet(7), 0)
	b := NewRing(peerSet(7), 0)
	for _, k := range grammarNames(200) {
		if a.Owner(k, nil) != b.Owner(k, nil) {
			t.Fatalf("Owner(%q) differs between identical rings", k)
		}
	}
}

// Adding one replica to a ring of N must move only ~1/(N+1) of the
// keys — the consistent-hashing contract. Bounded-load spill adds some
// churn on top of the pure ring bound, so allow 2x slack.
func TestRingRebalanceBound(t *testing.T) {
	keys := grammarNames(1000)
	before := NewRing(peerSet(4), 0).Assign(keys, 0, nil)
	after := NewRing(peerSet(5), 0).Assign(keys, 0, nil)
	moved := 0
	for k, owner := range before {
		if after[k] != owner {
			moved++
		}
	}
	limit := 2 * len(keys) / 5
	if moved > limit {
		t.Fatalf("adding 5th replica moved %d/%d keys; want <= %d (~2/N)", moved, len(keys), limit)
	}
	if moved == 0 {
		t.Fatal("adding a replica moved no keys; new replica got nothing")
	}
}

// No replica may exceed the bounded-load cap ceil(c*K/N)+1, and every
// replica must receive a meaningful share.
func TestRingBoundedLoad(t *testing.T) {
	keys := grammarNames(600)
	r := NewRing(peerSet(6), 0)
	assign := r.Assign(keys, 0, nil)
	load := map[string]int{}
	for _, owner := range assign {
		load[owner]++
	}
	bound := int(DefaultLoadFactor*float64(len(keys))/6) + 1
	for _, p := range r.Peers() {
		if load[p] > bound {
			t.Errorf("peer %s owns %d keys, exceeds bound %d", p, load[p], bound)
		}
		if load[p] == 0 {
			t.Errorf("peer %s owns no keys", p)
		}
	}
}

// Down peers receive nothing; their keys redistribute across the
// survivors and every key stays placed.
func TestRingAssignSkipsDownPeers(t *testing.T) {
	peers := peerSet(4)
	keys := grammarNames(200)
	down := peers[1]
	up := func(p string) bool { return p != down }
	assign := NewRing(peers, 0).Assign(keys, 0, up)
	if len(assign) != len(keys) {
		t.Fatalf("assigned %d of %d keys with one peer down", len(assign), len(keys))
	}
	for k, owner := range assign {
		if owner == down {
			t.Fatalf("key %q assigned to down peer", k)
		}
	}
}

func TestRingPreferenceOrder(t *testing.T) {
	r := NewRing(peerSet(5), 0)
	pref := r.Preference("grammar-007", nil)
	if len(pref) != 5 {
		t.Fatalf("Preference returned %d peers, want 5", len(pref))
	}
	if pref[0] != r.Owner("grammar-007", nil) {
		t.Fatalf("Preference[0] = %q, Owner = %q", pref[0], r.Owner("grammar-007", nil))
	}
	seen := map[string]bool{}
	for _, p := range pref {
		if seen[p] {
			t.Fatalf("peer %q repeated in preference list", p)
		}
		seen[p] = true
	}
}

func TestRingSinglePeer(t *testing.T) {
	r := NewRing([]string{"127.0.0.1:9000"}, 0)
	if got := r.Owner("anything", nil); got != "127.0.0.1:9000" {
		t.Fatalf("Owner = %q", got)
	}
	assign := r.Assign(grammarNames(10), 0, nil)
	for k, owner := range assign {
		if owner != "127.0.0.1:9000" {
			t.Fatalf("key %q assigned to %q", k, owner)
		}
	}
}

func TestRingDedupAndEmpty(t *testing.T) {
	r := NewRing([]string{"b:1", "a:1", "b:1", ""}, 0)
	if r.Size() != 2 {
		t.Fatalf("Size = %d, want 2", r.Size())
	}
	if got := r.Peers(); got[0] != "a:1" || got[1] != "b:1" {
		t.Fatalf("Peers = %v", got)
	}
	empty := NewRing(nil, 0)
	if empty.Owner("x", nil) != "" {
		t.Fatal("empty ring returned an owner")
	}
	if got := empty.Assign([]string{"x"}, 0, nil); len(got) != 0 {
		t.Fatalf("empty ring assigned keys: %v", got)
	}
}
