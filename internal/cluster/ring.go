// Package cluster is the fleet layer of llstar-serve: a consistent-hash
// ring that maps grammar names (and session ids) to owner replicas, a
// static-membership peer set with lightweight health probes, and an
// artifact-distribution client that pulls compiled .llsc analyses from
// peers by fingerprint so one node's analysis warms the whole fleet.
//
// The ring is a pure function of the peer set: every node (and every
// client that fetches /v1/cluster) computes byte-identical placements
// from the same membership, so requests route without coordination.
// Placement over a known key set uses the bounded-load variant of
// consistent hashing: keys that would push a replica past
// ceil(LoadFactor * keys/replicas) spill deterministically to the next
// replica on the ring, so no node owns a disproportionate share of
// grammars. See docs/cluster.md.
package cluster

import (
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per replica. More vnodes
// smooth the key distribution (each replica's arc share concentrates
// around 1/N) at a small memory cost; 64 keeps the worst replica
// within a few percent of fair for fleets of practical size.
const DefaultVNodes = 64

// DefaultLoadFactor is the bounded-load factor c: in a placement over
// K keys and N live replicas, no replica is assigned more than
// ceil(c*K/N) keys.
const DefaultLoadFactor = 1.25

// fnv1a64 is the ring's hash: deterministic across processes,
// architectures, and restarts (unlike hash/maphash), cheap, and good
// enough for key spreading when fed through vnode mixing.
func fnv1a64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix is a 64-bit finalizer (splitmix64) applied on top of fnv1a64 so
// vnode points for peer#0..peer#63 don't cluster.
func mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// point is one virtual node: a position on the ring and the index of
// the peer it belongs to.
type point struct {
	hash uint64
	peer int
}

// Ring is an immutable consistent-hash ring over a set of peer
// addresses. Construct with NewRing; all methods are safe for
// concurrent use.
type Ring struct {
	peers  []string // sorted, deduplicated
	points []point  // sorted by hash
	vnodes int
}

// NewRing builds a ring over peers with the given virtual-node count
// (<= 0 means DefaultVNodes). The peer list is sorted and deduplicated,
// so rings built from any permutation of the same addresses are
// identical.
func NewRing(peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(peers))
	seen := map[string]bool{}
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		uniq = append(uniq, p)
	}
	sort.Strings(uniq)
	r := &Ring{peers: uniq, vnodes: vnodes}
	r.points = make([]point, 0, len(uniq)*vnodes)
	for i, p := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash: mix(fnv1a64(p + "#" + strconv.Itoa(v))),
				peer: i,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break on peer index so the
		// ordering stays total and deterministic.
		return r.points[i].peer < r.points[j].peer
	})
	return r
}

// Peers returns the sorted peer set.
func (r *Ring) Peers() []string { return r.peers }

// VNodes returns the per-peer virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Size returns the number of peers on the ring.
func (r *Ring) Size() int { return len(r.peers) }

// walk calls visit with the peers whose vnodes follow key's hash
// clockwise, each distinct peer once, until visit returns true or all
// peers have been offered.
func (r *Ring) walk(key string, visit func(peer string) bool) {
	if len(r.points) == 0 {
		return
	}
	h := mix(fnv1a64(key))
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	offered := make([]bool, len(r.peers))
	n := 0
	for i := 0; i < len(r.points) && n < len(r.peers); i++ {
		pt := r.points[(start+i)%len(r.points)]
		if offered[pt.peer] {
			continue
		}
		offered[pt.peer] = true
		n++
		if visit(r.peers[pt.peer]) {
			return
		}
	}
}

// Owner returns the first peer clockwise from key's ring position for
// which up returns true (nil up accepts every peer). It returns ""
// only when no peer qualifies.
func (r *Ring) Owner(key string, up func(string) bool) string {
	owner := ""
	r.walk(key, func(p string) bool {
		if up == nil || up(p) {
			owner = p
			return true
		}
		return false
	})
	return owner
}

// Preference returns every up peer in key's clockwise ring order — the
// owner first, then the successors a caller should try next (artifact
// fetch uses this so a miss on the owner falls to its neighbors).
func (r *Ring) Preference(key string, up func(string) bool) []string {
	var out []string
	r.walk(key, func(p string) bool {
		if up == nil || up(p) {
			out = append(out, p)
		}
		return false
	})
	return out
}

// Assign maps every key to an owner using bounded-load consistent
// hashing: keys are taken in sorted order, each walking the ring from
// its hash and landing on the first up peer whose assigned count is
// still under ceil(factor * len(keys) / liveN). The result is a pure
// function of (peer set, up set, key set, factor): every node — and
// every client — computes the same placement. factor <= 1 means
// DefaultLoadFactor.
func (r *Ring) Assign(keys []string, factor float64, up func(string) bool) map[string]string {
	if factor <= 1 {
		factor = DefaultLoadFactor
	}
	live := 0
	for _, p := range r.peers {
		if up == nil || up(p) {
			live++
		}
	}
	out := make(map[string]string, len(keys))
	if live == 0 || len(keys) == 0 {
		return out
	}
	bound := int(factor*float64(len(keys))/float64(live)) + 1
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	load := make(map[string]int, live)
	for _, k := range sorted {
		assigned := ""
		r.walk(k, func(p string) bool {
			if up != nil && !up(p) {
				return false
			}
			if load[p] >= bound {
				return false
			}
			assigned = p
			return true
		})
		if assigned == "" {
			// Every live peer is at the bound (can only happen when the
			// bound rounds low); fall back to the unbounded owner so no
			// key is left unplaced.
			assigned = r.Owner(k, up)
		}
		if assigned != "" {
			load[assigned]++
			out[k] = assigned
		}
	}
	return out
}
