package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"llstar/internal/obs"
)

// Config describes one replica's view of the fleet.
type Config struct {
	// Self is this replica's advertised address (host:port) — the
	// address peers and clients reach it at. Required.
	Self string
	// Peers is the full static peer set (host:port each). Self is added
	// if absent; order does not matter.
	Peers []string
	// VNodes is the per-peer virtual-node count (0 = DefaultVNodes).
	VNodes int
	// LoadFactor is the bounded-load factor for grammar placement
	// (0 = DefaultLoadFactor).
	LoadFactor float64

	// ProbeInterval is how often peers are health-probed (0 = 2s;
	// < 0 disables probing — peers stay up forever, the single-process
	// test mode).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request (0 = 1s).
	ProbeTimeout time.Duration
	// FailAfter is how many consecutive probe failures mark a peer down
	// (0 = 2). One successful probe marks it up again.
	FailAfter int

	// Client performs probe, proxy, and artifact-fetch requests. Nil
	// builds one with sane pooling.
	Client *http.Client

	// Metrics receives the llstar_cluster_* series; Tracer receives
	// cluster.fetch spans. Logger records membership transitions. All
	// optional.
	Metrics *obs.Metrics
	Tracer  obs.Tracer
	Logger  *slog.Logger

	// Events, when non-nil, receives fleet events for membership flips
	// and artifact fetches — the cluster's slice of /debug/events. The
	// server passes its own log so all layers share one timeline.
	Events *obs.EventLog
}

// peerState tracks one peer's health.
type peerState struct {
	up    bool
	fails int
}

// Cluster is one replica's live view of the fleet: the immutable ring
// plus mutable health state and the grammar placement derived from
// both. Safe for concurrent use.
type Cluster struct {
	cfg    Config
	ring   *Ring
	client *http.Client
	mx     *obs.Metrics
	tr     obs.Tracer
	log    *slog.Logger
	events *obs.EventLog

	mu       sync.Mutex
	peers    map[string]*peerState
	grammars []string          // sorted key set for placement
	place    map[string]string // grammar -> owner, rebuilt on change
	gen      int               // bumped on membership or grammar change
	placeGen int               // gen the placement was built at
	onChange []func()

	stop chan struct{}
	done chan struct{}
}

// New validates cfg and builds a Cluster. Probing does not start until
// Start.
func New(cfg Config) (*Cluster, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: Config.Self is required")
	}
	peers := append([]string{cfg.Self}, cfg.Peers...)
	ring := NewRing(peers, cfg.VNodes)
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout == 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 2
	}
	if cfg.LoadFactor <= 1 {
		cfg.LoadFactor = DefaultLoadFactor
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     30 * time.Second,
			},
		}
	}
	c := &Cluster{
		cfg:    cfg,
		ring:   ring,
		client: client,
		mx:     cfg.Metrics,
		tr:     obs.Active(cfg.Tracer),
		log:    cfg.Logger,
		events: cfg.Events,
		peers:  map[string]*peerState{},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	// Peers start optimistically up: a replica must be routable the
	// moment the fleet boots, before the first probe round completes.
	for _, p := range ring.Peers() {
		c.peers[p] = &peerState{up: true}
	}
	c.gauge()
	return c, nil
}

// Self returns this replica's advertised address.
func (c *Cluster) Self() string { return c.cfg.Self }

// Ring returns the (immutable) ring.
func (c *Cluster) Ring() *Ring { return c.ring }

// Size returns the total peer count (up or down).
func (c *Cluster) Size() int { return c.ring.Size() }

// Client returns the HTTP client used for intra-fleet requests (the
// server's proxy path shares it so connections pool).
func (c *Cluster) Client() *http.Client { return c.client }

// Up reports whether addr is currently considered reachable. Self is
// always up.
func (c *Cluster) Up(addr string) bool {
	if addr == c.cfg.Self {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.peers[addr]
	return st != nil && st.up
}

// LiveCount returns how many peers (including self) are up.
func (c *Cluster) LiveCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveCountLocked()
}

func (c *Cluster) liveCountLocked() int {
	n := 0
	for addr, st := range c.peers {
		if addr == c.cfg.Self || st.up {
			n++
		}
	}
	return n
}

// Quorum reports whether a majority of the ring is reachable.
func (c *Cluster) Quorum() bool {
	return c.LiveCount() >= c.ring.Size()/2+1
}

// OnChange registers f to run (on the prober goroutine) whenever a
// peer's up/down state flips. The server uses it to re-divide the
// global in-flight budget.
func (c *Cluster) OnChange(f func()) {
	c.mu.Lock()
	c.onChange = append(c.onChange, f)
	c.mu.Unlock()
}

// SetGrammars installs the grammar name set the placement is computed
// over (typically the registry's directory listing). Names are copied
// and sorted.
func (c *Cluster) SetGrammars(names []string) {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	c.mu.Lock()
	c.grammars = sorted
	c.gen++
	c.mu.Unlock()
}

// upLocked returns the up predicate for placement; callers hold mu.
func (c *Cluster) upLocked() func(string) bool {
	return func(addr string) bool {
		if addr == c.cfg.Self {
			return true
		}
		st := c.peers[addr]
		return st != nil && st.up
	}
}

// Placement returns the current grammar → owner map (bounded-load
// assignment over the installed grammar set and the live peer view).
// The map is shared and must not be mutated.
func (c *Cluster) Placement() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.place == nil || c.placeGen != c.gen {
		c.place = c.ring.Assign(c.grammars, c.cfg.LoadFactor, c.upLocked())
		c.placeGen = c.gen
	}
	return c.place
}

// GrammarOwner returns the replica that owns grammar name, and whether
// that is this replica. Names outside the installed grammar set fall
// back to the plain ring walk.
func (c *Cluster) GrammarOwner(name string) (addr string, self bool) {
	if owner, ok := c.Placement()[name]; ok {
		return owner, owner == c.cfg.Self
	}
	return c.KeyOwner(name)
}

// KeyOwner returns the live ring owner for an arbitrary key (session
// ids route through this), and whether that is this replica.
func (c *Cluster) KeyOwner(key string) (addr string, self bool) {
	c.mu.Lock()
	up := c.upLocked()
	c.mu.Unlock()
	owner := c.ring.Owner(key, up)
	if owner == "" {
		owner = c.cfg.Self
	}
	return owner, owner == c.cfg.Self
}

// MintKey returns a fresh random hex key that this replica owns on the
// ring, so any peer can later route requests for it here. Sessions use
// it as the session id: affinity falls out of ordinary ring routing
// with no session directory. The loop terminates fast — a uniformly
// random key lands on this replica with probability ~1/N.
func (c *Cluster) MintKey() string {
	for i := 0; i < 64*len(c.peers)+64; i++ {
		k := randHexKey()
		if owner, self := c.KeyOwner(k); self || owner == "" {
			return k
		}
	}
	// Statistically unreachable; a non-owned id still works, it just
	// loses affinity when another node handles it (single-hop proxy).
	return randHexKey()
}

func randHexKey() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Start launches the background health prober. Stop terminates it.
func (c *Cluster) Start() {
	if c.cfg.ProbeInterval < 0 {
		close(c.done)
		return
	}
	go c.probeLoop()
}

// Stop terminates the prober and waits for it to exit.
func (c *Cluster) Stop() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	<-c.done
}

func (c *Cluster) probeLoop() {
	defer close(c.done)
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	c.probeAll()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

// probeAll health-checks every peer once. Probes run sequentially —
// fleets are small and the timeout bounds the round.
func (c *Cluster) probeAll() {
	for _, addr := range c.ring.Peers() {
		if addr == c.cfg.Self {
			continue
		}
		c.recordProbe(addr, c.probe(addr))
	}
}

// probe performs one GET /healthz against addr.
func (c *Cluster) probe(addr string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// recordProbe folds one probe result into the peer's state, firing
// OnChange hooks and rebuilding the placement when up/down flips.
func (c *Cluster) recordProbe(addr string, ok bool) {
	result := "ok"
	if !ok {
		result = "fail"
	}
	if c.mx != nil {
		c.mx.Counter(obs.Label("llstar_cluster_probe_total", "result", result)).Inc()
	}
	c.mu.Lock()
	st := c.peers[addr]
	if st == nil {
		c.mu.Unlock()
		return
	}
	flipped := false
	if ok {
		st.fails = 0
		if !st.up {
			st.up, flipped = true, true
		}
	} else {
		st.fails++
		if st.up && st.fails >= c.cfg.FailAfter {
			st.up, flipped = false, true
		}
	}
	var hooks []func()
	if flipped {
		c.gen++
		hooks = append(hooks, c.onChange...)
	}
	c.mu.Unlock()
	if flipped {
		c.gauge()
		c.log.LogAttrs(context.Background(), slog.LevelWarn, "cluster_peer",
			slog.String("peer", addr), slog.Bool("up", ok))
		kind := obs.EventPeerDown
		if ok {
			kind = obs.EventPeerUp
		}
		c.events.Add(obs.FleetEvent{Kind: kind, Peer: addr, OK: ok})
		// A health flip re-divides the ring's live set, so grammar
		// placement rebuilds on next lookup — record that as its own
		// event so "why did ownership move" is answerable.
		c.events.Add(obs.FleetEvent{Kind: obs.EventRebalance, Peer: addr, OK: true,
			Detail: fmt.Sprintf("live set changed, %d/%d up", c.LiveCount(), c.ring.Size())})
		for _, f := range hooks {
			f()
		}
	}
}

// MarkSuspect records a failed intra-fleet request against addr as one
// probe failure, so a dead peer found by the proxy path degrades
// before the next probe round.
func (c *Cluster) MarkSuspect(addr string) {
	if addr == c.cfg.Self {
		return
	}
	c.recordProbe(addr, false)
}

func (c *Cluster) gauge() {
	if c.mx == nil {
		return
	}
	c.mx.Gauge("llstar_cluster_ring_size").Set(int64(c.ring.Size()))
	c.mx.Gauge("llstar_cluster_peers_up").Set(int64(c.LiveCount()))
}

// ErrNoArtifact reports that no live peer could serve a fingerprint.
var ErrNoArtifact = errors.New("cluster: artifact not available from any peer")

// FetchArtifact pulls the compiled-analysis artifact for fp from the
// fleet: the fingerprint's ring owner first, then its successors, so a
// freshly joined replica warm-starts every grammar some peer has
// already analyzed. The caller validates the bytes (the artifact codec
// is checksummed and fingerprint-verified).
func (c *Cluster) FetchArtifact(ctx context.Context, fp string) (data []byte, from string, err error) {
	var t0 time.Duration
	if c.tr != nil {
		t0 = c.tr.Now()
	}
	data, from, err = c.fetchArtifact(ctx, fp)
	result := "hit"
	if err != nil {
		result = "miss"
	}
	if c.mx != nil {
		c.mx.Counter(obs.Label("llstar_cluster_artifact_fetch_total", "result", result)).Inc()
	}
	detail := fp + " <- " + from
	if err != nil {
		detail = fmt.Sprintf("%s: %v", fp, err)
	}
	c.events.Add(obs.FleetEvent{Kind: obs.EventArtifactFetch, Peer: from, OK: err == nil, Detail: detail})
	if c.tr != nil {
		c.tr.Emit(obs.Event{
			Name: "cluster.fetch", Cat: obs.PhaseServer, Ph: obs.PhSpan,
			TS: t0, Dur: c.tr.Now() - t0, Decision: -1,
			OK: err == nil, N: int64(len(data)), Detail: detail,
		})
	}
	return data, from, err
}

func (c *Cluster) fetchArtifact(ctx context.Context, fp string) ([]byte, string, error) {
	c.mu.Lock()
	up := c.upLocked()
	c.mu.Unlock()
	for _, addr := range c.ring.Preference(fp, up) {
		if addr == c.cfg.Self {
			continue
		}
		data, err := c.fetchFrom(ctx, addr, fp)
		if err == nil {
			return data, addr, nil
		}
		if ctx.Err() != nil {
			return nil, "", ctx.Err()
		}
	}
	return nil, "", ErrNoArtifact
}

func (c *Cluster) fetchFrom(ctx context.Context, addr, fp string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+addr+"/v1/artifacts/"+fp, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s: HTTP %d", addr, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// PeerInfo is one row of the topology report.
type PeerInfo struct {
	Addr string `json:"addr"`
	Self bool   `json:"self,omitempty"`
	Up   bool   `json:"up"`
	// Grammars is how many grammars the current placement assigns to
	// this peer.
	Grammars int `json:"grammars"`
}

// Topology is the /v1/cluster payload: enough for a client to route
// every request exactly as the fleet itself would.
type Topology struct {
	Self      string            `json:"self"`
	RingSize  int               `json:"ring_size"`
	Up        int               `json:"up"`
	Quorum    bool              `json:"quorum"`
	VNodes    int               `json:"vnodes"`
	Peers     []PeerInfo        `json:"peers"`
	Placement map[string]string `json:"placement,omitempty"`
}

// Topology snapshots the fleet as this replica sees it.
func (c *Cluster) Topology() Topology {
	place := c.Placement()
	counts := map[string]int{}
	for _, owner := range place {
		counts[owner]++
	}
	t := Topology{
		Self:      c.cfg.Self,
		RingSize:  c.ring.Size(),
		Up:        c.LiveCount(),
		Quorum:    c.Quorum(),
		VNodes:    c.ring.VNodes(),
		Placement: place,
	}
	for _, addr := range c.ring.Peers() {
		t.Peers = append(t.Peers, PeerInfo{
			Addr:     addr,
			Self:     addr == c.cfg.Self,
			Up:       c.Up(addr),
			Grammars: counts[addr],
		})
	}
	return t
}
