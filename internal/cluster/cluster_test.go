package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"llstar/internal/obs"
)

func newTestCluster(t *testing.T, self string, peers []string) *Cluster {
	t.Helper()
	c, err := New(Config{
		Self:          self,
		Peers:         peers,
		ProbeInterval: -1, // probing driven by hand in tests
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterMembership(t *testing.T) {
	c := newTestCluster(t, "a:1", []string{"b:1", "c:1"})
	if c.Size() != 3 {
		t.Fatalf("Size = %d, want 3", c.Size())
	}
	if got := c.LiveCount(); got != 3 {
		t.Fatalf("LiveCount = %d, want 3 (optimistic start)", got)
	}
	if !c.Quorum() {
		t.Fatal("3/3 up should be quorum")
	}
	if !c.Up("a:1") || !c.Up("b:1") {
		t.Fatal("all peers should start up")
	}
}

func TestClusterProbeTransitions(t *testing.T) {
	c := newTestCluster(t, "a:1", []string{"b:1", "c:1"})
	var changes atomic.Int32
	c.OnChange(func() { changes.Add(1) })

	// One failure is not enough (FailAfter defaults to 2).
	c.recordProbe("b:1", false)
	if !c.Up("b:1") {
		t.Fatal("peer down after a single probe failure")
	}
	c.recordProbe("b:1", false)
	if c.Up("b:1") {
		t.Fatal("peer still up after FailAfter failures")
	}
	if got := c.LiveCount(); got != 2 {
		t.Fatalf("LiveCount = %d, want 2", got)
	}
	if !c.Quorum() {
		t.Fatal("2/3 should still be quorum")
	}
	// A single success recovers.
	c.recordProbe("b:1", true)
	if !c.Up("b:1") {
		t.Fatal("peer not recovered after successful probe")
	}
	if got := changes.Load(); got != 2 {
		t.Fatalf("OnChange fired %d times, want 2", got)
	}
	// Self never goes down.
	c.MarkSuspect("a:1")
	c.MarkSuspect("a:1")
	if !c.Up("a:1") {
		t.Fatal("self marked down")
	}
}

func TestClusterQuorumLoss(t *testing.T) {
	c := newTestCluster(t, "a:1", []string{"b:1", "c:1"})
	for _, p := range []string{"b:1", "c:1"} {
		c.recordProbe(p, false)
		c.recordProbe(p, false)
	}
	if c.LiveCount() != 1 {
		t.Fatalf("LiveCount = %d, want 1", c.LiveCount())
	}
	if c.Quorum() {
		t.Fatal("1/3 up must not be quorum")
	}
}

// Placement must move to survivors when a peer goes down, and back on
// recovery — and the same transition must be recomputed identically by
// every node (pure function of membership + up set).
func TestClusterPlacementFollowsHealth(t *testing.T) {
	names := grammarNames(100)
	a := newTestCluster(t, "a:1", []string{"b:1", "c:1"})
	b := newTestCluster(t, "b:1", []string{"a:1", "c:1"})
	a.SetGrammars(names)
	b.SetGrammars(names)

	pa, pb := a.Placement(), b.Placement()
	for _, n := range names {
		if pa[n] != pb[n] {
			t.Fatalf("nodes disagree on owner of %q: %q vs %q", n, pa[n], pb[n])
		}
	}

	a.recordProbe("c:1", false)
	a.recordProbe("c:1", false)
	for n, owner := range a.Placement() {
		if owner == "c:1" {
			t.Fatalf("grammar %q still placed on down peer", n)
		}
	}
	a.recordProbe("c:1", true)
	if len(a.Placement()) != len(names) {
		t.Fatal("placement lost grammars across down/up cycle")
	}
}

func TestClusterGrammarOwnerFallback(t *testing.T) {
	c := newTestCluster(t, "a:1", []string{"b:1"})
	c.SetGrammars([]string{"calc"})
	if owner, _ := c.GrammarOwner("calc"); owner == "" {
		t.Fatal("no owner for installed grammar")
	}
	// A name outside the installed set still routes (plain ring walk).
	owner, _ := c.GrammarOwner("not-installed")
	if owner != "a:1" && owner != "b:1" {
		t.Fatalf("fallback owner = %q", owner)
	}
}

func TestClusterMintKeySelfOwned(t *testing.T) {
	c := newTestCluster(t, "a:1", []string{"b:1", "c:1", "d:1"})
	for i := 0; i < 20; i++ {
		k := c.MintKey()
		if len(k) != 16 {
			t.Fatalf("MintKey length = %d", len(k))
		}
		if owner, self := c.KeyOwner(k); !self {
			t.Fatalf("minted key %q owned by %q, not self", k, owner)
		}
	}
}

func TestClusterFetchArtifact(t *testing.T) {
	const fp = "aabbccdd"
	payload := []byte("llsc-bytes")
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/artifacts/") {
			http.NotFound(w, r)
			return
		}
		if strings.TrimPrefix(r.URL.Path, "/v1/artifacts/") != fp {
			http.Error(w, "miss", http.StatusNotFound)
			return
		}
		hits.Add(1)
		w.Write(payload)
	}))
	defer srv.Close()
	peer := strings.TrimPrefix(srv.URL, "http://")

	mx := obs.NewMetrics()
	c, err := New(Config{
		Self:          "self:0",
		Peers:         []string{peer},
		ProbeInterval: -1,
		Metrics:       mx,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, from, err := c.FetchArtifact(context.Background(), fp)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(payload) || from != peer {
		t.Fatalf("got %q from %q", data, from)
	}
	if hits.Load() != 1 {
		t.Fatalf("peer hit %d times", hits.Load())
	}
	if got := mx.Counter(obs.Label("llstar_cluster_artifact_fetch_total", "result", "hit")).Value(); got != 1 {
		t.Fatalf("fetch hit counter = %d", got)
	}

	if _, _, err := c.FetchArtifact(context.Background(), "unknownfp"); err == nil {
		t.Fatal("expected error for unknown fingerprint")
	}
	if got := mx.Counter(obs.Label("llstar_cluster_artifact_fetch_total", "result", "miss")).Value(); got != 1 {
		t.Fatalf("fetch miss counter = %d", got)
	}
}

func TestClusterFetchArtifactNoPeers(t *testing.T) {
	c := newTestCluster(t, "a:1", nil)
	if _, _, err := c.FetchArtifact(context.Background(), "fp"); err == nil {
		t.Fatal("single-node fetch must fail (no peers to ask)")
	}
}

func TestClusterProbeLoopAgainstLiveServer(t *testing.T) {
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		http.NotFound(w, r)
	}))
	defer up.Close()
	peer := strings.TrimPrefix(up.URL, "http://")

	c, err := New(Config{
		Self:          "self:0",
		Peers:         []string{peer, "127.0.0.1:1"}, // second peer unreachable
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		FailAfter:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Up(peer) && !c.Up("127.0.0.1:1") {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("probe loop did not converge: live=%q dead=%v", peer, c.Up("127.0.0.1:1"))
}

func TestClusterTopology(t *testing.T) {
	c := newTestCluster(t, "b:1", []string{"a:1", "c:1"})
	c.SetGrammars(grammarNames(30))
	c.recordProbe("c:1", false)
	c.recordProbe("c:1", false)

	top := c.Topology()
	if top.Self != "b:1" || top.RingSize != 3 || top.Up != 2 || !top.Quorum {
		t.Fatalf("topology = %+v", top)
	}
	if len(top.Peers) != 3 {
		t.Fatalf("peers = %d", len(top.Peers))
	}
	total := 0
	for _, p := range top.Peers {
		if p.Addr == "c:1" && p.Up {
			t.Fatal("down peer reported up")
		}
		if p.Addr == "c:1" && p.Grammars != 0 {
			t.Fatal("down peer assigned grammars")
		}
		if p.Addr == "b:1" && !p.Self {
			t.Fatal("self flag missing")
		}
		total += p.Grammars
	}
	if total != 30 {
		t.Fatalf("placement covers %d grammars, want 30", total)
	}
	if len(top.Placement) != 30 {
		t.Fatalf("placement map has %d entries", len(top.Placement))
	}
}

func TestClusterNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted empty Self")
	}
}
