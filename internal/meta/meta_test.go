package meta

import (
	"strings"
	"testing"

	"llstar/internal/grammar"
)

func parse(t *testing.T, src string) *grammar.Grammar {
	t.Helper()
	g, err := Parse("t.g", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return g
}

func TestParseBasics(t *testing.T) {
	g := parse(t, `
grammar Demo;
options { backtrack=true; memoize=true; k=2; m=3; custom=x; }
tokens { EXTRA; MORE; }
@members { var helper int }

a : b C 'lit' | ;
b : (C)* (D)? (C | D)+ ;
C : 'c' ;
D : 'd' ;
`)
	if g.Name != "Demo" {
		t.Errorf("name %q", g.Name)
	}
	if !g.Options.Backtrack || !g.Options.Memoize || g.Options.K != 2 || g.Options.M != 3 {
		t.Errorf("options: %+v", g.Options)
	}
	if g.Options.Raw["custom"] != "x" {
		t.Errorf("raw options not kept")
	}
	if g.Vocab.Lookup("EXTRA") == 0 || g.Vocab.Lookup("MORE") == 0 {
		t.Errorf("tokens{} not registered")
	}
	if g.NamedActions["members"] != "var helper int" {
		t.Errorf("@members: %q", g.NamedActions["members"])
	}
	if len(g.Rules) != 2 || len(g.LexRules) != 2 {
		t.Fatalf("rules %d lex %d", len(g.Rules), len(g.LexRules))
	}
	a := g.Rule("a")
	if len(a.Alts) != 2 || len(a.Alts[1].Elems) != 0 {
		t.Errorf("rule a alts wrong: %s", a.RuleText())
	}
	if g.Vocab.Literal("lit") == 0 {
		t.Errorf("literal not interned")
	}
}

func TestParsePredicatesAndActions(t *testing.T) {
	g := parse(t, `
grammar P;
r : {isType()}? A {act();} {{always();}} (A B)=> A B ;
A : 'a' ;
B : 'b' ;
`)
	elems := g.Rule("r").Alts[0].Elems
	if _, ok := elems[0].(*grammar.SemPred); !ok {
		t.Errorf("elem 0 should be SemPred, got %T", elems[0])
	}
	act, ok := elems[2].(*grammar.Action)
	if !ok || act.AlwaysExec {
		t.Errorf("elem 2 should be plain action, got %#v", elems[2])
	}
	always, ok := elems[3].(*grammar.Action)
	if !ok || !always.AlwaysExec {
		t.Errorf("elem 3 should be {{...}} action, got %#v", elems[3])
	}
	if _, ok := elems[4].(*grammar.SynPred); !ok {
		t.Errorf("elem 4 should be SynPred, got %T", elems[4])
	}
}

func TestParseRuleArgsAndRefs(t *testing.T) {
	g := parse(t, `
grammar A;
e : e2[0] ;
e2[int p] : A e2[p+1] | ;
A : 'a' ;
`)
	e2 := g.Rule("e2")
	if e2.Args != "int p" {
		t.Errorf("args: %q", e2.Args)
	}
	ref := g.Rule("e").Alts[0].Elems[0].(*grammar.RuleRef)
	if ref.ArgText != "0" {
		t.Errorf("arg text: %q", ref.ArgText)
	}
}

func TestParseLexerShapes(t *testing.T) {
	g := parse(t, `
grammar L;
s : STR ;
STR : '"' (~('"'|'\\') | '\\' .)* '"' ;
fragment HEX : ('0'..'9'|'a'..'f') ;
NUM : HEX (HEX)* ;
WS : (' '|'\t')+ { skip(); } ;
`)
	if !g.Rule("HEX").Fragment {
		t.Errorf("HEX should be a fragment")
	}
	str := g.Rule("STR")
	if str.IsLexer != true {
		t.Errorf("STR should be a lexer rule")
	}
	// Check the negated set parsed.
	found := false
	str.Walk(func(e grammar.Element) bool {
		if cs, ok := e.(*grammar.CharSet); ok && cs.Negated {
			found = true
		}
		return true
	})
	if !found {
		t.Errorf("negated charset not parsed")
	}
}

func TestParseNotTokens(t *testing.T) {
	g := parse(t, `
grammar N;
s : ~SEMI ~(A | B) ;
SEMI : ';' ;
A : 'a' ;
B : 'b' ;
`)
	elems := g.Rule("s").Alts[0].Elems
	n1 := elems[0].(*grammar.NotToken)
	if len(n1.Types) != 1 || n1.Types[0] != g.Vocab.Lookup("SEMI") {
		t.Errorf("~SEMI resolved wrong: %+v", n1)
	}
	n2 := elems[1].(*grammar.NotToken)
	if len(n2.Types) != 2 {
		t.Errorf("~(A|B) resolved wrong: %+v", n2)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"grammar ;", "expected identifier"},
		{"grammar G; a : X ", "expected ';'"},
		{"grammar G;", "no rules"},
		{"grammar G; a : 'x ;", "unterminated string"},
		{"grammar G; a : {foo ;", "unterminated action"},
		{"grammar G; fragment a : B ;", "fragment a must be a lexer rule"},
		{"grammar G; a : B ; a : C ;", "redefined"},
		{"grammar G; A : 'z'..'a' ;", "inverted range"},
		{"grammar G; a : 'x' .. 'y' ;", "'..' ranges are only valid in lexer rules"},
		{"grammar G; A : b ;", "lexer rule cannot reference parser rule"},
		{"grammar G; options { k }\na : B ;", "malformed option"},
		{"grammar G; options { k=x; }\na : B ;", "option k"},
	}
	for _, tc := range cases {
		_, err := Parse("t.g", tc.src)
		if err == nil {
			t.Errorf("%q: expected error containing %q", tc.src, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: error %q does not contain %q", tc.src, err, tc.want)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("file.g", "grammar G;\na : X\n")
	if err == nil {
		t.Fatal("expected error")
	}
	me, ok := err.(*Error)
	if !ok {
		t.Fatalf("want *Error, got %T", err)
	}
	if me.File != "file.g" || me.Pos.Line != 3 {
		t.Errorf("position: %v", me)
	}
}

func TestStringEscapes(t *testing.T) {
	g := parse(t, `
grammar E;
s : NL ;
NL : '\n' | '\t' | '\\' | '\'' | 'A' ;
`)
	var runes []rune
	g.Rule("NL").Walk(func(e grammar.Element) bool {
		if c, ok := e.(*grammar.CharLit); ok {
			runes = append(runes, c.R)
		}
		return true
	})
	want := []rune{'\n', '\t', '\\', '\'', 'A'}
	if len(runes) != len(want) {
		t.Fatalf("runes: %q", string(runes))
	}
	for i := range want {
		if runes[i] != want[i] {
			t.Errorf("escape %d: %q want %q", i, runes[i], want[i])
		}
	}
}

func TestCommentsSkipped(t *testing.T) {
	parse(t, `
// line comment
grammar C; /* block
comment */
a : B ; // trailing
B : 'b' ;
`)
}
