package meta

import (
	"os"
	"path/filepath"
	"testing"
)

// seedGrammars feeds every checked-in grammar to the fuzzer so coverage
// starts from realistic inputs rather than random bytes.
func seedGrammars(f *testing.F) {
	f.Helper()
	for _, dir := range []string{
		filepath.Join("..", "..", "grammars"),
		filepath.Join("..", "bench", "grammars"),
	} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			f.Fatalf("seed corpus: %v", err)
		}
		for _, e := range entries {
			if filepath.Ext(e.Name()) != ".g" {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				f.Fatalf("seed corpus: %v", err)
			}
			f.Add(string(data))
		}
	}
	// Hand-picked slivers that exercise lexer edge cases: unterminated
	// strings/actions/args, escapes, ranges, comments at EOF.
	for _, s := range []string{
		"",
		"grammar t; a : 'x' ;",
		"grammar t; a : 'unterminated",
		"grammar t; a : {action",
		"grammar t; a[int x : b ;",
		"a : b | c => d ;",
		"// comment only",
		"/* unterminated block",
		"a : '\\'' '\\\\' '\\n' ;",
		"A : 'a'..'z' ;",
		"a : (b)=> b | c ;",
		"options { k = 2; backtrack = true; }",
		"a : b? c* d+ ;",
		"\x00\xff\xfe",
		"grammar é; rüle : 'x' ;",
	} {
		f.Add(s)
	}
}

// FuzzMetaParse asserts the grammar front end is total: any input either
// parses or returns an error — it must never panic or run away.
func FuzzMetaParse(f *testing.F) {
	seedGrammars(f)
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse("fuzz.g", src)
		if err == nil && g == nil {
			t.Fatal("Parse returned nil grammar and nil error")
		}
	})
}

// FuzzLexer asserts the tokenizer is total and makes progress: lexing any
// input terminates at EOF or an error within a bounded number of tokens.
func FuzzLexer(f *testing.F) {
	seedGrammars(f)
	f.Fuzz(func(t *testing.T, src string) {
		lx := newLexer(src)
		// Every token consumes at least one byte, so len(src)+1 tokens
		// (plus slack) means the lexer stopped making progress.
		limit := len(src) + 16
		for i := 0; ; i++ {
			if i > limit {
				t.Fatalf("lexer did not terminate after %d tokens on %d-byte input", i, len(src))
			}
			tok, err := lx.lex()
			if err != nil {
				return
			}
			if tok.kind == tEOF {
				return
			}
		}
	})
}
