package meta

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"llstar/internal/grammar"
	"llstar/internal/token"
)

// Parse reads grammar text and returns the grammar IR. file is used only
// in error messages.
func Parse(file, src string) (*grammar.Grammar, error) {
	p := &parser{lx: newLexer(src), file: file}
	if err := p.advance(); err != nil {
		return nil, p.wrap(err)
	}
	g, err := p.parseGrammar()
	if err != nil {
		return nil, p.wrap(err)
	}
	if err := p.resolveTokens(g); err != nil {
		return nil, p.wrap(err)
	}
	return g, nil
}

type parser struct {
	lx   *lexer
	file string
	tok  metaToken
}

func (p *parser) wrap(err error) error {
	if err == nil {
		return nil
	}
	if me, ok := err.(*Error); ok && me.File == "" {
		me.File = p.file
		return me
	}
	return err
}

func (p *parser) advance() error {
	t, err := p.lx.lex()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Pos: p.tok.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k kind) (metaToken, error) {
	if p.tok.kind != k {
		return metaToken{}, p.errf("expected %s, found %s %q", k, p.tok.kind, p.tok.text)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return metaToken{}, err
	}
	return t, nil
}

func (p *parser) parseGrammar() (*grammar.Grammar, error) {
	if _, err := p.expect(tGrammar); err != nil {
		return nil, err
	}
	name, err := p.expect(tID)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tSemi); err != nil {
		return nil, err
	}
	g := grammar.New(name.text)

	// Prequel: options, tokens, @name actions.
	for {
		switch p.tok.kind {
		case tOptions:
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != tAction {
				return nil, p.errf("expected { after options")
			}
			if err := parseOptions(p.tok.text, &g.Options); err != nil {
				return nil, &Error{Pos: p.tok.pos, Msg: err.Error()}
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		case tTokens:
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != tAction {
				return nil, p.errf("expected { after tokens")
			}
			for _, decl := range strings.FieldsFunc(p.tok.text, func(r rune) bool {
				return r == ';' || r == ',' || r == '\n'
			}) {
				decl = strings.TrimSpace(decl)
				if decl != "" {
					g.Vocab.Define(decl)
				}
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		case tAt:
			if err := p.advance(); err != nil {
				return nil, err
			}
			nm, err := p.expect(tID)
			if err != nil {
				return nil, err
			}
			if p.tok.kind != tAction {
				return nil, p.errf("expected action after @%s", nm.text)
			}
			if g.NamedActions == nil {
				g.NamedActions = make(map[string]string)
			}
			g.NamedActions[nm.text] = p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
		default:
			goto rules
		}
	}

rules:
	for p.tok.kind != tEOF {
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		if err := g.AddRule(r); err != nil {
			return nil, &Error{Pos: r.Pos, Msg: err.Error()}
		}
	}
	if len(g.Rules) == 0 && len(g.LexRules) == 0 {
		return nil, p.errf("grammar %s has no rules", g.Name)
	}
	return g, nil
}

// parseOptions parses "k1=v1; k2=v2;" option text.
func parseOptions(text string, opts *grammar.Options) error {
	if opts.Raw == nil {
		opts.Raw = make(map[string]string)
	}
	for _, field := range strings.Split(text, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		eq := strings.IndexByte(field, '=')
		if eq < 0 {
			return fmt.Errorf("malformed option %q (want key=value)", field)
		}
		key := strings.TrimSpace(field[:eq])
		val := strings.TrimSpace(field[eq+1:])
		opts.Raw[key] = val
		switch key {
		case "backtrack":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return fmt.Errorf("option backtrack: %v", err)
			}
			opts.Backtrack = b
		case "memoize":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return fmt.Errorf("option memoize: %v", err)
			}
			opts.Memoize = b
		case "k":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("option k: %v", err)
			}
			opts.K = n
		case "m":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("option m: %v", err)
			}
			opts.M = n
		}
	}
	return nil
}

func isLexerName(name string) bool {
	r, _ := utf8.DecodeRuneInString(name)
	return unicode.IsUpper(r)
}

func (p *parser) parseRule() (*grammar.Rule, error) {
	r := &grammar.Rule{Pos: p.tok.pos}
	if p.tok.kind == tFragment {
		r.Fragment = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	name, err := p.expect(tID)
	if err != nil {
		return nil, err
	}
	r.Name = name.text
	r.IsLexer = isLexerName(name.text)
	if r.Fragment && !r.IsLexer {
		return nil, p.errf("fragment %s must be a lexer rule (uppercase name)", r.Name)
	}
	if p.tok.kind == tArg {
		r.Args = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind == tOptions {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tAction {
			return nil, p.errf("expected { after rule options")
		}
		var o grammar.Options
		if err := parseOptions(p.tok.text, &o); err != nil {
			return nil, &Error{Pos: p.tok.pos, Msg: err.Error()}
		}
		r.Options = o.Raw
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tColon); err != nil {
		return nil, err
	}
	alts, err := p.parseAltList(r.IsLexer)
	if err != nil {
		return nil, err
	}
	r.Alts = alts
	if _, err := p.expect(tSemi); err != nil {
		return nil, err
	}
	return r, nil
}

func (p *parser) parseAltList(lexer bool) ([]*grammar.Alt, error) {
	var alts []*grammar.Alt
	for {
		alt, err := p.parseAlt(lexer)
		if err != nil {
			return nil, err
		}
		alts = append(alts, alt)
		if p.tok.kind != tOr {
			return alts, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseAlt(lexer bool) (*grammar.Alt, error) {
	alt := &grammar.Alt{}
	for {
		switch p.tok.kind {
		case tOr, tRParen, tSemi, tEOF:
			return alt, nil
		}
		e, err := p.parseElement(lexer)
		if err != nil {
			return nil, err
		}
		alt.Elems = append(alt.Elems, e)
	}
}

func (p *parser) parseElement(lexer bool) (grammar.Element, error) {
	pos := p.tok.pos
	switch p.tok.kind {
	case tAction:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tQuestion {
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &grammar.SemPred{Text: text, Pos: pos}, nil
		}
		return &grammar.Action{Text: text, Pos: pos}, nil
	case tDoubleAction:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &grammar.Action{Text: text, AlwaysExec: true, Pos: pos}, nil
	case tLParen:
		blk, err := p.parseBlock(lexer)
		if err != nil {
			return nil, err
		}
		if blk.Op == grammar.OpNone && p.tok.kind == tArrow {
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &grammar.SynPred{Block: blk, Pos: pos}, nil
		}
		return blk, nil
	}
	atom, err := p.parseAtom(lexer)
	if err != nil {
		return nil, err
	}
	return p.applySuffix(atom, pos)
}

// parseBlock parses '(' altList ')' with an optional EBNF suffix.
func (p *parser) parseBlock(lexer bool) (*grammar.Block, error) {
	pos := p.tok.pos
	if _, err := p.expect(tLParen); err != nil {
		return nil, err
	}
	alts, err := p.parseAltList(lexer)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tRParen); err != nil {
		return nil, err
	}
	blk := &grammar.Block{Alts: alts, Pos: pos}
	switch p.tok.kind {
	case tQuestion:
		blk.Op = grammar.OpOptional
		err = p.advance()
	case tStar:
		blk.Op = grammar.OpStar
		err = p.advance()
	case tPlus:
		blk.Op = grammar.OpPlus
		err = p.advance()
	}
	return blk, err
}

// applySuffix wraps an atom in a single-alt block if followed by ?/*/+.
func (p *parser) applySuffix(atom grammar.Element, pos token.Pos) (grammar.Element, error) {
	var op grammar.BlockOp
	switch p.tok.kind {
	case tQuestion:
		op = grammar.OpOptional
	case tStar:
		op = grammar.OpStar
	case tPlus:
		op = grammar.OpPlus
	default:
		return atom, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return &grammar.Block{
		Alts: []*grammar.Alt{{Elems: []grammar.Element{atom}}},
		Op:   op,
		Pos:  pos,
	}, nil
}

func (p *parser) parseAtom(lexer bool) (grammar.Element, error) {
	pos := p.tok.pos
	switch p.tok.kind {
	case tID:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if isLexerName(name) {
			if lexer {
				// Reference to another lexer rule or fragment.
				return &grammar.RuleRef{Name: name, Pos: pos}, nil
			}
			return &grammar.TokenRef{Name: name, Pos: pos}, nil
		}
		if lexer {
			return nil, p.errf("lexer rule cannot reference parser rule %s", name)
		}
		ref := &grammar.RuleRef{Name: name, Pos: pos}
		if p.tok.kind == tArg {
			ref.ArgText = p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		return ref, nil

	case tString:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !lexer {
			if p.tok.kind == tRange {
				return nil, p.errf("'..' ranges are only valid in lexer rules")
			}
			if text == "" {
				return nil, p.errf("empty literal")
			}
			return &grammar.TokenRef{Name: "'" + text + "'", Pos: pos}, nil
		}
		// Lexer literal, possibly a range 'a'..'z'.
		if p.tok.kind == tRange {
			lo, ok := singleRune(text)
			if !ok {
				return nil, p.errf("range bound %q must be a single character", text)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			hiTok, err := p.expect(tString)
			if err != nil {
				return nil, err
			}
			hi, ok := singleRune(hiTok.text)
			if !ok {
				return nil, p.errf("range bound %q must be a single character", hiTok.text)
			}
			if hi < lo {
				return nil, p.errf("inverted range %q..%q", text, hiTok.text)
			}
			return &grammar.CharSet{Ranges: []grammar.RuneRange{{Lo: lo, Hi: hi}}, Pos: pos}, nil
		}
		if r, ok := singleRune(text); ok {
			return &grammar.CharLit{R: r, Pos: pos}, nil
		}
		if text == "" {
			return nil, p.errf("empty literal")
		}
		return &grammar.StringLit{S: text, Pos: pos}, nil

	case tTilde:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.parseNegation(lexer, pos)

	case tDot:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &grammar.Wildcard{Pos: pos}, nil
	}
	return nil, p.errf("unexpected %s %q in rule", p.tok.kind, p.tok.text)
}

func singleRune(s string) (rune, bool) {
	r, w := utf8.DecodeRuneInString(s)
	if w == 0 || w != len(s) {
		return 0, false
	}
	return r, true
}

// parseNegation parses the operand of '~'. In lexer rules the result is a
// negated character set; in parser rules a NotToken (names resolved later).
func (p *parser) parseNegation(lexer bool, pos token.Pos) (grammar.Element, error) {
	if lexer {
		set := &grammar.CharSet{Negated: true, Pos: pos}
		add := func(e grammar.Element) error {
			switch e := e.(type) {
			case *grammar.CharLit:
				set.Ranges = append(set.Ranges, grammar.RuneRange{Lo: e.R, Hi: e.R})
			case *grammar.CharSet:
				if e.Negated {
					return p.errf("cannot nest ~ inside ~")
				}
				set.Ranges = append(set.Ranges, e.Ranges...)
			default:
				return p.errf("~ in lexer rule must negate characters, not %s", e)
			}
			return nil
		}
		if p.tok.kind == tLParen {
			blk, err := p.parseBlock(true)
			if err != nil {
				return nil, err
			}
			if blk.Op != grammar.OpNone {
				return nil, p.errf("EBNF operator not allowed on ~(...) operand")
			}
			for _, alt := range blk.Alts {
				if len(alt.Elems) != 1 {
					return nil, p.errf("~(...) alternatives must be single characters or ranges")
				}
				if err := add(alt.Elems[0]); err != nil {
					return nil, err
				}
			}
			return set, nil
		}
		atom, err := p.parseAtom(true)
		if err != nil {
			return nil, err
		}
		if err := add(atom); err != nil {
			return nil, err
		}
		return set, nil
	}

	// Parser rule: ~A or ~(A|B); resolved to types later.
	not := &grammar.NotToken{Pos: pos}
	collect := func(e grammar.Element) error {
		ref, ok := e.(*grammar.TokenRef)
		if !ok {
			return p.errf("~ in parser rule must negate token references, not %s", e)
		}
		// Record the spelling; resolveTokens assigns the type.
		not.Names = append(not.Names, ref.Name)
		not.Types = append(not.Types, token.Invalid)
		return nil
	}
	if p.tok.kind == tLParen {
		blk, err := p.parseBlock(false)
		if err != nil {
			return nil, err
		}
		if blk.Op != grammar.OpNone {
			return nil, p.errf("EBNF operator not allowed on ~(...) operand")
		}
		for _, alt := range blk.Alts {
			if len(alt.Elems) != 1 {
				return nil, p.errf("~(...) alternatives must be single tokens")
			}
			if err := collect(alt.Elems[0]); err != nil {
				return nil, err
			}
		}
		return not, nil
	}
	atom, err := p.parseAtom(false)
	if err != nil {
		return nil, err
	}
	if err := collect(atom); err != nil {
		return nil, err
	}
	return not, nil
}

// resolveTokens assigns token types: lexer-rule names first (declaration
// order), then literals and other references as encountered.
func (p *parser) resolveTokens(g *grammar.Grammar) error {
	for _, lr := range g.LexRules {
		if !lr.Fragment {
			g.Vocab.Define(lr.Name)
		}
	}
	var firstErr error
	resolve := func(r *grammar.Rule) {
		r.Walk(func(e grammar.Element) bool {
			switch e := e.(type) {
			case *grammar.TokenRef:
				if strings.HasPrefix(e.Name, "'") {
					e.Type = g.Vocab.DefineLiteral(strings.Trim(e.Name, "'"))
				} else {
					e.Type = g.Vocab.Define(e.Name)
				}
			case *grammar.NotToken:
				for i, nm := range e.Names {
					if strings.HasPrefix(nm, "'") {
						e.Types[i] = g.Vocab.DefineLiteral(strings.Trim(nm, "'"))
					} else {
						e.Types[i] = g.Vocab.Define(nm)
					}
				}
			}
			return true
		})
	}
	for _, r := range g.Rules {
		resolve(r)
	}
	return firstErr
}
