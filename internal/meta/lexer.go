// Package meta implements the grammar meta-language front end: a
// hand-written lexer and recursive-descent parser that read ANTLR-style
// grammar text (.g files) into the grammar IR.
//
// Supported syntax, a faithful subset of ANTLR 3:
//
//	grammar Name;
//	options { backtrack=true; memoize=true; k=2; }
//	tokens { FOO; BAR; }
//	@members { ... }
//
//	rule[int p] : {pred}? a B 'lit' (x | y)* {action} {{always}} ;
//	decl : (declSpec)=> declSpec ';' | stmt ;
//	ID   : ('a'..'z'|'A'..'Z'|'_') ('a'..'z'|'0'..'9'|'_')* ;
//	WS   : (' '|'\t'|'\n')+ { skip(); } ;
//	fragment DIGIT : '0'..'9' ;
package meta

import (
	"fmt"
	"strings"
	"unicode/utf8"

	"llstar/internal/token"
)

// kind is a meta-language token kind.
type kind int

const (
	tEOF          kind = iota
	tID                // rule or token name
	tString            // 'text' with escapes resolved
	tInt               // integer literal
	tAction            // {...} raw text (braces stripped)
	tDoubleAction      // {{...}} raw text
	tArg               // [...] raw text
	tColon
	tSemi
	tOr
	tLParen
	tRParen
	tQuestion
	tStar
	tPlus
	tTilde
	tDot
	tRange  // ..
	tAssign // =
	tArrow  // =>
	tOptions
	tTokens
	tGrammar
	tFragment
	tAt // @name
)

func (k kind) String() string {
	switch k {
	case tEOF:
		return "EOF"
	case tID:
		return "identifier"
	case tString:
		return "string literal"
	case tInt:
		return "integer"
	case tAction:
		return "action"
	case tDoubleAction:
		return "{{action}}"
	case tArg:
		return "[args]"
	case tColon:
		return "':'"
	case tSemi:
		return "';'"
	case tOr:
		return "'|'"
	case tLParen:
		return "'('"
	case tRParen:
		return "')'"
	case tQuestion:
		return "'?'"
	case tStar:
		return "'*'"
	case tPlus:
		return "'+'"
	case tTilde:
		return "'~'"
	case tDot:
		return "'.'"
	case tRange:
		return "'..'"
	case tAssign:
		return "'='"
	case tArrow:
		return "'=>'"
	case tOptions:
		return "'options'"
	case tTokens:
		return "'tokens'"
	case tGrammar:
		return "'grammar'"
	case tFragment:
		return "'fragment'"
	case tAt:
		return "'@'"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

type metaToken struct {
	kind kind
	text string
	pos  token.Pos
}

// lexer tokenizes grammar text.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Error is a meta-language syntax error with position information.
type Error struct {
	File string
	Pos  token.Pos
	Msg  string
}

func (e *Error) Error() string {
	if e.File != "" {
		return fmt.Sprintf("%s:%s: %s", e.File, e.Pos, e.Msg)
	}
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

func (lx *lexer) errf(pos token.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peek() rune {
	if lx.off >= len(lx.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(lx.src[lx.off:])
	return r
}

func (lx *lexer) peek2() rune {
	if lx.off >= len(lx.src) {
		return -1
	}
	_, w := utf8.DecodeRuneInString(lx.src[lx.off:])
	if lx.off+w >= len(lx.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(lx.src[lx.off+w:])
	return r
}

func (lx *lexer) next() rune {
	if lx.off >= len(lx.src) {
		return -1
	}
	r, w := utf8.DecodeRuneInString(lx.src[lx.off:])
	lx.off += w
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func (lx *lexer) pos() token.Pos { return token.Pos{Line: lx.line, Col: lx.col} }

// skipWS consumes whitespace and comments.
func (lx *lexer) skipWS() error {
	for {
		r := lx.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			lx.next()
		case r == '/' && lx.peek2() == '/':
			for r := lx.peek(); r != '\n' && r != -1; r = lx.peek() {
				lx.next()
			}
		case r == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.next()
			lx.next()
			for {
				r := lx.next()
				if r == -1 {
					return lx.errf(start, "unterminated block comment")
				}
				if r == '*' && lx.peek() == '/' {
					lx.next()
					break
				}
			}
		default:
			return nil
		}
	}
}

func isIDStart(r rune) bool {
	return r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}

func isIDCont(r rune) bool {
	return isIDStart(r) || (r >= '0' && r <= '9')
}

// lex returns the next meta-language token.
func (lx *lexer) lex() (metaToken, error) {
	if err := lx.skipWS(); err != nil {
		return metaToken{}, err
	}
	pos := lx.pos()
	r := lx.peek()
	switch {
	case r == -1:
		return metaToken{kind: tEOF, pos: pos}, nil
	case isIDStart(r):
		start := lx.off
		for isIDCont(lx.peek()) {
			lx.next()
		}
		text := lx.src[start:lx.off]
		k := tID
		switch text {
		case "options":
			k = tOptions
		case "tokens":
			k = tTokens
		case "grammar":
			k = tGrammar
		case "fragment":
			k = tFragment
		}
		return metaToken{kind: k, text: text, pos: pos}, nil
	case r >= '0' && r <= '9':
		start := lx.off
		for p := lx.peek(); p >= '0' && p <= '9'; p = lx.peek() {
			lx.next()
		}
		return metaToken{kind: tInt, text: lx.src[start:lx.off], pos: pos}, nil
	case r == '\'':
		return lx.lexString(pos)
	case r == '{':
		return lx.lexAction(pos)
	case r == '[':
		return lx.lexArg(pos)
	}
	lx.next()
	switch r {
	case ':':
		return metaToken{kind: tColon, text: ":", pos: pos}, nil
	case ';':
		return metaToken{kind: tSemi, text: ";", pos: pos}, nil
	case '|':
		return metaToken{kind: tOr, text: "|", pos: pos}, nil
	case '(':
		return metaToken{kind: tLParen, text: "(", pos: pos}, nil
	case ')':
		return metaToken{kind: tRParen, text: ")", pos: pos}, nil
	case '?':
		return metaToken{kind: tQuestion, text: "?", pos: pos}, nil
	case '*':
		return metaToken{kind: tStar, text: "*", pos: pos}, nil
	case '+':
		return metaToken{kind: tPlus, text: "+", pos: pos}, nil
	case '~':
		return metaToken{kind: tTilde, text: "~", pos: pos}, nil
	case '@':
		return metaToken{kind: tAt, text: "@", pos: pos}, nil
	case '.':
		if lx.peek() == '.' {
			lx.next()
			return metaToken{kind: tRange, text: "..", pos: pos}, nil
		}
		return metaToken{kind: tDot, text: ".", pos: pos}, nil
	case '=':
		if lx.peek() == '>' {
			lx.next()
			return metaToken{kind: tArrow, text: "=>", pos: pos}, nil
		}
		return metaToken{kind: tAssign, text: "=", pos: pos}, nil
	}
	return metaToken{}, lx.errf(pos, "unexpected character %q", r)
}

// lexString reads a single-quoted literal, resolving escapes.
func (lx *lexer) lexString(pos token.Pos) (metaToken, error) {
	lx.next() // opening quote
	var b strings.Builder
	for {
		r := lx.next()
		switch r {
		case -1, '\n':
			return metaToken{}, lx.errf(pos, "unterminated string literal")
		case '\'':
			return metaToken{kind: tString, text: b.String(), pos: pos}, nil
		case '\\':
			e := lx.next()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case 'b':
				b.WriteByte('\b')
			case 'f':
				b.WriteByte('\f')
			case '\\':
				b.WriteByte('\\')
			case '\'':
				b.WriteByte('\'')
			case '"':
				b.WriteByte('"')
			case 'u':
				var v rune
				for i := 0; i < 4; i++ {
					d := lx.next()
					switch {
					case d >= '0' && d <= '9':
						v = v*16 + (d - '0')
					case d >= 'a' && d <= 'f':
						v = v*16 + (d - 'a' + 10)
					case d >= 'A' && d <= 'F':
						v = v*16 + (d - 'A' + 10)
					default:
						return metaToken{}, lx.errf(pos, "bad \\u escape")
					}
				}
				b.WriteRune(v)
			case -1:
				return metaToken{}, lx.errf(pos, "unterminated string literal")
			default:
				return metaToken{}, lx.errf(pos, "unknown escape \\%c", e)
			}
		default:
			b.WriteRune(r)
		}
	}
}

// lexAction reads a balanced {...} or {{...}} action. Braces inside
// single- or double-quoted strings and comments in the action text do not
// count toward balancing.
func (lx *lexer) lexAction(pos token.Pos) (metaToken, error) {
	lx.next() // '{'
	double := false
	if lx.peek() == '{' {
		lx.next()
		double = true
	}
	depth := 1
	var b strings.Builder
	for {
		r := lx.next()
		switch r {
		case -1:
			return metaToken{}, lx.errf(pos, "unterminated action")
		case '{':
			depth++
			b.WriteRune(r)
		case '}':
			depth--
			if depth == 0 {
				if double {
					if lx.peek() != '}' {
						return metaToken{}, lx.errf(pos, "expected }} to close {{...}} action")
					}
					lx.next()
					return metaToken{kind: tDoubleAction, text: strings.TrimSpace(b.String()), pos: pos}, nil
				}
				return metaToken{kind: tAction, text: strings.TrimSpace(b.String()), pos: pos}, nil
			}
			b.WriteRune(r)
		case '\'', '"':
			quote := r
			b.WriteRune(r)
			for {
				c := lx.next()
				if c == -1 {
					return metaToken{}, lx.errf(pos, "unterminated string inside action")
				}
				b.WriteRune(c)
				if c == '\\' {
					esc := lx.next()
					if esc == -1 {
						return metaToken{}, lx.errf(pos, "unterminated string inside action")
					}
					b.WriteRune(esc)
					continue
				}
				if c == quote {
					break
				}
			}
		default:
			b.WriteRune(r)
		}
	}
}

// lexArg reads a balanced [...] rule-argument block.
func (lx *lexer) lexArg(pos token.Pos) (metaToken, error) {
	lx.next() // '['
	depth := 1
	var b strings.Builder
	for {
		r := lx.next()
		switch r {
		case -1:
			return metaToken{}, lx.errf(pos, "unterminated [args]")
		case '[':
			depth++
			b.WriteRune(r)
		case ']':
			depth--
			if depth == 0 {
				return metaToken{kind: tArg, text: strings.TrimSpace(b.String()), pos: pos}, nil
			}
			b.WriteRune(r)
		default:
			b.WriteRune(r)
		}
	}
}
