package bench

import (
	"bytes"
	"strings"
	"testing"
)

func baselineFixture() *ResultSet {
	return &ResultSet{
		Version: ResultVersion, Seed: 1, Lines: 100, Runs: 1,
		Workloads: []WorkloadResult{
			{Name: "A", Grammar: "a.g", Decisions: 5, Events: 100, MemoStores: 10, AvgK: 1.5, LinesPerSec: 1000},
			{Name: "B", Grammar: "b.g", Decisions: 3, Events: 50, AvgK: 1.0, LinesPerSec: 2000},
		},
	}
}

func TestCompareClean(t *testing.T) {
	var out bytes.Buffer
	if !Compare(&out, baselineFixture(), baselineFixture(), CompareOptions{Timing: true}) {
		t.Fatalf("identical sets must compare clean:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ok: A timing") {
		t.Errorf("missing ok lines:\n%s", out.String())
	}
}

func TestCompareCounterDrift(t *testing.T) {
	cur := baselineFixture()
	cur.Workloads[0].Events = 101
	var out bytes.Buffer
	if Compare(&out, baselineFixture(), cur, CompareOptions{}) {
		t.Fatal("counter drift must fail")
	}
	if !strings.Contains(out.String(), "events changed 100 -> 101") {
		t.Errorf("drift not reported:\n%s", out.String())
	}
}

func TestCompareTimingThreshold(t *testing.T) {
	cur := baselineFixture()
	cur.Workloads[0].LinesPerSec = 800 // -20%
	var out bytes.Buffer
	if Compare(&out, baselineFixture(), cur, CompareOptions{Timing: true}) {
		t.Fatal("20% timing loss must fail the default 15% gate")
	}
	out.Reset()
	if !Compare(&out, baselineFixture(), cur, CompareOptions{Timing: true, Threshold: 0.25}) {
		t.Fatalf("20%% loss must pass a 25%% gate:\n%s", out.String())
	}
	// Timing off: the same regression is invisible.
	out.Reset()
	if !Compare(&out, baselineFixture(), cur, CompareOptions{Timing: false}) {
		t.Fatal("timing-off compare must ignore lines/sec")
	}
}

func TestCompareConfigAndMissing(t *testing.T) {
	cur := baselineFixture()
	cur.Lines = 200
	var out bytes.Buffer
	if Compare(&out, baselineFixture(), cur, CompareOptions{}) {
		t.Fatal("config mismatch must fail")
	}

	cur = baselineFixture()
	cur.Workloads = cur.Workloads[:1]
	out.Reset()
	if Compare(&out, baselineFixture(), cur, CompareOptions{}) {
		t.Fatal("missing workload must fail")
	}
	if !strings.Contains(out.String(), "B: missing") {
		t.Errorf("missing workload not reported:\n%s", out.String())
	}
}

func TestResultSetRoundTrip(t *testing.T) {
	rs := baselineFixture()
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seed != 1 || len(back.Workloads) != 2 || back.Workloads[0].Events != 100 {
		t.Fatalf("round trip: %+v", back)
	}
	// Version check rejects foreign schemas.
	if _, err := ReadResults(strings.NewReader(`{"version": 999}`)); err == nil {
		t.Fatal("version mismatch must error")
	}
}
