package bench

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"llstar"
)

// Every benchmark grammar must survive the Go code generator: the
// emitted source must format (Generate gofmts it, which is also a syntax
// check). Actions in these grammars are lexer-only (skip()), so the
// generated parsers are self-contained valid Go.
func TestGenerateAllWorkloads(t *testing.T) {
	for _, w := range Workloads {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			g, err := w.Load()
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			src, err := g.GenerateGo("bench_" + strings.ToLower(strings.TrimSuffix(w.File, ".g")))
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			if len(src) < 1000 {
				t.Errorf("suspiciously small output: %d bytes", len(src))
			}
		})
	}
}

// TestGeneratedTSQLMatchesInterp compiles the generated TSQL parser with
// the Go toolchain and checks it produces the same tree as the
// interpreter on a synthetic workload — end-to-end equivalence of the
// two execution modes on a grammar with manual synpreds, subqueries, and
// dense DFA tables.
func TestGeneratedTSQLMatchesInterp(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a Go module")
	}
	w, err := ByName("TSQL")
	if err != nil {
		t.Fatal(err)
	}
	g, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	src, err := g.GenerateGo("main")
	if err != nil {
		t.Fatal(err)
	}
	input := w.Input(3, 60)

	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module gentsql\n\ngo 1.22\n")
	write("parser.go", string(src))
	write("input.sql", input)
	write("main.go", `package main

import (
	"fmt"
	"os"
)

func main() {
	data, err := os.ReadFile("input.sql")
	if err != nil {
		fmt.Println("ERR read")
		return
	}
	toks, err := Tokenize(string(data))
	if err != nil {
		fmt.Println("ERR lex:", err)
		return
	}
	p := NewParser(toks)
	tree, err := p.ParseRule("script")
	if err != nil {
		fmt.Println("ERR parse:", err)
		return
	}
	fmt.Println(tree.String())
}
`)
	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run: %v\n%s", err, out)
	}
	got := strings.TrimSpace(string(out))

	p := g.NewParser(llstar.WithTree())
	tree, err := p.Parse(w.Start, input)
	if err != nil {
		t.Fatalf("interp parse: %v", err)
	}
	if got != tree.String() {
		a, b := got, tree.String()
		if len(a) > 300 {
			a = a[:300]
		}
		if len(b) > 300 {
			b = b[:300]
		}
		t.Errorf("generated parser tree differs:\n  gen:    %s\n  interp: %s", a, b)
	}
}
