// Package bench is the evaluation substrate: the six benchmark grammars
// standing in for the paper's Java1.5 / RatsC / RatsJava / VB.NET / TSQL /
// C# grammars (see DESIGN.md for the substitution rationale), seeded
// synthetic source generators producing inputs of controllable size, and
// the harness that regenerates every table in Section 6.
package bench

import (
	"embed"
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"llstar"
)

//go:embed grammars/*.g
var grammarFS embed.FS

// Workload pairs a benchmark grammar with its input generator.
type Workload struct {
	// Name matches the paper's grammar name.
	Name string
	// File is the grammar file under grammars/.
	File string
	// Mode documents how speculation enters: "PEG" (backtrack=true) or
	// "synpred" (hand-placed syntactic predicates).
	Mode string
	// Start is the start rule.
	Start string
	// Gen produces a valid source text of roughly the given line count.
	Gen func(r *rand.Rand, lines int) string
}

// Workloads lists the six benchmark grammars in the paper's order.
var Workloads = []Workload{
	{Name: "Java1.5", File: "java15.g", Mode: "PEG", Start: "compilationUnit", Gen: GenJava},
	{Name: "RatsC", File: "ratsc.g", Mode: "PEG", Start: "translationUnit", Gen: GenC},
	{Name: "RatsJava", File: "ratsjava.g", Mode: "PEG", Start: "unit", Gen: GenRatsJava},
	{Name: "VB.NET", File: "vbnet.g", Mode: "synpred", Start: "moduleDecl", Gen: GenVB},
	{Name: "TSQL", File: "tsql.g", Mode: "synpred", Start: "script", Gen: GenSQL},
	{Name: "C#", File: "csharp.g", Mode: "synpred", Start: "compilationUnit", Gen: GenCSharp},
}

// ByName returns the workload with the given name.
func ByName(name string) (Workload, error) {
	for _, w := range Workloads {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("bench: no workload %q", name)
}

// GrammarText returns the raw grammar source for a workload.
func (w Workload) GrammarText() (string, error) {
	data, err := grammarFS.ReadFile("grammars/" + w.File)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// GrammarLines counts source lines of the grammar (Table 1 "Lines").
func (w Workload) GrammarLines() int {
	text, err := w.GrammarText()
	if err != nil {
		return 0
	}
	return strings.Count(text, "\n")
}

var (
	loadMu sync.Mutex
	loaded = map[string]*llstar.Grammar{}
)

// Load parses and analyzes the workload's grammar (cached per process —
// analysis is deterministic).
func (w Workload) Load() (*llstar.Grammar, error) {
	loadMu.Lock()
	defer loadMu.Unlock()
	if g, ok := loaded[w.Name]; ok {
		return g, nil
	}
	text, err := w.GrammarText()
	if err != nil {
		return nil, err
	}
	g, err := llstar.Load(w.File, text)
	if err != nil {
		return nil, err
	}
	loaded[w.Name] = g
	return g, nil
}

// LoadFresh parses and analyzes without the cache (for timing analysis).
func (w Workload) LoadFresh() (*llstar.Grammar, error) {
	return w.LoadFreshWith(llstar.LoadOptions{})
}

// LoadFreshWith is LoadFresh with explicit load options — the analysis
// speedup harness uses it to pin the analysis worker count.
func (w Workload) LoadFreshWith(opts llstar.LoadOptions) (*llstar.Grammar, error) {
	text, err := w.GrammarText()
	if err != nil {
		return nil, err
	}
	return llstar.LoadWith(w.File, text, opts)
}

// Input generates a deterministic input of roughly `lines` lines for the
// given seed.
func (w Workload) Input(seed int64, lines int) string {
	r := rand.New(rand.NewSource(seed))
	return w.Gen(r, lines)
}

// countLines counts newline-terminated lines.
func countLines(s string) int { return strings.Count(s, "\n") }
