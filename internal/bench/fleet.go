package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"llstar/internal/cluster"
	"llstar/internal/obs"
	"llstar/internal/server"
)

// FleetLoadOptions configures the fleet load harness.
type FleetLoadOptions struct {
	// Replicas is the fleet size (default 3).
	Replicas int
	// Concurrency is the number of closed-loop clients, spread evenly
	// across the replicas (default 16).
	Concurrency int
	// Duration is the measurement window per phase (default 5s).
	Duration time.Duration
	// Seed and Lines shape the generated inputs (defaults 1 and 200).
	Seed  int64
	Lines int
}

// FleetResult is the machine-readable outcome of one fleet run,
// persisted as the BENCH_*.json fleet section. Every field here is
// timing-derived and therefore noisy; Compare never gates on it. The
// interesting reading is Scaling: aggregate fleet req/s over
// single-replica req/s, which approaches min(Replicas, cores) on a
// machine with enough cores and stays near 1.0 on a single-core box
// (the replicas time-slice one CPU — see docs/cluster.md).
type FleetResult struct {
	Replicas        int     `json:"replicas"`
	Clients         int     `json:"clients"`
	GoMaxProcs      int     `json:"gomaxprocs"`
	DurationSecs    float64 `json:"duration_secs"`
	SingleReqPerSec float64 `json:"single_req_per_sec"`
	FleetReqPerSec  float64 `json:"fleet_req_per_sec"`
	Scaling         float64 `json:"scaling"`
	// ProxiedPct is the share of fleet requests that took a server-side
	// proxy hop to the owning replica — a placement-locality measure.
	// Clients here contact replicas round-robin without consulting
	// /v1/cluster, so the expected value is (Replicas-1)/Replicas.
	ProxiedPct float64 `json:"proxied_pct"`
	Shed       int     `json:"shed"`
	Errors     int     `json:"errors"`
	// Distribution is the per-replica served/proxied split, read back
	// through GET /debug/fleet on one replica after the run — so the
	// bench also exercises the fleet observability fan-out. Purely
	// informational: Compare tolerates baselines without it.
	Distribution []ReplicaShare `json:"distribution,omitempty"`
}

// ReplicaShare is one replica's slice of the fleet run.
type ReplicaShare struct {
	Addr string `json:"addr"`
	// Requests is everything this replica answered (including parses it
	// proxied to the owner); ProxiedOut counts the ok proxy hops it
	// originated.
	Requests   int64   `json:"requests"`
	ProxiedOut int64   `json:"proxied_out"`
	ServedPct  float64 `json:"served_pct"`
}

// fleetReplica is one in-process llstar-serve plus its fleet wiring.
type fleetReplica struct {
	srv  *server.Server
	hs   *http.Server
	ln   net.Listener
	cl   *cluster.Cluster
	mx   *obs.Metrics
	addr string
}

// FleetLoad measures horizontal scaling: it drives the six benchmark
// workloads against a single in-process replica, then against a fleet
// of opts.Replicas cluster-attached replicas (real TCP, real
// consistent-hash routing, per-replica artifact caches), and reports
// aggregate throughput plus the scaling ratio. Clients contact
// replicas round-robin — most requests land on a non-owner and take
// the single proxy hop, which is the honest fleet-behind-a-dumb-LB
// deployment shape.
func FleetLoad(out io.Writer, opts FleetLoadOptions) (*FleetResult, error) {
	if opts.Replicas <= 0 {
		opts.Replicas = 3
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 16
	}
	if opts.Duration <= 0 {
		opts.Duration = 5 * time.Second
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Lines <= 0 {
		opts.Lines = 200
	}

	// Shared grammar directory: every replica serves the same names, as
	// the CI fleet smoke does. Registry loads key artifacts by base
	// name, so per-replica caches stay interchangeable.
	dir, err := os.MkdirTemp("", "llstar-fleet-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	for _, w := range Workloads {
		text, err := w.GrammarText()
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(filepath.Join(dir, w.File), []byte(text), 0o644); err != nil {
			return nil, err
		}
	}

	targets := make([]serveTarget, len(Workloads))
	for i, w := range Workloads {
		t := serveTarget{workload: w, grammar: strings.TrimSuffix(w.File, ".g")}
		for v := int64(0); v < 4; v++ {
			t.inputs = append(t.inputs, w.Input(opts.Seed+v, opts.Lines))
		}
		targets[i] = t
	}
	client := &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        opts.Concurrency * 2,
			MaxIdleConnsPerHost: opts.Concurrency * 2,
		},
	}

	// Phase 1: single replica, same total client count.
	solo, err := startFleet(dir, 1, opts.Concurrency)
	if err != nil {
		return nil, err
	}
	soloOK, _, _, soloElapsed, err := driveFleet(client, solo, targets, opts.Concurrency, opts.Duration)
	stopFleet(solo)
	if err != nil {
		return nil, err
	}
	singleRate := float64(soloOK) / soloElapsed.Seconds()

	// Phase 2: the fleet.
	fleet, err := startFleet(dir, opts.Replicas, opts.Concurrency)
	if err != nil {
		return nil, err
	}
	ok, shed, failed, elapsed, err := driveFleet(client, fleet, targets, opts.Concurrency, opts.Duration)
	var proxied int64
	for _, r := range fleet {
		proxied += r.mx.Counter(obs.Label("llstar_cluster_proxy_total", "result", "ok")).Value()
	}
	distribution, derr := fleetDistribution(client, fleet[0].addr)
	stopFleet(fleet)
	if err != nil {
		return nil, err
	}
	fleetRate := float64(ok) / elapsed.Seconds()

	fr := &FleetResult{
		Replicas:        opts.Replicas,
		Clients:         opts.Concurrency,
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		DurationSecs:    opts.Duration.Seconds(),
		SingleReqPerSec: singleRate,
		FleetReqPerSec:  fleetRate,
		Shed:            shed,
		Errors:          failed,
	}
	if singleRate > 0 {
		fr.Scaling = fleetRate / singleRate
	}
	if ok > 0 {
		fr.ProxiedPct = 100 * float64(proxied) / float64(ok)
	}
	if derr != nil {
		fmt.Fprintf(out, "fleet distribution unavailable: %v\n", derr)
	} else {
		fr.Distribution = distribution
	}

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Replicas\tclients\tok\t429\terr\treq/s\tscaling\tproxied\n")
	fmt.Fprintf(tw, "1\t%d\t%d\t\t\t%.0f\t1.00x\t\n", opts.Concurrency, soloOK, singleRate)
	fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%.0f\t%.2fx\t%.0f%%\n",
		opts.Replicas, opts.Concurrency, ok, shed, failed, fleetRate, fr.Scaling, fr.ProxiedPct)
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	if len(fr.Distribution) > 0 {
		fmt.Fprintf(out, "per-replica (via /debug/fleet):")
		for _, d := range fr.Distribution {
			fmt.Fprintf(out, "  %s %.0f%% (%d req, %d proxied out)", d.Addr, d.ServedPct, d.Requests, d.ProxiedOut)
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "GOMAXPROCS=%d — aggregate throughput scales with min(replicas, cores)\n",
		fr.GoMaxProcs)
	return fr, nil
}

// fleetDistribution asks one replica for the merged fleet view and
// reduces it to the per-replica served/proxied split — the same
// numbers an operator reads off the /debug/fleet dashboard.
func fleetDistribution(client *http.Client, addr string) ([]ReplicaShare, error) {
	resp, err := client.Get("http://" + addr + "/debug/fleet")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/debug/fleet: HTTP %d", resp.StatusCode)
	}
	var view struct {
		Replicas []struct {
			Addr    string `json:"addr"`
			Error   string `json:"error"`
			Metrics struct {
				Counters map[string]int64 `json:"counters"`
			} `json:"metrics"`
		} `json:"replicas"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil, err
	}
	shares := make([]ReplicaShare, 0, len(view.Replicas))
	var total int64
	for _, r := range view.Replicas {
		if r.Error != "" {
			return nil, fmt.Errorf("replica %s unreachable: %s", r.Addr, r.Error)
		}
		s := ReplicaShare{Addr: r.Addr}
		for name, n := range r.Metrics.Counters {
			family, _, _ := strings.Cut(name, "{")
			switch family {
			case "llstar_server_requests_total":
				s.Requests += n
			case "llstar_cluster_proxy_total":
				if strings.Contains(name, `result="ok"`) {
					s.ProxiedOut += n
				}
			}
		}
		total += s.Requests
		shares = append(shares, s)
	}
	for i := range shares {
		if total > 0 {
			shares[i].ServedPct = 100 * float64(shares[i].Requests) / float64(total)
		}
	}
	sort.Slice(shares, func(i, j int) bool { return shares[i].Addr < shares[j].Addr })
	return shares, nil
}

// startFleet boots n cluster-attached replicas over the shared grammar
// directory, each with its own artifact cache, and preloads every
// grammar. With n == 1 no cluster is attached (the solo baseline).
func startFleet(grammarDir string, n, concurrency int) ([]*fleetReplica, error) {
	maxInFlight := 64
	if c := concurrency * 2; c > maxInFlight {
		maxInFlight = c
	}
	replicas := make([]*fleetReplica, 0, n)
	fail := func(err error) ([]*fleetReplica, error) {
		stopFleet(replicas)
		return nil, err
	}
	// The harness measures throughput; per-request access lines from n
	// replicas would drown the table.
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	for i := 0; i < n; i++ {
		cacheDir, err := os.MkdirTemp("", "llstar-fleet-cache-")
		if err != nil {
			return fail(err)
		}
		mx := obs.NewMetrics()
		s, err := server.New(server.Config{
			GrammarDir: grammarDir,
			CacheDir:   cacheDir,
			// The fleet shares one in-flight budget: each replica takes
			// budget/replicas once the cluster attaches, so give the
			// whole fleet the same total the solo baseline gets.
			MaxInFlight:  maxInFlight * n,
			MaxBodyBytes: 64 << 20,
			Preload:      []string{"all"},
			Metrics:      mx,
			Logger:       quiet,
			// The distribution readback goes through /debug/fleet on the
			// main handler.
			Debug: true,
		})
		if err != nil {
			return fail(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		r := &fleetReplica{srv: s, ln: ln, mx: mx, addr: ln.Addr().String()}
		r.hs = &http.Server{Handler: s.Handler()}
		replicas = append(replicas, r)
	}
	// All addresses are known; wire the rings, then serve and preload.
	for i, r := range replicas {
		if n > 1 {
			var peers []string
			for j, p := range replicas {
				if j != i {
					peers = append(peers, p.addr)
				}
			}
			cl, err := cluster.New(cluster.Config{
				Self:          r.addr,
				Peers:         peers,
				ProbeInterval: 500 * time.Millisecond,
				Metrics:       r.mx,
				Logger:        quiet,
				Events:        r.srv.EventLog(),
			})
			if err != nil {
				return fail(err)
			}
			r.cl = cl
			r.srv.AttachCluster(cl)
			cl.Start()
		}
		go r.hs.Serve(r.ln)
		if err := r.srv.Preload(); err != nil {
			return fail(err)
		}
	}
	return replicas, nil
}

func stopFleet(replicas []*fleetReplica) {
	for _, r := range replicas {
		if r == nil {
			continue
		}
		if r.cl != nil {
			r.cl.Stop()
		}
		if r.hs != nil {
			r.hs.Close()
		}
	}
}

// driveFleet runs the closed-loop client load with clients spread
// round-robin across the replicas, after one warmup request per
// (replica, grammar) pair.
func driveFleet(client *http.Client, replicas []*fleetReplica, targets []serveTarget, concurrency int, duration time.Duration) (ok, shed, failed int, elapsed time.Duration, err error) {
	for _, r := range replicas {
		for _, t := range targets {
			if _, _, werr := serveOnce(client, "http://"+r.addr, t, 0); werr != nil {
				return 0, 0, 0, 0, fmt.Errorf("warmup %s on %s: %w", t.grammar, r.addr, werr)
			}
		}
	}
	stop := time.Now().Add(duration)
	results := make([][3]int, concurrency)
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := "http://" + replicas[c%len(replicas)].addr
			for i := 0; time.Now().Before(stop); i++ {
				t := targets[(c+i)%len(targets)]
				code, _, rerr := serveOnce(client, base, t, (c+i)%len(t.inputs))
				switch {
				case rerr != nil:
					results[c][2]++
					mu.Lock()
					if firstErr == nil {
						firstErr = rerr
					}
					mu.Unlock()
				case code == http.StatusOK:
					results[c][0]++
				case code == http.StatusTooManyRequests:
					results[c][1]++
				default:
					results[c][2]++
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("HTTP %d from %s for %s", code, base, t.grammar)
					}
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed = time.Since(start)
	for _, r := range results {
		ok += r[0]
		shed += r[1]
		failed += r[2]
	}
	if ok == 0 && firstErr != nil {
		return 0, 0, 0, 0, firstErr
	}
	return ok, shed, failed, elapsed, nil
}
