package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"llstar"
)

// CoverageProfiles parses each workload's synthetic corpus with the
// coverage profiler enabled and returns one snapshot per workload.
func CoverageProfiles(seed int64, lines int) (map[string]*llstar.CoverageSnapshot, error) {
	out := make(map[string]*llstar.CoverageSnapshot, len(Workloads))
	for _, w := range Workloads {
		g, err := w.Load()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		prof := g.NewCoverage()
		p := g.NewParser(llstar.WithCoverage(prof))
		if _, err := p.Parse(w.Start, w.Input(seed, lines)); err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		out[w.Name] = prof.Snapshot()
	}
	return out, nil
}

// Hotspots prints, per workload, the coverage summary and the top
// hotspot decisions over a generated corpus.
func Hotspots(out io.Writer, seed int64, lines, top int) error {
	snaps, err := CoverageProfiles(seed, lines)
	if err != nil {
		return err
	}
	for _, w := range Workloads {
		s := snaps[w.Name]
		fmt.Fprintf(out, "-- %s --\n", w.Name)
		if err := s.WriteReport(out); err != nil {
			return err
		}
		if err := s.WriteHotspots(out, top); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

// WriteHTMLReports parses every workload with coverage enabled and
// writes one self-contained HTML hotspot report per grammar into dir
// (created if missing). It returns the files written.
func WriteHTMLReports(dir string, seed int64, lines int) ([]string, error) {
	snaps, err := CoverageProfiles(seed, lines)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var files []string
	for _, w := range Workloads {
		name := strings.TrimSuffix(w.File, ".g") + ".html"
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		werr := snaps[w.Name].WriteHTML(f)
		cerr := f.Close()
		if werr != nil {
			return nil, werr
		}
		if cerr != nil {
			return nil, cerr
		}
		files = append(files, path)
	}
	return files, nil
}
