package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"llstar"
)

// decodeRoundTrip marshals a grammar's analysis and decodes it back.
func decodeRoundTrip(t *testing.T, g *llstar.Grammar) *llstar.Grammar {
	t.Helper()
	data, err := g.MarshalAnalysis()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	decoded, err := llstar.UnmarshalAnalysis(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !decoded.LoadedFromCache() {
		t.Error("decoded grammar does not report LoadedFromCache")
	}
	return decoded
}

// TestSerializationRoundTrip proves MarshalAnalysis → UnmarshalAnalysis
// is lossless for every benchmark grammar: the decoded grammar's DFA
// dump (down to state numbering, edge order, predicate edges, and
// config-set labels), decision table, warnings, fallback reasons, and
// cache fingerprint are byte-identical to the live analysis it came
// from.
func TestSerializationRoundTrip(t *testing.T) {
	for _, w := range Workloads {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			live, err := w.LoadFresh()
			if err != nil {
				t.Fatal(err)
			}
			decoded := decodeRoundTrip(t, live)

			if lf, df := fingerprint(live), fingerprint(decoded); lf != df {
				t.Fatalf("analysis fingerprints differ after round trip:\n--- live ---\n%s\n--- decoded ---\n%s", lf, df)
			}
			if ld, dd := dfaDump(live), dfaDump(decoded); ld != dd {
				t.Fatal("DFA dumps differ after round trip")
			}
			if lk, dk := live.Fingerprint(), decoded.Fingerprint(); lk != dk {
				t.Fatalf("cache keys differ after round trip: live=%s decoded=%s", lk, dk)
			}
			if la, da := live.AnalysisDigest(), decoded.AnalysisDigest(); la != da {
				t.Fatalf("analysis digests differ after round trip: live=%s decoded=%s", la, da)
			}
		})
	}
}

// TestSerializationGolden pins decoded artifacts against the same
// golden fingerprints that pin live analysis: decoding must land on
// exactly the checked-in outcome, not merely on something
// self-consistent.
func TestSerializationGolden(t *testing.T) {
	cases := []struct {
		name, path string
	}{
		{"figure1", filepath.Join("..", "..", "grammars", "figure1.g")},
		{"figure2", filepath.Join("..", "..", "grammars", "figure2.g")},
		{"java15", filepath.Join("grammars", "java15.g")},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			src, err := os.ReadFile(c.path)
			if err != nil {
				t.Fatal(err)
			}
			live, err := llstar.Load(c.path, string(src))
			if err != nil {
				t.Fatal(err)
			}
			decoded := decodeRoundTrip(t, live)

			want, err := os.ReadFile(filepath.Join("testdata", "analysis_"+c.name+".golden"))
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprint(decoded); got != string(want) {
				t.Errorf("decoded analysis drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

// TestColdWarmTable smoke-tests the llstar-bench -coldwarm path: the
// table must render for every grammar, with every warm load actually
// hitting the cache. (Actual speedup is hardware-dependent and not
// asserted.)
func TestColdWarmTable(t *testing.T) {
	if testing.Short() {
		t.Skip("timing table in -short mode")
	}
	var b strings.Builder
	if err := ColdWarm(&b, 1); err != nil {
		t.Fatal(err)
	}
	for _, w := range Workloads {
		if !strings.Contains(b.String(), w.Name) {
			t.Errorf("cold/warm table missing %s:\n%s", w.Name, b.String())
		}
	}
}

// TestRoundTripDifferential runs the decoded grammar through the
// differential corpus: on valid and mutated inputs, a parser built from
// the decoded grammar must agree with the live grammar's parser on
// accept/reject, tree shape, and runtime decision stats. Serialization
// must change *nothing* about parse behavior.
func TestRoundTripDifferential(t *testing.T) {
	const lines = 25
	for _, w := range Workloads {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			live, err := w.Load()
			if err != nil {
				t.Fatal(err)
			}
			decoded := decodeRoundTrip(t, live)
			for seed := int64(1); seed <= 2; seed++ {
				for name, input := range mutations(w.Input(seed, lines)) {
					label := fmt.Sprintf("seed=%d/%s", seed, name)

					lp := live.NewParser(llstar.WithTree(), llstar.WithStats())
					lTree, lErr := lp.Parse(w.Start, input)
					dp := decoded.NewParser(llstar.WithTree(), llstar.WithStats())
					dTree, dErr := dp.Parse(w.Start, input)

					if (lErr == nil) != (dErr == nil) {
						t.Errorf("%s: live and decoded parsers disagree:\nlive: %v\ndecoded: %v",
							label, lErr, dErr)
						continue
					}
					if lErr == nil && lTree.String() != dTree.String() {
						t.Errorf("%s: live and decoded parsers accept with different trees", label)
					}
					if ls, ds := lp.Stats(), dp.Stats(); ls.String() != ds.String() {
						t.Errorf("%s: live and decoded parsers report different stats:\nlive: %s\ndecoded: %s",
							label, ls, ds)
					}
				}
			}
		})
	}
}
