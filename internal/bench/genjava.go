package bench

import (
	"fmt"
	"math/rand"
	"strings"
)

// gen is a tiny helper for the source generators: a builder with line
// accounting and an RNG.
type gen struct {
	b     strings.Builder
	r     *rand.Rand
	lines int
}

func (g *gen) linef(depth int, format string, args ...any) {
	g.b.WriteString(strings.Repeat("    ", depth))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
	g.lines++
}

func (g *gen) pick(choices ...string) string {
	return choices[g.r.Intn(len(choices))]
}

func (g *gen) ident(prefix string) string {
	return fmt.Sprintf("%s%d", prefix, g.r.Intn(1000))
}

// expr generates a Java/C-style expression of bounded depth using the
// operator set shared by the C-family benchmark grammars.
func (g *gen) expr(depth int) string {
	if depth <= 0 {
		switch g.r.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(1000))
		case 1:
			return g.ident("v")
		case 2:
			return g.pick("true", "false")
		default:
			return fmt.Sprintf("%q", g.ident("s"))
		}
	}
	switch g.r.Intn(6) {
	case 0:
		return g.expr(0)
	case 1:
		return fmt.Sprintf("%s %s %s", g.expr(depth-1), g.pick("+", "-", "*", "/", "%"), g.expr(depth-1))
	case 2:
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), g.pick("<", ">", "<=", ">=", "==", "!="), g.expr(depth-1))
	case 3:
		return fmt.Sprintf("%s(%s)", g.ident("f"), g.expr(depth-1))
	case 4:
		return fmt.Sprintf("%s.%s(%s)", g.ident("o"), g.ident("m"), g.expr(depth-1))
	default:
		return fmt.Sprintf("-%s", g.expr(depth-1))
	}
}

var javaTypes = []string{"int", "long", "double", "boolean", "String", "Object", "List"}

// GenJava produces a Java-subset compilation unit of roughly the given
// line count, exercising the constructs that drive the Java1.5 grammar's
// decision profile: field/method members, local declarations vs
// expression statements, control flow, and nested expressions.
func GenJava(r *rand.Rand, lines int) string {
	g := &gen{r: r}
	g.linef(0, "package com.example.bench%d;", r.Intn(100))
	g.linef(0, "import java.util.List;")
	g.linef(0, "import static java.lang.Math.*;")
	for g.lines < lines {
		g.javaClass(lines)
	}
	return g.b.String()
}

func (g *gen) javaClass(budget int) {
	name := g.ident("Cls")
	g.linef(0, "public class %s {", name)
	for g.lines < budget && g.r.Intn(10) != 0 {
		switch g.r.Intn(4) {
		case 0:
			g.linef(1, "private %s %s = %s;", g.pick(javaTypes...), g.ident("fld"), g.expr(1))
		case 1:
			g.linef(1, "static final int %s = %d;", g.ident("K"), g.r.Intn(9999))
		default:
			g.javaMethod(budget)
		}
	}
	g.linef(0, "}")
}

func (g *gen) javaMethod(budget int) {
	g.linef(1, "public %s %s(%s a, %s b) {",
		g.pick("void", "int", "String", "boolean"), g.ident("m"),
		g.pick(javaTypes...), g.pick(javaTypes...))
	n := 2 + g.r.Intn(6)
	for i := 0; i < n && g.lines < budget; i++ {
		g.javaStatement(2, 2)
	}
	g.linef(1, "}")
}

func (g *gen) javaStatement(depth, nest int) {
	if depth > 4 || nest <= 0 {
		g.linef(depth, "%s = %s;", g.ident("v"), g.expr(1))
		return
	}
	switch g.r.Intn(10) {
	case 0:
		// Local declaration: "Type id = expr;" — the left-edge ambiguity
		// with expression statements that drives backtracking.
		g.linef(depth, "%s %s = %s;", g.pick(javaTypes...), g.ident("loc"), g.expr(2))
	case 1:
		g.linef(depth, "if (%s) {", g.expr(1))
		g.javaStatement(depth+1, nest-1)
		g.linef(depth, "} else {")
		g.javaStatement(depth+1, nest-1)
		g.linef(depth, "}")
	case 2:
		g.linef(depth, "for (int i = 0; i < %d; i = i + 1) {", g.r.Intn(100))
		g.javaStatement(depth+1, nest-1)
		g.linef(depth, "}")
	case 3:
		g.linef(depth, "while (%s) {", g.expr(1))
		g.javaStatement(depth+1, nest-1)
		g.linef(depth, "}")
	case 4:
		g.linef(depth, "return %s;", g.expr(2))
	case 5:
		g.linef(depth, "%s.%s(%s);", g.ident("o"), g.ident("m"), g.expr(1))
	case 6:
		g.linef(depth, "%s[%s] = (%s) %s;", g.ident("arr"), g.expr(0), g.pick("int", "String"), g.expr(1))
	case 7:
		g.linef(depth, "%s obj = new %s(%s);", g.pick("Object", "String", "List"), g.pick("Object", "String"), g.expr(1))
	default:
		g.linef(depth, "%s = %s;", g.ident("v"), g.expr(2))
	}
}
