package bench

import (
	"strings"
	"testing"
)

// The table printers must run clean and produce one row per workload.
func TestTablesSmoke(t *testing.T) {
	var b strings.Builder
	if err := Table1(&b); err != nil {
		t.Fatalf("table 1: %v", err)
	}
	if err := Table2(&b); err != nil {
		t.Fatalf("table 2: %v", err)
	}
	if err := Table3(&b, 1, 150); err != nil {
		t.Fatalf("table 3: %v", err)
	}
	if err := Table4(&b, 1, 150); err != nil {
		t.Fatalf("table 4: %v", err)
	}
	if err := MemoStats(&b, 1, 150); err != nil {
		t.Fatalf("memo stats: %v", err)
	}
	out := b.String()
	for _, w := range Workloads {
		if got := strings.Count(out, w.Name); got != 5 {
			t.Errorf("workload %s appears %d times, want 5", w.Name, got)
		}
	}
	// Sanity: headers present.
	for _, h := range []string{"Cyclic", "LL(1)%", "avg k", "Back. rate", "memo entries"} {
		if !strings.Contains(out, h) {
			t.Errorf("missing header %q", h)
		}
	}
}

func TestRunProfileErrors(t *testing.T) {
	if _, err := ByName("NoSuch"); err == nil {
		t.Error("unknown workload must error")
	}
	w, _ := ByName("Java1.5")
	p, err := RunProfile(w, 2, 100)
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	if p.Stats.TotalEvents() == 0 || p.InputLines == 0 || p.ParseTime <= 0 {
		t.Errorf("profile fields empty: %+v", p)
	}
}
