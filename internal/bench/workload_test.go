package bench

import (
	"strings"
	"testing"

	"llstar"
)

// Every benchmark grammar must load (validate + analyze) without fatal
// errors, and its generator must produce input its parser accepts, at
// several sizes and seeds. This is the substrate the tables stand on.
func TestWorkloadsRoundTrip(t *testing.T) {
	for _, w := range Workloads {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			g, err := w.Load()
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			for _, seed := range []int64{1, 2, 3} {
				input := w.Input(seed, 120)
				p := g.NewParser(llstar.WithStats())
				if _, err := p.Parse(w.Start, input); err != nil {
					lines := strings.Split(input, "\n")
					ctx := ""
					if se, ok := err.(*llstar.SyntaxError); ok && se.Offending.Pos.Line-1 < len(lines) {
						ctx = lines[se.Offending.Pos.Line-1]
					}
					t.Fatalf("seed %d: parse failed: %v\nline: %s", seed, err, ctx)
				}
			}
		})
	}
}

// Generators must be deterministic per seed (the tables must reproduce).
func TestGeneratorsDeterministic(t *testing.T) {
	for _, w := range Workloads {
		a := w.Input(42, 60)
		b := w.Input(42, 60)
		if a != b {
			t.Errorf("%s: generator not deterministic", w.Name)
		}
		if countLines(a) < 30 {
			t.Errorf("%s: generated only %d lines for target 60", w.Name, countLines(a))
		}
	}
}
