// C-subset grammar in PEG mode, standing in for the paper's RatsC
// grammar (a Rats! C grammar converted to ANTLR syntax). It keeps the
// structural property the paper highlights: declarations and function
// definitions look the same from the left edge, so the external-
// declaration decision must speculate across entire declarators — and
// function definitions are only confirmed at the body's '{', making this
// the most backtracking-heavy grammar in the suite.
grammar RatsC;

options { backtrack=true; memoize=true; }

translationUnit : (externalDecl)+ ;

externalDecl
    : functionDef
    | declaration
    ;

functionDef : declSpecifiers declarator compoundStatement ;

declaration : declSpecifiers (initDeclarator (',' initDeclarator)*)? ';' ;

declSpecifiers : (declSpecifier)+ ;

declSpecifier
    : storageClass
    | typeQualifier
    | typeSpecifier
    ;

storageClass : 'typedef' | 'extern' | 'static' | 'auto' | 'register' ;

typeQualifier : 'const' | 'volatile' ;

typeSpecifier
    : 'void' | 'char' | 'short' | 'int' | 'long' | 'float' | 'double'
    | 'signed' | 'unsigned'
    | structSpec
    | enumSpec
    ;

structSpec
    : ('struct' | 'union') ID ('{' (structDecl)+ '}')?
    | ('struct' | 'union') '{' (structDecl)+ '}'
    ;

structDecl : declSpecifiers structDeclarator (',' structDeclarator)* ';' ;

structDeclarator
    : declarator (':' constantExpression)?
    | ':' constantExpression
    ;

enumSpec
    : 'enum' ID ('{' enumerator (',' enumerator)* '}')?
    | 'enum' '{' enumerator (',' enumerator)* '}'
    ;

enumerator : ID ('=' constantExpression)? ;

initDeclarator : declarator ('=' initializer)? ;

initializer
    : assignmentExpression
    | '{' initializer (',' initializer)* (',')? '}'
    ;

declarator : (pointer)? directDeclarator ;

pointer : ('*' (typeQualifier)*)+ ;

directDeclarator
    : (ID | '(' declarator ')') (declaratorSuffix)*
    ;

declaratorSuffix
    : '[' (constantExpression)? ']'
    | '(' (parameterList)? ')'
    ;

parameterList : parameterDecl (',' parameterDecl)* (',' '...')? ;

parameterDecl : declSpecifiers (declarator)? ;

compoundStatement : '{' (blockItem)* '}' ;

blockItem
    : declaration
    | statement
    ;

statement
    : compoundStatement
    | 'if' '(' expression ')' statement ('else' statement)?
    | 'switch' '(' expression ')' statement
    | 'while' '(' expression ')' statement
    | 'do' statement 'while' '(' expression ')' ';'
    | 'for' '(' (expression)? ';' (expression)? ';' (expression)? ')' statement
    | 'goto' ID ';'
    | 'continue' ';'
    | 'break' ';'
    | 'return' (expression)? ';'
    | 'case' constantExpression ':' statement
    | 'default' ':' statement
    | ID ':' statement
    | (expression)? ';'
    ;

expression : assignmentExpression (',' assignmentExpression)* ;

constantExpression : conditionalExpression ;

assignmentExpression
    : unaryExpression assignmentOperator assignmentExpression
    | conditionalExpression
    ;

assignmentOperator
    : '=' | '*=' | '/=' | '%=' | '+=' | '-=' | '<<=' | '>>=' | '&=' | '^=' | '|='
    ;

conditionalExpression
    : logicalOrExpression ('?' expression ':' conditionalExpression)?
    ;

logicalOrExpression : logicalAndExpression ('||' logicalAndExpression)* ;

logicalAndExpression : inclusiveOrExpression ('&&' inclusiveOrExpression)* ;

inclusiveOrExpression : exclusiveOrExpression ('|' exclusiveOrExpression)* ;

exclusiveOrExpression : andExpression ('^' andExpression)* ;

andExpression : equalityExpression ('&' equalityExpression)* ;

equalityExpression : relationalExpression (('==' | '!=') relationalExpression)* ;

relationalExpression : shiftExpression (('<=' | '>=' | '<' | '>') shiftExpression)* ;

shiftExpression : additiveExpression (('<<' | '>>') additiveExpression)* ;

additiveExpression : multiplicativeExpression (('+' | '-') multiplicativeExpression)* ;

multiplicativeExpression : castExpression (('*' | '/' | '%') castExpression)* ;

castExpression
    : '(' typeName ')' castExpression
    | unaryExpression
    ;

typeName : declSpecifiers (pointer)? ;

unaryExpression
    : postfixExpression
    | '++' unaryExpression
    | '--' unaryExpression
    | ('&' | '*' | '+' | '-' | '~' | '!') castExpression
    | 'sizeof' (unaryExpression | '(' typeName ')')
    ;

postfixExpression : primaryExpression (postfixSuffix)* ;

postfixSuffix
    : '[' expression ']'
    | '(' (argumentList)? ')'
    | '.' ID
    | '->' ID
    | '++'
    | '--'
    ;

argumentList : assignmentExpression (',' assignmentExpression)* ;

primaryExpression
    : ID
    | INTLIT
    | FLOATLIT
    | CHARLIT
    | STRINGLIT
    | '(' expression ')'
    ;

ID : ('a'..'z'|'A'..'Z'|'_') ('a'..'z'|'A'..'Z'|'0'..'9'|'_')* ;

INTLIT : ('0'..'9')+ ('u'|'U'|'l'|'L')* ;

FLOATLIT : ('0'..'9')+ '.' ('0'..'9')+ ('f'|'F'|'l'|'L')? ;

STRINGLIT : '"' (~('"'|'\\'|'\n') | '\\' .)* '"' ;

CHARLIT : '\'' (~('\''|'\\'|'\n') | '\\' .) '\'' ;

WS : (' '|'\t'|'\r'|'\n')+ { skip(); } ;

LINE_COMMENT : '//' (~('\n'))* { skip(); } ;

COMMENT : '/*' (~('*') | ('*')+ ~('/'|'*'))* ('*')+ '/' { skip(); } ;
