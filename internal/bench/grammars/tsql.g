// T-SQL-subset grammar with hand-placed syntactic predicates, standing in
// for the paper's commercial TSQL grammar (the suite's biggest decision
// count). DDL/DML/control statements multiply decisions; the predicate
// rule carries manual synpreds because every comparison form starts with
// an expression — the same left-edge problem the commercial grammar
// authors solved with synpreds.
grammar TSQL;

options { memoize=true; }

script : (batchStatement)+ ;

batchStatement
    : ddlStatement
    | dmlStatement
    | controlStatement
    ;

ddlStatement
    : createTable
    | createIndex
    | dropStatement
    ;

dmlStatement
    : selectStatement ';'
    | insertStatement
    | updateStatement
    | deleteStatement
    ;

controlStatement
    : declareStatement
    | setStatement
    | ifStatement
    | whileStatement
    | beginEnd
    | 'PRINT' expression ';'
    | 'RETURN' (expression)? ';'
    ;

createTable
    : 'CREATE' 'TABLE' qualifiedName '(' tableElement (',' tableElement)* ')' ';'
    ;

tableElement
    : columnDef
    | tableConstraint
    ;

columnDef : ID dataType (columnOption)* ;

dataType
    : 'INT' | 'BIGINT' | 'SMALLINT' | 'BIT' | 'FLOAT' | 'REAL'
    | 'DATETIME' | 'TEXT' | 'MONEY'
    | 'VARCHAR' '(' INTLIT ')'
    | 'NVARCHAR' '(' INTLIT ')'
    | 'CHAR' '(' INTLIT ')'
    | 'DECIMAL' '(' INTLIT ',' INTLIT ')'
    ;

columnOption
    : 'NOT' 'NULL'
    | 'NULL'
    | 'PRIMARY' 'KEY'
    | 'IDENTITY'
    | 'UNIQUE'
    | 'DEFAULT' literal
    ;

tableConstraint
    : 'CONSTRAINT' ID
      ( 'PRIMARY' 'KEY' '(' idList ')'
      | 'FOREIGN' 'KEY' '(' idList ')' 'REFERENCES' qualifiedName '(' idList ')'
      | 'UNIQUE' '(' idList ')'
      )
    ;

createIndex
    : 'CREATE' ('UNIQUE')? 'INDEX' ID 'ON' qualifiedName '(' idList ')' ';'
    ;

dropStatement : 'DROP' ('TABLE' | 'INDEX') qualifiedName ';' ;

selectStatement
    : 'SELECT' ('DISTINCT' | 'ALL')? ('TOP' INTLIT)? selectList
      'FROM' tableSources
      ('WHERE' searchCondition)?
      ('GROUP' 'BY' expression (',' expression)*)?
      ('HAVING' searchCondition)?
      ('ORDER' 'BY' orderItem (',' orderItem)*)?
    ;

selectList
    : '*'
    | selectItem (',' selectItem)*
    ;

selectItem : expression (('AS')? ID)? ;

orderItem : expression ('ASC' | 'DESC')? ;

tableSources : tableSource (',' tableSource)* ;

tableSource : tablePrimary (joinPart)* ;

tablePrimary
    : qualifiedName (('AS')? ID)?
    | '(' selectStatement ')' ('AS')? ID
    ;

joinPart
    : ('INNER' | ('LEFT' | 'RIGHT' | 'FULL') ('OUTER')? | 'CROSS')? 'JOIN'
      tablePrimary 'ON' searchCondition
    ;

insertStatement
    : 'INSERT' ('INTO')? qualifiedName ('(' idList ')')?
      ('VALUES' '(' exprList ')' | selectStatement) ';'
    ;

updateStatement
    : 'UPDATE' qualifiedName 'SET' assignment (',' assignment)*
      ('WHERE' searchCondition)? ';'
    ;

assignment : qualifiedName '=' expression ;

deleteStatement : 'DELETE' 'FROM' qualifiedName ('WHERE' searchCondition)? ';' ;

declareStatement : 'DECLARE' ATID dataType ('=' expression)? ';' ;

setStatement : 'SET' ATID '=' expression ';' ;

ifStatement
    : 'IF' searchCondition batchStatement ('ELSE' batchStatement)?
    ;

whileStatement : 'WHILE' searchCondition batchStatement ;

beginEnd : 'BEGIN' (batchStatement)+ 'END' (';')? ;

searchCondition : andCondition ('OR' andCondition)* ;

andCondition : notCondition ('AND' notCondition)* ;

notCondition
    : 'NOT' notCondition
    | predicate
    ;

// Every comparison form starts with an expression, so the alternatives
// conflict from the left edge; the synpreds decide, with the
// parenthesized condition as the unpredicated default.
predicate
    : 'EXISTS' '(' selectStatement ')'
    | (expression compareOp)=> expression compareOp expression
    | (expression 'IS')=> expression 'IS' ('NOT')? 'NULL'
    | (expression ('NOT')? 'LIKE')=> expression ('NOT')? 'LIKE' expression
    | (expression ('NOT')? 'IN')=> expression ('NOT')? 'IN' '(' inList ')'
    | (expression 'BETWEEN')=> expression 'BETWEEN' expression 'AND' expression
    | '(' searchCondition ')'
    ;

compareOp : '=' | '<>' | '!=' | '<=' | '>=' | '<' | '>' ;

inList
    : selectStatement
    | exprList
    ;

expression : term (('+' | '-' | '*' | '/' | '%') term)* ;

term
    : caseExpression
    | literal
    | ATID
    | qualifiedName ('(' (('DISTINCT')? exprList | '*')? ')')?
    | '(' subqueryOrExpr ')'
    ;

subqueryOrExpr
    : selectStatement
    | expression
    ;

caseExpression
    : 'CASE' (whenClause)+ ('ELSE' expression)? 'END'
    | 'CASE' expression (simpleWhen)+ ('ELSE' expression)? 'END'
    ;

whenClause : 'WHEN' searchCondition 'THEN' expression ;

simpleWhen : 'WHEN' expression 'THEN' expression ;

literal
    : INTLIT
    | FLOATLIT
    | STRINGLIT
    | 'NULL'
    ;

qualifiedName : ID ('.' ID)* ;

idList : ID (',' ID)* ;

exprList : expression (',' expression)* ;

ID : ('a'..'z'|'_') ('a'..'z'|'A'..'Z'|'0'..'9'|'_')* ;

ATID : '@' ('a'..'z'|'A'..'Z'|'_') ('a'..'z'|'A'..'Z'|'0'..'9'|'_')* ;

INTLIT : ('0'..'9')+ ;

FLOATLIT : ('0'..'9')+ '.' ('0'..'9')+ ;

STRINGLIT : '\'' (~('\''|'\n'))* '\'' ;

WS : (' '|'\t'|'\r'|'\n')+ { skip(); } ;

LINE_COMMENT : '--' (~('\n'))* { skip(); } ;

COMMENT : '/*' (~('*') | ('*')+ ~('/'|'*'))* ('*')+ '/' { skip(); } ;
