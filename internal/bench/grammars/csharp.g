// C#-subset grammar with hand-placed syntactic predicates, standing in
// for the paper's commercial C# grammar. Members (field vs property vs
// method) share the `type ID` left edge — an LL(*) cyclic-DFA showcase —
// while cast-vs-parenthesized expressions and local-declaration-vs-
// expression statements carry manual synpreds as in the commercial
// grammar.
grammar CSharp;

options { memoize=true; }

compilationUnit
    : (usingDirective)* (namespaceDecl | typeDeclaration)*
    ;

usingDirective : 'using' qualifiedName ';' ;

namespaceDecl : 'namespace' qualifiedName '{' (typeDeclaration)* '}' ;

qualifiedName : ID ('.' ID)* ;

typeDeclaration
    : (attribute)* (modifier)*
      ( 'class' ID (baseList)? classBody
      | 'struct' ID (baseList)? classBody
      | 'interface' ID (baseList)? interfaceBody
      | 'enum' ID '{' (ID ('=' expression)? (',' ID ('=' expression)?)*)? '}'
      )
    ;

attribute : '[' ID ('(' (argumentList)? ')')? ']' ;

modifier
    : 'public' | 'private' | 'protected' | 'internal' | 'static'
    | 'sealed' | 'abstract' | 'virtual' | 'override' | 'readonly' | 'partial'
    ;

baseList : ':' type (',' type)* ;

classBody : '{' (member)* '}' ;

interfaceBody : '{' (interfaceMember)* '}' ;

interfaceMember
    : type ID '(' (formalParams)? ')' ';'
    | type ID '{' accessorStubs '}'
    ;

accessorStubs : ('get' ';')? ('set' ';')? ;

member
    : (attribute)* (modifier)* memberCore
    ;

// The three `type ID ...` member shapes are distinguished only after
// scanning an arbitrarily long type — the cyclic-lookahead decision.
memberCore
    : constructorDecl
    | methodDecl
    | propertyDecl
    | fieldDecl
    | typeDeclaration
    ;

constructorDecl : ID '(' (formalParams)? ')' block ;

methodDecl
    : ('void' | type) ID '(' (formalParams)? ')' (block | ';')
    ;

propertyDecl
    : type ID '{' accessor (accessor)? '}'
    ;

accessor : ('get' | 'set') (block | ';') ;

fieldDecl : type varDeclarator (',' varDeclarator)* ';' ;

varDeclarator : ID ('=' variableInit)? ;

variableInit
    : arrayInit
    | expression
    ;

arrayInit : '{' (variableInit (',' variableInit)*)? '}' ;

formalParams : formalParam (',' formalParam)* ;

formalParam : ('ref' | 'out' | 'params')? type ID ;

type
    : primitiveType ('[' ']')* ('?')?
    | qualifiedName ('[' ']')* ('?')?
    ;

primitiveType
    : 'bool' | 'byte' | 'char' | 'decimal' | 'double' | 'float'
    | 'int' | 'long' | 'object' | 'sbyte' | 'short' | 'string'
    | 'uint' | 'ulong' | 'ushort'
    ;

block : '{' (statement)* '}' ;

statement
    : block
    | 'if' '(' expression ')' statement ('else' statement)?
    | 'while' '(' expression ')' statement
    | 'do' statement 'while' '(' expression ')' ';'
    | 'for' '(' (forInit)? ';' (expression)? ';' (expressionList)? ')' statement
    | 'foreach' '(' type ID 'in' expression ')' statement
    | 'switch' '(' expression ')' '{' (switchSection)* '}'
    | 'return' (expression)? ';'
    | 'throw' (expression)? ';'
    | 'break' ';'
    | 'continue' ';'
    | 'try' block (catchClause)* ('finally' block)?
    | 'using' '(' localVarDecl ')' statement
    | 'lock' '(' expression ')' statement
    | (localVarDecl ';')=> localVarDecl ';'
    | expression ';'
    | ';'
    ;

forInit
    : (localVarDecl)=> localVarDecl
    | expressionList
    ;

localVarDecl : type varDeclarator (',' varDeclarator)* ;

switchSection : switchLabel (switchLabel)* (statement)+ ;

switchLabel
    : 'case' expression ':'
    | 'default' ':'
    ;

catchClause : 'catch' ('(' type (ID)? ')')? block ;

expressionList : expression (',' expression)* ;

expression : assignment ;

assignment
    : (unaryExpression assignmentOperator)=> unaryExpression assignmentOperator assignment
    | conditionalExpression
    ;

assignmentOperator
    : '=' | '+=' | '-=' | '*=' | '/=' | '%=' | '&=' | '|=' | '^=' | '<<=' | '>>='
    ;

conditionalExpression : nullCoalescing ('?' expression ':' expression)? ;

nullCoalescing : conditionalOr ('??' conditionalOr)* ;

conditionalOr : conditionalAnd ('||' conditionalAnd)* ;

conditionalAnd : inclusiveOr ('&&' inclusiveOr)* ;

inclusiveOr : exclusiveOr ('|' exclusiveOr)* ;

exclusiveOr : andExpr ('^' andExpr)* ;

andExpr : equality ('&' equality)* ;

equality : relational (('==' | '!=') relational)* ;

relational
    : shift (('<=' | '>=' | '<' | '>') shift | ('is' | 'as') type)*
    ;

shift : additive (('<<' | '>>') additive)* ;

additive : multiplicative (('+' | '-') multiplicative)* ;

multiplicative : unaryExpression (('*' | '/' | '%') unaryExpression)* ;

unaryExpression
    : ('(' type ')' unaryExpression)=> '(' type ')' unaryExpression
    | '+' unaryExpression
    | '-' unaryExpression
    | '!' unaryExpression
    | '~' unaryExpression
    | '++' unaryExpression
    | '--' unaryExpression
    | postfixExpression
    ;

postfixExpression : primary (postfixPart)* ;

postfixPart
    : '.' ID ('(' (argumentList)? ')')?
    | '[' expressionList ']'
    | '(' (argumentList)? ')'
    | '++'
    | '--'
    ;

argumentList : argument (',' argument)* ;

argument : ('ref' | 'out')? expression ;

primary
    : '(' expression ')'
    | 'new' type ('(' (argumentList)? ')' | '[' expression ']' (arrayInit)?)
    | 'typeof' '(' type ')'
    | 'this'
    | 'base' '.' ID
    | 'null'
    | 'true'
    | 'false'
    | ID
    | INTLIT
    | REALLIT
    | STRINGLIT
    | CHARLIT
    ;

ID : ('a'..'z'|'A'..'Z'|'_'|'@') ('a'..'z'|'A'..'Z'|'0'..'9'|'_')* ;

INTLIT : ('0'..'9')+ ('u'|'U'|'l'|'L')? ;

REALLIT : ('0'..'9')+ '.' ('0'..'9')+ ('f'|'F'|'d'|'D'|'m'|'M')? ;

STRINGLIT : '"' (~('"'|'\\'|'\n') | '\\' .)* '"' ;

CHARLIT : '\'' (~('\''|'\\'|'\n') | '\\' .) '\'' ;

WS : (' '|'\t'|'\r'|'\n')+ { skip(); } ;

LINE_COMMENT : '//' (~('\n'))* { skip(); } ;

COMMENT : '/*' (~('*') | ('*')+ ~('/'|'*'))* ('*')+ '/' { skip(); } ;
