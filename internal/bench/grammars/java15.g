// Java-subset grammar in PEG mode (auto-inserted syntactic predicates),
// standing in for the paper's Java1.5 benchmark grammar. The decision
// structure mirrors the constructs that drive that grammar's profile:
// field-vs-method member declarations, local-declaration-vs-expression
// statements, cast-vs-parenthesized expressions, and labeled statements.
grammar Java15;

options { backtrack=true; memoize=true; }

compilationUnit
    : (packageDecl)? (importDecl)* (typeDecl)*
    ;

packageDecl : 'package' qualifiedName ';' ;

importDecl : 'import' ('static')? qualifiedName ('.' '*')? ';' ;

qualifiedName : ID ('.' ID)* ;

typeDecl
    : classDecl
    | interfaceDecl
    | ';'
    ;

classDecl
    : modifiers 'class' ID (typeParams)? ('extends' type)? ('implements' typeList)? classBody
    ;

interfaceDecl
    : modifiers 'interface' ID (typeParams)? ('extends' typeList)? classBody
    ;

modifiers : (modifier)* ;

modifier
    : 'public' | 'protected' | 'private' | 'static' | 'final'
    | 'abstract' | 'native' | 'synchronized' | 'transient' | 'volatile'
    ;

typeParams : '<' typeParam (',' typeParam)* '>' ;

typeParam : ID ('extends' type)? ;

typeList : type (',' type)* ;

classBody : '{' (memberDecl)* '}' ;

memberDecl
    : fieldDecl
    | methodDecl
    | ctorDecl
    | classDecl
    | ';'
    ;

fieldDecl
    : modifiers type varDeclarator (',' varDeclarator)* ';'
    ;

varDeclarator : ID ('[' ']')* ('=' varInit)? ;

varInit
    : arrayInit
    | expression
    ;

arrayInit : '{' (varInit (',' varInit)* (',')? )? '}' ;

methodDecl
    : modifiers (typeParams)? ('void' | type) ID formalParams ('[' ']')*
      ('throws' typeList)? (block | ';')
    ;

ctorDecl : modifiers ID formalParams ('throws' typeList)? block ;

formalParams : '(' (formalParam (',' formalParam)*)? ')' ;

formalParam : ('final')? type ID ('[' ']')* ;

type
    : primitiveType ('[' ']')*
    | qualifiedName (typeArgs)? ('[' ']')*
    ;

typeArgs : '<' typeArg (',' typeArg)* '>' ;

typeArg
    : type
    | '?' (('extends' | 'super') type)?
    ;

primitiveType
    : 'boolean' | 'byte' | 'char' | 'short' | 'int' | 'long' | 'float' | 'double'
    ;

block : '{' (blockStatement)* '}' ;

blockStatement
    : localVarDecl ';'
    | classDecl
    | statement
    ;

localVarDecl : ('final')? type varDeclarator (',' varDeclarator)* ;

statement
    : block
    | 'if' parExpression statement ('else' statement)?
    | 'for' '(' forControl ')' statement
    | 'while' parExpression statement
    | 'do' statement 'while' parExpression ';'
    | 'try' block (catchClause)* ('finally' block)?
    | 'switch' parExpression '{' (switchGroup)* '}'
    | 'return' (expression)? ';'
    | 'throw' expression ';'
    | 'break' (ID)? ';'
    | 'continue' (ID)? ';'
    | 'assert' expression (':' expression)? ';'
    | ID ':' statement
    | statementExpression ';'
    | ';'
    ;

parExpression : '(' expression ')' ;

forControl
    : (forInit)? ';' (expression)? ';' (expressionList)?
    ;

forInit
    : localVarDecl
    | expressionList
    ;

expressionList : expression (',' expression)* ;

catchClause : 'catch' '(' formalParam ')' block ;

switchGroup : switchLabel (blockStatement)* ;

switchLabel
    : 'case' expression ':'
    | 'default' ':'
    ;

statementExpression : expression ;

expression : conditionalExpression (assignmentOperator expression)? ;

assignmentOperator
    : '=' | '+=' | '-=' | '*=' | '/=' | '&=' | '|=' | '^=' | '%='
    | '<<=' | '>>=' | '>>>='
    ;

conditionalExpression
    : conditionalOrExpression ('?' expression ':' conditionalExpression)?
    ;

conditionalOrExpression
    : conditionalAndExpression ('||' conditionalAndExpression)*
    ;

conditionalAndExpression
    : inclusiveOrExpression ('&&' inclusiveOrExpression)*
    ;

inclusiveOrExpression : exclusiveOrExpression ('|' exclusiveOrExpression)* ;

exclusiveOrExpression : andExpression ('^' andExpression)* ;

andExpression : equalityExpression ('&' equalityExpression)* ;

equalityExpression : instanceOfExpression (('==' | '!=') instanceOfExpression)* ;

instanceOfExpression : relationalExpression ('instanceof' type)? ;

relationalExpression
    : shiftExpression (('<=' | '>=' | '<' | '>') shiftExpression)*
    ;

shiftExpression : additiveExpression (('<<' | '>>>' | '>>') additiveExpression)* ;

additiveExpression : multiplicativeExpression (('+' | '-') multiplicativeExpression)* ;

multiplicativeExpression : unaryExpression (('*' | '/' | '%') unaryExpression)* ;

unaryExpression
    : '+' unaryExpression
    | '-' unaryExpression
    | '++' unaryExpression
    | '--' unaryExpression
    | unaryExpressionNotPlusMinus
    ;

unaryExpressionNotPlusMinus
    : '~' unaryExpression
    | '!' unaryExpression
    | castExpression
    | primary (selector)* (('++' | '--'))?
    ;

castExpression
    : '(' primitiveType ('[' ']')* ')' unaryExpression
    | '(' type ')' unaryExpressionNotPlusMinus
    ;

primary
    : parExpression
    | 'this' (arguments)?
    | 'super' '.' ID (arguments)?
    | literal
    | 'new' creator
    | ID (arguments)?
    | primitiveType ('[' ']')* '.' 'class'
    | 'void' '.' 'class'
    ;

creator
    : qualifiedName (typeArgs)? (arrayCreatorRest | arguments (classBody)?)
    | primitiveType arrayCreatorRest
    ;

arrayCreatorRest
    : '[' (']' ('[' ']')* arrayInit | expression ']' ('[' expression ']')* ('[' ']')*)
    ;

arguments : '(' (expressionList)? ')' ;

selector
    : '.' ID (arguments)?
    | '.' 'this'
    | '[' expression ']'
    ;

literal
    : INTLIT | FLOATLIT | STRINGLIT | CHARLIT | 'true' | 'false' | 'null'
    ;

ID : ('a'..'z'|'A'..'Z'|'_'|'$') ('a'..'z'|'A'..'Z'|'0'..'9'|'_'|'$')* ;

INTLIT : ('0'..'9')+ ('l'|'L')? ;

FLOATLIT : ('0'..'9')+ '.' ('0'..'9')+ ('f'|'F'|'d'|'D')? ;

STRINGLIT : '"' (~('"'|'\\'|'\n') | '\\' .)* '"' ;

CHARLIT : '\'' (~('\''|'\\'|'\n') | '\\' .) '\'' ;

WS : (' '|'\t'|'\r'|'\n')+ { skip(); } ;

LINE_COMMENT : '//' (~('\n'))* { skip(); } ;

COMMENT : '/*' (~('*') | ('*')+ ~('/'|'*'))* ('*')+ '/' { skip(); } ;
