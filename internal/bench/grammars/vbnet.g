// VB-flavored grammar with hand-placed syntactic predicates, standing in
// for the paper's commercial VB.NET grammar. Statements are line
// oriented (NL is a real token), keywords carry most decisions — so the
// profile is dominated by fixed LL(1)/LL(2) decisions, with a few manual
// synpreds (block-If vs line-If) the way the commercial grammar author
// reduced lookahead requirements.
grammar VBNet;

options { memoize=true; }

moduleDecl : (NL)* (importsStmt)* 'Module' ID NL (moduleMember)* 'End' 'Module' (NL)* ;

importsStmt : 'Imports' dottedName NL ;

dottedName : ID ('.' ID)* ;

moduleMember
    : dimStmt
    | constStmt
    | subDecl
    | functionDecl
    | NL
    ;

accessMod : 'Public' | 'Private' | 'Friend' ;

subDecl
    : (accessMod)? 'Sub' ID '(' (paramList)? ')' NL
      (statement)*
      'End' 'Sub' NL
    ;

functionDecl
    : (accessMod)? 'Function' ID '(' (paramList)? ')' 'As' typeName NL
      (statement)*
      'End' 'Function' NL
    ;

paramList : param (',' param)* ;

param : ('ByVal' | 'ByRef')? ID 'As' typeName ;

typeName
    : 'Integer' | 'Long' | 'Double' | 'String' | 'Boolean' | 'Object'
    | dottedName
    ;

dimStmt : 'Dim' ID 'As' typeName ('=' expression)? NL ;

constStmt : 'Const' ID 'As' typeName '=' expression NL ;

statement
    : dimStmt
    | constStmt
    | ifStmt
    | forStmt
    | whileStmt
    | doStmt
    | selectStmt
    | 'Return' (expression)? NL
    | 'Exit' ('Sub' | 'Function' | 'For' | 'While' | 'Do') NL
    | 'Throw' expression NL
    | callOrAssign NL
    | NL
    ;

// Block If vs single-line If: both start 'If' expression 'Then'; only a
// newline after Then reveals the block form. The commercial grammars
// resolve exactly this kind of decision with a manual synpred.
ifStmt
    : ('If' expression 'Then' NL)=>
      'If' expression 'Then' NL (statement)* (elseIfClause)*
      ('Else' NL (statement)*)? 'End' 'If' NL
    | 'If' expression 'Then' callOrAssign ('Else' callOrAssign)? NL
    ;

elseIfClause : 'ElseIf' expression 'Then' NL (statement)* ;

forStmt
    : 'For' ID '=' expression 'To' expression ('Step' expression)? NL
      (statement)*
      'Next' (ID)? NL
    ;

whileStmt : 'While' expression NL (statement)* 'End' 'While' NL ;

doStmt : 'Do' ('While' | 'Until') expression NL (statement)* 'Loop' NL ;

selectStmt
    : 'Select' 'Case' expression NL
      (caseClause)*
      ('Case' 'Else' NL (statement)*)?
      'End' 'Select' NL
    ;

caseClause : 'Case' expression (',' expression)* NL (statement)* ;

// Assignment vs procedure call: a dotted reference of arbitrary length
// followed by '=' is an assignment — a cyclic-lookahead decision.
callOrAssign
    : (target '=')=> target '=' expression
    | 'Call' target ('(' (argList)? ')')?
    | target ('(' (argList)? ')')?
    ;

target : ID ('.' ID)* ;

argList : expression (',' expression)* ;

expression : orExpr ;

orExpr : andExpr (('Or' | 'OrElse' | 'Xor') andExpr)* ;

andExpr : notExpr (('And' | 'AndAlso') notExpr)* ;

notExpr : 'Not' notExpr | comparison ;

comparison : concatExpr (('=' | '<>' | '<=' | '>=' | '<' | '>') concatExpr)* ;

concatExpr : addExpr ('&' addExpr)* ;

addExpr : mulExpr (('+' | '-') mulExpr)* ;

mulExpr : unaryExpr (('*' | '/' | '\\' | 'Mod') unaryExpr)* ;

unaryExpr : '-' unaryExpr | powExpr ;

powExpr : atomExpr ('^' atomExpr)* ;

atomExpr
    : '(' expression ')'
    | 'New' typeName ('(' (argList)? ')')?
    | 'True'
    | 'False'
    | 'Nothing'
    | ID ('.' ID)* ('(' (argList)? ')')?
    | NUMBER
    | STRINGLIT
    ;

ID : ('a'..'z'|'A'..'Z'|'_') ('a'..'z'|'A'..'Z'|'0'..'9'|'_')* ;

NUMBER : ('0'..'9')+ ('.' ('0'..'9')+)? ;

STRINGLIT : '"' (~('"'|'\n'))* '"' ;

NL : ('\r')? '\n' ;

WS : (' '|'\t')+ { skip(); } ;

COMMENT : '\'' (~('\n'))* { skip(); } ;
