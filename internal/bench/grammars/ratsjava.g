// A second Java-flavored grammar in PEG mode, standing in for the
// paper's RatsJava (a Rats! Java grammar converted to ANTLR syntax). It
// deliberately layers the language differently from java15.g: interface
// and enum declarations, annotation-lite modifiers, do/while, switch,
// try/catch/finally, and a flatter expression hierarchy with explicit
// ternary chains — so its decision profile is its own, not a copy.
grammar RatsJava;

options { backtrack=true; memoize=true; }

unit : (packageStmt)? (importStmt)* (typeDeclaration)+ ;

packageStmt : 'package' dottedName ';' ;

importStmt : 'import' dottedName ('.' '*')? ';' ;

dottedName : ID ('.' ID)* ;

typeDeclaration
    : (annotation)* (modifierWord)* coreType
    ;

annotation : '@' ID ( '(' (elementValue (',' elementValue)*)? ')' )? ;

elementValue : ID '=' expr | expr ;

modifierWord : 'public' | 'private' | 'protected' | 'static' | 'final' | 'abstract' ;

coreType
    : 'class' ID ('extends' typeRef)? ('implements' typeRef (',' typeRef)*)? body
    | 'interface' ID ('extends' typeRef (',' typeRef)*)? body
    | 'enum' ID '{' enumBody '}'
    ;

enumBody : ID (',' ID)* (';' (member)*)? ;

body : '{' (member)* '}' ;

member
    : (annotation)* (modifierWord)* memberCore
    | ';'
    ;

memberCore
    : typeRef ID '(' (param (',' param)*)? ')' (methodBody | ';')
    | 'void' ID '(' (param (',' param)*)? ')' (methodBody | ';')
    | typeRef ID ('=' expr)? (',' ID ('=' expr)?)* ';'
    | coreType
    ;

param : ('final')? typeRef ID ;

typeRef : (basicType | dottedName) ('[' ']')* ;

basicType : 'int' | 'boolean' | 'char' | 'long' | 'double' | 'float' | 'byte' | 'short' ;

methodBody : '{' (stmt)* '}' ;

stmt
    : '{' (stmt)* '}'
    | 'if' '(' expr ')' stmt ('else' stmt)?
    | 'do' stmt 'while' '(' expr ')' ';'
    | 'while' '(' expr ')' stmt
    | 'for' '(' (forInit)? ';' (expr)? ';' (exprList)? ')' stmt
    | 'switch' '(' expr ')' '{' (caseGroup)* '}'
    | 'try' '{' (stmt)* '}' (catchArm)* ('finally' '{' (stmt)* '}')?
    | 'return' (expr)? ';'
    | 'throw' expr ';'
    | 'break' ';'
    | 'continue' ';'
    | 'synchronized' '(' expr ')' stmt
    | declStmt
    | exprList ';'
    | ';'
    ;

declStmt : ('final')? typeRef ID ('=' expr)? (',' ID ('=' expr)?)* ';' ;

forInit
    : declStmtNoSemi
    | exprList
    ;

declStmtNoSemi : ('final')? typeRef ID ('=' expr)? (',' ID ('=' expr)?)* ;

caseGroup
    : 'case' expr ':' (stmt)*
    | 'default' ':' (stmt)*
    ;

catchArm : 'catch' '(' typeRef ID ')' '{' (stmt)* '}' ;

exprList : expr (',' expr)* ;

expr : ternary (assignOp expr)? ;

assignOp : '=' | '+=' | '-=' | '*=' | '/=' | '%=' | '&=' | '|=' | '^=' ;

ternary : orChain ('?' expr ':' ternary)? ;

orChain : andChain ('||' andChain)* ;

andChain : bitChain ('&&' bitChain)* ;

bitChain : compare (('|' | '&' | '^') compare)* ;

compare : shift (('==' | '!=' | '<=' | '>=' | '<' | '>' | 'instanceof') shift)* ;

shift : sum (('<<' | '>>') sum)* ;

sum : product (('+' | '-') product)* ;

product : prefix (('*' | '/' | '%') prefix)* ;

prefix
    : ('!' | '~' | '-' | '+' | '++' | '--') prefix
    | '(' typeRef ')' prefix
    | postfix
    ;

postfix : atom (trailer)* (('++' | '--'))? ;

trailer
    : '.' ID ('(' (exprList)? ')')?
    | '[' expr ']'
    ;

atom
    : '(' expr ')'
    | 'new' typeRef ('(' (exprList)? ')' | '[' expr ']')
    | 'this'
    | 'null'
    | 'true'
    | 'false'
    | ID ('(' (exprList)? ')')?
    | NUM
    | STR
    | CHR
    ;

ID : ('a'..'z'|'A'..'Z'|'_'|'$') ('a'..'z'|'A'..'Z'|'0'..'9'|'_'|'$')* ;

NUM : ('0'..'9')+ ('.' ('0'..'9')+)? ('f'|'F'|'d'|'D'|'l'|'L')? ;

STR : '"' (~('"'|'\\'|'\n') | '\\' .)* '"' ;

CHR : '\'' (~('\''|'\\'|'\n') | '\\' .) '\'' ;

WS : (' '|'\t'|'\r'|'\n')+ { skip(); } ;

LINE_COMMENT : '//' (~('\n'))* { skip(); } ;

COMMENT : '/*' (~('*') | ('*')+ ~('/'|'*'))* ('*')+ '/' { skip(); } ;
