package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"text/tabwriter"
	"time"

	"llstar"
)

// AnalysisSpeedup prints, per benchmark grammar, wall-clock analysis
// time with one worker versus `workers` workers, and the resulting
// speedup — the parallel-analysis counterpart of Table 1's "Runtime"
// column. Each configuration is run `runs` times (minimum 1) and the
// best time is kept, damping scheduler noise.
func AnalysisSpeedup(out io.Writer, workers, runs int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if runs < 1 {
		runs = 1
	}
	measure := func(w Workload, n int) (time.Duration, error) {
		best := time.Duration(0)
		for i := 0; i < runs; i++ {
			g, err := w.LoadFreshWith(llstar.LoadOptions{AnalysisWorkers: n})
			if err != nil {
				return 0, fmt.Errorf("%s: %v", w.Name, err)
			}
			if e := g.AnalysisResult().Elapsed; best == 0 || e < best {
				best = e
			}
		}
		return best, nil
	}

	if n := runtime.GOMAXPROCS(0); n < workers {
		fmt.Fprintf(out, "note: GOMAXPROCS=%d; speedup is bounded by available CPUs\n", n)
	}
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Grammar\tdecisions\tserial\tworkers=%d\tspeedup\n", workers)
	for _, w := range Workloads {
		serial, err := measure(w, 1)
		if err != nil {
			return err
		}
		par, err := measure(w, workers)
		if err != nil {
			return err
		}
		speedup := 0.0
		if par > 0 {
			speedup = float64(serial) / float64(par)
		}
		g, err := w.Load()
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%v\t%v\t%.2fx\n",
			w.Name, g.AnalysisResult().NumDecisions(),
			serial.Round(time.Microsecond), par.Round(time.Microsecond), speedup)
	}
	return tw.Flush()
}

// ConcurrentParses prints, per benchmark grammar, wall-clock time to
// parse `goroutines` generated inputs sequentially on one parser versus
// concurrently through a shared ParserPool with that many goroutines —
// the serving-path throughput table. Inputs are generated from
// consecutive seeds so both configurations parse identical work.
func ConcurrentParses(out io.Writer, seed int64, lines, goroutines int) error {
	if goroutines <= 0 {
		goroutines = runtime.GOMAXPROCS(0)
	}
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Grammar\tparses\ttotal lines\tserial\tconcurrent(%d)\tspeedup\tlines/sec\n", goroutines)
	for _, w := range Workloads {
		g, err := w.Load()
		if err != nil {
			return err
		}
		inputs := make([]string, goroutines)
		totalLines := 0
		for i := range inputs {
			inputs[i] = w.Input(seed+int64(i), lines)
			totalLines += countLines(inputs[i])
		}

		// Sequential baseline: one reusable parser, one goroutine.
		p := g.NewParser()
		serialStart := time.Now()
		for _, in := range inputs {
			if _, err := p.Parse(w.Start, in); err != nil {
				return fmt.Errorf("%s (serial): %v", w.Name, err)
			}
		}
		serial := time.Since(serialStart)

		// Concurrent: shared pool, one goroutine per input.
		pool := g.NewParserPool()
		var wg sync.WaitGroup
		errs := make([]error, len(inputs))
		concStart := time.Now()
		for i, in := range inputs {
			wg.Add(1)
			go func(i int, in string) {
				defer wg.Done()
				_, errs[i] = pool.Parse(w.Start, in)
			}(i, in)
		}
		wg.Wait()
		conc := time.Since(concStart)
		for _, err := range errs {
			if err != nil {
				return fmt.Errorf("%s (concurrent): %v", w.Name, err)
			}
		}

		speedup := 0.0
		if conc > 0 {
			speedup = float64(serial) / float64(conc)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%v\t%v\t%.2fx\t%.0f\n",
			w.Name, len(inputs), totalLines,
			serial.Round(time.Millisecond), conc.Round(time.Millisecond),
			speedup, float64(totalLines)/conc.Seconds())
	}
	return tw.Flush()
}
