package bench

import (
	"fmt"
	"testing"

	"llstar"
	"llstar/internal/lexrt"
	"llstar/internal/peg"
	"llstar/internal/runtime"
)

// mutations derives adversarial variants of a valid input: truncation at
// an arbitrary byte and deletion of a mid-input byte. Both stay within
// the grammar's alphabet, so disagreements point at prediction bugs, not
// lexer differences.
func mutations(valid string) map[string]string {
	ms := map[string]string{"valid": valid}
	if len(valid) > 4 {
		ms["truncated"] = valid[:len(valid)*3/5]
		mid := len(valid) / 2
		ms["deleted-byte"] = valid[:mid] + valid[mid+1:]
	}
	return ms
}

// TestDifferentialBaselines cross-checks three implementations of each
// benchmark grammar's language on valid and mutated inputs:
//
//   - the LL(*) interpreter (lookahead DFAs + backtracking fallback)
//   - the ANTLR-v2-style linear approximate LL(2) interpreter
//   - the packrat/PEG baseline (PEG-mode grammars only)
//
// LL(*) and approximate LL(k) must agree exactly on accept/reject, and on
// tree shape when both accept: static analysis only changes *how* an
// alternative is chosen, never *which* alternative wins. The PEG baseline
// is checked one-directionally (PEG accepts ⇒ LL(*) accepts) because
// LL(*) may accept strings ordered choice commits away from; on untouched
// valid inputs all three must accept.
func TestDifferentialBaselines(t *testing.T) {
	const lines = 25
	for _, w := range Workloads {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			g, err := w.Load()
			if err != nil {
				t.Fatal(err)
			}
			res := g.AnalysisResult()
			for seed := int64(1); seed <= 3; seed++ {
				for name, input := range mutations(w.Input(seed, lines)) {
					label := fmt.Sprintf("seed=%d/%s", seed, name)

					ll := g.NewParser(llstar.WithTree())
					llTree, llErr := ll.Parse(w.Start, input)

					ap := g.NewParser(llstar.WithTree(), llstar.WithApproxLLK(2))
					apTree, apErr := ap.Parse(w.Start, input)

					if (llErr == nil) != (apErr == nil) {
						t.Errorf("%s: LL(*) and approx-LL(2) disagree:\nLL(*): %v\napprox: %v",
							label, llErr, apErr)
						continue
					}
					if llErr == nil && llTree.String() != apTree.String() {
						t.Errorf("%s: LL(*) and approx-LL(2) accept with different trees", label)
					}

					if w.Mode == "PEG" {
						pp := peg.New(res.Grammar, peg.Options{Memoize: true})
						lx := lexrt.New(res.Machine.Lex, input)
						_, pegErr := pp.ParseTokens(w.Start, runtime.NewTokenStream(lx))
						if pegErr == nil && llErr != nil {
							t.Errorf("%s: PEG accepts but LL(*) rejects: %v", label, llErr)
						}
						if name == "valid" && pegErr != nil {
							t.Errorf("%s: PEG rejects generated valid input: %v", label, pegErr)
						}
					}
					if name == "valid" && llErr != nil {
						t.Errorf("%s: LL(*) rejects generated valid input: %v", label, llErr)
					}
				}
			}
		})
	}
}
