package bench

import (
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"llstar"
)

// ColdWarm prints, per benchmark grammar, cold load time (full
// analysis, subset construction and all) versus warm load time (the
// serialized artifact served from the persistent cache) plus the
// on-disk artifact size — the warm-start counterpart of the
// parallel-analysis speedup table. Each configuration is run `runs`
// times (minimum 1) and the best time kept, damping scheduler noise.
// The cache lives in a fresh temp directory, so cold really is cold.
func ColdWarm(out io.Writer, runs int) error {
	if runs < 1 {
		runs = 1
	}
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Grammar\tdecisions\tartifact\tcold\twarm\tspeedup\n")
	for _, w := range Workloads {
		dir, err := os.MkdirTemp("", "llstar-coldwarm-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)

		text, err := w.GrammarText()
		if err != nil {
			return err
		}
		load := func() (*llstar.Grammar, time.Duration, error) {
			start := time.Now()
			g, err := llstar.LoadWith(w.File, text, llstar.LoadOptions{CacheDir: dir})
			return g, time.Since(start), err
		}

		// Cold: every run starts from an empty cache.
		var g *llstar.Grammar
		var cold time.Duration
		for i := 0; i < runs; i++ {
			var err error
			var e time.Duration
			g, e, err = load()
			if err != nil {
				return fmt.Errorf("%s (cold): %v", w.Name, err)
			}
			if i < runs-1 {
				// Clear for the next cold run; the final run leaves the
				// artifact in place for the warm measurements.
				if err := os.Remove(fmt.Sprintf("%s/%s.llsc", dir, g.Fingerprint())); err != nil {
					return err
				}
			}
			if cold == 0 || e < cold {
				cold = e
			}
		}

		info, err := os.Stat(fmt.Sprintf("%s/%s.llsc", dir, g.Fingerprint()))
		if err != nil {
			return fmt.Errorf("%s: artifact not stored: %v", w.Name, err)
		}

		var warm time.Duration
		for i := 0; i < runs; i++ {
			wg, e, err := load()
			if err != nil {
				return fmt.Errorf("%s (warm): %v", w.Name, err)
			}
			if !wg.LoadedFromCache() {
				return fmt.Errorf("%s: warm load missed the cache", w.Name)
			}
			if warm == 0 || e < warm {
				warm = e
			}
		}

		speedup := 0.0
		if warm > 0 {
			speedup = float64(cold) / float64(warm)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f KB\t%v\t%v\t%.2fx\n",
			w.Name, g.AnalysisResult().NumDecisions(), float64(info.Size())/1024,
			cold.Round(time.Microsecond), warm.Round(time.Microsecond), speedup)
	}
	return tw.Flush()
}
