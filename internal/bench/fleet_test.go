package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestFleetLoadSmoke boots the two-phase harness at its smallest useful
// shape: 2 replicas, a short window. It asserts the plumbing — both
// phases complete without shed traffic turning into errors, the ratio
// is computed, and proxying actually happened (round-robin clients on a
// 2-ring must land off-owner about half the time).
func TestFleetLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet harness boots real TCP servers")
	}
	var out bytes.Buffer
	fr, err := FleetLoad(&out, FleetLoadOptions{
		Replicas:    2,
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
		Seed:        1,
		Lines:       40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Replicas != 2 || fr.Clients != 4 {
		t.Fatalf("result shape: %+v", fr)
	}
	if fr.SingleReqPerSec <= 0 || fr.FleetReqPerSec <= 0 || fr.Scaling <= 0 {
		t.Fatalf("throughput not measured: %+v", fr)
	}
	if fr.Errors != 0 {
		t.Fatalf("fleet load saw %d errors", fr.Errors)
	}
	if fr.ProxiedPct <= 0 {
		t.Fatalf("no requests proxied (%+v) — ring routing inactive?", fr)
	}
	if !strings.Contains(out.String(), "scaling") {
		t.Fatalf("table missing header:\n%s", out.String())
	}
	// The distribution is read back through /debug/fleet on a live
	// replica — every replica must appear, shares must sum to ~100%,
	// and at least one replica must have proxied something.
	if len(fr.Distribution) != 2 {
		t.Fatalf("distribution has %d replicas, want 2: %+v", len(fr.Distribution), fr.Distribution)
	}
	var pct float64
	var proxiedOut int64
	for _, d := range fr.Distribution {
		if d.Addr == "" || d.Requests <= 0 {
			t.Fatalf("empty distribution entry: %+v", d)
		}
		pct += d.ServedPct
		proxiedOut += d.ProxiedOut
	}
	if pct < 99.9 || pct > 100.1 {
		t.Fatalf("served shares sum to %.2f%%, want ~100%%", pct)
	}
	if proxiedOut == 0 {
		t.Fatal("distribution shows no proxy hops despite ProxiedPct > 0")
	}
}
