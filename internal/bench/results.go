package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"llstar"
)

// ResultVersion versions the BENCH_*.json schema.
const ResultVersion = 1

// ResultSet is the machine-readable benchmark artifact: one run of the
// six workloads at a fixed seed and input size. Counter fields are
// deterministic — the same seed, lines, and code produce identical
// values — so a diff against a checked-in baseline separates real
// behavior changes from timing noise.
type ResultSet struct {
	Version int    `json:"version"`
	Seed    int64  `json:"seed"`
	Lines   int    `json:"lines"`
	Runs    int    `json:"runs"`
	GoOS    string `json:"goos"`
	GoArch  string `json:"goarch"`

	// Run metadata: which toolchain and host shape produced the
	// numbers. Informational only — Compare never reads it — but it
	// lets a BENCH_*.json trajectory answer "did the toolchain change
	// between these two points?" without archaeology.
	GoVersion  string `json:"go_version,omitempty"`
	GoMaxProcs int    `json:"gomaxprocs,omitempty"`
	Timestamp  string `json:"timestamp_utc,omitempty"`

	Workloads []WorkloadResult `json:"workloads"`

	// Stream is the streaming/incremental section, filled by AddStream
	// when the run includes the streaming engine (-stream). Nil on
	// older baselines — Compare tolerates either way.
	Stream *StreamResult `json:"stream,omitempty"`

	// Fleet is the distributed-serving section, filled from FleetLoad
	// when the run includes the fleet harness (-fleet). Every field in
	// it is timing-derived and machine-shaped, so Compare never gates
	// on it — it is trajectory data, like ParseNanos. Nil on older
	// baselines and on runs without -fleet.
	Fleet *FleetResult `json:"fleet,omitempty"`
}

// WorkloadResult is one grammar's row: the static analysis shape, the
// deterministic parse counters, and the (noisy) best-of-runs timing.
type WorkloadResult struct {
	Name    string `json:"name"`
	Grammar string `json:"grammar"`

	// Analysis shape (deterministic).
	Decisions int `json:"decisions"`
	Fixed     int `json:"fixed"`
	Cyclic    int `json:"cyclic"`
	Backtrack int `json:"backtrack"`

	// Parse counters (deterministic for fixed seed+lines).
	InputLines       int     `json:"input_lines"`
	Events           int     `json:"events"`
	DecisionsCovered int     `json:"decisions_covered"`
	AvgK             float64 `json:"avg_k"`
	MaxK             int     `json:"max_k"`
	BacktrackEvents  int     `json:"backtrack_events"`
	MemoEntries      int     `json:"memo_entries"`
	MemoHits         int     `json:"memo_hits"`
	MemoMisses       int     `json:"memo_misses"`
	MemoStores       int     `json:"memo_stores"`

	// Timing (noisy; best of Runs).
	ParseNanos  int64   `json:"parse_nanos"`
	LinesPerSec float64 `json:"lines_per_sec"`

	// Generated-parser columns, filled by AddCompiled when the run
	// includes the compiled engine (-compiled). GenTokens is
	// deterministic; the timings are noisy like ParseNanos. All zero on
	// interpreter-only runs — Compare tolerates baselines either way.
	GenTokens      int     `json:"gen_tokens,omitempty"`
	GenParseNanos  int64   `json:"gen_parse_nanos,omitempty"`
	GenLinesPerSec float64 `json:"gen_lines_per_sec,omitempty"`

	// Streaming columns, filled by AddStream when the run includes the
	// streaming engine (-stream). StreamEvents (SAX events emitted) and
	// StreamPeakWindow (peak buffered tokens) are deterministic; zero on
	// non-streaming runs — Compare tolerates baselines either way.
	StreamEvents     int `json:"stream_events,omitempty"`
	StreamPeakWindow int `json:"stream_peak_window,omitempty"`
}

// RunResultSet runs every workload at the given seed and input size,
// keeping the best timing of runs while asserting the counters agree
// across runs (they must — the input and parser are deterministic).
func RunResultSet(seed int64, lines, runs int) (*ResultSet, error) {
	if runs < 1 {
		runs = 1
	}
	rs := &ResultSet{
		Version: ResultVersion,
		Seed:    seed, Lines: lines, Runs: runs,
		GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	for _, w := range Workloads {
		g, err := w.Load()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		wr := WorkloadResult{Name: w.Name, Grammar: w.File}
		for _, d := range g.Decisions() {
			wr.Decisions++
			switch d.Class {
			case llstar.Fixed:
				wr.Fixed++
			case llstar.Cyclic:
				wr.Cyclic++
			default:
				wr.Backtrack++
			}
		}
		input := w.Input(seed, lines)
		wr.InputLines = countLines(input)
		best := time.Duration(math.MaxInt64)
		for r := 0; r < runs; r++ {
			p := g.NewParser(llstar.WithStats())
			t0 := time.Now()
			if _, err := p.Parse(w.Start, input); err != nil {
				return nil, fmt.Errorf("%s: %w", w.Name, err)
			}
			elapsed := time.Since(t0)
			if elapsed < best {
				best = elapsed
			}
			st := p.Stats()
			cur := WorkloadResult{
				Events:           st.TotalEvents(),
				DecisionsCovered: st.DecisionsCovered(),
				AvgK:             st.AvgK(),
				MaxK:             st.MaxK(),
				BacktrackEvents:  st.BacktrackEvents(),
				MemoEntries:      st.MemoEntries,
				MemoHits:         st.MemoHits,
				MemoMisses:       st.MemoMisses,
				MemoStores:       st.MemoStores,
			}
			if r == 0 {
				wr.Events, wr.DecisionsCovered, wr.AvgK, wr.MaxK = cur.Events, cur.DecisionsCovered, cur.AvgK, cur.MaxK
				wr.BacktrackEvents = cur.BacktrackEvents
				wr.MemoEntries, wr.MemoHits, wr.MemoMisses, wr.MemoStores = cur.MemoEntries, cur.MemoHits, cur.MemoMisses, cur.MemoStores
			} else if cur.Events != wr.Events || cur.MemoStores != wr.MemoStores {
				return nil, fmt.Errorf("%s: counters differ across runs (events %d vs %d) — parser is not deterministic",
					w.Name, cur.Events, wr.Events)
			}
		}
		wr.ParseNanos = best.Nanoseconds()
		if best > 0 {
			wr.LinesPerSec = float64(wr.InputLines) / best.Seconds()
		}
		rs.Workloads = append(rs.Workloads, wr)
	}
	return rs, nil
}

// WriteJSON serializes the result set, indented for stable diffs.
func (rs *ResultSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}

// ReadResults parses a result set written by WriteJSON.
func ReadResults(r io.Reader) (*ResultSet, error) {
	var rs ResultSet
	if err := json.NewDecoder(r).Decode(&rs); err != nil {
		return nil, fmt.Errorf("bench: bad results file: %w", err)
	}
	if rs.Version != ResultVersion {
		return nil, fmt.Errorf("bench: results version %d, want %d (regenerate the baseline)", rs.Version, ResultVersion)
	}
	return &rs, nil
}

// CompareOptions tune Compare.
type CompareOptions struct {
	// Threshold is the tolerated fractional timing regression
	// (0.15 = 15%). Zero means the 15% default.
	Threshold float64
	// Timing enables the lines/sec comparison. Off, only the
	// deterministic counters are compared — the right mode for CI, where
	// the baseline was recorded on different hardware.
	Timing bool
}

// Compare diffs a fresh result set against a baseline, writing one line
// per finding. Deterministic counters must match exactly (any drift is
// a behavior change the baseline doesn't bless); timings may regress up
// to the threshold. It returns false when the new results regress.
func Compare(out io.Writer, baseline, cur *ResultSet, opts CompareOptions) bool {
	threshold := opts.Threshold
	if threshold == 0 {
		threshold = 0.15
	}
	ok := true
	fail := func(format string, args ...any) {
		ok = false
		fmt.Fprintf(out, "REGRESSION: "+format+"\n", args...)
	}
	if baseline.Seed != cur.Seed || baseline.Lines != cur.Lines {
		fail("config mismatch: baseline seed=%d lines=%d, current seed=%d lines=%d",
			baseline.Seed, baseline.Lines, cur.Seed, cur.Lines)
		return false
	}
	base := map[string]WorkloadResult{}
	for _, w := range baseline.Workloads {
		base[w.Name] = w
	}
	for _, w := range cur.Workloads {
		b, found := base[w.Name]
		if !found {
			fmt.Fprintf(out, "note: %s not in baseline (new workload)\n", w.Name)
			continue
		}
		delete(base, w.Name)
		failedBefore := !ok
		counters := []struct {
			name     string
			old, new int
		}{
			{"decisions", b.Decisions, w.Decisions},
			{"fixed", b.Fixed, w.Fixed},
			{"cyclic", b.Cyclic, w.Cyclic},
			{"backtrack", b.Backtrack, w.Backtrack},
			{"input_lines", b.InputLines, w.InputLines},
			{"events", b.Events, w.Events},
			{"decisions_covered", b.DecisionsCovered, w.DecisionsCovered},
			{"max_k", b.MaxK, w.MaxK},
			{"backtrack_events", b.BacktrackEvents, w.BacktrackEvents},
			{"memo_entries", b.MemoEntries, w.MemoEntries},
			{"memo_hits", b.MemoHits, w.MemoHits},
			{"memo_misses", b.MemoMisses, w.MemoMisses},
			{"memo_stores", b.MemoStores, w.MemoStores},
		}
		for _, c := range counters {
			if c.old != c.new {
				fail("%s: %s changed %d -> %d (deterministic counter; regenerate the baseline if intended)",
					w.Name, c.name, c.old, c.new)
			}
		}
		if math.Abs(b.AvgK-w.AvgK) > 1e-9 {
			fail("%s: avg_k changed %.6f -> %.6f", w.Name, b.AvgK, w.AvgK)
		}
		// Generated-parser data is compared only when the baseline has
		// it: an interpreter-only baseline predates the compiled engine
		// and stays valid.
		if b.GenTokens != 0 {
			if w.GenTokens == 0 {
				fail("%s: baseline has generated-parser counters but current run does not (rerun with -compiled)", w.Name)
			} else if b.GenTokens != w.GenTokens {
				fail("%s: gen_tokens changed %d -> %d (deterministic counter; regenerate the baseline if intended)",
					w.Name, b.GenTokens, w.GenTokens)
			}
		}
		// Streaming data likewise gates on baseline presence.
		if b.StreamEvents != 0 {
			if w.StreamEvents == 0 {
				fail("%s: baseline has streaming counters but current run does not (rerun with -stream)", w.Name)
			} else {
				if b.StreamEvents != w.StreamEvents {
					fail("%s: stream_events changed %d -> %d (deterministic counter; regenerate the baseline if intended)",
						w.Name, b.StreamEvents, w.StreamEvents)
				}
				if b.StreamPeakWindow != w.StreamPeakWindow {
					fail("%s: stream_peak_window changed %d -> %d (deterministic counter; regenerate the baseline if intended)",
						w.Name, b.StreamPeakWindow, w.StreamPeakWindow)
				}
			}
		}
		countersOK := ok || failedBefore // no new failure since this workload started
		if opts.Timing && b.LinesPerSec > 0 {
			drop := (b.LinesPerSec - w.LinesPerSec) / b.LinesPerSec
			if drop > threshold {
				fail("%s: lines/sec %.0f -> %.0f (-%.1f%%, threshold %.0f%%)",
					w.Name, b.LinesPerSec, w.LinesPerSec, 100*drop, 100*threshold)
			} else if countersOK {
				fmt.Fprintf(out, "ok: %s timing %.0f -> %.0f lines/sec (%+.1f%%)\n",
					w.Name, b.LinesPerSec, w.LinesPerSec, -100*drop)
			}
			if b.GenLinesPerSec > 0 && w.GenLinesPerSec > 0 {
				genDrop := (b.GenLinesPerSec - w.GenLinesPerSec) / b.GenLinesPerSec
				if genDrop > threshold {
					fail("%s: generated lines/sec %.0f -> %.0f (-%.1f%%, threshold %.0f%%)",
						w.Name, b.GenLinesPerSec, w.GenLinesPerSec, 100*genDrop, 100*threshold)
				}
			}
		} else if countersOK {
			fmt.Fprintf(out, "ok: %s counters match baseline\n", w.Name)
		}
	}
	for name := range base {
		fail("%s: missing from current results", name)
	}
	// The fleet section is all throughput ratios — noisy and
	// hardware-shaped — so it is never gated, only surfaced.
	if baseline.Fleet != nil && cur.Fleet != nil {
		fmt.Fprintf(out, "note: fleet scaling %.2fx -> %.2fx (%d replicas, informational)\n",
			baseline.Fleet.Scaling, cur.Fleet.Scaling, cur.Fleet.Replicas)
	} else if baseline.Fleet != nil {
		fmt.Fprintf(out, "note: baseline has a fleet section (%.2fx at %d replicas); current run skipped -fleet\n",
			baseline.Fleet.Scaling, baseline.Fleet.Replicas)
	}
	// The incremental edit benchmark compares only when the baseline
	// recorded one: token count and reuse percentage are deterministic.
	if baseline.Stream != nil {
		switch {
		case cur.Stream == nil:
			fail("baseline has a stream section but current run does not (rerun with -stream)")
		case baseline.Stream.EditLines != cur.Stream.EditLines,
			baseline.Stream.EditTokens != cur.Stream.EditTokens:
			fail("stream: edit bench shape changed (%d lines/%d tokens -> %d/%d)",
				baseline.Stream.EditLines, baseline.Stream.EditTokens,
				cur.Stream.EditLines, cur.Stream.EditTokens)
		case math.Abs(baseline.Stream.EditReusedTokensPct-cur.Stream.EditReusedTokensPct) > 1e-9:
			fail("stream: edit_reused_tokens_pct changed %.2f -> %.2f",
				baseline.Stream.EditReusedTokensPct, cur.Stream.EditReusedTokensPct)
		}
	}
	return ok
}
