package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"llstar/internal/server"
)

// ServeLoadOptions configures the llstar-serve load harness.
type ServeLoadOptions struct {
	// URL targets a running llstar-serve instance (e.g. from another
	// machine). Empty starts an in-process server over the six benchmark
	// grammars and drives that.
	URL string
	// Concurrency is the number of closed-loop clients (default 16).
	Concurrency int
	// Duration is how long the clients run (default 5s).
	Duration time.Duration
	// Seed and Lines shape the generated inputs (defaults 1 and 200).
	Seed  int64
	Lines int
}

// serveTarget is one grammar in the request mix.
type serveTarget struct {
	workload Workload
	grammar  string // name on the server
	inputs   []string
}

// serveSample aggregates one client's observations for one grammar.
type serveSample struct {
	latencies []time.Duration // successful requests only
	ok        int
	shed      int // 429
	failed    int
	firstErr  string
}

// ServeLoad drives an llstar-serve instance with closed-loop clients
// round-robining the six benchmark workloads, then prints a per-grammar
// latency/throughput table (p50/p95/p99, requests/sec) — the serving
// analogue of the ConcurrentParses table. With opts.URL empty it
// boots an in-process server first, so `llstar-bench -serve` works out
// of the box.
func ServeLoad(out io.Writer, opts ServeLoadOptions) error {
	if opts.Concurrency <= 0 {
		opts.Concurrency = 16
	}
	if opts.Duration <= 0 {
		opts.Duration = 5 * time.Second
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Lines <= 0 {
		opts.Lines = 200
	}

	base := opts.URL
	if base == "" {
		url, shutdown, err := startBenchServer(opts.Concurrency)
		if err != nil {
			return err
		}
		defer shutdown()
		base = url
	}
	base = strings.TrimRight(base, "/")

	// Pregenerate a few input variants per workload so the hot loop
	// only does HTTP.
	targets := make([]serveTarget, len(Workloads))
	for i, w := range Workloads {
		t := serveTarget{workload: w, grammar: strings.TrimSuffix(w.File, ".g")}
		for v := int64(0); v < 4; v++ {
			t.inputs = append(t.inputs, w.Input(opts.Seed+v, opts.Lines))
		}
		targets[i] = t
	}

	client := &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        opts.Concurrency * 2,
			MaxIdleConnsPerHost: opts.Concurrency * 2,
		},
	}
	// One warmup request per grammar: server-side lazy loads and pool
	// fills happen outside the measured window.
	for _, t := range targets {
		if _, _, err := serveOnce(client, base, t, 0); err != nil {
			return fmt.Errorf("warmup %s: %w", t.grammar, err)
		}
	}

	stop := time.Now().Add(opts.Duration)
	perClient := make([]map[string]*serveSample, opts.Concurrency)
	var wg sync.WaitGroup
	measureStart := time.Now()
	for c := 0; c < opts.Concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			samples := map[string]*serveSample{}
			perClient[c] = samples
			for i := 0; time.Now().Before(stop); i++ {
				t := targets[(c+i)%len(targets)]
				s := samples[t.grammar]
				if s == nil {
					s = &serveSample{}
					samples[t.grammar] = s
				}
				code, dur, err := serveOnce(client, base, t, (c+i)%len(t.inputs))
				switch {
				case err != nil:
					s.failed++
					if s.firstErr == "" {
						s.firstErr = err.Error()
					}
				case code == http.StatusOK:
					s.ok++
					s.latencies = append(s.latencies, dur)
				case code == http.StatusTooManyRequests:
					s.shed++
				default:
					s.failed++
					if s.firstErr == "" {
						s.firstErr = fmt.Sprintf("HTTP %d", code)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(measureStart)

	// Merge per-client samples per grammar.
	merged := map[string]*serveSample{}
	for _, samples := range perClient {
		for name, s := range samples {
			m := merged[name]
			if m == nil {
				m = &serveSample{}
				merged[name] = m
			}
			m.ok += s.ok
			m.shed += s.shed
			m.failed += s.failed
			m.latencies = append(m.latencies, s.latencies...)
			if m.firstErr == "" {
				m.firstErr = s.firstErr
			}
		}
	}

	fmt.Fprintf(out, "target: %s   clients: %d   duration: %v\n",
		base, opts.Concurrency, elapsed.Round(time.Millisecond))
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Grammar\trequests\tok\t429\terr\tp50\tp95\tp99\treq/s\n")
	total := &serveSample{}
	for _, t := range targets {
		m := merged[t.grammar]
		if m == nil {
			continue
		}
		printServeRow(tw, t.workload.Name, m, elapsed)
		total.ok += m.ok
		total.shed += m.shed
		total.failed += m.failed
		total.latencies = append(total.latencies, m.latencies...)
		if total.firstErr == "" {
			total.firstErr = m.firstErr
		}
	}
	printServeRow(tw, "TOTAL", total, elapsed)
	if err := tw.Flush(); err != nil {
		return err
	}
	if total.firstErr != "" {
		fmt.Fprintf(out, "first error: %s\n", total.firstErr)
	}
	return nil
}

func printServeRow(tw io.Writer, name string, s *serveSample, elapsed time.Duration) {
	n := s.ok + s.shed + s.failed
	fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%v\t%v\t%v\t%.0f\n",
		name, n, s.ok, s.shed, s.failed,
		percentile(s.latencies, 0.50), percentile(s.latencies, 0.95),
		percentile(s.latencies, 0.99), float64(s.ok)/elapsed.Seconds())
}

// percentile returns the q-quantile of ds (nearest-rank), rounded for
// display. It sorts in place.
func percentile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	idx := int(q*float64(len(ds))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ds) {
		idx = len(ds) - 1
	}
	return ds[idx].Round(10 * time.Microsecond)
}

// serveOnce sends one parse request and reports status and latency.
func serveOnce(client *http.Client, base string, t serveTarget, variant int) (int, time.Duration, error) {
	body, err := json.Marshal(map[string]string{
		"grammar": t.grammar,
		"rule":    t.workload.Start,
		"input":   t.inputs[variant],
	})
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	resp, err := client.Post(base+"/v1/parse", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, time.Since(start), nil
}

// startBenchServer materializes the six benchmark grammars into a temp
// directory and serves them from an in-process llstar-serve on an
// ephemeral port. The returned shutdown also removes the directory.
func startBenchServer(concurrency int) (url string, shutdown func(), err error) {
	dir, err := os.MkdirTemp("", "llstar-serve-bench-")
	if err != nil {
		return "", nil, err
	}
	cleanupDir := func() { os.RemoveAll(dir) }
	for _, w := range Workloads {
		text, err := w.GrammarText()
		if err != nil {
			cleanupDir()
			return "", nil, err
		}
		if err := os.WriteFile(filepath.Join(dir, w.File), []byte(text), 0o644); err != nil {
			cleanupDir()
			return "", nil, err
		}
	}
	maxInFlight := 64
	if n := concurrency * 2; n > maxInFlight {
		maxInFlight = n
	}
	s, err := server.New(server.Config{
		GrammarDir:   dir,
		MaxInFlight:  maxInFlight,
		MaxBodyBytes: 64 << 20, // big generated inputs are the point
		Preload:      []string{"all"},
	})
	if err != nil {
		cleanupDir()
		return "", nil, err
	}
	if err := s.Preload(); err != nil {
		cleanupDir()
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cleanupDir()
		return "", nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	shutdown = func() {
		hs.Close()
		cleanupDir()
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}
