package bench

import (
	"strings"
	"testing"
	"time"
)

// TestServeLoad boots the in-process bench server and runs a short
// closed-loop load, checking the table reports traffic for every
// benchmark grammar with zero failures.
func TestServeLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock load test")
	}
	var sb strings.Builder
	err := ServeLoad(&sb, ServeLoadOptions{
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
		Lines:       20,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	t.Log("\n" + out)
	if strings.Contains(out, "first error") {
		t.Fatalf("load run had failures:\n%s", out)
	}
	for _, w := range Workloads {
		if !strings.Contains(out, w.Name) {
			t.Errorf("no row for %s", w.Name)
		}
	}
	if !strings.Contains(out, "TOTAL") {
		t.Error("no TOTAL row")
	}
}

func TestPercentile(t *testing.T) {
	ms := time.Millisecond
	ds := []time.Duration{5 * ms, 1 * ms, 4 * ms, 2 * ms, 3 * ms}
	if got := percentile(ds, 0.5); got != 3*ms {
		t.Errorf("p50 = %v", got)
	}
	if got := percentile(ds, 0.99); got != 5*ms {
		t.Errorf("p99 = %v", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty = %v", got)
	}
}
