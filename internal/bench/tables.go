package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"llstar"
)

// Profile is one profiled parse run: the raw material of Tables 3 and 4.
type Profile struct {
	Workload   string
	InputLines int
	ParseTime  time.Duration
	Stats      *llstar.Stats
}

// RunProfile generates an input and parses it with profiling enabled.
func RunProfile(w Workload, seed int64, lines int) (*Profile, error) {
	g, err := w.Load()
	if err != nil {
		return nil, err
	}
	input := w.Input(seed, lines)
	p := g.NewParser(llstar.WithStats())
	start := time.Now()
	if _, err := p.Parse(w.Start, input); err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	return &Profile{
		Workload:   w.Name,
		InputLines: countLines(input),
		ParseTime:  time.Since(start),
		Stats:      p.Stats(),
	}, nil
}

// Table1 prints grammar decision characteristics: for each grammar its
// size, number of decisions, and the fixed/cyclic/backtrack split, plus
// analysis time (paper Table 1).
func Table1(out io.Writer) error {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Grammar\tLines\tn\tFixed\tCyclic\tBacktrack\tRuntime")
	for _, w := range Workloads {
		g, err := w.LoadFresh()
		if err != nil {
			return err
		}
		var fixed, cyclic, back int
		for _, d := range g.Decisions() {
			switch d.Class {
			case llstar.Fixed:
				fixed++
			case llstar.Cyclic:
				cyclic++
			default:
				back++
			}
		}
		n := fixed + cyclic + back
		res := g.AnalysisResult()
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d (%.1f%%)\t%v\n",
			w.Name, w.GrammarLines(), n, fixed, cyclic, back,
			100*float64(back)/float64(n), res.Elapsed.Round(time.Millisecond))
	}
	return tw.Flush()
}

// Table2 prints fixed-lookahead decision characteristics: %LL(k), %LL(1),
// and per-depth decision counts (paper Table 2).
func Table2(out io.Writer) error {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Grammar\tLL(k)%\tLL(1)%\tk=1\tk=2\tk=3\tk=4\tk=5\tk=6+")
	for _, w := range Workloads {
		g, err := w.Load()
		if err != nil {
			return err
		}
		res := g.AnalysisResult()
		hist := res.FixedKHistogram()
		n := res.NumDecisions()
		var fixed int
		counts := make([]int, 7) // index 1..5, 6 = 6+
		for k := 1; k < len(hist); k++ {
			fixed += hist[k]
			if k <= 5 {
				counts[k] += hist[k]
			} else {
				counts[6] += hist[k]
			}
		}
		fmt.Fprintf(tw, "%s\t%.2f%%\t%.2f%%\t%d\t%d\t%d\t%d\t%d\t%d\n",
			w.Name, 100*float64(fixed)/float64(n), 100*float64(counts[1])/float64(n),
			counts[1], counts[2], counts[3], counts[4], counts[5], counts[6])
	}
	return tw.Flush()
}

// Table3 prints runtime lookahead behavior: parse time, decisions
// covered, average lookahead depth over all decision events, average
// speculation depth over backtracking events, and the deepest lookahead
// (paper Table 3).
func Table3(out io.Writer, seed int64, lines int) error {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Grammar\tInput lines\tparse time\tn\tavg k\tback k\tmax k\tlines/sec")
	for _, w := range Workloads {
		p, err := RunProfile(w, seed, lines)
		if err != nil {
			return err
		}
		st := p.Stats
		perSec := float64(p.InputLines) / p.ParseTime.Seconds()
		fmt.Fprintf(tw, "%s\t%d\t%v\t%d\t%.2f\t%.2f\t%d\t%.0f\n",
			w.Name, p.InputLines, p.ParseTime.Round(time.Microsecond),
			st.DecisionsCovered(), st.AvgK(), st.AvgBacktrackK(), st.MaxK(), perSec)
	}
	return tw.Flush()
}

// Table4 prints backtracking behavior: decisions that can backtrack, that
// did backtrack, total decision events, the share of events that
// backtracked, and the trigger rate at potentially-backtracking decisions
// (paper Table 4).
func Table4(out io.Writer, seed int64, lines int) error {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Grammar\tCan back.\tDid back.\tdecision events\tBacktrack\tBack. rate")
	for _, w := range Workloads {
		p, err := RunProfile(w, seed, lines)
		if err != nil {
			return err
		}
		st := p.Stats
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.2f%%\t%.2f%%\n",
			w.Name, st.CanBacktrackCount(), st.DidBacktrackCount(),
			st.TotalEvents(), 100*st.BacktrackRatio(), 100*st.BacktrackTriggerRate())
	}
	return tw.Flush()
}

// MemoStats prints memoization cache statistics per workload (the
// Section 6.2 cache-size discussion: less backtracking, smaller cache).
func MemoStats(out io.Writer, seed int64, lines int) error {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Grammar\tmemo entries\thits\tmisses")
	for _, w := range Workloads {
		p, err := RunProfile(w, seed, lines)
		if err != nil {
			return err
		}
		st := p.Stats
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", w.Name, st.MemoEntries, st.MemoHits, st.MemoMisses)
	}
	return tw.Flush()
}
