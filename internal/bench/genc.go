package bench

import (
	"fmt"
	"math/rand"
)

var cTypes = []string{"int", "long", "double", "char", "unsigned int", "float"}

// genCReal produces a C-subset translation unit: prototypes (forcing the
// function-definition speculation to fail late), function definitions
// (forcing it to succeed after scanning the whole body), globals,
// structs, and statement-rich bodies with assignment expressions — the
// mix behind RatsC's paper profile of frequent, deep backtracking.
func genCReal(r *rand.Rand, lines int) string {
	g := &gen{r: r}
	g.linef(0, "struct point { int x ; int y ; } ;")
	g.linef(0, "enum color { RED = 1 , GREEN , BLUE } ;")
	for g.lines < lines {
		switch g.r.Intn(5) {
		case 0:
			// Prototype: functionDef speculation fails at ';'.
			g.linef(0, "%s %s(%s a, %s b);", g.pick(cTypes...), g.ident("fn"),
				g.pick(cTypes...), g.pick(cTypes...))
		case 1:
			g.linef(0, "static %s %s = %s;", g.pick(cTypes...), g.ident("g"), g.cExpr(1))
		default:
			g.cFunction(lines)
		}
	}
	return g.b.String()
}

func (g *gen) cFunction(budget int) {
	g.linef(0, "%s %s(%s a, %s *b) {", g.pick(cTypes...), g.ident("fn"),
		g.pick(cTypes...), g.pick(cTypes...))
	n := 2 + g.r.Intn(8)
	for i := 0; i < n && g.lines < budget; i++ {
		g.cStatement(1, 2)
	}
	g.linef(1, "return %s;", g.cExpr(2))
	g.linef(0, "}")
}

func (g *gen) cStatement(depth, nest int) {
	if depth > 4 || nest <= 0 {
		g.linef(depth, "%s = %s;", g.ident("v"), g.cExpr(1))
		return
	}
	switch g.r.Intn(10) {
	case 0:
		g.linef(depth, "%s %s = %s;", g.pick(cTypes...), g.ident("loc"), g.cExpr(2))
	case 1:
		g.linef(depth, "if (%s) {", g.cExpr(1))
		g.cStatement(depth+1, nest-1)
		g.linef(depth, "} else {")
		g.cStatement(depth+1, nest-1)
		g.linef(depth, "}")
	case 2:
		g.linef(depth, "for (i = 0; i < %d; i = i + 1) {", g.r.Intn(64))
		g.cStatement(depth+1, nest-1)
		g.linef(depth, "}")
	case 3:
		g.linef(depth, "while (%s) {", g.cExpr(1))
		g.cStatement(depth+1, nest-1)
		g.linef(depth, "}")
	case 4:
		g.linef(depth, "%s(%s, %s);", g.ident("fn"), g.cExpr(1), g.cExpr(0))
	case 5:
		g.linef(depth, "*%s = (%s) %s;", g.ident("p"), g.pick("int", "long", "char"), g.cExpr(1))
	case 6:
		g.linef(depth, "%s->%s = %s[%s];", g.ident("s"), g.ident("fld"), g.ident("arr"), g.cExpr(0))
	case 7:
		g.linef(depth, "%s += sizeof(%s);", g.ident("n"), g.pick("int", "long", "double"))
	default:
		g.linef(depth, "%s = %s;", g.ident("v"), g.cExpr(2))
	}
}

// cExpr avoids Java-only forms (true/false, o.m()).
func (g *gen) cExpr(depth int) string {
	if depth <= 0 {
		switch g.r.Intn(3) {
		case 0:
			return g.ident("v")
		case 1:
			return fmt.Sprintf("%d", g.r.Intn(10000))
		default:
			return "\"" + g.ident("s") + "\""
		}
	}
	switch g.r.Intn(6) {
	case 0:
		return g.cExpr(0)
	case 1:
		return g.cExpr(depth-1) + " " + g.pick("+", "-", "*", "/", "%") + " " + g.cExpr(depth-1)
	case 2:
		return "(" + g.cExpr(depth-1) + " " + g.pick("<", ">", "==", "!=", "&&", "||") + " " + g.cExpr(depth-1) + ")"
	case 3:
		return g.ident("fn") + "(" + g.cExpr(depth-1) + ")"
	case 4:
		return "*" + g.ident("p") + " + " + g.cExpr(depth-1)
	default:
		return "!" + g.cExpr(depth-1)
	}
}
