package bench

import (
	"strings"
	"testing"

	"llstar"
)

// BenchmarkIncrementalEdit measures one single-token edit on a
// 10k-element JSON document — the latency the streaming acceptance bar
// compares against a full reparse.
func BenchmarkIncrementalEdit(b *testing.B) {
	g, err := loadStreamJSON()
	if err != nil {
		b.Fatal(err)
	}
	s, err := g.NewSession(llstar.WithIncremental())
	if err != nil {
		b.Fatal(err)
	}
	if err := feedAll(s, genStreamJSON(10000)); err != nil {
		b.Fatal(err)
	}
	idx := strings.Index(string(s.Text()), `"id": 5000,`) + len(`"id": `)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := "5001"
		if i%2 == 1 {
			v = "5000"
		}
		if err := s.Edit(llstar.Edit{Offset: idx, OldLen: 4, NewText: v}); err != nil {
			b.Fatal(err)
		}
	}
}
