package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"llstar"
)

// fingerprint renders every analysis outcome the runtime depends on —
// per-decision class/k/DFA size/fallback and the full warning list — in
// decision order. Two grammars with equal fingerprints parse identically.
func fingerprint(g *llstar.Grammar) string {
	var b strings.Builder
	fmt.Fprintf(&b, "grammar %s\n", g.Name())
	for _, d := range g.Decisions() {
		fmt.Fprintf(&b, "d%-3d rule=%s class=%s k=%d states=%d fallback=%q desc=%q\n",
			d.ID, d.Rule, d.Class, d.FixedK, d.DFAStates, d.Fallback, d.Desc)
	}
	for _, w := range g.Warnings() {
		fmt.Fprintf(&b, "warning: %s\n", w)
	}
	return b.String()
}

// dfaDump concatenates every decision DFA's Graphviz rendering — the
// strongest available equality witness for two analysis runs.
func dfaDump(g *llstar.Grammar) string {
	var b strings.Builder
	for i := range g.Decisions() {
		dot, err := g.DotDFA(i)
		if err != nil {
			fmt.Fprintf(&b, "d%d: ERROR %v\n", i, err)
			continue
		}
		fmt.Fprintf(&b, "== d%d ==\n%s\n", i, dot)
	}
	return b.String()
}

// TestAnalysisDeterminism proves the parallel analysis pipeline is
// observably identical to the serial one: for every benchmark grammar,
// DFAs (down to state numbering and edge order), decision classes, and
// warnings must match byte-for-byte between 1 worker and 8 workers.
func TestAnalysisDeterminism(t *testing.T) {
	for _, w := range Workloads {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			serial, err := w.LoadFreshWith(llstar.LoadOptions{AnalysisWorkers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := w.LoadFreshWith(llstar.LoadOptions{AnalysisWorkers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if fs, fp := fingerprint(serial), fingerprint(parallel); fs != fp {
				t.Fatalf("serial and parallel analysis fingerprints differ:\n--- serial ---\n%s\n--- parallel ---\n%s", fs, fp)
			}
			if ds, dp := dfaDump(serial), dfaDump(parallel); ds != dp {
				t.Fatal("serial and parallel analysis produce different DFA dumps")
			}
		})
	}
}

// TestAnalysisGolden pins the analysis outcomes — ambiguity warnings,
// recursion-overflow fallbacks, non-LL-regular fallbacks, decision
// classes — for the paper's running examples and the largest benchmark
// grammar. Regenerate with UPDATE_GOLDEN=1 after an intentional analysis
// change; the diff then documents exactly what the change did.
func TestAnalysisGolden(t *testing.T) {
	cases := []struct {
		name, path string
	}{
		{"figure1", filepath.Join("..", "..", "grammars", "figure1.g")},
		{"figure2", filepath.Join("..", "..", "grammars", "figure2.g")},
		{"java15", filepath.Join("grammars", "java15.g")},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			src, err := os.ReadFile(c.path)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := llstar.LoadWith(c.path, string(src), llstar.LoadOptions{AnalysisWorkers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := llstar.LoadWith(c.path, string(src), llstar.LoadOptions{AnalysisWorkers: 8})
			if err != nil {
				t.Fatal(err)
			}
			got := fingerprint(serial)
			if gp := fingerprint(parallel); gp != got {
				t.Fatalf("parallel analysis diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", got, gp)
			}

			golden := filepath.Join("testdata", "analysis_"+c.name+".golden")
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
			}
			if got != string(want) {
				t.Errorf("analysis fingerprint drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
					golden, got, want)
			}
		})
	}
}

// TestAnalysisSpeedupTable smoke-tests the llstar-bench -workers path:
// the table must render for every grammar without error. (Actual speedup
// is hardware-dependent and not asserted.)
func TestAnalysisSpeedupTable(t *testing.T) {
	if testing.Short() {
		t.Skip("timing table in -short mode")
	}
	var b strings.Builder
	if err := AnalysisSpeedup(&b, 4, 1); err != nil {
		t.Fatal(err)
	}
	for _, w := range Workloads {
		if !strings.Contains(b.String(), w.Name) {
			t.Errorf("speedup table missing %s:\n%s", w.Name, b.String())
		}
	}
}

// TestConcurrentParsesTable smoke-tests the llstar-bench -concurrent
// path: every grammar parses all generated inputs through the shared
// pool without error.
func TestConcurrentParsesTable(t *testing.T) {
	if testing.Short() {
		t.Skip("timing table in -short mode")
	}
	var b strings.Builder
	if err := ConcurrentParses(&b, 1, 60, 4); err != nil {
		t.Fatal(err)
	}
	for _, w := range Workloads {
		if !strings.Contains(b.String(), w.Name) {
			t.Errorf("throughput table missing %s:\n%s", w.Name, b.String())
		}
	}
}
