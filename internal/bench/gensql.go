package bench

import (
	"fmt"
	"math/rand"
)

var sqlTypes = []string{"INT", "BIGINT", "FLOAT", "DATETIME", "BIT", "VARCHAR (64)", "DECIMAL (10, 2)"}

// genSQLReal produces T-SQL scripts: DDL (tables, indexes), DML (selects
// with joins/subqueries/CASE, inserts, updates, deletes), and control
// flow (DECLARE/SET/IF/WHILE), exercising the predicate synpreds.
func genSQLReal(r *rand.Rand, lines int) string {
	g := &gen{r: r}
	g.linef(0, "CREATE TABLE dbo.users (")
	g.linef(1, "id INT NOT NULL PRIMARY KEY,")
	g.linef(1, "name VARCHAR (64) NOT NULL,")
	g.linef(1, "age INT NULL,")
	g.linef(1, "CONSTRAINT uq_name UNIQUE (name)")
	g.linef(0, ") ;")
	for g.lines < lines {
		switch g.r.Intn(12) {
		case 0:
			g.sqlCreateTable()
		case 1:
			g.linef(0, "CREATE INDEX %s ON dbo.%s (%s, %s) ;",
				g.ident("ix"), g.ident("tbl"), g.ident("col"), g.ident("col"))
		case 2:
			g.linef(0, "DECLARE @%s INT = %d ;", g.ident("var"), g.r.Intn(100))
			g.linef(0, "SET @%s = @%s + %d ;", g.ident("var"), g.ident("var"), g.r.Intn(10))
		case 3:
			g.sqlInsert()
		case 4:
			g.sqlUpdate()
		case 5:
			g.linef(0, "DELETE FROM dbo.%s WHERE %s ;", g.ident("tbl"), g.sqlCond(1))
		case 6:
			g.sqlIf()
		case 7:
			g.linef(0, "DROP TABLE dbo.%s ;", g.ident("tbl"))
		default:
			g.sqlSelect(0)
		}
	}
	return g.b.String()
}

func (g *gen) sqlCreateTable() {
	g.linef(0, "CREATE TABLE dbo.%s (", g.ident("tbl"))
	n := 2 + g.r.Intn(5)
	for i := 0; i < n; i++ {
		g.linef(1, "%s %s %s,", g.ident("col"), g.pick(sqlTypes...), g.pick("NOT NULL", "NULL", "NOT NULL IDENTITY"))
	}
	g.linef(1, "%s INT DEFAULT 0", g.ident("col"))
	g.linef(0, ") ;")
}

func (g *gen) sqlSelect(depth int) {
	g.linef(depth, "SELECT %s", g.pick("*", "a.id, a.name", "count(*) AS n, max(a.age) AS oldest"))
	g.linef(depth, "FROM dbo.%s AS a", g.ident("tbl"))
	if g.r.Intn(2) == 0 {
		g.linef(depth, "%s JOIN dbo.%s AS b ON a.id = b.%s",
			g.pick("INNER", "LEFT", "LEFT OUTER", "RIGHT"), g.ident("tbl"), g.ident("col"))
	}
	g.linef(depth, "WHERE %s", g.sqlCond(2))
	if g.r.Intn(2) == 0 {
		g.linef(depth, "GROUP BY a.%s", g.ident("col"))
		g.linef(depth, "HAVING count(*) > %d", g.r.Intn(10))
	}
	if g.r.Intn(2) == 0 {
		g.linef(depth, "ORDER BY a.%s DESC, a.%s ASC", g.ident("col"), g.ident("col"))
	}
	g.linef(depth, ";")
}

func (g *gen) sqlInsert() {
	if g.r.Intn(2) == 0 {
		g.linef(0, "INSERT INTO dbo.%s (id, name, age) VALUES (%d, '%s', %d) ;",
			g.ident("tbl"), g.r.Intn(1000), g.ident("nm"), g.r.Intn(90))
	} else {
		g.linef(0, "INSERT INTO dbo.%s (id, name)", g.ident("tbl"))
		g.linef(1, "SELECT b.id, b.name FROM dbo.%s AS b WHERE %s ;", g.ident("tbl"), g.sqlCond(1))
	}
}

func (g *gen) sqlUpdate() {
	g.linef(0, "UPDATE dbo.%s SET %s = %s, %s = %s", g.ident("tbl"),
		g.ident("col"), g.sqlExpr(1), g.ident("col"), g.sqlExpr(0))
	g.linef(0, "WHERE %s ;", g.sqlCond(1))
}

func (g *gen) sqlIf() {
	g.linef(0, "IF @%s > %d", g.ident("var"), g.r.Intn(50))
	g.linef(0, "BEGIN")
	g.linef(1, "PRINT '%s' ;", g.ident("msg"))
	g.linef(1, "SET @%s = 0 ;", g.ident("var"))
	g.linef(0, "END ;")
	g.linef(0, "ELSE")
	g.linef(1, "SET @%s = @%s - 1 ;", g.ident("var"), g.ident("var"))
}

// sqlCond generates search conditions hitting the predicate synpreds:
// comparisons, IS NULL, LIKE, IN (list | subquery), BETWEEN, EXISTS.
func (g *gen) sqlCond(depth int) string {
	if depth <= 0 {
		return fmt.Sprintf("a.%s %s %s", g.ident("col"), g.pick("=", "<>", "<", ">", "<=", ">="), g.sqlExpr(0))
	}
	switch g.r.Intn(8) {
	case 0:
		return g.sqlCond(0) + " AND " + g.sqlCond(depth-1)
	case 1:
		return "(" + g.sqlCond(depth-1) + " OR " + g.sqlCond(0) + ")"
	case 2:
		return fmt.Sprintf("a.%s IS NOT NULL", g.ident("col"))
	case 3:
		return fmt.Sprintf("a.%s LIKE '%s%%'", g.ident("col"), g.ident("pre"))
	case 4:
		return fmt.Sprintf("a.%s IN (%d, %d, %d)", g.ident("col"), g.r.Intn(10), g.r.Intn(10), g.r.Intn(10))
	case 5:
		return fmt.Sprintf("a.%s IN (SELECT b.id FROM dbo.%s AS b WHERE b.%s = %s)",
			g.ident("col"), g.ident("tbl"), g.ident("col"), g.sqlExpr(0))
	case 6:
		return fmt.Sprintf("a.%s BETWEEN %d AND %d", g.ident("col"), g.r.Intn(10), 10+g.r.Intn(90))
	default:
		return fmt.Sprintf("NOT EXISTS (SELECT * FROM dbo.%s AS c WHERE c.id = a.id)", g.ident("tbl"))
	}
}

func (g *gen) sqlExpr(depth int) string {
	if depth <= 0 {
		switch g.r.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(1000))
		case 1:
			return "a." + g.ident("col")
		case 2:
			return "@" + g.ident("var")
		default:
			return "'" + g.ident("s") + "'"
		}
	}
	switch g.r.Intn(4) {
	case 0:
		return g.sqlExpr(0) + " " + g.pick("+", "-", "*") + " " + g.sqlExpr(depth-1)
	case 1:
		return fmt.Sprintf("CASE WHEN %s THEN %s ELSE %s END", g.sqlCond(0), g.sqlExpr(0), g.sqlExpr(0))
	case 2:
		return fmt.Sprintf("%s(a.%s)", g.pick("count", "max", "min", "sum", "avg"), g.ident("col"))
	default:
		return g.sqlExpr(0)
	}
}
