package bench

import (
	"fmt"
	"math/rand"
)

var rjTypes = []string{"int", "boolean", "long", "double", "String", "Object", "Map"}

// genRatsJavaReal produces sources for the RatsJava grammar: annotated
// classes, interfaces, enums, and statement-rich method bodies with the
// declaration-vs-expression ambiguity and cast expressions.
func genRatsJavaReal(r *rand.Rand, lines int) string {
	g := &gen{r: r}
	g.linef(0, "package rats.bench;")
	g.linef(0, "import java.util.*;")
	for g.lines < lines {
		switch g.r.Intn(5) {
		case 0:
			g.linef(0, "public enum Kind%d { A, B, C }", g.r.Intn(100))
		case 1:
			g.rjInterface(lines)
		default:
			g.rjClass(lines)
		}
	}
	return g.b.String()
}

func (g *gen) rjInterface(budget int) {
	g.linef(0, "@Service public interface %s {", g.ident("Api"))
	n := 1 + g.r.Intn(4)
	for i := 0; i < n && g.lines < budget; i++ {
		g.linef(1, "%s %s(%s a, %s b);", g.pick(rjTypes...), g.ident("op"),
			g.pick(rjTypes...), g.pick(rjTypes...))
	}
	g.linef(0, "}")
}

func (g *gen) rjClass(budget int) {
	g.linef(0, "@Component(name = %q) public class %s {", g.ident("c"), g.ident("Impl"))
	for g.lines < budget && g.r.Intn(8) != 0 {
		switch g.r.Intn(3) {
		case 0:
			g.linef(1, "private %s %s = %s;", g.pick(rjTypes...), g.ident("fld"), g.rjExpr(1))
		default:
			g.rjMethod(budget)
		}
	}
	g.linef(0, "}")
}

func (g *gen) rjMethod(budget int) {
	g.linef(1, "public %s %s(%s x) {", g.pick("void", "int", "String"), g.ident("run"), g.pick(rjTypes...))
	n := 2 + g.r.Intn(7)
	for i := 0; i < n && g.lines < budget; i++ {
		g.rjStmt(2, 2)
	}
	g.linef(1, "}")
}

func (g *gen) rjStmt(depth, nest int) {
	if depth > 4 || nest <= 0 {
		g.linef(depth, "%s = %s;", g.ident("v"), g.rjExpr(1))
		return
	}
	switch g.r.Intn(11) {
	case 0:
		g.linef(depth, "%s %s = %s;", g.pick(rjTypes...), g.ident("loc"), g.rjExpr(2))
	case 1:
		g.linef(depth, "if (%s) {", g.rjExpr(1))
		g.rjStmt(depth+1, nest-1)
		g.linef(depth, "}")
	case 2:
		g.linef(depth, "do {")
		g.rjStmt(depth+1, nest-1)
		g.linef(depth, "} while (%s);", g.rjExpr(1))
	case 3:
		g.linef(depth, "switch (%s) {", g.rjExpr(0))
		g.linef(depth, "case %d:", g.r.Intn(10))
		g.rjStmt(depth+1, nest-1)
		g.linef(depth, "default:")
		g.rjStmt(depth+1, nest-1)
		g.linef(depth, "}")
	case 4:
		g.linef(depth, "try {")
		g.rjStmt(depth+1, nest-1)
		g.linef(depth, "} catch (Exception e) {")
		g.rjStmt(depth+1, nest-1)
		g.linef(depth, "} finally {")
		g.rjStmt(depth+1, nest-1)
		g.linef(depth, "}")
	case 5:
		g.linef(depth, "return %s;", g.rjExpr(2))
	case 6:
		g.linef(depth, "%s.%s(%s);", g.ident("svc"), g.ident("call"), g.rjExpr(1))
	case 7:
		g.linef(depth, "%s = %s ? %s : %s;", g.ident("v"), g.rjExpr(0), g.rjExpr(1), g.rjExpr(1))
	case 8:
		g.linef(depth, "for (int i = 0; i < %d; ++i) {", g.r.Intn(50))
		g.rjStmt(depth+1, nest-1)
		g.linef(depth, "}")
	case 9:
		g.linef(depth, "Object o = new %s(%s);", g.pick("Object", "String"), g.rjExpr(1))
	default:
		g.linef(depth, "%s[%s] = (int) %s;", g.ident("arr"), g.rjExpr(0), g.rjExpr(1))
	}
}

func (g *gen) rjExpr(depth int) string {
	if depth <= 0 {
		switch g.r.Intn(4) {
		case 0:
			return g.ident("v")
		case 1:
			return fmt.Sprintf("%d", g.r.Intn(1000))
		case 2:
			return g.pick("true", "false", "null", "this")
		default:
			return fmt.Sprintf("%q", g.ident("s"))
		}
	}
	switch g.r.Intn(6) {
	case 0:
		return g.rjExpr(0)
	case 1:
		return g.rjExpr(depth-1) + " " + g.pick("+", "-", "*", "%") + " " + g.rjExpr(depth-1)
	case 2:
		return "(" + g.rjExpr(depth-1) + " " + g.pick("<", ">", "==", "!=", "&&", "||") + " " + g.rjExpr(depth-1) + ")"
	case 3:
		return g.ident("f") + "(" + g.rjExpr(depth-1) + ")"
	case 4:
		return g.ident("o") + "." + g.ident("m") + "(" + g.rjExpr(depth-1) + ")"
	default:
		return "!" + g.rjExpr(depth-1)
	}
}
