package bench

import (
	"fmt"
	"io"
)

// CompiledRunner measures one generated parser: it builds (or reuses) a
// compiled parser for the workload grammar, runs tokenize+parse over
// input `runs` times, and reports the best wall time plus the token
// count. The concrete implementation lives with the caller
// (cmd/llstar-bench wires internal/genrun) so this package stays
// import-cycle-free with genrun's test harness.
type CompiledRunner func(w Workload, input string, runs int) (ns int64, tokens int, err error)

// AddCompiled fills the generated-parser columns of an already-run
// result set: for each workload it regenerates the same seeded input
// and times the compiled parser with the given runner.
func (rs *ResultSet) AddCompiled(run CompiledRunner) error {
	for i := range rs.Workloads {
		wr := &rs.Workloads[i]
		w, err := ByName(wr.Name)
		if err != nil {
			return err
		}
		input := w.Input(rs.Seed, rs.Lines)
		ns, tokens, err := run(w, input, rs.Runs)
		if err != nil {
			return fmt.Errorf("%s: compiled run: %w", wr.Name, err)
		}
		wr.GenTokens = tokens
		wr.GenParseNanos = ns
		if ns > 0 {
			wr.GenLinesPerSec = float64(wr.InputLines) / (float64(ns) / 1e9)
		}
	}
	return nil
}

// CompiledTable prints the interpreter-vs-generated throughput
// comparison from a result set populated by AddCompiled.
func CompiledTable(out io.Writer, rs *ResultSet) {
	fmt.Fprintf(out, "%-10s %8s %8s %14s %14s %9s\n",
		"grammar", "lines", "tokens", "interp l/s", "generated l/s", "speedup")
	for _, w := range rs.Workloads {
		speedup := "-"
		if w.LinesPerSec > 0 && w.GenLinesPerSec > 0 {
			speedup = fmt.Sprintf("%.2fx", w.GenLinesPerSec/w.LinesPerSec)
		}
		fmt.Fprintf(out, "%-10s %8d %8d %14.0f %14.0f %9s\n",
			w.Name, w.InputLines, w.GenTokens, w.LinesPerSec, w.GenLinesPerSec, speedup)
	}
}
