package bench

import (
	"fmt"
	"math/rand"
)

var csTypes = []string{"int", "long", "double", "bool", "string", "object", "Widget"}

// genCSharpReal produces C#-subset sources: namespaces, classes with
// fields/properties/methods (the cyclic member decision), interfaces,
// enums, and statement bodies with casts and local declarations (the
// synpred decisions).
func genCSharpReal(r *rand.Rand, lines int) string {
	g := &gen{r: r}
	g.linef(0, "using System;")
	g.linef(0, "using System.Collections;")
	g.linef(0, "namespace Bench.Generated {")
	for g.lines < lines {
		switch g.r.Intn(6) {
		case 0:
			g.linef(1, "public enum Kind%d { A = 1, B, C }", g.r.Intn(100))
		case 1:
			g.csInterface(lines)
		default:
			g.csClass(lines)
		}
	}
	g.linef(0, "}")
	return g.b.String()
}

func (g *gen) csInterface(budget int) {
	g.linef(1, "public interface %s {", g.ident("IApi"))
	n := 1 + g.r.Intn(3)
	for i := 0; i < n && g.lines < budget; i++ {
		if g.r.Intn(2) == 0 {
			g.linef(2, "%s %s(%s a);", g.pick(csTypes...), g.ident("Op"), g.pick(csTypes...))
		} else {
			g.linef(2, "%s %s { get; set; }", g.pick(csTypes...), g.ident("Prop"))
		}
	}
	g.linef(1, "}")
}

func (g *gen) csClass(budget int) {
	name := g.ident("Svc")
	g.linef(1, "[Serializable] public sealed class %s {", name)
	g.linef(2, "private int %s = %d;", g.ident("count"), g.r.Intn(100))
	for g.lines < budget && g.r.Intn(8) != 0 {
		switch g.r.Intn(4) {
		case 0:
			g.linef(2, "private %s %s;", g.pick(csTypes...), g.ident("fld"))
		case 1:
			// Property: type ID '{' — only separable after the type.
			g.linef(2, "public %s %s { get { return %s; } set { %s = value; } }",
				g.pick(csTypes...), g.ident("Prop"), g.ident("fld"), g.ident("fld"))
		case 2:
			g.linef(2, "public %s() { %s = %d; }", name, g.ident("fld"), g.r.Intn(10))
		default:
			g.csMethod(budget)
		}
	}
	g.linef(1, "}")
}

func (g *gen) csMethod(budget int) {
	g.linef(2, "public %s %s(%s a, ref %s b) {",
		g.pick("void", "int", "string", "bool"), g.ident("Run"),
		g.pick(csTypes...), g.pick(csTypes...))
	n := 2 + g.r.Intn(6)
	for i := 0; i < n && g.lines < budget; i++ {
		g.csStmt(3, 2)
	}
	g.linef(2, "}")
}

func (g *gen) csStmt(depth, nest int) {
	if depth > 5 || nest <= 0 {
		g.linef(depth, "%s = %s;", g.ident("v"), g.csExpr(1))
		return
	}
	switch g.r.Intn(11) {
	case 0:
		// Local declaration — the (localVarDecl ';')=> synpred path.
		g.linef(depth, "%s %s = %s;", g.pick(csTypes...), g.ident("loc"), g.csExpr(2))
	case 1:
		g.linef(depth, "if (%s) {", g.csExpr(1))
		g.csStmt(depth+1, nest-1)
		g.linef(depth, "} else {")
		g.csStmt(depth+1, nest-1)
		g.linef(depth, "}")
	case 2:
		g.linef(depth, "foreach (object item in %s) {", g.ident("coll"))
		g.csStmt(depth+1, nest-1)
		g.linef(depth, "}")
	case 3:
		g.linef(depth, "for (int i = 0; i < %d; i++) {", g.r.Intn(50))
		g.csStmt(depth+1, nest-1)
		g.linef(depth, "}")
	case 4:
		g.linef(depth, "try {")
		g.csStmt(depth+1, nest-1)
		g.linef(depth, "} catch (Exception e) {")
		g.csStmt(depth+1, nest-1)
		g.linef(depth, "}")
	case 5:
		g.linef(depth, "return %s;", g.csExpr(2))
	case 6:
		// Cast — the ('(' type ')' unary)=> synpred path.
		g.linef(depth, "%s = (%s) %s;", g.ident("v"), g.pick("int", "long", "string", "Widget"), g.csExpr(1))
	case 7:
		g.linef(depth, "%s.%s(%s);", g.ident("svc"), g.ident("Call"), g.csExpr(1))
	case 8:
		g.linef(depth, "%s = %s ?? %s;", g.ident("v"), g.csExpr(0), g.csExpr(0))
	case 9:
		g.linef(depth, "lock (%s) {", g.ident("gate"))
		g.csStmt(depth+1, nest-1)
		g.linef(depth, "}")
	default:
		g.linef(depth, "object o = new %s(%s);", g.pick("Widget", "object"), g.csExpr(1))
	}
}

func (g *gen) csExpr(depth int) string {
	if depth <= 0 {
		switch g.r.Intn(4) {
		case 0:
			return g.ident("v")
		case 1:
			return fmt.Sprintf("%d", g.r.Intn(1000))
		case 2:
			return g.pick("true", "false", "null", "this")
		default:
			return fmt.Sprintf("%q", g.ident("s"))
		}
	}
	switch g.r.Intn(6) {
	case 0:
		return g.csExpr(0)
	case 1:
		return g.csExpr(depth-1) + " " + g.pick("+", "-", "*", "%") + " " + g.csExpr(depth-1)
	case 2:
		return "(" + g.csExpr(depth-1) + " " + g.pick("<", ">", "==", "!=", "&&", "||") + " " + g.csExpr(depth-1) + ")"
	case 3:
		return g.ident("svc") + "." + g.ident("M") + "(" + g.csExpr(depth-1) + ")"
	case 4:
		return g.ident("arr") + "[" + g.csExpr(0) + "]"
	default:
		return "!" + g.csExpr(depth-1)
	}
}
