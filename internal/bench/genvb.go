package bench

import (
	"fmt"
	"math/rand"
)

var vbTypes = []string{"Integer", "Long", "Double", "String", "Boolean", "Object"}

// genVBReal produces VB-flavored module sources: Subs, Functions, Dims,
// block and single-line Ifs (exercising the manual synpred), For/While/Do
// loops, Select Case, and dotted-target assignments vs calls (the
// cyclic-lookahead decision).
func genVBReal(r *rand.Rand, lines int) string {
	g := &gen{r: r}
	g.linef(0, "Imports System.Text")
	g.linef(0, "Module Bench%d", r.Intn(100))
	g.linef(0, "Dim total As Integer = 0")
	for g.lines < lines {
		if g.r.Intn(3) == 0 {
			g.vbFunction(lines)
		} else {
			g.vbSub(lines)
		}
	}
	g.linef(0, "End Module")
	return g.b.String()
}

func (g *gen) vbSub(budget int) {
	g.linef(0, "Public Sub %s(ByVal a As Integer, ByRef b As String)", g.ident("Proc"))
	n := 2 + g.r.Intn(7)
	for i := 0; i < n && g.lines < budget; i++ {
		g.vbStmt(1, 2)
	}
	g.linef(0, "End Sub")
}

func (g *gen) vbFunction(budget int) {
	g.linef(0, "Private Function %s(ByVal x As Double) As %s", g.ident("Fn"), g.pick(vbTypes...))
	n := 1 + g.r.Intn(5)
	for i := 0; i < n && g.lines < budget; i++ {
		g.vbStmt(1, 2)
	}
	g.linef(1, "Return %s", g.vbExpr(1))
	g.linef(0, "End Function")
}

func (g *gen) vbStmt(depth, nest int) {
	if depth > 3 || nest <= 0 {
		g.linef(depth, "%s = %s", g.ident("v"), g.vbExpr(1))
		return
	}
	switch g.r.Intn(11) {
	case 0:
		g.linef(depth, "Dim %s As %s = %s", g.ident("loc"), g.pick(vbTypes...), g.vbExpr(1))
	case 1:
		// Block If — the synpred's expensive path.
		g.linef(depth, "If %s Then", g.vbExpr(1))
		g.vbStmt(depth+1, nest-1)
		g.linef(depth, "Else")
		g.vbStmt(depth+1, nest-1)
		g.linef(depth, "End If")
	case 2:
		// Single-line If — the synpred fails after scanning the expression.
		g.linef(depth, "If %s Then %s = %s", g.vbExpr(0), g.ident("v"), g.vbExpr(0))
	case 3:
		g.linef(depth, "For i = 1 To %d", 1+g.r.Intn(100))
		g.vbStmt(depth+1, nest-1)
		g.linef(depth, "Next i")
	case 4:
		g.linef(depth, "While %s", g.vbExpr(1))
		g.vbStmt(depth+1, nest-1)
		g.linef(depth, "End While")
	case 5:
		g.linef(depth, "Do While %s", g.vbExpr(0))
		g.vbStmt(depth+1, nest-1)
		g.linef(depth, "Loop")
	case 6:
		g.linef(depth, "Select Case %s", g.ident("v"))
		g.linef(depth, "Case %d", g.r.Intn(10))
		g.vbStmt(depth+1, nest-1)
		g.linef(depth, "Case Else")
		g.vbStmt(depth+1, nest-1)
		g.linef(depth, "End Select")
	case 7:
		// Dotted assignment: target '=' — cyclic lookahead then assign.
		g.linef(depth, "%s.%s.%s = %s", g.ident("obj"), g.ident("sub"), g.ident("fld"), g.vbExpr(1))
	case 8:
		// Procedure call on a dotted target.
		g.linef(depth, "%s.%s(%s)", g.ident("obj"), g.ident("Method"), g.vbExpr(1))
	case 9:
		g.linef(depth, "Call %s(%s, %s)", g.ident("Proc"), g.vbExpr(0), g.vbExpr(0))
	default:
		g.linef(depth, "%s = %s & %s", g.ident("s"), g.vbExpr(0), g.vbExpr(0))
	}
}

func (g *gen) vbExpr(depth int) string {
	if depth <= 0 {
		switch g.r.Intn(4) {
		case 0:
			return g.ident("v")
		case 1:
			return fmt.Sprintf("%d", g.r.Intn(1000))
		case 2:
			return g.pick("True", "False", "Nothing")
		default:
			return "\"" + g.ident("s") + "\""
		}
	}
	switch g.r.Intn(5) {
	case 0:
		return g.vbExpr(0)
	case 1:
		return g.vbExpr(depth-1) + " " + g.pick("+", "-", "*", "Mod") + " " + g.vbExpr(depth-1)
	case 2:
		return "(" + g.vbExpr(depth-1) + " " + g.pick("<", ">", "=", "<>", "And", "Or") + " " + g.vbExpr(depth-1) + ")"
	case 3:
		return "Not " + g.vbExpr(depth-1)
	default:
		return g.ident("Fn") + "(" + g.vbExpr(depth-1) + ")"
	}
}
