package bench

// Exported generator entry points, one per workload (see the gen*.go
// files for the implementations).
var (
	// GenC produces C-subset sources (genc.go).
	GenC = genCReal
	// GenRatsJava produces sources for the RatsJava grammar (genratsjava.go).
	GenRatsJava = genRatsJavaReal
	// GenVB produces VB-flavored module sources (genvb.go).
	GenVB = genVBReal
	// GenSQL produces T-SQL scripts (gensql.go).
	GenSQL = genSQLReal
	// GenCSharp produces C#-subset sources (gencsharp.go).
	GenCSharp = genCSharpReal
)
