package bench

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	"llstar"
)

// streamChunk is the chunk size the streaming benchmarks feed with —
// a typical network read.
const streamChunk = 64 << 10

// jsonGrammar is the streaming benchmark grammar: a flat LL(1) JSON
// grammar whose inputs scale trivially, so streaming-vs-batch memory
// and edit latency are measured without speculation noise.
const jsonGrammar = `
grammar StreamJSON;
value : obj | arr | STRING | NUMBER | 'true' | 'false' | 'null' ;
obj : '{' (pair (',' pair)*)? '}' ;
pair : STRING ':' value ;
arr : '[' (value (',' value)*)? ']' ;
STRING : '"' (~('"'|'\\') | '\\' .)* '"' ;
NUMBER : ('-')? ('0'..'9')+ ('.' ('0'..'9')+)? (('e'|'E') ('+'|'-')? ('0'..'9')+)? ;
WS : (' '|'\t'|'\r'|'\n')+ { skip(); } ;
`

func loadStreamJSON() (*llstar.Grammar, error) {
	return llstar.Load("streamjson.g", jsonGrammar)
}

// streamJSONLine renders one synthetic array element (one line, ~80
// bytes, 26 tokens).
func streamJSONLine(b *strings.Builder, i int) {
	fmt.Fprintf(b, `  {"id": %d, "name": "item%d", "ok": true, "vals": [%d, %d.5, null]}`, i, i, i*2, i)
}

// genStreamJSON builds a JSON document of n array elements (n+2 lines).
func genStreamJSON(n int) string {
	var b strings.Builder
	b.Grow(n * 84)
	b.WriteString("[\n")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(",\n")
		}
		streamJSONLine(&b, i)
	}
	b.WriteString("\n]\n")
	return b.String()
}

// StreamResult is the streaming/incremental section of a result set.
// The counter and ratio fields are deterministic; the timings are
// noisy like every other timing in the file.
type StreamResult struct {
	// EditLines is the size of the edit-benchmark document.
	EditLines int `json:"edit_lines"`
	// EditTokens is its token count (deterministic).
	EditTokens int `json:"edit_tokens"`
	// EditReusedTokensPct is the percentage of tokens reused across the
	// benchmark's single-token edits (deterministic).
	EditReusedTokensPct float64 `json:"edit_reused_tokens_pct"`
	// EditNanos is the median single-token edit latency (noisy).
	EditNanos int64 `json:"edit_nanos,omitempty"`
	// FullParseNanos is the batch lex+parse time of the same document
	// (noisy).
	FullParseNanos int64 `json:"full_parse_nanos,omitempty"`
}

// AddStream fills the streaming columns of a result set: per-workload
// SAX event counts and window peaks (deterministic), plus the
// incremental edit benchmark on a synthetic JSON document.
func (rs *ResultSet) AddStream() error {
	for i := range rs.Workloads {
		w, err := ByName(rs.Workloads[i].Name)
		if err != nil {
			return err
		}
		g, err := w.Load()
		if err != nil {
			return err
		}
		input := w.Input(rs.Seed, rs.Lines)
		s, err := g.NewSession(llstar.WithStartRule(w.Start))
		if err != nil {
			return err
		}
		if err := feedAll(s, input); err != nil {
			return fmt.Errorf("%s: stream parse: %w", w.Name, err)
		}
		st := s.Stats()
		rs.Workloads[i].StreamEvents = int(st.Events)
		rs.Workloads[i].StreamPeakWindow = st.PeakWindow
	}
	sr, err := editBench(10000, 3)
	if err != nil {
		return err
	}
	rs.Stream = sr
	return nil
}

// feedAll pumps input into a session in streamChunk-sized chunks.
func feedAll(s *llstar.Session, input string) error {
	for i := 0; i < len(input); i += streamChunk {
		end := i + streamChunk
		if end > len(input) {
			end = len(input)
		}
		if err := s.Feed([]byte(input[i:end])); err != nil {
			return err
		}
	}
	return s.Finish()
}

// editBench measures single-token edits on an n-element JSON document:
// reuse ratio (deterministic) and median edit latency vs the batch
// parse time of the same document.
func editBench(n, runs int) (*StreamResult, error) {
	g, err := loadStreamJSON()
	if err != nil {
		return nil, err
	}
	input := genStreamJSON(n)

	// Batch reference: best-of-runs full lex+parse.
	p := g.NewParser()
	full := time.Duration(math.MaxInt64)
	for r := 0; r < runs; r++ {
		t0 := time.Now()
		if _, err := p.Parse("value", input); err != nil {
			return nil, err
		}
		if d := time.Since(t0); d < full {
			full = d
		}
	}

	s, err := g.NewSession(llstar.WithIncremental())
	if err != nil {
		return nil, err
	}
	if err := feedAll(s, input); err != nil {
		return nil, err
	}
	sr := &StreamResult{EditLines: countLines(input), EditTokens: s.Stats().Tokens}

	// One-token edits spread across the document: bump an "id" number.
	var lat []time.Duration
	var reuseSum float64
	edits := 0
	for _, frac := range []int{10, 25, 50, 75, 90} {
		marker := fmt.Sprintf(`"id": %d,`, n*frac/100)
		off := strings.Index(string(s.Text()), marker)
		if off < 0 {
			continue
		}
		off += len(`"id": `)
		oldLen := strings.IndexByte(marker, ',') - len(`"id": `)
		t0 := time.Now()
		if err := s.Edit(llstar.Edit{Offset: off, OldLen: oldLen, NewText: "7"}); err != nil {
			return nil, fmt.Errorf("edit at %d%%: %w", frac, err)
		}
		lat = append(lat, time.Since(t0))
		reuseSum += s.Stats().TokenReuseRatio
		edits++
	}
	if edits == 0 {
		return nil, fmt.Errorf("edit bench: no edit markers found")
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	sr.EditNanos = lat[len(lat)/2].Nanoseconds()
	sr.FullParseNanos = full.Nanoseconds()
	sr.EditReusedTokensPct = math.Round(10000*reuseSum/float64(edits)) / 100
	return sr, nil
}

// StreamTable prints the streaming section: per-workload streamed
// throughput and window peaks, then the bounded-memory comparison and
// the incremental edit benchmark.
func StreamTable(out io.Writer, seed int64, lines int) error {
	fmt.Fprintf(out, "%-10s %12s %12s %12s %10s\n", "grammar", "batch l/s", "stream l/s", "events", "window")
	for _, w := range Workloads {
		g, err := w.Load()
		if err != nil {
			return err
		}
		input := w.Input(seed, lines)
		nl := countLines(input)

		p := g.NewParser()
		t0 := time.Now()
		if _, err := p.Parse(w.Start, input); err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		batch := time.Since(t0)

		s, err := g.NewSession(llstar.WithStartRule(w.Start))
		if err != nil {
			return err
		}
		t0 = time.Now()
		if err := feedAll(s, input); err != nil {
			return fmt.Errorf("%s: stream: %w", w.Name, err)
		}
		streamed := time.Since(t0)
		st := s.Stats()
		fmt.Fprintf(out, "%-10s %12.0f %12.0f %12d %10d\n",
			w.Name,
			float64(nl)/batch.Seconds(),
			float64(nl)/streamed.Seconds(),
			st.Events, st.PeakWindow)
	}
	fmt.Fprintln(out)
	if err := StreamMemory(out, 100); err != nil {
		return err
	}
	fmt.Fprintln(out)
	return StreamEdits(out)
}

// StreamMemory streams approximately targetMB of synthetic JSON through
// a session, generating chunks on the fly so only the session's own
// state occupies the heap, and reports peak heap against a batch parse
// of a 1/10th-size document — the bounded-memory demonstration.
func StreamMemory(out io.Writer, targetMB int) error {
	g, err := loadStreamJSON()
	if err != nil {
		return err
	}
	elems := targetMB << 20 / 84

	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	s, err := g.NewSession()
	if err != nil {
		return err
	}
	var peak uint64
	var b strings.Builder
	b.WriteString("[\n")
	total, chunks := int64(0), 0
	t0 := time.Now()
	for i := 0; i < elems; i++ {
		if i > 0 {
			b.WriteString(",\n")
		}
		streamJSONLine(&b, i)
		if b.Len() >= streamChunk {
			total += int64(b.Len())
			if err := s.Feed([]byte(b.String())); err != nil {
				return err
			}
			b.Reset()
			if chunks++; chunks%64 == 0 {
				runtime.GC()
				var m runtime.MemStats
				runtime.ReadMemStats(&m)
				if m.HeapAlloc > peak {
					peak = m.HeapAlloc
				}
			}
		}
	}
	b.WriteString("\n]\n")
	total += int64(b.Len())
	if err := s.Feed([]byte(b.String())); err != nil {
		return err
	}
	if err := s.Finish(); err != nil {
		return err
	}
	elapsed := time.Since(t0)
	st := s.Stats()

	sessionPeak := int64(peak) - int64(base.HeapAlloc)
	if sessionPeak < 0 {
		sessionPeak = 0
	}

	// Batch reference at 1/10th size: materialized input + full token
	// stream + memo, the memory profile streaming avoids.
	smallInput := genStreamJSON(elems / 10)
	runtime.GC()
	runtime.ReadMemStats(&base)
	p := g.NewParser()
	if _, err := p.Parse("value", smallInput); err != nil {
		return err
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	batchPeak := int64(after.TotalAlloc) - int64(base.TotalAlloc)

	fmt.Fprintf(out, "streamed %dMB (%d tokens) in %v: %.0f lines/sec, peak session heap %dKB (window %d tokens)\n",
		total>>20, st.Tokens, elapsed.Round(time.Millisecond),
		float64(elems)/elapsed.Seconds(), sessionPeak>>10, st.PeakWindow)
	fmt.Fprintf(out, "batch reference: parsing %dMB allocated %dMB total\n",
		int64(len(smallInput))>>20, batchPeak>>20)
	return nil
}

// StreamEdits prints the incremental edit benchmark.
func StreamEdits(out io.Writer) error {
	sr, err := editBench(10000, 3)
	if err != nil {
		return err
	}
	full := time.Duration(sr.FullParseNanos)
	edit := time.Duration(sr.EditNanos)
	pct := 100 * float64(sr.EditNanos) / float64(sr.FullParseNanos)
	fmt.Fprintf(out, "incremental edit (%d-line JSON, %d tokens): median 1-token edit %v vs full parse %v (%.1f%%), token reuse %.2f%%\n",
		sr.EditLines, sr.EditTokens, edit.Round(time.Microsecond), full.Round(time.Microsecond), pct, sr.EditReusedTokensPct)
	return nil
}
