package bench

import (
	"strings"
	"testing"

	"llstar"
)

// TestStreamDifferential replays streaming SAX events into a tree
// builder for every benchmark grammar and requires the reconstructed
// tree to be byte-identical to a batch parse — accept/reject, tree
// shape, and error positions must all agree. Mutated inputs check the
// failure paths too.
func TestStreamDifferential(t *testing.T) {
	const lines = 20
	for _, w := range Workloads {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			g, err := w.Load()
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(1); seed <= 2; seed++ {
				for name, input := range mutations(w.Input(seed, lines)) {
					batch, batchErr := g.NewParser(llstar.WithTree()).Parse(w.Start, input)

					tb := llstar.NewStreamTreeBuilder()
					var lastErr *llstar.StreamError
					s, err := g.NewSession(
						llstar.WithStartRule(w.Start),
						llstar.WithEvents(func(e llstar.StreamEvent) {
							tb.Event(e)
							if e.Kind == llstar.StreamSyntaxError {
								lastErr = e.Err
							}
						}))
					if err != nil {
						t.Fatal(err)
					}
					streamErr := feedBytes(s, input, 113)

					if (batchErr == nil) != (streamErr == nil) {
						t.Errorf("seed=%d/%s: accept/reject disagree: batch=%v stream=%v",
							seed, name, batchErr, streamErr)
						continue
					}
					if batchErr == nil {
						if got, want := tb.Tree().String(), batch.String(); got != want {
							t.Errorf("seed=%d/%s: tree mismatch", seed, name)
						}
						continue
					}
					// Both reject: the streamed error must locate the same
					// offending token as the batch error (Section 4.4
					// deepest-failure reporting).
					var bse *llstar.SyntaxError
					if want, ok := batchErr.(*llstar.SyntaxError); ok {
						bse = want
					}
					if bse != nil && lastErr != nil {
						if bse.Offending.Pos != lastErr.Offending.Pos || bse.Msg != lastErr.Msg {
							t.Errorf("seed=%d/%s: error mismatch:\nbatch:  %s %+v\nstream: %s %+v",
								seed, name, bse.Msg, bse.Offending.Pos, lastErr.Msg, lastErr.Offending.Pos)
						}
					}
				}
			}
		})
	}
}

// feedBytes pumps input in fixed-size chunks and finishes.
func feedBytes(s *llstar.Session, input string, chunk int) error {
	for i := 0; i < len(input); i += chunk {
		end := i + chunk
		if end > len(input) {
			end = len(input)
		}
		if err := s.Feed([]byte(input[i:end])); err != nil {
			return err
		}
	}
	return s.Finish()
}

// TestAddStreamDeterministic: AddStream's counters are stable across
// runs and the edit benchmark meets its reuse bar.
func TestAddStreamDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("bench run")
	}
	run := func() *ResultSet {
		rs, err := RunResultSet(1, 200, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.AddStream(); err != nil {
			t.Fatal(err)
		}
		return rs
	}
	a, b := run(), run()
	for i := range a.Workloads {
		if a.Workloads[i].StreamEvents != b.Workloads[i].StreamEvents {
			t.Errorf("%s: stream_events differ across runs: %d vs %d",
				a.Workloads[i].Name, a.Workloads[i].StreamEvents, b.Workloads[i].StreamEvents)
		}
		if a.Workloads[i].StreamEvents == 0 {
			t.Errorf("%s: stream_events = 0", a.Workloads[i].Name)
		}
		if a.Workloads[i].StreamPeakWindow != b.Workloads[i].StreamPeakWindow {
			t.Errorf("%s: stream_peak_window differ across runs", a.Workloads[i].Name)
		}
	}
	if a.Stream == nil || b.Stream == nil {
		t.Fatal("stream section missing")
	}
	if a.Stream.EditReusedTokensPct != b.Stream.EditReusedTokensPct {
		t.Errorf("edit_reused_tokens_pct differs across runs: %v vs %v",
			a.Stream.EditReusedTokensPct, b.Stream.EditReusedTokensPct)
	}
	if a.Stream.EditReusedTokensPct < 90 {
		t.Errorf("edit reuse = %.2f%%, want >= 90%%", a.Stream.EditReusedTokensPct)
	}
	// Compare must accept a stream-bearing baseline against itself and
	// reject a drifted one.
	var out strings.Builder
	if !Compare(&out, a, b, CompareOptions{}) {
		t.Errorf("Compare rejected identical stream runs:\n%s", out.String())
	}
	b.Stream.EditReusedTokensPct += 1
	if Compare(&out, a, b, CompareOptions{}) {
		t.Error("Compare accepted drifted edit_reused_tokens_pct")
	}
}

// TestCompareToleratesMissingStream: an old baseline without stream
// data must keep passing against a stream-bearing run, and vice versa
// must fail.
func TestCompareToleratesMissingStream(t *testing.T) {
	if testing.Short() {
		t.Skip("bench run")
	}
	baseline, err := RunResultSet(1, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := RunResultSet(1, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cur.AddStream(); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if !Compare(&out, baseline, cur, CompareOptions{}) {
		t.Errorf("old baseline rejected stream-bearing run:\n%s", out.String())
	}
	out.Reset()
	if Compare(&out, cur, baseline, CompareOptions{}) {
		t.Error("stream-bearing baseline accepted a run without stream data")
	}
}
