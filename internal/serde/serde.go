// Package serde serializes a complete grammar-analysis result — the
// token vocabulary, every decision's lookahead DFA (states, token and
// predicate edges, accept alternatives, fallback marks), analysis
// warnings, and the options that produced them — into a versioned,
// self-describing binary artifact, and reconstructs a ready-to-parse
// analysis result from one.
//
// The paper's expensive phase is the modified subset construction of
// Section 5; everything before it (meta-parse, validation, ATN build)
// is linear in grammar size and deterministic. An artifact therefore
// embeds the grammar source text and the decoded load path replays only
// the cheap front end, grafting the serialized DFAs onto the rebuilt
// ATN instead of re-running subset construction. This mirrors how
// production ANTLR ships a serialized ATN with generated parsers.
//
// Format (all integers are encoding/binary varints; strings are a
// uvarint byte length followed by UTF-8 bytes):
//
//	magic       "LLSC" (4 bytes)
//	version     uvarint (FormatVersion)
//	fingerprint 32 bytes — SHA-256 cache key, see Fingerprint
//	payload     see doc/serialization.md for the field-by-field layout
//	checksum    32 bytes — SHA-256 of every preceding byte
//
// Decode never panics on hostile input: every count is bounds-checked
// against the remaining payload, the checksum is verified before the
// payload is interpreted, and the embedded fingerprint is recomputed
// from the embedded source and options. Any mismatch yields a
// descriptive error, letting callers fall through to live analysis.
package serde

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"time"

	"llstar/internal/atn"
	"llstar/internal/core"
	"llstar/internal/dfa"
	"llstar/internal/grammar"
	"llstar/internal/token"
)

// FormatVersion is the artifact format version. Bump it on any change
// to the payload layout or to the meaning of serialized fields; old
// artifacts then fail decoding with a descriptive version error and
// callers re-analyze (the cache key includes the version, so stale
// entries are simply never found).
const FormatVersion = 1

// magic identifies an llstar compiled-analysis artifact.
const magic = "LLSC"

// checksumSize is the size of the trailing SHA-256 checksum.
const checksumSize = sha256.Size

// Options are the analysis-relevant load options baked into an
// artifact. They are part of the cache key: the same grammar analyzed
// under different options yields different DFAs. AnalysisWorkers is
// deliberately absent — analysis output is byte-identical at any
// worker count.
type Options struct {
	// RewriteLeftRecursion mirrors LoadOptions.RewriteLeftRecursion.
	RewriteLeftRecursion bool
	// M mirrors LoadOptions.AnalysisM (0 = grammar option / default).
	M int
	// MaxDFAStates mirrors core.Options.MaxDFAStates (0 = default).
	MaxDFAStates int
	// MaxK mirrors LoadOptions.MaxK (0 = unbounded LL(*)).
	MaxK int
}

// Fingerprint returns the SHA-256 cache key of (grammar name, grammar
// source, analysis options, format version). Two loads with equal
// fingerprints are guaranteed to produce byte-identical analysis
// results, so the fingerprint content-addresses cached artifacts.
func Fingerprint(name, src string, opts Options) [32]byte {
	h := sha256.New()
	// Domain separation + version first: a format bump invalidates
	// every existing cache entry by construction.
	fmt.Fprintf(h, "llstar-analysis-v%d\x00", FormatVersion)
	fmt.Fprintf(h, "name=%d:%s\x00", len(name), name)
	fmt.Fprintf(h, "src=%d:%s\x00", len(src), src)
	fmt.Fprintf(h, "leftrec=%t m=%d maxdfa=%d maxk=%d\x00",
		opts.RewriteLeftRecursion, opts.M, opts.MaxDFAStates, opts.MaxK)
	var fp [32]byte
	h.Sum(fp[:0])
	return fp
}

// PredEdge is one serialized predicate transition.
type PredEdge struct {
	Kind  int // dfa.PredKind
	Alt   int
	SynID int    // PredSyn only
	Sem   string // PredSem only: the predicate text, for verification
}

// State is one serialized lookahead-DFA state. Token edges are stored
// sorted by token type; targets and Default are state IDs offset by one
// so zero means "none".
type State struct {
	AcceptAlt   int
	Configs     string
	Default     int // target state ID + 1; 0 = none
	EdgeTypes   []int
	EdgeTargets []int // state ID + 1
	Preds       []PredEdge
}

// Decision is one serialized analyzed decision: its DFA plus the
// classification and cost data the facade reports.
type Decision struct {
	Desc         string
	Class        int // core.Class
	FixedK       int
	ClosureCalls int
	ElapsedNS    int64
	Fallback     string
	Start        int // state ID + 1; 0 = none
	States       []State
}

// Warning is one serialized analysis diagnostic.
type Warning struct {
	Decision int
	Kind     int // core.WarningKind
	Alts     []int
	Msg      string
}

// Artifact is the decoded in-memory form of a serialized analysis.
type Artifact struct {
	// Name and Source reproduce the exact Load inputs; the warm load
	// path replays the cheap front end (meta-parse, validation, ATN
	// build) from them.
	Name   string
	Source string
	Opts   Options

	// VocabNames lists token names by type (type 1 first); VocabLiterals
	// lists literal spellings sorted lexicographically. Both are
	// verified against the rebuilt grammar's vocabulary on Instantiate.
	VocabNames    []string
	VocabLiterals []string

	Decisions []Decision
	Warnings  []Warning
	ElapsedNS int64

	// Fingerprint is the cache key the artifact was written under,
	// recomputed and verified on decode.
	Fingerprint [32]byte
}

// FromResult captures an analysis result as an Artifact. name and src
// are the original Load inputs; opts the analysis options used.
func FromResult(res *core.Result, name, src string, opts Options) *Artifact {
	a := &Artifact{
		Name:          name,
		Source:        src,
		Opts:          opts,
		VocabNames:    res.Grammar.Vocab.Names(),
		VocabLiterals: res.Grammar.Vocab.Literals(),
		ElapsedNS:     res.Elapsed.Nanoseconds(),
		Fingerprint:   Fingerprint(name, src, opts),
	}
	a.Decisions = make([]Decision, len(res.Decisions))
	for i, di := range res.Decisions {
		a.Decisions[i] = fromDecision(di)
	}
	a.Warnings = make([]Warning, len(res.Warnings))
	for i, w := range res.Warnings {
		a.Warnings[i] = Warning{Decision: w.Decision, Kind: int(w.Kind), Alts: append([]int(nil), w.Alts...), Msg: w.Msg}
	}
	return a
}

func fromDecision(di core.DecisionInfo) Decision {
	d := di.DFA
	out := Decision{
		Desc:         di.Decision.Desc,
		Class:        int(di.Class),
		FixedK:       di.FixedK,
		ClosureCalls: di.ClosureCalls,
		ElapsedNS:    di.Elapsed.Nanoseconds(),
		Fallback:     d.Fallback,
	}
	if d.Start != nil {
		out.Start = d.Start.ID + 1
	}
	out.States = make([]State, len(d.States))
	for i, s := range d.States {
		ss := State{AcceptAlt: s.AcceptAlt, Configs: s.Configs}
		if s.Default != nil {
			ss.Default = s.Default.ID + 1
		}
		for _, t := range s.SortedEdges() {
			ss.EdgeTypes = append(ss.EdgeTypes, int(t))
			ss.EdgeTargets = append(ss.EdgeTargets, s.Edges[t].ID+1)
		}
		ss.Preds = make([]PredEdge, len(s.PredEdges))
		for j, e := range s.PredEdges {
			pe := PredEdge{Kind: int(e.Kind), Alt: e.Alt, SynID: e.SynID}
			if e.Kind == dfa.PredSem && e.Sem != nil {
				pe.Sem = e.Sem.Text
			}
			ss.Preds[j] = pe
		}
		out.States[i] = ss
	}
	return out
}

// Encode serializes the artifact. The output is deterministic: equal
// artifacts encode to equal bytes.
func (a *Artifact) Encode() []byte {
	var b []byte
	b = append(b, magic...)
	b = binary.AppendUvarint(b, FormatVersion)
	b = append(b, a.Fingerprint[:]...)

	b = appendString(b, a.Name)
	b = appendString(b, a.Source)
	b = appendBool(b, a.Opts.RewriteLeftRecursion)
	b = binary.AppendVarint(b, int64(a.Opts.M))
	b = binary.AppendVarint(b, int64(a.Opts.MaxDFAStates))
	b = binary.AppendVarint(b, int64(a.Opts.MaxK))

	b = binary.AppendUvarint(b, uint64(len(a.VocabNames)))
	for _, s := range a.VocabNames {
		b = appendString(b, s)
	}
	b = binary.AppendUvarint(b, uint64(len(a.VocabLiterals)))
	for _, s := range a.VocabLiterals {
		b = appendString(b, s)
	}

	b = binary.AppendUvarint(b, uint64(len(a.Decisions)))
	for i := range a.Decisions {
		b = appendDecision(b, &a.Decisions[i])
	}
	b = binary.AppendUvarint(b, uint64(len(a.Warnings)))
	for _, w := range a.Warnings {
		b = binary.AppendVarint(b, int64(w.Decision))
		b = binary.AppendVarint(b, int64(w.Kind))
		b = binary.AppendUvarint(b, uint64(len(w.Alts)))
		for _, alt := range w.Alts {
			b = binary.AppendVarint(b, int64(alt))
		}
		b = appendString(b, w.Msg)
	}
	b = binary.AppendVarint(b, a.ElapsedNS)

	sum := sha256.Sum256(b)
	return append(b, sum[:]...)
}

func appendDecision(b []byte, d *Decision) []byte {
	b = appendString(b, d.Desc)
	b = binary.AppendVarint(b, int64(d.Class))
	b = binary.AppendVarint(b, int64(d.FixedK))
	b = binary.AppendVarint(b, int64(d.ClosureCalls))
	b = binary.AppendVarint(b, d.ElapsedNS)
	b = appendString(b, d.Fallback)
	b = binary.AppendVarint(b, int64(d.Start))
	b = binary.AppendUvarint(b, uint64(len(d.States)))
	for i := range d.States {
		s := &d.States[i]
		b = binary.AppendVarint(b, int64(s.AcceptAlt))
		b = appendString(b, s.Configs)
		b = binary.AppendVarint(b, int64(s.Default))
		b = binary.AppendUvarint(b, uint64(len(s.EdgeTypes)))
		for j := range s.EdgeTypes {
			b = binary.AppendVarint(b, int64(s.EdgeTypes[j]))
			b = binary.AppendVarint(b, int64(s.EdgeTargets[j]))
		}
		b = binary.AppendUvarint(b, uint64(len(s.Preds)))
		for _, e := range s.Preds {
			b = binary.AppendVarint(b, int64(e.Kind))
			b = binary.AppendVarint(b, int64(e.Alt))
			b = binary.AppendVarint(b, int64(e.SynID))
			b = appendString(b, e.Sem)
		}
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// Decode errors. ErrVersion and ErrCorrupt wrap the two classes a
// cache layer treats identically (fall through to live analysis) but a
// CLI may want to distinguish.
var (
	// ErrNotArtifact reports input that is not an llstar artifact at all.
	ErrNotArtifact = errors.New("serde: not an llstar compiled-analysis artifact")
	// ErrVersion reports an artifact from a different format version.
	ErrVersion = errors.New("serde: unsupported artifact format version")
	// ErrCorrupt reports a structurally damaged artifact (bad checksum,
	// truncation, out-of-range reference, fingerprint mismatch).
	ErrCorrupt = errors.New("serde: corrupt artifact")
)

// reader is a bounds-checked little decoder over the payload. The
// first failure sticks; subsequent reads return zero values.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, fmt.Sprintf(format, args...), r.off)
	}
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.off += n
	return v
}

// count reads a collection length and rejects values that could not
// possibly fit in the remaining payload (each element costs at least
// one byte), bounding allocations on hostile input.
func (r *reader) count(what string) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(r.remaining()) {
		r.fail("%s count %d exceeds remaining %d bytes", what, v, r.remaining())
		return 0
	}
	return int(v)
}

func (r *reader) int(what string) int {
	v := r.varint()
	if v < int64(-1<<31) || v > int64(1<<31-1) {
		r.fail("%s %d out of range", what, v)
		return 0
	}
	return int(v)
}

func (r *reader) str(what string) string {
	n := r.count(what + " length")
	if r.err != nil {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) boolean(what string) bool {
	if r.err != nil {
		return false
	}
	if r.remaining() < 1 {
		r.fail("missing %s byte", what)
		return false
	}
	v := r.b[r.off]
	r.off++
	if v > 1 {
		r.fail("bad %s byte %d", what, v)
	}
	return v == 1
}

// Decode parses and verifies a serialized artifact: magic, version,
// whole-file checksum, structural bounds, and the embedded fingerprint
// recomputed from the embedded source and options. It never panics on
// arbitrary input.
func Decode(data []byte) (*Artifact, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, ErrNotArtifact
	}
	version, n := binary.Uvarint(data[len(magic):])
	if n <= 0 {
		return nil, fmt.Errorf("%w: unreadable version", ErrCorrupt)
	}
	if version != FormatVersion {
		return nil, fmt.Errorf("%w: got v%d, this build reads v%d", ErrVersion, version, FormatVersion)
	}
	if len(data) < len(magic)+n+checksumSize+checksumSize {
		return nil, fmt.Errorf("%w: truncated (%d bytes)", ErrCorrupt, len(data))
	}
	body, tail := data[:len(data)-checksumSize], data[len(data)-checksumSize:]
	if sum := sha256.Sum256(body); string(sum[:]) != string(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}

	r := &reader{b: body, off: len(magic) + n}
	a := &Artifact{}
	copy(a.Fingerprint[:], r.b[r.off:r.off+checksumSize])
	r.off += checksumSize

	a.Name = r.str("name")
	a.Source = r.str("source")
	a.Opts.RewriteLeftRecursion = r.boolean("leftrec option")
	a.Opts.M = r.int("option m")
	a.Opts.MaxDFAStates = r.int("option maxdfastates")
	a.Opts.MaxK = r.int("option maxk")

	nNames := r.count("vocab name")
	for i := 0; i < nNames && r.err == nil; i++ {
		a.VocabNames = append(a.VocabNames, r.str("vocab name"))
	}
	nLits := r.count("vocab literal")
	for i := 0; i < nLits && r.err == nil; i++ {
		a.VocabLiterals = append(a.VocabLiterals, r.str("vocab literal"))
	}

	nDecs := r.count("decision")
	for i := 0; i < nDecs && r.err == nil; i++ {
		a.Decisions = append(a.Decisions, decodeDecision(r))
	}
	nWarns := r.count("warning")
	for i := 0; i < nWarns && r.err == nil; i++ {
		w := Warning{Decision: r.int("warning decision"), Kind: r.int("warning kind")}
		nAlts := r.count("warning alt")
		for j := 0; j < nAlts && r.err == nil; j++ {
			w.Alts = append(w.Alts, r.int("warning alt"))
		}
		w.Msg = r.str("warning message")
		a.Warnings = append(a.Warnings, w)
	}
	a.ElapsedNS = r.varint()
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.remaining())
	}
	if got := Fingerprint(a.Name, a.Source, a.Opts); got != a.Fingerprint {
		return nil, fmt.Errorf("%w: fingerprint does not match embedded source and options", ErrCorrupt)
	}
	if err := a.validate(); err != nil {
		return nil, err
	}
	return a, nil
}

func decodeDecision(r *reader) Decision {
	d := Decision{
		Desc:         r.str("decision desc"),
		Class:        r.int("decision class"),
		FixedK:       r.int("decision k"),
		ClosureCalls: r.int("decision closures"),
		ElapsedNS:    r.varint(),
		Fallback:     r.str("decision fallback"),
		Start:        r.int("decision start"),
	}
	nStates := r.count("state")
	for i := 0; i < nStates && r.err == nil; i++ {
		s := State{
			AcceptAlt: r.int("state accept"),
			Configs:   r.str("state configs"),
			Default:   r.int("state default"),
		}
		nEdges := r.count("edge")
		for j := 0; j < nEdges && r.err == nil; j++ {
			s.EdgeTypes = append(s.EdgeTypes, r.int("edge type"))
			s.EdgeTargets = append(s.EdgeTargets, r.int("edge target"))
		}
		nPreds := r.count("pred edge")
		for j := 0; j < nPreds && r.err == nil; j++ {
			s.Preds = append(s.Preds, PredEdge{
				Kind:  r.int("pred kind"),
				Alt:   r.int("pred alt"),
				SynID: r.int("pred synID"),
				Sem:   r.str("pred text"),
			})
		}
		d.States = append(d.States, s)
	}
	return d
}

// validate performs structural checks that do not need the rebuilt
// grammar: every state/edge reference must be in range so Instantiate
// can index without panicking.
func (a *Artifact) validate() error {
	for i := range a.Decisions {
		d := &a.Decisions[i]
		n := len(d.States)
		if d.Start < 0 || d.Start > n {
			return fmt.Errorf("%w: decision %d start state %d out of range [0,%d]", ErrCorrupt, i, d.Start-1, n-1)
		}
		if d.Class < int(core.ClassFixed) || d.Class > int(core.ClassBacktrack) {
			return fmt.Errorf("%w: decision %d class %d unknown", ErrCorrupt, i, d.Class)
		}
		for si := range d.States {
			s := &d.States[si]
			if s.Default < 0 || s.Default > n {
				return fmt.Errorf("%w: decision %d state %d default %d out of range", ErrCorrupt, i, si, s.Default-1)
			}
			if len(s.EdgeTypes) != len(s.EdgeTargets) {
				return fmt.Errorf("%w: decision %d state %d edge arity mismatch", ErrCorrupt, i, si)
			}
			for j, to := range s.EdgeTargets {
				if to <= 0 || to > n {
					return fmt.Errorf("%w: decision %d state %d edge target %d out of range", ErrCorrupt, i, si, to-1)
				}
				if t := s.EdgeTypes[j]; t < int(token.EOF) {
					return fmt.Errorf("%w: decision %d state %d edge type %d invalid", ErrCorrupt, i, si, t)
				}
			}
			for _, e := range s.Preds {
				if e.Kind < int(dfa.PredSem) || e.Kind > int(dfa.PredTrue) {
					return fmt.Errorf("%w: decision %d state %d predicate kind %d unknown", ErrCorrupt, i, si, e.Kind)
				}
			}
		}
	}
	return nil
}

// Instantiate grafts the artifact's DFAs onto a freshly rebuilt ATN,
// producing a core.Result indistinguishable from a live analysis of
// the same grammar under the same options. g must be the validated
// grammar parsed from the artifact's embedded source (the facade owns
// the front end so left-recursion rewriting and validation policy stay
// in one place). The expensive subset construction never runs.
func Instantiate(a *Artifact, g *grammar.Grammar) (*core.Result, error) {
	if err := verifyVocab(a, g); err != nil {
		return nil, err
	}
	m, err := atn.Build(g)
	if err != nil {
		return nil, fmt.Errorf("serde: rebuilding ATN: %w", err)
	}
	if len(m.Decisions) != len(a.Decisions) {
		return nil, fmt.Errorf("%w: artifact has %d decisions, rebuilt grammar has %d", ErrCorrupt, len(a.Decisions), len(m.Decisions))
	}
	res := &core.Result{
		Grammar: g,
		Machine: m,
		DFAs:    make([]*dfa.DFA, len(a.Decisions)),
		Elapsed: time.Duration(a.ElapsedNS),
	}
	maxType := g.Vocab.MaxType()
	for i := range a.Decisions {
		dec := m.Decisions[i]
		ad := &a.Decisions[i]
		if dec.Desc != ad.Desc {
			return nil, fmt.Errorf("%w: decision %d is %q in the artifact but %q after rebuild", ErrCorrupt, i, ad.Desc, dec.Desc)
		}
		d, err := instantiateDFA(ad, dec, len(m.SynPreds))
		if err != nil {
			return nil, err
		}
		d.Compile(maxType)
		res.DFAs[i] = d
		res.Decisions = append(res.Decisions, core.DecisionInfo{
			Decision:     dec,
			DFA:          d,
			Class:        core.Class(ad.Class),
			FixedK:       ad.FixedK,
			Elapsed:      time.Duration(ad.ElapsedNS),
			ClosureCalls: ad.ClosureCalls,
		})
	}
	for _, w := range a.Warnings {
		res.Warnings = append(res.Warnings, core.Warning{
			Decision: w.Decision,
			Kind:     core.WarningKind(w.Kind),
			Alts:     append([]int(nil), w.Alts...),
			Msg:      w.Msg,
		})
	}
	return res, nil
}

func verifyVocab(a *Artifact, g *grammar.Grammar) error {
	names := g.Vocab.Names()
	if len(names) != len(a.VocabNames) {
		return fmt.Errorf("%w: artifact vocabulary has %d token types, rebuilt grammar has %d", ErrCorrupt, len(a.VocabNames), len(names))
	}
	for i, want := range a.VocabNames {
		if names[i] != want {
			return fmt.Errorf("%w: token type %d is %q in the artifact but %q after rebuild", ErrCorrupt, i+1, want, names[i])
		}
	}
	lits := g.Vocab.Literals()
	if len(lits) != len(a.VocabLiterals) {
		return fmt.Errorf("%w: artifact has %d literals, rebuilt grammar has %d", ErrCorrupt, len(a.VocabLiterals), len(lits))
	}
	for i, want := range a.VocabLiterals {
		if lits[i] != want {
			return fmt.Errorf("%w: literal %d is %q in the artifact but %q after rebuild", ErrCorrupt, i, want, lits[i])
		}
	}
	return nil
}

// instantiateDFA rebuilds one decision's DFA, re-resolving semantic
// predicate edges against the rebuilt decision: analysis only ever
// hoists the left-edge predicate of the edge's own alternative
// (core's hoistedPred), so dec.SemPreds[alt-1] is the unique source of
// a PredSem edge's predicate.
func instantiateDFA(ad *Decision, dec *atn.Decision, nSynPreds int) (*dfa.DFA, error) {
	d := dfa.New(dec.ID, dec.Desc)
	d.Fallback = ad.Fallback
	states := make([]*dfa.State, len(ad.States))
	for i := range ad.States {
		states[i] = d.NewState()
	}
	for i := range ad.States {
		as := &ad.States[i]
		s := states[i]
		s.AcceptAlt = as.AcceptAlt
		s.Configs = as.Configs
		if as.Default > 0 {
			s.Default = states[as.Default-1]
		}
		for j, t := range as.EdgeTypes {
			s.Edges[token.Type(t)] = states[as.EdgeTargets[j]-1]
		}
		for _, e := range as.Preds {
			pe := dfa.PredEdge{Kind: dfa.PredKind(e.Kind), Alt: e.Alt, SynID: e.SynID}
			switch pe.Kind {
			case dfa.PredSem:
				if e.Alt < 1 || e.Alt > dec.NAlts {
					return nil, fmt.Errorf("%w: decision %d predicate alt %d out of range 1..%d", ErrCorrupt, dec.ID, e.Alt, dec.NAlts)
				}
				sp := dec.SemPreds[e.Alt-1]
				if sp == nil || sp.Text != e.Sem {
					return nil, fmt.Errorf("%w: decision %d alt %d semantic predicate %s does not match rebuilt grammar", ErrCorrupt, dec.ID, e.Alt, strconv.Quote(e.Sem))
				}
				pe.Sem = sp
			case dfa.PredSyn:
				if e.SynID < 0 || e.SynID >= nSynPreds {
					return nil, fmt.Errorf("%w: decision %d synpred id %d out of range (grammar has %d)", ErrCorrupt, dec.ID, e.SynID, nSynPreds)
				}
			}
			s.PredEdges = append(s.PredEdges, pe)
		}
	}
	if ad.Start > 0 {
		d.Start = states[ad.Start-1]
	}
	return d, nil
}
