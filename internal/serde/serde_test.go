package serde_test

import (
	"errors"
	"testing"

	"llstar/internal/core"
	"llstar/internal/grammar"
	"llstar/internal/meta"
	"llstar/internal/serde"
)

const testSrc = `
grammar S;
s : ID
  | ID '=' INT
  | ('unsigned')* 'int' ID
  ;
ID : ('a'..'z')+ ;
INT : ('0'..'9')+ ;
WS : (' ')+ { skip(); } ;
`

// analyze runs the real pipeline (meta-parse, validate, subset
// construction) so artifacts under test are genuine.
func analyze(t *testing.T, name, src string) *core.Result {
	t.Helper()
	g, err := meta.Parse(name, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := grammar.FirstFatal(grammar.Validate(g)); err != nil {
		t.Fatal(err)
	}
	res, err := core.Analyze(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func artifact(t *testing.T) *serde.Artifact {
	t.Helper()
	return serde.FromResult(analyze(t, "s.g", testSrc), "s.g", testSrc, serde.Options{})
}

func TestEncodeDeterministic(t *testing.T) {
	a := artifact(t)
	if string(a.Encode()) != string(a.Encode()) {
		t.Fatal("Encode is not deterministic for the same artifact")
	}
	// Two analyses of the same grammar differ only in wall-clock
	// timings (kept so AnalysisProfile survives decoding); everything
	// else must encode byte-identically.
	b := artifact(t)
	zeroTimes := func(x *serde.Artifact) {
		x.ElapsedNS = 0
		for i := range x.Decisions {
			x.Decisions[i].ElapsedNS = 0
		}
	}
	zeroTimes(a)
	zeroTimes(b)
	if string(a.Encode()) != string(b.Encode()) {
		t.Fatal("two analyses of the same grammar encode differently (beyond timings)")
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	a := artifact(t)
	got, err := serde.Decode(a.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != a.Name || got.Source != a.Source || got.Opts != a.Opts {
		t.Error("load inputs did not round-trip")
	}
	if got.Fingerprint != a.Fingerprint {
		t.Error("fingerprint did not round-trip")
	}
	if len(got.Decisions) != len(a.Decisions) {
		t.Fatalf("decisions: got %d, want %d", len(got.Decisions), len(a.Decisions))
	}
	if string(got.Encode()) != string(a.Encode()) {
		t.Error("re-encoding the decoded artifact changes bytes")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := serde.Fingerprint("a.g", "grammar A;", serde.Options{})
	cases := map[string][32]byte{
		"name":    serde.Fingerprint("b.g", "grammar A;", serde.Options{}),
		"source":  serde.Fingerprint("a.g", "grammar B;", serde.Options{}),
		"leftrec": serde.Fingerprint("a.g", "grammar A;", serde.Options{RewriteLeftRecursion: true}),
		"m":       serde.Fingerprint("a.g", "grammar A;", serde.Options{M: 2}),
		"maxk":    serde.Fingerprint("a.g", "grammar A;", serde.Options{MaxK: 3}),
	}
	for what, fp := range cases {
		if fp == base {
			t.Errorf("changing %s does not change the fingerprint", what)
		}
	}
	if serde.Fingerprint("a.g", "grammar A;", serde.Options{}) != base {
		t.Error("fingerprint is not deterministic")
	}
}

func TestDecodeErrorClasses(t *testing.T) {
	valid := artifact(t).Encode()

	t.Run("not-artifact", func(t *testing.T) {
		for _, data := range [][]byte{nil, []byte("LL"), []byte("GOBX" + string(valid[4:]))} {
			if _, err := serde.Decode(data); !errors.Is(err, serde.ErrNotArtifact) {
				t.Errorf("Decode(%q...) = %v, want ErrNotArtifact", data[:min(4, len(data))], err)
			}
		}
	})
	t.Run("version", func(t *testing.T) {
		mut := append([]byte(nil), valid...)
		mut[4] = serde.FormatVersion + 1 // uvarint version byte after magic
		if _, err := serde.Decode(mut); !errors.Is(err, serde.ErrVersion) {
			t.Errorf("Decode(v%d artifact) = %v, want ErrVersion", serde.FormatVersion+1, err)
		}
	})
	t.Run("checksum", func(t *testing.T) {
		mut := append([]byte(nil), valid...)
		mut[len(mut)/2] ^= 0x80
		if _, err := serde.Decode(mut); !errors.Is(err, serde.ErrCorrupt) {
			t.Errorf("Decode(flipped byte) = %v, want ErrCorrupt", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{5, 20, len(valid) / 2, len(valid) - 1} {
			if _, err := serde.Decode(valid[:n]); !errors.Is(err, serde.ErrCorrupt) {
				t.Errorf("Decode(first %d bytes) = %v, want ErrCorrupt", n, err)
			}
		}
	})
	t.Run("trailing-bytes", func(t *testing.T) {
		// Splice garbage between payload and a recomputed checksum: the
		// checksum passes but the payload must not silently over-read.
		if _, err := serde.Decode(append(append([]byte(nil), valid...), 0, 0, 0)); !errors.Is(err, serde.ErrCorrupt) {
			t.Errorf("Decode(appended bytes) = %v, want ErrCorrupt", err)
		}
	})
}

// TestDecodeTamperedPayload re-encodes a structurally damaged artifact
// with a *valid* checksum and fingerprint: the structural validation
// layer alone must catch it.
func TestDecodeTamperedPayload(t *testing.T) {
	tamper := []struct {
		name string
		mut  func(a *serde.Artifact)
	}{
		{"start-out-of-range", func(a *serde.Artifact) { a.Decisions[0].Start = 999 }},
		{"edge-target-out-of-range", func(a *serde.Artifact) {
			s := &a.Decisions[0].States[0]
			s.EdgeTypes = append(s.EdgeTypes, 1)
			s.EdgeTargets = append(s.EdgeTargets, 999)
		}},
		{"bad-class", func(a *serde.Artifact) { a.Decisions[0].Class = 42 }},
		{"bad-pred-kind", func(a *serde.Artifact) {
			s := &a.Decisions[0].States[0]
			s.Preds = append(s.Preds, serde.PredEdge{Kind: 42, Alt: 1})
		}},
	}
	for _, tc := range tamper {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			a := artifact(t)
			tc.mut(a)
			if _, err := serde.Decode(a.Encode()); !errors.Is(err, serde.ErrCorrupt) {
				t.Errorf("tampered artifact decoded: err = %v, want ErrCorrupt", err)
			}
		})
	}
}

// TestDecodeForeignFingerprint: an artifact whose embedded fingerprint
// does not match its embedded source/options (e.g. the wrong file
// copied over a cache entry) must be rejected even though its checksum
// is internally consistent.
func TestDecodeForeignFingerprint(t *testing.T) {
	a := artifact(t)
	a.Source += "\n// appended after fingerprinting\n"
	if _, err := serde.Decode(a.Encode()); !errors.Is(err, serde.ErrCorrupt) {
		t.Errorf("fingerprint/source mismatch decoded: err = %v, want ErrCorrupt", err)
	}
}

// TestInstantiateGrammarMismatch: grafting an artifact onto the wrong
// grammar must fail loudly, not mis-parse.
func TestInstantiateGrammarMismatch(t *testing.T) {
	a := serde.FromResult(analyze(t, "s.g", testSrc), "s.g", testSrc, serde.Options{})

	const otherSrc = `
grammar S;
s : ID | INT ;
ID : ('a'..'z')+ ;
INT : ('0'..'9')+ ;
EXTRA : ('_')+ ;
WS : (' ')+ { skip(); } ;
`
	other, err := meta.Parse("other.g", otherSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := serde.Instantiate(a, other); !errors.Is(err, serde.ErrCorrupt) {
		t.Errorf("Instantiate on mismatched grammar = %v, want ErrCorrupt", err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
