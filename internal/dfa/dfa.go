// Package dfa represents lookahead DFA (Definition 4 of the paper): DFA
// over token types augmented with predicate transitions and accept states
// that yield predicted production numbers. The LL(*) analysis in
// internal/core produces one DFA per parsing decision; the runtime
// simulates it against the token stream to pick an alternative.
package dfa

import (
	"fmt"
	"sort"
	"strings"

	"llstar/internal/grammar"
	"llstar/internal/token"
)

// PredKind classifies a predicate edge.
type PredKind int

const (
	// PredSem evaluates a user semantic predicate {p}?.
	PredSem PredKind = iota
	// PredSyn speculatively matches a compiled syntactic predicate
	// fragment (α)=>.
	PredSyn
	// PredAuto speculatively matches the alternative's own body (PEG
	// mode auto-backtracking).
	PredAuto
	// PredTrue always succeeds: the default branch ANTLR leaves on the
	// lowest conflicting alternative once all others are predicated.
	PredTrue
)

// PredEdge is a predicate transition to the accept state for Alt.
// Edges are evaluated in order; the first that holds wins.
type PredEdge struct {
	Kind  PredKind
	Sem   *grammar.SemPred // PredSem
	SynID int              // PredSyn
	Alt   int
}

func (e PredEdge) String() string {
	switch e.Kind {
	case PredSem:
		return fmt.Sprintf("{%s}? => %d", e.Sem.Text, e.Alt)
	case PredSyn:
		return fmt.Sprintf("synpred%d => %d", e.SynID+1, e.Alt)
	case PredAuto:
		return fmt.Sprintf("backtrack(alt %d) => %d", e.Alt, e.Alt)
	default:
		return fmt.Sprintf("true => %d", e.Alt)
	}
}

// State is a lookahead-DFA state.
type State struct {
	ID int

	// Edges maps a token type to the next state. Default, when non-nil,
	// handles every token type without an explicit edge (except EOF);
	// it arises from wildcard and negated-set transitions.
	Edges   map[token.Type]*State
	Default *State

	// AcceptAlt, when nonzero, predicts that production (state f_i).
	AcceptAlt int

	// PredEdges resolve this state by predicates, evaluated in order,
	// after no token edge matches (or immediately if the state has no
	// token edges).
	PredEdges []PredEdge

	// Configs describes the ATN configurations this state was built
	// from, for diagnostics and tests.
	Configs string

	// compiled is a dense edge table indexed by token type + 1 (so EOF
	// lands at index 0), built by DFA.Compile for fast simulation.
	compiled []*State
}

// Target returns the successor for token type t, or nil.
func (s *State) Target(t token.Type) *State {
	if s.compiled != nil {
		idx := int(t) + 1
		if idx >= 0 && idx < len(s.compiled) {
			return s.compiled[idx]
		}
		if s.Default != nil && t != token.EOF {
			return s.Default
		}
		return nil
	}
	if to, ok := s.Edges[t]; ok {
		return to
	}
	if s.Default != nil && t != token.EOF {
		return s.Default
	}
	return nil
}

// Compile builds dense edge tables for every state, sized for token
// types up to maxType. Simulation afterwards is an array index per
// token instead of a map lookup.
func (d *DFA) Compile(maxType token.Type) {
	n := int(maxType) + 2 // +1 for the EOF slot at index 0
	for _, s := range d.States {
		row := make([]*State, n)
		if s.Default != nil {
			for i := 1; i < n; i++ { // never EOF
				row[i] = s.Default
			}
		}
		for t, to := range s.Edges {
			idx := int(t) + 1
			if idx >= 0 && idx < n {
				row[idx] = to
			}
		}
		s.compiled = row
	}
}

// SortedEdges returns edge labels in ascending type order for
// deterministic iteration.
func (s *State) SortedEdges() []token.Type {
	out := make([]token.Type, 0, len(s.Edges))
	for t := range s.Edges {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DFA is the lookahead automaton for one parsing decision.
type DFA struct {
	Decision int
	Desc     string

	Start  *State
	States []*State

	// Fallback reports why the analysis could not complete an exact DFA
	// for this decision ("" if it could): e.g. recursion in multiple
	// alternatives, or resource limits.
	Fallback string

	accepts map[int]*State
}

// New returns an empty DFA for the given decision.
func New(decision int, desc string) *DFA {
	return &DFA{Decision: decision, Desc: desc, accepts: make(map[int]*State)}
}

// NewState allocates a non-accepting state.
func (d *DFA) NewState() *State {
	s := &State{ID: len(d.States), Edges: make(map[token.Type]*State)}
	d.States = append(d.States, s)
	return s
}

// Accept returns the shared accept state f_alt, creating it on first use.
func (d *DFA) Accept(alt int) *State {
	if s, ok := d.accepts[alt]; ok {
		return s
	}
	s := d.NewState()
	s.AcceptAlt = alt
	d.accepts[alt] = s
	return s
}

// NumStates returns the state count.
func (d *DFA) NumStates() int { return len(d.States) }

// HasBacktrack reports whether any state falls back to speculation
// (syntactic or auto predicates).
func (d *DFA) HasBacktrack() bool {
	for _, s := range d.States {
		for _, e := range s.PredEdges {
			if e.Kind == PredSyn || e.Kind == PredAuto {
				return true
			}
		}
	}
	return false
}

// HasSemPreds reports whether any state tests a user semantic predicate.
func (d *DFA) HasSemPreds() bool {
	for _, s := range d.States {
		for _, e := range s.PredEdges {
			if e.Kind == PredSem {
				return true
			}
		}
	}
	return false
}

// Cyclic reports whether the DFA graph contains a cycle. Cyclic DFA give
// LL(*) its arbitrary-lookahead power; acyclic DFA are fixed LL(k).
func (d *DFA) Cyclic() bool {
	const (
		white, gray, black = 0, 1, 2
	)
	color := make([]int, len(d.States))
	var visit func(s *State) bool
	visit = func(s *State) bool {
		color[s.ID] = gray
		for _, t := range s.SortedEdges() {
			to := d.States[s.Edges[t].ID]
			switch color[to.ID] {
			case gray:
				return true
			case white:
				if visit(to) {
					return true
				}
			}
		}
		if s.Default != nil {
			to := d.States[s.Default.ID]
			switch color[to.ID] {
			case gray:
				return true
			case white:
				if visit(to) {
					return true
				}
			}
		}
		color[s.ID] = black
		return false
	}
	if d.Start == nil {
		return false
	}
	return visit(d.Start)
}

// MaxLookahead returns the maximum number of token edges on any path from
// the start state to an accept or predicated state — the fixed k for an
// LL(k) decision. It returns -1 for cyclic DFA.
func (d *DFA) MaxLookahead() int {
	if d.Start == nil {
		return 0
	}
	if d.Cyclic() {
		return -1
	}
	memo := make(map[int]int)
	var depth func(s *State) int
	depth = func(s *State) int {
		if v, ok := memo[s.ID]; ok {
			return v
		}
		memo[s.ID] = 0 // acyclic, placeholder
		best := 0
		for _, t := range s.SortedEdges() {
			if v := 1 + depth(s.Edges[t]); v > best {
				best = v
			}
		}
		if s.Default != nil {
			if v := 1 + depth(s.Default); v > best {
				best = v
			}
		}
		memo[s.ID] = best
		return best
	}
	k := depth(d.Start)
	if k == 0 && (len(d.Start.PredEdges) > 0 || d.Start.AcceptAlt > 0) {
		// Pure-predicate or trivially-accepting decisions examine no
		// tokens, but report k=1 the way LL(1) tables are counted... no:
		// keep 0; callers decide presentation.
		return 0
	}
	return k
}

// Dot renders the DFA in Graphviz format; accept states show "=> alt".
func (d *DFA) Dot(vocab *token.Vocabulary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph DFA_d%d {\n  rankdir=LR;\n  node [shape=circle fontsize=10];\n", d.Decision)
	for _, s := range d.States {
		label := fmt.Sprintf("s%d", s.ID)
		shape := "circle"
		if s.AcceptAlt > 0 {
			label = fmt.Sprintf("s%d\\n=>%d", s.ID, s.AcceptAlt)
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  %d [label=\"%s\" shape=%s];\n", s.ID, label, shape)
		// Group edges by target so the dot stays readable.
		byTarget := map[int][]string{}
		for _, t := range s.SortedEdges() {
			to := s.Edges[t]
			byTarget[to.ID] = append(byTarget[to.ID], vocab.Name(t))
		}
		targets := make([]int, 0, len(byTarget))
		for id := range byTarget {
			targets = append(targets, id)
		}
		sort.Ints(targets)
		for _, id := range targets {
			fmt.Fprintf(&b, "  %d -> %d [label=%q fontsize=9];\n", s.ID, id, strings.Join(byTarget[id], ","))
		}
		if s.Default != nil {
			fmt.Fprintf(&b, "  %d -> %d [label=\"<other>\" fontsize=9];\n", s.ID, s.Default.ID)
		}
		for _, e := range s.PredEdges {
			fmt.Fprintf(&b, "  %d -> acc%d [label=%q fontsize=9 style=dashed];\n", s.ID, e.Alt, e.String())
		}
	}
	// Materialize named accept anchors for predicate edges.
	seen := map[int]bool{}
	for _, s := range d.States {
		for _, e := range s.PredEdges {
			if !seen[e.Alt] {
				seen[e.Alt] = true
				fmt.Fprintf(&b, "  acc%d [label=\"=>%d\" shape=doublecircle];\n", e.Alt, e.Alt)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// PredictTypes runs the DFA over a plain sequence of token types,
// returning the predicted alternative and how many tokens were examined.
// It supports only pure DFA (no predicate edges) and is intended for
// tests; the full simulator with predicate evaluation and backtracking
// lives in the parser runtime.
func (d *DFA) PredictTypes(types []token.Type) (alt, used int, err error) {
	s := d.Start
	for i := 0; ; i++ {
		if s.AcceptAlt > 0 {
			return s.AcceptAlt, i, nil
		}
		if len(s.PredEdges) > 0 {
			return 0, i, fmt.Errorf("dfa: state s%d requires predicate evaluation", s.ID)
		}
		tt := token.EOF
		if i < len(types) {
			tt = types[i]
		}
		next := s.Target(tt)
		if next == nil {
			return 0, i + 1, fmt.Errorf("dfa: no viable alternative at lookahead %d", i+1)
		}
		s = next
	}
}
