package dfa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"llstar/internal/token"
)

// Two states with identical continuations must merge.
func TestMinimizeMergesDuplicates(t *testing.T) {
	d := New(0, "dup")
	s0 := d.NewState()
	d.Start = s0
	a := d.NewState()
	b := d.NewState()
	acc := d.Accept(1)
	s0.Edges[1] = a
	s0.Edges[2] = b
	a.Edges[3] = acc
	b.Edges[3] = acc // identical to a

	before := d.NumStates()
	removed := d.Minimize()
	if removed != 1 {
		t.Fatalf("removed = %d, want 1 (before=%d after=%d)", removed, before, d.NumStates())
	}
	if d.Start.Target(1) != d.Start.Target(2) {
		t.Errorf("duplicate successors not merged")
	}
	if alt, _, err := d.PredictTypes([]token.Type{2, 3}); err != nil || alt != 1 {
		t.Errorf("prediction broken after minimize: %d %v", alt, err)
	}
}

// States with different accept alternatives must never merge.
func TestMinimizeKeepsDistinctAccepts(t *testing.T) {
	d := New(1, "acc")
	s0 := d.NewState()
	d.Start = s0
	s0.Edges[1] = d.Accept(1)
	s0.Edges[2] = d.Accept(2)
	if removed := d.Minimize(); removed != 0 {
		t.Errorf("removed %d states from already-minimal DFA", removed)
	}
}

// Property: minimization preserves the prediction function on random
// acyclic-ish DFA over random probe strings.
func TestMinimizePreservesPredictions(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := New(0, "rand")
		n := 2 + r.Intn(10)
		states := make([]*State, n)
		for i := range states {
			states[i] = d.NewState()
		}
		d.Start = states[0]
		nAlts := 1 + r.Intn(3)
		accepts := make([]*State, nAlts)
		for i := range accepts {
			accepts[i] = d.Accept(i + 1)
		}
		// Random forward edges (acyclic), plus edges into accepts.
		for i, s := range states {
			for t := token.Type(1); t <= 4; t++ {
				switch r.Intn(4) {
				case 0:
					if i+1 < n {
						s.Edges[t] = states[i+1+r.Intn(n-i-1)]
					}
				case 1:
					s.Edges[t] = accepts[r.Intn(nAlts)]
				}
			}
		}

		// Record predictions over probe strings before minimizing.
		probes := make([][]token.Type, 40)
		for i := range probes {
			m := r.Intn(6)
			probe := make([]token.Type, m)
			for j := range probe {
				probe[j] = token.Type(1 + r.Intn(5))
			}
			probes[i] = probe
		}
		type outcome struct {
			alt, used int
			failed    bool
		}
		run := func() []outcome {
			out := make([]outcome, len(probes))
			for i, probe := range probes {
				alt, used, err := d.PredictTypes(probe)
				out[i] = outcome{alt, used, err != nil}
			}
			return out
		}
		before := run()
		d.Minimize()
		after := run()
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
