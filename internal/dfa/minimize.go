package dfa

import (
	"fmt"
	"sort"
	"strings"

	"llstar/internal/token"
)

// Minimize merges indistinguishable states with Moore partition
// refinement: states are initially split by prediction signature (accept
// alternative and predicate edges) and refined until every pair of states
// in a class agrees, label by label, on the class of its successor. The
// prediction function is preserved exactly; only redundant states are
// removed. It returns the number of states eliminated.
//
// ANTLR minimizes its lookahead DFA the same way — cyclic DFA produced by
// subset construction frequently contain duplicated suffix structure.
func (d *DFA) Minimize() int {
	if d.Start == nil || len(d.States) <= 1 {
		return 0
	}

	// All labels mentioned anywhere, so each state can be probed with a
	// common alphabet; the "default" behavior is probed separately.
	labelSet := token.NewSet()
	for _, s := range d.States {
		for t := range s.Edges {
			labelSet.Add(t)
		}
	}
	labels := labelSet.Types()

	part := make([]int, len(d.States))
	sigOf := func(s *State) string {
		var b strings.Builder
		fmt.Fprintf(&b, "a%d", s.AcceptAlt)
		for _, e := range s.PredEdges {
			b.WriteString("|" + e.String())
		}
		return b.String()
	}
	classes := map[string]int{}
	for i, s := range d.States {
		sig := sigOf(s)
		id, ok := classes[sig]
		if !ok {
			id = len(classes)
			classes[sig] = id
		}
		part[i] = id
	}

	classOfTarget := func(s *State, t token.Type) int {
		to := s.Target(t)
		if to == nil {
			return -1
		}
		return part[to.ID]
	}
	for {
		next := map[string]int{}
		newPart := make([]int, len(d.States))
		for i, s := range d.States {
			var b strings.Builder
			fmt.Fprintf(&b, "c%d", part[i])
			for _, t := range labels {
				fmt.Fprintf(&b, ",%d", classOfTarget(s, t))
			}
			if s.Default != nil {
				fmt.Fprintf(&b, ",d%d", part[s.Default.ID])
			} else {
				b.WriteString(",d-")
			}
			sig := b.String()
			id, ok := next[sig]
			if !ok {
				id = len(next)
				next[sig] = id
			}
			newPart[i] = id
		}
		if len(next) == len(classes) {
			break
		}
		classes = next
		part = newPart
	}

	nClasses := 0
	for _, c := range part {
		if c+1 > nClasses {
			nClasses = c + 1
		}
	}
	if nClasses == len(d.States) {
		return 0
	}

	// Representative per class: the lowest-numbered member, keeping the
	// start state's class rooted at a stable representative.
	rep := make([]*State, nClasses)
	for _, s := range d.States {
		c := part[s.ID]
		if rep[c] == nil {
			rep[c] = s
		}
	}

	removed := len(d.States) - nClasses
	redirect := func(s *State) *State {
		if s == nil {
			return nil
		}
		return rep[part[s.ID]]
	}
	kept := make([]*State, 0, nClasses)
	for _, s := range d.States {
		if rep[part[s.ID]] != s {
			continue
		}
		for t, to := range s.Edges {
			s.Edges[t] = redirect(to)
		}
		s.Default = redirect(s.Default)
		kept = append(kept, s)
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].ID < kept[j].ID })
	d.Start = redirect(d.Start)
	for alt, s := range d.accepts {
		d.accepts[alt] = redirect(s)
	}
	for i, s := range kept {
		s.ID = i
		s.compiled = nil // stale; Compile rebuilds
	}
	d.States = kept
	return removed
}
