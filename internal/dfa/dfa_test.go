package dfa

import (
	"strings"
	"testing"

	"llstar/internal/token"
)

func TestAcyclicMaxLookahead(t *testing.T) {
	d := New(0, "test")
	s0 := d.NewState()
	d.Start = s0
	s1 := d.NewState()
	s0.Edges[1] = s1
	s0.Edges[2] = d.Accept(2)
	s1.Edges[3] = d.Accept(1)
	if d.Cyclic() {
		t.Error("acyclic DFA reported cyclic")
	}
	if k := d.MaxLookahead(); k != 2 {
		t.Errorf("max lookahead = %d, want 2", k)
	}
}

func TestCyclicDetection(t *testing.T) {
	d := New(1, "loop")
	s0 := d.NewState()
	d.Start = s0
	s0.Edges[1] = s0 // self loop
	s0.Edges[2] = d.Accept(1)
	if !d.Cyclic() {
		t.Error("cycle not detected")
	}
	if k := d.MaxLookahead(); k != -1 {
		t.Errorf("cyclic DFA must report k=-1, got %d", k)
	}
}

func TestDefaultEdge(t *testing.T) {
	d := New(2, "wild")
	s0 := d.NewState()
	d.Start = s0
	s0.Edges[1] = d.Accept(1)
	s0.Default = d.Accept(2)
	if got := s0.Target(1).AcceptAlt; got != 1 {
		t.Errorf("explicit edge: %d", got)
	}
	if got := s0.Target(9).AcceptAlt; got != 2 {
		t.Errorf("default edge: %d", got)
	}
	if s0.Target(token.EOF) != nil {
		t.Errorf("default must not capture EOF")
	}
}

func TestAcceptShared(t *testing.T) {
	d := New(3, "acc")
	a1 := d.Accept(1)
	if d.Accept(1) != a1 {
		t.Error("accept states must be shared per alternative")
	}
	if a1.AcceptAlt != 1 {
		t.Error("accept alt not set")
	}
}

func TestPredicateClassification(t *testing.T) {
	d := New(4, "preds")
	s0 := d.NewState()
	d.Start = s0
	s0.PredEdges = append(s0.PredEdges, PredEdge{Kind: PredSem, Alt: 1})
	if d.HasBacktrack() {
		t.Error("sem preds are not backtracking")
	}
	if !d.HasSemPreds() {
		t.Error("sem pred not seen")
	}
	s0.PredEdges = append(s0.PredEdges, PredEdge{Kind: PredAuto, Alt: 2})
	if !d.HasBacktrack() {
		t.Error("auto pred is backtracking")
	}
}

func TestPredictTypes(t *testing.T) {
	d := New(5, "p")
	s0 := d.NewState()
	d.Start = s0
	s1 := d.NewState()
	s0.Edges[1] = s1
	s1.Edges[2] = d.Accept(1)
	s1.Edges[3] = d.Accept(2)

	alt, used, err := d.PredictTypes([]token.Type{1, 2})
	if err != nil || alt != 1 || used != 2 {
		t.Errorf("predict: alt=%d used=%d err=%v", alt, used, err)
	}
	if _, _, err := d.PredictTypes([]token.Type{1, 9}); err == nil {
		t.Error("expected no-viable error")
	}
	// EOF padding past the slice end.
	if _, _, err := d.PredictTypes([]token.Type{1}); err == nil {
		t.Error("expected error on EOF")
	}
}

func TestDotOutput(t *testing.T) {
	d := New(6, "dot")
	s0 := d.NewState()
	d.Start = s0
	s0.Edges[1] = d.Accept(1)
	s0.PredEdges = append(s0.PredEdges, PredEdge{Kind: PredTrue, Alt: 2})
	v := token.NewVocabulary()
	v.Define("A")
	out := d.Dot(v)
	for _, want := range []string{"digraph", "=>1", "true => 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("dot missing %q:\n%s", want, out)
		}
	}
}

func TestPredEdgeStrings(t *testing.T) {
	if got := (PredEdge{Kind: PredAuto, Alt: 3}).String(); got != "backtrack(alt 3) => 3" {
		t.Errorf("auto: %q", got)
	}
	if got := (PredEdge{Kind: PredSyn, SynID: 1, Alt: 2}).String(); got != "synpred2 => 2" {
		t.Errorf("syn: %q", got)
	}
}
