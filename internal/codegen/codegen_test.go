package codegen

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"llstar/internal/core"
	"llstar/internal/grammar"
	"llstar/internal/interp"
	"llstar/internal/meta"
)

// calcGrammar exercises every generated construct: backtracking (PEG
// mode), explicit synpreds, loops, optionals, sets, parameterized rules
// with precedence predicates, actions, and the lexer tables.
const calcGrammar = `
grammar Calc;
options { backtrack=true; memoize=true; }
prog : (stmt)+ ;
stmt : (ID '=')=> ID '=' sum ';'
     | sum ';'
     ;
sum  : prod (('+' | '-') prod)* ;
prod : atom (('*' | '/') atom)* ;
atom : INT
     | ID
     | '(' sum ')'
     | '-' atom
     ;
ID : ('a'..'z')+ ;
INT : ('0'..'9')+ ;
WS : (' '|'\t'|'\r'|'\n')+ { skip(); } ;
`

func analyzeGrammar(t *testing.T, src string) *core.Result {
	t.Helper()
	g, err := meta.Parse("gen.g", src)
	if err != nil {
		t.Fatalf("parse grammar: %v", err)
	}
	if err := grammar.FirstFatal(grammar.Validate(g)); err != nil {
		t.Fatalf("validate: %v", err)
	}
	res, err := core.Analyze(g, core.Options{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res
}

func TestGenerateFormats(t *testing.T) {
	res := analyzeGrammar(t, calcGrammar)
	src, err := Generate(res, Options{Package: "calc"})
	if err != nil {
		t.Fatalf("generate: %v\n----\n%s", err, clipped(src))
	}
	for _, want := range []string{
		"package calc",
		"func Tokenize(input string)",
		"func (this *Parser) ParseRule(name string)",
		"func (this *Parser) r_prog()",
		"var dfaStates = []int32{",
		"var lexNext = []int32{",
		"func (this *Parser) synpred(id int) bool",
	} {
		if !strings.Contains(string(src), want) {
			t.Errorf("generated source missing %q", want)
		}
	}
}

func clipped(b []byte) string {
	s := string(b)
	if len(s) > 4000 {
		return s[:4000] + "…"
	}
	return s
}

// TestGeneratedPrecedenceLoop compiles a generated parser for a
// left-recursion-rewritten grammar: parameterized rules, native
// precedence predicates, and PredTrue loop exits all flow through the
// generated code.
func TestGeneratedPrecedenceLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a Go module")
	}
	g, err := meta.Parse("e.g", `
grammar E;
e : e '*' e | e '+' e | INT ;
INT : ('0'..'9')+ ;
WS : (' ')+ { skip(); } ;
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := grammar.RewriteLeftRecursion(g, "e"); err != nil {
		t.Fatal(err)
	}
	if err := grammar.FirstFatal(grammar.Validate(g)); err != nil {
		t.Fatal(err)
	}
	res, err := core.Analyze(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := Generate(res, Options{Package: "main"})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}

	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module genprec\n\ngo 1.22\n")
	write("parser.go", string(src))
	write("main.go", `package main

import "fmt"

func main() {
	toks, err := Tokenize("1 + 2 * 3 + 4")
	if err != nil {
		fmt.Println("ERR lex")
		return
	}
	p := NewParser(toks)
	tree, err := p.ParseRule("e")
	if err != nil {
		fmt.Println("ERR parse:", err)
		return
	}
	fmt.Println(tree.String())
}
`)
	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run: %v\n%s", err, out)
	}
	got := strings.TrimSpace(string(out))
	want := "(e (e_ 1 + (e_ 2 * (e_ 3)) + (e_ 4)))"
	if got != want {
		t.Errorf("generated precedence parse:\n  got:  %s\n  want: %s", got, want)
	}
}

// TestGeneratedParserRuns compiles the generated parser with the real Go
// toolchain and checks it accepts/rejects the same inputs — with the same
// trees — as the interpreter.
func TestGeneratedParserRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a Go module")
	}
	res := analyzeGrammar(t, calcGrammar)
	src, err := Generate(res, Options{Package: "main"})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}

	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module genparser\n\ngo 1.22\n")
	write("parser.go", string(src))
	write("main.go", `package main

import (
	"bufio"
	"fmt"
	"os"
)

func main() {
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		toks, err := Tokenize(sc.Text())
		if err != nil {
			fmt.Println("ERR lex")
			continue
		}
		p := NewParser(toks)
		tree, err := p.ParseRule("prog")
		if err != nil {
			fmt.Println("ERR parse")
			continue
		}
		fmt.Println(tree.String())
	}
}
`)

	inputs := []string{
		"x = 1 + 2 * 3;",
		"x = (1 + 2) * 3; y = -4;",
		"1 + 2; foo;",
		"x = ;",      // invalid
		"((1 + 2);",  // invalid
		"a = b = 1;", // invalid in this grammar
	}

	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	cmd.Stdin = strings.NewReader(strings.Join(inputs, "\n"))
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run: %v\n%s", err, out)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != len(inputs) {
		t.Fatalf("expected %d result lines, got %d:\n%s", len(inputs), len(lines), out)
	}

	for i, input := range inputs {
		p := interp.New(res, interp.Options{BuildTree: true})
		tree, err := p.ParseString("prog", input)
		want := ""
		if err != nil {
			want = "ERR parse"
		} else {
			want = tree.String()
		}
		if lines[i] != want {
			t.Errorf("input %q:\n  generated: %s\n  interp:    %s", input, lines[i], want)
		}
	}
}
