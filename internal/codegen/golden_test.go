package codegen

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"llstar/internal/core"
	"llstar/internal/grammar"
	"llstar/internal/meta"
)

// goldenGrammars are the repo grammars with checked-in emitted-source
// snapshots under testdata/. Regenerate after an intentional emitter
// change with:
//
//	UPDATE_GOLDEN=1 go test ./internal/codegen -run TestGoldenSource
var goldenGrammars = []struct {
	file    string
	leftRec []string // rules to run the left-recursion rewrite on
}{
	{file: "figure1.g"},
	{file: "figure2.g"},
	{file: "calc.g", leftRec: []string{"e"}},
}

// generateRepoGrammar emits grammars/<file> exactly as `llstar gen`
// does: meta-parse, optional left-recursion rewrite, validate, analyze
// with default options, generate with the file base name as package.
func generateRepoGrammar(t *testing.T, file string, leftRec []string) []byte {
	t.Helper()
	path := filepath.Join("..", "..", "grammars", file)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	g, err := meta.Parse(path, string(data))
	if err != nil {
		t.Fatalf("parse %s: %v", file, err)
	}
	for _, rule := range leftRec {
		if err := grammar.RewriteLeftRecursion(g, rule); err != nil {
			t.Fatalf("leftrec %s: %v", rule, err)
		}
	}
	if err := grammar.FirstFatal(grammar.Validate(g)); err != nil {
		t.Fatalf("validate %s: %v", file, err)
	}
	res, err := core.Analyze(g, core.Options{})
	if err != nil {
		t.Fatalf("analyze %s: %v", file, err)
	}
	pkg := strings.TrimSuffix(file, ".g")
	src, err := Generate(res, Options{Package: pkg})
	if err != nil {
		t.Fatalf("generate %s: %v", file, err)
	}
	return src
}

// TestGoldenSource locks the emitted source byte-for-byte against the
// testdata snapshots, so any emitter change shows up as a reviewable
// golden diff rather than only as downstream behavior.
func TestGoldenSource(t *testing.T) {
	for _, gg := range goldenGrammars {
		gg := gg
		t.Run(gg.file, func(t *testing.T) {
			got := generateRepoGrammar(t, gg.file, gg.leftRec)
			golden := filepath.Join("testdata", strings.TrimSuffix(gg.file, ".g")+".golden")
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s (%d bytes)", golden, len(got))
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("emitted source for %s differs from %s; rerun with UPDATE_GOLDEN=1 and review the diff",
					gg.file, golden)
			}
		})
	}
}

// TestGoldenVetClean compiles each golden snapshot in a throwaway
// module and requires `go vet` to pass — the emitted code must be not
// just compilable but idiomatic enough to survive static analysis.
func TestGoldenVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go vet in a temp module")
	}
	for _, gg := range goldenGrammars {
		gg := gg
		t.Run(gg.file, func(t *testing.T) {
			t.Parallel()
			name := strings.TrimSuffix(gg.file, ".g")
			src, err := os.ReadFile(filepath.Join("testdata", name+".golden"))
			if err != nil {
				t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
			}
			dir := t.TempDir()
			writeFile := func(rel, content string) {
				t.Helper()
				if err := os.WriteFile(filepath.Join(dir, rel), []byte(content), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			writeFile("go.mod", "module vetgolden\n\ngo 1.22\n")
			writeFile("parser.go", string(src))
			cmd := exec.Command("go", "vet", ".")
			cmd.Dir = dir
			cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=-mod=mod")
			if out, err := cmd.CombinedOutput(); err != nil {
				t.Errorf("go vet on %s golden: %v\n%s", gg.file, err, out)
			}
		})
	}
}
