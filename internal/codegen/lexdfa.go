package codegen

import (
	"fmt"
	"sort"
	"strings"

	"llstar/internal/atn"
)

// maxLexDFAStates bounds ahead-of-time lexer subset construction; real
// grammars stay far below it, so hitting the cap means a pathological
// lexer and generation fails loudly rather than emitting a huge table.
const maxLexDFAStates = 8192

// lexDFA is the ahead-of-time determinization of a grammar's
// character-level ATN: the subset construction the interpreter performs
// lazily per input (lexrt) is run once at generation time over an
// alphabet partitioned into equivalence classes, producing dense tables
// the generated Tokenize walks with one array index per character.
type lexDFA struct {
	numClasses int
	// asciiClass maps runes < 128 straight to their class.
	asciiClass [128]uint16
	// classLo/classID describe classes for runes >= 128 as sorted
	// half-open intervals: the class of r is classID[i] for the last i
	// with classLo[i] <= r.
	classLo []int32
	classID []uint16
	// next is the dense transition table: next[state*numClasses+class],
	// -1 for dead ends. accept[state] is the lowest-index accepting
	// lexer rule, -1 for none. State 0 is the start state.
	next   []int32
	accept []int32
}

// buildLexDFA determinizes lm. A nil machine (no lexer rules) yields a
// single dead state so the generated Tokenize rejects any input.
func buildLexDFA(lm *atn.LexMachine) (*lexDFA, error) {
	d := &lexDFA{}
	if lm == nil {
		d.numClasses = 1
		d.next = []int32{-1}
		d.accept = []int32{-1}
		return d, nil
	}

	// Collect every non-epsilon character transition; their range
	// boundaries partition the alphabet so that within one interval all
	// transitions agree (wildcards and negated sets agree everywhere
	// their underlying ranges do).
	var trans []*atn.Trans
	for _, s := range lm.States {
		for _, tr := range s.Trans {
			if tr.Kind != atn.TEpsilon {
				trans = append(trans, tr)
			}
		}
	}
	const maxRune = 0x10FFFF
	bounds := map[rune]bool{0: true}
	for _, tr := range trans {
		switch tr.Kind {
		case atn.TChar:
			bounds[tr.Lo] = true
			if tr.Hi < maxRune {
				bounds[tr.Hi+1] = true
			}
		case atn.TCharSet:
			for _, rr := range tr.CharRanges {
				bounds[rr.Lo] = true
				if rr.Hi < maxRune {
					bounds[rr.Hi+1] = true
				}
			}
		}
	}
	starts := make([]rune, 0, len(bounds))
	for r := range bounds {
		if r >= 0 && r <= maxRune {
			starts = append(starts, r)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	// Intern each interval's transition signature as a class; the
	// representative rune of a class drives subset construction.
	classOf := make(map[string]uint16)
	var reprs []rune
	intervalClass := make([]uint16, len(starts))
	var sig strings.Builder
	for i, lo := range starts {
		sig.Reset()
		for _, tr := range trans {
			if tr.MatchesRune(lo) {
				sig.WriteByte('1')
			} else {
				sig.WriteByte('0')
			}
		}
		cls, ok := classOf[sig.String()]
		if !ok {
			cls = uint16(len(reprs))
			classOf[sig.String()] = cls
			reprs = append(reprs, lo)
		}
		intervalClass[i] = cls
	}
	d.numClasses = len(reprs)

	// Fill the ASCII fast path and the interval table for the rest.
	cls := func(r rune) uint16 {
		i := sort.Search(len(starts), func(i int) bool { return starts[i] > r }) - 1
		return intervalClass[i]
	}
	for r := rune(0); r < 128; r++ {
		d.asciiClass[r] = cls(r)
	}
	for i, lo := range starts {
		end := rune(maxRune)
		if i+1 < len(starts) {
			end = starts[i+1] - 1
		}
		if end < 128 {
			continue
		}
		d.classLo = append(d.classLo, int32(lo))
		d.classID = append(d.classID, intervalClass[i])
	}
	if len(d.classLo) == 0 { // all-ASCII alphabet: one catch-all interval
		d.classLo = []int32{128}
		d.classID = []uint16{cls(128)}
	}

	// Subset construction over the class alphabet.
	type setState struct{ members []*atn.State }
	intern := make(map[string]int32)
	var sets []setState
	key := func(members []*atn.State) string {
		var b strings.Builder
		for _, s := range members {
			fmt.Fprintf(&b, "%d.", s.ID)
		}
		return b.String()
	}
	add := func(members []*atn.State) int32 {
		sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
		k := key(members)
		if id, ok := intern[k]; ok {
			return id
		}
		id := int32(len(sets))
		intern[k] = id
		sets = append(sets, setState{members: members})
		return id
	}
	add(append([]*atn.State(nil), lm.Closure(lm.Start)...))

	seen := make([]int, len(lm.States))
	gen := 0
	for si := 0; si < len(sets); si++ {
		if len(sets) > maxLexDFAStates {
			return nil, fmt.Errorf("codegen: lexer DFA exceeds %d states", maxLexDFAStates)
		}
		members := sets[si].members
		best := -1
		for _, s := range members {
			if r := lm.AcceptRule(s); r >= 0 && (best < 0 || r < best) {
				best = r
			}
		}
		d.accept = append(d.accept, int32(best))
		row := make([]int32, d.numClasses)
		for c := 0; c < d.numClasses; c++ {
			gen++
			var move []*atn.State
			for _, s := range members {
				for _, tr := range s.Trans {
					if tr.Kind == atn.TEpsilon || !tr.MatchesRune(reprs[c]) {
						continue
					}
					for _, t := range lm.Closure(tr.To) {
						if seen[t.ID] != gen {
							seen[t.ID] = gen
							move = append(move, t)
						}
					}
				}
			}
			if len(move) == 0 {
				row[c] = -1
			} else {
				row[c] = add(move)
			}
		}
		d.next = append(d.next, row...)
	}
	return d, nil
}
