package codegen

import (
	"fmt"
	"strings"

	"llstar/internal/grammar"
)

// altFuncJob queues a decision's alternative bodies for emission.
type altFuncJob struct {
	decision int
	alts     []*grammar.Alt
	argName  string
	desc     string
}

// emitRule renders a parser rule: a wrapper handling tree nodes and
// memoization, a body method, and (transitively) one method per decision
// alternative.
func (g *generator) emitRule(r *grammar.Rule) error {
	argName := ruleArgName(r)

	// Wrapper.
	g.pf("\n// r_%s parses rule: %s\n", r.Name, strings.ReplaceAll(r.RuleText(), "\n", " "))
	// Rules opting out via options {memoize=false;} (and parameterized
	// rules, whose result depends on the argument) are never memoized,
	// mirroring the interpreter's gate.
	memoizable := r.OptionBool("memoize", true)
	if argName == "" {
		g.pf("func (this *Parser) r_%s() error {\n", r.Name)
		if memoizable {
			g.pf("\tif handled, err := this.memoGet(%d); handled {\n\t\treturn err\n\t}\n", r.Index)
		}
		g.pf("\tprev := this.enterRule(%q)\n", r.Name)
		if memoizable {
			g.pf("\tstart := this.pos\n")
		}
		g.pf("\terr := this.body_%s()\n", r.Name)
		g.pf("\tthis.exitRule(prev)\n")
		if memoizable {
			g.pf("\tthis.memoPut(%d, start, err)\n", r.Index)
		}
		g.pf("\treturn err\n}\n")
		g.pf("\nfunc (this *Parser) body_%s() error {\n", r.Name)
	} else {
		g.pf("func (this *Parser) r_%s(%s int) error {\n", r.Name, argName)
		g.pf("\tprev := this.enterRule(%q)\n", r.Name)
		g.pf("\terr := this.body_%s(%s)\n", r.Name, argName)
		g.pf("\tthis.exitRule(prev)\n")
		g.pf("\treturn err\n}\n")
		g.pf("\nfunc (this *Parser) body_%s(%s int) error {\n", r.Name, argName)
	}

	if len(r.Alts) == 1 {
		if err := g.emitSeq(r.Alts[0].Elems, argName, 1); err != nil {
			return err
		}
	} else {
		dID, ok := g.m.RuleDecisionID[r.Name]
		if !ok {
			return fmt.Errorf("codegen: no decision recorded for rule %s", r.Name)
		}
		g.emitDispatch(dID, len(r.Alts), argName, 1)
		g.queueAltFuncs(dID, r.Alts, argName, "rule "+r.Name)
	}
	g.pf("\treturn nil\n}\n")

	return g.drainAltFuncs()
}

// emitDispatch renders predict + switch over alternative methods.
func (g *generator) emitDispatch(dID, nAlts int, argName string, depth int) {
	ind := strings.Repeat("\t", depth)
	g.pf("%s{\n", ind)
	g.pf("%s\talt, err := this.predict(%d, %s)\n", ind, dID, argExpr(argName))
	g.pf("%s\tif err != nil {\n%s\t\treturn err\n%s\t}\n", ind, ind, ind)
	g.pf("%s\tswitch alt {\n", ind)
	for i := 1; i <= nAlts; i++ {
		g.pf("%s\tcase %d:\n", ind, i)
		g.pf("%s\t\tif err := this.a%d_%d(%s); err != nil {\n%s\t\t\treturn err\n%s\t\t}\n",
			ind, dID, i, argExpr(argName), ind, ind)
	}
	g.pf("%s\tdefault:\n%s\t\treturn this.noViable(%d, this.pos)\n", ind, ind, dID)
	g.pf("%s\t}\n%s}\n", ind, ind)
}

func argExpr(argName string) string {
	if argName == "" {
		return "0"
	}
	return argName
}

func (g *generator) queueAltFuncs(dID int, alts []*grammar.Alt, argName, desc string) {
	if g.emittedAlt == nil {
		g.emittedAlt = map[int]bool{}
	}
	if g.emittedAlt[dID] {
		return
	}
	g.emittedAlt[dID] = true
	g.altJobs = append(g.altJobs, altFuncJob{decision: dID, alts: alts, argName: argName, desc: desc})
}

func (g *generator) drainAltFuncs() error {
	for len(g.altJobs) > 0 {
		job := g.altJobs[0]
		g.altJobs = g.altJobs[1:]
		for i, alt := range job.alts {
			g.pf("\n// a%d_%d matches alternative %d of %s.\n", job.decision, i+1, i+1, job.desc)
			g.pf("func (this *Parser) a%d_%d(%s int) error {\n", job.decision, i+1, argOrBlank(job.argName))
			if err := g.emitSeq(alt.Elems, job.argName, 1); err != nil {
				return err
			}
			g.pf("\treturn nil\n}\n")
		}
	}
	return nil
}

// emitSeq renders a sequence of elements.
func (g *generator) emitSeq(elems []grammar.Element, argName string, depth int) error {
	for _, e := range elems {
		if err := g.emitElement(e, argName, depth); err != nil {
			return err
		}
	}
	return nil
}

func (g *generator) emitElement(e grammar.Element, argName string, depth int) error {
	ind := strings.Repeat("\t", depth)
	switch e := e.(type) {
	case *grammar.TokenRef:
		g.pf("%sif err := this.match(%s); err != nil {\n%s\treturn err\n%s}\n",
			ind, g.tokenConst[e.Type], ind, ind)

	case *grammar.NotToken:
		parts := make([]string, len(e.Types))
		for i, t := range e.Types {
			parts[i] = g.tokenConst[t]
		}
		g.pf("%sif err := this.matchNot(%s); err != nil {\n%s\treturn err\n%s}\n",
			ind, strings.Join(parts, ", "), ind, ind)

	case *grammar.Wildcard:
		g.pf("%sif err := this.matchAny(); err != nil {\n%s\treturn err\n%s}\n", ind, ind, ind)

	case *grammar.RuleRef:
		target := g.gram.Rule(e.Name)
		if target == nil || target.IsLexer {
			return fmt.Errorf("codegen: unresolved rule reference %s", e.Name)
		}
		if target.Args != "" {
			arg := strings.TrimSpace(e.ArgText)
			if arg == "" {
				arg = "0"
			}
			g.pf("%sif err := this.r_%s(%s); err != nil {\n%s\treturn err\n%s}\n", ind, e.Name, arg, ind, ind)
		} else {
			g.pf("%sif err := this.r_%s(); err != nil {\n%s\treturn err\n%s}\n", ind, e.Name, ind, ind)
		}

	case *grammar.SemPred:
		id, ok := g.semPredIDs[e]
		if !ok {
			return fmt.Errorf("codegen: unregistered semantic predicate {%s}?", e.Text)
		}
		g.pf("%sif !this.sempred(%d, %s) {\n%s\treturn this.failedPred(%q)\n%s}\n",
			ind, id, argExpr(argName), ind, e.Text, ind)

	case *grammar.Action:
		// Action text is spliced verbatim as Go; mutators are gated off
		// during speculation, {{...}} actions always run (Section 4.3).
		if e.AlwaysExec {
			g.pf("%s{\n%s\t%s\n%s}\n", ind, ind, e.Text, ind)
		} else {
			g.pf("%sif this.spec == 0 {\n%s\t%s\n%s}\n", ind, ind, e.Text, ind)
		}

	case *grammar.SynPred:
		g.pf("%s// syntactic predicate %s resolved during prediction\n", ind, "(α)=>")

	case *grammar.Block:
		return g.emitBlockBody(e, argName, depth)

	default:
		return fmt.Errorf("codegen: unsupported element %T in parser rule", e)
	}
	return nil
}

func (g *generator) emitBlockBody(blk *grammar.Block, argName string, depth int) error {
	ind := strings.Repeat("\t", depth)
	ids := g.m.BlockDecisionIDs[blk]
	switch blk.Op {
	case grammar.OpNone:
		if len(blk.Alts) == 1 {
			return g.emitSeq(blk.Alts[0].Elems, argName, depth)
		}
		if len(ids) == 0 {
			return fmt.Errorf("codegen: no decision for block at %s", blk.Pos)
		}
		g.emitDispatch(ids[0], len(blk.Alts), argName, depth)
		g.queueAltFuncs(ids[0], blk.Alts, argName, fmt.Sprintf("subrule at %s", blk.Pos))

	case grammar.OpOptional:
		if len(ids) == 0 {
			return fmt.Errorf("codegen: no decision for block at %s", blk.Pos)
		}
		dID := ids[0]
		g.pf("%s{\n", ind)
		g.pf("%s\talt, err := this.predict(%d, %s)\n", ind, dID, argExpr(argName))
		g.pf("%s\tif err != nil {\n%s\t\treturn err\n%s\t}\n", ind, ind, ind)
		g.pf("%s\tswitch alt {\n", ind)
		for i := 1; i <= len(blk.Alts); i++ {
			g.pf("%s\tcase %d:\n", ind, i)
			g.pf("%s\t\tif err := this.a%d_%d(%s); err != nil {\n%s\t\t\treturn err\n%s\t\t}\n",
				ind, dID, i, argExpr(argName), ind, ind)
		}
		g.pf("%s\t}\n%s}\n", ind, ind) // exit alternative: fall through
		g.queueAltFuncs(dID, blk.Alts, argName, fmt.Sprintf("optional subrule at %s", blk.Pos))

	case grammar.OpStar:
		if len(ids) == 0 {
			return fmt.Errorf("codegen: no decision for block at %s", blk.Pos)
		}
		g.emitLoop(ids[0], blk, argName, depth)

	case grammar.OpPlus:
		// Desugared as body-once + star loop, mirroring the ATN.
		if len(ids) == 0 {
			return fmt.Errorf("codegen: no decision for block at %s", blk.Pos)
		}
		loopID := ids[len(ids)-1]
		if len(ids) == 2 {
			g.emitDispatch(ids[0], len(blk.Alts), argName, depth)
			g.queueAltFuncs(ids[0], blk.Alts, argName, fmt.Sprintf("plus subrule at %s", blk.Pos))
		} else {
			if err := g.emitSeq(blk.Alts[0].Elems, argName, depth); err != nil {
				return err
			}
		}
		g.emitLoop(loopID, blk, argName, depth)
	}
	return nil
}

func (g *generator) emitLoop(dID int, blk *grammar.Block, argName string, depth int) {
	ind := strings.Repeat("\t", depth)
	exit := len(blk.Alts) + 1
	g.pf("%sfor {\n", ind)
	g.pf("%s\talt, err := this.predict(%d, %s)\n", ind, dID, argExpr(argName))
	g.pf("%s\tif err != nil {\n%s\t\treturn err\n%s\t}\n", ind, ind, ind)
	g.pf("%s\tif alt == %d {\n%s\t\tbreak\n%s\t}\n", ind, exit, ind, ind)
	g.pf("%s\tswitch alt {\n", ind)
	for i := 1; i <= len(blk.Alts); i++ {
		g.pf("%s\tcase %d:\n", ind, i)
		g.pf("%s\t\tif err := this.a%d_%d(%s); err != nil {\n%s\t\t\treturn err\n%s\t\t}\n",
			ind, dID, i, argExpr(argName), ind, ind)
	}
	g.pf("%s\tdefault:\n%s\t\treturn this.noViable(%d, this.pos)\n", ind, ind, dID)
	g.pf("%s\t}\n%s}\n", ind, ind)
	g.queueAltFuncs(dID, blk.Alts, argName, fmt.Sprintf("loop subrule at %s", blk.Pos))
}
