package codegen

import (
	"bytes"
	"regexp"
	"testing"
)

// collideGrammar makes sanitize collide on purpose: the literal 'x2e'
// keeps its letters verbatim, while '.' escapes to the same "x2e", so
// both map to TLit_x2e before de-duplication.
const collideGrammar = `
grammar Collide;
a : 'x2e' | '.' | '!' | 'x21' ;
WS : (' '|'\t'|'\r'|'\n')+ { skip(); } ;
`

// TestTokenConstCollision asserts colliding token names get
// deterministic numeric suffixes (first in vocabulary order keeps the
// plain name, later ones get _2, _3, ...) instead of silently aliasing
// two token types to one Go identifier.
func TestTokenConstCollision(t *testing.T) {
	res := analyzeGrammar(t, collideGrammar)
	src, err := Generate(res, Options{Package: "collide"})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	for _, pair := range [][2]string{
		{"TLit_x2e", "TLit_x2e_2"}, // 'x2e' vs '.'
		{"TLit_x21", "TLit_x21_2"}, // '!' vs 'x21'
	} {
		plain, suffixed := pair[0], pair[1]
		// Each identifier must be declared exactly once.
		for _, ident := range []string{plain, suffixed} {
			decl := regexp.MustCompile(`(?m)^\t` + ident + `\s+= -?\d+`)
			if n := len(decl.FindAll(src, -1)); n != 1 {
				t.Errorf("token const %s declared %d times, want 1", ident, n)
			}
		}
	}
	// De-duplication must be deterministic: a second generation emits
	// identical bytes.
	again, err := Generate(analyzeGrammar(t, collideGrammar), Options{Package: "collide"})
	if err != nil {
		t.Fatalf("regenerate: %v", err)
	}
	if !bytes.Equal(src, again) {
		t.Error("token-const de-duplication is not deterministic across generations")
	}
}
