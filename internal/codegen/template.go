package codegen

// runtimeTemplate is the fixed portion of every generated parser: token
// and tree types, the table-driven lexer simulator, and the table-driven
// LL(*) prediction engine (DFA simulation, speculation, memoization).
// The generator appends grammar-specific tables and rule methods.
const runtimeTemplate = `
// ===================== generated runtime =====================

// Token is a lexed token.
type Token struct {
	Type int
	Text string
	Line int
	Col  int
}

// EOF is the end-of-input token type.
const EOF = -1

// Node is a parse-tree node: a rule node or a token leaf.
type Node struct {
	Rule     string
	Tok      *Token
	Children []*Node
}

// String renders the tree as an s-expression.
func (n *Node) String() string {
	if n == nil {
		return "nil"
	}
	if n.Tok != nil {
		return n.Tok.Text
	}
	s := "(" + n.Rule
	for _, c := range n.Children {
		s += " " + c.String()
	}
	return s + ")"
}

// SyntaxError reports a parse or lex failure.
type SyntaxError struct {
	Line, Col int
	Msg       string
	Text      string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("%d:%d: %s at %q", e.Line, e.Col, e.Msg, e.Text)
}

// ---- lexer simulation ----

type lexTrans struct {
	kind   byte // 0=eps 1=char 2=set 3=wild
	lo, hi rune
	setOff int
	setLen int
	neg    bool
	to     int
}

func lexMatches(t lexTrans, r rune) bool {
	switch t.kind {
	case 1:
		return r >= t.lo && r <= t.hi
	case 2:
		in := false
		for i := t.setOff; i < t.setOff+t.setLen; i++ {
			if r >= lexRanges[i][0] && r <= lexRanges[i][1] {
				in = true
				break
			}
		}
		if t.neg {
			return !in
		}
		return in
	case 3:
		return true
	}
	return false
}

func lexClosure(out []int, s int, seen map[int]bool) []int {
	if seen[s] {
		return out
	}
	seen[s] = true
	out = append(out, s)
	for _, t := range lexStates[s] {
		if t.kind == 0 {
			out = lexClosure(out, t.to, seen)
		}
	}
	return out
}

// Tokenize converts input into tokens using the generated lexer tables
// (maximal munch; earliest-declared rule wins ties; skip rules dropped).
func Tokenize(input string) ([]Token, error) {
	runes := []rune(input)
	var toks []Token
	pos, line, col := 0, 1, 1
	for pos < len(runes) {
		cur := lexClosure(nil, lexStart, map[int]bool{})
		bestEnd, bestRule := -1, -1
		record := func(end int) {
			rule := -1
			for _, s := range cur {
				if r, ok := lexAccepts[s]; ok && (rule < 0 || r < rule) {
					rule = r
				}
			}
			if rule >= 0 {
				bestEnd, bestRule = end, rule
			}
		}
		record(pos)
		for i := pos; i < len(runes); i++ {
			var next []int
			seen := map[int]bool{}
			for _, s := range cur {
				for _, t := range lexStates[s] {
					if t.kind != 0 && lexMatches(t, runes[i]) {
						next = lexClosure(next, t.to, seen)
					}
				}
			}
			if len(next) == 0 {
				break
			}
			cur = next
			record(i + 1)
		}
		if bestRule < 0 {
			return toks, &SyntaxError{Line: line, Col: col, Msg: "cannot match character", Text: string(runes[pos])}
		}
		text := string(runes[pos:bestEnd])
		startLine, startCol := line, col
		for _, r := range text {
			if r == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		pos = bestEnd
		info := lexRules[bestRule]
		if info.skip {
			continue
		}
		toks = append(toks, Token{Type: info.tokenType, Text: text, Line: startLine, Col: startCol})
	}
	toks = append(toks, Token{Type: EOF, Line: line, Col: col})
	return toks, nil
}

// ---- parser engine ----

type dfaEdge struct{ sym, to int }

type predEdge struct {
	kind byte // 0=sem 1=syn 2=auto 3=true
	id   int
	alt  int
}

type dfaState struct {
	accept int // predicted alternative, 0 if none
	def    int // default edge target, -1 if none
	edges  []dfaEdge
	preds  []predEdge
}

// Parser is the generated LL(*) parser.
type Parser struct {
	toks []Token
	pos  int
	spec int

	// BuildTree enables parse-tree construction.
	BuildTree bool
	// Memoize enables the packrat cache for speculative parses.
	Memoize bool
	// State is arbitrary user state for predicates/actions.
	State any

	memo []map[int]int
	node *Node
}

// NewParser returns a parser over a token slice (use Tokenize to produce
// one from text). Tree building and memoization default on.
func NewParser(toks []Token) *Parser {
	return &Parser{toks: toks, BuildTree: true, Memoize: true, memo: make([]map[int]int, numRules)}
}

func (this *Parser) la(i int) int { return this.lt(i).Type }

func (this *Parser) lt(i int) Token {
	idx := this.pos + i - 1
	if idx >= len(this.toks) {
		idx = len(this.toks) - 1
	}
	return this.toks[idx]
}

func (this *Parser) consume() Token {
	t := this.lt(1)
	if t.Type != EOF {
		this.pos++
	}
	if this.spec == 0 && this.node != nil {
		tok := t
		this.node.Children = append(this.node.Children, &Node{Tok: &tok})
	}
	return t
}

func (this *Parser) match(t int) error {
	if this.la(1) != t {
		return this.errf("expecting %s", tokenNames[t])
	}
	this.consume()
	return nil
}

func (this *Parser) matchAny() error {
	if this.la(1) == EOF {
		return this.errf("unexpected end of input")
	}
	this.consume()
	return nil
}

func (this *Parser) matchNot(types ...int) error {
	cur := this.la(1)
	if cur == EOF {
		return this.errf("unexpected end of input")
	}
	for _, t := range types {
		if cur == t {
			return this.errf("unexpected %s", tokenNames[t])
		}
	}
	this.consume()
	return nil
}

func (this *Parser) errf(format string, args ...any) error {
	t := this.lt(1)
	return &SyntaxError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...), Text: t.Text}
}

func (this *Parser) noViable(d int) error {
	return this.errf("no viable alternative (decision %d)", d)
}

func (this *Parser) failedPred(text string) error {
	return this.errf("failed predicate {%s}?", text)
}

// enterRule pushes a tree node; exitRule restores the previous one.
func (this *Parser) enterRule(name string) *Node {
	if this.spec > 0 || !this.BuildTree {
		return nil
	}
	n := &Node{Rule: name}
	if this.node != nil {
		this.node.Children = append(this.node.Children, n)
	}
	prev := this.node
	this.node = n
	return prev
}

func (this *Parser) exitRule(prev *Node) {
	if this.spec > 0 || !this.BuildTree {
		return
	}
	this.node = prev
}

const memoFailed = -2

func (this *Parser) memoGet(rule int) (bool, error) {
	if this.spec == 0 || !this.Memoize || this.memo[rule] == nil {
		return false, nil
	}
	stop, ok := this.memo[rule][this.pos]
	if !ok {
		return false, nil
	}
	if stop == memoFailed {
		return true, this.errf("memoized failure")
	}
	this.pos = stop
	return true, nil
}

func (this *Parser) memoPut(rule, start int, err error) {
	if this.spec == 0 || !this.Memoize {
		return
	}
	if this.memo[rule] == nil {
		this.memo[rule] = make(map[int]int)
	}
	if err != nil {
		this.memo[rule][start] = memoFailed
	} else {
		this.memo[rule][start] = this.pos
	}
}

// trying speculatively runs fn with mutators off, then rewinds.
func (this *Parser) trying(fn func() error) bool {
	start := this.pos
	this.spec++
	err := fn()
	this.spec--
	this.pos = start
	return err == nil
}

// predict runs decision d's lookahead DFA against the token stream,
// falling over to predicate/speculation edges where the analysis placed
// them. arg is the enclosing rule's parameter for precedence predicates.
func (this *Parser) predict(d, arg int) (int, error) {
	states := dfaTables[d]
	s := 0
	i := 0
	for {
		st := &states[s]
		if st.accept > 0 {
			return st.accept, nil
		}
		if len(st.edges) > 0 || st.def >= 0 {
			sym := this.la(i + 1)
			next := -1
			for _, e := range st.edges {
				if e.sym == sym {
					next = e.to
					break
				}
			}
			if next < 0 && st.def >= 0 && sym != EOF {
				next = st.def
			}
			if next >= 0 {
				i++
				s = next
				continue
			}
		}
		if len(st.preds) > 0 {
			for _, e := range st.preds {
				switch e.kind {
				case 0:
					if this.sempred(e.id, arg) {
						return e.alt, nil
					}
				case 1:
					if this.synpred(e.id) {
						return e.alt, nil
					}
				case 2:
					if this.tryAlt(d, e.alt, arg) {
						return e.alt, nil
					}
				case 3:
					return e.alt, nil
				}
			}
			return 0, this.noViable(d)
		}
		return 0, this.noViable(d)
	}
}
`
