package llk

import (
	"testing"

	"llstar/internal/core"
	"llstar/internal/grammar"
	"llstar/internal/meta"
	"llstar/internal/token"
)

func load(t *testing.T, src string) *core.Result {
	t.Helper()
	g, err := meta.Parse("t.g", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := grammar.FirstFatal(grammar.Validate(g)); err != nil {
		t.Fatalf("validate: %v", err)
	}
	res, err := core.Analyze(g, core.Options{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res
}

type sliceLook struct{ ts []token.Type }

func (s sliceLook) LA(i int) token.Type {
	if i-1 < len(s.ts) {
		return s.ts[i-1]
	}
	return token.EOF
}

const lpg = `
grammar LPG;
a : b (A)+ X
  | c (A)+ Y
  ;
b : ;
c : ;
A : 'a' ;
X : 'x' ;
Y : 'y' ;
`

// The LPG anecdote: no fixed k separates the alternatives, so for inputs
// with more than k A's the approximation leaves both alternatives viable.
func TestFixedKCannotDecide(t *testing.T) {
	res := load(t, lpg)
	m := res.Machine
	dec := m.Decisions[0] // rule a decision is built first
	if dec.Rule.Name != "a" {
		t.Fatalf("expected rule a decision first, got %s", dec.Rule.Name)
	}
	vb := res.Grammar.Vocab
	A, X := vb.Lookup("A"), vb.Lookup("X")

	for _, k := range []int{1, 2, 4, 8} {
		tbl := Compute(m, dec, k)
		// k+2 A's then X: undecidable at this k.
		var ts []token.Type
		for i := 0; i < k+2; i++ {
			ts = append(ts, A)
		}
		ts = append(ts, X)
		alt, viable, _ := tbl.Predict(sliceLook{ts})
		if alt != 0 || len(viable) != 2 {
			t.Errorf("k=%d: expected undecided {1,2}, got alt=%d viable=%v", k, alt, viable)
		}
		// X within range: decidable (approximately).
		ts = []token.Type{A, X}
		alt, _, _ = tbl.Predict(sliceLook{ts})
		if k >= 2 && alt != 1 {
			t.Errorf("k=%d: A X should pick alt 1, got %d", k, alt)
		}
	}
}

// Linear approximation loses inter-depth correlation: a grammar LL(2) by
// sequences is not separable by per-depth sets.
func TestLinearApproximationWeakness(t *testing.T) {
	res := load(t, `
grammar W;
s : A B | B A ;
A : 'a' ;
B : 'b' ;
`)
	m := res.Machine
	dec := m.Decisions[0]
	vb := res.Grammar.Vocab
	A, B := vb.Lookup("A"), vb.Lookup("B")
	tbl := Compute(m, dec, 2)
	// Depth-1 sets: {A} vs {B} — separable. Fine at k=1 already.
	if alt, _, _ := tbl.Predict(sliceLook{[]token.Type{A, B}}); alt != 1 {
		t.Errorf("A B: want 1, got %d", alt)
	}
	// Now a genuinely correlated case: (A B | A A) vs (A A | A B) is
	// identical per-depth {A}×{A,B}, so approximation cannot decide.
	res2 := load(t, `
grammar W2;
s : x | y ;
x : A B | A A ;
y : A A | A B ;
A : 'a' ;
B : 'b' ;
`)
	dec2 := res2.Machine.Decisions[0]
	if dec2.Rule.Name != "s" {
		for _, d := range res2.Machine.Decisions {
			if d.Rule.Name == "s" {
				dec2 = d
			}
		}
	}
	tbl2 := Compute(res2.Machine, dec2, 4)
	alt, viable, _ := tbl2.Predict(sliceLook{[]token.Type{res2.Grammar.Vocab.Lookup("A"), res2.Grammar.Vocab.Lookup("B")}})
	if alt != 0 || len(viable) != 2 {
		t.Errorf("correlated lookahead should stay undecided, got alt=%d viable=%v", alt, viable)
	}
}

// Exact k-tuple enumeration grows with k for the LPG grammar, unlike the
// O(|T|·k) linear approximation.
func TestExactTupleGrowth(t *testing.T) {
	res := load(t, `
grammar G;
s : (A | B)* X | (A | B)* Y ;
A : 'a' ;
B : 'b' ;
X : 'x' ;
Y : 'y' ;
`)
	dec := res.Machine.Decisions[0]
	if dec.Rule.Name != "s" {
		t.Fatalf("unexpected first decision %s", dec.Rule.Name)
	}
	n4, _ := ExactTupleCount(res.Machine, dec, 4, 1_000_000)
	n8, hit := ExactTupleCount(res.Machine, dec, 8, 1_000_000)
	if n8 <= n4*4 && !hit {
		t.Errorf("expected exponential tuple growth: k=4 → %d, k=8 → %d", n4, n8)
	}
}
