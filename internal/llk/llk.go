// Package llk implements the fixed-k, linear-approximate lookahead
// decisions of ANTLR v2 (Parr's PhD "linear approximate lookahead"): for
// each decision and each depth d ≤ k it computes the *set* of tokens that
// can appear at depth d for each alternative, ignoring correlations
// between depths. Space is O(|T|·k) instead of O(|T|^k), at the cost of
// approximation: decisions a full LL(k) (or LL(*)) parser could make
// deterministically may stay ambiguous and force speculation.
//
// The interpreter uses these tables in "v2 mode" for the Section 6.2
// comparison (ANTLR v3 LL(*) parsers are ~2.5x faster than v2 parsers).
package llk

import (
	"strconv"

	"llstar/internal/atn"
	"llstar/internal/token"
)

// Tables holds the linear-approximate lookahead sets for one decision.
type Tables struct {
	K int
	// la[d-1][alt-1] is the approximate token set at depth d for the
	// alternative; anyTok[d-1][alt-1] marks wildcard/unknown.
	la     [][]*token.Set
	anyTok [][]bool
}

// Lookahead is the minimal stream view Predict needs.
type Lookahead interface {
	LA(i int) token.Type
}

// Compute builds approximate depth-wise lookahead sets for a decision.
func Compute(m *atn.Machine, dec *atn.Decision, k int) *Tables {
	t := &Tables{K: k}
	t.la = make([][]*token.Set, k)
	t.anyTok = make([][]bool, k)
	for d := 0; d < k; d++ {
		t.la[d] = make([]*token.Set, dec.NAlts)
		t.anyTok[d] = make([]bool, dec.NAlts)
	}
	for alt := 0; alt < dec.NAlts; alt++ {
		frontier := closure(m, []*atn.State{dec.AltStart[alt]})
		for d := 0; d < k; d++ {
			set := token.NewSet()
			anyTok := false
			var next []*atn.State
			for _, s := range frontier {
				for _, tr := range s.Trans {
					switch tr.Kind {
					case atn.TAtom:
						set.Add(tr.Sym)
						next = append(next, tr.To)
					case atn.TSet:
						if tr.Negated {
							anyTok = true
						} else {
							set.AddSet(tr.Set)
						}
						next = append(next, tr.To)
					case atn.TWildcard:
						anyTok = true
						next = append(next, tr.To)
					}
				}
			}
			t.la[d][alt] = set
			t.anyTok[d][alt] = anyTok
			frontier = closure(m, next)
			if len(frontier) == 0 {
				for rest := d + 1; rest < k; rest++ {
					t.la[rest][alt] = token.NewSet()
				}
				break
			}
		}
	}
	return t
}

// closure expands states over epsilon-ish and rule edges without tracking
// a call stack: rule invocations jump into the callee, and rule stops
// chase every call site (plus EOF when there are none) — the classic
// FOLLOW approximation.
func closure(m *atn.Machine, states []*atn.State) []*atn.State {
	seen := map[int]bool{}
	var out []*atn.State
	var stack []*atn.State
	stack = append(stack, states...)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[s.ID] {
			continue
		}
		seen[s.ID] = true
		if s.Stop {
			refs := []*atn.State(nil)
			if s.RuleIndex >= 0 && s.RuleIndex < len(m.FollowRefs) {
				refs = m.FollowRefs[s.RuleIndex]
			}
			if len(refs) == 0 {
				stack = append(stack, m.EOFState())
			}
			stack = append(stack, refs...)
			continue
		}
		emits := false
		for _, tr := range s.Trans {
			switch tr.Kind {
			case atn.TRule:
				stack = append(stack, tr.Start)
			case atn.TEpsilon, atn.TPred, atn.TAction:
				stack = append(stack, tr.To)
			default:
				emits = true
			}
		}
		if emits {
			out = append(out, s)
		}
	}
	return out
}

// Predict filters alternatives depth by depth. It returns the chosen
// alternative if exactly one survives (alt > 0), otherwise alt == 0 and
// the ordered surviving candidates, plus the number of tokens examined.
func (t *Tables) Predict(look Lookahead) (alt int, viable []int, depth int) {
	for a := 1; a <= len(t.la[0]); a++ {
		viable = append(viable, a)
	}
	for d := 0; d < t.K; d++ {
		tt := look.LA(d + 1)
		var filtered []int
		for _, a := range viable {
			if t.anyTok[d][a-1] || t.la[d][a-1].Contains(tt) ||
				(tt == token.EOF && t.la[d][a-1].Contains(token.EOF)) {
				filtered = append(filtered, a)
			}
		}
		depth = d + 1
		if len(filtered) == 0 {
			// Nothing matches at this depth: keep the previous viable
			// set; the caller decides (speculate or report).
			return 0, viable, depth
		}
		viable = filtered
		if len(viable) == 1 {
			return viable[0], viable, depth
		}
	}
	return 0, viable, t.K
}

// ExactTupleCount enumerates the distinct exact k-sequences of lookahead
// for a decision, up to limit — demonstrating why full LL(k)/LALR(k)
// k-tuple storage is exponential (the Section 2 LPG anecdote). It returns
// the count and whether the limit was hit.
func ExactTupleCount(m *atn.Machine, dec *atn.Decision, k, limit int) (int, bool) {
	tuples := map[string]bool{}
	var rec func(states []*atn.State, prefix string, depth int) bool
	rec = func(states []*atn.State, prefix string, depth int) bool {
		if depth == k {
			tuples[prefix] = true
			return len(tuples) < limit
		}
		// Partition by next token.
		byTok := map[token.Type][]*atn.State{}
		for _, s := range states {
			for _, tr := range s.Trans {
				switch tr.Kind {
				case atn.TAtom:
					byTok[tr.Sym] = append(byTok[tr.Sym], tr.To)
				case atn.TSet:
					for _, tt := range tr.Set.Types() {
						if !tr.Negated {
							byTok[tt] = append(byTok[tt], tr.To)
						}
					}
				}
			}
		}
		for tt, next := range byTok {
			if !rec(closure(m, next), prefix+","+strconv.Itoa(int(tt)), depth+1) {
				return false
			}
		}
		return true
	}
	for alt := 0; alt < dec.NAlts; alt++ {
		if !rec(closure(m, []*atn.State{dec.AltStart[alt]}), "", 0) {
			return len(tuples), true
		}
	}
	return len(tuples), false
}
