package grammar

import (
	"fmt"
	"sort"
)

// Issue is a validation diagnostic.
type Issue struct {
	Rule    string
	Message string
	Fatal   bool
}

func (i Issue) String() string {
	kind := "warning"
	if i.Fatal {
		kind = "error"
	}
	if i.Rule != "" {
		return fmt.Sprintf("%s: rule %s: %s", kind, i.Rule, i.Message)
	}
	return fmt.Sprintf("%s: %s", kind, i.Message)
}

// Validate checks the grammar for structural problems:
//
//   - references to undefined rules (fatal)
//   - parser rules referencing lexer fragments (fatal)
//   - left-recursive parser rules, direct or indirect (fatal — the paper's
//     strategy requires non-left-recursive grammars; see RewriteLeftRecursion
//     for the immediate-left-recursion escape hatch)
//   - unreachable parser rules (warning)
//   - empty rules with multiple empty alternatives (warning)
//
// It returns all issues found; the grammar is usable iff none is fatal.
func Validate(g *Grammar) []Issue {
	var issues []Issue
	issues = append(issues, checkRefs(g)...)
	if hasFatal(issues) {
		// Left-recursion analysis needs resolvable references.
		return issues
	}
	issues = append(issues, checkLeftRecursion(g)...)
	issues = append(issues, checkReachability(g)...)
	return issues
}

func hasFatal(issues []Issue) bool {
	for _, i := range issues {
		if i.Fatal {
			return true
		}
	}
	return false
}

// FirstFatal returns the first fatal issue as an error, or nil.
func FirstFatal(issues []Issue) error {
	for _, i := range issues {
		if i.Fatal {
			return fmt.Errorf("%s", i.String())
		}
	}
	return nil
}

func checkRefs(g *Grammar) []Issue {
	var issues []Issue
	check := func(r *Rule) {
		r.Walk(func(e Element) bool {
			ref, ok := e.(*RuleRef)
			if !ok {
				return true
			}
			target := g.Rule(ref.Name)
			if target == nil {
				issues = append(issues, Issue{Rule: r.Name, Fatal: true,
					Message: fmt.Sprintf("reference to undefined rule %s", ref.Name)})
				return true
			}
			if !r.IsLexer && target.IsLexer && target.Fragment {
				issues = append(issues, Issue{Rule: r.Name, Fatal: true,
					Message: fmt.Sprintf("parser rule references lexer fragment %s", ref.Name)})
			}
			if r.IsLexer && !target.IsLexer {
				issues = append(issues, Issue{Rule: r.Name, Fatal: true,
					Message: fmt.Sprintf("lexer rule references parser rule %s", ref.Name)})
			}
			return true
		})
	}
	for _, r := range g.Rules {
		check(r)
	}
	for _, r := range g.LexRules {
		check(r)
	}
	return issues
}

// nullableElems reports whether a sequence of elements can derive ε,
// given a per-rule nullability map.
func nullableSeq(elems []Element, ruleNullable map[string]bool) bool {
	for _, e := range elems {
		if !nullableElem(e, ruleNullable) {
			return false
		}
	}
	return true
}

func nullableElem(e Element, ruleNullable map[string]bool) bool {
	switch e := e.(type) {
	case *SemPred, *SynPred, *Action:
		return true
	case *Block:
		if e.Op == OpStar || e.Op == OpOptional {
			return true
		}
		for _, alt := range e.Alts {
			if nullableSeq(alt.Elems, ruleNullable) {
				return true
			}
		}
		return false
	case *RuleRef:
		return ruleNullable[e.Name]
	default:
		// TokenRef, Wildcard, char atoms, NotToken all consume input.
		return false
	}
}

// NullableRules computes, to fixpoint, which rules can derive ε. The
// analysis uses it to build approximate FIRST sets for the Section 5.4
// fallback decisions.
func NullableRules(g *Grammar) map[string]bool { return computeNullable(g) }

// computeNullable computes, to fixpoint, which rules can derive ε.
func computeNullable(g *Grammar) map[string]bool {
	nullable := make(map[string]bool)
	for changed := true; changed; {
		changed = false
		for _, r := range append(append([]*Rule{}, g.Rules...), g.LexRules...) {
			if nullable[r.Name] {
				continue
			}
			for _, alt := range r.Alts {
				if nullableSeq(alt.Elems, nullable) {
					nullable[r.Name] = true
					changed = true
					break
				}
			}
		}
	}
	return nullable
}

// leftCorners returns, for each parser rule, the set of rules reachable at
// a leftmost position (through nullable prefixes and into blocks).
func leftCorners(g *Grammar, nullable map[string]bool) map[string]map[string]bool {
	corners := make(map[string]map[string]bool, len(g.Rules))
	for _, r := range g.Rules {
		set := make(map[string]bool)
		for _, alt := range r.Alts {
			collectLeftRefs(alt.Elems, nullable, set)
		}
		corners[r.Name] = set
	}
	// Transitive closure.
	for changed := true; changed; {
		changed = false
		for name, set := range corners {
			for ref := range set {
				for indirect := range corners[ref] {
					if !set[indirect] {
						set[indirect] = true
						changed = true
					}
				}
			}
			corners[name] = set
		}
	}
	return corners
}

// collectLeftRefs adds to set every rule referenced at a leftmost position
// of the element sequence.
func collectLeftRefs(elems []Element, nullable map[string]bool, set map[string]bool) {
	for _, e := range elems {
		switch e := e.(type) {
		case *SemPred, *SynPred, *Action:
			continue // transparent; keep scanning
		case *RuleRef:
			set[e.Name] = true
			if nullable[e.Name] {
				continue
			}
			return
		case *Block:
			for _, alt := range e.Alts {
				collectLeftRefs(alt.Elems, nullable, set)
			}
			if nullableElem(e, nullable) {
				continue
			}
			return
		default:
			return // consumed a token; no longer leftmost
		}
	}
}

func checkLeftRecursion(g *Grammar) []Issue {
	nullable := computeNullable(g)
	corners := leftCorners(g, nullable)
	var issues []Issue
	names := make([]string, 0, len(corners))
	for name := range corners {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if corners[name][name] {
			kind := "indirectly"
			if directlyLeftRecursive(g.Rule(name), nullable) {
				kind = "directly"
			}
			issues = append(issues, Issue{Rule: name, Fatal: true,
				Message: fmt.Sprintf("rule is %s left-recursive; LL(*) requires non-left-recursive grammars (use RewriteLeftRecursion for immediate left recursion)", kind)})
		}
	}
	return issues
}

// directlyLeftRecursive reports whether some alternative of r references r
// at its leftmost position.
func directlyLeftRecursive(r *Rule, nullable map[string]bool) bool {
	for _, alt := range r.Alts {
		set := make(map[string]bool)
		collectLeftRefs(alt.Elems, nullable, set)
		if set[r.Name] {
			return true
		}
	}
	return false
}

func checkReachability(g *Grammar) []Issue {
	if len(g.Rules) == 0 {
		return nil
	}
	reach := map[string]bool{g.Start().Name: true}
	var visit func(r *Rule)
	visit = func(r *Rule) {
		r.Walk(func(e Element) bool {
			if ref, ok := e.(*RuleRef); ok {
				if t := g.Rule(ref.Name); t != nil && !t.IsLexer && !reach[t.Name] {
					reach[t.Name] = true
					visit(t)
				}
			}
			return true
		})
	}
	visit(g.Start())
	var issues []Issue
	for _, r := range g.Rules {
		if !reach[r.Name] {
			issues = append(issues, Issue{Rule: r.Name,
				Message: "rule is unreachable from the start rule"})
		}
	}
	return issues
}
