package grammar

import (
	"strings"
	"testing"

	"llstar/internal/token"
)

// mkGrammar builds a small grammar in code (the meta front end has its
// own tests; these exercise the IR directly).
func mkGrammar(t *testing.T, rules map[string][][]Element) *Grammar {
	t.Helper()
	g := New("T")
	// Deterministic order: sort by name manually via two passes not
	// needed — tests list rules explicitly.
	for _, name := range orderedKeys(rules) {
		r := &Rule{Name: name}
		for _, elems := range rules[name] {
			r.Alts = append(r.Alts, &Alt{Elems: elems})
		}
		if err := g.AddRule(r); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func orderedKeys(m map[string][][]Element) []string {
	// Start rule must come first; tests name it "s".
	keys := []string{"s"}
	for k := range m {
		if k != "s" {
			keys = append(keys, k)
		}
	}
	return keys
}

func ref(name string) Element     { return &RuleRef{Name: name} }
func tok(t token.Type) Element    { return &TokenRef{Name: "T", Type: t} }
func seq(es ...Element) []Element { return es }

func TestValidateUndefined(t *testing.T) {
	g := mkGrammar(t, map[string][][]Element{
		"s": {seq(ref("missing"))},
	})
	issues := Validate(g)
	if err := FirstFatal(issues); err == nil || !strings.Contains(err.Error(), "undefined rule") {
		t.Errorf("want undefined-rule error, got %v", issues)
	}
}

func TestValidateDirectLeftRecursion(t *testing.T) {
	g := mkGrammar(t, map[string][][]Element{
		"s": {seq(ref("s"), tok(1)), seq(tok(2))},
	})
	err := FirstFatal(Validate(g))
	if err == nil || !strings.Contains(err.Error(), "left-recursive") {
		t.Errorf("want left-recursion error, got %v", err)
	}
	if !strings.Contains(err.Error(), "directly") {
		t.Errorf("should report direct recursion: %v", err)
	}
}

func TestValidateIndirectLeftRecursion(t *testing.T) {
	g := mkGrammar(t, map[string][][]Element{
		"s": {seq(ref("b"), tok(1))},
		"b": {seq(ref("s"), tok(2)), seq(tok(3))},
	})
	err := FirstFatal(Validate(g))
	if err == nil || !strings.Contains(err.Error(), "left-recursive") {
		t.Errorf("want left-recursion error, got %v", err)
	}
}

// Left recursion through a nullable prefix must be detected.
func TestValidateNullablePrefixRecursion(t *testing.T) {
	g := mkGrammar(t, map[string][][]Element{
		"s":     {seq(ref("empty"), ref("s"), tok(1)), seq(tok(2))},
		"empty": {seq()},
	})
	err := FirstFatal(Validate(g))
	if err == nil {
		t.Errorf("nullable-prefix recursion not detected")
	}
}

func TestValidateUnreachable(t *testing.T) {
	g := mkGrammar(t, map[string][][]Element{
		"s":      {seq(tok(1))},
		"orphan": {seq(tok(2))},
	})
	issues := Validate(g)
	if FirstFatal(issues) != nil {
		t.Fatalf("unexpected fatal: %v", issues)
	}
	found := false
	for _, i := range issues {
		if strings.Contains(i.Message, "unreachable") && i.Rule == "orphan" {
			found = true
		}
	}
	if !found {
		t.Errorf("unreachable warning missing: %v", issues)
	}
}

func TestNullableRules(t *testing.T) {
	g := mkGrammar(t, map[string][][]Element{
		"s": {seq(ref("a"), tok(1))},
		"a": {seq(&Block{Alts: []*Alt{{Elems: seq(tok(2))}}, Op: OpStar})},
		"b": {seq(tok(3))},
	})
	n := NullableRules(g)
	if !n["a"] || n["b"] || n["s"] {
		t.Errorf("nullable: %v", n)
	}
}

func TestRewriteLeftRecursionShape(t *testing.T) {
	// e : e '*' e | e '+' e | INT
	star, plus, intTok := token.Type(1), token.Type(2), token.Type(3)
	g := New("E")
	e := &Rule{Name: "e", Alts: []*Alt{
		{Elems: seq(ref("e"), tok(star), ref("e"))},
		{Elems: seq(ref("e"), tok(plus), ref("e"))},
		{Elems: seq(tok(intTok))},
	}}
	if err := g.AddRule(e); err != nil {
		t.Fatal(err)
	}
	if err := RewriteLeftRecursion(g, "e"); err != nil {
		t.Fatal(err)
	}
	loop := g.Rule("e_")
	if loop == nil {
		t.Fatal("no e_ rule created")
	}
	if loop.Args != "int p" {
		t.Errorf("args: %q", loop.Args)
	}
	// Entry rule delegates with precedence 0.
	entry := g.Rule("e").Alts
	if len(entry) != 1 {
		t.Fatalf("entry alts: %d", len(entry))
	}
	if rr, ok := entry[0].Elems[0].(*RuleRef); !ok || rr.Name != "e_" || rr.ArgText != "0" {
		t.Errorf("entry: %s", g.Rule("e").RuleText())
	}
	// Loop rule: (primaries) (ops)*.
	body := loop.Alts[0].Elems
	if len(body) != 2 {
		t.Fatalf("loop body: %s", loop.RuleText())
	}
	ops := body[1].(*Block)
	if ops.Op != OpStar || len(ops.Alts) != 2 {
		t.Fatalf("ops block: %s", ops)
	}
	// Highest-listed operator gets the highest precedence predicate.
	p1 := ops.Alts[0].Elems[0].(*SemPred)
	p2 := ops.Alts[1].Elems[0].(*SemPred)
	if p1.Text != "p <= 2" || p2.Text != "p <= 1" {
		t.Errorf("precedence preds: %q %q", p1.Text, p2.Text)
	}
	// Left-associative: recursive call at prec+1.
	tail := ops.Alts[0].Elems[len(ops.Alts[0].Elems)-1].(*RuleRef)
	if tail.Name != "e_" || tail.ArgText != "3" {
		t.Errorf("recursive call: %+v", tail)
	}
	// Rewritten grammar must validate.
	if err := FirstFatal(Validate(g)); err != nil {
		t.Errorf("rewritten grammar invalid: %v", err)
	}
}

func TestRewriteLeftRecursionErrors(t *testing.T) {
	g := New("E")
	if err := g.AddRule(&Rule{Name: "e", Alts: []*Alt{
		{Elems: seq(ref("e"), tok(1), ref("e"))},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := RewriteLeftRecursion(g, "e"); err == nil || !strings.Contains(err.Error(), "non-recursive") {
		t.Errorf("want no-primary error, got %v", err)
	}
	if err := RewriteLeftRecursion(g, "nope"); err == nil {
		t.Errorf("unknown rule must error")
	}
	g2 := New("F")
	if err := g2.AddRule(&Rule{Name: "f", Alts: []*Alt{{Elems: seq(tok(1))}}}); err != nil {
		t.Fatal(err)
	}
	if err := RewriteLeftRecursion(g2, "f"); err == nil || !strings.Contains(err.Error(), "not immediately left-recursive") {
		t.Errorf("want not-recursive error, got %v", err)
	}
}

func TestSuffixOperatorRewrite(t *testing.T) {
	// e : e '!' | ID  (suffix operator)
	g := New("E")
	if err := g.AddRule(&Rule{Name: "e", Alts: []*Alt{
		{Elems: seq(ref("e"), tok(1))},
		{Elems: seq(tok(2))},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := RewriteLeftRecursion(g, "e"); err != nil {
		t.Fatal(err)
	}
	loop := g.Rule("e_")
	ops := loop.Alts[0].Elems[1].(*Block)
	// Suffix alternative has no trailing recursive call.
	last := ops.Alts[0].Elems[len(ops.Alts[0].Elems)-1]
	if _, isRef := last.(*RuleRef); isRef {
		t.Errorf("suffix operator should not recurse: %s", ops)
	}
}

func TestRuleHelpers(t *testing.T) {
	r := &Rule{Name: "x", Options: map[string]string{"k": "3", "memoize": "true", "bad": "zz"}}
	if r.OptionInt("k", 0) != 3 || r.OptionInt("missing", 7) != 7 || r.OptionInt("bad", 9) != 9 {
		t.Errorf("OptionInt wrong")
	}
	if !r.OptionBool("memoize", false) || r.OptionBool("missing", true) != true {
		t.Errorf("OptionBool wrong")
	}
	keys := r.SortedOptionKeys()
	if len(keys) != 3 || keys[0] != "bad" {
		t.Errorf("keys: %v", keys)
	}
}

func TestElementStrings(t *testing.T) {
	for _, tc := range []struct {
		e    Element
		want string
	}{
		{&TokenRef{Name: "ID"}, "ID"},
		{&RuleRef{Name: "e", ArgText: "0"}, "e[0]"},
		{&SemPred{Text: "p"}, "{p}?"},
		{&Action{Text: "x", AlwaysExec: true}, "{{x}}"},
		{&Wildcard{}, "."},
		{&NotToken{Names: []string{"A", "B"}}, "~(A|B)"},
		{&CharLit{R: 'q'}, "'q'"},
		{&Block{Alts: []*Alt{{Elems: seq(&TokenRef{Name: "A"})}}, Op: OpStar}, "(A)*"},
	} {
		if got := tc.e.String(); got != tc.want {
			t.Errorf("%T: %q want %q", tc.e, got, tc.want)
		}
	}
}
