package grammar

import (
	"fmt"
	"strconv"
)

// RewriteLeftRecursion implements the Section 1.1 prototype: it replaces a
// rule with immediate left recursion (self-referential alternatives) by a
// predicated precedence loop. The classic example
//
//	e : e '*' e | e '+' e | INT ;
//
// becomes
//
//	e       : e_[0] ;
//	e_[int p] : (INT) ( {p<=2}? '*' e_[3] | {p<=1}? '+' e_[2] )* ;
//
// Operator precedence follows alternative order, highest to lowest. Binary
// operators are treated as left-associative (the recursive call passes
// prec+1); suffix operators (alternatives of the form `e α` with no
// trailing self-reference) are supported as well. Alternatives that do not
// start with a self-reference are the primaries.
//
// The rewrite mutates the grammar in place: rule name keeps its public
// entry point and a new rule name+"_" carries the loop. It returns an
// error if the rule has no primary alternative or if a recursive
// alternative is not in an supported shape.
func RewriteLeftRecursion(g *Grammar, ruleName string) error {
	r := g.Rule(ruleName)
	if r == nil {
		return fmt.Errorf("leftrec: no rule %s", ruleName)
	}
	if r.IsLexer {
		return fmt.Errorf("leftrec: %s is a lexer rule", ruleName)
	}

	type opAlt struct {
		middle []Element // elements between the two self-references
		binary bool      // true: e α e; false: suffix e α
	}
	var ops []opAlt
	var primaries []*Alt

	for _, alt := range r.Alts {
		if len(alt.Elems) == 0 {
			primaries = append(primaries, alt)
			continue
		}
		head, ok := alt.Elems[0].(*RuleRef)
		if !ok || head.Name != ruleName {
			primaries = append(primaries, alt)
			continue
		}
		rest := alt.Elems[1:]
		if len(rest) == 0 {
			return fmt.Errorf("leftrec: rule %s has alternative %q with a bare self-reference", ruleName, alt.String())
		}
		if tail, ok := rest[len(rest)-1].(*RuleRef); ok && tail.Name == ruleName {
			mid := rest[:len(rest)-1]
			if len(mid) == 0 {
				return fmt.Errorf("leftrec: rule %s: alternative %q has adjacent self-references", ruleName, alt.String())
			}
			for _, e := range mid {
				if ref, ok := e.(*RuleRef); ok && ref.Name == ruleName {
					return fmt.Errorf("leftrec: rule %s: ternary or nested self-reference in %q not supported", ruleName, alt.String())
				}
			}
			ops = append(ops, opAlt{middle: mid, binary: true})
			continue
		}
		ops = append(ops, opAlt{middle: rest, binary: false})
	}

	if len(ops) == 0 {
		return fmt.Errorf("leftrec: rule %s is not immediately left-recursive", ruleName)
	}
	if len(primaries) == 0 {
		return fmt.Errorf("leftrec: rule %s has no non-recursive alternative", ruleName)
	}

	loopName := ruleName + "_"
	if g.Rule(loopName) != nil {
		return fmt.Errorf("leftrec: helper rule name %s already taken", loopName)
	}

	n := len(ops)
	// Loop alternatives: one per operator, ordered as written.
	var loopAlts []*Alt
	for j, op := range ops {
		prec := n - j // highest-listed operator gets highest precedence
		elems := []Element{
			&SemPred{Text: fmt.Sprintf("p <= %d", prec)},
		}
		// Any self-references inside the middle (e.g. the index expression
		// in a[e]) recurse from precedence 0.
		for _, e := range op.middle {
			elems = append(elems, retargetSelf(e, ruleName, loopName, "0"))
		}
		if op.binary {
			// Left-associative: right operand must bind tighter.
			elems = append(elems, &RuleRef{Name: loopName, ArgText: strconv.Itoa(prec + 1)})
		}
		loopAlts = append(loopAlts, &Alt{Elems: elems})
	}

	primaryBlock := &Block{Alts: primaries}
	loopBlock := &Block{Alts: loopAlts, Op: OpStar}
	loopRule := &Rule{
		Name: loopName,
		Args: "int p",
		Alts: []*Alt{{Elems: []Element{primaryBlock, loopBlock}}},
		Pos:  r.Pos,
	}

	// Entry rule delegates with precedence 0.
	r.Alts = []*Alt{{Elems: []Element{&RuleRef{Name: loopName, ArgText: "0"}}}}

	return g.AddRule(loopRule)
}

// retargetSelf rewrites self-references inside operator middles to call the
// loop rule with the given precedence argument.
func retargetSelf(e Element, self, loop, arg string) Element {
	switch e := e.(type) {
	case *RuleRef:
		if e.Name == self {
			return &RuleRef{Name: loop, ArgText: arg, Pos: e.Pos}
		}
		return e
	case *Block:
		alts := make([]*Alt, len(e.Alts))
		for i, alt := range e.Alts {
			elems := make([]Element, len(alt.Elems))
			for j, el := range alt.Elems {
				elems[j] = retargetSelf(el, self, loop, arg)
			}
			alts[i] = &Alt{Elems: elems}
		}
		return &Block{Alts: alts, Op: e.Op, Pos: e.Pos}
	default:
		return e
	}
}
