// Package grammar defines the intermediate representation for predicated
// grammars (Section 3 of the paper): rules made of alternatives, which are
// sequences of elements. Elements include token/rule references, EBNF
// blocks, semantic predicates {p}?, syntactic predicates (α)=>, embedded
// actions {µ}, and always-executed actions {{µ}}. Lexer rules reuse the
// same shapes with character-level atoms.
//
// The package also provides validation (undefined references, left
// recursion) and the immediate-left-recursion rewrite to a predicated
// precedence loop (Section 1.1 of the paper).
package grammar

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"llstar/internal/token"
)

// Grammar is a parsed predicated grammar: parser rules, lexer rules, a
// token vocabulary, and grammar-level options.
type Grammar struct {
	Name    string
	Options Options

	// Rules holds parser rules in declaration order.
	Rules []*Rule
	// LexRules holds lexer rules (including fragments) in declaration
	// order. Order matters: on a longest-match tie the earliest rule wins.
	LexRules []*Rule

	byName map[string]*Rule

	// Vocab assigns token types. Literals used by parser rules are
	// interned here and matched by the lexer engine.
	Vocab *token.Vocabulary

	// NamedActions holds @name {...} actions (e.g. @members), kept
	// verbatim for the code generator.
	NamedActions map[string]string
}

// Options are grammar-level options from an options {...} block.
type Options struct {
	// Backtrack enables PEG mode: every production of every decision gets
	// an auto-inserted syntactic predicate, so any decision the analysis
	// cannot make deterministic falls back to ordered backtracking.
	Backtrack bool
	// Memoize enables packrat memoization of speculative parses.
	Memoize bool
	// K, when > 0, caps DFA lookahead depth at a fixed k (classic LL(k)
	// mode). 0 means unbounded (LL(*)).
	K int
	// M is the recursion-depth governor m from Section 5.3. 0 means use
	// the default (1, the paper's example setting).
	M int
	// Raw retains all key=value option pairs as written.
	Raw map[string]string
}

// DefaultM is the recursion governor used when Options.M is zero.
const DefaultM = 1

// Governor returns the effective recursion-depth limit m.
func (o Options) Governor() int {
	if o.M > 0 {
		return o.M
	}
	return DefaultM
}

// New returns an empty grammar with a fresh vocabulary.
func New(name string) *Grammar {
	return &Grammar{
		Name:   name,
		byName: make(map[string]*Rule),
		Vocab:  token.NewVocabulary(),
	}
}

// AddRule appends a rule and indexes it by name. It returns an error if the
// name is already taken.
func (g *Grammar) AddRule(r *Rule) error {
	if _, dup := g.byName[r.Name]; dup {
		return fmt.Errorf("grammar %s: rule %s redefined", g.Name, r.Name)
	}
	g.byName[r.Name] = r
	if r.IsLexer {
		r.Index = len(g.LexRules)
		g.LexRules = append(g.LexRules, r)
	} else {
		r.Index = len(g.Rules)
		g.Rules = append(g.Rules, r)
	}
	return nil
}

// Rule returns the rule with the given name, or nil.
func (g *Grammar) Rule(name string) *Rule {
	return g.byName[name]
}

// Start returns the start rule: the first parser rule.
func (g *Grammar) Start() *Rule {
	if len(g.Rules) == 0 {
		return nil
	}
	return g.Rules[0]
}

// Rule is a parser or lexer rule.
type Rule struct {
	Name  string
	Index int // position within Rules or LexRules
	Pos   token.Pos

	IsLexer  bool
	Fragment bool // lexer fragment: never matched standalone

	// Alts are the top-level alternatives.
	Alts []*Alt

	// Options holds per-rule option overrides (k=..., memoize=..., backtrack=...).
	Options map[string]string

	// Args is the formal-parameter text for parameterized rules, e.g.
	// "int p" in e_[int p]; used by the left-recursion rewrite and codegen.
	Args string
}

// OptionBool reads a boolean rule option with a default.
func (r *Rule) OptionBool(name string, def bool) bool {
	if r.Options == nil {
		return def
	}
	v, ok := r.Options[name]
	if !ok {
		return def
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return def
	}
	return b
}

// OptionInt reads an integer rule option with a default.
func (r *Rule) OptionInt(name string, def int) int {
	if r.Options == nil {
		return def
	}
	v, ok := r.Options[name]
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

// Alt is one alternative: a sequence of elements. Leading predicates
// (semantic or syntactic) gate the alternative per Figure 3.
type Alt struct {
	Elems []Element
}

// LeadingSemPred returns the alternative's left-edge semantic predicate, or
// nil. Only predicates at the very left edge gate the production in the
// formal semantics; the analysis hoists these into decisions.
func (a *Alt) LeadingSemPred() *SemPred {
	for _, e := range a.Elems {
		switch e := e.(type) {
		case *SemPred:
			return e
		case *Action:
			continue // actions don't consume input; look past them
		default:
			return nil
		}
	}
	return nil
}

// LeadingSynPred returns the alternative's left-edge syntactic predicate,
// or nil.
func (a *Alt) LeadingSynPred() *SynPred {
	for _, e := range a.Elems {
		switch e := e.(type) {
		case *SynPred:
			return e
		case *Action:
			continue
		default:
			return nil
		}
	}
	return nil
}

// Element is one grammar element in an alternative.
type Element interface {
	elem()
	String() string
}

// BlockOp is the EBNF operator applied to a Block.
type BlockOp int

const (
	// OpNone is a plain parenthesized subrule (a|b).
	OpNone BlockOp = iota
	// OpOptional is (a|b)?.
	OpOptional
	// OpStar is (a|b)*.
	OpStar
	// OpPlus is (a|b)+.
	OpPlus
)

func (op BlockOp) String() string {
	switch op {
	case OpOptional:
		return "?"
	case OpStar:
		return "*"
	case OpPlus:
		return "+"
	default:
		return ""
	}
}

// TokenRef references a token type by name (uppercase reference or quoted
// literal resolved to a type).
type TokenRef struct {
	Name string
	Type token.Type
	Pos  token.Pos
}

// RuleRef references a parser rule (or, inside lexer rules, another lexer
// rule / fragment).
type RuleRef struct {
	Name string
	Pos  token.Pos
	// ArgText is actual-argument text for parameterized rule calls, e.g.
	// "0" in e_[0].
	ArgText string
}

// Block is a parenthesized subrule with an optional EBNF operator. Blocks
// with more than one alternative, and all looping blocks, are parsing
// decisions.
type Block struct {
	Alts []*Alt
	Op   BlockOp
	Pos  token.Pos
}

// SemPred is a semantic predicate {text}?. Predicates are host-language
// code; the runtime resolves them through a hook registry and codegen
// splices them verbatim.
type SemPred struct {
	Text string
	Pos  token.Pos
}

// SynPred is a syntactic predicate (α)=>. Auto marks predicates inserted
// by PEG mode rather than written by the user.
type SynPred struct {
	Block *Block
	Auto  bool
	Pos   token.Pos
}

// Action is an embedded action {text} or an always-executed action
// {{text}} (Section 4.3: runs even during speculation).
type Action struct {
	Text       string
	AlwaysExec bool
	Pos        token.Pos
}

// Wildcard matches any single token (parser) or any character (lexer).
type Wildcard struct {
	Pos token.Pos
}

// CharLit matches one literal rune (lexer rules only).
type CharLit struct {
	R   rune
	Pos token.Pos
}

// StringLit matches a literal rune sequence (lexer rules only).
type StringLit struct {
	S   string
	Pos token.Pos
}

// RuneRange is an inclusive rune interval.
type RuneRange struct {
	Lo, Hi rune
}

// CharSet matches one rune from a union of ranges, possibly negated
// (lexer rules only).
type CharSet struct {
	Ranges  []RuneRange
	Negated bool
	Pos     token.Pos
}

// NotToken matches any single token except those in Types (parser rules):
// the ~A / ~(A|B) operator. Names holds the source spellings; Types is
// filled in when the front end resolves the vocabulary.
type NotToken struct {
	Names []string
	Types []token.Type
	Pos   token.Pos
}

func (*TokenRef) elem()  {}
func (*RuleRef) elem()   {}
func (*Block) elem()     {}
func (*SemPred) elem()   {}
func (*SynPred) elem()   {}
func (*Action) elem()    {}
func (*Wildcard) elem()  {}
func (*CharLit) elem()   {}
func (*StringLit) elem() {}
func (*CharSet) elem()   {}
func (*NotToken) elem()  {}

func (e *TokenRef) String() string { return e.Name }
func (e *RuleRef) String() string {
	if e.ArgText != "" {
		return e.Name + "[" + e.ArgText + "]"
	}
	return e.Name
}

func (e *Block) String() string {
	s := "("
	for i, alt := range e.Alts {
		if i > 0 {
			s += " | "
		}
		s += alt.String()
	}
	return s + ")" + e.Op.String()
}

func (a *Alt) String() string {
	if len(a.Elems) == 0 {
		return "ε"
	}
	s := ""
	for i, el := range a.Elems {
		if i > 0 {
			s += " "
		}
		s += el.String()
	}
	return s
}

func (e *SemPred) String() string { return "{" + e.Text + "}?" }
func (e *SynPred) String() string {
	if e.Auto {
		return "(…)=>auto"
	}
	return e.Block.String() + "=>"
}
func (e *Action) String() string {
	if e.AlwaysExec {
		return "{{" + e.Text + "}}"
	}
	return "{" + e.Text + "}"
}
func (e *Wildcard) String() string { return "." }
func (e *CharLit) String() string  { return strconv.QuoteRune(e.R) }
func (e *StringLit) String() string {
	return strconv.Quote(e.S)
}
func (e *CharSet) String() string {
	s := ""
	if e.Negated {
		s = "~"
	}
	s += "["
	for _, r := range e.Ranges {
		if r.Lo == r.Hi {
			s += string(r.Lo)
		} else {
			s += string(r.Lo) + "-" + string(r.Hi)
		}
	}
	return s + "]"
}
func (e *NotToken) String() string {
	if len(e.Names) == 1 {
		return "~" + e.Names[0]
	}
	return "~(" + strings.Join(e.Names, "|") + ")"
}

// RuleText renders a rule approximately in meta-language syntax, used by
// diagnostics and codegen comments.
func (r *Rule) RuleText() string {
	s := r.Name + " :"
	for i, alt := range r.Alts {
		if i > 0 {
			s += " |"
		}
		s += " " + alt.String()
	}
	return s + " ;"
}

// SortedOptionKeys returns rule option keys in sorted order for
// deterministic output.
func (r *Rule) SortedOptionKeys() []string {
	keys := make([]string, 0, len(r.Options))
	for k := range r.Options {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Walk applies fn to every element of every alternative of the rule,
// descending into blocks and syntactic-predicate blocks. fn returning
// false prunes descent below that element.
func (r *Rule) Walk(fn func(Element) bool) {
	for _, alt := range r.Alts {
		walkAlt(alt, fn)
	}
}

func walkAlt(a *Alt, fn func(Element) bool) {
	for _, e := range a.Elems {
		if !fn(e) {
			continue
		}
		switch e := e.(type) {
		case *Block:
			for _, alt := range e.Alts {
				walkAlt(alt, fn)
			}
		case *SynPred:
			if e.Block != nil {
				for _, alt := range e.Block.Alts {
					walkAlt(alt, fn)
				}
			}
		}
	}
}
