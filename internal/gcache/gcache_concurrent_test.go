package gcache

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// payload builds a recognizable artifact for a key: any Load must see
// either ErrMiss or exactly these bytes — a torn read means the
// temp-file+rename protocol broke.
func payload(key string) []byte {
	return bytes.Repeat([]byte(key+"|"), 64)
}

// TestConcurrentStoreLoadRemove hammers one cache directory with
// overlapping writers, readers, removers, and size scans — with the
// size cap low enough that eviction runs constantly. Run under -race
// this covers every public entry point concurrently; it is the on-disk
// half of the server registry's hot-reload path (warm reloads Load and
// Store under concurrent request traffic).
func TestConcurrentStoreLoadRemove(t *testing.T) {
	const (
		workers = 8
		keys    = 4
		rounds  = 50
	)
	// Cap at ~2 entries' worth so Store evictions interleave with
	// loads of the evicted keys.
	c, err := New(t.TempDir(), int64(2*len(payload("k0"))))
	if err != nil {
		t.Fatal(err)
	}

	key := func(i int) string { return fmt.Sprintf("k%d", i) }
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := key((w + r) % keys)
				switch w % 4 {
				case 0, 1: // writers
					if _, err := c.Store(k, payload(k)); err != nil {
						t.Errorf("Store(%s): %v", k, err)
						return
					}
				case 2: // readers: miss or exact payload, never torn
					data, err := c.Load(k)
					if errors.Is(err, ErrMiss) {
						continue
					}
					if err != nil {
						t.Errorf("Load(%s): %v", k, err)
						return
					}
					if !bytes.Equal(data, payload(k)) {
						t.Errorf("Load(%s) returned torn/foreign bytes (%d bytes)", k, len(data))
						return
					}
				case 3: // removers and size scans
					if err := c.Remove(k); err != nil {
						t.Errorf("Remove(%s): %v", k, err)
						return
					}
					if _, err := c.Size(); err != nil {
						t.Errorf("Size: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// The directory must end in a consistent state: only whole entries,
	// no temp litter, every surviving key loadable and intact.
	for i := 0; i < keys; i++ {
		k := key(i)
		data, err := c.Load(k)
		if errors.Is(err, ErrMiss) {
			continue
		}
		if err != nil || !bytes.Equal(data, payload(k)) {
			t.Errorf("final Load(%s): %v (%d bytes)", k, err, len(data))
		}
	}
}

// TestConcurrentSameKey converges many writers of one key: exactly one
// valid artifact must remain, readable throughout.
func TestConcurrentSameKey(t *testing.T) {
	c, err := New(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				if _, err := c.Store("shared", payload("shared")); err != nil {
					t.Errorf("Store: %v", err)
					return
				}
				data, err := c.Load("shared")
				if err != nil || !bytes.Equal(data, payload("shared")) {
					t.Errorf("Load: %v (%d bytes)", err, len(data))
					return
				}
			}
		}()
	}
	wg.Wait()
	if size, err := c.Size(); err != nil || size != int64(len(payload("shared"))) {
		t.Errorf("final Size = %d, %v", size, err)
	}
}
