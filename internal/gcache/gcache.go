// Package gcache is a content-addressed on-disk cache for serialized
// grammar-analysis artifacts. Entries are keyed by the hex SHA-256
// fingerprint of (grammar source, analysis options, format version) —
// see serde.Fingerprint — so a key can never name stale content: any
// change to the inputs lands on a different key, and obsolete entries
// simply stop being referenced (and are reclaimed by the size-based
// eviction).
//
// Writes are atomic: the artifact is written to a temp file in the
// cache directory and renamed into place, so concurrent writers of the
// same key converge to one valid entry and a crash can never leave a
// half-written file under a live key. Corruption detection is the
// decoder's job (every artifact embeds a checksum); the cache only
// moves bytes.
//
// Readers and the evictor coordinate across processes through an flock
// on a sentinel file in the cache directory: Load and Stat hold the
// lock shared, the size-cap eviction pass holds it exclusive, so an
// entry that Stat just reported present cannot be evicted out from
// under the Load that follows in the same critical section of another
// process's Store. On platforms without flock this degrades to the
// old unguarded (but still rename-atomic) behavior.
package gcache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Ext is the artifact file extension.
const Ext = ".llsc"

// ErrMiss reports that the cache has no entry for a fingerprint.
var ErrMiss = errors.New("gcache: miss")

// Cache is a directory of compiled-analysis artifacts. The zero value
// is not usable; construct with New. A Cache is safe for concurrent
// use by any number of processes sharing the directory.
type Cache struct {
	dir string
	// maxBytes caps the total size of cached artifacts; 0 = unlimited.
	// When a Store pushes the total over the cap, least-recently
	// modified entries are evicted (never the one just written).
	maxBytes int64
}

// New opens (creating if needed) a cache rooted at dir. maxBytes caps
// total cache size in bytes; 0 means unlimited.
func New(dir string, maxBytes int64) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("gcache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("gcache: %w", err)
	}
	return &Cache{dir: dir, maxBytes: maxBytes}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// Path returns the file path an artifact with the given hex
// fingerprint is (or would be) stored at.
func (c *Cache) Path(fp string) string {
	return filepath.Join(c.dir, fp+Ext)
}

// lockName is the flock sentinel. The leading dot and non-.llsc
// extension keep it out of entries().
const lockName = ".gcache.lock"

// lock takes the cache-wide flock (shared or exclusive) and returns
// the unlock function. Lock acquisition failures degrade to unguarded
// operation rather than failing the caller: the lock only narrows a
// rare reader/evictor race, it is not required for correctness of the
// rename-atomic store.
func (c *Cache) lock(exclusive bool) func() {
	unlock, err := lockFile(filepath.Join(c.dir, lockName), exclusive)
	if err != nil {
		return func() {}
	}
	return unlock
}

// Load returns the artifact bytes stored under fp, or ErrMiss. The
// read holds the cache lock shared so a concurrent eviction pass in
// another process cannot delete the entry mid-read.
func (c *Cache) Load(fp string) ([]byte, error) {
	unlock := c.lock(false)
	defer unlock()
	data, err := os.ReadFile(c.Path(fp))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrMiss
	}
	if err != nil {
		return nil, fmt.Errorf("gcache: %w", err)
	}
	return data, nil
}

// Stat reports the stored size of the artifact under fp without
// reading it, or ErrMiss. Cluster artifact serving probes with Stat
// before committing to a response so a miss is cheap and a hit cannot
// turn into a read-then-miss against a concurrent evictor.
func (c *Cache) Stat(fp string) (int64, error) {
	unlock := c.lock(false)
	defer unlock()
	info, err := os.Stat(c.Path(fp))
	if errors.Is(err, os.ErrNotExist) {
		return 0, ErrMiss
	}
	if err != nil {
		return 0, fmt.Errorf("gcache: %w", err)
	}
	return info.Size(), nil
}

// Store writes the artifact bytes under fp atomically (temp file +
// rename) and then enforces the size cap. It reports how many other
// entries were evicted.
func (c *Cache) Store(fp string, data []byte) (evicted int, err error) {
	tmp, err := os.CreateTemp(c.dir, ".tmp-*"+Ext)
	if err != nil {
		return 0, fmt.Errorf("gcache: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("gcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("gcache: %w", err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		return 0, fmt.Errorf("gcache: %w", err)
	}
	if err := os.Rename(tmpName, c.Path(fp)); err != nil {
		return 0, fmt.Errorf("gcache: %w", err)
	}
	return c.evict(fp)
}

// Remove deletes the entry for fp (used by callers that found the
// stored bytes undecodable, so the next load re-analyzes and
// overwrites). Removing a missing entry is not an error.
func (c *Cache) Remove(fp string) error {
	err := os.Remove(c.Path(fp))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("gcache: %w", err)
	}
	return nil
}

// Size returns the total bytes of cached artifacts.
func (c *Cache) Size() (int64, error) {
	entries, err := c.entries()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range entries {
		total += e.size
	}
	return total, nil
}

type entry struct {
	name  string
	size  int64
	mtime int64
}

// entries lists cached artifacts (temp files excluded), oldest first.
func (c *Cache) entries() ([]entry, error) {
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, fmt.Errorf("gcache: %w", err)
	}
	var out []entry
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || filepath.Ext(name) != Ext || name[0] == '.' {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with a concurrent eviction
		}
		out = append(out, entry{name: name, size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].mtime != out[j].mtime {
			return out[i].mtime < out[j].mtime
		}
		return out[i].name < out[j].name
	})
	return out, nil
}

// evict removes least-recently modified entries until the cache fits
// maxBytes, never removing keep (the entry just written). The pass
// holds the cache lock exclusive, so readers in other processes (who
// hold it shared) never observe an entry disappear between their probe
// and their read.
func (c *Cache) evict(keep string) (int, error) {
	if c.maxBytes <= 0 {
		return 0, nil
	}
	unlock := c.lock(true)
	defer unlock()
	entries, err := c.entries()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range entries {
		total += e.size
	}
	evicted := 0
	for _, e := range entries {
		if total <= c.maxBytes {
			break
		}
		if e.name == keep+Ext {
			continue
		}
		if err := os.Remove(filepath.Join(c.dir, e.name)); err != nil {
			if errors.Is(err, os.ErrNotExist) {
				total -= e.size
				continue
			}
			return evicted, fmt.Errorf("gcache: evicting %s: %w", e.name, err)
		}
		total -= e.size
		evicted++
	}
	return evicted, nil
}
