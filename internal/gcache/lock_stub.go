//go:build !unix

package gcache

// lockFile is a no-op on platforms without flock: readers and the
// evictor fall back to the pre-lock behavior (atomic rename keeps
// entries valid; a reader racing eviction can still see ErrMiss).
func lockFile(path string, exclusive bool) (func(), error) {
	return func() {}, nil
}
