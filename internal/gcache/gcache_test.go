package gcache

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestStoreLoadRemove(t *testing.T) {
	c, err := New(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load("aa"); !errors.Is(err, ErrMiss) {
		t.Fatalf("Load on empty cache = %v, want ErrMiss", err)
	}
	if _, err := c.Store("aa", []byte("artifact")); err != nil {
		t.Fatal(err)
	}
	data, err := c.Load("aa")
	if err != nil || string(data) != "artifact" {
		t.Fatalf("Load = %q, %v", data, err)
	}
	if size, err := c.Size(); err != nil || size != int64(len("artifact")) {
		t.Errorf("Size = %d, %v", size, err)
	}
	if err := c.Remove("aa"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load("aa"); !errors.Is(err, ErrMiss) {
		t.Errorf("Load after Remove = %v, want ErrMiss", err)
	}
	if err := c.Remove("aa"); err != nil {
		t.Errorf("Remove of a missing entry = %v, want nil", err)
	}
}

func TestStoreOverwrites(t *testing.T) {
	c, err := New(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"one", "two"} {
		if _, err := c.Store("k", []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	data, err := c.Load("k")
	if err != nil || string(data) != "two" {
		t.Fatalf("Load after overwrite = %q, %v", data, err)
	}
	// No temp-file litter left behind.
	des, err := os.ReadDir(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(des) != 1 {
		t.Errorf("cache dir holds %d files, want 1", len(des))
	}
}

func TestEvictionOldestFirstNeverKeep(t *testing.T) {
	c, err := New(t.TempDir(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Store("old", []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	// Ensure distinct mtimes so eviction order is by age, not name.
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(c.Path("old"), past, past); err != nil {
		t.Fatal(err)
	}
	evicted, err := c.Store("new", []byte("12345678"))
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 1 {
		t.Errorf("evicted = %d, want 1", evicted)
	}
	if _, err := c.Load("old"); !errors.Is(err, ErrMiss) {
		t.Error("older entry survived eviction")
	}
	if _, err := c.Load("new"); err != nil {
		t.Error("just-written entry was evicted")
	}
}

func TestEvictionSkipsNonEntries(t *testing.T) {
	dir := t.TempDir()
	c, err := New(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(dir, "README.txt")
	if err := os.WriteFile(stray, []byte("not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Store("k", []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); err != nil {
		t.Error("eviction removed a non-artifact file")
	}
}

func TestNewRejectsEmptyDir(t *testing.T) {
	if _, err := New("", 0); err == nil {
		t.Error("New(\"\") must fail")
	}
}
