package gcache

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestStoreLoadRemove(t *testing.T) {
	c, err := New(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load("aa"); !errors.Is(err, ErrMiss) {
		t.Fatalf("Load on empty cache = %v, want ErrMiss", err)
	}
	if _, err := c.Store("aa", []byte("artifact")); err != nil {
		t.Fatal(err)
	}
	data, err := c.Load("aa")
	if err != nil || string(data) != "artifact" {
		t.Fatalf("Load = %q, %v", data, err)
	}
	if size, err := c.Size(); err != nil || size != int64(len("artifact")) {
		t.Errorf("Size = %d, %v", size, err)
	}
	if err := c.Remove("aa"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load("aa"); !errors.Is(err, ErrMiss) {
		t.Errorf("Load after Remove = %v, want ErrMiss", err)
	}
	if err := c.Remove("aa"); err != nil {
		t.Errorf("Remove of a missing entry = %v, want nil", err)
	}
}

func TestStoreOverwrites(t *testing.T) {
	c, err := New(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"one", "two"} {
		if _, err := c.Store("k", []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	data, err := c.Load("k")
	if err != nil || string(data) != "two" {
		t.Fatalf("Load after overwrite = %q, %v", data, err)
	}
	// No temp-file litter left behind (the flock sentinel is expected).
	des, err := os.ReadDir(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	artifacts := 0
	for _, de := range des {
		if de.Name() != lockName {
			artifacts++
		}
	}
	if artifacts != 1 {
		t.Errorf("cache dir holds %d artifact files, want 1", artifacts)
	}
}

func TestEvictionOldestFirstNeverKeep(t *testing.T) {
	c, err := New(t.TempDir(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Store("old", []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	// Ensure distinct mtimes so eviction order is by age, not name.
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(c.Path("old"), past, past); err != nil {
		t.Fatal(err)
	}
	evicted, err := c.Store("new", []byte("12345678"))
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 1 {
		t.Errorf("evicted = %d, want 1", evicted)
	}
	if _, err := c.Load("old"); !errors.Is(err, ErrMiss) {
		t.Error("older entry survived eviction")
	}
	if _, err := c.Load("new"); err != nil {
		t.Error("just-written entry was evicted")
	}
}

func TestEvictionSkipsNonEntries(t *testing.T) {
	dir := t.TempDir()
	c, err := New(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(dir, "README.txt")
	if err := os.WriteFile(stray, []byte("not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Store("k", []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); err != nil {
		t.Error("eviction removed a non-artifact file")
	}
}

func TestNewRejectsEmptyDir(t *testing.T) {
	if _, err := New("", 0); err == nil {
		t.Error("New(\"\") must fail")
	}
}

func TestStat(t *testing.T) {
	c, err := New(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("nope"); !errors.Is(err, ErrMiss) {
		t.Fatalf("Stat on empty cache: err = %v, want ErrMiss", err)
	}
	payload := []byte("abcdefgh")
	if _, err := c.Store("fp1", payload); err != nil {
		t.Fatal(err)
	}
	n, err := c.Stat("fp1")
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(payload)) {
		t.Fatalf("Stat size = %d, want %d", n, len(payload))
	}
	if err := c.Remove("fp1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("fp1"); !errors.Is(err, ErrMiss) {
		t.Fatalf("Stat after Remove: err = %v, want ErrMiss", err)
	}
}

// The flock sentinel must never count as a cache entry (size,
// eviction, listing) and must survive eviction passes.
func TestLockFileIsNotAnEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := New(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Force lock-file creation via a locked op, then fill past the cap.
	if _, err := c.Stat("warmup"); !errors.Is(err, ErrMiss) {
		t.Fatal(err)
	}
	if _, err := c.Store("a", []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Store("b", []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, lockName)); err != nil {
		t.Fatalf("lock file missing after eviction pass: %v", err)
	}
	size, err := c.Size()
	if err != nil {
		t.Fatal(err)
	}
	if size != 8 {
		t.Fatalf("Size = %d, want 8 (lock file excluded)", size)
	}
}
