//go:build unix

package gcache

import (
	"os"
	"syscall"
)

// lockFile takes a BSD advisory lock (flock) on path, shared or
// exclusive, blocking until granted, and returns the unlock function.
// flock is per-open-file-description, so concurrent goroutines in one
// process each get their own handle and the lock composes across
// processes sharing the cache directory.
func lockFile(path string, exclusive bool) (func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	how := syscall.LOCK_SH
	if exclusive {
		how = syscall.LOCK_EX
	}
	if err := syscall.Flock(int(f.Fd()), how); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
