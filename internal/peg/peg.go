// Package peg is the baseline packrat/PEG parser (Ford) over the same
// grammar IR: ordered choice, unlimited backtracking, memoized partial
// results. It is what ANTLR's PEG mode degenerates to with no static
// analysis — every decision speculates — and serves as the comparison
// point for how much speculation LL(*) removes.
package peg

import (
	"fmt"

	"llstar/internal/grammar"
	"llstar/internal/lexrt"
	"llstar/internal/runtime"
	"llstar/internal/token"
)

// Options configure the packrat parser.
type Options struct {
	// Memoize enables the packrat cache. Without it the parser is a
	// plain backtracking recursive-descent parser — exponential in the
	// worst case, as the paper notes for the RatsC grammar.
	Memoize bool
	// BuildTree enables parse-tree construction.
	BuildTree bool
	// Hooks binds semantic predicates (actions are never run during PEG
	// speculation and only the committed parse exists here, so plain
	// actions run on the committed path).
	Hooks runtime.Hooks
	// State is user state for predicates/actions.
	State any
	// MaxSteps aborts runaway exponential parses (0 = no limit). The
	// memoization ablation uses it to demonstrate non-termination-like
	// blowup without hanging the benchmark.
	MaxSteps int
}

// Stats profiles a PEG parse.
type Stats struct {
	// RuleInvocations counts rule applications (including memo hits).
	RuleInvocations int
	// MemoHits counts cache hits.
	MemoHits int
	// MemoEntries is the final cache size.
	MemoEntries int
	// Steps counts element-matching steps (work performed).
	Steps int
}

// ErrBudget is returned when MaxSteps is exhausted.
var ErrBudget = fmt.Errorf("peg: step budget exhausted (exponential backtracking?)")

// Node is a PEG parse-tree node (same shape as the interp tree).
type Node struct {
	Rule     string
	Token    *token.Token
	Children []*Node
}

// String renders the tree as an s-expression.
func (n *Node) String() string {
	if n == nil {
		return "nil"
	}
	if n.Token != nil {
		return n.Token.Text
	}
	s := "(" + n.Rule
	for _, c := range n.Children {
		s += " " + c.String()
	}
	return s + ")"
}

type memoEntry struct {
	stop int
	node *Node
	fail bool
}

// Parser is a packrat parser for a grammar.
type Parser struct {
	g      *grammar.Grammar
	lexG   *grammar.Grammar
	opts   Options
	stream *runtime.TokenStream
	memo   []map[int]memoEntry // by rule index
	stats  Stats
	ctx    runtime.Context

	deepest    int
	deepestTok token.Token
}

// New returns a packrat parser for g.
func New(g *grammar.Grammar, opts Options) *Parser {
	return &Parser{g: g, opts: opts}
}

// Stats returns profiling for the last parse.
func (p *Parser) Stats() Stats { return p.stats }

// ParseTokens parses the stream from startRule, requiring full input
// consumption.
func (p *Parser) ParseTokens(startRule string, stream *runtime.TokenStream) (*Node, error) {
	r := p.g.Rule(startRule)
	if r == nil || r.IsLexer {
		return nil, fmt.Errorf("peg: no parser rule %s", startRule)
	}
	p.stream = stream
	p.stats = Stats{}
	p.memo = make([]map[int]memoEntry, len(p.g.Rules))
	p.deepest = -1
	p.ctx = runtime.Context{Stream: stream, State: p.opts.State, Speculating: true}

	node, ok, err := p.parseRule(r)
	if err != nil {
		return nil, err
	}
	if !ok || stream.LA(1) != token.EOF {
		at := stream.LT(1)
		if p.deepest >= at.Index {
			at = p.deepestTok
		}
		return nil, &runtime.SyntaxError{Offending: at, Rule: startRule, Msg: "PEG parse failed"}
	}
	if lexErr := stream.Err(); lexErr != nil {
		return nil, lexErr
	}
	for _, row := range p.memo {
		p.stats.MemoEntries += len(row)
	}
	return node, nil
}

// step charges one unit of work against the budget.
func (p *Parser) step() error {
	p.stats.Steps++
	if p.opts.MaxSteps > 0 && p.stats.Steps > p.opts.MaxSteps {
		return ErrBudget
	}
	return nil
}

func (p *Parser) fail() {
	t := p.stream.LT(1)
	if t.Index > p.deepest {
		p.deepest = t.Index
		p.deepestTok = t
	}
}

// parseRule applies a rule at the current position with memoization.
func (p *Parser) parseRule(r *grammar.Rule) (*Node, bool, error) {
	p.stats.RuleInvocations++
	start := p.stream.Index()
	if p.opts.Memoize && r.Args == "" {
		if row := p.memo[r.Index]; row != nil {
			if e, ok := row[start]; ok {
				p.stats.MemoHits++
				if e.fail {
					p.fail()
					return nil, false, nil
				}
				p.stream.Seek(e.stop)
				return e.node, true, nil
			}
		}
	}
	node, ok, err := p.applyAlts(r, r.Alts, r.Name)
	if err != nil {
		return nil, false, err
	}
	if p.opts.Memoize && r.Args == "" {
		if p.memo[r.Index] == nil {
			p.memo[r.Index] = make(map[int]memoEntry)
		}
		if ok {
			p.memo[r.Index][start] = memoEntry{stop: p.stream.Index(), node: node}
		} else {
			p.memo[r.Index][start] = memoEntry{fail: true}
		}
	}
	return node, ok, nil
}

// applyAlts tries alternatives in order (PEG ordered choice): the first
// that matches wins, later ones are never considered.
func (p *Parser) applyAlts(r *grammar.Rule, alts []*grammar.Alt, ruleName string) (*Node, bool, error) {
	start := p.stream.Index()
	for _, alt := range alts {
		var node *Node
		if p.opts.BuildTree && ruleName != "" {
			node = &Node{Rule: ruleName}
		}
		ok, err := p.matchSeq(r, alt.Elems, node)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return node, true, nil
		}
		p.stream.Seek(start)
	}
	p.fail()
	return nil, false, nil
}

func (p *Parser) matchSeq(r *grammar.Rule, elems []grammar.Element, node *Node) (bool, error) {
	for _, e := range elems {
		ok, err := p.matchElem(r, e, node)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func (p *Parser) matchElem(r *grammar.Rule, e grammar.Element, node *Node) (bool, error) {
	if err := p.step(); err != nil {
		return false, err
	}
	switch e := e.(type) {
	case *grammar.TokenRef:
		return p.matchToken(func(t token.Type) bool { return t == e.Type }, node), nil

	case *grammar.NotToken:
		return p.matchToken(func(t token.Type) bool {
			if t == token.EOF {
				return false
			}
			for _, x := range e.Types {
				if t == x {
					return false
				}
			}
			return true
		}, node), nil

	case *grammar.Wildcard:
		return p.matchToken(func(t token.Type) bool { return t != token.EOF }, node), nil

	case *grammar.RuleRef:
		target := p.g.Rule(e.Name)
		if target == nil {
			return false, fmt.Errorf("peg: undefined rule %s", e.Name)
		}
		child, ok, err := p.parseRule(target)
		if err != nil || !ok {
			return false, err
		}
		if node != nil && child != nil {
			node.Children = append(node.Children, child)
		}
		return true, nil

	case *grammar.SemPred:
		ok, err := p.opts.Hooks.EvalPred(e.Text, &p.ctx)
		if err != nil {
			return false, err
		}
		if !ok {
			p.fail()
		}
		return ok, nil

	case *grammar.SynPred:
		// And-predicate: match the fragment, then rewind.
		start := p.stream.Index()
		_, ok, err := p.applyAlts(r, e.Block.Alts, "")
		p.stream.Seek(start)
		return ok, err

	case *grammar.Action:
		// PEG parsers cannot run side-effecting actions safely; only
		// {{...}} actions are honored, mirroring the paper's discussion.
		if e.AlwaysExec {
			p.opts.Hooks.RunAction(e.Text, &p.ctx)
		}
		return true, nil

	case *grammar.Block:
		return p.matchBlock(r, e, node)
	}
	return false, fmt.Errorf("peg: unsupported element %T", e)
}

func (p *Parser) matchToken(pred func(token.Type) bool, node *Node) bool {
	t := p.stream.LT(1)
	if !pred(t.Type) {
		p.fail()
		return false
	}
	p.stream.Consume()
	if node != nil {
		tok := t
		node.Children = append(node.Children, &Node{Token: &tok})
	}
	return true
}

func (p *Parser) matchBlock(r *grammar.Rule, blk *grammar.Block, node *Node) (bool, error) {
	matchOnce := func() (bool, error) {
		start := p.stream.Index()
		for _, alt := range blk.Alts {
			mark := 0
			if node != nil {
				mark = len(node.Children)
			}
			ok, err := p.matchSeq(r, alt.Elems, node)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
			p.stream.Seek(start)
			if node != nil {
				node.Children = node.Children[:mark]
			}
		}
		return false, nil
	}
	switch blk.Op {
	case grammar.OpNone:
		ok, err := matchOnce()
		if err != nil {
			return false, err
		}
		if !ok {
			p.fail()
		}
		return ok, nil
	case grammar.OpOptional:
		if _, err := matchOnce(); err != nil {
			return false, err
		}
		return true, nil
	case grammar.OpStar, grammar.OpPlus:
		n := 0
		for {
			if err := p.step(); err != nil {
				return false, err
			}
			before := p.stream.Index()
			ok, err := matchOnce()
			if err != nil {
				return false, err
			}
			if !ok {
				break
			}
			n++
			if p.stream.Index() == before {
				break // ε body; don't loop forever
			}
		}
		if blk.Op == grammar.OpPlus && n == 0 {
			p.fail()
			return false, nil
		}
		return true, nil
	}
	return false, fmt.Errorf("peg: unknown block op")
}

// ParseString lexes input using the grammar's lexer rules and parses it.
func (p *Parser) ParseString(startRule, input string, lex *lexrt.Lexer) (*Node, error) {
	return p.ParseTokens(startRule, runtime.NewTokenStream(lex))
}
