package peg

import (
	"testing"

	"llstar/internal/lexrt"
	"llstar/internal/runtime"
)

// Exercise every PEG element kind: wildcard, negation, predicates,
// actions, optionals, plus loops, and syntactic (and-)predicates.
func TestPEGElementKinds(t *testing.T) {
	g, res := load(t, `
grammar El;
options { backtrack=true; memoize=true; }
s : (A B)=> A B C
  | A ~C .
  ;
t : (A)+ (B)? {{count()}} ;
u : {yes()}? A | B ;
v : {no()}? A | A ;
A : 'a' ;
B : 'b' ;
C : 'c' ;
WS : (' ')+ { skip(); } ;
`)
	var counted int
	hooks := runtime.Hooks{
		Preds: map[string]func(*runtime.Context) bool{
			"yes()": func(*runtime.Context) bool { return true },
			"no()":  func(*runtime.Context) bool { return false },
		},
		Actions: map[string]func(*runtime.Context){
			"count()": func(*runtime.Context) { counted++ },
		},
	}

	parse := func(start, input string) error {
		p := New(g, Options{Memoize: true, BuildTree: true, Hooks: hooks})
		lx := lexrt.New(res.Machine.Lex, input)
		_, err := p.ParseTokens(start, runtime.NewTokenStream(lx))
		return err
	}

	// Synpred gate: "a b c" passes the and-predicate, takes alt 1.
	if err := parse("s", "a b c"); err != nil {
		t.Errorf("s: a b c: %v", err)
	}
	// Alt 2: A then any-but-C then any.
	if err := parse("s", "a a b"); err != nil {
		t.Errorf("s: a a b: %v", err)
	}
	// ~C must reject C.
	if err := parse("s", "a c b"); err == nil {
		t.Errorf("s: a c b should fail (~C)")
	}
	// Plus and optional.
	if err := parse("t", "a a a b"); err != nil {
		t.Errorf("t: %v", err)
	}
	if counted == 0 {
		t.Errorf("{{...}} action did not run")
	}
	if err := parse("t", "b"); err == nil {
		t.Errorf("t: (A)+ requires at least one a")
	}
	// Semantic predicates gate ordered choice.
	if err := parse("u", "a"); err != nil {
		t.Errorf("u: %v", err)
	}
	if err := parse("v", "a"); err != nil {
		t.Errorf("v: failed pred must fall through to alt 2: %v", err)
	}
	// Unknown rule.
	p := New(g, Options{})
	lx := lexrt.New(res.Machine.Lex, "a")
	if _, err := p.ParseTokens("nope", runtime.NewTokenStream(lx)); err == nil {
		t.Errorf("unknown start rule must error")
	}
}

func TestPEGStats(t *testing.T) {
	g, res := load(t, grammarSrc)
	p := New(g, Options{Memoize: true})
	lx := lexrt.New(res.Machine.Lex, "- - - 5")
	if _, err := p.ParseTokens("s", runtime.NewTokenStream(lx)); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.RuleInvocations == 0 || st.Steps == 0 || st.MemoEntries == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
}
