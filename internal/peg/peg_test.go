package peg

import (
	"strings"
	"testing"

	"llstar/internal/core"
	"llstar/internal/grammar"
	"llstar/internal/interp"
	"llstar/internal/lexrt"
	"llstar/internal/meta"
	"llstar/internal/runtime"
)

func load(t *testing.T, src string) (*grammar.Grammar, *core.Result) {
	t.Helper()
	g, err := meta.Parse("t.g", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := grammar.FirstFatal(grammar.Validate(g)); err != nil {
		t.Fatalf("validate: %v", err)
	}
	res, err := core.Analyze(g, core.Options{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return g, res
}

const grammarSrc = `
grammar P;
options { backtrack=true; memoize=true; }
s : ('-')* ID | e ;
e : INT | '-' e ;
ID : ('a'..'z')+ ;
INT : ('0'..'9')+ ;
WS : (' ')+ { skip(); } ;
`

func pegParse(t *testing.T, g *grammar.Grammar, res *core.Result, opts Options, start, input string) (*Node, error) {
	t.Helper()
	lx := lexrt.New(res.Machine.Lex, input)
	p := New(g, opts)
	return p.ParseTokens(start, runtime.NewTokenStream(lx))
}

func TestPEGBasics(t *testing.T) {
	g, res := load(t, grammarSrc)
	for _, in := range []string{"x", "5", "- - x", "- - - 5"} {
		if _, err := pegParse(t, g, res, Options{Memoize: true}, "s", in); err != nil {
			t.Errorf("parse %q: %v", in, err)
		}
	}
	if _, err := pegParse(t, g, res, Options{Memoize: true}, "s", "- -"); err == nil {
		t.Errorf("dangling '-' must fail")
	}
}

// PEG and LL(*) agree on this grammar's language (ordered choice matches
// production-order ambiguity resolution).
func TestPEGAgreesWithLLStar(t *testing.T) {
	g, res := load(t, grammarSrc)
	inputs := []string{"x", "5", "- x", "- 5", "- - - - x", "- - - - 5", "-", "- -", "z 9"}
	for _, in := range inputs {
		_, pegErr := pegParse(t, g, res, Options{Memoize: true, BuildTree: true}, "s", in)
		ip := interp.New(res, interp.Options{BuildTree: true})
		_, llErr := ip.ParseString("s", in)
		if (pegErr == nil) != (llErr == nil) {
			t.Errorf("%q: peg err=%v, ll(*) err=%v", in, pegErr, llErr)
		}
	}
}

// The PEG A → a | ab hazard: alternative 2 is dead under PEG ordered
// choice but live under LL(*).
func TestPEGOrderedChoiceHazard(t *testing.T) {
	src := `
grammar H;
s : a EOFT ;
a : X | X Y ;
EOFT : ';' ;
X : 'x' ;
Y : 'y' ;
`
	g, res := load(t, src)
	// "xy;" — PEG matches 'a' as alt 1 (just X), then fails on Y vs ';'.
	if _, err := pegParse(t, g, res, Options{Memoize: true}, "s", "xy;"); err == nil {
		t.Errorf("PEG should fail on xy; (first-match ordered choice)")
	}
	ip := interp.New(res, interp.Options{})
	if _, err := ip.ParseString("s", "xy;"); err != nil {
		t.Errorf("LL(*) should parse xy;: %v", err)
	}
}

// Memoization turns exponential backtracking into linear work: nested
// ambiguous prefixes without memoization blow the step budget.
func TestPEGMemoizationAblation(t *testing.T) {
	src := `
grammar M;
s : a ;
a : b X | b Y ;
b : LP a RP | Z ;
LP : '(' ;
RP : ')' ;
X : 'x' ;
Y : 'y' ;
Z : 'z' ;
`
	g, res := load(t, src)
	// a = b X | b Y; b = ( a ) | z. Ending every level with y forces the
	// b X attempt to parse the whole nested body and fail, then reparse
	// it for b Y — 2^depth work without memoization.
	input := strings.Repeat("(", 14) + "zy" + strings.Repeat(")y", 14)
	budget := 2_000_000

	pOff := New(g, Options{Memoize: false, MaxSteps: budget})
	lx := lexrt.New(res.Machine.Lex, input)
	_, errOff := pOff.ParseTokens("s", runtime.NewTokenStream(lx))

	pOn := New(g, Options{Memoize: true, MaxSteps: budget})
	lx = lexrt.New(res.Machine.Lex, input)
	_, errOn := pOn.ParseTokens("s", runtime.NewTokenStream(lx))

	if errOn != nil {
		t.Fatalf("memoized parse failed: %v", errOn)
	}
	if errOff == nil {
		// Even if it finished, it must have done far more work.
		if pOff.Stats().Steps < 10*pOn.Stats().Steps {
			t.Errorf("expected exponential blowup without memoization: off=%d on=%d steps",
				pOff.Stats().Steps, pOn.Stats().Steps)
		}
	} else if errOff != ErrBudget {
		t.Fatalf("unmemoized parse failed oddly: %v", errOff)
	}
	if pOn.Stats().MemoEntries == 0 {
		t.Errorf("memo table unused")
	}
}
