package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"llstar"
	"llstar/internal/obs/flight"
	"llstar/internal/token"
)

// This file defines the wire schemas of the parse API and the helpers
// that render llstar values (trees, stats, syntax errors) into them.
// docs/server.md documents every field.

// parseRequest is the body of POST /v1/parse and of each batch item.
type parseRequest struct {
	// Grammar names a file stem in the grammar directory.
	Grammar string `json:"grammar"`
	// Rule is the start rule; empty means the grammar's first rule.
	Rule string `json:"rule,omitempty"`
	// Input is the text to parse.
	Input string `json:"input"`
	// Tree requests the structured tree in addition to the s-expression
	// text (trees can dwarf the input; off by default).
	Tree bool `json:"tree,omitempty"`
	// Stats requests the runtime decision profile summary.
	Stats bool `json:"stats,omitempty"`
	// Recover enables error recovery: the parse continues past syntax
	// errors and reports them all in `recovered`.
	Recover bool `json:"recover,omitempty"`
}

// parseResponse is the result of one parse.
type parseResponse struct {
	OK      bool   `json:"ok"`
	Grammar string `json:"grammar"`
	Rule    string `json:"rule"`
	// Text is the parse tree as an s-expression.
	Text string `json:"text,omitempty"`
	// Tree is the structured parse tree (request.tree only).
	Tree *treeNode `json:"tree,omitempty"`
	// Tokens and Nodes size the result: leaves and total tree nodes.
	Tokens    int   `json:"tokens,omitempty"`
	Nodes     int   `json:"nodes,omitempty"`
	ElapsedUS int64 `json:"elapsed_us"`
	// Stats is the runtime profile summary (request.stats only).
	Stats *statsJSON `json:"stats,omitempty"`
	// Error is the failure for ok == false.
	Error *errorJSON `json:"error,omitempty"`
	// Recovered lists syntax errors survived in recovery mode.
	Recovered []errorJSON `json:"recovered,omitempty"`

	// internalErr marks a response produced by a recovered parse panic:
	// the handler answers 500 (not 422) and the flight trigger records
	// the request as a server error. Never serialized.
	internalErr bool
}

// errorJSON locates and names one error. For syntax errors the
// offending token is named through the grammar's vocabulary
// (token_name), not just its raw type integer.
type errorJSON struct {
	Msg       string `json:"msg"`
	Rule      string `json:"rule,omitempty"`
	Line      int    `json:"line,omitempty"`
	Col       int    `json:"col,omitempty"`
	Token     string `json:"token,omitempty"`
	TokenType int    `json:"token_type,omitempty"`
	TokenName string `json:"token_name,omitempty"`
	// RequestID correlates error responses with server logs and trace
	// spans; it echoes the request's X-Request-Id (top-level errors only).
	RequestID string `json:"request_id,omitempty"`
}

// statsJSON summarizes runtime.ParseStats for one parse.
type statsJSON struct {
	PredictEvents   int   `json:"predict_events"`
	MaxLookahead    int   `json:"max_lookahead"`
	BacktrackEvents int   `json:"backtrack_events"`
	BacktrackTokens int64 `json:"backtrack_tokens"`
	MemoHits        int   `json:"memo_hits"`
	MemoMisses      int   `json:"memo_misses"`
	MemoEntries     int   `json:"memo_entries"`
}

// treeNode is the structured parse-tree shape: rule nodes carry
// children; token leaves carry text, type, name, and position.
type treeNode struct {
	Rule      string      `json:"rule,omitempty"`
	Children  []*treeNode `json:"children,omitempty"`
	Token     string      `json:"token,omitempty"`
	TokenType int         `json:"type,omitempty"`
	TokenName string      `json:"name,omitempty"`
	Line      int         `json:"line,omitempty"`
	Col       int         `json:"col,omitempty"`
}

// toTreeNode converts a parse tree, naming leaf tokens through the
// grammar vocabulary.
func toTreeNode(g *llstar.Grammar, n *llstar.Tree) *treeNode {
	if n == nil {
		return nil
	}
	if n.Token != nil {
		return &treeNode{
			Token:     n.Token.Text,
			TokenType: int(n.Token.Type),
			TokenName: g.TokenName(int(n.Token.Type)),
			Line:      n.Token.Pos.Line,
			Col:       n.Token.Pos.Col,
		}
	}
	out := &treeNode{Rule: n.Rule}
	for _, c := range n.Children {
		out.Children = append(out.Children, toTreeNode(g, c))
	}
	return out
}

// toErrorJSON renders any parse error; syntax errors gain token
// location and vocabulary names.
func toErrorJSON(g *llstar.Grammar, err error) errorJSON {
	var se *llstar.SyntaxError
	if errors.As(err, &se) {
		return syntaxErrorJSON(g, se)
	}
	return errorJSON{Msg: err.Error()}
}

func syntaxErrorJSON(g *llstar.Grammar, se *llstar.SyntaxError) errorJSON {
	text := se.Offending.Text
	if se.Offending.Type == token.EOF {
		text = "<EOF>"
	}
	return errorJSON{
		Msg:       se.Msg,
		Rule:      se.Rule,
		Line:      se.Offending.Pos.Line,
		Col:       se.Offending.Pos.Col,
		Token:     text,
		TokenType: int(se.Offending.Type),
		TokenName: g.TokenName(int(se.Offending.Type)),
	}
}

// toStatsJSON summarizes a runtime profile; call it before the parser
// returns to its pool (Stats are reset by the next checkout's parse).
func toStatsJSON(st *llstar.Stats) *statsJSON {
	if st == nil {
		return nil
	}
	out := &statsJSON{
		MemoHits:    st.MemoHits,
		MemoMisses:  st.MemoMisses,
		MemoEntries: st.MemoEntries,
	}
	for i := range st.Decisions {
		d := &st.Decisions[i]
		out.PredictEvents += d.Events
		if d.MaxK > out.MaxLookahead {
			out.MaxLookahead = d.MaxK
		}
		out.BacktrackEvents += d.BacktrackEvents
		out.BacktrackTokens += d.SumBacktrackK
	}
	return out
}

// toFlightStats summarizes a runtime profile into the flight capture's
// trigger inputs. Like toStatsJSON it must run before the parser
// returns to its pool.
func toFlightStats(st *llstar.Stats) flight.Stats {
	if st == nil {
		return flight.Stats{}
	}
	out := flight.Stats{MemoHits: st.MemoHits, MemoMisses: st.MemoMisses}
	for i := range st.Decisions {
		d := &st.Decisions[i]
		out.PredictEvents += d.Events
		if d.MaxK > out.MaxLookahead {
			out.MaxLookahead = d.MaxK
		}
		out.BacktrackEvents += d.BacktrackEvents
		out.BacktrackTokens += d.SumBacktrackK
	}
	return out
}

// errorResponse is the body of every non-2xx response.
type errorResponse struct {
	Error errorJSON `json:"error"`
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the connection is the only failure mode left
}

// writeError writes a JSON error body with the given status. The
// request-id middleware stamps X-Request-Id on the response header
// before any handler runs, so the id is read back from there.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{
		Error: errorJSON{Msg: msg, RequestID: w.Header().Get(requestIDHeader)},
	})
}

// decodeJSON decodes a request body, mapping oversized bodies to a
// distinct error so the handler can answer 413.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return fmt.Errorf("%w: body exceeds %d bytes", errBodyTooLarge, tooBig.Limit)
		}
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}

var errBodyTooLarge = errors.New("request body too large")
