package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"llstar"
	"llstar/internal/obs"
	"llstar/internal/obs/flight"
)

// flightRun carries one request's flight recording: the pooled event
// ring plus the correlation identity a capture needs if the anomaly
// trigger fires. It lives on the parse goroutine only (the ring is
// single-writer); /v1/batch gives each item its own flightRun — and
// its own span id — so the items record independently on their
// workers and a by-trace lookup can tell them apart.
type flightRun struct {
	rec      *flight.Recorder
	endpoint string
	grammar  string
	rule     string
	session  string
	reqID    string
	traceID  string
	// span is this run's own child span id within the trace (each
	// batch item mints a distinct one).
	span  string
	start time.Time
	stats flight.Stats
	// pooled marks a recorder checked out of fpool: returned on finish.
	// Session-owned recorders (which outlive the request) are not.
	pooled bool
}

// newFlightRun checks a recorder out of the pool for one request, or
// returns nil when the flight recorder is disabled.
func (s *Server) newFlightRun(w http.ResponseWriter, endpoint, grammar string) *flightRun {
	if s.flight == nil {
		return nil
	}
	rec := s.fpool.Get().(*flight.Recorder)
	rec.Reset()
	return &flightRun{
		rec:      rec,
		endpoint: endpoint,
		grammar:  grammar,
		reqID:    w.Header().Get(requestIDHeader),
		traceID:  traceIDFrom(w.Header().Get(traceparentHeader)),
		span:     randHex(16),
		start:    time.Now(),
		pooled:   true,
	}
}

// finishFlight evaluates the anomaly trigger for one completed parse
// and persists a capture when it fires. It runs on the parse goroutine
// before the response is handed back — and after the handler gave up,
// for a 504-abandoned parse — so it is the single finalizer: the ring
// is quiescent and ctx's deadline state tells us whether the client
// ever saw the result. forced names a trigger that already fired
// ("panic"); when it is set the recorder is not returned to the pool.
func (s *Server) finishFlight(ctx context.Context, fr *flightRun, resp parseResponse, forced string) {
	if fr == nil {
		return
	}
	dur := time.Since(fr.start)
	status := http.StatusOK
	switch {
	case resp.internalErr:
		status = http.StatusInternalServerError
	case !resp.OK:
		status = http.StatusUnprocessableEntity
	}
	if ctx.Err() != nil {
		status = http.StatusGatewayTimeout
	}
	trigger := forced
	if trigger == "" {
		trigger = s.ftrig.Eval(status, dur, fr.stats)
	}
	if trigger == "" {
		if fr.pooled {
			s.fpool.Put(fr.rec)
		}
		return
	}
	events, dropped := fr.rec.Snapshot()
	c := &flight.Capture{
		RequestID: fr.reqID,
		TraceID:   fr.traceID,
		SpanID:    fr.span,
		Replica:   s.replicaAddr(),
		Endpoint:  fr.endpoint,
		Grammar:   fr.grammar,
		Rule:      fr.rule,
		SessionID: fr.session,
		Status:    status,
		Trigger:   trigger,
		Time:      time.Now(),
		DurUS:     dur.Microseconds(),
		Stats:     fr.stats,
		Dropped:   dropped,
		Events:    events,
	}
	id := s.flight.Add(c)
	s.log.LogAttrs(context.Background(), slog.LevelWarn, "flight_capture",
		slog.String("capture_id", id),
		slog.String("trigger", trigger),
		slog.String("endpoint", fr.endpoint),
		slog.Int("status", status),
		slog.Float64("dur_ms", float64(dur)/float64(time.Millisecond)),
		slog.String("request_id", fr.reqID),
		slog.String("trace_id", fr.traceID),
		slog.String("grammar", fr.grammar),
		slog.String("session_id", fr.session),
	)
	if forced == "" && fr.pooled {
		s.fpool.Put(fr.rec)
	}
}

// handleParse serves POST /v1/parse: one grammar, one input, one JSON
// result. Successful parses answer 200; syntax errors answer 422 with
// the error located and its offending token named; a parse exceeding
// the request timeout answers 504 (the abandoned parse finishes in the
// background and its parser returns to the pool).
func (s *Server) handleParse(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req parseRequest
	if err := decodeJSON(r, &req); err != nil {
		s.badRequest(w, "parse", err)
		return
	}
	if req.Grammar == "" {
		s.countError("parse", "request")
		writeError(w, http.StatusBadRequest, `missing "grammar"`)
		return
	}
	e, err := s.reg.Get(req.Grammar)
	if err != nil {
		s.grammarError(w, "parse", err)
		return
	}
	if sw, ok := w.(*statusWriter); ok {
		sw.grammar = e.Name
	}
	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	fr := s.newFlightRun(w, "parse", e.Name)
	resp, ok := s.parseWithDeadline(ctx, e, req, fr)
	if !ok {
		s.countError("parse", "timeout")
		writeError(w, http.StatusGatewayTimeout, "parse deadline exceeded")
		return
	}
	if resp.internalErr {
		writeError(w, http.StatusInternalServerError, resp.Error.Msg)
		return
	}
	code := http.StatusOK
	if !resp.OK {
		code = http.StatusUnprocessableEntity
		s.countError("parse", "syntax")
	}
	writeJSON(w, code, resp)
}

// batchRequest is the body of POST /v1/batch: either plain inputs
// sharing one grammar/rule, explicit per-item requests, or both.
type batchRequest struct {
	Grammar string         `json:"grammar,omitempty"`
	Rule    string         `json:"rule,omitempty"`
	Inputs  []string       `json:"inputs,omitempty"`
	Items   []parseRequest `json:"items,omitempty"`
	Tree    bool           `json:"tree,omitempty"`
	Stats   bool           `json:"stats,omitempty"`
}

// batchResponse reports every item in request order.
type batchResponse struct {
	Count     int             `json:"count"`
	Succeeded int             `json:"succeeded"`
	Failed    int             `json:"failed"`
	ElapsedUS int64           `json:"elapsed_us"`
	Results   []parseResponse `json:"results"`
}

// handleBatch serves POST /v1/batch: inputs fan out across a bounded
// worker pool, each parse drawing from its grammar's ParserPool. The
// response is 200 with per-item outcomes; only malformed requests and
// whole-batch problems (unknown grammar, oversize) fail the request.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req batchRequest
	if err := decodeJSON(r, &req); err != nil {
		s.badRequest(w, "batch", err)
		return
	}
	items := make([]parseRequest, 0, len(req.Inputs)+len(req.Items))
	for _, in := range req.Inputs {
		items = append(items, parseRequest{
			Grammar: req.Grammar, Rule: req.Rule, Input: in,
			Tree: req.Tree, Stats: req.Stats,
		})
	}
	for _, it := range req.Items {
		if it.Grammar == "" {
			it.Grammar = req.Grammar
		}
		if it.Rule == "" {
			it.Rule = req.Rule
		}
		items = append(items, it)
	}
	if len(items) == 0 {
		s.countError("batch", "request")
		writeError(w, http.StatusBadRequest, `empty batch: provide "inputs" or "items"`)
		return
	}
	if len(items) > s.cfg.MaxBatchItems {
		s.countError("batch", "request")
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch too large: %d items (max %d)", len(items), s.cfg.MaxBatchItems))
		return
	}
	if sw, ok := w.(*statusWriter); ok {
		sw.grammar = req.Grammar // shared grammar; empty for mixed batches
	}

	// Resolve every distinct grammar up front so an unknown grammar
	// fails the batch before any work runs.
	entries := map[string]*Entry{}
	for _, it := range items {
		if it.Grammar == "" {
			s.countError("batch", "request")
			writeError(w, http.StatusBadRequest, `missing "grammar"`)
			return
		}
		if _, ok := entries[it.Grammar]; ok {
			continue
		}
		e, err := s.reg.Get(it.Grammar)
		if err != nil {
			s.grammarError(w, "batch", err)
			return
		}
		entries[it.Grammar] = e
	}

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}

	start := time.Now()
	results := make([]parseResponse, len(items))
	workers := s.cfg.BatchWorkers
	if workers > len(items) {
		workers = len(items)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				it := items[i]
				if ctx.Err() != nil {
					results[i] = parseResponse{
						OK: false, Grammar: it.Grammar, Rule: it.Rule,
						Error: &errorJSON{Msg: "batch deadline exceeded"},
					}
					continue
				}
				// Each item gets its own flight run — own event ring,
				// own child span id under the request's trace — so an
				// anomalous item captures alone and a by-trace lookup
				// distinguishes the items. Reading w's header map here
				// is safe: the response is not written until wg.Wait.
				fr := s.newFlightRun(w, "batch", it.Grammar)
				var it0 time.Duration
				if s.tr != nil {
					it0 = s.tr.Now()
				}
				results[i] = s.doParse(entries[it.Grammar], it, fr)
				if s.tr != nil {
					span := ""
					if fr != nil {
						span = fr.span
					}
					rid, tid := "", ""
					if sw, ok := w.(*statusWriter); ok {
						rid, tid = sw.reqID, sw.traceID
					}
					s.tr.Emit(obs.Event{
						Name: "server.batch.item", Cat: obs.PhaseServer, Ph: obs.PhSpan,
						TS: it0, Dur: s.tr.Now() - it0, Decision: -1,
						OK: results[i].OK, N: int64(i), Rule: it.Grammar,
						Detail: rid + " " + tid + " " + span,
					})
				}
				s.finishFlight(ctx, fr, results[i], "")
			}
		}()
	}
	for i := range items {
		idx <- i
	}
	close(idx)
	wg.Wait()

	resp := batchResponse{
		Count:     len(results),
		ElapsedUS: time.Since(start).Microseconds(),
		Results:   results,
	}
	rid := w.Header().Get(requestIDHeader)
	for i := range results {
		if results[i].OK {
			resp.Succeeded++
			continue
		}
		resp.Failed++
		s.countError("batch", "syntax")
		// Stamp the batch's request id on every failed item, so a
		// client that fans results out to downstream consumers keeps
		// each error correlatable with the server's logs and spans.
		if results[i].Error != nil {
			results[i].Error.RequestID = rid
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleGrammars serves GET /v1/grammars: every grammar the directory
// offers, with fingerprints and analysis digests for the loaded ones.
func (s *Server) handleGrammars(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	list, err := s.reg.List()
	if err != nil {
		s.countError("grammars", "list")
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if c := s.cluster(); c != nil {
		for i := range list {
			list[i].Owner, list[i].Local = c.GrammarOwner(list[i].Name)
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Grammars []Listing `json:"grammars"`
	}{list})
}

// parseWithDeadline runs one parse, giving up at ctx's deadline. The
// abandoned goroutine completes the parse, returns its parser to the
// pool, and finalizes the flight recording (so a 504 still yields a
// capture); only the response is dropped. A panic on the parse
// goroutine — which the recoverPanics middleware cannot see — is
// recovered here into an internal-error response plus a "panic"
// flight capture.
func (s *Server) parseWithDeadline(ctx context.Context, e *Entry, req parseRequest, fr *flightRun) (parseResponse, bool) {
	done := make(chan parseResponse, 1)
	go func() {
		var resp parseResponse
		defer func() {
			if v := recover(); v != nil {
				s.countError("parse", "panic")
				rid, tid := "", ""
				if fr != nil {
					rid, tid = fr.reqID, fr.traceID
				}
				s.log.LogAttrs(context.Background(), slog.LevelError, "panic",
					slog.String("endpoint", "parse"),
					slog.String("grammar", e.Name),
					slog.String("request_id", rid),
					slog.String("trace_id", tid),
					slog.Any("panic", v),
					slog.String("stack", string(debugStack())),
				)
				resp = parseResponse{
					Grammar: e.Name, Rule: req.Rule, internalErr: true,
					Error: &errorJSON{Msg: fmt.Sprintf("internal error: %v", v)},
				}
				s.finishFlight(ctx, fr, resp, "panic")
			}
			done <- resp
		}()
		resp = s.doParse(e, req, fr)
		s.finishFlight(ctx, fr, resp, "")
	}()
	select {
	case resp := <-done:
		return resp, true
	case <-ctx.Done():
		return parseResponse{}, false
	}
}

// doParse is the parse core shared by /v1/parse and /v1/batch: check a
// parser out of the entry's pool (or build a recovery parser), parse,
// and render the response. When fr is non-nil the flight recorder is
// attached for exactly the lifetime of the parse — pooled parsers get
// it via SetFlightRecorder (detached before Put so the next checkout
// is back to a nil-check hot path), recovery parsers via construction.
func (s *Server) doParse(e *Entry, req parseRequest, fr *flightRun) parseResponse {
	rule := req.Rule
	if rule == "" {
		if start := e.G.AnalysisResult().Grammar.Start(); start != nil {
			rule = start.Name
		}
	}
	if fr != nil {
		fr.rule = rule
	}
	resp := parseResponse{Grammar: e.Name, Rule: rule}
	start := time.Now()

	var tree *llstar.Tree
	var perr error
	if req.Recover {
		// Recovery changes parser behavior, so it bypasses the pool —
		// but still feeds the shared coverage profile (resyncs are some
		// of the most interesting events it records).
		popts := []llstar.ParserOption{llstar.WithTree(), llstar.WithStats(), llstar.WithRecovery(0)}
		if e.Cov != nil {
			popts = append(popts, llstar.WithCoverage(e.Cov))
		}
		if fr != nil {
			popts = append(popts, llstar.WithFlightRecorder(fr.rec))
		}
		p := e.G.NewParser(popts...)
		tree, perr = p.Parse(req.Rule, req.Input)
		if fr != nil {
			fr.stats = toFlightStats(p.Stats())
		}
		if req.Stats {
			resp.Stats = toStatsJSON(p.Stats())
		}
		for _, se := range p.Errors() {
			resp.Recovered = append(resp.Recovered, syntaxErrorJSON(e.G, se))
		}
	} else {
		p := e.Pool.Get()
		if fr != nil {
			p.SetFlightRecorder(fr.rec)
		}
		tree, perr = p.Parse(req.Rule, req.Input)
		if fr != nil {
			fr.stats = toFlightStats(p.Stats())
			p.SetFlightRecorder(nil) // detach before Put
		}
		if req.Stats {
			resp.Stats = toStatsJSON(p.Stats()) // summarize before Put
		}
		e.Pool.Put(p)
	}
	resp.ElapsedUS = time.Since(start).Microseconds()

	if perr != nil {
		ej := toErrorJSON(e.G, perr)
		resp.Error = &ej
		return resp
	}
	resp.OK = true
	resp.Text = tree.String()
	resp.Nodes = tree.Count()
	resp.Tokens = len(tree.Leaves())
	if fr != nil {
		fr.stats.Tokens = int64(resp.Tokens)
	}
	if req.Tree {
		resp.Tree = toTreeNode(e.G, tree)
	}
	return resp
}

// grammarError maps registry errors to HTTP statuses: bad name 400,
// unknown grammar 404, anything else (unreadable file, analysis
// failure) 500.
func (s *Server) grammarError(w http.ResponseWriter, endpoint string, err error) {
	switch {
	case errors.Is(err, ErrBadName):
		s.countError(endpoint, "request")
		writeError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, ErrUnknownGrammar):
		s.countError(endpoint, "unknown_grammar")
		writeError(w, http.StatusNotFound, err.Error())
	default:
		s.countError(endpoint, "grammar_load")
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// badRequest maps body-decoding failures: oversize 413, otherwise 400.
func (s *Server) badRequest(w http.ResponseWriter, endpoint string, err error) {
	if errors.Is(err, errBodyTooLarge) {
		s.countError(endpoint, "toolarge")
		writeError(w, http.StatusRequestEntityTooLarge, err.Error())
		return
	}
	s.countError(endpoint, "request")
	writeError(w, http.StatusBadRequest, err.Error())
}
