package server

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"llstar"
	"llstar/internal/obs"
)

func newTestRegistry(t *testing.T, grammars map[string]string) (*Registry, string, *obs.Metrics) {
	t.Helper()
	dir := t.TempDir()
	for name, src := range grammars {
		if err := os.WriteFile(filepath.Join(dir, name+".g"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mx := obs.NewMetrics()
	return NewRegistry(dir, llstar.LoadOptions{Metrics: mx}, mx), dir, mx
}

func loadCount(mx *obs.Metrics, result string) int64 {
	return mx.Counter(obs.Label("llstar_server_grammar_loads_total", "result", result)).Value()
}

func TestRegistryNameValidation(t *testing.T) {
	r, _, _ := newTestRegistry(t, map[string]string{"expr": exprGrammar})
	for _, bad := range []string{"", "../expr", "a/b", `a\b`, ".hidden", "x..y", "a b"} {
		if _, err := r.Get(bad); !errors.Is(err, ErrBadName) {
			t.Errorf("Get(%q) = %v, want ErrBadName", bad, err)
		}
	}
	if _, err := r.Get("nosuch"); !errors.Is(err, ErrUnknownGrammar) {
		t.Errorf("Get(nosuch) = %v, want ErrUnknownGrammar", err)
	}
}

// TestRegistrySingleflight proves that any number of concurrent
// requests for a cold grammar trigger exactly one analysis.
func TestRegistrySingleflight(t *testing.T) {
	r, _, mx := newTestRegistry(t, map[string]string{"expr": exprGrammar})
	const n = 16
	entries := make([]*Entry, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := range n {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			e, err := r.Get("expr")
			if err != nil {
				t.Error(err)
				return
			}
			entries[i] = e
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 1; i < n; i++ {
		if entries[i] != entries[0] {
			t.Fatalf("entry %d differs from entry 0", i)
		}
	}
	if got := loadCount(mx, "load"); got != 1 {
		t.Errorf("loads = %d, want 1", got)
	}
}

// TestRegistryHotReload covers the reload path: a content change swaps
// in a freshly analyzed grammar, while a bare touch (same fingerprint)
// keeps the warm grammar and its parser pool.
func TestRegistryHotReload(t *testing.T) {
	r, dir, mx := newTestRegistry(t, map[string]string{"expr": exprGrammar})
	path := filepath.Join(dir, "expr.g")

	e1, err := r.Get("expr")
	if err != nil {
		t.Fatal(err)
	}
	if loadCount(mx, "load") != 1 {
		t.Fatalf("initial load count: %d", loadCount(mx, "load"))
	}

	// Same bytes, newer mtime: re-analyzed, but the warm entry's
	// Grammar and Pool survive.
	if err := os.Chtimes(path, time.Time{}, time.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	e2, err := r.Get("expr")
	if err != nil {
		t.Fatal(err)
	}
	if e2.G != e1.G || e2.Pool != e1.Pool {
		t.Error("touch replaced the warm grammar/pool")
	}
	if loadCount(mx, "unchanged") != 1 {
		t.Errorf("unchanged count: %d", loadCount(mx, "unchanged"))
	}
	// The refreshed identity sticks: the next Get is a pure cache hit.
	if e3, _ := r.Get("expr"); e3 != e2 {
		t.Error("identity refresh did not stick")
	}

	// A content change produces a new grammar with a new fingerprint.
	changed := exprGrammar + "// v2\n"
	if err := os.WriteFile(path, []byte(changed), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, time.Time{}, time.Now().Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	e4, err := r.Get("expr")
	if err != nil {
		t.Fatal(err)
	}
	if e4.G == e1.G {
		t.Error("content change did not reload")
	}
	if e4.G.Fingerprint() == e1.G.Fingerprint() {
		t.Error("fingerprint unchanged after content change")
	}
	if loadCount(mx, "reload") != 1 {
		t.Errorf("reload count: %d", loadCount(mx, "reload"))
	}

	// A reload that breaks the grammar keeps serving the last good
	// grammar, recording the failure.
	if err := os.WriteFile(path, []byte("grammar Broken; s : ; ;"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, time.Time{}, time.Now().Add(3*time.Second)); err != nil {
		t.Fatal(err)
	}
	eb, err := r.Get("expr")
	if err != nil {
		t.Fatalf("broken reload must serve the stale grammar: %v", err)
	}
	if eb.G != e4.G {
		t.Error("broken reload did not serve last good grammar")
	}
	if got := mx.Counter("llstar_server_reload_errors_total").Value(); got < 1 {
		t.Errorf("reload_errors_total = %d, want >= 1", got)
	}
	// ...and a vanished file keeps serving the last good grammar.
	if err := os.WriteFile(path, []byte(changed), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, time.Time{}, time.Now().Add(4*time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("expr"); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	e5, err := r.Get("expr")
	if err != nil {
		t.Fatalf("vanished file failed Get: %v", err)
	}
	if e5.G.Fingerprint() != e4.G.Fingerprint() {
		t.Error("vanished file did not serve last good grammar")
	}
}

// TestRegistryCompiledArtifact serves a grammar from a .llsc artifact
// with no source present, and proves source wins when both exist.
func TestRegistryCompiledArtifact(t *testing.T) {
	g, err := llstar.Load("expr.g", exprGrammar)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := g.WriteCompiled(filepath.Join(dir, "expr.llsc")); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(dir, llstar.LoadOptions{}, nil)

	e, err := r.Get("expr")
	if err != nil {
		t.Fatal(err)
	}
	if !e.Compiled || !e.G.LoadedFromCache() {
		t.Errorf("artifact entry: compiled=%v fromCache=%v", e.Compiled, e.G.LoadedFromCache())
	}
	if e.Digest == "" || e.Digest != g.AnalysisDigest() {
		t.Errorf("digest mismatch: %q vs %q", e.Digest, g.AnalysisDigest())
	}
	p := e.Pool.Get()
	tree, perr := p.Parse("", "x = ( y ) ;")
	e.Pool.Put(p)
	if perr != nil || tree == nil {
		t.Fatalf("parse via artifact: %v", perr)
	}

	// Dropping a source file beside the artifact: source wins on the
	// next (re)load.
	if err := os.WriteFile(filepath.Join(dir, "expr.g"), []byte(exprGrammar), 0o644); err != nil {
		t.Fatal(err)
	}
	// The entry's backing file (.llsc) is untouched, so force a reload
	// through a fresh registry — resolution order is what's under test.
	r2 := NewRegistry(dir, llstar.LoadOptions{}, nil)
	e2, err := r2.Get("expr")
	if err != nil {
		t.Fatal(err)
	}
	if e2.Compiled {
		t.Error("source did not win over artifact")
	}
}

// TestRegistryHotReloadThroughCache drives the hot-reload path with
// the persistent gcache enabled and concurrent readers: a writer flips
// the grammar source while readers Get and parse; once both versions
// have been analyzed, subsequent reloads are warm cache hits. Run
// under -race this covers the registry/gcache interaction end to end.
func TestRegistryHotReloadThroughCache(t *testing.T) {
	dir := t.TempDir()
	cacheDir := t.TempDir()
	path := filepath.Join(dir, "expr.g")
	v1 := exprGrammar
	v2 := exprGrammar + "// v2\n"
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(dir, llstar.LoadOptions{CacheDir: cacheDir}, nil)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				e, err := r.Get("expr")
				if err != nil {
					t.Errorf("Get under reload: %v", err)
					return
				}
				p := e.Pool.Get()
				_, perr := p.Parse("", "x = ( y ) ;")
				e.Pool.Put(p)
				if perr != nil {
					t.Errorf("parse under reload: %v", perr)
					return
				}
			}
		}()
	}
	for flip := 0; flip < 10; flip++ {
		src := v1
		if flip%2 == 0 {
			src = v2
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		mt := time.Now().Add(time.Duration(flip+1) * time.Second)
		if err := os.Chtimes(path, mt, mt); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	readers.Wait()

	// Both versions live in the persistent cache now, so the final
	// reload of each is a warm start.
	des, err := os.ReadDir(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(des) < 2 {
		t.Errorf("cache holds %d artifacts, want >= 2", len(des))
	}
	e, err := r.Get("expr")
	if err != nil {
		t.Fatal(err)
	}
	if !e.G.LoadedFromCache() {
		t.Error("post-flip reload was not a cache hit")
	}
}

func TestRegistryNamesAndPreloadAll(t *testing.T) {
	r, dir, _ := newTestRegistry(t, map[string]string{"expr": exprGrammar, "decl": declGrammar})
	// Non-grammar files and invalid stems are ignored.
	os.WriteFile(filepath.Join(dir, "README.md"), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(dir, ".hidden.g"), []byte("x"), 0o644)
	names, err := r.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "decl" || names[1] != "expr" {
		t.Fatalf("names: %v", names)
	}
	if err := r.Preload([]string{"all"}); err != nil {
		t.Fatal(err)
	}
	list, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range list {
		if !l.Loaded || l.Digest == "" {
			t.Errorf("preload all missed %q: %+v", l.Name, l)
		}
	}
	if err := r.Preload([]string{"nosuch"}); err == nil {
		t.Error("preload of unknown grammar did not error")
	}
}
