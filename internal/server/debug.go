package server

import (
	"net/http"
	"net/http/pprof"
	"strings"

	"llstar"
	"llstar/internal/obs/flight"
)

// This file is the server's introspection surface, mounted on the main
// handler when Config.Debug is set and always available through
// DebugHandler() for a private listener:
//
//	GET /debug/coverage              live per-grammar coverage (JSON)
//	GET /debug/coverage?grammar=X    one grammar only
//	GET /debug/coverage?format=html  self-contained HTML hotspot report
//	GET /debug/flight                flight-capture listing (JSON, newest first)
//	GET /debug/flight/{id}           one capture with its event timeline
//	                                 (?format=html timeline page, ?format=chrome
//	                                 trace_event JSON; id may be a request id)
//	GET /debug/flight/by-trace/{tid} every capture for one trace id, fleet-wide
//	GET /debug/fleet                 merged fleet view: JSON (default),
//	                                 ?format=prom scrape, ?format=html dashboard
//	GET /debug/events                this replica's fleet event log (JSON)
//	GET /debug/vars                  expvar-style metrics JSON
//	GET /debug/pprof/*               net/http/pprof (CPU, heap, ...)

func (s *Server) debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/coverage", s.handleCoverage)
	mux.HandleFunc("/debug/flight", s.handleFlightList)
	mux.HandleFunc("/debug/flight/", s.handleFlightGet)
	mux.HandleFunc("/debug/flight/by-trace/", s.handleFlightByTrace)
	mux.HandleFunc("/debug/fleet", s.handleFleet)
	mux.HandleFunc("/debug/events", s.handleEvents)
	mux.HandleFunc("/debug/vars", s.handleVars)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// flightListResponse is the body of GET /debug/flight: capture
// summaries (no event timelines), newest first.
type flightListResponse struct {
	Captures []flight.Capture `json:"captures"`
}

// handleFlightList serves the capture store index.
func (s *Server) handleFlightList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.flight == nil {
		writeError(w, http.StatusNotFound, "flight recorder disabled (Config.DisableFlight)")
		return
	}
	writeJSON(w, http.StatusOK, flightListResponse{Captures: s.flight.List()})
}

// handleFlightGet serves one capture with its full event timeline. The
// id is the store id ("f000003") or the request's X-Request-Id.
// ?format=html renders the self-contained timeline page; ?format=chrome
// emits Chrome trace_event JSON for chrome://tracing and Perfetto.
func (s *Server) handleFlightGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.flight == nil {
		writeError(w, http.StatusNotFound, "flight recorder disabled (Config.DisableFlight)")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/flight/")
	if id == "" {
		s.handleFlightList(w, r)
		return
	}
	c, ok := s.flight.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such capture: "+id)
		return
	}
	switch r.URL.Query().Get("format") {
	case "html":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := c.WriteHTML(w); err != nil {
			s.countError("flight", "write")
		}
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		if err := c.WriteChrome(w); err != nil {
			s.countError("flight", "write")
		}
	default:
		writeJSON(w, http.StatusOK, c)
	}
}

// coverageResponse is the body of GET /debug/coverage: one live
// snapshot per loaded grammar (grammars never parsed yet show zero
// counters; grammars never loaded do not appear).
type coverageResponse struct {
	Grammars map[string]*llstar.CoverageSnapshot `json:"grammars"`
}

// handleCoverage serves the live coverage profiles accumulated by every
// pooled parse since load (or the last unchanged-fingerprint reload,
// which keeps the profile). ?grammar= restricts to one grammar (404 if
// it is not loaded); ?format=html renders the hotspot report instead of
// JSON and requires the grammar to be unambiguous — either ?grammar= or
// exactly one loaded grammar.
func (s *Server) handleCoverage(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.cfg.DisableCoverage {
		writeError(w, http.StatusNotFound, "coverage profiling disabled (Config.DisableCoverage)")
		return
	}
	entries := s.reg.LoadedEntries()
	if name := r.URL.Query().Get("grammar"); name != "" {
		var hit []*Entry
		for _, e := range entries {
			if e.Name == name {
				hit = append(hit, e)
				break
			}
		}
		if len(hit) == 0 {
			writeError(w, http.StatusNotFound, "grammar not loaded: "+name)
			return
		}
		entries = hit
	}
	if r.URL.Query().Get("format") == "html" {
		if len(entries) != 1 || entries[0].Cov == nil {
			writeError(w, http.StatusBadRequest,
				"format=html needs one grammar: pass ?grammar=<name>")
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := entries[0].Cov.Snapshot().WriteHTML(w); err != nil {
			s.countError("coverage", "write")
		}
		return
	}
	resp := coverageResponse{Grammars: map[string]*llstar.CoverageSnapshot{}}
	for _, e := range entries {
		if e.Cov != nil {
			resp.Grammars[e.Name] = e.Cov.Snapshot()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleVars serves the metrics registry as one expvar-style JSON
// object — the same series as /metrics, for JSON-speaking collectors
// and humans with jq.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.mx.WriteJSON(w); err != nil {
		s.countError("vars", "write")
	}
}
