package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"llstar/internal/obs"
)

// newDebugTS serves s.Handler() (Config.Debug mounts the introspection
// routes on it) with cleanup tied to the test.
func newDebugTS(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// grammarClock hands out strictly increasing mtime offsets so repeated
// rewrites within one test always look newer to the registry.
var grammarClock atomic.Int64

// rewriteGrammar replaces name's source on disk with a future mtime,
// making the registry's next Get a reload.
func rewriteGrammar(t *testing.T, dir, name, src string) {
	t.Helper()
	path := filepath.Join(dir, name+".g")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	bump := time.Duration(grammarClock.Add(1)) * time.Second
	if err := os.Chtimes(path, time.Time{}, time.Now().Add(bump)); err != nil {
		t.Fatal(err)
	}
}

// obsFleet builds a fleet where every node gets its own JSON log
// buffer and memTracer, so cross-replica correlation is assertable
// per side of a proxy hop. FlightSlow: 1ns forces a capture for every
// parse.
func obsFleet(t *testing.T, size int) (nodes []*fleetNode, logs []*syncBuffer, trs []*memTracer) {
	t.Helper()
	logs = make([]*syncBuffer, size)
	trs = make([]*memTracer, size)
	nodes = newFleet(t, size, Config{Debug: true, FlightSlow: time.Nanosecond},
		fleetGrammars, false, func(i int, c *Config) {
			logs[i] = &syncBuffer{}
			trs[i] = newMemTracer()
			c.Logger = slog.New(slog.NewJSONHandler(logs[i], nil))
			c.Tracer = trs[i]
		})
	return nodes, logs, trs
}

// nodeIndex finds n's position in nodes (to pair it with its log/tracer).
func nodeIndex(t *testing.T, nodes []*fleetNode, n *fleetNode) int {
	t.Helper()
	for i := range nodes {
		if nodes[i] == n {
			return i
		}
	}
	t.Fatal("node not in fleet")
	return -1
}

// logLine scans a JSON log for the newest record with msg and returns
// its decoded attrs.
func logLine(t *testing.T, buf *syncBuffer, msg string) (map[string]any, bool) {
	t.Helper()
	var found map[string]any
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", sc.Text(), err)
		}
		if rec["msg"] == msg {
			found = rec
		}
	}
	return found, found != nil
}

// TestFleetTraceCorrelationAcrossProxy is the tentpole acceptance
// path: a proxied parse must leave spans, JSON log lines, and a
// flight capture on BOTH replicas it touched, all sharing the trace
// id the client sent — and /debug/flight/by-trace/{id} asked on the
// origin must return the owner-side capture.
func TestFleetTraceCorrelationAcrossProxy(t *testing.T) {
	nodes, logs, trs := obsFleet(t, 3)
	owner, other := ownerOf(t, nodes, "expr")

	const wantTID = "4bf92f3577b34da6a3ce929d0e0e4736"
	body := `{"grammar": "expr", "input": "x = 1 ;"}`
	req, err := http.NewRequest(http.MethodPost, other.url()+"/v1/parse", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(traceparentHeader, "00-"+wantTID+"-00f067aa0ba902b7-01")
	resp, err := other.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("proxied parse = %d", resp.StatusCode)
	}

	// The response carries the inbound trace id (new parent span id)
	// and names the replica that actually parsed.
	if got := traceIDFrom(resp.Header.Get(traceparentHeader)); got != wantTID {
		t.Fatalf("response trace id = %q, want %q", got, wantTID)
	}
	if got := resp.Header.Get("X-Llstar-Served-By"); got != owner.addr {
		t.Fatalf("served-by = %q, want owner %q", got, owner.addr)
	}
	rid := resp.Header.Get(requestIDHeader)

	// Origin side: "proxy" log line and cluster.proxy span, tagged.
	oi, wi := nodeIndex(t, nodes, other), nodeIndex(t, nodes, owner)
	rec, ok := logLine(t, logs[oi], "proxy")
	if !ok {
		t.Fatalf("origin has no proxy log line:\n%s", logs[oi].String())
	}
	if rec["trace_id"] != wantTID || rec["request_id"] != rid || rec["owner"] != owner.addr {
		t.Errorf("origin proxy line = %v", rec)
	}
	span, ok := trs[oi].find("cluster.proxy")
	if !ok || !strings.Contains(span.Detail, wantTID) || !strings.Contains(span.Detail, owner.addr) {
		t.Errorf("origin cluster.proxy span = %+v (found %v)", span, ok)
	}

	// Owner side: "request" access line, server.parse span, and a
	// flight capture — same trace id, replica-tagged.
	rec, ok = logLine(t, logs[wi], "request")
	if !ok {
		t.Fatalf("owner has no request log line:\n%s", logs[wi].String())
	}
	if rec["trace_id"] != wantTID || rec["request_id"] != rid {
		t.Errorf("owner request line = %v", rec)
	}
	if _, ok := trs[wi].find("server.parse"); !ok {
		t.Error("owner has no server.parse span")
	}
	cap, ok := owner.srv.FlightStore().Get(rid)
	if !ok {
		t.Fatal("owner has no flight capture for the proxied parse")
	}
	if cap.TraceID != wantTID || cap.Replica != owner.addr || cap.SpanID == "" {
		t.Errorf("owner capture tags = trace %q replica %q span %q", cap.TraceID, cap.Replica, cap.SpanID)
	}

	// Fleet-wide lookup from the ORIGIN (which holds no capture
	// itself) must surface the owner-side capture.
	code, raw := getBody(t, other.url()+"/debug/flight/by-trace/"+wantTID)
	if code != 200 {
		t.Fatalf("by-trace = %d", code)
	}
	var bt byTraceResponse
	if err := json.Unmarshal(raw, &bt); err != nil {
		t.Fatal(err)
	}
	if bt.Count < 1 {
		t.Fatalf("by-trace found no captures: %s", raw)
	}
	found := false
	for _, c := range bt.Captures {
		if c.Replica == owner.addr && c.TraceID == wantTID {
			found = true
		}
	}
	if !found {
		t.Errorf("by-trace missing the owner-side capture: %+v", bt.Captures)
	}
}

// TestFleetProxyRemintsMalformedTraceparent: garbage inbound trace
// context is replaced once at the edge, and the re-minted id — not a
// second fresh one — is what reaches the owner.
func TestFleetProxyRemintsMalformedTraceparent(t *testing.T) {
	nodes, _, _ := obsFleet(t, 3)
	owner, other := ownerOf(t, nodes, "expr")

	body := `{"grammar": "expr", "input": "x = 1 ;"}`
	req, err := http.NewRequest(http.MethodPost, other.url()+"/v1/parse", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(traceparentHeader, "00-zzzz-not-a-traceparent-01")
	resp, err := other.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("proxied parse = %d", resp.StatusCode)
	}
	tid := traceIDFrom(resp.Header.Get(traceparentHeader))
	if tid == "" {
		t.Fatalf("no valid traceparent minted: %q", resp.Header.Get(traceparentHeader))
	}
	rid := resp.Header.Get(requestIDHeader)
	cap, ok := owner.srv.FlightStore().Get(rid)
	if !ok {
		t.Fatal("owner has no capture")
	}
	if cap.TraceID != tid {
		t.Errorf("owner capture trace id %q != response trace id %q (re-minted twice?)", cap.TraceID, tid)
	}
}

// TestFleet504ProxiedCaptureOnOwner: a proxied parse that blows the
// owner's deadline answers 504 through the proxy, and the owner still
// finalizes a trace-tagged capture once the abandoned parse finishes.
func TestFleet504ProxiedCaptureOnOwner(t *testing.T) {
	nodes := newFleet(t, 2, Config{
		Debug:          true,
		RequestTimeout: time.Millisecond,
		MaxBodyBytes:   16 << 20,
		FlightSlow:     -1, // the capture must come from the 504, not latency
	}, fleetGrammars, false)
	owner, other := ownerOf(t, nodes, "json")

	resp, _ := postJSON(t, other.ts.Client(), other.url()+"/v1/parse",
		parseRequest{Grammar: "json", Input: bigJSONInput(300_000)})
	if resp.StatusCode != 504 {
		t.Fatalf("proxied timeout = %d", resp.StatusCode)
	}
	rid := resp.Header.Get(requestIDHeader)
	tid := traceIDFrom(resp.Header.Get(traceparentHeader))

	deadline := time.Now().Add(30 * time.Second)
	for {
		if c, ok := owner.srv.FlightStore().Get(rid); ok {
			if c.Status != 504 || c.Trigger != "status" {
				t.Errorf("owner capture = status %d trigger %q", c.Status, c.Trigger)
			}
			if c.TraceID != tid || c.Replica != owner.addr {
				t.Errorf("owner capture tags = trace %q replica %q, want %q/%q",
					c.TraceID, c.Replica, tid, owner.addr)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("owner never captured the 504-abandoned proxied parse")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFleetBatchPerItemCaptures: every /v1/batch item gets its own
// capture under the request's trace id, each with a distinct span id.
func TestFleetBatchPerItemCaptures(t *testing.T) {
	s, _ := newTestServer(t, Config{Debug: true, FlightSlow: time.Nanosecond},
		map[string]string{"expr": exprGrammar})
	if err := s.Preload("expr"); err != nil {
		t.Fatal(err)
	}
	ts := newDebugTS(t, s)

	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/batch",
		batchRequest{Grammar: "expr", Inputs: []string{"x = 1 ;", "y = 2 ;", "z = 3 ;"}})
	if resp.StatusCode != 200 {
		t.Fatalf("batch = %d", resp.StatusCode)
	}
	tid := traceIDFrom(resp.Header.Get(traceparentHeader))

	code, raw := getBody(t, ts.URL+"/debug/flight/by-trace/"+tid)
	if code != 200 {
		t.Fatalf("by-trace = %d", code)
	}
	var bt byTraceResponse
	if err := json.Unmarshal(raw, &bt); err != nil {
		t.Fatal(err)
	}
	if bt.Count != 3 {
		t.Fatalf("captures for the batch = %d, want 3", bt.Count)
	}
	spans := map[string]bool{}
	for _, c := range bt.Captures {
		if c.Endpoint != "batch" || c.TraceID != tid {
			t.Errorf("item capture = endpoint %q trace %q", c.Endpoint, c.TraceID)
		}
		if c.SpanID == "" {
			t.Error("item capture has no span id")
		}
		spans[c.SpanID] = true
	}
	if len(spans) != 3 {
		t.Errorf("span ids not distinct: %v", spans)
	}
}

// TestFleetByTraceRejectsBadIDs: the id must be exactly 32 lowercase
// hex digits — anything else is a client error, not a fan-out.
func TestFleetByTraceRejectsBadIDs(t *testing.T) {
	s, _ := newTestServer(t, Config{Debug: true}, map[string]string{"expr": exprGrammar})
	ts := newDebugTS(t, s)
	for _, id := range []string{"", "short", strings.Repeat("g", 32), strings.Repeat("A", 32),
		strings.Repeat("0", 31), strings.Repeat("0", 33)} {
		code, _ := getBody(t, ts.URL+"/debug/flight/by-trace/"+id)
		if code != http.StatusBadRequest {
			t.Errorf("by-trace %q = %d, want 400", id, code)
		}
	}
}

// TestFleetDebugFleetMergedView: asked on any replica, /debug/fleet
// merges every replica into one JSON topology, one Prometheus scrape
// with per-replica labels, and one HTML dashboard.
func TestFleetDebugFleetMergedView(t *testing.T) {
	nodes, _, _ := obsFleet(t, 3)
	owner, other := ownerOf(t, nodes, "expr")

	// Traffic through a non-owner: owner gets a parse, origin a proxy.
	resp, _ := postJSON(t, other.ts.Client(), other.url()+"/v1/parse",
		parseRequest{Grammar: "expr", Input: "x = 1 ;"})
	if resp.StatusCode != 200 {
		t.Fatalf("parse = %d", resp.StatusCode)
	}

	code, raw := getBody(t, other.url()+"/debug/fleet")
	if code != 200 {
		t.Fatalf("/debug/fleet = %d", code)
	}
	var view fleetResponse
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}
	if view.Self != other.addr || view.RingSize != 3 || view.UpCount != 3 || !view.Quorum {
		t.Fatalf("fleet header = %+v", view)
	}
	if len(view.Replicas) != 3 {
		t.Fatalf("merged view has %d replicas, want 3", len(view.Replicas))
	}
	byAddr := map[string]fleetPeerView{}
	for _, v := range view.Replicas {
		if v.Err != "" {
			t.Errorf("replica %s unreachable: %s", v.Addr, v.Err)
		}
		if !v.Ready || v.Grammars != len(fleetGrammars) {
			t.Errorf("replica %s: ready=%v grammars=%d", v.Addr, v.Ready, v.Grammars)
		}
		byAddr[v.Addr] = v
	}
	if v := byAddr[other.addr]; !v.Self {
		t.Error("asking replica not marked self")
	}
	// The owner's snapshot must show the parse it served, with the new
	// per-endpoint latency histogram populated.
	ownerHists := byAddr[owner.addr].Metrics.Hists
	histFound := false
	for name, h := range ownerHists {
		if strings.HasPrefix(name, "llstar_server_latency_us{") &&
			strings.Contains(name, `endpoint="parse"`) && h.Count > 0 {
			histFound = true
		}
	}
	if !histFound {
		t.Errorf("owner snapshot lacks a populated parse latency histogram: %v", ownerHists)
	}

	// Prometheus: every replica labeled, plus the fleet-summed series.
	code, raw = getBody(t, other.url()+"/debug/fleet?format=prom")
	if code != 200 {
		t.Fatalf("?format=prom = %d", code)
	}
	prom := string(raw)
	for _, n := range nodes {
		if !strings.Contains(prom, fmt.Sprintf(`replica="%s"`, n.addr)) {
			t.Errorf("scrape missing replica %s", n.addr)
		}
	}
	if !strings.Contains(prom, "llstar_server_latency_us_bucket") {
		t.Error("scrape missing latency histogram buckets")
	}

	// Dashboard: topology rows for all three, latency table rendered.
	code, raw = getBody(t, other.url()+"/debug/fleet?format=html")
	if code != 200 {
		t.Fatalf("?format=html = %d", code)
	}
	html := string(raw)
	for _, n := range nodes {
		if !strings.Contains(html, n.addr) {
			t.Errorf("dashboard missing replica %s", n.addr)
		}
	}
	for _, want := range []string{"Topology", "Latency", "Events", "p95"} {
		if !strings.Contains(html, want) {
			t.Errorf("dashboard missing %q section", want)
		}
	}
}

// TestFleetDebugFleetDeadPeerDegrades is the kill-one-peer acceptance
// property: with a replica gone, every /debug/fleet format still
// answers 200 with partial results — the dead peer appears with an
// error, never as a 5xx.
func TestFleetDebugFleetDeadPeerDegrades(t *testing.T) {
	nodes, _, _ := obsFleet(t, 3)
	dead := nodes[2]
	dead.ts.Close()
	for _, n := range nodes[:2] {
		n.cl.MarkSuspect(dead.addr)
		n.cl.MarkSuspect(dead.addr)
	}

	code, raw := getBody(t, nodes[0].url()+"/debug/fleet")
	if code != 200 {
		t.Fatalf("/debug/fleet with dead peer = %d", code)
	}
	var view fleetResponse
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}
	if len(view.Replicas) != 3 {
		t.Fatalf("merged view has %d replicas, want 3 (dead one as partial)", len(view.Replicas))
	}
	var sawDead bool
	for _, v := range view.Replicas {
		if v.Addr == dead.addr {
			sawDead = true
			if v.Err == "" {
				t.Error("dead replica has no error annotation")
			}
			if v.Up {
				t.Error("dead replica still marked up")
			}
		}
	}
	if !sawDead {
		t.Error("dead replica dropped from the merged view entirely")
	}

	for _, format := range []string{"?format=prom", "?format=html"} {
		code, raw = getBody(t, nodes[0].url()+"/debug/fleet"+format)
		if code != 200 {
			t.Fatalf("/debug/fleet%s with dead peer = %d", format, code)
		}
		if format == "?format=html" && !strings.Contains(string(raw), "unreachable") {
			t.Error("dashboard does not flag the unreachable replica")
		}
	}

	// The health flip landed in the survivors' event logs.
	code, raw = getBody(t, nodes[0].url()+"/debug/events")
	if code != 200 {
		t.Fatalf("/debug/events = %d", code)
	}
	var ev eventsResponse
	if err := json.Unmarshal(raw, &ev); err != nil {
		t.Fatal(err)
	}
	var sawDown, sawRebalance bool
	for _, e := range ev.Events {
		if e.Kind == obs.EventPeerDown && e.Peer == dead.addr {
			sawDown = true
		}
		if e.Kind == obs.EventRebalance {
			sawRebalance = true
		}
	}
	if !sawDown || !sawRebalance {
		t.Errorf("event log missing peer_down/rebalance (down=%v rebalance=%v): %+v",
			sawDown, sawRebalance, ev.Events)
	}
}

// TestFleetSingleNodeDebugFleet: every fleet endpoint must work on a
// clusterless server — a one-replica fleet, not an error.
func TestFleetSingleNodeDebugFleet(t *testing.T) {
	s, _ := newTestServer(t, Config{Debug: true, FlightSlow: time.Nanosecond},
		map[string]string{"expr": exprGrammar})
	if err := s.Preload("expr"); err != nil {
		t.Fatal(err)
	}
	ts := newDebugTS(t, s)
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/parse",
		parseRequest{Grammar: "expr", Input: "x = 1 ;"})
	if resp.StatusCode != 200 {
		t.Fatalf("parse = %d", resp.StatusCode)
	}
	tid := traceIDFrom(resp.Header.Get(traceparentHeader))

	code, raw := getBody(t, ts.URL+"/debug/fleet")
	if code != 200 {
		t.Fatalf("/debug/fleet = %d", code)
	}
	var view fleetResponse
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}
	if view.RingSize != 1 || len(view.Replicas) != 1 || !view.Replicas[0].Self {
		t.Fatalf("single-node fleet = %+v", view)
	}
	for _, format := range []string{"?format=prom", "?format=html"} {
		if code, _ := getBody(t, ts.URL+"/debug/fleet"+format); code != 200 {
			t.Errorf("/debug/fleet%s = %d", format, code)
		}
	}
	code, raw = getBody(t, ts.URL+"/debug/flight/by-trace/"+tid)
	if code != 200 {
		t.Fatalf("by-trace = %d", code)
	}
	var bt byTraceResponse
	if err := json.Unmarshal(raw, &bt); err != nil {
		t.Fatal(err)
	}
	if bt.Count != 1 {
		t.Errorf("single-node by-trace count = %d, want 1", bt.Count)
	}
}

// TestFleetEventLogDisabled: EventLogSize < 0 turns the log off —
// /debug/events answers 404 and nothing panics on the producer side.
func TestFleetEventLogDisabled(t *testing.T) {
	s, _ := newTestServer(t, Config{Debug: true, EventLogSize: -1},
		map[string]string{"expr": exprGrammar})
	if err := s.Preload("expr"); err != nil { // reload event producer runs with a nil log
		t.Fatal(err)
	}
	if s.EventLog() != nil {
		t.Fatal("event log built despite EventLogSize < 0")
	}
	ts := newDebugTS(t, s)
	if code, _ := getBody(t, ts.URL+"/debug/events"); code != http.StatusNotFound {
		t.Errorf("/debug/events disabled = %d, want 404", code)
	}
}

// TestFleetReloadEventsRecorded: grammar lifecycle (reload success and
// serve-stale) lands in the event log with grammar attribution.
func TestFleetReloadEventsRecorded(t *testing.T) {
	s, dir := newTestServer(t, Config{Debug: true}, map[string]string{"expr": exprGrammar})
	if err := s.Preload("expr"); err != nil {
		t.Fatal(err)
	}
	// Change the grammar on disk and force a reload.
	rewriteGrammar(t, dir, "expr", exprGrammar+"\n// touched\n")
	if _, err := s.Registry().Get("expr"); err != nil {
		t.Fatal(err)
	}
	var sawReload bool
	for _, e := range s.EventLog().Events() {
		if e.Kind == obs.EventReload && e.Grammar == "expr" && e.OK {
			sawReload = true
		}
	}
	if !sawReload {
		t.Errorf("no reload event for expr: %+v", s.EventLog().Events())
	}
	// Break it: the failed reload serves stale and logs both events.
	rewriteGrammar(t, dir, "expr", "grammar broken ;;;")
	if _, err := s.Registry().Get("expr"); err != nil {
		t.Fatalf("serve-stale should mask the broken reload: %v", err)
	}
	var sawStale bool
	for _, e := range s.EventLog().Events() {
		if e.Kind == obs.EventServeStale && e.Grammar == "expr" {
			sawStale = true
		}
	}
	if !sawStale {
		t.Errorf("no serve_stale event after broken reload: %+v", s.EventLog().Events())
	}
}

// TestFleetArtifactFetchEventRecorded: a cold replica warm-starting
// from peers logs artifact_fetch events naming the source peer.
func TestFleetArtifactFetchEventRecorded(t *testing.T) {
	nodes := newFleet(t, 2, Config{Debug: true}, fleetGrammars, true)
	cold := nodes[len(nodes)-1]
	if err := cold.srv.Preload("all"); err != nil {
		t.Fatal(err)
	}
	fetches := 0
	for _, e := range cold.srv.EventLog().Events() {
		if e.Kind == obs.EventArtifactFetch && e.OK && e.Peer != "" {
			fetches++
		}
	}
	if fetches != len(fleetGrammars) {
		t.Errorf("artifact_fetch events = %d, want %d: %+v",
			fetches, len(fleetGrammars), cold.srv.EventLog().Events())
	}
}
