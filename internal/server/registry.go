package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"llstar"
	"llstar/internal/gcache"
	"llstar/internal/obs"
)

// Registry errors, distinguished so the HTTP layer can map them to
// status codes (invalid name -> 400, unknown -> 404, load failure -> 500).
var (
	// ErrBadName reports a grammar name that is not a plain file stem.
	ErrBadName = errors.New("server: invalid grammar name")
	// ErrUnknownGrammar reports a name with no .g or .llsc file in the
	// grammar directory.
	ErrUnknownGrammar = errors.New("server: unknown grammar")
)

// grammarName accepts plain file stems: no path separators, no leading
// dot, so a request can never escape the grammar directory.
var grammarName = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// Registry resolves grammar names to loaded, analyzed grammars. Names
// map to files in one directory: <dir>/<name>.g (source, analyzed on
// first use, warm-started through the persistent gcache when a cache
// dir is configured) or <dir>/<name>.llsc (a precompiled artifact from
// `llstar compile`). When both exist the source wins — the artifact is
// then only reachable through the facade's own cache.
//
// Loads are deduplicated singleflight-style: any number of concurrent
// requests for a cold grammar trigger exactly one analysis, and the
// rest wait for it. Loaded grammars hot-reload: every hit re-stats the
// backing file, and a changed mtime/size triggers a reload; if the
// reloaded fingerprint is unchanged (e.g. a touch) the warm entry and
// its parser pool are kept. A reload that fails — the file was broken,
// or read mid-write — keeps serving the last good grammar while the
// failure is surfaced through Listing.LastError and the
// llstar_server_reload_errors_total counter.
type Registry struct {
	dir  string
	opts llstar.LoadOptions
	mx   *obs.Metrics

	// DisableCoverage skips creating the per-entry coverage profile that
	// backs /debug/coverage. Set it before the first Get; the server
	// wires Config.DisableCoverage here.
	DisableCoverage bool

	// Events, when set, receives fleet events for reload successes,
	// load failures, and serve-stale fallbacks (the server wires its
	// event log here). Nil-safe by obs.EventLog contract.
	Events *obs.EventLog

	// Fetch, when set (fleet mode), pulls a missing .llsc artifact from
	// peer replicas by fingerprint. Set it before serving traffic; a
	// source-grammar load whose artifact is absent locally then
	// pre-warms the cache from the fleet instead of re-running
	// analysis, so one replica's compile warms every replica.
	Fetch func(ctx context.Context, fp string) (data []byte, from string, err error)
	// FetchTimeout bounds one pre-warm fetch (default 10s).
	FetchTimeout time.Duration

	// cache is the shared artifact store (opts.CacheDir); nil when the
	// server runs cache-less. Pre-warm writes into it, and the cluster
	// artifact endpoint serves from it.
	cache *gcache.Cache

	mu      sync.Mutex
	entries map[string]*Entry
	loads   map[string]*loadCall
	lastErr map[string]string // last load failure per name, cleared on success
}

// Entry is one resolved grammar: the immutable Grammar, the parser
// pool serving it, its analysis digest, and the file identity used for
// hot reload.
type Entry struct {
	Name     string
	Path     string
	Compiled bool // loaded from a .llsc artifact
	G        *llstar.Grammar
	Pool     *llstar.ParserPool
	Digest   string // Grammar.AnalysisDigest, computed once at load
	LoadedAt time.Time
	// Cov accumulates runtime coverage from every pooled (and recovery)
	// parse of this grammar; nil when Registry.DisableCoverage is set.
	// An unchanged-fingerprint reload keeps the old profile, so counters
	// survive file touches.
	Cov *llstar.CoverageProfile

	mtime time.Time
	size  int64
}

type loadCall struct {
	done chan struct{}
	e    *Entry
	err  error
}

// NewRegistry returns a registry over dir. opts configure source-grammar
// loads (left-recursion rewrite, analysis workers, persistent cache);
// mx, if non-nil, receives llstar_server_grammar_loads_total counters
// and is shared with every entry's parser pool.
func NewRegistry(dir string, opts llstar.LoadOptions, mx *obs.Metrics) *Registry {
	r := &Registry{
		dir:     dir,
		opts:    opts,
		mx:      mx,
		entries: map[string]*Entry{},
		loads:   map[string]*loadCall{},
		lastErr: map[string]string{},
	}
	if opts.CacheDir != "" {
		// Cache trouble is never fatal (same policy as the facade): a
		// nil cache just disables pre-warm and artifact serving.
		r.cache, _ = gcache.New(opts.CacheDir, opts.CacheMaxBytes)
	}
	return r
}

// ArtifactCache returns the shared on-disk artifact store, or nil when
// the registry runs without one. The cluster artifact endpoint serves
// (and the fleet pre-warm fills) this cache.
func (r *Registry) ArtifactCache() *gcache.Cache { return r.cache }

// Get returns the entry for name, loading (or hot-reloading) it if
// needed. Concurrent Gets for the same cold name share one load.
func (r *Registry) Get(name string) (*Entry, error) {
	if !grammarName.MatchString(name) || strings.Contains(name, "..") {
		return nil, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	r.mu.Lock()
	if e, ok := r.entries[name]; ok && r.fresh(e) {
		r.mu.Unlock()
		return e, nil
	}
	if c, ok := r.loads[name]; ok {
		r.mu.Unlock()
		<-c.done
		return c.e, c.err
	}
	c := &loadCall{done: make(chan struct{})}
	r.loads[name] = c
	old := r.entries[name]
	r.mu.Unlock()

	e, err := r.load(name, old)
	r.mu.Lock()
	delete(r.loads, name)
	if err == nil {
		r.entries[name] = e
		delete(r.lastErr, name)
	} else {
		r.lastErr[name] = err.Error()
		r.Events.Add(obs.FleetEvent{Kind: obs.EventLoadError, Grammar: name, Detail: err.Error()})
		if old != nil {
			// A grammar that served before now fails to load — someone
			// broke the file (or we read it mid-write). Keep serving the
			// last good grammar, as for a vanished file; the failure is
			// surfaced through Listing.LastError and the counter, and
			// the next Get retries the load.
			r.countReloadError()
			r.Events.Add(obs.FleetEvent{Kind: obs.EventServeStale, Grammar: name, OK: true,
				Detail: "serving last good grammar: " + err.Error()})
			e, err = old, nil
		}
	}
	r.mu.Unlock()
	c.e, c.err = e, err
	close(c.done)
	return e, err
}

// fresh reports whether a loaded entry still matches its backing file.
// A file that has vanished keeps serving its last good grammar rather
// than failing requests mid-flight.
func (r *Registry) fresh(e *Entry) bool {
	st, err := os.Stat(e.Path)
	if err != nil {
		return true
	}
	return st.ModTime().Equal(e.mtime) && st.Size() == e.size
}

// resolve maps a name to its backing file: <name>.g first, then
// <name>.llsc.
func (r *Registry) resolve(name string) (path string, compiled bool, err error) {
	g := filepath.Join(r.dir, name+".g")
	if _, err := os.Stat(g); err == nil {
		return g, false, nil
	}
	c := filepath.Join(r.dir, name+gcache.Ext)
	if _, err := os.Stat(c); err == nil {
		return c, true, nil
	}
	return "", false, fmt.Errorf("%w: %q", ErrUnknownGrammar, name)
}

// load reads, analyzes, and wraps one grammar. When a previous entry
// exists and the reloaded fingerprint matches it, the old entry (and
// its warm parser pool) is kept with a refreshed file identity.
func (r *Registry) load(name string, old *Entry) (*Entry, error) {
	path, compiled, err := r.resolve(name)
	if err != nil {
		r.count("error")
		return nil, err
	}
	st, err := os.Stat(path)
	if err != nil {
		r.count("error")
		return nil, fmt.Errorf("server: %w", err)
	}
	var g *llstar.Grammar
	if compiled {
		g, err = llstar.LoadCompiled(path)
	} else {
		var data []byte
		if data, err = os.ReadFile(path); err == nil {
			// The base name (not the full path) keys the load: the
			// fingerprint covers the name, and replicas in a fleet must
			// compute identical fingerprints for identical grammars even
			// when their grammar directories live at different paths.
			r.prewarm(filepath.Base(path), string(data))
			g, err = llstar.LoadWith(filepath.Base(path), string(data), r.opts)
		}
	}
	if err != nil {
		r.count("error")
		return nil, fmt.Errorf("server: loading grammar %q: %w", name, err)
	}
	if old != nil && old.Path == path && old.G.Fingerprint() == g.Fingerprint() {
		e := *old
		e.mtime, e.size = st.ModTime(), st.Size()
		r.count("unchanged")
		return &e, nil
	}
	result := "load"
	if old != nil {
		result = "reload"
		r.Events.Add(obs.FleetEvent{Kind: obs.EventReload, Grammar: name, OK: true,
			Detail: "fingerprint " + g.Fingerprint()})
	}
	r.count(result)
	popts := []llstar.ParserOption{llstar.WithTree(), llstar.WithStats()}
	if r.mx != nil {
		popts = append(popts, llstar.WithMetrics(r.mx))
	}
	var cov *llstar.CoverageProfile
	if !r.DisableCoverage {
		cov = g.NewCoverage()
		popts = append(popts, llstar.WithCoverage(cov))
	}
	return &Entry{
		Name:     name,
		Path:     path,
		Compiled: compiled,
		G:        g,
		Pool:     g.NewParserPool(popts...),
		Digest:   g.AnalysisDigest(),
		LoadedAt: time.Now(),
		Cov:      cov,
		mtime:    st.ModTime(),
		size:     st.Size(),
	}, nil
}

// prewarm makes sure the local artifact cache holds the analysis for
// (name, src) before LoadWith looks: a local Stat miss pulls the .llsc
// from a fleet peer and stores it, so the load that follows is a plain
// cache hit — no live analysis runs, and the cache hit/miss counters
// stay truthful (a fleet-warmed load counts as a hit, not a miss).
// Best-effort: any failure falls through to live analysis.
func (r *Registry) prewarm(name, src string) {
	fetch := r.Fetch
	if fetch == nil || r.cache == nil {
		return
	}
	fp := llstar.SourceFingerprint(name, src, r.opts)
	if _, err := r.cache.Stat(fp); err == nil {
		return // already warm
	}
	timeout := r.FetchTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	data, _, err := fetch(ctx, fp)
	if err != nil {
		return
	}
	// The decoder validates checksum and fingerprint on load, so a
	// corrupt or mismatched artifact degrades to a miss, not a wrong
	// grammar.
	r.cache.Store(fp, data)
}

func (r *Registry) count(result string) {
	if r.mx != nil {
		r.mx.Counter(obs.Label("llstar_server_grammar_loads_total", "result", result)).Inc()
	}
}

func (r *Registry) countReloadError() {
	if r.mx != nil {
		r.mx.Counter("llstar_server_reload_errors_total").Inc()
	}
}

// Listing is one row of the registry listing: every grammar the
// directory offers, with analysis details for the loaded ones.
type Listing struct {
	Name        string `json:"name"`
	File        string `json:"file"`
	Compiled    bool   `json:"compiled,omitempty"`
	Loaded      bool   `json:"loaded"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Digest      string `json:"analysis_digest,omitempty"`
	Decisions   int    `json:"decisions,omitempty"`
	Warnings    int    `json:"warnings,omitempty"`
	FromCache   bool   `json:"loaded_from_cache,omitempty"`
	// LastError is the most recent load failure for this name, kept
	// until a load succeeds. A loaded grammar with a LastError is
	// serving a stale version: its file changed but no longer loads.
	LastError string `json:"last_error,omitempty"`
	// Owner is the fleet replica this grammar's requests route to
	// (cluster mode only); Local reports whether that is this replica.
	// Non-owned grammars are still servable here — ownership steers
	// routing, it does not gate serving.
	Owner string `json:"owner,omitempty"`
	Local bool   `json:"local,omitempty"`
}

// Names returns every grammar name the directory offers, sorted.
func (r *Registry) Names() ([]string, error) {
	des, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	seen := map[string]bool{}
	var names []string
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		n := de.Name()
		ext := filepath.Ext(n)
		if ext != ".g" && ext != gcache.Ext {
			continue
		}
		stem := strings.TrimSuffix(n, ext)
		if !grammarName.MatchString(stem) || seen[stem] {
			continue
		}
		seen[stem] = true
		names = append(names, stem)
	}
	sort.Strings(names)
	return names, nil
}

// List returns the registry listing, sorted by name.
func (r *Registry) List() ([]Listing, error) {
	names, err := r.Names()
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Listing, 0, len(names))
	for _, name := range names {
		path, compiled, err := r.resolve(name)
		if err != nil {
			continue // raced with a deletion
		}
		l := Listing{Name: name, File: filepath.Base(path), Compiled: compiled,
			LastError: r.lastErr[name]}
		if e, ok := r.entries[name]; ok {
			l.Loaded = true
			l.Fingerprint = e.G.Fingerprint()
			l.Digest = e.Digest
			l.Decisions = len(e.G.Decisions())
			l.Warnings = len(e.G.Warnings())
			l.FromCache = e.G.LoadedFromCache()
		}
		out = append(out, l)
	}
	return out, nil
}

// LoadedEntries returns the currently loaded entries, sorted by name.
// The debug endpoints read their coverage profiles.
func (r *Registry) LoadedEntries() []*Entry {
	r.mu.Lock()
	out := make([]*Entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Preload loads the named grammars (or, for the single name "all" or
// "*", everything the directory offers), returning the first failure.
func (r *Registry) Preload(names []string) error {
	if len(names) == 1 && (names[0] == "all" || names[0] == "*") {
		all, err := r.Names()
		if err != nil {
			return err
		}
		names = all
	}
	for _, name := range names {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		if _, err := r.Get(name); err != nil {
			return fmt.Errorf("preloading %q: %w", name, err)
		}
	}
	return nil
}
