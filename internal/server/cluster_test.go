package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"llstar/internal/cluster"
	"llstar/internal/obs"
)

// fleetNode is one in-process replica: its Server, its test listener,
// and its fleet view.
type fleetNode struct {
	srv  *Server
	ts   *httptest.Server
	addr string
	cl   *cluster.Cluster
	mx   *obs.Metrics
}

func (n *fleetNode) url() string { return n.ts.URL }

// newFleet builds size replicas over identical grammar directories
// (separate temp dirs and separate artifact caches — the realistic
// shape: replicas share content, not disks), wires them into one ring,
// and preloads every node unless coldLast leaves the final node
// unloaded (for warm-start tests). Optional perNode hooks adjust one
// node's Config before construction (per-replica loggers/tracers for
// the fleet observability tests).
func newFleet(t *testing.T, size int, cfg Config, grammars map[string]string, coldLast bool, perNode ...func(i int, c *Config)) []*fleetNode {
	t.Helper()
	nodes := make([]*fleetNode, size)
	for i := range nodes {
		c := cfg
		c.Metrics = obs.NewMetrics()
		for _, hook := range perNode {
			hook(i, &c)
		}
		dir := t.TempDir()
		for name, src := range grammars {
			if err := os.WriteFile(filepath.Join(dir, name+".g"), []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		c.GrammarDir = dir
		if c.CacheDir == "" {
			c.CacheDir = filepath.Join(t.TempDir(), "cache")
		} else {
			c.CacheDir = filepath.Join(t.TempDir(), "cache") // always per-node
		}
		srv, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		nodes[i] = &fleetNode{srv: srv, ts: ts, addr: strings.TrimPrefix(ts.URL, "http://"), mx: c.Metrics}
	}
	peers := make([]string, size)
	for i, n := range nodes {
		peers[i] = n.addr
	}
	for _, n := range nodes {
		cl, err := cluster.New(cluster.Config{
			Self:          n.addr,
			Peers:         peers,
			ProbeInterval: -1, // health transitions driven by hand
			Metrics:       n.mx,
			Events:        n.srv.EventLog(),
		})
		if err != nil {
			t.Fatal(err)
		}
		n.cl = cl
		n.srv.AttachCluster(cl)
	}
	for i, n := range nodes {
		if coldLast && i == size-1 {
			continue
		}
		if err := n.srv.Preload("all"); err != nil {
			t.Fatal(err)
		}
	}
	return nodes
}

// ownerOf resolves which node the fleet places grammar on (every node
// computes the same answer; asserted elsewhere).
func ownerOf(t *testing.T, nodes []*fleetNode, grammar string) (owner, other *fleetNode) {
	t.Helper()
	addr, _ := nodes[0].cl.GrammarOwner(grammar)
	for _, n := range nodes {
		if n.addr == addr {
			owner = n
		} else if other == nil {
			other = n
		}
	}
	if owner == nil || other == nil {
		t.Fatalf("could not split fleet into owner/other for %q (owner addr %s)", grammar, addr)
	}
	return owner, other
}

var fleetGrammars = map[string]string{
	"expr": exprGrammar,
	"json": jsonGrammar,
	"decl": declGrammar,
}

func TestFleetProxyToOwner(t *testing.T) {
	nodes := newFleet(t, 3, Config{}, fleetGrammars, false)
	owner, other := ownerOf(t, nodes, "expr")

	// Through a non-owner: proxied one hop, answered by the owner.
	resp, body := postJSON(t, other.ts.Client(), other.url()+"/v1/parse",
		parseRequest{Grammar: "expr", Input: "x = 1 ;"})
	if resp.StatusCode != 200 {
		t.Fatalf("proxied parse: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Llstar-Served-By"); got != owner.addr {
		t.Fatalf("Served-By = %q, want owner %q", got, owner.addr)
	}
	if v := other.mx.Counter(obs.Label("llstar_cluster_proxy_total", "result", "ok")).Value(); v != 1 {
		t.Fatalf("proxy ok counter on non-owner = %d, want 1", v)
	}

	// Straight to the owner: served locally, no proxy header.
	resp, body = postJSON(t, owner.ts.Client(), owner.url()+"/v1/parse",
		parseRequest{Grammar: "expr", Input: "y = 2 ;"})
	if resp.StatusCode != 200 {
		t.Fatalf("direct parse: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Llstar-Served-By"); got != "" {
		t.Fatalf("direct request carried Served-By %q", got)
	}
}

func TestFleetForwardedLoopGuard(t *testing.T) {
	nodes := newFleet(t, 3, Config{}, fleetGrammars, false)
	_, other := ownerOf(t, nodes, "expr")

	// A request already stamped as forwarded must be served locally —
	// never re-proxied — even on a non-owner.
	req, _ := http.NewRequest(http.MethodPost, other.url()+"/v1/parse",
		strings.NewReader(`{"grammar":"expr","input":"x = 1 ;"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, "peer:0")
	resp, err := other.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("forwarded parse: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Llstar-Served-By"); got != "" {
		t.Fatalf("forwarded request was re-proxied (Served-By %q)", got)
	}
	if v := other.mx.Counter(obs.Label("llstar_cluster_proxy_total", "result", "ok")).Value(); v != 0 {
		t.Fatalf("loop guard leaked a proxy hop (counter %d)", v)
	}
}

func TestFleetBatchProxies(t *testing.T) {
	nodes := newFleet(t, 3, Config{}, fleetGrammars, false)
	owner, other := ownerOf(t, nodes, "json")
	resp, body := postJSON(t, other.ts.Client(), other.url()+"/v1/batch",
		batchRequest{Grammar: "json", Inputs: []string{`{"a": 1}`, `[1, 2]`}})
	if resp.StatusCode != 200 {
		t.Fatalf("proxied batch: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Llstar-Served-By"); got != owner.addr {
		t.Fatalf("Served-By = %q, want %q", got, owner.addr)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil || br.Succeeded != 2 {
		t.Fatalf("batch response %s (err %v)", body, err)
	}
}

// The fleet acceptance criterion: a cold replica joining warm peers
// pulls every artifact over the wire and performs zero live analyses —
// llstar_cache_misses_total stays 0 while the fetch counter covers
// every grammar.
func TestFleetColdReplicaWarmStartsFromPeers(t *testing.T) {
	nodes := newFleet(t, 2, Config{}, fleetGrammars, true)
	cold := nodes[len(nodes)-1]

	if err := cold.srv.Preload("all"); err != nil {
		t.Fatal(err)
	}
	misses := cold.mx.Counter("llstar_cache_misses_total").Value()
	hits := cold.mx.Counter("llstar_cache_hits_total").Value()
	fetched := cold.mx.Counter(obs.Label("llstar_cluster_artifact_fetch_total", "result", "hit")).Value()
	if misses != 0 {
		t.Errorf("cold replica ran %d live analyses; want 0 (all from peers)", misses)
	}
	if int(fetched) != len(fleetGrammars) {
		t.Errorf("artifact fetches = %d, want %d", fetched, len(fleetGrammars))
	}
	if int(hits) != len(fleetGrammars) {
		t.Errorf("cache hits = %d, want %d", hits, len(fleetGrammars))
	}

	// And it serves immediately.
	resp, body := postJSON(t, cold.ts.Client(), cold.url()+"/v1/parse",
		parseRequest{Grammar: "decl", Input: "unsigned int x ;"})
	if resp.StatusCode != 200 {
		t.Fatalf("parse on warm-started replica: %d %s", resp.StatusCode, body)
	}
}

func TestFleetSessionAffinity(t *testing.T) {
	nodes := newFleet(t, 3, Config{}, fleetGrammars, false)

	// Create on node 0: the id must be minted self-owned.
	creator := nodes[0]
	resp, body := postJSON(t, creator.ts.Client(), creator.url()+"/v1/sessions",
		map[string]string{"grammar": "expr", "input": "x = 1 ;"})
	if resp.StatusCode != 200 && resp.StatusCode != 201 {
		t.Fatalf("create session: %d %s", resp.StatusCode, body)
	}
	var sess struct {
		ID string `json:"session_id"`
	}
	if err := json.Unmarshal(body, &sess); err != nil || sess.ID == "" {
		t.Fatalf("session response %s (err %v)", body, err)
	}
	if owner, self := creator.cl.KeyOwner(sess.ID); !self {
		t.Fatalf("minted session id %q owned by %q, not creator", sess.ID, owner)
	}

	// Reach the session through every other node: each proxies to the
	// creator by pure ring routing.
	for _, n := range nodes[1:] {
		r, err := n.ts.Client().Get(n.url() + "/v1/sessions/" + sess.ID)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != 200 {
			t.Fatalf("session via %s: %d %s", n.addr, r.StatusCode, b)
		}
		if got := r.Header.Get("X-Llstar-Served-By"); got != creator.addr {
			t.Fatalf("session request served by %q, want creator %q", got, creator.addr)
		}
	}
}

func TestFleetGrammarsOwnerField(t *testing.T) {
	nodes := newFleet(t, 3, Config{}, fleetGrammars, false)
	owners := map[string]string{}
	for _, n := range nodes {
		r, err := n.ts.Client().Get(n.url() + "/v1/grammars")
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Grammars []Listing `json:"grammars"`
		}
		if err := json.NewDecoder(r.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if len(out.Grammars) != len(fleetGrammars) {
			t.Fatalf("listing on %s has %d grammars", n.addr, len(out.Grammars))
		}
		for _, l := range out.Grammars {
			if l.Owner == "" {
				t.Fatalf("grammar %q has no owner on %s", l.Name, n.addr)
			}
			if l.Local != (l.Owner == n.addr) {
				t.Fatalf("grammar %q: local=%v but owner=%q on %s", l.Name, l.Local, l.Owner, n.addr)
			}
			if prev, ok := owners[l.Name]; ok && prev != l.Owner {
				t.Fatalf("nodes disagree on owner of %q: %q vs %q", l.Name, prev, l.Owner)
			}
			owners[l.Name] = l.Owner
		}
	}
}

func TestFleetReadyzReportsRing(t *testing.T) {
	nodes := newFleet(t, 3, Config{}, fleetGrammars, false)
	r, err := nodes[0].ts.Client().Get(nodes[0].url() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != 200 {
		t.Fatalf("readyz: %d %s", r.StatusCode, body)
	}
	want := "ready ring=3 up=3 quorum=true"
	if !strings.Contains(string(body), want) {
		t.Fatalf("readyz = %q, want %q", strings.TrimSpace(string(body)), want)
	}
}

func TestFleetClusterEndpoint(t *testing.T) {
	nodes := newFleet(t, 3, Config{}, fleetGrammars, false)
	r, err := nodes[1].ts.Client().Get(nodes[1].url() + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var top cluster.Topology
	if err := json.NewDecoder(r.Body).Decode(&top); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if top.Self != nodes[1].addr || top.RingSize != 3 || top.Up != 3 || !top.Quorum {
		t.Fatalf("topology = %+v", top)
	}
	if len(top.Placement) != len(fleetGrammars) {
		t.Fatalf("placement has %d entries, want %d", len(top.Placement), len(fleetGrammars))
	}

	// Single-node servers answer 404 so clients fall back to direct.
	solo, _ := newTestServer(t, Config{}, map[string]string{"expr": exprGrammar})
	ts := httptest.NewServer(solo.Handler())
	defer ts.Close()
	rs, err := http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rs.Body)
	rs.Body.Close()
	if rs.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/cluster on solo server = %d, want 404", rs.StatusCode)
	}
}

// Losing a replica must raise the survivors' in-flight share: the
// fleet budget stays the budget.
func TestFleetDynamicInflightLimit(t *testing.T) {
	nodes := newFleet(t, 2, Config{MaxInFlight: 8}, fleetGrammars, false)
	n := nodes[0]
	if got := n.mx.Gauge("llstar_cluster_inflight_limit").Value(); got != 4 {
		t.Fatalf("2-node limit = %d, want 4 (8/2)", got)
	}
	// Peer found dead (two strikes) → share doubles.
	peer := nodes[1].addr
	n.cl.MarkSuspect(peer)
	n.cl.MarkSuspect(peer)
	if got := n.mx.Gauge("llstar_cluster_inflight_limit").Value(); got != 8 {
		t.Fatalf("limit after peer loss = %d, want 8", got)
	}
	// And it still serves (the survivor owns everything now).
	resp, body := postJSON(t, n.ts.Client(), n.url()+"/v1/parse",
		parseRequest{Grammar: "expr", Input: "x = 1 ;"})
	if resp.StatusCode != 200 {
		t.Fatalf("parse after peer loss: %d %s", resp.StatusCode, body)
	}
}

// Every grammar must stay servable through any node after a replica
// dies — the kill-one-replica CI property, in-process.
func TestFleetSurvivesReplicaLoss(t *testing.T) {
	nodes := newFleet(t, 3, Config{}, fleetGrammars, false)
	dead := nodes[2]
	dead.ts.Close()
	for _, n := range nodes[:2] {
		n.cl.MarkSuspect(dead.addr)
		n.cl.MarkSuspect(dead.addr)
	}
	inputs := map[string]string{
		"expr": "x = 1 ;",
		"json": `{"k": [1, 2]}`,
		"decl": "unsigned int x ;",
	}
	for _, n := range nodes[:2] {
		for g, in := range inputs {
			resp, body := postJSON(t, n.ts.Client(), n.url()+"/v1/parse",
				parseRequest{Grammar: g, Input: in})
			if resp.StatusCode != 200 {
				t.Fatalf("parse %q via %s after replica loss: %d %s", g, n.addr, resp.StatusCode, body)
			}
		}
	}
}

// A proxy attempt against a peer that died between probe rounds must
// fall back to local serving, not surface an error.
func TestFleetProxyFallbackOnDeadOwner(t *testing.T) {
	nodes := newFleet(t, 3, Config{}, fleetGrammars, false)
	owner, other := ownerOf(t, nodes, "expr")
	owner.ts.Close() // dies silently; other still believes it is up

	resp, body := postJSON(t, other.ts.Client(), other.url()+"/v1/parse",
		parseRequest{Grammar: "expr", Input: "x = 1 ;"})
	if resp.StatusCode != 200 {
		t.Fatalf("parse with dead owner: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Llstar-Served-By"); got != "" {
		t.Fatalf("dead owner reported as Served-By %q", got)
	}
	if v := other.mx.Counter(obs.Label("llstar_cluster_proxy_total", "result", "error")).Value(); v != 1 {
		t.Fatalf("proxy error counter = %d, want 1", v)
	}
}

func TestFleetStreamProxies(t *testing.T) {
	nodes := newFleet(t, 3, Config{}, fleetGrammars, false)
	owner, other := ownerOf(t, nodes, "expr")
	resp, err := other.ts.Client().Post(
		other.url()+"/v1/parse?stream=events&grammar=expr&rule=s",
		"text/plain", strings.NewReader("x = 1 ;"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("proxied stream: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Llstar-Served-By"); got != owner.addr {
		t.Fatalf("Served-By = %q, want %q", got, owner.addr)
	}
	if !strings.Contains(string(body), "\n") {
		t.Fatalf("stream response not NDJSON: %q", body)
	}
}

func TestFleetArtifactEndpointValidation(t *testing.T) {
	nodes := newFleet(t, 2, Config{}, fleetGrammars, false)
	n := nodes[0]
	for path, want := range map[string]int{
		"/v1/artifacts/deadbeefdeadbeef": http.StatusNotFound,   // valid shape, not cached
		"/v1/artifacts/..%2Fescape":      http.StatusBadRequest, // not a fingerprint
		"/v1/artifacts/short":            http.StatusBadRequest,
	} {
		r, err := n.ts.Client().Get(n.url() + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, r.StatusCode, want)
		}
	}
	// A real fingerprint round-trips.
	var fp string
	for f := range topPlacementFingerprint(t, n) {
		fp = f
		break
	}
	r, err := n.ts.Client().Get(n.url() + "/v1/artifacts/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != 200 || len(data) == 0 {
		t.Fatalf("artifact fetch: %d (%d bytes)", r.StatusCode, len(data))
	}
}

// topPlacementFingerprint returns the fingerprints of the node's
// loaded grammars (from the listing).
func topPlacementFingerprint(t *testing.T, n *fleetNode) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	for _, e := range n.srv.Registry().LoadedEntries() {
		out[e.G.Fingerprint()] = true
	}
	if len(out) == 0 {
		t.Fatal("no loaded grammars")
	}
	return out
}
