package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"llstar"
	"llstar/internal/obs/flight"
)

// genSessionJSON builds an n-element JSON array document with one
// numeric "id" per element, for streaming and edit tests.
func genSessionJSON(n int) string {
	var b strings.Builder
	b.WriteString("[\n")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(",\n")
		}
		fmt.Fprintf(&b, `  {"id": %d, "name": "item%d", "flag": true}`, i, i)
	}
	b.WriteString("\n]\n")
	return b.String()
}

// chunkedReader hides the concrete body type from net/http so the
// client cannot precompute Content-Length and must use chunked
// Transfer-Encoding.
type chunkedReader struct{ io.Reader }

func postChunked(t *testing.T, client *http.Client, url, contentType, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, chunkedReader{strings.NewReader(body)})
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// ndjsonLines decodes a response body into one map per NDJSON line.
func ndjsonLines(t *testing.T, body []byte) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range bytes.Split(bytes.TrimSpace(body), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

// TestParseStreamNDJSON: the streaming endpoint answers one event per
// line — balanced rule enters/exits, every committed token — and a
// terminal end line with the verdict, even when the body arrives with
// chunked Transfer-Encoding.
func TestParseStreamNDJSON(t *testing.T) {
	s, _ := newTestServer(t, Config{}, map[string]string{"json": jsonGrammar})
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	input := genSessionJSON(50)
	resp := postChunked(t, ts.Client(), ts.URL+"/v1/parse?stream=events&grammar=json", "text/plain", input)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stream: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	lines := ndjsonLines(t, body)
	if len(lines) < 10 {
		t.Fatalf("only %d NDJSON lines", len(lines))
	}
	depth, tokens := 0, 0
	for _, m := range lines[:len(lines)-1] {
		switch m["kind"] {
		case "rule_enter":
			depth++
		case "rule_exit":
			depth--
		case "token":
			tokens++
		default:
			t.Fatalf("unexpected event kind %v", m["kind"])
		}
	}
	if depth != 0 {
		t.Errorf("unbalanced rule events: depth %d", depth)
	}
	end := lines[len(lines)-1]
	if end["kind"] != "end" || end["ok"] != true {
		t.Fatalf("end line: %v", end)
	}
	if int(end["events"].(float64)) != len(lines)-1 {
		t.Errorf("end.events = %v, lines = %d", end["events"], len(lines)-1)
	}
	if tokens == 0 || int(end["bytes"].(float64)) != len(input) {
		t.Errorf("tokens=%d bytes=%v want bytes=%d", tokens, end["bytes"], len(input))
	}
}

// TestParseStreamSyntaxError: a mid-document error surfaces as an
// error event and an end line with ok=false locating the offending
// token.
func TestParseStreamSyntaxError(t *testing.T) {
	s, _ := newTestServer(t, Config{}, map[string]string{"json": jsonGrammar})
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postChunked(t, ts.Client(), ts.URL+"/v1/parse?stream=events&grammar=json", "text/plain",
		`{"a": 1, "b" 2}`)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stream: %d %s", resp.StatusCode, body)
	}
	lines := ndjsonLines(t, body)
	end := lines[len(lines)-1]
	if end["kind"] != "end" || end["ok"] != false || end["error"] == nil {
		t.Fatalf("end line: %v", end)
	}
	ej := end["error"].(map[string]any)
	if ej["token"] != "2" || ej["line"] != float64(1) {
		t.Errorf("error location: %v", ej)
	}
}

// TestChunkedBodyCap413: the body cap holds even when the client sends
// chunked Transfer-Encoding (no Content-Length to pre-reject on) — the
// JSON endpoints answer 413 mid-read.
func TestChunkedBodyCap413(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBodyBytes: 1024}, map[string]string{"json": jsonGrammar})
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big, err := json.Marshal(parseRequest{Grammar: "json", Input: genSessionJSON(200)})
	if err != nil {
		t.Fatal(err)
	}
	if len(big) <= 1024 {
		t.Fatalf("test body too small: %d", len(big))
	}
	resp := postChunked(t, ts.Client(), ts.URL+"/v1/parse", "application/json", string(big))
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("chunked oversize body: %d %s, want 413", resp.StatusCode, body)
	}
}

// TestParseStreamCaps: the streaming endpoint is exempt from
// MaxBodyBytes (streaming huge inputs is its purpose) but enforces its
// own MaxStreamBytes — reported in-band once events have streamed.
func TestParseStreamCaps(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBodyBytes: 256, MaxStreamBytes: 4 << 10},
		map[string]string{"json": jsonGrammar})
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Well over MaxBodyBytes, under MaxStreamBytes: streams fine.
	input := genSessionJSON(30)
	if len(input) <= 256 || len(input) >= 4<<10 {
		t.Fatalf("bad test sizing: %d", len(input))
	}
	resp := postChunked(t, ts.Client(), ts.URL+"/v1/parse?stream=events&grammar=json", "text/plain", input)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stream under cap: %d %s", resp.StatusCode, body)
	}
	lines := ndjsonLines(t, body)
	if end := lines[len(lines)-1]; end["ok"] != true {
		t.Fatalf("end line: %v", end)
	}

	// Over MaxStreamBytes: events stream until the cap, then the end
	// line reports the overrun with ok=false.
	resp = postChunked(t, ts.Client(), ts.URL+"/v1/parse?stream=events&grammar=json", "text/plain",
		genSessionJSON(500))
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	lines = ndjsonLines(t, body)
	end := lines[len(lines)-1]
	if resp.StatusCode == 200 {
		if end["kind"] != "end" || end["ok"] != false || end["error"] == nil {
			t.Fatalf("end line after cap: %v", end)
		}
	} else if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over cap: %d", resp.StatusCode)
	}
}

// TestSessionLifecycle: create → inspect → edit (with high token
// reuse) → delete, with the tree text matching a batch parse of the
// edited document at every step.
func TestSessionLifecycle(t *testing.T) {
	s, _ := newTestServer(t, Config{}, map[string]string{"json": jsonGrammar})
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	input := genSessionJSON(300)
	resp, body := postJSON(t, c, ts.URL+"/v1/sessions",
		sessionCreateRequest{Grammar: "json", Input: input, Text: true})
	if resp.StatusCode != 200 {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	var created sessionJSON
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if !created.OK || created.SessionID == "" || created.Tokens == 0 || created.Bytes != int64(len(input)) {
		t.Fatalf("create response: %+v", created)
	}

	// The session tree must match a batch parse of the same document.
	g, err := s.Registry().Get("json")
	if err != nil {
		t.Fatal(err)
	}
	batch, err := g.G.NewParser(llstar.WithTree()).Parse("value", input)
	if err != nil {
		t.Fatal(err)
	}
	if created.Text != batch.String() {
		t.Error("create: tree text differs from batch parse")
	}

	// Inspect.
	resp2, err := c.Get(ts.URL + "/v1/sessions/" + created.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("get: %d %s", resp2.StatusCode, body2)
	}

	// Edit: change one id digit in the middle of the document.
	marker := `"id": 150,`
	off := strings.Index(input, marker) + len(`"id": `)
	resp, body = postJSON(t, c, ts.URL+"/v1/sessions/"+created.SessionID+"/edit",
		sessionEditRequest{Offset: off, OldLen: 3, NewText: "7", Text: true})
	if resp.StatusCode != 200 {
		t.Fatalf("edit: %d %s", resp.StatusCode, body)
	}
	var edited sessionJSON
	if err := json.Unmarshal(body, &edited); err != nil {
		t.Fatal(err)
	}
	if !edited.OK || edited.Edits != 1 || edited.Reuse == nil {
		t.Fatalf("edit response: %+v", edited)
	}
	if edited.Reuse.TokenReuseRatio < 0.9 {
		t.Errorf("token reuse ratio = %v, want >= 0.9", edited.Reuse.TokenReuseRatio)
	}
	newInput := input[:off] + "7" + input[off+3:]
	batch2, err := g.G.NewParser(llstar.WithTree()).Parse("value", newInput)
	if err != nil {
		t.Fatal(err)
	}
	if edited.Text != batch2.String() {
		t.Error("edit: tree text differs from batch parse of edited document")
	}
	if edited.Bytes != int64(len(newInput)) {
		t.Errorf("edit bytes = %d, want %d", edited.Bytes, len(newInput))
	}

	// The listing shows it; delete removes it; a second get 404s.
	resp3, err := c.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	body3, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if !strings.Contains(string(body3), created.SessionID) {
		t.Errorf("listing misses session: %s", body3)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+created.SessionID, nil)
	resp4, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp4.Body)
	resp4.Body.Close()
	if resp4.StatusCode != 200 {
		t.Fatalf("delete: %d", resp4.StatusCode)
	}
	resp5, err := c.Get(ts.URL + "/v1/sessions/" + created.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp5.Body)
	resp5.Body.Close()
	if resp5.StatusCode != 404 {
		t.Errorf("get after delete: %d, want 404", resp5.StatusCode)
	}
}

// TestSessionBrokenDocumentEditable: a document with a syntax error
// still creates a session (ok=false, error located, full document
// retained), and a later edit can fix it.
func TestSessionBrokenDocumentEditable(t *testing.T) {
	s, _ := newTestServer(t, Config{}, map[string]string{"json": jsonGrammar})
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	input := `{"a": 1, "b" 2, "c": 3}` // missing colon after "b"
	resp, body := postJSON(t, c, ts.URL+"/v1/sessions",
		sessionCreateRequest{Grammar: "json", Input: input})
	if resp.StatusCode != 200 {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	var created sessionJSON
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if created.OK || created.Error == nil {
		t.Fatalf("broken create: %+v", created)
	}
	if created.Bytes != int64(len(input)) {
		t.Fatalf("broken create retained %d bytes, want %d", created.Bytes, len(input))
	}
	// Insert the missing colon.
	off := strings.Index(input, `"b" 2`) + len(`"b"`)
	resp, body = postJSON(t, c, ts.URL+"/v1/sessions/"+created.SessionID+"/edit",
		sessionEditRequest{Offset: off, OldLen: 0, NewText: ":"})
	if resp.StatusCode != 200 {
		t.Fatalf("fixing edit: %d %s", resp.StatusCode, body)
	}
	var fixed sessionJSON
	if err := json.Unmarshal(body, &fixed); err != nil {
		t.Fatal(err)
	}
	if !fixed.OK || fixed.Error != nil {
		t.Fatalf("after fix: %+v", fixed)
	}

	// Break it again: the edit answers 422 but the session stays.
	resp, body = postJSON(t, c, ts.URL+"/v1/sessions/"+created.SessionID+"/edit",
		sessionEditRequest{Offset: off, OldLen: 1, NewText: " "})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("breaking edit: %d %s, want 422", resp.StatusCode, body)
	}
	resp6, err := c.Get(ts.URL + "/v1/sessions/" + created.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp6.Body)
	resp6.Body.Close()
	if resp6.StatusCode != 200 {
		t.Errorf("session gone after failed edit: %d", resp6.StatusCode)
	}
}

// TestSessionEditRejections: out-of-range edits answer 400, cap
// overruns 413 (create and edit), unknown sessions 404.
func TestSessionEditRejections(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxSessionBytes: 512}, map[string]string{"json": jsonGrammar})
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	resp, body := postJSON(t, c, ts.URL+"/v1/sessions",
		sessionCreateRequest{Grammar: "json", Input: `{"a": [1, 2, 3]}`})
	if resp.StatusCode != 200 {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	var created sessionJSON
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}

	resp, _ = postJSON(t, c, ts.URL+"/v1/sessions/"+created.SessionID+"/edit",
		sessionEditRequest{Offset: 9999, OldLen: 0, NewText: "x"})
	if resp.StatusCode != 400 {
		t.Errorf("out-of-range edit: %d, want 400", resp.StatusCode)
	}

	resp, _ = postJSON(t, c, ts.URL+"/v1/sessions/"+created.SessionID+"/edit",
		sessionEditRequest{Offset: 7, OldLen: 0, NewText: strings.Repeat("1", 600)})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("over-cap edit: %d, want 413", resp.StatusCode)
	}

	resp, _ = postJSON(t, c, ts.URL+"/v1/sessions",
		sessionCreateRequest{Grammar: "json", Input: "[" + strings.Repeat("1,", 400) + "1]"})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("over-cap create: %d, want 413", resp.StatusCode)
	}

	resp, _ = postJSON(t, c, ts.URL+"/v1/sessions/doesnotexist/edit",
		sessionEditRequest{Offset: 0, OldLen: 0, NewText: "x"})
	if resp.StatusCode != 404 {
		t.Errorf("unknown session edit: %d, want 404", resp.StatusCode)
	}
}

// TestSessionTableFullAndEviction: a full table sheds creates with 429
// while every session is fresh, and evicts idle sessions LRU-first
// once they age past SessionIdle.
func TestSessionTableFullAndEviction(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxSessions: 1, SessionIdle: time.Hour},
		map[string]string{"json": jsonGrammar})
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	resp, body := postJSON(t, c, ts.URL+"/v1/sessions",
		sessionCreateRequest{Grammar: "json", Input: "[1]"})
	if resp.StatusCode != 200 {
		t.Fatalf("create 1: %d %s", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, c, ts.URL+"/v1/sessions",
		sessionCreateRequest{Grammar: "json", Input: "[2]"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("create 2 on full table: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}

	// With a tiny idle threshold the first session is evictable.
	s2, _ := newTestServer(t, Config{MaxSessions: 1, SessionIdle: time.Nanosecond},
		map[string]string{"json": jsonGrammar})
	if err := s2.Preload(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	c2 := ts2.Client()

	resp, body = postJSON(t, c2, ts2.URL+"/v1/sessions",
		sessionCreateRequest{Grammar: "json", Input: "[1]"})
	if resp.StatusCode != 200 {
		t.Fatalf("create 1: %d %s", resp.StatusCode, body)
	}
	var first sessionJSON
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond)
	resp, body = postJSON(t, c2, ts2.URL+"/v1/sessions",
		sessionCreateRequest{Grammar: "json", Input: "[2]"})
	if resp.StatusCode != 200 {
		t.Fatalf("create 2 with evictable idler: %d %s", resp.StatusCode, body)
	}
	resp7, err := c2.Get(ts2.URL + "/v1/sessions/" + first.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp7.Body)
	resp7.Body.Close()
	if resp7.StatusCode != 404 {
		t.Errorf("evicted session still present: %d", resp7.StatusCode)
	}
}

// TestFlightCaptureSessionID: captures taken for session requests are
// tagged with the session id, and the session's ring carries
// stream.feed spans.
func TestFlightCaptureSessionID(t *testing.T) {
	s, _ := newTestServer(t, Config{}, map[string]string{"json": jsonGrammar})
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/sessions",
		sessionCreateRequest{Grammar: "json", Input: genSessionJSON(5)})
	if resp.StatusCode != 200 {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	var created sessionJSON
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}

	// Force a capture from the session's ring the way finishFlight
	// would on an anomaly.
	entry := s.sessions.get(created.SessionID)
	if entry == nil || entry.rec == nil {
		t.Fatal("session has no flight ring")
	}
	fr := &flightRun{
		rec: entry.rec, endpoint: "sessions",
		grammar: entry.grammar, rule: entry.rule, session: entry.id,
		start: time.Now(),
	}
	s.finishFlight(context.Background(), fr, parseResponse{OK: true}, "manual")

	caps := s.FlightStore().List()
	if len(caps) == 0 {
		t.Fatal("no capture persisted")
	}
	c := caps[0]
	if c.SessionID != created.SessionID {
		t.Errorf("capture session_id = %q, want %q", c.SessionID, created.SessionID)
	}
	full, ok := s.FlightStore().Get(c.ID)
	if !ok {
		t.Fatal("capture not retrievable")
	}
	var feeds int
	for _, ev := range full.Events {
		if ev.Name == "stream.feed" {
			feeds++
		}
	}
	if feeds == 0 {
		t.Error("session ring has no stream.feed events")
	}
	b, err := json.Marshal(full)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"session_id"`) {
		t.Error("capture JSON missing session_id")
	}
	var flat flight.Capture
	if err := json.Unmarshal(b, &flat); err != nil {
		t.Fatal(err)
	}
	if flat.SessionID != created.SessionID {
		t.Error("session_id did not round-trip")
	}
}
