package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"llstar/internal/cluster"
	"llstar/internal/gcache"
	"llstar/internal/obs"
)

// forwardedHeader is the single-hop loop guard: a request carrying it
// was already routed by a peer and is always served locally, so a
// stale or divergent ring view can never bounce a request around the
// fleet.
const forwardedHeader = "X-Llstar-Forwarded"

// AttachCluster puts the server in fleet mode. Call it after New and
// before serving traffic (the cluster needs the replica's bound
// address, so the caller typically listens first, then attaches):
//
//   - grammar requests this replica does not own are proxied one hop
//     to the owner (body-buffered endpoints fall back to local serving
//     if the owner is unreachable — every replica can serve every
//     grammar, ownership only steers load);
//   - missing .llsc artifacts are pulled from peers before live
//     analysis (Registry pre-warm through Cluster.FetchArtifact);
//   - the in-flight budget becomes replica-aware: the configured
//     MaxInFlight is a fleet-wide budget divided by live replicas;
//   - /readyz reports ring size and quorum, /v1/cluster serves the
//     topology, and session ids are minted self-owned so ring routing
//     gives session affinity for free.
func (s *Server) AttachCluster(c *cluster.Cluster) {
	s.reg.Fetch = c.FetchArtifact
	if names, err := s.reg.Names(); err == nil {
		c.SetGrammars(names)
	}
	s.cl.Store(c)
	s.recomputeClusterLimit()
	c.OnChange(s.recomputeClusterLimit)
}

// cluster returns the attached fleet view, or nil in single-node mode.
func (s *Server) cluster() *cluster.Cluster { return s.cl.Load() }

// recomputeClusterLimit divides the fleet-wide in-flight budget across
// live replicas. It runs at attach time and on every peer up/down
// transition: losing a replica raises every survivor's share, so the
// fleet's total admitted concurrency stays near the configured budget
// rather than collapsing to budget/N forever.
func (s *Server) recomputeClusterLimit() {
	c := s.cl.Load()
	if c == nil || s.cfg.MaxInFlight <= 0 {
		return
	}
	live := c.LiveCount()
	if live < 1 {
		live = 1
	}
	limit := s.cfg.MaxInFlight / live
	if limit < 1 {
		limit = 1
	}
	s.dynLimit.Store(int64(limit))
	s.mx.Gauge("llstar_cluster_inflight_limit").Set(int64(limit))
}

// newSessionID mints a session id. In fleet mode the id is
// rejection-sampled until this replica owns it on the ring, so any
// peer can route /v1/sessions/{id} back here by pure hashing — session
// affinity without a session directory.
func (s *Server) newSessionID() string {
	if c := s.cluster(); c != nil && c.Size() > 1 {
		return c.MintKey()
	}
	return randHex(16)
}

// routingKey extracts the grammar field from a buffered JSON body
// (both parseRequest and batchRequest spell it "grammar").
func routingKey(body []byte) string {
	var probe struct {
		Grammar string `json:"grammar"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		return ""
	}
	return probe.Grammar
}

// shouldRoute decides whether this request leaves routing alone:
// single-node mode, forwarded requests (loop guard), and non-POSTs are
// always served locally.
func (s *Server) shouldRoute(r *http.Request) *cluster.Cluster {
	c := s.cluster()
	if c == nil || c.Size() < 2 {
		return nil
	}
	if r.Header.Get(forwardedHeader) != "" {
		return nil
	}
	return c
}

// maybeProxyJSON routes a body-buffered JSON endpoint (/v1/parse,
// /v1/batch): it reads up to cap bytes of body, decodes the grammar
// field, and — when a live peer owns that grammar — proxies the
// buffered request there. It reports whether it wrote the response.
// Every other case (we own it, owner down, body over cap, no grammar
// field) restores the body and lets the local handler proceed; an
// unreachable owner additionally falls back to local serving, because
// correctness never depends on placement.
func (s *Server) maybeProxyJSON(w http.ResponseWriter, r *http.Request, cap int64) bool {
	c := s.shouldRoute(r)
	if c == nil || r.Method != http.MethodPost || r.Body == nil {
		return false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, cap+1))
	// Restore what we consumed (plus anything beyond the cap still
	// unread) so the local handler sees the original stream and its own
	// MaxBytesReader still enforces the cap.
	rest := r.Body
	r.Body = struct {
		io.Reader
		io.Closer
	}{io.MultiReader(bytes.NewReader(body), rest), rest}
	if err != nil || int64(len(body)) > cap {
		return false
	}
	grammar := routingKey(body)
	if grammar == "" {
		return false
	}
	owner, self := c.GrammarOwner(grammar)
	if self || !c.Up(owner) {
		return false
	}
	return s.proxyTo(w, r, c, owner, body)
}

// maybeProxyStream routes the streaming endpoint, whose grammar rides
// the query string — no buffering, the raw body streams through the
// proxy. No local fallback after a mid-stream failure; a transport
// error before any bytes were written answers 502.
func (s *Server) maybeProxyStream(w http.ResponseWriter, r *http.Request) bool {
	c := s.shouldRoute(r)
	if c == nil {
		return false
	}
	grammar := r.URL.Query().Get("grammar")
	if grammar == "" {
		return false
	}
	owner, self := c.GrammarOwner(grammar)
	if self || !c.Up(owner) {
		return false
	}
	if s.proxyTo(w, r, c, owner, nil) {
		return true
	}
	// Body partially consumed by the failed attempt: cannot re-serve
	// locally.
	s.countError("parse_stream", "proxy")
	writeError(w, http.StatusBadGateway, "fleet: owner "+owner+" unreachable")
	return true
}

// maybeProxySession routes /v1/sessions/{id} by the id's ring owner
// (ids are minted self-owned at creation, so the owner is the replica
// holding the session state). Bodies are small (MaxSessionBytes) and
// buffered; an unreachable owner yields 502 — the session state lives
// nowhere else.
func (s *Server) maybeProxySession(w http.ResponseWriter, r *http.Request) bool {
	c := s.shouldRoute(r)
	if c == nil {
		return false
	}
	id, _, _ := strings.Cut(strings.TrimPrefix(r.URL.Path, "/v1/sessions/"), "/")
	if id == "" {
		return false
	}
	owner, self := c.KeyOwner(id)
	if self {
		return false
	}
	if !c.Up(owner) {
		s.countError("sessions", "proxy")
		writeError(w, http.StatusBadGateway, "fleet: session owner "+owner+" unreachable")
		return true
	}
	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxSessionBytes+1))
		if err != nil || int64(len(body)) > s.cfg.MaxSessionBytes {
			s.countError("sessions", "request")
			writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
			return true
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
	}
	if s.proxyTo(w, r, c, owner, body) {
		return true
	}
	s.countError("sessions", "proxy")
	writeError(w, http.StatusBadGateway, "fleet: session owner "+owner+" unreachable")
	return true
}

// proxyTo forwards the request one hop to owner, streaming the
// response back (flushing per write so NDJSON event streams stay
// live). body non-nil replays a buffered body; nil streams r.Body
// through. It reports whether a response was written: a transport
// failure before the upstream responded marks the peer suspect and
// returns false so body-buffered callers can fall back to serving
// locally.
func (s *Server) proxyTo(w http.ResponseWriter, r *http.Request, c *cluster.Cluster, owner string, body []byte) bool {
	var t0 time.Duration
	if s.tr != nil {
		t0 = s.tr.Now()
	}
	start := time.Now()
	// The requestID middleware already stamped (or re-minted) the
	// X-Request-Id and traceparent on the request, and r.Clone carries
	// them to the owner — so both replicas' spans, logs, and flight
	// captures share one trace id. Keep them here for this hop's own
	// span and log line.
	reqID := r.Header.Get(requestIDHeader)
	traceID := traceIDFrom(r.Header.Get(traceparentHeader))
	out := r.Clone(r.Context())
	out.URL.Scheme = "http"
	out.URL.Host = owner
	out.RequestURI = ""
	out.Host = ""
	out.Header.Set(forwardedHeader, c.Self())
	if body != nil {
		out.Body = io.NopCloser(bytes.NewReader(body))
		out.ContentLength = int64(len(body))
	}
	resp, err := c.Client().Do(out)
	if err != nil {
		c.MarkSuspect(owner)
		s.countProxy("error")
		s.finishProxy(t0, start, r.URL.Path, owner, 0, false, reqID, traceID)
		return false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	for k, vs := range resp.Header {
		if k == "Connection" || k == "Transfer-Encoding" || len(vs) == 0 {
			continue
		}
		w.Header().Set(k, vs[len(vs)-1])
	}
	w.Header().Set("X-Llstar-Served-By", owner)
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				break
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			break
		}
	}
	s.countProxy("ok")
	s.finishProxy(t0, start, r.URL.Path, owner, resp.StatusCode, resp.StatusCode < 500, reqID, traceID)
	return true
}

func (s *Server) countProxy(result string) {
	s.mx.Counter(obs.Label("llstar_cluster_proxy_total", "result", result)).Inc()
}

// finishProxy records the origin side of a proxy hop: a cluster.proxy
// span and a "proxy" access-log line, both tagged with the request's
// trace id — proxied requests bypass the instrument middleware here
// (they count against the owner's budget and metrics), so without
// this the origin replica would have no record the request existed.
func (s *Server) finishProxy(t0 time.Duration, start time.Time, path, owner string, status int, ok bool, reqID, traceID string) {
	if s.tr != nil {
		s.tr.Emit(obs.Event{
			Name: "cluster.proxy", Cat: obs.PhaseServer, Ph: obs.PhSpan,
			TS: t0, Dur: s.tr.Now() - t0, Decision: -1,
			OK: ok, N: int64(status),
			Detail: "-> " + owner + " " + reqID + " " + traceID,
		})
	}
	s.log.LogAttrs(context.Background(), slog.LevelInfo, "proxy",
		slog.String("endpoint", path),
		slog.String("owner", owner),
		slog.Int("status", status),
		slog.Bool("ok", ok),
		slog.Float64("dur_ms", float64(time.Since(start))/float64(time.Millisecond)),
		slog.String("request_id", reqID),
		slog.String("trace_id", traceID),
	)
}

// replicaAddr is this replica's cluster address, or "" single-node —
// the Replica tag on flight captures and the Self line of /debug/fleet.
func (s *Server) replicaAddr() string {
	if c := s.cluster(); c != nil {
		return c.Self()
	}
	return ""
}

// handleCluster serves GET /v1/cluster: the fleet topology as this
// replica sees it — ring membership, per-peer health, and the full
// grammar placement. Clients (llstar-parse -server) use it for
// client-side routing; in single-node mode it answers 404 so clients
// know to just use the base URL.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	c := s.cluster()
	if c == nil {
		writeError(w, http.StatusNotFound, "not running in fleet mode")
		return
	}
	writeJSON(w, http.StatusOK, c.Topology())
}

// artifactFingerprint accepts only hex strings of plausible digest
// length, so the endpoint can never be steered at arbitrary cache-dir
// paths.
func artifactFingerprint(s string) bool {
	if len(s) < 16 || len(s) > 128 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// handleArtifact serves GET /v1/artifacts/{fingerprint}: the raw .llsc
// bytes from the shared content-addressed store. This is the fleet's
// artifact-distribution plane — peers call it during pre-warm — and it
// deliberately ignores readiness: a cold replica fetches while the
// serving replica may itself still be preloading. Stat-then-Load under
// the gcache shared lock cannot race an eviction into a read-then-miss.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	cache := s.reg.ArtifactCache()
	if cache == nil {
		s.countArtifact("no_store")
		writeError(w, http.StatusNotFound, "no artifact store configured (start with -cache)")
		return
	}
	fp := strings.TrimPrefix(r.URL.Path, "/v1/artifacts/")
	if !artifactFingerprint(fp) {
		s.countArtifact("bad_fingerprint")
		writeError(w, http.StatusBadRequest, "invalid artifact fingerprint")
		return
	}
	data, err := cache.Load(fp)
	if err == gcache.ErrMiss {
		s.countArtifact("miss")
		writeError(w, http.StatusNotFound, "artifact not cached here")
		return
	}
	if err != nil {
		s.countArtifact("error")
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.countArtifact("hit")
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	w.Write(data)
}

func (s *Server) countArtifact(result string) {
	s.mx.Counter(obs.Label("llstar_cluster_artifact_serve_total", "result", result)).Inc()
}

// acquireDynamic is the fleet-mode limiter: an atomic counter against
// the replica's current share of the fleet-wide budget (the share
// moves when peers come and go, which a fixed-capacity channel cannot
// express). Queueing polls with a short tick — crude, but the queue
// wait is bounded and small.
func (s *Server) acquireDynamic(ctx context.Context) (time.Duration, bool) {
	gauge := s.mx.Gauge("llstar_server_inflight")
	try := func() bool {
		limit := s.dynLimit.Load()
		for {
			cur := s.dynFlight.Load()
			if cur >= limit {
				return false
			}
			if s.dynFlight.CompareAndSwap(cur, cur+1) {
				gauge.Add(1)
				return true
			}
		}
	}
	if try() {
		return 0, true
	}
	if s.cfg.QueueWait <= 0 {
		return 0, false
	}
	start := time.Now()
	deadline := time.NewTimer(s.cfg.QueueWait)
	defer deadline.Stop()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if try() {
				return time.Since(start), true
			}
		case <-deadline.C:
			return time.Since(start), false
		case <-ctx.Done():
			return time.Since(start), false
		}
	}
}

func (s *Server) releaseDynamic() {
	s.dynFlight.Add(-1)
	s.mx.Gauge("llstar_server_inflight").Add(-1)
}
