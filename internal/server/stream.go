package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"llstar"
	"llstar/internal/token"
)

// This file serves POST /v1/parse?stream=events: the request body is
// the raw input text (not JSON), fed to a streaming parse session in
// chunks as it arrives, and the response is NDJSON — one SAX event per
// line, terminated by a summary line. Memory stays bounded by grammar
// depth + lookahead window regardless of body size, so the endpoint
// rides the wider MaxStreamBytes cap instead of MaxBodyBytes.

// streamReadChunk is the body read granularity of the streaming
// endpoint.
const streamReadChunk = 64 << 10

// streamEventJSON is one NDJSON event line.
type streamEventJSON struct {
	Kind  string     `json:"kind"`
	Rule  string     `json:"rule,omitempty"`
	Token string     `json:"token,omitempty"`
	Type  int        `json:"type,omitempty"`
	Name  string     `json:"name,omitempty"`
	Line  int        `json:"line,omitempty"`
	Col   int        `json:"col,omitempty"`
	Error *errorJSON `json:"error,omitempty"`
}

// streamEndJSON is the terminal NDJSON line: the session verdict and
// its statistics.
type streamEndJSON struct {
	Kind       string     `json:"kind"` // always "end"
	OK         bool       `json:"ok"`
	Grammar    string     `json:"grammar"`
	Rule       string     `json:"rule"`
	Tokens     int        `json:"tokens"`
	Events     int64      `json:"events"`
	Errors     int64      `json:"errors,omitempty"`
	PeakWindow int        `json:"peak_window"`
	MaxK       int        `json:"max_k,omitempty"`
	Bytes      int64      `json:"bytes"`
	ElapsedUS  int64      `json:"elapsed_us"`
	Error      *errorJSON `json:"error,omitempty"`
}

// ndjsonWriter serializes events one per line and remembers whether
// anything reached the wire (once it has, errors can only be reported
// in-band on the end line — the status is already 200).
type ndjsonWriter struct {
	enc    *json.Encoder
	flush  http.Flusher
	wrote  bool
	failed bool // client gone; stop producing
}

func newNDJSONWriter(w http.ResponseWriter) *ndjsonWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	nw := &ndjsonWriter{enc: json.NewEncoder(w)}
	if f, ok := w.(http.Flusher); ok {
		nw.flush = f
	} else if sw, ok := w.(*statusWriter); ok {
		if f, ok := sw.ResponseWriter.(http.Flusher); ok {
			nw.flush = f
		}
	}
	return nw
}

func (nw *ndjsonWriter) emit(v any) {
	if nw.failed {
		return
	}
	if err := nw.enc.Encode(v); err != nil {
		nw.failed = true
		return
	}
	nw.wrote = true
}

// Flush pushes buffered lines to the client (after each fed chunk, so
// a slow producer still sees events promptly).
func (nw *ndjsonWriter) Flush() {
	if nw.flush != nil && nw.wrote && !nw.failed {
		nw.flush.Flush()
	}
}

// handleParseStream serves POST /v1/parse?stream=events. Query
// parameters select the parse (grammar, rule, recover=1); the body is
// the raw input. Events stream as they are committed; the final line
// carries kind "end" with the verdict. Errors detected before the
// first event (unknown grammar, oversize body on a short input) still
// answer proper HTTP statuses.
func (s *Server) handleParseStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	q := r.URL.Query()
	name := q.Get("grammar")
	if name == "" {
		s.countError("parse_stream", "request")
		writeError(w, http.StatusBadRequest, `missing "grammar" query parameter`)
		return
	}
	e, err := s.reg.Get(name)
	if err != nil {
		s.grammarError(w, "parse_stream", err)
		return
	}
	if sw, ok := w.(*statusWriter); ok {
		sw.grammar = e.Name
	}

	fr := s.newFlightRun(w, "parse_stream", e.Name)
	nw := newNDJSONWriter(w)
	opts := []llstar.SessionOption{
		llstar.WithEvents(func(ev llstar.StreamEvent) { nw.emit(toStreamEventJSON(e.G, ev)) }),
		llstar.WithSessionMetrics(s.mx),
	}
	if rule := q.Get("rule"); rule != "" {
		opts = append(opts, llstar.WithStartRule(rule))
	}
	if v := q.Get("recover"); v == "1" || v == "true" {
		opts = append(opts, llstar.WithSessionRecovery())
	}
	if s.cfg.Tracer != nil {
		opts = append(opts, llstar.WithSessionTracer(s.cfg.Tracer))
	}
	if fr != nil {
		opts = append(opts, llstar.WithSessionFlightRecorder(fr.rec))
	}
	start := time.Now()
	sess, err := e.G.NewSession(opts...)
	if err != nil {
		s.countError("parse_stream", "request")
		writeError(w, http.StatusBadRequest, err.Error())
		if fr != nil && fr.pooled {
			s.fpool.Put(fr.rec)
		}
		return
	}
	if fr != nil {
		fr.rule = sess.Rule()
	}

	// Pump the body. A terminal parse error stops the pump (the
	// remaining body is irrelevant); a body-cap overrun either answers
	// 413 (nothing streamed yet) or is reported on the end line.
	var perr, rerr error
	buf := make([]byte, streamReadChunk)
	for perr == nil {
		n, err := r.Body.Read(buf)
		if n > 0 {
			perr = sess.Feed(buf[:n])
			nw.Flush()
		}
		if err != nil {
			if err != io.EOF {
				rerr = err
			}
			break
		}
	}
	if perr == nil && rerr == nil {
		perr = sess.Finish()
	} else {
		sess.Close()
	}
	st := sess.Stats()
	if fr != nil {
		fr.stats.Tokens = int64(st.Tokens)
		if st.MaxK > fr.stats.MaxLookahead {
			fr.stats.MaxLookahead = st.MaxK
		}
	}

	var tooBig *http.MaxBytesError
	if errors.As(rerr, &tooBig) && !nw.wrote {
		s.countError("parse_stream", "toolarge")
		writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
		s.finishFlight(r.Context(), fr, parseResponse{internalErr: false}, "")
		return
	}

	end := streamEndJSON{
		Kind: "end", OK: perr == nil && rerr == nil,
		Grammar: e.Name, Rule: sess.Rule(),
		Tokens: st.Tokens, Events: st.Events, Errors: st.Errors,
		PeakWindow: st.PeakWindow, MaxK: st.MaxK,
		Bytes:     st.BytesFed,
		ElapsedUS: time.Since(start).Microseconds(),
	}
	switch {
	case perr != nil:
		s.countError("parse_stream", "syntax")
		ej := toErrorJSON(e.G, perr)
		end.Error = &ej
	case rerr != nil:
		s.countError("parse_stream", "body")
		end.Error = &errorJSON{Msg: rerr.Error()}
	}
	nw.emit(end)
	nw.Flush()
	s.finishFlight(r.Context(), fr, parseResponse{OK: end.OK}, "")
}

// toStreamEventJSON renders one SAX event, naming tokens through the
// grammar vocabulary like the batch tree JSON does.
func toStreamEventJSON(g *llstar.Grammar, ev llstar.StreamEvent) streamEventJSON {
	out := streamEventJSON{Kind: ev.Kind.String()}
	switch ev.Kind {
	case llstar.StreamRuleEnter, llstar.StreamRuleExit:
		out.Rule = ev.Rule
	case llstar.StreamToken:
		out.Token = ev.Token.Text
		out.Type = int(ev.Token.Type)
		out.Name = g.TokenName(int(ev.Token.Type))
		out.Line = ev.Token.Pos.Line
		out.Col = ev.Token.Pos.Col
	case llstar.StreamSyntaxError:
		text := ev.Err.Offending.Text
		if ev.Err.Offending.Type == token.EOF {
			text = "<EOF>"
		}
		out.Error = &errorJSON{
			Msg:       ev.Err.Msg,
			Rule:      ev.Err.Rule,
			Line:      ev.Err.Offending.Pos.Line,
			Col:       ev.Err.Offending.Pos.Col,
			Token:     text,
			TokenType: int(ev.Err.Offending.Type),
			TokenName: g.TokenName(int(ev.Err.Offending.Type)),
		}
	}
	return out
}
