package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

const exprGrammar = `
grammar Expr;
s : ID '=' e ';' ;
e : INT | ID | '(' e ')' ;
ID : ('a'..'z')+ ;
INT : ('0'..'9')+ ;
WS : (' '|'\t'|'\r'|'\n')+ { skip(); } ;
`

const jsonGrammar = `
grammar JSON;
value : obj | arr | STRING | NUMBER | 'true' | 'false' | 'null' ;
obj : '{' (pair (',' pair)*)? '}' ;
pair : STRING ':' value ;
arr : '[' (value (',' value)*)? ']' ;
STRING : '"' (~('"'|'\\') | '\\' .)* '"' ;
NUMBER : ('-')? ('0'..'9')+ ;
WS : (' '|'\t'|'\r'|'\n')+ { skip(); } ;
`

const declGrammar = `
grammar Decl;
s : type ID ';' ;
type : ('unsigned')* ('int' | ID) ;
ID : ('a'..'z')+ ;
WS : (' ')+ { skip(); } ;
`

// newTestServer materializes grammars into a temp dir and builds a
// ready server over them.
func newTestServer(t *testing.T, cfg Config, grammars map[string]string) (*Server, string) {
	t.Helper()
	dir := t.TempDir()
	for name, src := range grammars {
		if err := os.WriteFile(filepath.Join(dir, name+".g"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cfg.GrammarDir = dir
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, dir
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestReadyzFlipsAfterPreload(t *testing.T) {
	s, _ := newTestServer(t, Config{Preload: []string{"expr"}}, map[string]string{"expr": exprGrammar})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != 200 {
		t.Errorf("healthz before preload = %d", code)
	}
	if code := get("/readyz"); code != 503 {
		t.Errorf("readyz before preload = %d, want 503", code)
	}
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	if code := get("/readyz"); code != 200 {
		t.Errorf("readyz after preload = %d, want 200", code)
	}
	// Preload actually loaded: the listing shows a digest without any
	// parse having run.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/parse", parseRequest{Grammar: "expr", Input: "x = 1 ;"})
	if resp.StatusCode != 200 {
		t.Fatalf("parse after preload: %d %s", resp.StatusCode, body)
	}
	s.StartDrain()
	if code := get("/readyz"); code != 503 {
		t.Errorf("readyz draining = %d, want 503", code)
	}
}

func TestParseEndpoint(t *testing.T) {
	s, _ := newTestServer(t, Config{}, map[string]string{"expr": exprGrammar, "json": jsonGrammar})
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	// A valid parse returns the s-expression and sizes.
	resp, body := postJSON(t, c, ts.URL+"/v1/parse",
		parseRequest{Grammar: "expr", Input: "x = ( y ) ;", Stats: true, Tree: true})
	if resp.StatusCode != 200 {
		t.Fatalf("parse: %d %s", resp.StatusCode, body)
	}
	var pr parseResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.OK || !strings.HasPrefix(pr.Text, "(s x = (e ( (e y) ) ) ;") && !strings.Contains(pr.Text, "(s") {
		t.Errorf("parse response: %+v", pr)
	}
	if pr.Rule != "s" || pr.Tokens == 0 || pr.Nodes == 0 {
		t.Errorf("sizes/rule: %+v", pr)
	}
	if pr.Stats == nil || pr.Stats.PredictEvents == 0 {
		t.Errorf("stats missing: %+v", pr.Stats)
	}
	if pr.Tree == nil || len(pr.Tree.Children) == 0 || pr.Tree.Rule != "s" {
		t.Fatalf("tree missing: %+v", pr.Tree)
	}
	if leaf := pr.Tree.Children[0]; leaf.Token != "x" || leaf.TokenName != "ID" || leaf.Line != 1 {
		t.Errorf("leaf: %+v", leaf)
	}

	// A syntax error answers 422 and names the offending token.
	resp, body = postJSON(t, c, ts.URL+"/v1/parse", parseRequest{Grammar: "expr", Input: "x = = ;"})
	if resp.StatusCode != 422 {
		t.Fatalf("syntax error status: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.OK || pr.Error == nil {
		t.Fatalf("error body: %s", body)
	}
	if pr.Error.TokenName != "'='" || pr.Error.Token != "=" || pr.Error.Line != 1 {
		t.Errorf("offending token not named: %+v", pr.Error)
	}

	// Recovery mode reports every survived error.
	resp, body = postJSON(t, c, ts.URL+"/v1/parse",
		parseRequest{Grammar: "expr", Input: "x = ) ;", Recover: true})
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Recovered) == 0 {
		t.Errorf("recovery reported nothing: %d %s", resp.StatusCode, body)
	}

	// Error mapping: unknown grammar 404, invalid name 400, bad JSON
	// 400, wrong method 405.
	if resp, _ := postJSON(t, c, ts.URL+"/v1/parse", parseRequest{Grammar: "nosuch", Input: "x"}); resp.StatusCode != 404 {
		t.Errorf("unknown grammar: %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, c, ts.URL+"/v1/parse", parseRequest{Grammar: "../etc/passwd", Input: "x"}); resp.StatusCode != 400 {
		t.Errorf("bad name: %d", resp.StatusCode)
	}
	if resp, err := c.Post(ts.URL+"/v1/parse", "application/json", strings.NewReader("{not json")); err == nil {
		if resp.StatusCode != 400 {
			t.Errorf("bad JSON: %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if resp, err := c.Get(ts.URL + "/v1/parse"); err == nil {
		if resp.StatusCode != 405 {
			t.Errorf("GET parse: %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestBatchEndpoint(t *testing.T) {
	s, _ := newTestServer(t, Config{BatchWorkers: 4}, map[string]string{"expr": exprGrammar, "json": jsonGrammar})
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inputs := make([]string, 20)
	for i := range inputs {
		inputs[i] = fmt.Sprintf("x = %d ;", i)
	}
	// One bad input proves per-item isolation.
	inputs[7] = "x = = ;"
	req := batchRequest{
		Grammar: "expr",
		Inputs:  inputs,
		Items: []parseRequest{
			{Grammar: "json", Input: `{"a": [1, 2]}`},
		},
	}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/batch", req)
	if resp.StatusCode != 200 {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Count != 21 || br.Succeeded != 20 || br.Failed != 1 {
		t.Errorf("batch counts: %+v", br)
	}
	if br.Results[7].OK || br.Results[7].Error == nil {
		t.Errorf("bad item not isolated: %+v", br.Results[7])
	}
	if last := br.Results[20]; !last.OK || last.Grammar != "json" {
		t.Errorf("mixed-grammar item: %+v", last)
	}

	// Empty batches and oversized batches are rejected.
	if resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/batch", batchRequest{Grammar: "expr"}); resp.StatusCode != 400 {
		t.Errorf("empty batch: %d", resp.StatusCode)
	}
	big := batchRequest{Grammar: "expr", Inputs: make([]string, 1000)}
	if resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/batch", big); resp.StatusCode != 400 {
		t.Errorf("oversized batch: %d", resp.StatusCode)
	}
}

func TestGrammarsListing(t *testing.T) {
	s, _ := newTestServer(t, Config{Preload: []string{"expr"}},
		map[string]string{"expr": exprGrammar, "json": jsonGrammar})
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/grammars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var out struct {
		Grammars []Listing `json:"grammars"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Grammars) != 2 {
		t.Fatalf("listing: %s", body)
	}
	byName := map[string]Listing{}
	for _, l := range out.Grammars {
		byName[l.Name] = l
	}
	if l := byName["expr"]; !l.Loaded || l.Digest == "" || l.Fingerprint == "" || l.Decisions == 0 {
		t.Errorf("preloaded grammar listing: %+v", l)
	}
	if l := byName["json"]; l.Loaded || l.Digest != "" {
		t.Errorf("lazy grammar should be unloaded: %+v", l)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, _ := newTestServer(t, Config{}, map[string]string{"expr": exprGrammar})
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	postJSON(t, ts.Client(), ts.URL+"/v1/parse", parseRequest{Grammar: "expr", Input: "x = 1 ;"})

	scrape := func() string {
		resp, err := ts.Client().Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return string(body)
	}
	out := scrape()
	for _, want := range []string{
		`llstar_server_requests_total{endpoint="parse",code="200"} 1`,
		"llstar_server_request_duration_us_count",
		"llstar_server_queue_wait_us_count",
		"llstar_server_inflight 0",
		`llstar_server_grammar_loads_total{result="load"} 1`,
		"llstar_parses_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// /metrics itself is not instrumented, so back-to-back scrapes are
	// byte-identical — the deterministic-exporter guarantee end to end.
	if again := scrape(); again != out {
		t.Error("scrapes not stable")
	}
}

func TestBackpressure429(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxInFlight: 1, QueueWait: -1},
		map[string]string{"expr": exprGrammar})
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Saturate the single slot directly, then prove requests shed.
	s.slots <- struct{}{}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/parse", parseRequest{Grammar: "expr", Input: "x = 1 ;"})
	if resp.StatusCode != 429 {
		t.Fatalf("saturated: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error.Msg == "" {
		t.Errorf("429 body: %s", body)
	}
	<-s.slots
	if resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/parse", parseRequest{Grammar: "expr", Input: "x = 1 ;"}); resp.StatusCode != 200 {
		t.Errorf("after release: %d", resp.StatusCode)
	}
	if s.InFlight() != 0 {
		t.Errorf("inflight leak: %d", s.InFlight())
	}
}

// bigJSONInput builds a JSON array big enough that parsing it takes
// real wall time (used by the timeout and drain tests).
func bigJSONInput(n int) string {
	var b strings.Builder
	b.WriteByte('[')
	for i := range n {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('1')
	}
	b.WriteByte(']')
	return b.String()
}

func TestRequestTimeout504(t *testing.T) {
	s, _ := newTestServer(t, Config{RequestTimeout: time.Millisecond, MaxBodyBytes: 16 << 20},
		map[string]string{"json": jsonGrammar})
	if err := s.Preload("json"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/parse",
		parseRequest{Grammar: "json", Input: bigJSONInput(300_000)})
	if resp.StatusCode != 504 {
		t.Fatalf("timeout: %d %s", resp.StatusCode, body[:min(len(body), 200)])
	}
}

func TestBodyTooLarge413(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBodyBytes: 256}, map[string]string{"expr": exprGrammar})
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/parse",
		parseRequest{Grammar: "expr", Input: strings.Repeat("x", 4096)})
	if resp.StatusCode != 413 {
		t.Errorf("oversize body: %d", resp.StatusCode)
	}
}

func TestPanicRecovery(t *testing.T) {
	s, _ := newTestServer(t, Config{}, map[string]string{"expr": exprGrammar})
	h := s.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/parse", nil))
	if rec.Code != 500 {
		t.Fatalf("panic status: %d", rec.Code)
	}
	var er errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || !strings.Contains(er.Error.Msg, "boom") {
		t.Errorf("panic body: %s", rec.Body.String())
	}
}

// TestGracefulDrain proves the SIGTERM path: with a request in flight,
// StartDrain flips /readyz to 503 and http.Server.Shutdown waits for
// the request to complete successfully before returning.
func TestGracefulDrain(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBodyBytes: 16 << 20, RequestTimeout: time.Minute},
		map[string]string{"json": jsonGrammar})
	if err := s.Preload("json"); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	url := "http://" + ln.Addr().String()

	var status atomic.Int64
	var done sync.WaitGroup
	done.Add(1)
	go func() {
		defer done.Done()
		resp, body := postJSON(t, http.DefaultClient, url+"/v1/parse",
			parseRequest{Grammar: "json", Input: bigJSONInput(400_000)})
		status.Store(int64(resp.StatusCode))
		if resp.StatusCode != 200 {
			t.Errorf("in-flight request failed during drain: %d %s", resp.StatusCode, body[:min(len(body), 200)])
		}
	}()

	// Wait until the request holds its in-flight slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	s.StartDrain()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 {
		t.Errorf("readyz while draining: %d", rec.Code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain cleanly: %v", err)
	}
	done.Wait()
	if status.Load() != 200 {
		t.Errorf("drained request status: %d", status.Load())
	}
}

// TestStressMixedGrammars is the acceptance stress test: at least 8
// concurrent clients hammering mixed grammars for at least 2 seconds
// with zero non-429 failures, while one writer hot-reloads a grammar
// under load.
func TestStressMixedGrammars(t *testing.T) {
	if testing.Short() {
		t.Skip("2s wall-clock stress test")
	}
	s, dir := newTestServer(t, Config{MaxInFlight: 128},
		map[string]string{"expr": exprGrammar, "json": jsonGrammar, "decl": declGrammar})
	if err := s.Preload("all"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	requests := map[string]parseRequest{
		"expr": {Grammar: "expr", Input: "x = ( ( y ) ) ;", Stats: true},
		"json": {Grammar: "json", Input: `{"k": [1, {"n": "v"}, true], "m": null}`, Tree: true},
		"decl": {Grammar: "decl", Input: "unsigned unsigned int x ;"},
	}
	names := []string{"expr", "json", "decl"}

	const clients = 8
	const duration = 2100 * time.Millisecond
	stop := time.Now().Add(duration)
	var total, shed atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan string, clients)
	for c := range clients {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := 0; time.Now().Before(stop); i++ {
				name := names[(c+i)%len(names)]
				data, _ := json.Marshal(requests[name])
				resp, err := client.Post(ts.URL+"/v1/parse", "application/json", bytes.NewReader(data))
				if err != nil {
					select {
					case errc <- fmt.Sprintf("client %d: %v", c, err):
					default:
					}
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				total.Add(1)
				switch resp.StatusCode {
				case 200:
				case 429:
					shed.Add(1)
				default:
					select {
					case errc <- fmt.Sprintf("client %d: %s -> %d", c, name, resp.StatusCode):
					default:
					}
					return
				}
			}
		}(c)
	}

	// Hot-reload writer: flips one grammar's source under load; every
	// in-flight and subsequent request must still succeed.
	reloadStop := make(chan struct{})
	var reloads sync.WaitGroup
	reloads.Add(1)
	go func() {
		defer reloads.Done()
		flip := false
		for {
			select {
			case <-reloadStop:
				return
			case <-time.After(150 * time.Millisecond):
			}
			src := declGrammar
			if flip {
				// A trailing comment changes the source text (and so the
				// fingerprint) without changing the language.
				src += "// v2\n"
			}
			flip = !flip
			if err := os.WriteFile(filepath.Join(dir, "decl.g"), []byte(src), 0o644); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	wg.Wait()
	close(reloadStop)
	reloads.Wait()
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
	if total.Load() < clients {
		t.Fatalf("only %d requests completed", total.Load())
	}
	t.Logf("stress: %d requests across %d clients (%d shed with 429) in %v",
		total.Load(), clients, shed.Load(), duration)
}
