package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"llstar"
)

// coverageBody mirrors the /debug/coverage response for decoding.
type coverageBody struct {
	Grammars map[string]*llstar.CoverageSnapshot `json:"grammars"`
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestDebugCoverageAfterTraffic(t *testing.T) {
	s, _ := newTestServer(t, Config{Debug: true, Preload: []string{"expr"}},
		map[string]string{"expr": exprGrammar, "json": jsonGrammar})
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, input := range []string{"x = 1 ;", "y = ( a ) ;", "z = 2 ;"} {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/parse", parseRequest{Grammar: "expr", Input: input})
		if resp.StatusCode != 200 {
			t.Fatalf("parse: %d %s", resp.StatusCode, body)
		}
	}

	code, body := getBody(t, ts.URL+"/debug/coverage")
	if code != 200 {
		t.Fatalf("/debug/coverage = %d %s", code, body)
	}
	var cov coverageBody
	if err := json.Unmarshal(body, &cov); err != nil {
		t.Fatalf("bad coverage JSON: %v\n%s", err, body)
	}
	snap := cov.Grammars["expr"]
	if snap == nil {
		t.Fatalf("no expr snapshot in %s", body)
	}
	if snap.Parses != 3 {
		t.Errorf("expr parses = %d, want 3", snap.Parses)
	}
	if snap.TotalPredictions() == 0 {
		t.Error("expr snapshot has no prediction events after traffic")
	}
	// json was never loaded, so it must not appear (no phantom rows).
	if _, ok := cov.Grammars["json"]; ok {
		t.Error("unloaded grammar appears in coverage response")
	}

	// Single-grammar filter and HTML rendering.
	code, body = getBody(t, ts.URL+"/debug/coverage?grammar=expr&format=html")
	if code != 200 || !strings.Contains(string(body), "<html") {
		t.Errorf("html report = %d %.80s", code, body)
	}
	if code, _ = getBody(t, ts.URL+"/debug/coverage?grammar=nope"); code != 404 {
		t.Errorf("unknown grammar filter = %d, want 404", code)
	}

	// /debug/vars serves the same registry as /metrics, as JSON.
	code, body = getBody(t, ts.URL+"/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars = %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("bad vars JSON: %v\n%s", err, body)
	}
	found := false
	for k := range vars {
		if strings.HasPrefix(k, "llstar_server_requests_total") {
			found = true
		}
	}
	if !found {
		t.Errorf("vars missing request counter: %s", body)
	}

	// pprof is mounted too.
	if code, _ = getBody(t, ts.URL+"/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

func TestDebugHandlerSeparateFromMain(t *testing.T) {
	// Debug off: the main handler hides /debug/*, but DebugHandler still
	// serves it (the private-listener deployment).
	s, _ := newTestServer(t, Config{}, map[string]string{"expr": exprGrammar})
	if err := s.Preload("expr"); err != nil {
		t.Fatal(err)
	}
	main := httptest.NewServer(s.Handler())
	defer main.Close()
	dbg := httptest.NewServer(s.DebugHandler())
	defer dbg.Close()

	if code, _ := getBody(t, main.URL+"/debug/coverage"); code != 404 {
		t.Errorf("main handler /debug/coverage with Debug off = %d, want 404", code)
	}
	code, body := getBody(t, dbg.URL+"/debug/coverage")
	if code != 200 {
		t.Errorf("DebugHandler /debug/coverage = %d %s", code, body)
	}
}

func TestDebugCoverageDisabled(t *testing.T) {
	s, _ := newTestServer(t, Config{Debug: true, DisableCoverage: true},
		map[string]string{"expr": exprGrammar})
	if err := s.Preload("expr"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, body := getBody(t, ts.URL+"/debug/coverage")
	if code != 404 || !strings.Contains(string(body), "disabled") {
		t.Errorf("disabled coverage = %d %s", code, body)
	}
}

func TestRequestIDEchoAndErrors(t *testing.T) {
	s, _ := newTestServer(t, Config{}, map[string]string{"expr": exprGrammar})
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Client-supplied id: echoed verbatim on the response and inside the
	// error body.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/parse", strings.NewReader(`{"input":"x"}`))
	req.Header.Set("X-Request-Id", "client-id-42")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("missing-grammar parse = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "client-id-42" {
		t.Errorf("echoed id = %q, want client-id-42", got)
	}
	var eresp errorResponse
	if err := json.Unmarshal(body, &eresp); err != nil {
		t.Fatal(err)
	}
	if eresp.Error.RequestID != "client-id-42" {
		t.Errorf("error JSON request_id = %q, want client-id-42", eresp.Error.RequestID)
	}

	// No id supplied: the server generates a 16-hex-digit one.
	resp2, _ := postJSON(t, ts.Client(), ts.URL+"/v1/parse", parseRequest{Grammar: "expr", Input: "x = 1 ;"})
	id := resp2.Header.Get("X-Request-Id")
	if len(id) != 16 {
		t.Errorf("generated id = %q, want 16 hex digits", id)
	}

	// A hostile id (header/log-unsafe) is replaced, not echoed.
	req3, _ := http.NewRequest("GET", ts.URL+"/v1/grammars", nil)
	req3.Header.Set("X-Request-Id", "bad id\twith spaces")
	resp3, err := ts.Client().Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if got := resp3.Header.Get("X-Request-Id"); strings.Contains(got, " ") || len(got) != 16 {
		t.Errorf("hostile id not replaced: %q", got)
	}
}

func TestReloadErrorSurfacedInListing(t *testing.T) {
	s, dir := newTestServer(t, Config{}, map[string]string{"expr": exprGrammar})
	if err := s.Preload("expr"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	listing := func() Listing {
		t.Helper()
		code, body := getBody(t, ts.URL+"/v1/grammars")
		if code != 200 {
			t.Fatalf("/v1/grammars = %d", code)
		}
		var out struct {
			Grammars []Listing `json:"grammars"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		for _, l := range out.Grammars {
			if l.Name == "expr" {
				return l
			}
		}
		t.Fatal("expr missing from listing")
		return Listing{}
	}
	if l := listing(); l.LastError != "" {
		t.Fatalf("fresh grammar has last_error %q", l.LastError)
	}

	// Break the file (different size + future mtime forces the reload
	// path regardless of filesystem timestamp granularity).
	path := filepath.Join(dir, "expr.g")
	if err := os.WriteFile(path, []byte("grammar Broken; s : ; ;"), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	// The broken reload is absorbed: requests keep hitting the stale
	// grammar instead of failing.
	if _, err := s.Registry().Get("expr"); err != nil {
		t.Fatalf("broken reload must serve the stale grammar: %v", err)
	}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/parse", parseRequest{Grammar: "expr", Input: "x = 1 ;"})
	if resp.StatusCode != 200 {
		t.Fatalf("parse during broken reload = %d %s", resp.StatusCode, body)
	}
	l := listing()
	if l.LastError == "" {
		t.Error("broken reload not surfaced in last_error")
	}
	if !l.Loaded {
		t.Error("stale entry should still be listed as loaded")
	}
	if got := s.Metrics().Counter("llstar_server_reload_errors_total").Value(); got < 1 {
		t.Errorf("reload_errors_total = %d, want >= 1", got)
	}

	// Fix the file: the next load succeeds and clears the error.
	if err := os.WriteFile(path, []byte(exprGrammar), 0o644); err != nil {
		t.Fatal(err)
	}
	later := future.Add(2 * time.Second)
	if err := os.Chtimes(path, later, later); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Registry().Get("expr"); err != nil {
		t.Fatalf("fixed grammar failed to reload: %v", err)
	}
	if l := listing(); l.LastError != "" {
		t.Errorf("last_error survives a successful reload: %q", l.LastError)
	}
}
