package server

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"llstar"
	"llstar/internal/obs/flight"
)

// This file serves the incremental session API:
//
//	POST   /v1/sessions            create a session over one document
//	GET    /v1/sessions            list live sessions
//	GET    /v1/sessions/{id}       inspect one session
//	DELETE /v1/sessions/{id}       close and remove it
//	POST   /v1/sessions/{id}/edit  apply a text edit, incremental reparse
//
// A session retains its document, token stream, memo table, and parse
// tree server-side; an edit relexes only the damaged byte range and
// re-parses only the nearest enclosing rule, reporting how much work
// was reused. The table is bounded: MaxSessions entries, idle sessions
// evicted LRU-first once it fills, 429 when nothing is evictable.

// errSessionsFull is mapped to 429.
var errSessionsFull = errors.New("session table full")

// sessionEntry is one live session plus its bookkeeping. mu serializes
// all session access (a stream.Session is single-goroutine, like a
// Parser); lastUsed is guarded by the table lock instead so eviction
// scans never block behind a long edit.
type sessionEntry struct {
	id      string
	grammar string
	rule    string
	mu      sync.Mutex
	sess    *llstar.Session
	// rec is the session-owned flight ring (nil when the recorder is
	// disabled): create and every edit append to it, so a capture shows
	// the whole session history up to the anomaly.
	rec      *flight.Recorder
	created  time.Time
	lastUsed time.Time
}

// sessionTable is the bounded id → session map.
type sessionTable struct {
	mu      sync.Mutex
	max     int
	idle    time.Duration
	entries map[string]*sessionEntry
}

func newSessionTable(max int, idle time.Duration) *sessionTable {
	return &sessionTable{max: max, idle: idle, entries: map[string]*sessionEntry{}}
}

// insert adds e, evicting idle sessions (oldest first) if the table is
// full. It returns the evicted entries for the caller to close, or
// errSessionsFull when nothing is evictable.
func (t *sessionTable) insert(e *sessionEntry) ([]*sessionEntry, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var evicted []*sessionEntry
	if len(t.entries) >= t.max {
		var idlers []*sessionEntry
		now := time.Now()
		for _, se := range t.entries {
			if now.Sub(se.lastUsed) >= t.idle {
				idlers = append(idlers, se)
			}
		}
		sort.Slice(idlers, func(i, j int) bool { return idlers[i].lastUsed.Before(idlers[j].lastUsed) })
		for _, se := range idlers {
			if len(t.entries) < t.max {
				break
			}
			delete(t.entries, se.id)
			evicted = append(evicted, se)
		}
		if len(t.entries) >= t.max {
			return evicted, errSessionsFull
		}
	}
	t.entries[e.id] = e
	return evicted, nil
}

// get returns the entry and bumps its recency.
func (t *sessionTable) get(id string) *sessionEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[id]
	if e != nil {
		e.lastUsed = time.Now()
	}
	return e
}

// remove deletes and returns the entry (nil if absent).
func (t *sessionTable) remove(id string) *sessionEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[id]
	delete(t.entries, id)
	return e
}

// size returns the live-session count.
func (t *sessionTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// list snapshots the table.
func (t *sessionTable) list() []*sessionEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*sessionEntry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].created.Before(out[j].created) })
	return out
}

// sessionCreateRequest is the body of POST /v1/sessions.
type sessionCreateRequest struct {
	Grammar string `json:"grammar"`
	Rule    string `json:"rule,omitempty"`
	Input   string `json:"input"`
	// Text requests the parse tree s-expression in the response.
	Text bool `json:"text,omitempty"`
}

// sessionEditRequest is the body of POST /v1/sessions/{id}/edit: replace
// old_len bytes at offset with new_text.
type sessionEditRequest struct {
	Offset  int    `json:"offset"`
	OldLen  int    `json:"old_len"`
	NewText string `json:"new_text"`
	Text    bool   `json:"text,omitempty"`
}

// sessionStatsJSON reports the incremental work profile of the last
// edit.
type sessionStatsJSON struct {
	ReusedTokens    int     `json:"reused_tokens"`
	RelexedTokens   int     `json:"relexed_tokens"`
	TokenReuseRatio float64 `json:"token_reuse_ratio"`
	ReusedMemo      int     `json:"reused_memo"`
	DroppedMemo     int     `json:"dropped_memo"`
}

// sessionJSON describes a session: create, edit, and inspect all
// answer with it.
type sessionJSON struct {
	SessionID string `json:"session_id"`
	Grammar   string `json:"grammar"`
	Rule      string `json:"rule"`
	// OK reports whether the current document parses (a session whose
	// document has a syntax error stays alive and editable).
	OK     bool  `json:"ok"`
	Bytes  int64 `json:"bytes"`
	Tokens int   `json:"tokens"`
	Edits  int   `json:"edits"`
	// Reuse is present after an edit.
	Reuse     *sessionStatsJSON `json:"reuse,omitempty"`
	Text      string            `json:"text,omitempty"`
	ElapsedUS int64             `json:"elapsed_us,omitempty"`
	Error     *errorJSON        `json:"error,omitempty"`
}

// summarize renders the session state. Callers hold e.mu.
func (e *sessionEntry) summarize(g *llstar.Grammar, withText bool, perr error) sessionJSON {
	st := e.sess.Stats()
	out := sessionJSON{
		SessionID: e.id,
		Grammar:   e.grammar,
		Rule:      e.rule,
		OK:        perr == nil && e.sess.Tree() != nil,
		Bytes:     int64(len(e.sess.Text())),
		Tokens:    st.Tokens,
		Edits:     st.Edits,
	}
	if st.Edits > 0 {
		out.Reuse = &sessionStatsJSON{
			ReusedTokens:    st.ReusedTokens,
			RelexedTokens:   st.RelexedTokens,
			TokenReuseRatio: st.TokenReuseRatio,
			ReusedMemo:      st.ReusedMemo,
			DroppedMemo:     st.DroppedMemo,
		}
	}
	if perr != nil {
		ej := toErrorJSON(g, perr)
		out.Error = &ej
	}
	if withText {
		out.Text = e.sess.TreeString()
	}
	return out
}

func (s *Server) sessionsGauge() { s.mx.Gauge("llstar_server_sessions").Set(int64(s.sessions.size())) }

// handleSessions serves /v1/sessions: POST creates, GET lists.
func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.createSession(w, r)
	case http.MethodGet:
		s.listSessions(w)
	default:
		writeError(w, http.StatusMethodNotAllowed, "POST or GET required")
	}
}

func (s *Server) listSessions(w http.ResponseWriter) {
	entries := s.sessions.list()
	out := struct {
		Count    int           `json:"count"`
		Sessions []sessionJSON `json:"sessions"`
	}{Count: len(entries), Sessions: []sessionJSON{}}
	for _, e := range entries {
		e.mu.Lock()
		st := e.sess.Stats()
		out.Sessions = append(out.Sessions, sessionJSON{
			SessionID: e.id, Grammar: e.grammar, Rule: e.rule,
			OK:     e.sess.Tree() != nil,
			Bytes:  int64(len(e.sess.Text())),
			Tokens: st.Tokens, Edits: st.Edits,
		})
		e.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, out)
}

// createSession builds an incremental session over the request's
// document. A document with a syntax error still creates the session
// (answering 200 with ok=false and the located error): the whole point
// of an editable session is that the next edit can fix it.
func (s *Server) createSession(w http.ResponseWriter, r *http.Request) {
	var req sessionCreateRequest
	if err := decodeJSON(r, &req); err != nil {
		s.badRequest(w, "sessions", err)
		return
	}
	if req.Grammar == "" {
		s.countError("sessions", "request")
		writeError(w, http.StatusBadRequest, `missing "grammar"`)
		return
	}
	e, err := s.reg.Get(req.Grammar)
	if err != nil {
		s.grammarError(w, "sessions", err)
		return
	}
	if sw, ok := w.(*statusWriter); ok {
		sw.grammar = e.Name
	}
	if max := s.cfg.MaxSessionBytes; max > 0 && int64(len(req.Input)) > max {
		s.countError("sessions", "toolarge")
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("input exceeds session byte cap (%d bytes)", max))
		return
	}

	id := s.newSessionID()
	var fr *flightRun
	var rec *flight.Recorder
	if s.flight != nil {
		rec = flight.NewRecorder(s.cfg.FlightEvents)
		fr = &flightRun{
			rec: rec, endpoint: "sessions", grammar: e.Name, session: id,
			reqID:   w.Header().Get(requestIDHeader),
			traceID: traceIDFrom(w.Header().Get(traceparentHeader)),
			start:   time.Now(),
		}
	}
	opts := []llstar.SessionOption{
		llstar.WithIncremental(),
		llstar.WithMaxBytes(s.cfg.MaxSessionBytes),
		llstar.WithSessionMetrics(s.mx),
	}
	if req.Rule != "" {
		opts = append(opts, llstar.WithStartRule(req.Rule))
	}
	if s.cfg.Tracer != nil {
		opts = append(opts, llstar.WithSessionTracer(s.cfg.Tracer))
	}
	if rec != nil {
		opts = append(opts, llstar.WithSessionFlightRecorder(rec))
	}
	start := time.Now()
	sess, err := e.G.NewSession(opts...)
	if err != nil {
		s.countError("sessions", "request")
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if fr != nil {
		fr.rule = sess.Rule()
	}

	// Feed the document. A mid-document syntax error stops Feed from
	// accepting the tail, but the session must retain the client's full
	// document for later edits — append the remainder through the edit
	// path, which keeps text and tokens current even when the parse
	// stays broken.
	fed, perr := 0, error(nil)
	for fed < len(req.Input) && perr == nil {
		end := fed + streamReadChunk
		if end > len(req.Input) {
			end = len(req.Input)
		}
		perr = sess.Feed([]byte(req.Input[fed:end]))
		if perr == nil {
			fed = end
		}
	}
	if perr == nil {
		perr = sess.Finish()
	} else {
		sess.Finish()
	}
	if rest := len(req.Input) - len(sess.Text()); rest > 0 {
		off := len(sess.Text())
		if err := sess.Edit(llstar.Edit{Offset: off, OldLen: 0, NewText: req.Input[off:]}); err != nil {
			perr = err
		}
	}

	entry := &sessionEntry{
		id: id, grammar: e.Name, rule: sess.Rule(),
		sess: sess, rec: rec,
		created: time.Now(), lastUsed: time.Now(),
	}
	evicted, err := s.sessions.insert(entry)
	s.closeEvicted(evicted)
	if err != nil {
		sess.Close()
		s.countError("sessions", "full")
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("session table full: %d live sessions; retry or delete one", s.cfg.MaxSessions))
		return
	}
	s.mx.Counter("llstar_server_sessions_total").Inc()
	s.sessionsGauge()

	out := entry.summarize(e.G, req.Text, perr)
	out.ElapsedUS = time.Since(start).Microseconds()
	if fr != nil {
		fr.stats.Tokens = int64(out.Tokens)
		s.finishFlight(r.Context(), fr, parseResponse{OK: out.OK}, "")
	}
	if !out.OK {
		s.countError("sessions", "syntax")
	}
	writeJSON(w, http.StatusOK, out)
}

// closeEvicted shuts down sessions the table evicted.
func (s *Server) closeEvicted(evicted []*sessionEntry) {
	for _, e := range evicted {
		e.mu.Lock()
		e.sess.Close()
		e.mu.Unlock()
		s.mx.Counter("llstar_server_sessions_evicted_total").Inc()
	}
	if len(evicted) > 0 {
		s.sessionsGauge()
	}
}

// handleSession serves /v1/sessions/{id} and /v1/sessions/{id}/edit.
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/sessions/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" || (sub != "" && sub != "edit") {
		writeError(w, http.StatusNotFound, "not found")
		return
	}
	entry := s.sessions.get(id)
	if entry == nil {
		s.countError("sessions", "unknown_session")
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown session %q", id))
		return
	}
	if sw, ok := w.(*statusWriter); ok {
		sw.grammar = entry.grammar
	}
	if sub == "edit" {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		s.editSession(w, r, entry)
		return
	}
	switch r.Method {
	case http.MethodGet:
		g, err := s.reg.Get(entry.grammar)
		if err != nil {
			s.grammarError(w, "sessions", err)
			return
		}
		entry.mu.Lock()
		out := entry.summarize(g.G, r.URL.Query().Get("text") == "1", entry.sess.Err())
		entry.mu.Unlock()
		writeJSON(w, http.StatusOK, out)
	case http.MethodDelete:
		if e := s.sessions.remove(id); e != nil {
			e.mu.Lock()
			e.sess.Close()
			e.mu.Unlock()
			s.sessionsGauge()
		}
		writeJSON(w, http.StatusOK, struct {
			SessionID string `json:"session_id"`
			Deleted   bool   `json:"deleted"`
		}{id, true})
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or DELETE required")
	}
}

// editSession applies one edit. Parse failures answer 422 but keep the
// session alive and editable; only out-of-range offsets (400) and
// byte-cap overruns (413) reject the edit outright.
func (s *Server) editSession(w http.ResponseWriter, r *http.Request, entry *sessionEntry) {
	var req sessionEditRequest
	if err := decodeJSON(r, &req); err != nil {
		s.badRequest(w, "sessions", err)
		return
	}
	g, err := s.reg.Get(entry.grammar)
	if err != nil {
		s.grammarError(w, "sessions", err)
		return
	}

	entry.mu.Lock()
	defer entry.mu.Unlock()
	if req.Offset < 0 || req.OldLen < 0 || req.Offset+req.OldLen > len(entry.sess.Text()) {
		s.countError("sessions", "request")
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("edit out of range: offset=%d old_len=%d document=%d bytes",
				req.Offset, req.OldLen, len(entry.sess.Text())))
		return
	}
	var fr *flightRun
	if entry.rec != nil {
		fr = &flightRun{
			rec: entry.rec, endpoint: "session_edit",
			grammar: entry.grammar, rule: entry.rule, session: entry.id,
			reqID:   w.Header().Get(requestIDHeader),
			traceID: traceIDFrom(w.Header().Get(traceparentHeader)),
			start:   time.Now(),
		}
	}
	start := time.Now()
	perr := entry.sess.Edit(llstar.Edit{Offset: req.Offset, OldLen: req.OldLen, NewText: req.NewText})
	elapsed := time.Since(start)
	s.mx.Counter("llstar_server_session_edits_total").Inc()
	if fr != nil {
		fr.stats.Tokens = int64(entry.sess.Stats().Tokens)
		s.finishFlight(r.Context(), fr, parseResponse{OK: perr == nil}, "")
	}
	if errors.Is(perr, llstar.ErrStreamTooLarge) {
		s.countError("sessions", "toolarge")
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("edit would exceed session byte cap (%d bytes)", s.cfg.MaxSessionBytes))
		return
	}
	out := entry.summarize(g.G, req.Text, perr)
	out.ElapsedUS = elapsed.Microseconds()
	code := http.StatusOK
	if perr != nil {
		code = http.StatusUnprocessableEntity
		s.countError("sessions", "syntax")
	}
	writeJSON(w, code, out)
}
