package server

import (
	"context"
	"encoding/json"
	"fmt"
	"html/template"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"llstar/internal/cluster"
	"llstar/internal/obs"
	"llstar/internal/obs/flight"
)

// This file is the fleet observability plane's server half: the
// merged metrics/topology view (GET /debug/fleet, with ?format=prom
// for a Prometheus scrape and ?format=html for a self-contained
// dashboard), the fleet event log (GET /debug/events), and fleet-wide
// flight lookup by trace id (GET /debug/flight/by-trace/{traceid}).
//
// Fan-out discipline: a replica answering one of these endpoints
// queries every ring peer concurrently (bounded), each under
// Config.FleetTimeout, and stamps the X-Llstar-Forwarded loop guard
// so peers answer locally. Dead or slow peers degrade to partial
// results carrying an error string — never a 5xx.

// fleetFanout bounds concurrent peer queries per fan-out.
const fleetFanout = 8

// fleetLocal is one replica's own contribution to the merged view —
// what a peer (or the replica itself) serves when asked with the
// forwarded guard set.
type fleetLocal struct {
	Addr     string              `json:"addr"`
	Ready    bool                `json:"ready"`
	Draining bool                `json:"draining,omitempty"`
	Grammars int                 `json:"grammars_loaded"`
	Captures int                 `json:"flight_captures"`
	Metrics  obs.MetricsSnapshot `json:"metrics"`
	Events   []obs.FleetEvent    `json:"events,omitempty"`
}

// fleetPeerView is fleetLocal plus reachability: Err records a peer
// that could not be queried (its Metrics are then empty).
type fleetPeerView struct {
	fleetLocal
	Self bool   `json:"self,omitempty"`
	Up   bool   `json:"up"`
	Err  string `json:"error,omitempty"`
}

// fleetResponse is the JSON body of GET /debug/fleet.
type fleetResponse struct {
	Self      string            `json:"self"`
	RingSize  int               `json:"ring_size"`
	UpCount   int               `json:"up"`
	Quorum    bool              `json:"quorum"`
	Replicas  []fleetPeerView   `json:"replicas"`
	Placement map[string]string `json:"placement,omitempty"`
}

// localFleet snapshots this replica for the merged view.
func (s *Server) localFleet() fleetLocal {
	fl := fleetLocal{
		Addr:     s.replicaAddr(),
		Ready:    s.Ready(),
		Draining: s.Draining(),
		Grammars: len(s.reg.LoadedEntries()),
		Metrics:  s.mx.Snapshot(),
		Events:   s.events.Events(),
	}
	if fl.Addr == "" {
		fl.Addr = "local"
	}
	if s.flight != nil {
		fl.Captures = s.flight.Len()
	}
	return fl
}

// peerReply is one peer's answer to a debug fan-out.
type peerReply struct {
	addr string
	body []byte
	err  error
}

// fanOutDebug queries path on every ring peer concurrently (bounded
// by fleetFanout, each request under Config.FleetTimeout, loop guard
// set). Failures come back as replies with err set — the caller
// renders them as degraded entries, never an error response.
func (s *Server) fanOutDebug(c *cluster.Cluster, path string) []peerReply {
	var peers []string
	for _, addr := range c.Ring().Peers() {
		if addr != c.Self() {
			peers = append(peers, addr)
		}
	}
	replies := make([]peerReply, len(peers))
	sem := make(chan struct{}, fleetFanout)
	var wg sync.WaitGroup
	for i, addr := range peers {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			replies[i] = s.queryPeer(c, addr, path)
		}(i, addr)
	}
	wg.Wait()
	return replies
}

// queryPeer performs one guarded GET against a peer debug endpoint.
func (s *Server) queryPeer(c *cluster.Cluster, addr, path string) peerReply {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.FleetTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+path, nil)
	if err != nil {
		return peerReply{addr: addr, err: err}
	}
	req.Header.Set(forwardedHeader, c.Self())
	resp, err := c.Client().Do(req)
	if err != nil {
		return peerReply{addr: addr, err: err}
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return peerReply{addr: addr, err: fmt.Errorf("HTTP %d", resp.StatusCode)}
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return peerReply{addr: addr, err: err}
	}
	return peerReply{addr: addr, body: body}
}

// handleFleet serves GET /debug/fleet. A request carrying the
// forwarded guard (a peer's fan-out) answers with this replica's
// fleetLocal JSON; everything else gets the merged fleet view as
// JSON (default), a Prometheus scrape with per-replica labels
// (?format=prom), or the dashboard (?format=html). Single-node mode
// renders a one-replica fleet, so the formats work everywhere.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if r.Header.Get(forwardedHeader) != "" {
		writeJSON(w, http.StatusOK, s.localFleet())
		return
	}

	self := s.localFleet()
	resp := fleetResponse{
		Self:     self.Addr,
		RingSize: 1,
		UpCount:  1,
		Quorum:   true,
		Replicas: []fleetPeerView{{fleetLocal: self, Self: true, Up: true}},
	}
	if c := s.cluster(); c != nil {
		t := c.Topology()
		resp.RingSize, resp.UpCount, resp.Quorum, resp.Placement = t.RingSize, t.Up, t.Quorum, t.Placement
		for _, pr := range s.fanOutDebug(c, "/debug/fleet") {
			view := fleetPeerView{Up: c.Up(pr.addr)}
			view.Addr = pr.addr
			switch {
			case pr.err != nil:
				view.Err = pr.err.Error()
			default:
				if err := json.Unmarshal(pr.body, &view.fleetLocal); err != nil {
					view.Err = "bad reply: " + err.Error()
					view.Addr = pr.addr
				}
			}
			resp.Replicas = append(resp.Replicas, view)
		}
		sort.Slice(resp.Replicas, func(i, j int) bool { return resp.Replicas[i].Addr < resp.Replicas[j].Addr })
	}

	switch r.URL.Query().Get("format") {
	case "prom":
		var reps []obs.ReplicaMetrics
		for _, v := range resp.Replicas {
			if v.Err == "" {
				reps = append(reps, obs.ReplicaMetrics{Addr: v.Addr, Snap: v.Metrics})
			}
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.WriteFleetPrometheus(w, reps); err != nil {
			s.countError("fleet", "write")
		}
	case "html":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := writeFleetHTML(w, resp); err != nil {
			s.countError("fleet", "write")
		}
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

// eventsResponse is the body of GET /debug/events.
type eventsResponse struct {
	Total  int              `json:"total"`
	Events []obs.FleetEvent `json:"events"`
}

// handleEvents serves this replica's bounded fleet event log, newest
// first. (The merged multi-replica timeline is on the /debug/fleet
// dashboard, which carries every replica's events.)
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.events == nil {
		writeError(w, http.StatusNotFound, "event log disabled (Config.EventLogSize < 0)")
		return
	}
	ev := s.events.Events()
	if ev == nil {
		ev = []obs.FleetEvent{}
	}
	writeJSON(w, http.StatusOK, eventsResponse{Total: s.events.Total(), Events: ev})
}

// byTraceResponse is the body of GET /debug/flight/by-trace/{id}.
type byTraceResponse struct {
	TraceID  string           `json:"trace_id"`
	Count    int              `json:"count"`
	Captures []flight.Capture `json:"captures"`
	// Errors lists peers that could not be queried; their captures (if
	// any) are missing from this answer.
	Errors map[string]string `json:"errors,omitempty"`
}

// isHex reports whether v is entirely lowercase-hex digits.
func isHex(v string) bool {
	for i := 0; i < len(v); i++ {
		c := v[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return len(v) > 0
}

// handleFlightByTrace serves every flight capture for one trace id —
// local store first, then a guarded fan-out to ring peers, so a
// proxied request's origin- and owner-side captures (and each batch
// item's) come back in one answer no matter which replica is asked.
func (s *Server) handleFlightByTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/flight/by-trace/")
	if len(id) != 32 || !isHex(id) {
		writeError(w, http.StatusBadRequest, "trace id must be 32 lowercase hex digits")
		return
	}
	resp := byTraceResponse{TraceID: id}
	if s.flight != nil {
		resp.Captures = s.flight.ByTrace(id)
	}
	if c := s.cluster(); c != nil && r.Header.Get(forwardedHeader) == "" {
		for _, pr := range s.fanOutDebug(c, "/debug/flight/by-trace/"+id) {
			if pr.err != nil {
				if resp.Errors == nil {
					resp.Errors = map[string]string{}
				}
				resp.Errors[pr.addr] = pr.err.Error()
				continue
			}
			var peer byTraceResponse
			if err := json.Unmarshal(pr.body, &peer); err != nil {
				if resp.Errors == nil {
					resp.Errors = map[string]string{}
				}
				resp.Errors[pr.addr] = "bad reply: " + err.Error()
				continue
			}
			resp.Captures = append(resp.Captures, peer.Captures...)
		}
		sort.SliceStable(resp.Captures, func(i, j int) bool {
			if !resp.Captures[i].Time.Equal(resp.Captures[j].Time) {
				return resp.Captures[i].Time.Before(resp.Captures[j].Time)
			}
			return resp.Captures[i].SpanID < resp.Captures[j].SpanID
		})
	}
	if resp.Captures == nil {
		resp.Captures = []flight.Capture{}
	}
	resp.Count = len(resp.Captures)
	writeJSON(w, http.StatusOK, resp)
}

// --- dashboard ---

// parseLabelSet splits a rendered label body (`a="1",b="2"`) into a
// map. Label values this codebase renders never contain commas or
// escaped quotes, so a linear split is exact.
func parseLabelSet(labels string) map[string]string {
	out := map[string]string{}
	for _, kv := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			continue
		}
		out[k] = strings.Trim(v, `"`)
	}
	return out
}

// fleetLatencyRow is one (endpoint, grammar) pair's fleet-merged
// latency distribution for the dashboard.
type fleetLatencyRow struct {
	Endpoint, Grammar    string
	Count                int64
	P50, P95, P99, MaxMS float64
}

// fleetTopologyRow is one replica's dashboard line.
type fleetTopologyRow struct {
	Addr               string
	Self, Up, Ready    bool
	Draining           bool
	Err                string
	Grammars, Captures int
	Requests, Proxied  int64
	ProxySharePct      float64
	CacheHitPct        float64
	HasCache           bool
}

// fleetEventRow is one merged-timeline event with its source replica.
type fleetEventRow struct {
	Replica string
	E       obs.FleetEvent
}

// buildFleetDash derives the dashboard's tables from the merged view.
func buildFleetDash(resp fleetResponse) (rows []fleetTopologyRow, lat []fleetLatencyRow, events []fleetEventRow) {
	var fleetRequests int64
	merged := map[string]*obs.HistSnapshot{}
	for _, v := range resp.Replicas {
		row := fleetTopologyRow{
			Addr: v.Addr, Self: v.Self, Up: v.Up, Ready: v.Ready, Draining: v.Draining,
			Err: v.Err, Grammars: v.Grammars, Captures: v.Captures,
		}
		for name, n := range v.Metrics.Counters {
			family, labels := splitMetricName(name)
			switch family {
			case "llstar_server_requests_total":
				row.Requests += n
			case "llstar_cluster_proxy_total":
				if parseLabelSet(labels)["result"] == "ok" {
					row.Proxied += n
				}
			}
		}
		hits := v.Metrics.Counters["llstar_cache_hits_total"]
		misses := v.Metrics.Counters["llstar_cache_misses_total"]
		if hits+misses > 0 {
			row.HasCache = true
			row.CacheHitPct = 100 * float64(hits) / float64(hits+misses)
		}
		fleetRequests += row.Requests
		for name, h := range v.Metrics.Hists {
			family, labels := splitMetricName(name)
			if family != "llstar_server_latency_us" {
				continue
			}
			m := merged[labels]
			if m == nil {
				m = &obs.HistSnapshot{}
				merged[labels] = m
			}
			m.Merge(h)
		}
		for _, e := range v.Events {
			events = append(events, fleetEventRow{Replica: v.Addr, E: e})
		}
		rows = append(rows, row)
	}
	for i := range rows {
		if fleetRequests > 0 {
			rows[i].ProxySharePct = 100 * float64(rows[i].Requests) / float64(fleetRequests)
		}
	}
	ms := func(us float64) float64 { return us / 1000 }
	for labels, h := range merged {
		ls := parseLabelSet(labels)
		lat = append(lat, fleetLatencyRow{
			Endpoint: ls["endpoint"], Grammar: ls["grammar"], Count: h.Count,
			P50: ms(h.Quantile(0.50)), P95: ms(h.Quantile(0.95)), P99: ms(h.Quantile(0.99)),
			MaxMS: ms(float64(h.Max)),
		})
	}
	sort.Slice(lat, func(i, j int) bool {
		if lat[i].Endpoint != lat[j].Endpoint {
			return lat[i].Endpoint < lat[j].Endpoint
		}
		return lat[i].Grammar < lat[j].Grammar
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].E.Time.After(events[j].E.Time) })
	if len(events) > 40 {
		events = events[:40]
	}
	return rows, lat, events
}

// splitMetricName mirrors obs's family/label split for rendered names.
func splitMetricName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// fleetTmpl is the self-contained dashboard: topology and health, the
// fleet-merged per-endpoint/per-grammar latency table (p50/p95/p99
// estimated from histogram buckets), proxy share, cache hit ratios,
// and the merged event timeline. No external assets — it must render
// from a curl dump on a machine with no network.
var fleetTmpl = template.Must(template.New("fleet").Funcs(template.FuncMap{
	"f1": func(v float64) string { return fmt.Sprintf("%.1f", v) },
	"f2": func(v float64) string { return fmt.Sprintf("%.2f", v) },
	"ts": func(t time.Time) string { return t.Format("15:04:05.000") },
}).Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>llstar fleet — {{.R.Self}}</title>
<style>
body { font: 13px/1.45 -apple-system, system-ui, sans-serif; margin: 1.5em; color: #1a1a2e; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.6em; }
code { background: #f0f0f5; padding: 0 3px; border-radius: 3px; }
table { border-collapse: collapse; min-width: 60%; }
th, td { text-align: left; padding: 3px 10px; border-bottom: 1px solid #e4e4ee; white-space: nowrap; }
th { background: #f7f7fb; font-weight: 600; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.up { color: #0a7a33; font-weight: 600; } .down { color: #b00020; font-weight: 600; }
.dim { color: #8a8aa0; } .self { background: #f4f9ff; }
.kind { display: inline-block; padding: 0 5px; border-radius: 3px; background: #eef; }
.kind-peer_down, .kind-load_error { background: #fde3e7; }
.kind-peer_up, .kind-reload { background: #e2f5e8; }
.kind-serve_stale { background: #fff3d6; }
</style></head><body>
<h1>llstar fleet <span class="dim">— asked via {{.R.Self}}, ring {{.R.RingSize}}, up {{.R.UpCount}}, quorum {{.R.Quorum}}</span></h1>

<h2>Topology</h2>
<table><tr><th>replica</th><th>state</th><th>ready</th><th>grammars</th><th>captures</th>
<th>requests</th><th>share</th><th>proxied out</th><th>cache hit</th></tr>
{{range .Rows}}<tr{{if .Self}} class="self"{{end}}>
<td><code>{{.Addr}}</code>{{if .Self}} <span class="dim">(self)</span>{{end}}</td>
<td>{{if .Err}}<span class="down">unreachable</span> <span class="dim">{{.Err}}</span>{{else if .Up}}<span class="up">up</span>{{else}}<span class="down">down</span>{{end}}</td>
<td>{{if .Err}}<span class="dim">—</span>{{else if .Draining}}draining{{else if .Ready}}yes{{else}}no{{end}}</td>
<td class="num">{{if .Err}}—{{else}}{{.Grammars}}{{end}}</td>
<td class="num">{{if .Err}}—{{else}}{{.Captures}}{{end}}</td>
<td class="num">{{if .Err}}—{{else}}{{.Requests}}{{end}}</td>
<td class="num">{{if .Err}}—{{else}}{{f1 .ProxySharePct}}%{{end}}</td>
<td class="num">{{if .Err}}—{{else}}{{.Proxied}}{{end}}</td>
<td class="num">{{if .HasCache}}{{f1 .CacheHitPct}}%{{else}}<span class="dim">—</span>{{end}}</td>
</tr>{{end}}
</table>

<h2>Latency <span class="dim">(fleet-merged, ms, quantiles estimated from histogram buckets)</span></h2>
{{if .Lat}}<table><tr><th>endpoint</th><th>grammar</th><th>count</th><th>p50</th><th>p95</th><th>p99</th><th>max</th></tr>
{{range .Lat}}<tr><td>{{.Endpoint}}</td><td>{{if .Grammar}}<code>{{.Grammar}}</code>{{else}}<span class="dim">—</span>{{end}}</td>
<td class="num">{{.Count}}</td><td class="num">{{f2 .P50}}</td><td class="num">{{f2 .P95}}</td><td class="num">{{f2 .P99}}</td><td class="num">{{f2 .MaxMS}}</td>
</tr>{{end}}</table>{{else}}<p class="dim">no latency observations yet</p>{{end}}

{{if .R.Placement}}<h2>Placement</h2>
<table><tr><th>grammar</th><th>owner</th></tr>
{{range $g, $o := .R.Placement}}<tr><td><code>{{$g}}</code></td><td><code>{{$o}}</code></td></tr>{{end}}
</table>{{end}}

<h2>Events <span class="dim">(merged, newest first, 40 max)</span></h2>
{{if .Events}}<table><tr><th>time</th><th>replica</th><th>kind</th><th>peer</th><th>grammar</th><th>ok</th><th>detail</th></tr>
{{range .Events}}<tr><td>{{ts .E.Time}}</td><td><code>{{.Replica}}</code></td>
<td><span class="kind kind-{{.E.Kind}}">{{.E.Kind}}</span></td>
<td>{{if .E.Peer}}<code>{{.E.Peer}}</code>{{else}}<span class="dim">—</span>{{end}}</td>
<td>{{if .E.Grammar}}<code>{{.E.Grammar}}</code>{{else}}<span class="dim">—</span>{{end}}</td>
<td>{{if .E.OK}}<span class="up">ok</span>{{else}}<span class="down">fail</span>{{end}}</td>
<td class="dim">{{.E.Detail}}</td>
</tr>{{end}}</table>{{else}}<p class="dim">no events recorded</p>{{end}}

<p class="dim">Formats: <code>/debug/fleet</code> JSON · <code>?format=prom</code> merged scrape ·
traces: <code>/debug/flight/by-trace/{traceid}</code> · local log: <code>/debug/events</code></p>
</body></html>
`))

// writeFleetHTML renders the dashboard for one merged view.
func writeFleetHTML(w io.Writer, resp fleetResponse) error {
	rows, lat, events := buildFleetDash(resp)
	return fleetTmpl.Execute(w, struct {
		R      fleetResponse
		Rows   []fleetTopologyRow
		Lat    []fleetLatencyRow
		Events []fleetEventRow
	}{resp, rows, lat, events})
}
