// Package server is the llstar parse service: a stdlib-only net/http
// server exposing grammars from a directory over a JSON API, built on
// the facade's concurrency primitives (shared immutable Grammars,
// ParserPool) and observability (obs.Metrics, obs.Tracer).
//
// Endpoints:
//
//	POST /v1/parse                   parse one input           (JSON in/out)
//	POST /v1/parse?stream=events     streaming parse: raw body in, NDJSON SAX events out
//	POST /v1/batch                   parse many inputs         (bounded worker fan-out)
//	POST /v1/sessions                create an incremental parse session
//	GET/DELETE /v1/sessions/{id}     inspect / close a session
//	POST /v1/sessions/{id}/edit      apply a text edit, incremental reparse
//	GET  /v1/grammars                registry listing with analysis digests (+ fleet owners)
//	GET  /v1/cluster                 fleet topology: ring, peer health, grammar placement
//	GET  /v1/artifacts/{fp}          raw .llsc artifact bytes from the shared cache
//	GET  /healthz                    liveness (always 200 while the process serves)
//	GET  /readyz                     readiness (200 only after preloads, 503 draining; fleet: + ring/quorum)
//	GET  /metrics                    Prometheus text exposition
//
// Introspection (Config.Debug on the main handler, or DebugHandler()
// on a private listener):
//
//	GET /debug/coverage              live per-grammar coverage/hotspot profiles (JSON or ?format=html)
//	GET /debug/vars                  expvar-style metrics JSON
//	GET /debug/pprof/*               net/http/pprof
//	GET /debug/fleet                 fleet-merged metrics/topology (JSON, ?format=prom, ?format=html dashboard)
//	GET /debug/events                bounded fleet event log (health flips, reloads, artifact fetches)
//	GET /debug/flight/by-trace/{id}  every flight capture for a trace id, fleet-wide
//
// Every request carries an X-Request-Id (client-supplied or generated):
// echoed on the response, embedded in error JSON, attached to the
// server.<endpoint> trace span, and printed with panic logs.
//
// Robustness: a global in-flight limiter sheds load with 429 +
// Retry-After once MaxInFlight parses are running and the queue wait is
// exhausted; request bodies are capped; every parse runs under a
// per-request timeout; handler panics become JSON 500s; StartDrain
// flips /readyz to 503 so load balancers stop sending while
// http.Server.Shutdown drains in-flight requests. See docs/server.md.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"llstar"
	"llstar/internal/cluster"
	"llstar/internal/obs"
	"llstar/internal/obs/flight"
)

// Config tunes a Server. The zero value of every limit picks a
// production-safe default.
type Config struct {
	// GrammarDir is the directory of .g / .llsc files served by name.
	GrammarDir string
	// CacheDir enables the persistent analysis cache for source-grammar
	// loads (LoadOptions.CacheDir); CacheMaxBytes caps it.
	CacheDir      string
	CacheMaxBytes int64
	// RewriteLeftRecursion applies the Section 1.1 precedence-loop
	// rewrite to directly left-recursive rules at load.
	RewriteLeftRecursion bool
	// AnalysisWorkers bounds parallel per-decision DFA construction.
	AnalysisWorkers int
	// Preload lists grammar names to load before the server reports
	// ready; the single name "all" (or "*") preloads the whole
	// directory.
	Preload []string

	// MaxInFlight caps concurrently executing parse/batch requests
	// (default 64). MaxInFlight < 0 disables the limiter.
	MaxInFlight int
	// QueueWait is how long a request may wait for an in-flight slot
	// before being shed with 429 (default 100ms; negative means shed
	// immediately).
	QueueWait time.Duration
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// RequestTimeout bounds each parse (default 10s). A request that
	// exceeds it gets a 504; the abandoned parse finishes in the
	// background and its parser returns to the pool.
	RequestTimeout time.Duration
	// BatchWorkers bounds the per-request worker pool fanning a batch
	// across parsers (default GOMAXPROCS).
	BatchWorkers int
	// MaxBatchItems caps inputs per batch request (default 256).
	MaxBatchItems int

	// MaxStreamBytes caps the raw request body of the streaming parse
	// endpoint (POST /v1/parse?stream=events), which is exempt from
	// MaxBodyBytes because bounded streaming memory is its whole point
	// (default 64 MiB; < 0 disables the cap).
	MaxStreamBytes int64
	// MaxSessions caps live incremental sessions (default 64). When the
	// table is full, creating a session evicts sessions idle longer than
	// SessionIdle; if none qualify the request is shed with 429.
	MaxSessions int
	// SessionIdle is how long a session may sit unused before it becomes
	// evictable (default 5m).
	SessionIdle time.Duration
	// MaxSessionBytes caps each session's retained document, and with it
	// the /v1/sessions request bodies (default 4 MiB). An edit that would
	// grow the document past the cap answers 413.
	MaxSessionBytes int64

	// Debug mounts the introspection endpoints (/debug/coverage,
	// /debug/flight, /debug/vars, /debug/pprof/*) on the main handler.
	// Regardless of this flag they are always reachable through
	// DebugHandler(), which a deployment can bind to a private listener.
	Debug bool
	// DisableCoverage turns off the per-grammar coverage profiler
	// behind /debug/coverage. The zero value keeps it on: the recorder
	// costs a few percent of parse time and makes every served grammar
	// introspectable.
	DisableCoverage bool

	// DisableFlight turns off the per-request flight recorder. The zero
	// value keeps it on: every /v1/parse rides a bounded last-N-events
	// ring, and an anomalous request (slow, 5xx/504, panicked, or over
	// its speculation budget) persists its full timeline to a bounded
	// capture store served at /debug/flight. With the recorder off the
	// parse hot path is back to a single nil-tracer check.
	DisableFlight bool
	// FlightSlow is the latency anomaly threshold (default 500ms; < 0
	// disarms the latency trigger entirely).
	FlightSlow time.Duration
	// FlightEvents is the per-request ring capacity (default 256).
	FlightEvents int
	// FlightCaptures bounds the server-wide capture store (default 64).
	FlightCaptures int
	// FlightBacktrackTokens arms the wasted-work trigger: a parse whose
	// speculation consumed (and rewound) at least this many tokens is
	// captured even if it finished fast and 200. 0 leaves it disarmed.
	FlightBacktrackTokens int64

	// EventLogSize bounds the fleet event log behind /debug/events
	// (health flips, reloads, serve-stale fallbacks, artifact fetches).
	// 0 picks obs.DefaultEventLogSize; < 0 disables the log entirely.
	EventLogSize int
	// FleetTimeout bounds each per-peer fan-out request the fleet debug
	// endpoints (/debug/fleet, /debug/flight/by-trace) make; a peer that
	// misses it degrades to a partial result, never an error (default 2s).
	FleetTimeout time.Duration

	// Logger receives the server's structured log records (one
	// per-request access line plus panics, flight captures, and
	// lifecycle events), each carrying request_id, trace_id, grammar,
	// endpoint, status, and dur_ms where applicable. Nil means
	// slog.Default().
	Logger *slog.Logger

	// Metrics receives llstar_server_* series plus everything the
	// facade records (pool, cache, runtime counters). Created if nil.
	Metrics *obs.Metrics
	// Tracer, if set, receives a server.<endpoint> span per request and
	// all analysis/runtime events from loads and parses.
	Tracer obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 64
	}
	if c.QueueWait == 0 {
		c.QueueWait = 100 * time.Millisecond
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatchItems == 0 {
		c.MaxBatchItems = 256
	}
	if c.MaxStreamBytes == 0 {
		c.MaxStreamBytes = 64 << 20
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	if c.SessionIdle == 0 {
		c.SessionIdle = 5 * time.Minute
	}
	if c.MaxSessionBytes == 0 {
		c.MaxSessionBytes = 4 << 20
	}
	if c.FlightSlow == 0 {
		c.FlightSlow = 500 * time.Millisecond
	}
	if c.FlightEvents <= 0 {
		c.FlightEvents = flight.DefaultEvents
	}
	if c.FlightCaptures <= 0 {
		c.FlightCaptures = flight.DefaultCaptures
	}
	if c.FleetTimeout == 0 {
		c.FleetTimeout = 2 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewMetrics()
	}
	return c
}

// durationBuckets are the histogram bounds (microseconds) for the
// request-duration and queue-wait series.
var durationBuckets = []int64{
	100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000,
}

// Server is the parse service. Construct with New, then serve
// Handler() with any http.Server. A Server reports ready only after
// Preload has completed; StartDrain begins a graceful shutdown.
type Server struct {
	cfg     Config
	reg     *Registry
	mx      *obs.Metrics
	tr      obs.Tracer
	log     *slog.Logger
	slots   chan struct{}
	ready   atomic.Bool
	drain   atomic.Bool
	handler http.Handler
	debug   http.Handler

	// flight is the bounded capture store behind /debug/flight (nil
	// when Config.DisableFlight); ftrig decides which requests persist
	// a capture, and fpool recycles the per-request event rings.
	flight *flight.Store
	ftrig  flight.Trigger
	fpool  sync.Pool

	// sessions is the bounded table of live incremental parse sessions
	// behind /v1/sessions.
	sessions *sessionTable

	// events is the bounded fleet event log behind /debug/events (nil
	// when Config.EventLogSize < 0). The registry and — via EventLog()
	// at cluster construction — the prober write into it; nothing on
	// the parse hot path does.
	events *obs.EventLog

	// cl is the fleet view (AttachCluster); nil in single-node mode.
	// In fleet mode the limiter switches from the fixed channel to the
	// dynamic dynFlight/dynLimit pair, whose limit tracks this
	// replica's share of the fleet-wide in-flight budget.
	cl        atomic.Pointer[cluster.Cluster]
	dynFlight atomic.Int64
	dynLimit  atomic.Int64
}

// New validates cfg and builds a Server. The server is not ready until
// Preload is called (with an empty preload list it merely flips
// readiness).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.GrammarDir == "" {
		return nil, fmt.Errorf("server: Config.GrammarDir is required")
	}
	st, err := os.Stat(cfg.GrammarDir)
	if err != nil {
		return nil, fmt.Errorf("server: grammar dir: %w", err)
	}
	if !st.IsDir() {
		return nil, fmt.Errorf("server: grammar dir %q is not a directory", cfg.GrammarDir)
	}
	lopts := llstar.LoadOptions{
		RewriteLeftRecursion: cfg.RewriteLeftRecursion,
		AnalysisWorkers:      cfg.AnalysisWorkers,
		CacheDir:             cfg.CacheDir,
		CacheMaxBytes:        cfg.CacheMaxBytes,
		Tracer:               cfg.Tracer,
		Metrics:              cfg.Metrics,
	}
	s := &Server{
		cfg: cfg,
		reg: NewRegistry(cfg.GrammarDir, lopts, cfg.Metrics),
		mx:  cfg.Metrics,
		tr:  obs.Active(cfg.Tracer),
		log: cfg.Logger,
	}
	s.reg.DisableCoverage = cfg.DisableCoverage
	if cfg.MaxInFlight > 0 {
		s.slots = make(chan struct{}, cfg.MaxInFlight)
	}
	if !cfg.DisableFlight {
		s.flight = flight.NewStore(cfg.FlightCaptures)
		s.ftrig = flight.Trigger{
			Slow:            cfg.FlightSlow,
			MinStatus:       http.StatusInternalServerError,
			BacktrackTokens: cfg.FlightBacktrackTokens,
		}
		if cfg.FlightSlow < 0 {
			s.ftrig.Slow = 0
		}
		s.fpool.New = func() any { return flight.NewRecorder(cfg.FlightEvents) }
	}
	if cfg.EventLogSize >= 0 {
		s.events = obs.NewEventLog(cfg.EventLogSize)
		s.reg.Events = s.events
	}
	s.sessions = newSessionTable(cfg.MaxSessions, cfg.SessionIdle)
	s.debug = s.debugMux()
	s.handler = s.routes()
	return s, nil
}

// Registry exposes the grammar registry (the CLI and tests use it).
func (s *Server) Registry() *Registry { return s.reg }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *obs.Metrics { return s.mx }

// FlightStore returns the anomaly capture store behind /debug/flight,
// or nil when Config.DisableFlight turned the recorder off.
func (s *Server) FlightStore() *flight.Store { return s.flight }

// EventLog returns the fleet event log behind /debug/events (nil when
// Config.EventLogSize < 0). Pass it as cluster.Config.Events so probe
// flips and artifact fetches land on the same timeline as reloads.
func (s *Server) EventLog() *obs.EventLog { return s.events }

// Handler returns the root handler (all endpoints plus middleware).
func (s *Server) Handler() http.Handler { return s.handler }

// DebugHandler returns just the introspection endpoints
// (/debug/coverage, /debug/vars, /debug/pprof/*), for serving on a
// separate — typically private — listener. It is available even when
// Config.Debug left them off the main handler.
func (s *Server) DebugHandler() http.Handler { return s.debug }

// Preload loads cfg.Preload (plus any extra names) and then marks the
// server ready. It is the readiness gate: call it even with nothing to
// preload.
func (s *Server) Preload(extra ...string) error {
	names := append(append([]string{}, s.cfg.Preload...), extra...)
	if err := s.reg.Preload(names); err != nil {
		return err
	}
	s.ready.Store(true)
	return nil
}

// Ready reports whether preloads completed and the server is not
// draining.
func (s *Server) Ready() bool { return s.ready.Load() && !s.drain.Load() }

// StartDrain marks the server draining: /readyz turns 503 so load
// balancers stop routing here, while in-flight (and even new) requests
// keep being served. Pair it with http.Server.Shutdown, which stops the
// listener and waits for in-flight requests.
func (s *Server) StartDrain() { s.drain.Store(true) }

// Draining reports whether StartDrain was called.
func (s *Server) Draining() bool { return s.drain.Load() }

// InFlight returns the number of limiter slots currently held.
func (s *Server) InFlight() int {
	if s.slots == nil {
		return 0
	}
	return len(s.slots)
}

func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	// /v1/parse dispatches on ?stream=events before the middleware runs
	// so the streaming variant gets its own endpoint label and the wider
	// MaxStreamBytes body cap.
	parseJSON := s.instrument("parse", true, s.cfg.MaxBodyBytes, s.handleParse)
	parseStream := s.instrument("parse_stream", true, s.cfg.MaxStreamBytes, s.handleParseStream)
	// Fleet routing runs before the limiter: a request proxied to its
	// owner counts against the owner's in-flight budget, not this
	// replica's.
	mux.Handle("/v1/parse", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("stream") == "events" {
			if s.maybeProxyStream(w, r) {
				return
			}
			parseStream.ServeHTTP(w, r)
			return
		}
		if s.maybeProxyJSON(w, r, s.cfg.MaxBodyBytes) {
			return
		}
		parseJSON.ServeHTTP(w, r)
	}))
	batch := s.instrument("batch", true, s.cfg.MaxBodyBytes, s.handleBatch)
	mux.Handle("/v1/batch", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.maybeProxyJSON(w, r, s.cfg.MaxBodyBytes) {
			return
		}
		batch.ServeHTTP(w, r)
	}))
	mux.Handle("/v1/grammars", s.instrument("grammars", false, s.cfg.MaxBodyBytes, s.handleGrammars))
	// Session bodies carry whole documents, so they get the session cap
	// rather than MaxBodyBytes. Creation is always local (the id is
	// minted self-owned); per-session requests route by the id's ring
	// owner, which is the replica holding the state.
	mux.Handle("/v1/sessions", s.instrument("sessions", true, s.cfg.MaxSessionBytes, s.handleSessions))
	session := s.instrument("sessions", true, s.cfg.MaxSessionBytes, s.handleSession)
	mux.Handle("/v1/sessions/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.maybeProxySession(w, r) {
			return
		}
		session.ServeHTTP(w, r)
	}))
	mux.Handle("/v1/cluster", s.instrument("cluster", false, s.cfg.MaxBodyBytes, s.handleCluster))
	mux.Handle("/v1/artifacts/", s.instrument("artifacts", false, s.cfg.MaxBodyBytes, s.handleArtifact))
	if s.cfg.Debug {
		mux.Handle("/debug/", s.debug)
	}
	return s.requestID(s.recoverPanics(mux))
}

// statusWriter captures the response code for metrics and tracing,
// plus per-request correlation fields the access log needs (the
// handler fills grammar in as soon as it decodes the request body).
type statusWriter struct {
	http.ResponseWriter
	code    int
	grammar string
	reqID   string
	traceID string
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// instrument wraps an endpoint with the shared middleware: in-flight
// limiting (limited endpoints only), the endpoint's body cap, request
// metrics, and a per-request trace span.
func (s *Server) instrument(endpoint string, limited bool, bodyCap int64, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		var ts0 time.Duration
		if s.tr != nil {
			ts0 = s.tr.Now()
		}
		rec := &statusWriter{
			ResponseWriter: w,
			reqID:          w.Header().Get(requestIDHeader),
			traceID:        traceIDFrom(w.Header().Get(traceparentHeader)),
		}
		if limited {
			wait, release, ok := s.acquire(r.Context())
			if !ok {
				rec.Header().Set("Retry-After", "1")
				s.countError(endpoint, "overload")
				writeError(rec, http.StatusTooManyRequests,
					fmt.Sprintf("overloaded: %d requests in flight; retry", s.cfg.MaxInFlight))
				s.finish(endpoint, rec, start, ts0)
				return
			}
			if release != nil {
				s.mx.Histogram("llstar_server_queue_wait_us", durationBuckets...).Observe(wait.Microseconds())
				defer release()
			}
		}
		if bodyCap > 0 && r.Body != nil {
			r.Body = http.MaxBytesReader(rec, r.Body, bodyCap)
		}
		h(rec, r)
		s.finish(endpoint, rec, start, ts0)
	})
}

// finish records the per-request metrics, trace span, and structured
// access-log line. The span Detail and the log line carry the same
// request_id / trace_id pair the response headers echo, so a timeline
// span, a log record, and a flight capture can be joined on either.
func (s *Server) finish(endpoint string, rec *statusWriter, start time.Time, ts0 time.Duration) {
	code := rec.code
	if code == 0 {
		code = http.StatusOK
	}
	dur := time.Since(start)
	s.mx.Counter(obs.Label("llstar_server_requests_total",
		"endpoint", endpoint, "code", strconv.Itoa(code))).Inc()
	s.mx.Histogram("llstar_server_request_duration_us", durationBuckets...).Observe(dur.Microseconds())
	// Per-endpoint/per-grammar latency distribution: the series the
	// fleet dashboard merges into its p50/p95/p99 view. Grammar is ""
	// for endpoints with no grammar (metrics, cluster, ...).
	s.mx.Histogram(obs.Label("llstar_server_latency_us",
		"endpoint", endpoint, "grammar", rec.grammar), durationBuckets...).Observe(dur.Microseconds())
	if s.tr != nil {
		s.tr.Emit(obs.Event{
			Name: "server." + endpoint, Cat: obs.PhaseServer, Ph: obs.PhSpan,
			TS: ts0, Dur: s.tr.Now() - ts0, Decision: -1,
			OK: code < 400, N: int64(code),
			Detail: rec.reqID + " " + rec.traceID,
		})
	}
	s.log.LogAttrs(context.Background(), slog.LevelInfo, "request",
		slog.String("endpoint", endpoint),
		slog.Int("status", code),
		slog.Float64("dur_ms", float64(dur)/float64(time.Millisecond)),
		slog.String("request_id", rec.reqID),
		slog.String("trace_id", rec.traceID),
		slog.String("grammar", rec.grammar),
	)
}

func (s *Server) countError(endpoint, kind string) {
	s.mx.Counter(obs.Label("llstar_server_errors_total", "endpoint", endpoint, "kind", kind)).Inc()
}

// acquire takes an in-flight slot, waiting up to QueueWait. It reports
// the time spent queued, the matching release function (nil when the
// limiter is disabled), and whether a slot was obtained. The release
// is returned rather than looked up later so a request admitted just
// before AttachCluster flips the limiter still releases the slot it
// actually took.
func (s *Server) acquire(ctx context.Context) (time.Duration, func(), bool) {
	if s.slots == nil {
		return 0, nil, true
	}
	if s.cl.Load() != nil {
		wait, ok := s.acquireDynamic(ctx)
		if !ok {
			return wait, nil, false
		}
		return wait, s.releaseDynamic, true
	}
	gauge := s.mx.Gauge("llstar_server_inflight")
	release := func() {
		<-s.slots
		gauge.Add(-1)
	}
	select {
	case s.slots <- struct{}{}:
		gauge.Add(1)
		return 0, release, true
	default:
	}
	if s.cfg.QueueWait <= 0 {
		return 0, nil, false
	}
	start := time.Now()
	t := time.NewTimer(s.cfg.QueueWait)
	defer t.Stop()
	select {
	case s.slots <- struct{}{}:
		gauge.Add(1)
		return time.Since(start), release, true
	case <-t.C:
		return time.Since(start), nil, false
	case <-ctx.Done():
		return time.Since(start), nil, false
	}
}

// recoverPanics turns a handler panic into a JSON 500 instead of
// killing the connection (and, under http.Server, the goroutine).
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.countError(r.URL.Path, "panic")
				s.log.LogAttrs(r.Context(), slog.LevelError, "panic",
					slog.String("endpoint", r.URL.Path),
					slog.String("method", r.Method),
					slog.String("request_id", w.Header().Get(requestIDHeader)),
					slog.String("trace_id", traceIDFrom(w.Header().Get(traceparentHeader))),
					slog.Any("panic", v),
					slog.String("stack", string(debugStack())),
				)
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", v))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// debugStack trims the recover frames off a stack dump so the panic
// site leads.
func debugStack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}

// requestIDHeader carries the correlation id: clients may supply one;
// the server generates one otherwise, echoes it on every response, and
// threads it through trace spans, error JSON, and panic logs.
const requestIDHeader = "X-Request-Id"

// traceparentHeader is the W3C Trace Context header
// (https://www.w3.org/TR/trace-context/): version-traceid-parentid-flags.
// The server accepts a valid incoming traceparent, generates one
// otherwise, and echoes it so callers and downstream systems correlate
// on the same trace id.
const traceparentHeader = "Traceparent"

// requestID is the outermost middleware: it stamps the sanitized (or
// generated) id — and a W3C traceparent — on both the request and the
// response header before any handler, including the panic recoverer,
// can write, so every error path sees them.
func (s *Server) requestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeRequestID(r.Header.Get(requestIDHeader))
		if id == "" {
			id = newRequestID()
		}
		r.Header.Set(requestIDHeader, id)
		w.Header().Set(requestIDHeader, id)

		traceID, ok := parseTraceparent(r.Header.Get(traceparentHeader))
		var tp string
		if ok {
			// Inbound context is valid: keep its trace id, mint a new
			// parent id for the server's own span in that trace.
			tp = "00-" + traceID + "-" + randHex(16) + "-01"
		} else {
			// Missing or malformed: start a fresh trace.
			traceID = randHex(32)
			tp = "00-" + traceID + "-" + randHex(16) + "-01"
		}
		r.Header.Set(traceparentHeader, tp)
		w.Header().Set(traceparentHeader, tp)
		next.ServeHTTP(w, r)
	})
}

// parseTraceparent validates a W3C traceparent header and extracts its
// 32-hex-digit trace id. Invalid input — wrong shape, non-hex digits,
// all-zero trace or parent id, or the reserved version ff — reports
// !ok so the caller falls back to generating a fresh trace.
func parseTraceparent(h string) (traceID string, ok bool) {
	// 00-{32 hex traceid}-{16 hex parentid}-{2 hex flags} = 55 bytes.
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", false
	}
	for i := 0; i < len(h); i++ {
		if i == 2 || i == 35 || i == 52 {
			continue
		}
		c := h[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return "", false
		}
	}
	if h[0] == 'f' && h[1] == 'f' {
		return "", false
	}
	traceID = h[3:35]
	if traceID == "00000000000000000000000000000000" {
		return "", false
	}
	if h[36:52] == "0000000000000000" {
		return "", false
	}
	return traceID, true
}

// traceIDFrom extracts the trace id from an already-normalized
// traceparent header (one the middleware wrote); it returns "" for
// anything else.
func traceIDFrom(h string) string {
	if len(h) != 55 {
		return ""
	}
	return h[3:35]
}

// randHex returns n lowercase hex digits of cryptographic randomness
// (n must be even). On rand failure it degrades to all-zero digits —
// never to a panic on the request path.
func randHex(n int) string {
	b := make([]byte, n/2)
	if _, err := rand.Read(b); err != nil {
		return hex.EncodeToString(b) // zeroed: correlate as "unknown"
	}
	return hex.EncodeToString(b)
}

// sanitizeRequestID accepts client-supplied ids only when they are
// short and header/log-safe; anything else is discarded so a hostile
// id cannot smuggle bytes into logs or responses.
func sanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return ""
		}
	}
	return id
}

// newRequestID returns a fresh 16-hex-digit id.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000" // rand failure: correlate as "unknown"
	}
	return hex.EncodeToString(b[:])
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.drain.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case !s.ready.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "loading")
	default:
		if c := s.cluster(); c != nil {
			// Fleet mode: readiness stays local (this replica can serve
			// any grammar), but the line carries the peer view so load
			// balancers and the CI smoke can see ring health at a glance.
			t := c.Topology()
			fmt.Fprintf(w, "ready ring=%d up=%d quorum=%v\n", t.RingSize, t.Up, t.Quorum)
			return
		}
		fmt.Fprintln(w, "ready")
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.mx.WritePrometheus(w); err != nil {
		s.countError("metrics", "write")
	}
}
