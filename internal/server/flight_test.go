package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"llstar/internal/obs"
)

// syncBuffer serializes concurrent slog writes (the access log and the
// flight finalizer log from different goroutines).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// memTracer collects events for span assertions.
type memTracer struct {
	mu     sync.Mutex
	events []obs.Event
	epoch  time.Time
}

func newMemTracer() *memTracer { return &memTracer{epoch: time.Now()} }

func (m *memTracer) Emit(e obs.Event) {
	m.mu.Lock()
	m.events = append(m.events, e)
	m.mu.Unlock()
}

func (m *memTracer) Now() time.Duration { return time.Since(m.epoch) }

func (m *memTracer) find(name string) (obs.Event, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := len(m.events) - 1; i >= 0; i-- {
		if m.events[i].Name == name {
			return m.events[i], true
		}
	}
	return obs.Event{}, false
}

// TestFlightCaptureCorrelation is the acceptance path: an induced slow
// parse (FlightSlow: 1ns captures everything) must yield a capture
// retrievable via /debug/flight/{id} whose request_id and trace_id
// match the response headers, the slog access line, and the
// server.parse span.
func TestFlightCaptureCorrelation(t *testing.T) {
	logbuf := &syncBuffer{}
	tr := newMemTracer()
	s, _ := newTestServer(t, Config{
		Debug:      true,
		FlightSlow: time.Nanosecond,
		Logger:     slog.New(slog.NewJSONHandler(logbuf, nil)),
		Tracer:     tr,
	}, map[string]string{"expr": exprGrammar})
	if err := s.Preload("expr"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/parse",
		parseRequest{Grammar: "expr", Input: "x = 1 ;"})
	if resp.StatusCode != 200 {
		t.Fatalf("parse = %d", resp.StatusCode)
	}
	rid := resp.Header.Get("X-Request-Id")
	traceID := traceIDFrom(resp.Header.Get("Traceparent"))
	if rid == "" || traceID == "" {
		t.Fatalf("missing correlation headers: rid=%q trace=%q", rid, traceID)
	}

	// Capture listed and retrievable by store id AND by request id.
	code, body := getBody(t, ts.URL+"/debug/flight")
	if code != 200 {
		t.Fatalf("/debug/flight = %d", code)
	}
	var list flightListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Captures) != 1 {
		t.Fatalf("captures = %d, want 1", len(list.Captures))
	}
	sum := list.Captures[0]
	if sum.RequestID != rid || sum.TraceID != traceID {
		t.Errorf("capture identity = %q/%q, want %q/%q", sum.RequestID, sum.TraceID, rid, traceID)
	}
	if sum.Trigger != "slow" || sum.Grammar != "expr" || sum.Status != 200 {
		t.Errorf("capture summary = %+v", sum)
	}
	if sum.Events != nil {
		t.Error("listing leaked event timeline")
	}

	for _, id := range []string{sum.ID, rid} {
		code, body = getBody(t, ts.URL+"/debug/flight/"+id)
		if code != 200 {
			t.Fatalf("/debug/flight/%s = %d", id, code)
		}
		var cap struct {
			RequestID string `json:"request_id"`
			Events    []struct {
				Name string `json:"name"`
			} `json:"events"`
			Stats struct {
				PredictEvents int `json:"predict_events"`
			} `json:"stats"`
		}
		if err := json.Unmarshal(body, &cap); err != nil {
			t.Fatal(err)
		}
		if cap.RequestID != rid || len(cap.Events) == 0 {
			t.Errorf("capture %s: rid=%q events=%d", id, cap.RequestID, len(cap.Events))
		}
		if cap.Stats.PredictEvents == 0 {
			t.Errorf("capture %s: no predict events in stats", id)
		}
		found := false
		for _, e := range cap.Events {
			if e.Name == "predict" {
				found = true
			}
		}
		if !found {
			t.Errorf("capture %s: timeline has no predict event", id)
		}
	}

	// HTML and Chrome renderings.
	code, body = getBody(t, ts.URL+"/debug/flight/"+sum.ID+"?format=html")
	if code != 200 || !strings.Contains(string(body), rid) {
		t.Errorf("html rendering = %d (rid present: %v)", code, strings.Contains(string(body), rid))
	}
	code, body = getBody(t, ts.URL+"/debug/flight/"+sum.ID+"?format=chrome")
	var arr []map[string]any
	if code != 200 || json.Unmarshal(body, &arr) != nil || len(arr) == 0 {
		t.Errorf("chrome rendering = %d, %d events", code, len(arr))
	}

	// The slog access line carries the same ids, as structured fields.
	var accessLine map[string]any
	sc := bufio.NewScanner(strings.NewReader(logbuf.String()))
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("log line not JSON: %s", sc.Text())
		}
		if rec["msg"] == "request" && rec["request_id"] == rid {
			accessLine = rec
		}
	}
	if accessLine == nil {
		t.Fatalf("no access log line for %s in:\n%s", rid, logbuf.String())
	}
	for k, want := range map[string]any{
		"endpoint": "parse", "status": float64(200),
		"trace_id": traceID, "grammar": "expr",
	} {
		if accessLine[k] != want {
			t.Errorf("access line %s = %v, want %v", k, accessLine[k], want)
		}
	}
	if _, ok := accessLine["dur_ms"].(float64); !ok {
		t.Errorf("access line dur_ms = %v", accessLine["dur_ms"])
	}

	// The server.parse span detail carries "rid traceid".
	span, ok := tr.find("server.parse")
	if !ok {
		t.Fatal("no server.parse span emitted")
	}
	if span.Detail != rid+" "+traceID {
		t.Errorf("span detail = %q, want %q", span.Detail, rid+" "+traceID)
	}
}

func TestFlightDisabled(t *testing.T) {
	s, _ := newTestServer(t, Config{Debug: true, DisableFlight: true},
		map[string]string{"expr": exprGrammar})
	if err := s.Preload("expr"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/parse",
		parseRequest{Grammar: "expr", Input: "x = 1 ;"}); resp.StatusCode != 200 {
		t.Fatalf("parse with flight disabled = %d", resp.StatusCode)
	}
	code, body := getBody(t, ts.URL+"/debug/flight")
	if code != 404 || !strings.Contains(string(body), "disabled") {
		t.Errorf("/debug/flight disabled = %d %s", code, body)
	}
	if s.FlightStore() != nil {
		t.Error("FlightStore non-nil with DisableFlight")
	}
}

// TestFlight504AbandonedCapture: a parse that outlives its request
// deadline answers 504 immediately, and the abandoned background parse
// still finalizes a capture (trigger "status", status 504) once it
// completes.
func TestFlight504AbandonedCapture(t *testing.T) {
	s, _ := newTestServer(t, Config{
		RequestTimeout: time.Millisecond,
		MaxBodyBytes:   16 << 20,
		FlightSlow:     -1, // latency trigger disarmed: the capture must come from the 504
	}, map[string]string{"json": jsonGrammar})
	if err := s.Preload("json"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/parse",
		parseRequest{Grammar: "json", Input: bigJSONInput(300_000)})
	if resp.StatusCode != 504 {
		t.Fatalf("timeout = %d", resp.StatusCode)
	}
	rid := resp.Header.Get("X-Request-Id")

	// The background parse finishes after the handler returned; poll
	// until its capture lands.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if c, ok := s.FlightStore().Get(rid); ok {
			if c.Status != 504 || c.Trigger != "status" {
				t.Errorf("abandoned capture = status %d trigger %q", c.Status, c.Trigger)
			}
			if c.EventCount == 0 {
				t.Error("abandoned capture has no events")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no capture for the 504-abandoned parse")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFlightPanicCapture drives the parse-goroutine panic path: an
// Entry with a nil grammar makes doParse dereference nil, which the
// goroutine recovers into an internal-error response and a "panic"
// capture — the recoverPanics middleware never sees that goroutine.
func TestFlightPanicCapture(t *testing.T) {
	logbuf := &syncBuffer{}
	s, _ := newTestServer(t, Config{
		Logger: slog.New(slog.NewJSONHandler(logbuf, nil)),
	}, map[string]string{"expr": exprGrammar})
	if err := s.Preload("expr"); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	rec.Header().Set(requestIDHeader, "panic-req")
	fr := s.newFlightRun(rec, "parse", "broken")
	resp, ok := s.parseWithDeadline(context.Background(), &Entry{Name: "broken"},
		parseRequest{Grammar: "broken", Input: "x"}, fr)
	if !ok {
		t.Fatal("parseWithDeadline gave up instead of recovering")
	}
	if !resp.internalErr || resp.Error == nil || !strings.Contains(resp.Error.Msg, "internal error") {
		t.Fatalf("panic response = %+v", resp)
	}
	c, found := s.FlightStore().Get("panic-req")
	if !found {
		t.Fatal("no capture for panicked parse")
	}
	if c.Trigger != "panic" || c.Status != 500 {
		t.Errorf("panic capture = trigger %q status %d", c.Trigger, c.Status)
	}
	if !strings.Contains(logbuf.String(), `"msg":"panic"`) {
		t.Errorf("panic not logged:\n%s", logbuf.String())
	}
}

func TestTraceparentAcceptGenerateEcho(t *testing.T) {
	s, _ := newTestServer(t, Config{}, map[string]string{"expr": exprGrammar})
	if err := s.Preload("expr"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	do := func(traceparent string) string {
		t.Helper()
		req, _ := http.NewRequest("GET", ts.URL+"/v1/grammars", nil)
		if traceparent != "" {
			req.Header.Set("Traceparent", traceparent)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.Header.Get("Traceparent")
	}

	// Valid inbound context: same trace id, fresh parent id.
	in := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	out := do(in)
	if traceIDFrom(out) != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id not preserved: %q", out)
	}
	if out == in {
		t.Error("parent id not re-minted")
	}

	// Absent or malformed: a fresh, valid traceparent is generated.
	for _, bad := range []string{
		"",
		"not-a-traceparent",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // all-zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // all-zero parent id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // reserved version
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e473-00f067aa0ba902b7-011", // wrong segment widths
	} {
		out := do(bad)
		if _, ok := parseTraceparent(out); !ok {
			t.Errorf("input %q: generated traceparent invalid: %q", bad, out)
		}
		if bad != "" && out == bad {
			t.Errorf("malformed traceparent %q echoed verbatim", bad)
		}
	}
}

func TestParseTraceparent(t *testing.T) {
	id, ok := parseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !ok || id != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("valid header: id=%q ok=%v", id, ok)
	}
	if _, ok := parseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"); !ok {
		t.Error("future version with valid shape rejected")
	}
}

// TestRequestIDEdgeCases: sanitization of hostile ids and the echo on
// every error status (413, 429, 504).
func TestRequestIDEdgeCases(t *testing.T) {
	s, _ := newTestServer(t, Config{
		MaxBodyBytes:   256,
		MaxInFlight:    1,
		QueueWait:      -1,
		RequestTimeout: 10 * time.Second,
	}, map[string]string{"expr": exprGrammar})
	if err := s.Preload("expr"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A newline-smuggling id never reaches the wire (the net/http
	// client refuses it), so check the sanitizer on it directly.
	if got := sanitizeRequestID("id\nwith\nnewlines"); got != "" {
		t.Errorf("newline id sanitized to %q, want rejection", got)
	}

	// Oversized (>64) and garbage ids are replaced with generated ones.
	for _, hostile := range []string{
		strings.Repeat("a", 65),
		"unicode-✂️-id",
		"semi;colon",
	} {
		req, _ := http.NewRequest("GET", ts.URL+"/v1/grammars", nil)
		req.Header.Set("X-Request-Id", hostile)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		got := resp.Header.Get("X-Request-Id")
		if got == hostile || len(got) != 16 {
			t.Errorf("hostile id %q passed through as %q", hostile, got)
		}
	}
	// Max-length clean id survives verbatim.
	maxID := strings.Repeat("a", 64)
	req, _ := http.NewRequest("GET", ts.URL+"/v1/grammars", nil)
	req.Header.Set("X-Request-Id", maxID)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != maxID {
		t.Errorf("64-char id rewritten: %q", got)
	}

	// 413: oversize body still carries the id in header and error JSON.
	req413, _ := http.NewRequest("POST", ts.URL+"/v1/parse",
		strings.NewReader(`{"grammar":"expr","input":"`+strings.Repeat("x", 4096)+`"}`))
	req413.Header.Set("X-Request-Id", "id-413")
	resp413, err := ts.Client().Do(req413)
	if err != nil {
		t.Fatal(err)
	}
	body413, _ := io.ReadAll(resp413.Body)
	resp413.Body.Close()
	if resp413.StatusCode != 413 || resp413.Header.Get("X-Request-Id") != "id-413" {
		t.Errorf("413 echo: status %d id %q", resp413.StatusCode, resp413.Header.Get("X-Request-Id"))
	}
	var er413 errorResponse
	if json.Unmarshal(body413, &er413) != nil || er413.Error.RequestID != "id-413" {
		t.Errorf("413 error JSON: %s", body413)
	}

	// 429: hold the only slot, then observe the shed request's id.
	release := make(chan struct{})
	acquired := make(chan struct{})
	go func() {
		s.slots <- struct{}{}
		close(acquired)
		<-release
		<-s.slots
	}()
	<-acquired
	req429, _ := http.NewRequest("POST", ts.URL+"/v1/parse",
		strings.NewReader(`{"grammar":"expr","input":"x = 1 ;"}`))
	req429.Header.Set("X-Request-Id", "id-429")
	resp429, err := ts.Client().Do(req429)
	if err != nil {
		t.Fatal(err)
	}
	body429, _ := io.ReadAll(resp429.Body)
	resp429.Body.Close()
	close(release)
	if resp429.StatusCode != 429 || resp429.Header.Get("X-Request-Id") != "id-429" {
		t.Errorf("429 echo: status %d id %q", resp429.StatusCode, resp429.Header.Get("X-Request-Id"))
	}
	var er429 errorResponse
	if json.Unmarshal(body429, &er429) != nil || er429.Error.RequestID != "id-429" {
		t.Errorf("429 error JSON: %s", body429)
	}
}

// TestRequestID504Echo runs the (slow) timeout path separately so the
// edge-case test above stays fast.
func TestRequestID504Echo(t *testing.T) {
	s, _ := newTestServer(t, Config{RequestTimeout: time.Millisecond, MaxBodyBytes: 16 << 20},
		map[string]string{"json": jsonGrammar})
	if err := s.Preload("json"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	data, _ := json.Marshal(parseRequest{Grammar: "json", Input: bigJSONInput(300_000)})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/parse", bytes.NewReader(data))
	req.Header.Set("X-Request-Id", "id-504")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 504 || resp.Header.Get("X-Request-Id") != "id-504" {
		t.Fatalf("504 echo: status %d id %q", resp.StatusCode, resp.Header.Get("X-Request-Id"))
	}
	var er errorResponse
	if json.Unmarshal(body, &er) != nil || er.Error.RequestID != "id-504" {
		t.Errorf("504 error JSON: %s", body)
	}
}

// TestBatchItemRequestID: every failed batch item carries the batch's
// request id so fanned-out errors stay correlatable.
func TestBatchItemRequestID(t *testing.T) {
	s, _ := newTestServer(t, Config{}, map[string]string{"expr": exprGrammar})
	if err := s.Preload("expr"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	data, _ := json.Marshal(batchRequest{
		Grammar: "expr",
		Inputs:  []string{"x = 1 ;", "not ! valid", "y = 2 ;", "also @ bad"},
	})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/batch", bytes.NewReader(data))
	req.Header.Set("X-Request-Id", "batch-rid")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("batch = %d %s", resp.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Succeeded != 2 || br.Failed != 2 {
		t.Fatalf("batch outcome = %d/%d", br.Succeeded, br.Failed)
	}
	for i, r := range br.Results {
		if r.OK {
			continue
		}
		if r.Error == nil || r.Error.RequestID != "batch-rid" {
			t.Errorf("failed item %d: error request_id = %+v, want batch-rid", i, r.Error)
		}
	}
}
