package atn

import (
	"fmt"
	"strings"

	"llstar/internal/grammar"
	"llstar/internal/token"
)

// LexMachine is the character-level ATN for a grammar's lexer rules.
// Fragments and cross-rule references are inlined, so the machine is a
// plain NFA suitable for parallel-configuration simulation with
// longest-match / first-rule-wins semantics.
type LexMachine struct {
	States []*State
	// Start has one epsilon edge per non-fragment lexer rule, in
	// declaration order (the tie-break priority).
	Start *State
	// Rules describes each non-fragment lexer rule.
	Rules []LexRuleInfo
	// acceptRule maps an accepting state ID to its rule's position in
	// Rules.
	acceptRule map[int]int

	// closures caches per-state ε-closures (computed at build time).
	closures [][]*State
}

// Closure returns the ε-closure of a state (including itself), computed
// once per machine and safe for concurrent readers.
func (lm *LexMachine) Closure(s *State) []*State {
	return lm.closures[s.ID]
}

// computeClosures precomputes ε-closures for every state.
func (lm *LexMachine) computeClosures() {
	lm.closures = make([][]*State, len(lm.States))
	seen := make([]int, len(lm.States))
	gen := 0
	for _, s := range lm.States {
		gen++
		var out []*State
		var stack []*State
		stack = append(stack, s)
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[top.ID] == gen {
				continue
			}
			seen[top.ID] = gen
			out = append(out, top)
			for _, tr := range top.Trans {
				if tr.Kind == TEpsilon {
					stack = append(stack, tr.To)
				}
			}
		}
		lm.closures[s.ID] = out
	}
}

// LexRuleInfo describes one non-fragment lexer rule.
type LexRuleInfo struct {
	Name    string
	Type    token.Type
	Skip    bool // rule text carried a skip() action
	Channel int  // nonzero if routed off the default channel
	Stop    *State
}

// AcceptRule returns the rule index accepting at state s, or -1.
func (lm *LexMachine) AcceptRule(s *State) int {
	if idx, ok := lm.acceptRule[s.ID]; ok {
		return idx
	}
	return -1
}

type lexBuilder struct {
	g      *grammar.Grammar
	lm     *LexMachine
	inline []string // inlining stack for cycle detection
}

func buildLexMachine(g *grammar.Grammar) (*LexMachine, error) {
	lm := &LexMachine{acceptRule: make(map[int]int)}
	b := &lexBuilder{g: g, lm: lm}
	lm.Start = b.newState("<lexer>")

	for _, r := range g.LexRules {
		if r.Fragment {
			continue
		}
		info := LexRuleInfo{
			Name: r.Name,
			Type: g.Vocab.Lookup(r.Name),
		}
		start := b.newState(r.Name)
		stop := b.newState(r.Name)
		stop.Stop = true
		lm.Start.AddTrans(&Trans{Kind: TEpsilon, To: start})

		skip, channel, err := b.buildLexRuleBody(r, start, stop)
		if err != nil {
			return nil, err
		}
		info.Skip = skip
		info.Channel = channel
		info.Stop = stop
		lm.acceptRule[stop.ID] = len(lm.Rules)
		lm.Rules = append(lm.Rules, info)
	}

	// Implicit literal rules: every 'literal' referenced by a parser rule
	// lexes as an exact-match rule with higher priority than named rules
	// (so 'int' beats ID), mirroring ANTLR's treatment of literals.
	literals := g.Vocab.Literals()
	if len(literals) > 0 {
		// Longer literals first so '<=' beats '<' on longest-match ties
		// at equal length... longest match already wins; ordering only
		// breaks equal-length ties, so lexicographic order is fine.
		pre := make([]LexRuleInfo, 0, len(literals))
		preStates := make([]*State, 0, len(literals))
		for _, lit := range literals {
			start := b.newState("'" + lit + "'")
			stop := b.newState("'" + lit + "'")
			stop.Stop = true
			cur := start
			for _, r := range lit {
				next := b.newState("'" + lit + "'")
				cur.AddTrans(&Trans{Kind: TChar, Lo: r, Hi: r, To: next})
				cur = next
			}
			cur.AddTrans(&Trans{Kind: TEpsilon, To: stop})
			pre = append(pre, LexRuleInfo{Name: "'" + lit + "'", Type: g.Vocab.Literal(lit), Stop: stop})
			preStates = append(preStates, start)
		}
		// Literals take priority: prepend to Rules and rebuild accept map.
		lm.Rules = append(pre, lm.Rules...)
		lm.acceptRule = make(map[int]int, len(lm.Rules))
		for i, info := range lm.Rules {
			lm.acceptRule[info.Stop.ID] = i
		}
		// Fresh start edges: literals first.
		oldEdges := lm.Start.Trans
		lm.Start.Trans = nil
		for _, s := range preStates {
			lm.Start.AddTrans(&Trans{Kind: TEpsilon, To: s})
		}
		lm.Start.Trans = append(lm.Start.Trans, oldEdges...)
	}
	lm.computeClosures()
	return lm, nil
}

func (b *lexBuilder) newState(ruleName string) *State {
	s := &State{ID: len(b.lm.States), RuleIndex: -1, RuleName: ruleName, DecisionID: -1}
	b.lm.States = append(b.lm.States, s)
	return s
}

// buildLexRuleBody threads a lexer rule's alternatives between start and
// stop, returning whether the rule skips its matches and its channel.
func (b *lexBuilder) buildLexRuleBody(r *grammar.Rule, start, stop *State) (skip bool, channel int, err error) {
	for _, alt := range r.Alts {
		elems := alt.Elems
		// A trailing action may carry a lexer command.
		if len(elems) > 0 {
			if act, ok := elems[len(elems)-1].(*grammar.Action); ok {
				cmd := strings.ReplaceAll(act.Text, " ", "")
				switch {
				case strings.Contains(cmd, "skip()"), cmd == "skip", cmd == "skip;":
					skip = true
				case strings.Contains(cmd, "channel(HIDDEN)"), strings.Contains(cmd, "hidden()"):
					channel = 1
				}
				elems = elems[:len(elems)-1]
			}
		}
		altStart := b.newState(r.Name)
		start.AddTrans(&Trans{Kind: TEpsilon, To: altStart})
		end, err := b.lexChain(r, elems, altStart)
		if err != nil {
			return false, 0, err
		}
		end.AddTrans(&Trans{Kind: TEpsilon, To: stop})
	}
	return skip, channel, nil
}

func (b *lexBuilder) lexChain(r *grammar.Rule, elems []grammar.Element, from *State) (*State, error) {
	cur := from
	for _, e := range elems {
		next, err := b.lexElement(r, e, cur)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

func (b *lexBuilder) lexElement(r *grammar.Rule, e grammar.Element, from *State) (*State, error) {
	switch e := e.(type) {
	case *grammar.CharLit:
		to := b.newState(r.Name)
		from.AddTrans(&Trans{Kind: TChar, Lo: e.R, Hi: e.R, To: to})
		return to, nil

	case *grammar.StringLit:
		cur := from
		for _, ch := range e.S {
			to := b.newState(r.Name)
			cur.AddTrans(&Trans{Kind: TChar, Lo: ch, Hi: ch, To: to})
			cur = to
		}
		return cur, nil

	case *grammar.CharSet:
		to := b.newState(r.Name)
		from.AddTrans(&Trans{Kind: TCharSet, CharRanges: e.Ranges, Negated: e.Negated, To: to})
		return to, nil

	case *grammar.Wildcard:
		to := b.newState(r.Name)
		from.AddTrans(&Trans{Kind: TWildcard, To: to})
		return to, nil

	case *grammar.RuleRef:
		// Inline the referenced lexer rule (fragment or not).
		target := b.g.Rule(e.Name)
		if target == nil || !target.IsLexer {
			return nil, fmt.Errorf("lexer rule %s references unknown lexer rule %s", r.Name, e.Name)
		}
		for _, onStack := range b.inline {
			if onStack == e.Name {
				return nil, fmt.Errorf("lexer rule %s is recursive (via %s); recursive lexer rules are not supported", e.Name, r.Name)
			}
		}
		b.inline = append(b.inline, e.Name)
		defer func() { b.inline = b.inline[:len(b.inline)-1] }()
		blk := &grammar.Block{Alts: target.Alts, Op: grammar.OpNone}
		return b.lexBlock(r, blk, from)

	case *grammar.Action:
		// Mid-rule lexer actions are ignored by the engine.
		return from, nil

	case *grammar.SemPred:
		return nil, fmt.Errorf("lexer rule %s: semantic predicates are not supported in lexer rules", r.Name)

	case *grammar.Block:
		return b.lexBlock(r, e, from)
	}
	return nil, fmt.Errorf("lexer rule %s: unsupported element %T", r.Name, e)
}

func (b *lexBuilder) lexBlock(r *grammar.Rule, blk *grammar.Block, from *State) (*State, error) {
	switch blk.Op {
	case grammar.OpPlus:
		once := &grammar.Block{Alts: blk.Alts, Op: grammar.OpNone}
		star := &grammar.Block{Alts: blk.Alts, Op: grammar.OpStar}
		mid, err := b.lexBlock(r, once, from)
		if err != nil {
			return nil, err
		}
		return b.lexBlock(r, star, mid)

	case grammar.OpNone:
		if len(blk.Alts) == 1 {
			return b.lexChain(r, blk.Alts[0].Elems, from)
		}
		end := b.newState(r.Name)
		for _, alt := range blk.Alts {
			altStart := b.newState(r.Name)
			from.AddTrans(&Trans{Kind: TEpsilon, To: altStart})
			last, err := b.lexChain(r, alt.Elems, altStart)
			if err != nil {
				return nil, err
			}
			last.AddTrans(&Trans{Kind: TEpsilon, To: end})
		}
		return end, nil

	case grammar.OpOptional:
		end, err := b.lexBlock(r, &grammar.Block{Alts: blk.Alts, Op: grammar.OpNone}, from)
		if err != nil {
			return nil, err
		}
		from.AddTrans(&Trans{Kind: TEpsilon, To: end})
		return end, nil

	case grammar.OpStar:
		// hub --alts--> hub, hub --ε--> end
		hub := b.newState(r.Name)
		from.AddTrans(&Trans{Kind: TEpsilon, To: hub})
		for _, alt := range blk.Alts {
			altStart := b.newState(r.Name)
			hub.AddTrans(&Trans{Kind: TEpsilon, To: altStart})
			last, err := b.lexChain(r, alt.Elems, altStart)
			if err != nil {
				return nil, err
			}
			last.AddTrans(&Trans{Kind: TEpsilon, To: hub})
		}
		end := b.newState(r.Name)
		hub.AddTrans(&Trans{Kind: TEpsilon, To: end})
		return end, nil
	}
	return nil, fmt.Errorf("lexer rule %s: unknown block op", r.Name)
}
