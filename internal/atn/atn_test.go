package atn

import (
	"strings"
	"testing"

	"llstar/internal/grammar"
	"llstar/internal/meta"
)

func build(t *testing.T, src string) *Machine {
	t.Helper()
	g, err := meta.Parse("t.g", src)
	if err != nil {
		t.Fatalf("grammar: %v", err)
	}
	if err := grammar.FirstFatal(grammar.Validate(g)); err != nil {
		t.Fatalf("validate: %v", err)
	}
	m, err := Build(g)
	if err != nil {
		t.Fatalf("atn: %v", err)
	}
	return m
}

// Every non-decision state must have at most one outgoing transition —
// the invariant the interpreter's walk relies on.
func TestSingleTransitionInvariant(t *testing.T) {
	m := build(t, `
grammar I;
s : a (B)* (C)? (a | B)+ ;
a : {p()}? B C {act();} | ;
B : 'b' ;
C : 'c' ;
`)
	for _, s := range m.States {
		if s.DecisionID >= 0 {
			continue
		}
		if len(s.Trans) > 1 {
			t.Errorf("non-decision state %s has %d transitions", s, len(s.Trans))
		}
	}
}

func TestDecisionBookkeeping(t *testing.T) {
	m := build(t, `
grammar D;
s : A | B ;
t : (A)* ;
u : (A)? ;
v : (A)+ ;
w : A ;
A : 'a' ;
B : 'b' ;
`)
	if len(m.Decisions) != 4 {
		t.Fatalf("decisions = %d, want 4", len(m.Decisions))
	}
	byKind := map[DecisionKind]int{}
	for _, d := range m.Decisions {
		byKind[d.Kind]++
		if d.State.DecisionID != d.ID {
			t.Errorf("decision state back-pointer wrong for %d", d.ID)
		}
		if len(d.AltStart) != d.NAlts {
			t.Errorf("alt starts mismatch for %d", d.ID)
		}
		if d.End == nil {
			t.Errorf("decision %d has no End", d.ID)
		}
	}
	// s: rule decision; t: loop; u: optional; v: (A)+ → loop only
	// (single-alt body needs no once-decision).
	if byKind[RuleDecision] != 1 || byKind[LoopDecision] != 2 || byKind[OptionalDecision] != 1 {
		t.Errorf("kinds: %v", byKind)
	}
	if m.RuleDecisionID["s"] < 0 {
		t.Errorf("rule decision id missing")
	}
}

func TestLoopExitNumbering(t *testing.T) {
	m := build(t, `
grammar L;
s : (A | B)* C ;
A : 'a' ;
B : 'b' ;
C : 'c' ;
`)
	d := m.Decisions[0]
	if d.Kind != LoopDecision || d.NAlts != 3 {
		t.Fatalf("loop shape: kind=%v nalts=%d", d.Kind, d.NAlts)
	}
	if !d.HasExitAlt() {
		t.Error("loop must have exit alt")
	}
	// Decision state's epsilon edges are in alternative order: two
	// bodies then the exit.
	if len(d.State.Trans) != 3 {
		t.Fatalf("decision edges: %d", len(d.State.Trans))
	}
}

func TestFollowRefs(t *testing.T) {
	m := build(t, `
grammar F;
s : a a ;
a : A ;
A : 'a' ;
`)
	aIdx := m.RuleIndexByName("a")
	if got := len(m.FollowRefs[aIdx]); got != 2 {
		t.Errorf("follow refs for a = %d, want 2", got)
	}
	if m.RuleIndexByName("A") != -1 || m.RuleIndexByName("nope") != -1 {
		t.Errorf("rule index lookup must reject lexer/unknown rules")
	}
}

func TestSynPredCompilation(t *testing.T) {
	m := build(t, `
grammar S;
s : (A B)=> A B | A C ;
A : 'a' ;
B : 'b' ;
C : 'c' ;
`)
	if len(m.SynPreds) != 1 {
		t.Fatalf("synpreds = %d", len(m.SynPreds))
	}
	def := m.SynPreds[0]
	if def.Start == nil || def.Stop == nil || !def.Stop.Stop {
		t.Errorf("synpred fragment malformed")
	}
	if def.Block == nil {
		t.Errorf("synpred lost its IR block")
	}
	d := m.Decisions[m.RuleDecisionID["s"]]
	if d.SynPreds[0] != 0 || d.SynPreds[1] != -1 {
		t.Errorf("synpred hoisting: %v", d.SynPreds)
	}
	if !d.Backtrack {
		t.Errorf("explicit synpred decision must allow backtracking")
	}
}

func TestTransMatches(t *testing.T) {
	tr := &Trans{Kind: TAtom, Sym: 5}
	if !tr.Matches(5) || tr.Matches(6) {
		t.Error("atom match")
	}
	wild := &Trans{Kind: TWildcard}
	if !wild.Matches(1) || wild.Matches(-1) {
		t.Error("wildcard must not match EOF")
	}
	if !(&Trans{Kind: TChar, Lo: 'a', Hi: 'z'}).MatchesRune('m') {
		t.Error("char range")
	}
	cs := &Trans{Kind: TCharSet, CharRanges: []grammar.RuneRange{{Lo: '0', Hi: '9'}}, Negated: true}
	if cs.MatchesRune('5') || !cs.MatchesRune('x') || cs.MatchesRune(-1) {
		t.Error("negated charset")
	}
}

func TestDotExport(t *testing.T) {
	m := build(t, `
grammar G;
s : A | B ;
A : 'a' ;
B : 'b' ;
`)
	out := m.Dot("s")
	if !strings.Contains(out, "digraph ATN") || !strings.Contains(out, "d0") {
		t.Errorf("dot output: %s", out)
	}
}
