package atn

import (
	"fmt"

	"llstar/internal/grammar"
	"llstar/internal/token"
)

// Build converts a validated grammar into its ATN, creating one submachine
// per parser rule (Figure 7), a decision record for every rule or subrule
// with more than one way forward, compiled syntactic-predicate fragments,
// and (if the grammar has lexer rules) the character-level lexer ATN.
func Build(g *grammar.Grammar) (*Machine, error) {
	m := &Machine{
		Grammar:          g,
		RuleDecisionID:   make(map[string]int),
		BlockDecisionIDs: make(map[*grammar.Block][]int),
	}
	b := &builder{m: m, g: g}

	n := len(g.Rules)
	m.RuleStart = make([]*State, n)
	m.RuleStop = make([]*State, n)
	m.FollowRefs = make([][]*State, n)
	for _, r := range g.Rules {
		start := m.NewState(r.Index, r.Name)
		start.RuleStart = true
		stop := m.NewState(r.Index, r.Name)
		stop.Stop = true
		m.RuleStart[r.Index] = start
		m.RuleStop[r.Index] = stop
	}

	// Synthetic EOF edge used when a stop state pops an empty stack with
	// no callers: the continuation language is {EOF}.
	m.eofState = m.NewState(-1, "<eof>")
	m.eofSink = m.NewState(-1, "<eof-sink>")
	m.eofState.AddTrans(&Trans{Kind: TAtom, Sym: token.EOF, To: m.eofSink})

	for _, r := range g.Rules {
		if err := b.buildRule(r); err != nil {
			return nil, err
		}
	}

	if len(g.LexRules) > 0 {
		lex, err := buildLexMachine(g)
		if err != nil {
			return nil, err
		}
		m.Lex = lex
	}
	return m, nil
}

type builder struct {
	m        *Machine
	g        *grammar.Grammar
	rule     *grammar.Rule
	synpreds map[*grammar.SynPred]int
}

func (b *builder) backtrackEnabled(r *grammar.Rule) bool {
	return r.OptionBool("backtrack", b.g.Options.Backtrack)
}

func (b *builder) buildRule(r *grammar.Rule) error {
	b.rule = r
	start := b.m.RuleStart[r.Index]
	stop := b.m.RuleStop[r.Index]

	if len(r.Alts) == 1 {
		end, err := b.chain(r.Alts[0].Elems, start)
		if err != nil {
			return err
		}
		end.AddTrans(&Trans{Kind: TEpsilon, To: stop})
		return nil
	}

	d := b.newDecision(RuleDecision, start, len(r.Alts),
		fmt.Sprintf("rule %s", r.Name))
	d.End = stop
	b.m.RuleDecisionID[r.Name] = d.ID
	for i, alt := range r.Alts {
		altStart := b.m.NewState(r.Index, r.Name)
		start.AddTrans(&Trans{Kind: TEpsilon, To: altStart})
		d.AltStart[i] = altStart
		d.SemPreds[i] = alt.LeadingSemPred()
		if sp := alt.LeadingSynPred(); sp != nil {
			id, err := b.compileSynPred(sp)
			if err != nil {
				return err
			}
			d.SynPreds[i] = id
			d.Backtrack = true
		}
		end, err := b.chain(alt.Elems, altStart)
		if err != nil {
			return err
		}
		end.AddTrans(&Trans{Kind: TEpsilon, To: stop})
	}
	return nil
}

// newDecision allocates a decision rooted at state.
func (b *builder) newDecision(kind DecisionKind, state *State, nalts int, desc string) *Decision {
	d := &Decision{
		ID:       len(b.m.Decisions),
		Kind:     kind,
		Rule:     b.rule,
		State:    state,
		NAlts:    nalts,
		AltStart: make([]*State, nalts),
		SemPreds: make([]*grammar.SemPred, nalts),
		SynPreds: make([]int, nalts),
		Desc:     desc,
	}
	for i := range d.SynPreds {
		d.SynPreds[i] = -1
	}
	d.Backtrack = b.backtrackEnabled(b.rule)
	state.DecisionID = d.ID
	b.m.Decisions = append(b.m.Decisions, d)
	return d
}

// chain threads a sequence of elements from state `from`, returning the
// final state.
func (b *builder) chain(elems []grammar.Element, from *State) (*State, error) {
	cur := from
	for _, e := range elems {
		next, err := b.element(e, cur)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

func (b *builder) newState() *State {
	return b.m.NewState(b.rule.Index, b.rule.Name)
}

func (b *builder) element(e grammar.Element, from *State) (*State, error) {
	switch e := e.(type) {
	case *grammar.TokenRef:
		to := b.newState()
		from.AddTrans(&Trans{Kind: TAtom, Sym: e.Type, To: to})
		return to, nil

	case *grammar.NotToken:
		to := b.newState()
		from.AddTrans(&Trans{Kind: TSet, Set: token.NewSet(e.Types...), Negated: true, To: to})
		return to, nil

	case *grammar.Wildcard:
		to := b.newState()
		from.AddTrans(&Trans{Kind: TWildcard, To: to})
		return to, nil

	case *grammar.RuleRef:
		idx := b.m.RuleIndexByName(e.Name)
		if idx < 0 {
			return nil, fmt.Errorf("atn: rule %s references unknown rule %s", b.rule.Name, e.Name)
		}
		follow := b.newState()
		from.AddTrans(&Trans{
			Kind: TRule, RuleIndex: idx, RuleName: e.Name,
			Start: b.m.RuleStart[idx], Follow: follow, ArgText: e.ArgText,
			To: b.m.RuleStart[idx],
		})
		b.m.FollowRefs[idx] = append(b.m.FollowRefs[idx], follow)
		return follow, nil

	case *grammar.SemPred:
		to := b.newState()
		from.AddTrans(&Trans{Kind: TPred, Pred: e, SynPredID: -1, To: to})
		return to, nil

	case *grammar.Action:
		to := b.newState()
		from.AddTrans(&Trans{Kind: TAction, Act: e, To: to})
		return to, nil

	case *grammar.SynPred:
		id, err := b.compileSynPred(e)
		if err != nil {
			return nil, err
		}
		to := b.newState()
		from.AddTrans(&Trans{Kind: TPred, SynPredID: id, To: to})
		return to, nil

	case *grammar.Block:
		return b.block(e, from)
	}
	return nil, fmt.Errorf("atn: rule %s: unsupported element %T", b.rule.Name, e)
}

func (b *builder) block(blk *grammar.Block, from *State) (*State, error) {
	switch blk.Op {
	case grammar.OpPlus:
		// Desugar (α)+ to α (α)*: the body runs once, then a star loop.
		once := &grammar.Block{Alts: blk.Alts, Op: grammar.OpNone, Pos: blk.Pos}
		star := &grammar.Block{Alts: blk.Alts, Op: grammar.OpStar, Pos: blk.Pos}
		mid, err := b.block(once, from)
		if err != nil {
			return nil, err
		}
		end, err := b.block(star, mid)
		if err != nil {
			return nil, err
		}
		// Re-key the desugared decisions under the source block: the
		// optional once-decision (multi-alt bodies only) then the loop.
		b.m.BlockDecisionIDs[blk] = append(
			append([]int(nil), b.m.BlockDecisionIDs[once]...),
			b.m.BlockDecisionIDs[star]...)
		return end, nil

	case grammar.OpNone:
		if len(blk.Alts) == 1 {
			return b.chain(blk.Alts[0].Elems, from)
		}
		d := b.newBlockDecision(BlockDecision, from, len(blk.Alts), blk)
		end := b.newState()
		d.End = end
		if err := b.buildAlts(d, blk.Alts, end, nil); err != nil {
			return nil, err
		}
		return end, nil

	case grammar.OpOptional:
		d := b.newBlockDecision(OptionalDecision, from, len(blk.Alts)+1, blk)
		end := b.newState()
		d.End = end
		if err := b.buildAlts(d, blk.Alts, end, nil); err != nil {
			return nil, err
		}
		// Exit branch: last alternative.
		d.State.AddTrans(&Trans{Kind: TEpsilon, To: end})
		d.AltStart[d.NAlts-1] = end
		return end, nil

	case grammar.OpStar:
		d := b.newBlockDecision(LoopDecision, from, len(blk.Alts)+1, blk)
		end := b.newState()
		d.End = d.State // body alternatives loop back to the decision
		if err := b.buildAlts(d, blk.Alts, nil, d.State); err != nil {
			return nil, err
		}
		// Exit branch: last alternative.
		d.State.AddTrans(&Trans{Kind: TEpsilon, To: end})
		d.AltStart[d.NAlts-1] = end
		return end, nil
	}
	return nil, fmt.Errorf("atn: rule %s: unknown block op", b.rule.Name)
}

// newBlockDecision allocates a decision state for a subrule and links it
// from the predecessor.
func (b *builder) newBlockDecision(kind DecisionKind, from *State, nalts int, blk *grammar.Block) *Decision {
	dstate := b.newState()
	from.AddTrans(&Trans{Kind: TEpsilon, To: dstate})
	desc := fmt.Sprintf("%s subrule at %s in rule %s", kind, blk.Pos, b.rule.Name)
	d := b.newDecision(kind, dstate, nalts, desc)
	b.m.BlockDecisionIDs[blk] = append(b.m.BlockDecisionIDs[blk], d.ID)
	return d
}

// buildAlts threads each alternative from the decision state. Alternatives
// end with an epsilon edge to endState, or back to loopBack for star loops.
func (b *builder) buildAlts(d *Decision, alts []*grammar.Alt, endState, loopBack *State) error {
	for i, alt := range alts {
		altStart := b.newState()
		d.State.AddTrans(&Trans{Kind: TEpsilon, To: altStart})
		d.AltStart[i] = altStart
		d.SemPreds[i] = alt.LeadingSemPred()
		if sp := alt.LeadingSynPred(); sp != nil {
			id, err := b.compileSynPred(sp)
			if err != nil {
				return err
			}
			d.SynPreds[i] = id
			d.Backtrack = true
		}
		end, err := b.chain(alt.Elems, altStart)
		if err != nil {
			return err
		}
		if loopBack != nil {
			end.AddTrans(&Trans{Kind: TEpsilon, To: loopBack})
		} else {
			end.AddTrans(&Trans{Kind: TEpsilon, To: endState})
		}
	}
	return nil
}

// compileSynPred builds the private ATN fragment for an explicit
// syntactic predicate (α)=>. The fragment has its own start/stop states;
// inner decisions are real decisions analyzed like any other.
func (b *builder) compileSynPred(sp *grammar.SynPred) (int, error) {
	if b.synpreds == nil {
		b.synpreds = make(map[*grammar.SynPred]int)
	}
	if id, ok := b.synpreds[sp]; ok {
		return id, nil
	}
	id := len(b.m.SynPreds)
	b.synpreds[sp] = id
	def := &SynPredDef{
		ID:    id,
		Name:  fmt.Sprintf("synpred%d_%s", id+1, b.rule.Name),
		Rule:  b.rule,
		Block: sp.Block,
		Auto:  sp.Auto,
	}
	// Synthetic rule index: negative, never collides with parser rules.
	synIdx := -2 - id
	start := b.m.NewState(synIdx, def.Name)
	start.RuleStart = true
	stop := b.m.NewState(synIdx, def.Name)
	stop.Stop = true
	def.Start, def.Stop = start, stop
	b.m.SynPreds = append(b.m.SynPreds, def)

	// Build the block body with the enclosing rule's context for rule
	// numbering of inner states, but keep start/stop synthetic. The
	// source block is used directly so decision bookkeeping stays keyed
	// to the IR the code generator walks.
	end, err := b.block(sp.Block, start)
	if err != nil {
		return 0, err
	}
	end.AddTrans(&Trans{Kind: TEpsilon, To: stop})
	return id, nil
}
