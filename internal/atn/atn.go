// Package atn implements augmented transition networks (Section 5.1 of the
// paper): one submachine per grammar rule, with epsilon, terminal,
// nonterminal (call), predicate, and action edges. The grammar→ATN
// transformation follows Figure 7, with cycles added for EBNF operators
// (Section 5.5). Lexer rules compile to a character-level ATN with
// fragments inlined.
package atn

import (
	"fmt"
	"strings"

	"llstar/internal/grammar"
	"llstar/internal/token"
)

// TransKind identifies the label of an ATN transition.
type TransKind int

const (
	// TEpsilon consumes nothing.
	TEpsilon TransKind = iota
	// TAtom consumes one token of type Sym.
	TAtom
	// TSet consumes one token in Set (or outside it when Negated).
	TSet
	// TRule invokes another rule's submachine, pushing Follow.
	TRule
	// TPred is a semantic-predicate edge (possibly an erased syntactic
	// predicate, per Section 4.1).
	TPred
	// TAction is a mutator edge.
	TAction
	// TWildcard consumes any one token (or rune in lexer ATNs).
	TWildcard
	// TChar consumes one rune in [Lo,Hi] (lexer ATNs).
	TChar
	// TCharSet consumes one rune in CharRanges, negated if Negated.
	TCharSet
)

// Trans is an ATN transition. Exactly the fields relevant to Kind are set.
type Trans struct {
	Kind TransKind
	To   *State

	Sym     token.Type // TAtom
	Set     *token.Set // TSet
	Negated bool       // TSet, TCharSet

	RuleIndex int    // TRule: callee parser-rule index
	RuleName  string // TRule
	Start     *State // TRule: callee entry state
	Follow    *State // TRule: return state pushed on the stack
	ArgText   string // TRule: actual-argument text (parameterized rules)

	Pred      *grammar.SemPred // TPred (nil for erased synpreds)
	SynPredID int              // TPred: compiled synpred id, or -1
	Act       *grammar.Action  // TAction

	Lo, Hi     rune                // TChar
	CharRanges []grammar.RuneRange // TCharSet
}

// Epsilonish reports whether the transition consumes no input symbols
// (epsilon, predicate, or action edges).
func (t *Trans) Epsilonish() bool {
	switch t.Kind {
	case TEpsilon, TPred, TAction:
		return true
	}
	return false
}

// Matches reports whether a parser transition matches token type tt.
func (t *Trans) Matches(tt token.Type) bool {
	switch t.Kind {
	case TAtom:
		return t.Sym == tt
	case TSet:
		in := t.Set.Contains(tt)
		if t.Negated {
			return !in && tt != token.EOF
		}
		return in
	case TWildcard:
		return tt != token.EOF
	default:
		return false
	}
}

// MatchesRune reports whether a lexer transition matches rune r.
func (t *Trans) MatchesRune(r rune) bool {
	switch t.Kind {
	case TChar:
		return r >= t.Lo && r <= t.Hi
	case TCharSet:
		in := false
		for _, rr := range t.CharRanges {
			if r >= rr.Lo && r <= rr.Hi {
				in = true
				break
			}
		}
		if t.Negated {
			return !in && r != -1
		}
		return in
	case TWildcard:
		return r != -1
	default:
		return false
	}
}

// State is an ATN state.
type State struct {
	ID        int
	RuleIndex int // enclosing parser/lexer rule index; -1 for synthetic
	RuleName  string
	Stop      bool // rule stop state p'_A
	RuleStart bool // rule start state p_A
	Trans     []*Trans

	// DecisionID is the parsing decision rooted at this state, or -1.
	DecisionID int
}

func (s *State) String() string {
	return fmt.Sprintf("p%d(%s)", s.ID, s.RuleName)
}

// AddTrans appends a transition from s.
func (s *State) AddTrans(t *Trans) { s.Trans = append(s.Trans, t) }

// DecisionKind classifies a parsing decision.
type DecisionKind int

const (
	// RuleDecision chooses among a rule's top-level alternatives.
	RuleDecision DecisionKind = iota
	// BlockDecision chooses among a plain subrule's alternatives.
	BlockDecision
	// OptionalDecision chooses enter-vs-skip for (α)?; exit is the last
	// alternative.
	OptionalDecision
	// LoopDecision chooses iterate-vs-exit for (α)*; exit is the last
	// alternative.
	LoopDecision
)

func (k DecisionKind) String() string {
	switch k {
	case RuleDecision:
		return "rule"
	case BlockDecision:
		return "block"
	case OptionalDecision:
		return "optional"
	case LoopDecision:
		return "loop"
	default:
		return "?"
	}
}

// Decision is one parsing decision: a state with multiple alternative
// epsilon paths. Alternatives are numbered 1..NAlts in grammar order; for
// optional and loop decisions the exit branch is alternative NAlts.
type Decision struct {
	ID    int
	Kind  DecisionKind
	Rule  *grammar.Rule
	State *State
	NAlts int

	// AltStart[i-1] is the left-edge state p_{A,i} for alternative i.
	AltStart []*State
	// End is where an alternative's body is complete: the rule stop
	// state for rule decisions, the block end for subrules, and the
	// decision state itself for loops (the loop-back point). The runtime
	// speculatively matches an alternative by walking AltStart[i] → End.
	End *State
	// SemPreds[i-1] is the left-edge semantic predicate gating
	// alternative i, or nil.
	SemPreds []*grammar.SemPred
	// SynPreds[i-1] is the compiled syntactic predicate id gating
	// alternative i, or -1.
	SynPreds []int

	// Backtrack marks decisions whose alternatives may be tried by
	// ordered speculation (PEG mode, or explicit synpreds present).
	Backtrack bool

	Desc string
}

// HasExitAlt reports whether the last alternative is a loop/optional exit
// branch rather than grammar text.
func (d *Decision) HasExitAlt() bool {
	return d.Kind == OptionalDecision || d.Kind == LoopDecision
}

// SynPredDef is a compiled explicit syntactic predicate (α)=>: a private
// ATN fragment the runtime can speculatively match. Block retains the
// grammar IR for the code generator.
type SynPredDef struct {
	ID    int
	Name  string
	Rule  *grammar.Rule // enclosing rule
	Start *State
	Stop  *State
	Block *grammar.Block
	Auto  bool
}

// Machine is the ATN for a whole grammar.
type Machine struct {
	Grammar *grammar.Grammar
	States  []*State

	// RuleStart/RuleStop are indexed by parser-rule index.
	RuleStart []*State
	RuleStop  []*State

	Decisions []*Decision
	SynPreds  []*SynPredDef

	// RuleDecisionID maps a multi-alternative rule name to its rule
	// decision; BlockDecisionIDs maps an IR block to the decisions built
	// from it in creation order ((α)+ desugars into two). The code
	// generator uses these to wire emitted dispatch code to DFA tables.
	RuleDecisionID   map[string]int
	BlockDecisionIDs map[*grammar.Block][]int

	// FollowRefs[r] lists the follow states of every call site of parser
	// rule r, used by closure when popping an empty stack at a rule stop
	// state.
	FollowRefs [][]*State

	// EOFTarget is a synthetic state reached by matching EOF after the
	// start rule completes with no callers.
	eofState *State
	eofSink  *State

	// Lexer ATN (nil if the grammar has no lexer rules).
	Lex *LexMachine
}

// NewState allocates a state owned by the machine.
func (m *Machine) NewState(ruleIndex int, ruleName string) *State {
	s := &State{ID: len(m.States), RuleIndex: ruleIndex, RuleName: ruleName, DecisionID: -1}
	m.States = append(m.States, s)
	return s
}

// EOFState returns the synthetic state whose single transition matches
// EOF; closure uses it when a stop state pops an empty stack and the rule
// has no callers.
func (m *Machine) EOFState() *State {
	return m.eofState
}

// Decision returns the decision with the given id.
func (m *Machine) Decision(id int) *Decision { return m.Decisions[id] }

// RuleIndexByName returns the parser-rule index for name, or -1.
func (m *Machine) RuleIndexByName(name string) int {
	r := m.Grammar.Rule(name)
	if r == nil || r.IsLexer {
		return -1
	}
	return r.Index
}

// Dot renders the parser ATN (or one rule's submachine if ruleName is
// non-empty) in Graphviz format, for debugging and documentation.
func (m *Machine) Dot(ruleName string) string {
	var b strings.Builder
	b.WriteString("digraph ATN {\n  rankdir=LR;\n  node [shape=circle fontsize=10];\n")
	vocab := m.Grammar.Vocab
	for _, s := range m.States {
		if ruleName != "" && s.RuleName != ruleName {
			continue
		}
		shape := "circle"
		if s.Stop {
			shape = "doublecircle"
		}
		label := fmt.Sprintf("p%d", s.ID)
		if s.DecisionID >= 0 {
			label += fmt.Sprintf("\\nd%d", s.DecisionID)
		}
		fmt.Fprintf(&b, "  %d [label=\"%s\" shape=%s];\n", s.ID, label, shape)
		for _, t := range s.Trans {
			var lbl string
			switch t.Kind {
			case TEpsilon:
				lbl = "ε"
			case TAtom:
				lbl = vocab.Name(t.Sym)
			case TSet:
				lbl = t.Set.Format(vocab)
				if t.Negated {
					lbl = "~" + lbl
				}
			case TRule:
				lbl = t.RuleName
			case TPred:
				if t.Pred != nil {
					lbl = "{" + t.Pred.Text + "}?"
				} else {
					lbl = fmt.Sprintf("synpred%d", t.SynPredID)
				}
			case TAction:
				lbl = "{…}"
			case TWildcard:
				lbl = "."
			case TChar:
				if t.Lo == t.Hi {
					lbl = fmt.Sprintf("%q", t.Lo)
				} else {
					lbl = fmt.Sprintf("%q..%q", t.Lo, t.Hi)
				}
			case TCharSet:
				lbl = "[set]"
			}
			to := t.To
			if t.Kind == TRule {
				to = t.Follow
			}
			fmt.Fprintf(&b, "  %d -> %d [label=%q fontsize=9];\n", s.ID, to.ID, lbl)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
