// Package interp executes parses over an analyzed grammar exactly the way
// an ANTLR-generated LL(*) parser would: recursive descent over the ATN,
// with each decision driven by its lookahead DFA, failing over to
// speculation (syntactic predicates / PEG-mode backtracking) where the
// DFA says so, memoizing speculative rule invocations, gating mutators
// during speculation, and reporting errors at the offending token.
package interp

import (
	"fmt"
	"time"

	"llstar/internal/atn"
	"llstar/internal/core"
	"llstar/internal/cover"
	"llstar/internal/dfa"
	"llstar/internal/grammar"
	"llstar/internal/lexrt"
	"llstar/internal/llk"
	"llstar/internal/obs"
	"llstar/internal/runtime"
	"llstar/internal/token"
)

// Options configure a parser.
type Options struct {
	// Memoize enables the packrat cache for speculative parses. Nil means
	// "use the grammar's memoize option".
	Memoize *bool
	// CollectStats enables per-decision profiling (Tables 2–4 data).
	CollectStats bool
	// BuildTree enables parse-tree construction.
	BuildTree bool
	// Hooks binds semantic predicates and actions.
	Hooks runtime.Hooks
	// State is the initial user state (the paper's S).
	State any
	// ErrorListener, if set, observes syntax errors when they surface.
	ErrorListener runtime.ErrorListener
	// ApproxK, when > 0, switches predictions to ANTLR-v2-style linear
	// approximate LL(k) tables of that depth instead of LL(*) lookahead
	// DFA; decisions the approximation cannot make speculate alternatives
	// in order. Used by the Section 6.2 v2-vs-v3 comparison.
	ApproxK int
	// Recover enables error recovery: failed token matches try
	// single-token deletion then insertion, failed predictions resync by
	// deleting tokens; the parse continues and Errors() collects every
	// syntax error (up to MaxErrors).
	Recover bool
	// MaxErrors caps collected errors in Recover mode (default 10).
	MaxErrors int
	// Tracer, if set, receives structured runtime events: parse and
	// prediction spans (with throttle level and lookahead depth),
	// speculation spans, predicate evaluations, memo hits/misses, and
	// error-recovery resyncs. Nil (or obs.Nop) costs nothing.
	Tracer obs.Tracer
	// Flight, if set, is teed with Tracer: a second, typically
	// request-scoped event sink (the flight recorder's ring buffer).
	// Nil costs nothing — with neither Tracer nor Flight the runtime
	// tracer is nil and every emission site is one nil check.
	Flight obs.Tracer
	// Metrics, if set, accumulates runtime counters and histograms
	// (prediction events by throttle level, lookahead-depth
	// distributions, speculation and memo activity).
	Metrics *obs.Metrics
	// Coverage, if set, is the shared destination for decision-level
	// coverage counters: the parser records into a private recorder and
	// merges it into this profile once per parse, so pooled and
	// concurrent parsers accumulate into one aggregate. Nil costs one
	// pointer check per instrumentation site.
	Coverage *cover.Profile
	// Listener, if set, receives SAX-style events (rule enter/exit,
	// committed tokens) exactly where tree nodes are (or would be)
	// built. Streaming sessions use it in place of BuildTree. Nil costs
	// one pointer check per site.
	Listener runtime.ParseListener
	// Window enables sliding-window token retention: the stream drops
	// retired tokens (and the memo table their verdicts) as the parse
	// commits past them, bounding memory by grammar depth + lookahead
	// instead of input length. Requires BuildTree to be off.
	Window bool
}

// Parser interprets an analyzed grammar. A Parser is reusable: every
// ParseString/ParseTokens call resets the per-parse state (token stream,
// memo table, speculation depth, stats, recovered errors) before
// running, so one instance can serve many sequential parses — lazily
// built approximate-LL(k) tables and the throttle cache carry over. It
// is NOT safe for concurrent use; the analyzed core.Result it reads is
// immutable, so any number of Parsers may share it across goroutines.
type Parser struct {
	res  *core.Result
	m    *atn.Machine
	dfas []*dfa.DFA
	opts Options

	stream *runtime.TokenStream
	memo   *runtime.MemoTable
	stats  *runtime.ParseStats
	spec   int // speculation nesting depth
	ctx    runtime.Context

	// deepest failure seen during speculation, for Section 4.4 reporting
	deepestIdx int
	deepestErr *runtime.SyntaxError

	// approx holds lazily-built v2-style lookahead tables per decision
	// when Options.ApproxK > 0.
	approx []*llk.Tables

	// errors collects recovered syntax errors (Recover mode).
	errors []*runtime.SyntaxError

	// tr is the normalized tracer (nil when tracing is off — the hot
	// path gates on this single nil check) and mx the metrics registry.
	// base is the construction-time tracer AttachTracer restores when a
	// per-parse auxiliary sink detaches.
	tr   obs.Tracer
	base obs.Tracer
	mx   *obs.Metrics
	// cov is this parser's private coverage recorder (nil when coverage
	// is off), flushed into Options.Coverage once per parse.
	cov *cover.Recorder
	// lsn is the SAX listener (nil when off — one nil check per site).
	lsn runtime.ParseListener
	// measureK enables the lookahead watermark bookkeeping in predict;
	// set when any of stats, tracer, or metrics needs depth data.
	measureK bool
	// throttle caches each decision's static class name ("fixed",
	// "cyclic", "backtrack") for event labeling; nil unless tr or mx.
	throttle []string
}

// New returns a parser for an analyzed grammar.
func New(res *core.Result, opts Options) *Parser {
	p := &Parser{res: res, m: res.Machine, dfas: res.DFAs, opts: opts}
	if opts.ApproxK > 0 {
		p.approx = make([]*llk.Tables, len(res.DFAs))
	}
	if opts.CollectStats {
		p.stats = runtime.NewParseStats(len(res.DFAs))
		for _, di := range res.Decisions {
			if di.Class == core.ClassBacktrack {
				p.stats.Decisions[di.Decision.ID].CanBacktrack = true
			}
		}
	}
	p.base = obs.Tee(opts.Tracer, opts.Flight)
	p.tr = p.base
	p.mx = opts.Metrics
	p.lsn = opts.Listener
	if opts.Coverage != nil {
		p.cov = opts.Coverage.NewRecorder()
	}
	p.measureK = p.stats != nil || p.tr != nil || p.mx != nil || p.cov != nil
	if p.tr != nil || p.mx != nil {
		p.buildThrottle()
	}
	return p
}

// buildThrottle caches each decision's static class name for event
// labeling.
func (p *Parser) buildThrottle() {
	p.throttle = make([]string, len(p.res.DFAs))
	for _, di := range p.res.Decisions {
		p.throttle[di.Decision.ID] = di.Class.String()
	}
}

// AttachTracer tees a per-parse auxiliary event sink (typically a
// flight recorder ring) with the parser's construction-time tracer;
// AttachTracer(nil) detaches it, restoring construction-time behavior
// exactly — including the nil-tracer fast path. The server attaches a
// request's recorder to a pooled parser this way and detaches before
// returning it. Call only between parses: the tracer must not change
// mid-parse.
func (p *Parser) AttachTracer(aux obs.Tracer) {
	p.tr = obs.Tee(p.base, aux)
	if p.tr != nil && p.throttle == nil {
		p.buildThrottle()
	}
	p.measureK = p.stats != nil || p.tr != nil || p.mx != nil || p.cov != nil
}

// Stats returns the profile of the most recent parse (nil unless
// CollectStats was set; reset at the start of each parse).
func (p *Parser) Stats() *runtime.ParseStats { return p.stats }

// Errors returns the syntax errors recovered during the last parse
// (Recover mode; empty otherwise).
func (p *Parser) Errors() []*runtime.SyntaxError { return p.errors }

// maxErrors returns the recovery error budget.
func (p *Parser) maxErrors() int {
	if p.opts.MaxErrors > 0 {
		return p.opts.MaxErrors
	}
	return 10
}

// report records a recovered error; it returns non-nil when recovery must
// stop (not recovering, speculating, or over budget).
func (p *Parser) report(se *runtime.SyntaxError) error {
	if p.spec > 0 || !p.opts.Recover {
		return se
	}
	p.errors = append(p.errors, se)
	if p.tr != nil {
		p.tr.Emit(obs.Event{
			Name: "error", Cat: obs.PhaseRuntime, Ph: obs.PhInstant, TS: p.tr.Now(),
			Decision: -1, Rule: se.Rule, Detail: se.Msg, N: int64(se.Offending.Index),
		})
	}
	if p.mx != nil {
		p.mx.Counter("llstar_syntax_errors_total").Inc()
	}
	if p.opts.ErrorListener != nil {
		p.opts.ErrorListener(se)
	}
	if len(p.errors) >= p.maxErrors() {
		return se
	}
	return nil
}

// memoEnabled reports whether memoization applies for this parse.
func (p *Parser) memoEnabled() bool {
	if p.opts.Memoize != nil {
		return *p.opts.Memoize
	}
	return p.res.Grammar.Options.Memoize
}

// ParseString lexes input with the grammar's lexer rules and parses it
// starting at startRule, requiring all input to be consumed.
func (p *Parser) ParseString(startRule, input string) (*Node, error) {
	if p.m.Lex == nil {
		return nil, fmt.Errorf("interp: grammar %s has no lexer rules; use ParseTokens", p.res.Grammar.Name)
	}
	lx := lexrt.New(p.m.Lex, input)
	return p.ParseTokens(startRule, runtime.NewTokenStream(lx))
}

// ParseTokens parses a token stream starting at startRule, requiring all
// input to be consumed.
func (p *Parser) ParseTokens(startRule string, stream *runtime.TokenStream) (*Node, error) {
	idx := p.m.RuleIndexByName(startRule)
	if idx < 0 {
		return nil, fmt.Errorf("interp: no parser rule %s", startRule)
	}
	p.stream = stream
	p.memo = nil
	if p.memoEnabled() {
		p.memo = runtime.NewMemoTable(len(p.res.Grammar.Rules))
	}
	if p.opts.Window && !p.opts.BuildTree {
		stream.EnableWindow()
	}
	p.spec = 0
	p.deepestIdx = -1
	p.deepestErr = nil
	p.errors = nil
	p.stats.Reset()
	p.ctx = runtime.Context{Stream: stream, State: p.opts.State}

	var holder *Node
	if p.opts.BuildTree {
		holder = &Node{}
	}
	var parseT0 time.Duration
	if p.tr != nil {
		parseT0 = p.tr.Now()
	}
	err := p.parseRule(idx, 0, holder)
	if err == nil && stream.LA(1) != token.EOF {
		se := p.syntaxErr(stream.LT(1), startRule, "extraneous input after parse")
		if rerr := p.report(se); rerr != nil {
			err = rerr
		}
	}
	if p.stats != nil && p.memo != nil {
		p.stats.MemoEntries = p.memo.Entries()
		p.stats.MemoHits = p.memo.Hits()
		p.stats.MemoMisses = p.memo.Misses()
		p.stats.MemoStores = p.memo.Stores()
	}
	// In recover mode every syntax error was already instrumented by
	// report; here only the terminal error of a non-recovering parse
	// still needs an event.
	if err != nil && !p.opts.Recover {
		if se, ok := err.(*runtime.SyntaxError); ok {
			if p.tr != nil {
				p.tr.Emit(obs.Event{
					Name: "error", Cat: obs.PhaseRuntime, Ph: obs.PhInstant, TS: p.tr.Now(),
					Decision: -1, Rule: se.Rule, Detail: se.Msg, N: int64(se.Offending.Index),
				})
			}
			if p.mx != nil {
				p.mx.Counter("llstar_syntax_errors_total").Inc()
			}
		}
	}
	if p.tr != nil {
		p.tr.Emit(obs.Event{
			Name: "parse", Cat: obs.PhaseRuntime, Ph: obs.PhSpan,
			TS: parseT0, Dur: p.tr.Now() - parseT0, Decision: -1,
			Rule: startRule, OK: err == nil, N: int64(stream.Size()),
		})
	}
	if p.mx != nil {
		p.mx.Counter("llstar_parses_total").Inc()
		if err != nil {
			p.mx.Counter("llstar_parse_errors_total").Inc()
		}
		p.mx.Counter("llstar_tokens_total").Add(int64(stream.Size()))
		if p.memo != nil {
			p.mx.Counter("llstar_memo_hits_total").Add(int64(p.memo.Hits()))
			p.mx.Counter("llstar_memo_misses_total").Add(int64(p.memo.Misses()))
			p.mx.Counter("llstar_memo_stores_total").Add(int64(p.memo.Stores()))
			p.mx.Gauge("llstar_memo_entries").Set(int64(p.memo.Entries()))
		}
	}
	if p.cov != nil {
		p.cov.EndParse(int64(stream.Size()), err != nil)
		p.cov.Flush()
	}
	if err != nil {
		// In recover mode every error already reached the listener.
		if se, ok := err.(*runtime.SyntaxError); ok && p.opts.ErrorListener != nil && !p.opts.Recover {
			p.opts.ErrorListener(se)
		}
		return nil, err
	}
	var root *Node
	if holder != nil && len(holder.Children) > 0 {
		root = holder.Children[0]
	}
	if lexErr := stream.Err(); lexErr != nil {
		return nil, lexErr
	}
	return root, nil
}

// Memo returns the memo table of the most recent parse (nil when
// memoization is off). Incremental sessions retain it across edits.
func (p *Parser) Memo() *runtime.MemoTable { return p.memo }

// ParseFragment parses a single invocation of startRule over stream,
// without requiring the input to be consumed to EOF, and returns the
// tree (when BuildTree is on) and the stream position after the rule.
// memo, which may be nil, is used as the speculation cache — incremental
// reparse passes a rebased table from a prior parse so verdicts outside
// the damaged region are reused. The SAX listener is suppressed for the
// duration: fragment reparses repair state, they do not replay events.
func (p *Parser) ParseFragment(startRule string, stream *runtime.TokenStream, memo *runtime.MemoTable) (*Node, int, error) {
	idx := p.m.RuleIndexByName(startRule)
	if idx < 0 {
		return nil, 0, fmt.Errorf("interp: no parser rule %s", startRule)
	}
	p.stream = stream
	p.memo = memo
	p.spec = 0
	p.deepestIdx = -1
	p.deepestErr = nil
	p.errors = nil
	p.stats.Reset()
	p.ctx = runtime.Context{Stream: stream, State: p.opts.State}
	savedLsn := p.lsn
	p.lsn = nil
	var holder *Node
	if p.opts.BuildTree {
		holder = &Node{}
	}
	err := p.parseRule(idx, 0, holder)
	p.lsn = savedLsn
	stop := stream.Index()
	if err != nil {
		return nil, stop, err
	}
	if lexErr := stream.Err(); lexErr != nil {
		return nil, stop, lexErr
	}
	var root *Node
	if holder != nil && len(holder.Children) > 0 {
		root = holder.Children[0]
	}
	return root, stop, nil
}

func (p *Parser) syntaxErr(at token.Token, rule, msg string) *runtime.SyntaxError {
	return &runtime.SyntaxError{Offending: at, Rule: rule, Msg: msg}
}

// noteFailure records the deepest speculative failure (Section 4.4: report
// errors at the deepest symbol reached by a failed speculative parse).
func (p *Parser) noteFailure(err *runtime.SyntaxError) {
	if idx := err.Offending.Index; idx >= p.deepestIdx {
		p.deepestIdx = idx
		p.deepestErr = err
	}
}

// parseRule parses one rule invocation. arg is the rule's integer
// argument (parameterized rules); parent receives the rule's tree node.
func (p *Parser) parseRule(idx, arg int, parent *Node) error {
	r := p.res.Grammar.Rules[idx]
	if p.cov != nil {
		p.cov.Rule(idx)
	}
	memoizable := p.memo != nil && p.spec > 0 && r.Args == "" && r.OptionBool("memoize", true)
	start := p.stream.Index()
	if memoizable {
		stop, ok := p.memo.Get(idx, start)
		if p.cov != nil {
			p.cov.Memo(idx, ok)
		}
		if p.tr != nil {
			name := "memo.miss"
			if ok {
				name = "memo.hit"
			}
			p.tr.Emit(obs.Event{
				Name: name, Cat: obs.PhaseRuntime, Ph: obs.PhInstant, TS: p.tr.Now(),
				Decision: -1, Rule: r.Name, Depth: p.spec,
				OK: ok && stop != runtime.MemoFailed, N: int64(start),
			})
		}
		if ok {
			if stop == runtime.MemoFailed {
				return p.syntaxErr(p.stream.LT(1), r.Name, "memoized failure")
			}
			p.stream.Seek(stop)
			return nil
		}
	}

	var node *Node
	if parent != nil && p.spec == 0 {
		node = &Node{Rule: r.Name}
		parent.Children = append(parent.Children, node)
	}
	// The listener mirrors tree construction: at spec==0 a node is
	// always built when BuildTree is on, so firing on spec==0 alone
	// yields the identical rule structure with trees off.
	if p.lsn != nil && p.spec == 0 {
		p.lsn.EnterRule(r.Name)
	}

	err := p.walk(p.m.RuleStart[idx], p.m.RuleStop[idx], &frame{rule: r, arg: arg, node: node})
	if p.lsn != nil && p.spec == 0 {
		p.lsn.ExitRule(r.Name)
	}
	if memoizable {
		if err != nil {
			p.memo.Put(idx, start, runtime.MemoFailed)
		} else {
			p.memo.Put(idx, start, p.stream.Index())
		}
	}
	return err
}

// frame is one rule invocation's context.
type frame struct {
	rule *grammar.Rule
	arg  int
	node *Node
}
