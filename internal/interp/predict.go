package interp

import (
	"fmt"
	"strconv"
	"time"

	"llstar/internal/atn"
	"llstar/internal/dfa"
	"llstar/internal/llk"
	"llstar/internal/obs"
)

// predict chooses an alternative at a decision point: it simulates the
// lookahead DFA over the token stream, evaluating predicate edges in
// precedence order when the DFA says lookahead alone cannot decide, and
// speculating (with memoization) for syntactic/auto predicates.
func (p *Parser) predict(dec *atn.Decision, fr *frame) (int, error) {
	d := p.dfas[dec.ID]
	if p.spec == 0 {
		// New top-level decision: stale speculative failures from prior
		// decisions must not leak into this one's error reporting.
		p.deepestIdx = -1
		p.deepestErr = nil
	}

	// Lookahead-depth measurement costs a watermark reset per decision
	// event; skip it entirely when not profiling.
	var startIdx, savedHigh int
	if p.measureK {
		startIdx = p.stream.Index()
		savedHigh = p.stream.WatermarkReset()
	}
	var predT0 time.Duration
	if p.tr != nil {
		predT0 = p.tr.Now()
	}

	backtracked := false
	var alt int
	var err error
	if p.approx != nil {
		alt, err = p.approxPredict(dec, fr, &backtracked)
	} else {
		alt, err = p.simulate(d, dec, fr, &backtracked)
	}

	if p.measureK {
		k := 0
		if wm := p.stream.Watermark(); wm >= startIdx {
			k = wm - startIdx + 1
		}
		p.stream.ExtendWatermark(savedHigh)
		if p.stats != nil {
			btk := 0
			if backtracked {
				btk = k
			}
			p.stats.Record(dec.ID, k, backtracked, btk)
		}
		// Coverage shares the stats gate, so per-decision strategy counts
		// sum to exactly ParseStats.TotalEvents().
		if p.cov != nil {
			p.cov.Prediction(dec.ID, alt, k, backtracked, err != nil)
		}
		if p.tr != nil {
			p.tr.Emit(obs.Event{
				Name: "predict", Cat: obs.PhaseRuntime, Ph: obs.PhSpan,
				TS: predT0, Dur: p.tr.Now() - predT0,
				Decision: dec.ID, Rule: fr.rule.Name, Alt: alt,
				K: k, Depth: p.spec, Throttle: p.throttle[dec.ID],
				Backtracked: backtracked, OK: err == nil,
			})
		}
		if p.mx != nil {
			p.mx.Counter(obs.Label("llstar_predict_events_total", "throttle", p.throttle[dec.ID])).Inc()
			p.mx.Histogram("llstar_lookahead_depth").Observe(int64(k))
			p.mx.Histogram(obs.Label("llstar_lookahead_depth", "decision", strconv.Itoa(dec.ID))).Observe(int64(k))
			if backtracked {
				p.mx.Counter("llstar_predict_backtrack_total").Inc()
			}
		}
	}
	return alt, err
}

func (p *Parser) simulate(d *dfa.DFA, dec *atn.Decision, fr *frame, backtracked *bool) (int, error) {
	s := d.Start
	i := 0
	if p.cov != nil {
		p.cov.State(dec.ID, s.ID)
	}
	for {
		if s.AcceptAlt > 0 {
			return s.AcceptAlt, nil
		}
		var next *dfa.State
		if len(s.Edges) > 0 || s.Default != nil {
			next = s.Target(p.stream.LA(i + 1))
		}
		if next != nil {
			i++
			s = next
			if p.cov != nil {
				p.cov.Edge(dec.ID)
				p.cov.State(dec.ID, s.ID)
			}
			continue
		}
		if len(s.PredEdges) > 0 {
			return p.resolvePreds(s.PredEdges, dec, fr, backtracked)
		}
		// Report the error at the token that drove the DFA into the
		// error state (Section 4.4), not where prediction started.
		bad := p.stream.LT(i + 1)
		se := p.syntaxErr(bad, fr.rule.Name, fmt.Sprintf("no viable alternative for %s", dec.Desc))
		p.noteFailure(se)
		return 0, se
	}
}

// resolvePreds evaluates predicate edges in precedence order.
func (p *Parser) resolvePreds(edges []dfa.PredEdge, dec *atn.Decision, fr *frame, backtracked *bool) (int, error) {
	for _, e := range edges {
		switch e.Kind {
		case dfa.PredTrue:
			return e.Alt, nil
		case dfa.PredSem:
			ok, err := p.evalSemPred(e.Sem.Text, fr)
			if err != nil {
				return 0, err
			}
			if ok {
				return e.Alt, nil
			}
		case dfa.PredSyn:
			*backtracked = true
			if p.specSynPred(e.SynID, dec, fr) {
				return e.Alt, nil
			}
		case dfa.PredAuto:
			*backtracked = true
			if p.specAlt(dec, e.Alt, fr) {
				return e.Alt, nil
			}
		}
	}
	// Everything failed: report at the deepest point reached by a failed
	// speculative parse if it is beyond the current token (Section 4.4).
	if p.deepestErr != nil && p.deepestIdx >= p.stream.Index() {
		return 0, p.deepestErr
	}
	se := p.syntaxErr(p.stream.LT(1), fr.rule.Name, fmt.Sprintf("no viable alternative for %s", dec.Desc))
	return 0, se
}

// approxPredict is the v2-mode decision procedure: filter alternatives
// through the linear-approximate LL(k) tables; if more than one survives,
// speculate the survivors in order (ordered backtracking).
func (p *Parser) approxPredict(dec *atn.Decision, fr *frame, backtracked *bool) (int, error) {
	t := p.approx[dec.ID]
	if t == nil {
		t = llk.Compute(p.m, dec, p.opts.ApproxK)
		p.approx[dec.ID] = t
	}
	alt, viable, _ := t.Predict(p.stream)
	if alt > 0 {
		return alt, nil
	}
	if len(viable) == 0 {
		se := p.syntaxErr(p.stream.LT(1), fr.rule.Name,
			fmt.Sprintf("no viable alternative for %s (approximate LL(%d))", dec.Desc, t.K))
		p.noteFailure(se)
		return 0, se
	}
	// Multiple candidates survive the approximation: speculate in order,
	// taking exit branches as defaults rather than speculating them.
	for i, a := range viable {
		if dec.HasExitAlt() && a == dec.NAlts {
			return a, nil
		}
		if i == len(viable)-1 {
			return a, nil // last candidate: parse it for real
		}
		*backtracked = true
		if p.specAlt(dec, a, fr) {
			return a, nil
		}
	}
	return viable[len(viable)-1], nil
}

// specAlt speculatively matches alternative alt's body (PEG-mode
// backtracking): parse from its left edge to the decision's join point
// with mutators off, then rewind.
func (p *Parser) specAlt(dec *atn.Decision, alt int, fr *frame) bool {
	start := p.stream.Index()
	var t0 time.Duration
	if p.tr != nil {
		t0 = p.tr.Now()
	}
	p.spec++
	err := p.walk(dec.AltStart[alt-1], dec.End, &frame{rule: dec.Rule, arg: fr.arg})
	p.spec--
	consumed := p.stream.Index() - start
	p.stream.Seek(start)
	if p.cov != nil {
		p.cov.Speculation(dec.ID, consumed, p.spec+1, err == nil)
	}
	if p.tr != nil {
		p.tr.Emit(obs.Event{
			Name: "speculate.alt", Cat: obs.PhaseRuntime, Ph: obs.PhSpan,
			TS: t0, Dur: p.tr.Now() - t0,
			Decision: dec.ID, Rule: dec.Rule.Name, Alt: alt,
			K: consumed, Depth: p.spec + 1, OK: err == nil,
		})
	}
	if p.mx != nil {
		p.recordSpeculation(consumed, err == nil)
	}
	return err == nil
}

// specSynPred speculatively matches an explicit syntactic predicate
// fragment (α)=>. dec is the decision whose prediction launched the
// speculation, for coverage attribution.
func (p *Parser) specSynPred(id int, dec *atn.Decision, fr *frame) bool {
	def := p.m.SynPreds[id]
	start := p.stream.Index()
	var t0 time.Duration
	if p.tr != nil {
		t0 = p.tr.Now()
	}
	p.spec++
	err := p.walk(def.Start, def.Stop, &frame{rule: def.Rule, arg: fr.arg})
	p.spec--
	consumed := p.stream.Index() - start
	p.stream.Seek(start)
	if p.cov != nil {
		p.cov.Speculation(dec.ID, consumed, p.spec+1, err == nil)
	}
	if p.tr != nil {
		p.tr.Emit(obs.Event{
			Name: "speculate.synpred", Cat: obs.PhaseRuntime, Ph: obs.PhSpan,
			TS: t0, Dur: p.tr.Now() - t0,
			Decision: -1, Rule: def.Rule.Name, Alt: id,
			K: consumed, Depth: p.spec + 1, OK: err == nil,
		})
	}
	if p.mx != nil {
		p.mx.Counter(obs.Label("llstar_synpred_evals_total", "result", specResult(err == nil))).Inc()
		p.recordSpeculation(consumed, err == nil)
	}
	return err == nil
}

// recordSpeculation updates the speculation counters and depth
// histogram (tokens consumed before rewinding).
func (p *Parser) recordSpeculation(consumed int, ok bool) {
	p.mx.Counter(obs.Label("llstar_speculations_total", "result", specResult(ok))).Inc()
	p.mx.Histogram("llstar_speculation_depth").Observe(int64(consumed))
}

func specResult(ok bool) string {
	if ok {
		return "match"
	}
	return "fail"
}
