package interp

import (
	"strings"
	"testing"

	"llstar/internal/core"
	"llstar/internal/grammar"
	"llstar/internal/meta"
	"llstar/internal/runtime"
)

func analyzeSrc(t *testing.T, src string) *core.Result {
	t.Helper()
	g, err := meta.Parse("test.g", src)
	if err != nil {
		t.Fatalf("parse grammar: %v", err)
	}
	if err := grammar.FirstFatal(grammar.Validate(g)); err != nil {
		t.Fatalf("validate: %v", err)
	}
	res, err := core.Analyze(g, core.Options{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res
}

const exprGrammar = `
grammar Expr;
s : ID
  | ID '=' e
  | ('unsigned')* 'int' ID
  | ('unsigned')* ID ID
  ;
e : INT ;
ID : ('a'..'z'|'A'..'Z')+ ;
INT : ('0'..'9')+ ;
WS : (' '|'\t'|'\r'|'\n')+ { skip(); } ;
`

func TestParseFigure1Inputs(t *testing.T) {
	res := analyzeSrc(t, exprGrammar)
	for _, tc := range []struct {
		input string
		tree  string
	}{
		{"x", "(s x)"},
		{"x = 42", "(s x = (e 42))"},
		{"int x", "(s int x)"},
		{"unsigned unsigned int x", "(s unsigned unsigned int x)"},
		{"T x", "(s T x)"},
		{"unsigned unsigned T x", "(s unsigned unsigned T x)"},
	} {
		p := New(res, Options{BuildTree: true})
		tree, err := p.ParseString("s", tc.input)
		if err != nil {
			t.Errorf("parse %q: %v", tc.input, err)
			continue
		}
		if got := tree.String(); got != tc.tree {
			t.Errorf("parse %q: tree %s, want %s", tc.input, got, tc.tree)
		}
	}
}

func TestParseErrors(t *testing.T) {
	res := analyzeSrc(t, exprGrammar)
	p := New(res, Options{})
	_, err := p.ParseString("s", "unsigned unsigned =")
	if err == nil {
		t.Fatal("expected syntax error")
	}
	se, ok := err.(*runtime.SyntaxError)
	if !ok {
		t.Fatalf("want *runtime.SyntaxError, got %T: %v", err, err)
	}
	// The offending token should be '=', not the first 'unsigned'
	// (Section 4.4: report at the token that killed the DFA path).
	if se.Offending.Text != "=" {
		t.Errorf("offending token %q, want %q (error: %v)", se.Offending.Text, "=", se)
	}
}

const backtrackGrammar = `
grammar BT;
options { backtrack=true; memoize=true; }
t : ('-')* ID
  | e
  ;
e : INT | '-' e ;
ID : ('a'..'z')+ ;
INT : ('0'..'9')+ ;
WS : (' ')+ { skip(); } ;
`

func TestBacktrackingParse(t *testing.T) {
	res := analyzeSrc(t, backtrackGrammar)
	for _, tc := range []struct {
		input string
		tree  string
	}{
		{"x", "(t x)"},
		{"5", "(t (e 5))"},
		{"- x", "(t - x)"},
		{"- 5", "(t (e - (e 5)))"},
		{"- - - x", "(t - - - x)"},
		{"- - - 5", "(t (e - (e - (e - (e 5)))))"},
	} {
		p := New(res, Options{BuildTree: true, CollectStats: true})
		tree, err := p.ParseString("t", tc.input)
		if err != nil {
			t.Errorf("parse %q: %v", tc.input, err)
			continue
		}
		if got := tree.String(); got != tc.tree {
			t.Errorf("parse %q: tree %s, want %s", tc.input, got, tc.tree)
		}
	}
}

func TestBacktrackingStats(t *testing.T) {
	res := analyzeSrc(t, backtrackGrammar)
	p := New(res, Options{CollectStats: true})
	if _, err := p.ParseString("t", "- - - - 5"); err != nil {
		t.Fatalf("parse: %v", err)
	}
	st := p.Stats()
	if st.TotalEvents() == 0 {
		t.Fatal("no decision events recorded")
	}
	if st.BacktrackEvents() == 0 {
		t.Errorf("expected backtracking events on deep '-' prefix; stats: %s", st)
	}
	if st.MaxK() < 2 {
		t.Errorf("expected lookahead beyond 1 token, got max k=%d", st.MaxK())
	}
	// Simple inputs need only the first token.
	p2 := New(res, Options{CollectStats: true})
	if _, err := p2.ParseString("t", "x"); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := p2.Stats().BacktrackEvents(); got != 0 {
		t.Errorf("input x should not backtrack, got %d events", got)
	}
}

func TestMemoizationParity(t *testing.T) {
	res := analyzeSrc(t, backtrackGrammar)
	inputs := []string{"x", "- - x", "- - - - - 5", "5"}
	for _, in := range inputs {
		on, off := true, false
		pOn := New(res, Options{BuildTree: true, Memoize: &on})
		pOff := New(res, Options{BuildTree: true, Memoize: &off})
		tOn, errOn := pOn.ParseString("t", in)
		tOff, errOff := pOff.ParseString("t", in)
		if (errOn == nil) != (errOff == nil) {
			t.Fatalf("%q: memoization changed outcome: on=%v off=%v", in, errOn, errOff)
		}
		if errOn == nil && tOn.String() != tOff.String() {
			t.Errorf("%q: memoization changed tree: %s vs %s", in, tOn, tOff)
		}
	}
}

const predGrammar = `
grammar Preds;
s : t ';' ;
t : {isTypeName()}? ID ID
  | ID '=' INT
  ;
ID : ('a'..'z'|'A'..'Z')+ ;
INT : ('0'..'9')+ ;
WS : (' ')+ { skip(); } ;
`

func TestSemanticPredicateContextSensitive(t *testing.T) {
	res := analyzeSrc(t, predGrammar)
	typeNames := map[string]bool{"T": true}
	hooks := runtime.Hooks{
		Preds: map[string]func(*runtime.Context) bool{
			"isTypeName()": func(ctx *runtime.Context) bool {
				return typeNames[ctx.Stream.LT(1).Text]
			},
		},
	}
	p := New(res, Options{BuildTree: true, Hooks: hooks})
	tree, err := p.ParseString("s", "T x ;")
	if err != nil {
		t.Fatalf("T x: %v", err)
	}
	if !strings.Contains(tree.String(), "(t T x)") {
		t.Errorf("tree %s should contain declaration parse", tree)
	}
	p = New(res, Options{BuildTree: true, Hooks: hooks})
	tree, err = p.ParseString("s", "v = 3 ;")
	if err != nil {
		t.Fatalf("v = 3: %v", err)
	}
	if !strings.Contains(tree.String(), "(t v = 3)") {
		t.Errorf("tree %s should contain assignment parse", tree)
	}
}

const actionGrammar = `
grammar Act;
options { backtrack=true; }
s : a | b ;
a : X {regular()} {{always()}} Y ;
b : X {{always()}} Z ;
X : 'x' ;
Y : 'y' ;
Z : 'z' ;
WS : (' ')+ { skip(); } ;
`

// Mutators are deactivated during speculation; {{...}} actions run anyway
// (Section 4.3).
func TestActionGatingDuringSpeculation(t *testing.T) {
	res := analyzeSrc(t, actionGrammar)
	var regular, always int
	hooks := runtime.Hooks{
		Actions: map[string]func(*runtime.Context){
			"regular()": func(*runtime.Context) { regular++ },
			"always()":  func(*runtime.Context) { always++ },
		},
	}
	// Force the backtracking path: 'x z' must first speculate alternative
	// a (which fails at Y) and then match b.
	p := New(res, Options{Hooks: hooks})
	if _, err := p.ParseString("s", "x z"); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if regular != 0 {
		t.Errorf("regular action ran %d times during/after failed speculation, want 0", regular)
	}
	if always == 0 {
		t.Errorf("always-exec action should have run during speculation")
	}
}

// The left-recursion rewrite (Section 1.1) plus the interpreter's native
// precedence predicates parse expressions with correct associativity and
// precedence.
func TestLeftRecursionRewriteParse(t *testing.T) {
	g, err := meta.Parse("e.g", `
grammar E;
e : e '*' e
  | e '+' e
  | INT
  ;
INT : ('0'..'9')+ ;
WS : (' ')+ { skip(); } ;
`)
	if err != nil {
		t.Fatalf("parse grammar: %v", err)
	}
	if err := grammar.RewriteLeftRecursion(g, "e"); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if err := grammar.FirstFatal(grammar.Validate(g)); err != nil {
		t.Fatalf("validate after rewrite: %v", err)
	}
	res, err := core.Analyze(g, core.Options{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	p := New(res, Options{BuildTree: true})
	tree, err := p.ParseString("e", "1 + 2 * 3 + 4")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s := tree.String()
	// Precedence: * binds tighter than +; the 2*3 product must sit whole
	// inside one e_ invocation consumed by the '+' level.
	if want := "(e (e_ 1 + (e_ 2 * (e_ 3)) + (e_ 4)))"; s != want {
		t.Errorf("tree %s, want %s", s, want)
	}
}

// EBNF loop parsing: greedy iteration and exit.
func TestLoopParse(t *testing.T) {
	res := analyzeSrc(t, `
grammar L;
s : (X)* Y (Z)+ ;
X : 'x' ;
Y : 'y' ;
Z : 'z' ;
WS : (' ')+ { skip(); } ;
`)
	p := New(res, Options{BuildTree: true})
	tree, err := p.ParseString("s", "x x x y z z")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := tree.String(); got != "(s x x x y z z)" {
		t.Errorf("tree %s", got)
	}
	p = New(res, Options{})
	if _, err := p.ParseString("s", "y"); err == nil {
		t.Errorf("(Z)+ requires at least one z")
	}
}

// Optional subrules.
func TestOptionalParse(t *testing.T) {
	res := analyzeSrc(t, `
grammar O;
s : (X)? Y ;
X : 'x' ;
Y : 'y' ;
`)
	for _, in := range []string{"xy", "y"} {
		p := New(res, Options{})
		if _, err := p.ParseString("s", in); err != nil {
			t.Errorf("parse %q: %v", in, err)
		}
	}
}

// Wildcard and negated token sets.
func TestWildcardAndNot(t *testing.T) {
	res := analyzeSrc(t, `
grammar W;
s : ~SEMI . SEMI ;
SEMI : ';' ;
A : 'a' ;
B : 'b' ;
`)
	p := New(res, Options{})
	if _, err := p.ParseString("s", "ab;"); err != nil {
		t.Errorf("parse ab;: %v", err)
	}
	p = New(res, Options{})
	if _, err := p.ParseString("s", ";b;"); err == nil {
		t.Errorf("~SEMI must reject ';'")
	}
}

// Incomplete input must be rejected (EOF required).
func TestRequireEOF(t *testing.T) {
	res := analyzeSrc(t, exprGrammar)
	p := New(res, Options{})
	if _, err := p.ParseString("s", "x = 42 junk"); err == nil {
		t.Errorf("trailing junk must be an error")
	}
}

func TestLexErrorSurfaces(t *testing.T) {
	res := analyzeSrc(t, exprGrammar)
	p := New(res, Options{})
	_, err := p.ParseString("s", "x = @")
	if err == nil {
		t.Fatal("expected error for unlexable '@'")
	}
}
