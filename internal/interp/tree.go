package interp

import (
	"strings"

	"llstar/internal/runtime"
	"llstar/internal/token"
)

// Node is a parse-tree node: either a rule node (Rule != "") with
// children, or a token leaf (Token != nil).
type Node struct {
	Rule     string
	Token    *token.Token
	Children []*Node
}

// String renders the tree as an s-expression: (rule child ...).
func (n *Node) String() string {
	if n == nil {
		return "nil"
	}
	if n.Token != nil {
		return n.Token.Text
	}
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(n.Rule)
	for _, c := range n.Children {
		b.WriteByte(' ')
		b.WriteString(c.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Leaves returns the tree's tokens in order.
func (n *Node) Leaves() []token.Token {
	var out []token.Token
	var visit func(*Node)
	visit = func(m *Node) {
		if m.Token != nil {
			out = append(out, *m.Token)
			return
		}
		for _, c := range m.Children {
			visit(c)
		}
	}
	visit(n)
	return out
}

// Text reconstructs the leaf text joined by spaces.
func (n *Node) Text() string {
	leaves := n.Leaves()
	parts := make([]string, len(leaves))
	for i, t := range leaves {
		parts[i] = t.Text
	}
	return strings.Join(parts, " ")
}

// Count returns the number of nodes in the tree.
func (n *Node) Count() int {
	total := 1
	for _, c := range n.Children {
		total += c.Count()
	}
	return total
}

// Walk visits every node in depth-first order; fn returning false prunes
// descent below that node.
func (n *Node) Walk(fn func(*Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Find returns every node for the given rule, in depth-first order.
func (n *Node) Find(rule string) []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		if m.Rule == rule {
			out = append(out, m)
		}
		return true
	})
	return out
}

// Child returns the i-th child, or nil if out of range — convenient for
// chained navigation without bounds checks.
func (n *Node) Child(i int) *Node {
	if n == nil || i < 0 || i >= len(n.Children) {
		return nil
	}
	return n.Children[i]
}

// TokenAt returns the i-th child's token, or nil if it is not a leaf.
func (n *Node) TokenAt(i int) *token.Token {
	c := n.Child(i)
	if c == nil {
		return nil
	}
	return c.Token
}

// runtimeEvalArg adapts runtime.EvalRuleArg for walk.
func runtimeEvalArg(text string, callerArg int) (int, error) {
	if text == "" {
		return 0, nil
	}
	return runtime.EvalRuleArg(text, callerArg)
}
