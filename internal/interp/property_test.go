package interp

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"llstar/internal/core"
	"llstar/internal/grammar"
	"llstar/internal/lexrt"
	"llstar/internal/meta"
	"llstar/internal/peg"
	"llstar/internal/runtime"
)

// genGrammarSrc builds a random acyclic PEG-mode grammar over tokens
// A..D: rule i only references rules j > i, so every parse terminates;
// shared prefixes and EBNF blocks exercise prediction and backtracking.
func genGrammarSrc(r *rand.Rand, nRules int) string {
	var b strings.Builder
	b.WriteString("grammar Rand;\noptions { backtrack=true; memoize=true; }\n")
	toks := []string{"A", "B", "C", "D"}
	for i := 0; i < nRules; i++ {
		fmt.Fprintf(&b, "r%d :", i)
		nAlts := 1 + r.Intn(3)
		for a := 0; a < nAlts; a++ {
			if a > 0 {
				b.WriteString(" |")
			}
			nEl := r.Intn(4)
			for e := 0; e < nEl; e++ {
				switch r.Intn(5) {
				case 0, 1:
					b.WriteString(" " + toks[r.Intn(len(toks))])
				case 2:
					if i+1 < nRules {
						fmt.Fprintf(&b, " r%d", i+1+r.Intn(nRules-i-1))
					} else {
						b.WriteString(" " + toks[r.Intn(len(toks))])
					}
				case 3:
					fmt.Fprintf(&b, " (%s)%s", toks[r.Intn(len(toks))],
						[]string{"?", "*", "+"}[r.Intn(3)])
				default:
					fmt.Fprintf(&b, " (%s | %s)", toks[r.Intn(len(toks))], toks[r.Intn(len(toks))])
				}
			}
		}
		b.WriteString(" ;\n")
	}
	b.WriteString("A : 'a' ;\nB : 'b' ;\nC : 'c' ;\nD : 'd' ;\n")
	b.WriteString("WS : (' ')+ { skip(); } ;\n")
	return b.String()
}

func genInput(r *rand.Rand) string {
	letters := []string{"a", "b", "c", "d"}
	n := r.Intn(10)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = letters[r.Intn(len(letters))]
	}
	return strings.Join(parts, " ")
}

// Properties over random grammars and inputs:
//   - analysis terminates and parsing is deterministic
//   - memoization never changes the outcome or the tree
//   - on success, the tree's leaves are exactly the input tokens
func TestRandomGrammarProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genGrammarSrc(r, 1+r.Intn(5))
		g, err := meta.Parse("rand.g", src)
		if err != nil {
			t.Logf("grammar parse failed (generator bug): %v\n%s", err, src)
			return false
		}
		if err := grammar.FirstFatal(grammar.Validate(g)); err != nil {
			t.Logf("validate failed: %v\n%s", err, src)
			return false
		}
		res, err := core.Analyze(g, core.Options{})
		if err != nil {
			t.Logf("analyze failed: %v\n%s", err, src)
			return false
		}
		for trial := 0; trial < 8; trial++ {
			input := genInput(r)
			on, off := true, false
			pOn := New(res, Options{BuildTree: true, Memoize: &on})
			pOff := New(res, Options{BuildTree: true, Memoize: &off})
			tOn, errOn := pOn.ParseString("r0", input)
			tOff, errOff := pOff.ParseString("r0", input)
			if (errOn == nil) != (errOff == nil) {
				t.Logf("memo parity broken on %q:\nmemo: %v\nno-memo: %v\n%s", input, errOn, errOff, src)
				return false
			}
			if errOn == nil {
				if tOn.String() != tOff.String() {
					t.Logf("memo changed tree on %q\n%s", input, src)
					return false
				}
				// Leaves must equal the input exactly (EOF required).
				var leaves []string
				for _, l := range tOn.Leaves() {
					leaves = append(leaves, l.Text)
				}
				if strings.Join(leaves, " ") != input {
					t.Logf("tree leaves %v != input %q\n%s", leaves, input, src)
					return false
				}
			}
			// Determinism.
			p2 := New(res, Options{BuildTree: true})
			t2, err2 := p2.ParseString("r0", input)
			if (err2 == nil) != (errOn == nil) || (err2 == nil && t2.String() != tOn.String()) {
				t.Logf("nondeterministic parse on %q\n%s", input, src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// On PEG-mode grammars, any input the packrat baseline accepts must also
// be accepted by the LL(*) parser (LL(*) statically removes speculation
// but keeps ordered-choice semantics). Checked over a curated grammar set
// and random inputs.
func TestLLStarAcceptsPEGLanguage(t *testing.T) {
	grammars := []string{
		`grammar G1;
options { backtrack=true; memoize=true; }
s : A B | A C | A ;
A : 'a' ;
B : 'b' ;
C : 'c' ;
WS : (' ')+ { skip(); } ;`,
		`grammar G2;
options { backtrack=true; memoize=true; }
s : (A)* B | (A)* C ;
A : 'a' ;
B : 'b' ;
C : 'c' ;
WS : (' ')+ { skip(); } ;`,
		`grammar G3;
options { backtrack=true; memoize=true; }
s : t (s)? ;
t : A (B)? | C s D ;
A : 'a' ;
B : 'b' ;
C : 'c' ;
D : 'd' ;
WS : (' ')+ { skip(); } ;`,
		`grammar G4;
options { backtrack=true; memoize=true; }
s : e ;
e : t '+' e | t ;
t : A | '(' e ')' ;
A : 'a' ;
WS : (' ')+ { skip(); } ;`,
	}
	r := rand.New(rand.NewSource(7))
	for gi, src := range grammars {
		g, err := meta.Parse("g.g", src)
		if err != nil {
			t.Fatalf("G%d: %v", gi+1, err)
		}
		if err := grammar.FirstFatal(grammar.Validate(g)); err != nil {
			t.Fatalf("G%d: %v", gi+1, err)
		}
		res, err := core.Analyze(g, core.Options{})
		if err != nil {
			t.Fatalf("G%d: %v", gi+1, err)
		}
		letters := []string{"a", "b", "c", "d", "+", "(", ")"}
		for trial := 0; trial < 300; trial++ {
			n := r.Intn(8)
			parts := make([]string, n)
			for i := range parts {
				parts[i] = letters[r.Intn(len(letters))]
			}
			input := strings.Join(parts, " ")

			pp := peg.New(g, peg.Options{Memoize: true})
			lx := lexrt.New(res.Machine.Lex, input)
			_, pegErr := pp.ParseTokens("s", runtime.NewTokenStream(lx))
			if pegErr != nil {
				continue // only check PEG ⊆ LL(*)
			}
			ip := New(res, Options{})
			if _, err := ip.ParseString("s", input); err != nil {
				t.Errorf("G%d: PEG accepts %q but LL(*) rejects: %v", gi+1, input, err)
			}
		}
	}
}
