package interp

import (
	"testing"

	"llstar/internal/runtime"
	"llstar/internal/token"
)

// Parsers work over externally supplied token streams (no lexer rules in
// the grammar at all): the use case of driving the parser from a custom
// or third-party tokenizer.
func TestParseTokensWithCustomSource(t *testing.T) {
	res := analyzeSrc(t, `
grammar Tok;
tokens { A; B; }
s : A (B)* ;
`)
	vocab := res.Grammar.Vocab
	a, b := vocab.Lookup("A"), vocab.Lookup("B")
	src := &runtime.SliceSource{Tokens: []token.Token{
		{Type: a, Text: "a", Pos: token.Pos{Line: 1, Col: 1}},
		{Type: b, Text: "b", Pos: token.Pos{Line: 1, Col: 2}},
		{Type: b, Text: "b", Pos: token.Pos{Line: 1, Col: 3}},
	}}
	p := New(res, Options{BuildTree: true})
	tree, err := p.ParseTokens("s", runtime.NewTokenStream(src))
	if err != nil {
		t.Fatal(err)
	}
	if tree.String() != "(s a b b)" {
		t.Errorf("tree: %s", tree)
	}
	// ParseString must refuse: there are no lexer rules.
	p2 := New(res, Options{})
	if _, err := p2.ParseString("s", "ab"); err == nil {
		t.Error("ParseString without lexer rules must error")
	}
}

func TestTreeUtilities(t *testing.T) {
	res := analyzeSrc(t, `
grammar TU;
s : a a ;
a : X ;
X : 'x' ;
`)
	p := New(res, Options{BuildTree: true})
	tree, err := p.ParseString("s", "xx")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tree.Find("a")); got != 2 {
		t.Errorf("Find(a) = %d nodes", got)
	}
	visited := 0
	tree.Walk(func(*Node) bool { visited++; return true })
	if visited != tree.Count() {
		t.Errorf("walk visited %d of %d", visited, tree.Count())
	}
	if tree.Child(0).Rule != "a" || tree.Child(99) != nil {
		t.Errorf("Child navigation broken")
	}
	if tok := tree.Child(0).TokenAt(0); tok == nil || tok.Text != "x" {
		t.Errorf("TokenAt: %v", tok)
	}
	if tree.Text() != "x x" {
		t.Errorf("Text: %q", tree.Text())
	}
}
