package interp

import (
	"testing"
)

// Explicit syntactic predicates drive prediction at runtime when
// lookahead alone cannot separate alternatives: a dotted target of
// arbitrary length followed by '=' is an assignment, otherwise a call —
// the VB.NET grammar's pattern.
const synpredGrammar = `
grammar SP;
s : (target '=')=> target '=' VAL
  | target
  ;
target : ID ('.' ID)* ;
ID : ('a'..'z')+ ;
VAL : ('0'..'9')+ ;
WS : (' ')+ { skip(); } ;
`

func TestExplicitSynPredAtRuntime(t *testing.T) {
	res := analyzeSrc(t, synpredGrammar)
	for _, tc := range []struct {
		input string
		want  string
	}{
		{"a . b . c = 5", "(s (target a . b . c) = 5)"},
		{"a . b . c", "(s (target a . b . c))"},
		{"x = 1", "(s (target x) = 1)"},
		{"x", "(s (target x))"},
	} {
		p := New(res, Options{BuildTree: true, CollectStats: true})
		tree, err := p.ParseString("s", tc.input)
		if err != nil {
			t.Errorf("parse %q: %v", tc.input, err)
			continue
		}
		if got := tree.String(); got != tc.want {
			t.Errorf("parse %q: %s, want %s", tc.input, got, tc.want)
		}
	}
}

// v2 mode (linear approximate LL(k)) parses the same language, relying
// on ordered speculation where the approximation cannot decide.
func TestApproxLLKMode(t *testing.T) {
	res := analyzeSrc(t, `
grammar V2;
options { backtrack=true; memoize=true; }
s : A A B | A A C | (A)* D ;
A : 'a' ;
B : 'b' ;
C : 'c' ;
D : 'd' ;
WS : (' ')+ { skip(); } ;
`)
	for _, tc := range []struct {
		input string
		ok    bool
	}{
		{"a a b", true},
		{"a a c", true},
		{"a a a a d", true},
		{"d", true},
		{"a a", false},
		{"b", false},
	} {
		for _, k := range []int{1, 2} {
			p := New(res, Options{ApproxK: k, CollectStats: true})
			_, err := p.ParseString("s", tc.input)
			if (err == nil) != tc.ok {
				t.Errorf("k=%d input %q: err=%v, want ok=%v", k, tc.input, err, tc.ok)
			}
		}
	}
	// The approximation must speculate more than LL(*) on this grammar.
	p := New(res, Options{ApproxK: 1, CollectStats: true})
	if _, err := p.ParseString("s", "a a c"); err != nil {
		t.Fatal(err)
	}
	v2Specs := p.Stats().BacktrackEvents()
	pStar := New(res, Options{CollectStats: true})
	if _, err := pStar.ParseString("s", "a a c"); err != nil {
		t.Fatal(err)
	}
	if starSpecs := pStar.Stats().BacktrackEvents(); v2Specs <= starSpecs {
		t.Errorf("v2 should speculate more: v2=%d ll(*)=%d", v2Specs, starSpecs)
	}
}
