package interp

import (
	"testing"
)

const recoverGrammar = `
grammar Rec;
prog : (stmt)+ ;
stmt : ID '=' INT ';' ;
ID : ('a'..'z')+ ;
INT : ('0'..'9')+ ;
WS : (' '|'\n')+ { skip(); } ;
`

func TestRecoverSingleTokenDeletion(t *testing.T) {
	res := analyzeSrc(t, recoverGrammar)
	p := New(res, Options{BuildTree: true, Recover: true})
	// Extra INT before ';' is deleted; both statements survive.
	tree, err := p.ParseString("prog", "a = 1 1 ; b = 2 ;")
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if len(p.Errors()) != 1 {
		t.Fatalf("want 1 recovered error, got %v", p.Errors())
	}
	if got := len(tree.Children); got != 2 {
		t.Errorf("want 2 statements, got %d: %s", got, tree)
	}
}

func TestRecoverSingleTokenInsertion(t *testing.T) {
	res := analyzeSrc(t, recoverGrammar)
	p := New(res, Options{BuildTree: true, Recover: true})
	// Missing ';' after the first statement: inserted virtually.
	tree, err := p.ParseString("prog", "a = 1 b = 2 ;")
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if len(p.Errors()) != 1 {
		t.Fatalf("want 1 recovered error, got %v", p.Errors())
	}
	if got := len(tree.Children); got != 2 {
		t.Errorf("want 2 statements, got %d: %s", got, tree)
	}
}

func TestRecoverPredictionResync(t *testing.T) {
	res := analyzeSrc(t, recoverGrammar)
	p := New(res, Options{BuildTree: true, Recover: true})
	// Garbage between statements: the loop prediction fails, resync
	// deletes tokens until a statement start appears... here garbage is
	// an INT which cannot start stmt.
	tree, err := p.ParseString("prog", "a = 1 ; 42 99 b = 2 ;")
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if len(p.Errors()) == 0 {
		t.Fatal("expected recovered errors")
	}
	if got := len(tree.Children); got != 2 {
		t.Errorf("want 2 statements, got %d: %s", got, tree)
	}
}

func TestRecoverErrorBudget(t *testing.T) {
	res := analyzeSrc(t, recoverGrammar)
	p := New(res, Options{Recover: true, MaxErrors: 2})
	_, err := p.ParseString("prog", "1 ; 2 ; 3 ; 4 ; 5 ;")
	if err == nil {
		t.Fatal("expected failure after exhausting the error budget")
	}
	if len(p.Errors()) != 2 {
		t.Errorf("want exactly 2 collected errors, got %d", len(p.Errors()))
	}
}

func TestNoRecoveryByDefault(t *testing.T) {
	res := analyzeSrc(t, recoverGrammar)
	p := New(res, Options{})
	if _, err := p.ParseString("prog", "a = 1 1 ;"); err == nil {
		t.Fatal("without Recover the first error must abort")
	}
	if len(p.Errors()) != 0 {
		t.Errorf("no errors should be collected without Recover")
	}
}

// Recovery must never engage during speculation: backtracking relies on
// failures being control flow.
func TestRecoverNotDuringSpeculation(t *testing.T) {
	res := analyzeSrc(t, `
grammar RS;
options { backtrack=true; memoize=true; }
s : a | b ;
a : X Y Z ;
b : X Y W ;
X : 'x' ;
Y : 'y' ;
Z : 'z' ;
W : 'w' ;
WS : (' ')+ { skip(); } ;
`)
	p := New(res, Options{BuildTree: true, Recover: true})
	tree, err := p.ParseString("s", "x y w")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(p.Errors()) != 0 {
		t.Errorf("speculative failures must not be reported: %v", p.Errors())
	}
	if tree.String() != "(s (b x y w))" {
		t.Errorf("tree: %s", tree)
	}
}
