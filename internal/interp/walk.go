package interp

import (
	"fmt"

	"llstar/internal/atn"
	"llstar/internal/obs"
	"llstar/internal/runtime"
	"llstar/internal/token"
)

// walk executes the ATN from cur until reaching stop. Decision states
// dispatch through predict; everything else follows the single outgoing
// transition. Non-decision states in a well-formed ATN have at most one
// transition; hitting anything else is an internal error.
func (p *Parser) walk(cur, stop *atn.State, fr *frame) error {
	for cur != stop {
		if cur.DecisionID >= 0 {
			dec := p.m.Decision(cur.DecisionID)
			alt, err := p.predict(dec, fr)
			if err != nil {
				alt, err = p.recoverPredict(dec, fr, err)
				if err != nil {
					return err
				}
			}
			cur = dec.AltStart[alt-1]
			continue
		}
		if cur.Stop {
			// Reached a rule stop that isn't this walk's stop target:
			// only possible for speculation walks that end at a loop-back
			// decision; treat as completion.
			return nil
		}
		if len(cur.Trans) == 0 {
			return fmt.Errorf("interp: internal error: stuck at state %s", cur)
		}
		if len(cur.Trans) != 1 {
			return fmt.Errorf("interp: internal error: non-decision state %s has %d transitions", cur, len(cur.Trans))
		}
		tr := cur.Trans[0]
		switch tr.Kind {
		case atn.TEpsilon:
			cur = tr.To

		case atn.TAtom, atn.TSet, atn.TWildcard:
			t := p.stream.LT(1)
			if !tr.Matches(t.Type) {
				merr := p.matchError(tr, t, fr)
				if p.spec > 0 || !p.opts.Recover {
					return merr
				}
				if err := p.report(merr.(*runtime.SyntaxError)); err != nil {
					return err
				}
				// Single-token deletion: drop the offending token if the
				// one behind it matches; otherwise single-token
				// insertion: proceed as if the expected token were there.
				if t.Type != token.EOF && tr.Matches(p.stream.LA(2)) {
					p.stream.Consume()
					p.consume(p.stream.LT(1), fr)
				}
				cur = tr.To
				continue
			}
			p.consume(t, fr)
			cur = tr.To

		case atn.TRule:
			arg, err := runtimeEvalArg(tr.ArgText, fr.arg)
			if err != nil {
				return fmt.Errorf("interp: rule %s: %v", fr.rule.Name, err)
			}
			if err := p.parseRule(tr.RuleIndex, arg, fr.node); err != nil {
				return err
			}
			cur = tr.Follow

		case atn.TPred:
			if tr.SynPredID >= 0 {
				// Explicit syntactic predicates only drive prediction;
				// by the time the alternative executes, it has been
				// chosen, so the gate is a no-op here.
				cur = tr.To
				continue
			}
			ok, err := p.evalSemPred(tr.Pred.Text, fr)
			if err != nil {
				return err
			}
			if !ok {
				se := p.syntaxErr(p.stream.LT(1), fr.rule.Name,
					fmt.Sprintf("failed predicate {%s}?", tr.Pred.Text))
				p.noteFailure(se)
				return se
			}
			cur = tr.To

		case atn.TAction:
			if p.spec == 0 || tr.Act.AlwaysExec {
				p.ctx.Speculating = p.spec > 0
				p.ctx.Arg = fr.arg
				p.opts.Hooks.RunAction(tr.Act.Text, &p.ctx)
			}
			cur = tr.To

		default:
			return fmt.Errorf("interp: internal error: unexpected transition kind %d", tr.Kind)
		}
	}
	return nil
}

// recoverPredict handles a failed prediction: in Recover mode it deletes
// tokens (panic-mode resync) until some alternative predicts, or takes
// the exit branch of loops/optionals at EOF.
func (p *Parser) recoverPredict(dec *atn.Decision, fr *frame, err error) (int, error) {
	if p.spec > 0 || !p.opts.Recover {
		return 0, err
	}
	se, ok := err.(*runtime.SyntaxError)
	if !ok {
		return 0, err
	}
	if rerr := p.report(se); rerr != nil {
		return 0, rerr
	}
	deleted := 0
	for p.stream.LA(1) != token.EOF {
		p.stream.Consume()
		deleted++
		if alt, err2 := p.predict(dec, fr); err2 == nil {
			p.noteResync(dec, fr, deleted, true)
			return alt, nil
		}
	}
	if dec.HasExitAlt() {
		p.noteResync(dec, fr, deleted, true)
		return dec.NAlts, nil
	}
	p.noteResync(dec, fr, deleted, false)
	return 0, se
}

// noteResync records one panic-mode resynchronization (tokens deleted
// until a viable alternative, or until EOF on failure).
func (p *Parser) noteResync(dec *atn.Decision, fr *frame, deleted int, ok bool) {
	if p.tr != nil {
		p.tr.Emit(obs.Event{
			Name: "resync", Cat: obs.PhaseRuntime, Ph: obs.PhInstant, TS: p.tr.Now(),
			Decision: dec.ID, Rule: fr.rule.Name, OK: ok, N: int64(deleted),
		})
	}
	if p.mx != nil {
		p.mx.Counter("llstar_error_resyncs_total").Inc()
	}
	if p.cov != nil {
		p.cov.Resync(dec.ID, deleted)
	}
}

// consume advances past t, attaching it to the parse tree when building.
func (p *Parser) consume(t token.Token, fr *frame) {
	p.stream.Consume()
	tok := t
	p.ctx.LastToken = &tok
	if p.spec == 0 {
		if fr.node != nil {
			fr.node.Children = append(fr.node.Children, &Node{Token: &tok})
		}
		if p.lsn != nil {
			p.lsn.Token(tok)
		}
		// Committed past this token: in windowed mode release the
		// retired prefix and its now-unreachable memo verdicts.
		if newBase := p.stream.TrimTo(p.stream.Index()); newBase >= 0 && p.memo != nil {
			p.memo.PruneBelow(newBase)
		}
	}
}

// matchError builds the "expecting X" error for a failed terminal match.
func (p *Parser) matchError(tr *atn.Trans, at token.Token, fr *frame) error {
	var want string
	vocab := p.res.Grammar.Vocab
	switch tr.Kind {
	case atn.TAtom:
		want = vocab.Name(tr.Sym)
	case atn.TSet:
		want = tr.Set.Format(vocab)
		if tr.Negated {
			want = "~" + want
		}
	default:
		want = "any token"
	}
	se := p.syntaxErr(at, fr.rule.Name, fmt.Sprintf("expecting %s", want))
	p.noteFailure(se)
	return se
}

// evalSemPred evaluates a semantic predicate in the current context.
func (p *Parser) evalSemPred(text string, fr *frame) (bool, error) {
	p.ctx.Speculating = p.spec > 0
	p.ctx.Arg = fr.arg
	ok, err := p.opts.Hooks.EvalPred(text, &p.ctx)
	if p.tr != nil {
		detail := text
		if err != nil {
			detail = text + ": " + err.Error()
		}
		p.tr.Emit(obs.Event{
			Name: "sempred", Cat: obs.PhaseRuntime, Ph: obs.PhInstant, TS: p.tr.Now(),
			Decision: -1, Rule: fr.rule.Name, Depth: p.spec,
			OK: ok, Detail: detail,
		})
	}
	if p.mx != nil {
		result := "true"
		switch {
		case err != nil:
			result = "error"
		case !ok:
			result = "false"
		}
		p.mx.Counter(obs.Label("llstar_sempred_evals_total", "result", result)).Inc()
	}
	return ok, err
}
