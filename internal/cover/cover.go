// Package cover is the decision-level coverage and hotspot profiler:
// cheap runtime counters, accumulated per rule / per decision / per
// alternative while parsing, that answer the Section 6 questions for a
// user's own grammar and corpus — how often does each decision resolve
// with LL(1), LL(k), a cyclic DFA, or backtracking; which rules, alts,
// and DFA states does the corpus never exercise; and which decision
// burns the speculation budget.
//
// The design mirrors the tracer's cost contract: with no Profile
// installed, every instrumentation site in the interpreter is a single
// nil check. With one installed, the parser records into a private,
// unsynchronized Recorder and merges it into the shared Profile once
// per parse, so pooled parsers and Grammar.ParseConcurrent accumulate
// into one mergeable aggregate without hot-path locking.
package cover

import "sync"

// Strategy classifies how one prediction event resolved at runtime.
type Strategy int

// Prediction strategies, in increasing order of cost (the paper's
// graceful throttle-up: LL(1) → LL(k) → cyclic DFA → backtrack).
const (
	// StratLL1: the decision resolved on a single token of lookahead.
	StratLL1 Strategy = iota
	// StratLLk: an acyclic DFA resolved on a fixed k > 1 tokens.
	StratLLk
	// StratCyclic: a cyclic DFA scanned arbitrarily far ahead.
	StratCyclic
	// StratBacktrack: lookahead alone could not decide; the parser
	// speculated (syntactic predicate or PEG-mode backtracking).
	StratBacktrack
	// NumStrategies sizes per-decision strategy arrays.
	NumStrategies
)

// String returns the report label for a strategy.
func (s Strategy) String() string {
	switch s {
	case StratLL1:
		return "LL(1)"
	case StratLLk:
		return "LL(k)"
	case StratCyclic:
		return "cyclic"
	default:
		return "backtrack"
	}
}

// DecisionMeta is the static identity of one parsing decision,
// captured at profile creation so reports can attribute counters to
// stable decision IDs, rules, and DFA shapes.
type DecisionMeta struct {
	ID        int    `json:"id"`
	Rule      string `json:"rule"`
	Desc      string `json:"desc"`
	Class     string `json:"class"` // "fixed", "cyclic", "backtrack"
	NAlts     int    `json:"nalts"`
	DFAStates int    `json:"dfa_states"`
}

// Meta is the static shape of a grammar's profile: decision and rule
// identities, fixed at analysis time. Decision IDs and DFA state IDs
// are stable across loads of the same grammar source (analysis is
// deterministic), so profiles from different processes are comparable.
type Meta struct {
	Grammar   string         `json:"grammar"`
	Decisions []DecisionMeta `json:"decisions"`
	Rules     []string       `json:"rules"` // parser rules, by rule index
}

// DecisionCoverage accumulates runtime counters for one decision.
type DecisionCoverage struct {
	// Predictions counts prediction events at this decision, including
	// nested events inside speculation. The per-strategy split sums to
	// Predictions.
	Predictions int64 `json:"predictions"`
	// Strategy splits Predictions by how each event resolved.
	Strategy [NumStrategies]int64 `json:"strategy"`
	// Errors counts prediction events that failed (no viable alternative).
	Errors int64 `json:"errors"`
	// Alts counts how often each alternative was chosen (index alt-1).
	Alts []int64 `json:"alts"`
	// MaxK is the deepest lookahead of any event here.
	MaxK int `json:"max_k"`
	// StatesVisited marks the DFA states this corpus ever drove the
	// simulation through (index = DFA state ID).
	StatesVisited []bool `json:"states_visited"`
	// EdgesTaken counts DFA transitions taken while simulating here.
	EdgesTaken int64 `json:"edges_taken"`
	// SpecEvents / SpecTokens count speculative sub-parses launched at
	// this decision and the tokens they consumed before rewinding.
	SpecEvents int64 `json:"spec_events"`
	SpecTokens int64 `json:"spec_tokens"`
	// WastedSpecEvents / WastedSpecTokens are the failed subset of the
	// above: speculation whose work was thrown away entirely.
	WastedSpecEvents int64 `json:"wasted_spec_events"`
	WastedSpecTokens int64 `json:"wasted_spec_tokens"`
	// MaxSpecDepth is the deepest speculation nesting reached here.
	MaxSpecDepth int `json:"max_spec_depth"`
	// Resyncs / ResyncTokens count panic-mode recoveries at this
	// decision and the tokens they deleted.
	Resyncs      int64 `json:"resyncs"`
	ResyncTokens int64 `json:"resync_tokens"`
}

// add accumulates o into d (element-wise; visited states are OR-ed).
func (d *DecisionCoverage) add(o *DecisionCoverage) {
	d.Predictions += o.Predictions
	for i := range d.Strategy {
		d.Strategy[i] += o.Strategy[i]
	}
	d.Errors += o.Errors
	for i := range d.Alts {
		if i < len(o.Alts) {
			d.Alts[i] += o.Alts[i]
		}
	}
	if o.MaxK > d.MaxK {
		d.MaxK = o.MaxK
	}
	for i := range d.StatesVisited {
		if i < len(o.StatesVisited) && o.StatesVisited[i] {
			d.StatesVisited[i] = true
		}
	}
	d.EdgesTaken += o.EdgesTaken
	d.SpecEvents += o.SpecEvents
	d.SpecTokens += o.SpecTokens
	d.WastedSpecEvents += o.WastedSpecEvents
	d.WastedSpecTokens += o.WastedSpecTokens
	if o.MaxSpecDepth > d.MaxSpecDepth {
		d.MaxSpecDepth = o.MaxSpecDepth
	}
	d.Resyncs += o.Resyncs
	d.ResyncTokens += o.ResyncTokens
}

// StatesCovered counts distinct DFA states visited.
func (d *DecisionCoverage) StatesCovered() int {
	n := 0
	for _, v := range d.StatesVisited {
		if v {
			n++
		}
	}
	return n
}

// AltsCovered counts alternatives chosen at least once.
func (d *DecisionCoverage) AltsCovered() int {
	n := 0
	for _, c := range d.Alts {
		if c > 0 {
			n++
		}
	}
	return n
}

// RuleCoverage accumulates runtime counters for one parser rule.
type RuleCoverage struct {
	// Invocations counts rule invocations, speculative ones included.
	Invocations int64 `json:"invocations"`
	// MemoHits / MemoMisses count packrat-cache activity for
	// speculative invocations of this rule.
	MemoHits   int64 `json:"memo_hits"`
	MemoMisses int64 `json:"memo_misses"`
}

func (r *RuleCoverage) add(o *RuleCoverage) {
	r.Invocations += o.Invocations
	r.MemoHits += o.MemoHits
	r.MemoMisses += o.MemoMisses
}

// counters is the mutable half shared by Recorder (unsynchronized,
// per-parser) and Profile (mutex-guarded aggregate).
type counters struct {
	Parses      int64
	ParseErrors int64
	Tokens      int64
	Decisions   []DecisionCoverage
	Rules       []RuleCoverage
}

func newCounters(meta *Meta) counters {
	c := counters{
		Decisions: make([]DecisionCoverage, len(meta.Decisions)),
		Rules:     make([]RuleCoverage, len(meta.Rules)),
	}
	for i := range c.Decisions {
		c.Decisions[i].Alts = make([]int64, meta.Decisions[i].NAlts)
		c.Decisions[i].StatesVisited = make([]bool, meta.Decisions[i].DFAStates)
	}
	return c
}

func (c *counters) add(o *counters) {
	c.Parses += o.Parses
	c.ParseErrors += o.ParseErrors
	c.Tokens += o.Tokens
	for i := range c.Decisions {
		if i < len(o.Decisions) {
			c.Decisions[i].add(&o.Decisions[i])
		}
	}
	for i := range c.Rules {
		if i < len(o.Rules) {
			c.Rules[i].add(&o.Rules[i])
		}
	}
}

func (c *counters) reset() {
	c.Parses, c.ParseErrors, c.Tokens = 0, 0, 0
	for i := range c.Decisions {
		d := &c.Decisions[i]
		alts, states := d.Alts, d.StatesVisited
		for j := range alts {
			alts[j] = 0
		}
		for j := range states {
			states[j] = false
		}
		*d = DecisionCoverage{Alts: alts, StatesVisited: states}
	}
	for i := range c.Rules {
		c.Rules[i] = RuleCoverage{}
	}
}

// Profile is a mergeable aggregate of coverage counters for one
// grammar. A Profile is safe for concurrent use: any number of parsers
// (pooled or private) may flush recorders into it while other
// goroutines Snapshot it — the serving path for a live
// /debug/coverage endpoint.
type Profile struct {
	meta *Meta

	mu sync.Mutex
	c  counters
}

// NewProfile returns an empty profile over the given static shape.
// Callers normally use the facade's Grammar.NewCoverage, which fills
// Meta from the analysis result.
func NewProfile(meta Meta) *Profile {
	m := meta
	return &Profile{meta: &m, c: newCounters(&m)}
}

// Meta returns the profile's static shape.
func (p *Profile) Meta() *Meta { return p.meta }

// NewRecorder returns an unsynchronized recorder shaped like the
// profile, for one parser's exclusive use. Flush merges and clears it.
func (p *Profile) NewRecorder() *Recorder {
	r := &Recorder{p: p, c: newCounters(p.meta)}
	r.cyclic = make([]bool, len(p.meta.Decisions))
	for i, d := range p.meta.Decisions {
		r.cyclic[i] = d.Class == "cyclic"
	}
	return r
}

// Merge adds a snapshot's counters into p. Both must come from the
// same grammar (the same Meta shape); mismatched tails are ignored.
func (p *Profile) Merge(s *Snapshot) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c := counters{
		Parses:      s.Parses,
		ParseErrors: s.ParseErrors,
		Tokens:      s.Tokens,
		Decisions:   s.Decisions,
		Rules:       s.Rules,
	}
	p.c.add(&c)
}

// Reset clears every accumulated counter, keeping the shape.
func (p *Profile) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.c.reset()
}

// Snapshot is an immutable copy of a profile's counters, safe to read,
// report, and serialize while parsing continues.
type Snapshot struct {
	Meta        *Meta              `json:"meta"`
	Parses      int64              `json:"parses"`
	ParseErrors int64              `json:"parse_errors"`
	Tokens      int64              `json:"tokens"`
	Decisions   []DecisionCoverage `json:"decisions"`
	Rules       []RuleCoverage     `json:"rules"`
}

// Snapshot deep-copies the current counters.
func (p *Profile) Snapshot() *Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := &Snapshot{
		Meta:        p.meta,
		Parses:      p.c.Parses,
		ParseErrors: p.c.ParseErrors,
		Tokens:      p.c.Tokens,
		Decisions:   make([]DecisionCoverage, len(p.c.Decisions)),
		Rules:       make([]RuleCoverage, len(p.c.Rules)),
	}
	copy(s.Rules, p.c.Rules)
	for i := range p.c.Decisions {
		d := p.c.Decisions[i]
		d.Alts = append([]int64(nil), d.Alts...)
		d.StatesVisited = append([]bool(nil), d.StatesVisited...)
		s.Decisions[i] = d
	}
	return s
}

// Recorder is the hot-path collector bound to one parser. It is NOT
// safe for concurrent use — exactly like the parser that owns it. All
// methods are cheap field updates; the interpreter gates every call on
// a single nil check.
type Recorder struct {
	p      *Profile
	c      counters
	cyclic []bool // per decision: static class is cyclic
}

// Prediction records one prediction event: the lookahead depth k,
// whether speculation engaged, the chosen alternative (0 on failure),
// and the outcome. Strategy attribution follows the throttle order:
// backtracked events are backtrack regardless of k; otherwise cyclic
// decisions scan with the cyclic DFA; otherwise k ≤ 1 is LL(1) and
// deeper is LL(k).
func (r *Recorder) Prediction(dec, alt, k int, backtracked, failed bool) {
	if dec < 0 || dec >= len(r.c.Decisions) {
		return
	}
	d := &r.c.Decisions[dec]
	d.Predictions++
	switch {
	case backtracked:
		d.Strategy[StratBacktrack]++
	case r.cyclic[dec]:
		d.Strategy[StratCyclic]++
	case k <= 1:
		d.Strategy[StratLL1]++
	default:
		d.Strategy[StratLLk]++
	}
	if k > d.MaxK {
		d.MaxK = k
	}
	if failed {
		d.Errors++
		return
	}
	if alt >= 1 && alt <= len(d.Alts) {
		d.Alts[alt-1]++
	}
}

// State marks a DFA state as visited during simulation.
func (r *Recorder) State(dec, id int) {
	if dec < 0 || dec >= len(r.c.Decisions) {
		return
	}
	if sv := r.c.Decisions[dec].StatesVisited; id >= 0 && id < len(sv) {
		sv[id] = true
	}
}

// Edge counts one DFA transition taken during simulation.
func (r *Recorder) Edge(dec int) {
	if dec >= 0 && dec < len(r.c.Decisions) {
		r.c.Decisions[dec].EdgesTaken++
	}
}

// Speculation records one speculative sub-parse launched at a
// decision: tokens consumed before the rewind, whether the speculation
// matched, and the nesting depth it ran at.
func (r *Recorder) Speculation(dec, consumed, depth int, ok bool) {
	if dec < 0 || dec >= len(r.c.Decisions) {
		return
	}
	d := &r.c.Decisions[dec]
	d.SpecEvents++
	d.SpecTokens += int64(consumed)
	if !ok {
		d.WastedSpecEvents++
		d.WastedSpecTokens += int64(consumed)
	}
	if depth > d.MaxSpecDepth {
		d.MaxSpecDepth = depth
	}
}

// Resync records one panic-mode recovery at a decision.
func (r *Recorder) Resync(dec, deleted int) {
	if dec < 0 || dec >= len(r.c.Decisions) {
		return
	}
	d := &r.c.Decisions[dec]
	d.Resyncs++
	d.ResyncTokens += int64(deleted)
}

// Rule records one rule invocation.
func (r *Recorder) Rule(idx int) {
	if idx >= 0 && idx < len(r.c.Rules) {
		r.c.Rules[idx].Invocations++
	}
}

// Memo records one packrat-cache lookup for a rule.
func (r *Recorder) Memo(idx int, hit bool) {
	if idx < 0 || idx >= len(r.c.Rules) {
		return
	}
	if hit {
		r.c.Rules[idx].MemoHits++
	} else {
		r.c.Rules[idx].MemoMisses++
	}
}

// EndParse records parse-level totals: tokens consumed and outcome.
func (r *Recorder) EndParse(tokens int64, failed bool) {
	r.c.Parses++
	r.c.Tokens += tokens
	if failed {
		r.c.ParseErrors++
	}
}

// Flush merges the recorder into its profile and clears it. The
// interpreter calls it once per parse, so profile-lock contention is
// one acquisition per parse, not per event.
func (r *Recorder) Flush() {
	r.p.mu.Lock()
	r.p.c.add(&r.c)
	r.p.mu.Unlock()
	r.c.reset()
}
