package cover

import (
	"fmt"
	"html/template"
	"io"
)

// WriteHTML renders the snapshot as a single self-contained HTML page:
// the summary, the strategy split, the full hotspot table, per-rule
// coverage, and the uncovered-item lists. No external assets, so the
// file can be archived next to bench results or served live.
func (s *Snapshot) WriteHTML(w io.Writer) error {
	sum := s.Summarize()
	st := s.StrategyTotals()
	total := s.TotalPredictions()
	var strategies []map[string]any
	for i := Strategy(0); i < NumStrategies; i++ {
		strategies = append(strategies, map[string]any{
			"Name":  i.String(),
			"Count": st[i],
			"Pct":   pct(st[i], total),
		})
	}
	type ruleRow struct {
		Name        string
		Invocations int64
		MemoHits    int64
		MemoMisses  int64
	}
	var rules []ruleRow
	for i := range s.Rules {
		name := fmt.Sprintf("#%d", i)
		if i < len(s.Meta.Rules) {
			name = s.Meta.Rules[i]
		}
		r := &s.Rules[i]
		rules = append(rules, ruleRow{name, r.Invocations, r.MemoHits, r.MemoMisses})
	}
	var deadDecs []DecisionMeta
	for i := range s.Decisions {
		if s.Decisions[i].Predictions == 0 {
			deadDecs = append(deadDecs, s.Meta.Decisions[i])
		}
	}
	data := map[string]any{
		"Summary":    sum,
		"Strategies": strategies,
		"Hotspots":   s.Hotspots(),
		"Rules":      rules,
		"DeadRules":  s.uncoveredRules(),
		"DeadDecs":   deadDecs,
		"RulePct":    pct(int64(sum.RulesCovered), int64(sum.RulesTotal)),
		"DecPct":     pct(int64(sum.DecisionsHit), int64(sum.DecisionsTotal)),
		"AltPct":     pct(int64(sum.AltsCovered), int64(sum.AltsTotal)),
		"StatePct":   pct(int64(sum.DFAStatesHit), int64(sum.DFAStatesTotal)),
	}
	return htmlTmpl.Execute(w, data)
}

var htmlTmpl = template.Must(template.New("cover").Funcs(template.FuncMap{
	"pctf": func(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) },
	"pct1": func(f float64) string { return fmt.Sprintf("%.1f%%", f) },
	"strat": func(c DecisionCoverage, i int) int64 {
		return c.Strategy[i]
	},
}).Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>llstar coverage — {{.Summary.Grammar}}</title>
<style>
body { font: 14px/1.5 -apple-system, "Segoe UI", sans-serif; margin: 2em auto; max-width: 72em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
table { border-collapse: collapse; width: 100%; margin: 0.5em 0; }
th, td { text-align: right; padding: 0.25em 0.6em; border-bottom: 1px solid #ddd; font-variant-numeric: tabular-nums; }
th { background: #f5f5f5; }
th:first-child, td:first-child, th.l, td.l { text-align: left; }
td.hot { background: #fff1f0; }
.cards { display: flex; gap: 1em; flex-wrap: wrap; }
.card { border: 1px solid #ddd; border-radius: 6px; padding: 0.6em 1em; min-width: 9em; }
.card b { font-size: 1.3em; display: block; }
.muted { color: #888; }
code { background: #f5f5f5; padding: 0 0.25em; border-radius: 3px; }
</style>
</head>
<body>
<h1>Grammar coverage &amp; hotspots — <code>{{.Summary.Grammar}}</code></h1>
<p class="muted">{{.Summary.Parses}} parses · {{.Summary.Tokens}} tokens · {{.Summary.ParseErrors}} parse errors</p>
<div class="cards">
<div class="card"><b>{{.Summary.RulesCovered}}/{{.Summary.RulesTotal}}</b>rules ({{pct1 .RulePct}})</div>
<div class="card"><b>{{.Summary.DecisionsHit}}/{{.Summary.DecisionsTotal}}</b>decisions ({{pct1 .DecPct}})</div>
<div class="card"><b>{{.Summary.AltsCovered}}/{{.Summary.AltsTotal}}</b>alternatives ({{pct1 .AltPct}})</div>
<div class="card"><b>{{.Summary.DFAStatesHit}}/{{.Summary.DFAStatesTotal}}</b>DFA states ({{pct1 .StatePct}})</div>
<div class="card"><b>{{.Summary.WastedTokens}}</b>wasted spec tokens</div>
</div>

<h2>Prediction strategies</h2>
<table>
<tr><th class="l">strategy</th><th>events</th><th>share</th></tr>
{{range .Strategies}}<tr><td class="l">{{.Name}}</td><td>{{.Count}}</td><td>{{pct1 .Pct}}</td></tr>
{{end}}</table>

<h2>Hotspots</h2>
<table>
<tr><th class="l">decision</th><th class="l">rule</th><th class="l">class</th><th>predicts</th><th>LL(1)</th><th>LL(k)</th><th>cyclic</th><th>backtrack</th><th>spec tokens</th><th>wasted</th><th>wasted share</th><th>max k</th><th>resyncs</th></tr>
{{range .Hotspots}}<tr><td class="l">d{{.Meta.ID}}</td><td class="l">{{.Meta.Rule}}</td><td class="l">{{.Meta.Class}}</td><td>{{.Cov.Predictions}}</td><td>{{strat .Cov 0}}</td><td>{{strat .Cov 1}}</td><td>{{strat .Cov 2}}</td><td>{{strat .Cov 3}}</td><td>{{.Cov.SpecTokens}}</td>{{if gt .Cov.WastedSpecTokens 0}}<td class="hot">{{.Cov.WastedSpecTokens}}</td>{{else}}<td>0</td>{{end}}<td>{{pctf .WastedShare}}</td><td>{{.Cov.MaxK}}</td><td>{{.Cov.Resyncs}}</td></tr>
{{end}}</table>

<h2>Rules</h2>
<table>
<tr><th class="l">rule</th><th>invocations</th><th>memo hits</th><th>memo misses</th></tr>
{{range .Rules}}<tr><td class="l">{{.Name}}</td><td>{{.Invocations}}</td><td>{{.MemoHits}}</td><td>{{.MemoMisses}}</td></tr>
{{end}}</table>

{{if .DeadRules}}<h2>Rules never invoked</h2>
<ul>{{range .DeadRules}}<li><code>{{.}}</code></li>{{end}}</ul>{{end}}

{{if .DeadDecs}}<h2>Decisions never exercised</h2>
<table>
<tr><th class="l">decision</th><th class="l">rule</th><th class="l">class</th><th class="l">description</th></tr>
{{range .DeadDecs}}<tr><td class="l">d{{.ID}}</td><td class="l">{{.Rule}}</td><td class="l">{{.Class}}</td><td class="l">{{.Desc}}</td></tr>
{{end}}</table>{{end}}
</body>
</html>
`))
