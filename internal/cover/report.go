package cover

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// This file renders snapshots into the two human-facing artifacts: the
// grammar coverage report (what a corpus never exercised) and the
// hotspot attribution (which decision burns the speculation budget),
// as sorted text tables. html.go renders the same data as a
// self-contained HTML page.

// StrategyTotals sums prediction events by strategy across decisions.
func (s *Snapshot) StrategyTotals() [NumStrategies]int64 {
	var out [NumStrategies]int64
	for i := range s.Decisions {
		for j, n := range s.Decisions[i].Strategy {
			out[j] += n
		}
	}
	return out
}

// TotalPredictions sums prediction events across decisions.
func (s *Snapshot) TotalPredictions() int64 {
	var n int64
	for i := range s.Decisions {
		n += s.Decisions[i].Predictions
	}
	return n
}

// TotalWastedSpecTokens sums tokens consumed by failed speculation.
func (s *Snapshot) TotalWastedSpecTokens() int64 {
	var n int64
	for i := range s.Decisions {
		n += s.Decisions[i].WastedSpecTokens
	}
	return n
}

// Summary is the roll-up a coverage report leads with.
type Summary struct {
	Grammar     string `json:"grammar"`
	Parses      int64  `json:"parses"`
	ParseErrors int64  `json:"parse_errors"`
	Tokens      int64  `json:"tokens"`

	RulesCovered    int   `json:"rules_covered"`
	RulesTotal      int   `json:"rules_total"`
	DecisionsHit    int   `json:"decisions_covered"`
	DecisionsTotal  int   `json:"decisions_total"`
	AltsCovered     int   `json:"alts_covered"`
	AltsTotal       int   `json:"alts_total"`
	DFAStatesHit    int   `json:"dfa_states_covered"`
	DFAStatesTotal  int   `json:"dfa_states_total"`
	Predictions     int64 `json:"predictions"`
	BacktrackEvents int64 `json:"backtrack_events"`
	WastedTokens    int64 `json:"wasted_speculation_tokens"`
}

// Summarize computes the roll-up.
func (s *Snapshot) Summarize() Summary {
	sum := Summary{
		Grammar:        s.Meta.Grammar,
		Parses:         s.Parses,
		ParseErrors:    s.ParseErrors,
		Tokens:         s.Tokens,
		RulesTotal:     len(s.Rules),
		DecisionsTotal: len(s.Decisions),
	}
	for i := range s.Rules {
		if s.Rules[i].Invocations > 0 {
			sum.RulesCovered++
		}
	}
	for i := range s.Decisions {
		d := &s.Decisions[i]
		if d.Predictions > 0 {
			sum.DecisionsHit++
		}
		sum.AltsCovered += d.AltsCovered()
		sum.AltsTotal += len(d.Alts)
		sum.DFAStatesHit += d.StatesCovered()
		sum.DFAStatesTotal += len(d.StatesVisited)
		sum.Predictions += d.Predictions
		sum.BacktrackEvents += d.Strategy[StratBacktrack]
		sum.WastedTokens += d.WastedSpecTokens
	}
	return sum
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 100
	}
	return 100 * float64(a) / float64(b)
}

// WriteReport renders the grammar coverage report: the summary, the
// per-strategy prediction split, then everything the corpus never
// exercised — rules never invoked, decisions never predicted, alts
// never chosen, and DFA states never visited — each sorted for stable
// diffs.
func (s *Snapshot) WriteReport(w io.Writer) error {
	sum := s.Summarize()
	fmt.Fprintf(w, "grammar coverage: %s (%d parses, %d tokens, %d errors)\n",
		sum.Grammar, sum.Parses, sum.Tokens, sum.ParseErrors)
	fmt.Fprintf(w, "  rules      %d/%d (%.1f%%)\n", sum.RulesCovered, sum.RulesTotal,
		pct(int64(sum.RulesCovered), int64(sum.RulesTotal)))
	fmt.Fprintf(w, "  decisions  %d/%d (%.1f%%)\n", sum.DecisionsHit, sum.DecisionsTotal,
		pct(int64(sum.DecisionsHit), int64(sum.DecisionsTotal)))
	fmt.Fprintf(w, "  alts       %d/%d (%.1f%%)\n", sum.AltsCovered, sum.AltsTotal,
		pct(int64(sum.AltsCovered), int64(sum.AltsTotal)))
	fmt.Fprintf(w, "  DFA states %d/%d (%.1f%%)\n", sum.DFAStatesHit, sum.DFAStatesTotal,
		pct(int64(sum.DFAStatesHit), int64(sum.DFAStatesTotal)))

	st := s.StrategyTotals()
	total := s.TotalPredictions()
	fmt.Fprintf(w, "prediction strategies (%d events):\n", total)
	for i := Strategy(0); i < NumStrategies; i++ {
		fmt.Fprintf(w, "  %-9s %12d (%.2f%%)\n", i.String(), st[i], pct(st[i], total))
	}

	if miss := s.uncoveredRules(); len(miss) > 0 {
		fmt.Fprintf(w, "rules never invoked (%d):\n", len(miss))
		for _, name := range miss {
			fmt.Fprintf(w, "  %s\n", name)
		}
	}
	var deadDecs []DecisionMeta
	for i := range s.Decisions {
		if s.Decisions[i].Predictions == 0 {
			deadDecs = append(deadDecs, s.Meta.Decisions[i])
		}
	}
	if len(deadDecs) > 0 {
		fmt.Fprintf(w, "decisions never exercised (%d):\n", len(deadDecs))
		for _, m := range deadDecs {
			fmt.Fprintf(w, "  d%-4d %-9s %s\n", m.ID, m.Class, m.Desc)
		}
	}
	first := true
	for i := range s.Decisions {
		d := &s.Decisions[i]
		if d.Predictions == 0 {
			continue // already listed whole-decision gaps above
		}
		var missing []string
		for a, n := range d.Alts {
			if n == 0 {
				missing = append(missing, fmt.Sprint(a+1))
			}
		}
		if len(missing) == 0 {
			continue
		}
		if first {
			fmt.Fprintln(w, "alternatives never chosen:")
			first = false
		}
		m := s.Meta.Decisions[i]
		fmt.Fprintf(w, "  d%-4d %-16s alt %s of %d\n", m.ID, m.Rule, strings.Join(missing, ","), m.NAlts)
	}
	first = true
	for i := range s.Decisions {
		d := &s.Decisions[i]
		if d.Predictions == 0 || len(d.StatesVisited) == 0 {
			continue
		}
		hit := d.StatesCovered()
		if hit == len(d.StatesVisited) {
			continue
		}
		if first {
			fmt.Fprintln(w, "DFA states never visited:")
			first = false
		}
		m := s.Meta.Decisions[i]
		fmt.Fprintf(w, "  d%-4d %-16s %d/%d states\n", m.ID, m.Rule, hit, len(d.StatesVisited))
	}
	return nil
}

func (s *Snapshot) uncoveredRules() []string {
	var out []string
	for i := range s.Rules {
		if s.Rules[i].Invocations == 0 && i < len(s.Meta.Rules) {
			out = append(out, s.Meta.Rules[i])
		}
	}
	sort.Strings(out)
	return out
}

// Hotspot is one row of the hotspot attribution: a decision, its
// counters, and its share of the whole profile's wasted work.
type Hotspot struct {
	Meta DecisionMeta     `json:"meta"`
	Cov  DecisionCoverage `json:"coverage"`
	// WastedShare is this decision's fraction of all tokens consumed by
	// failed speculation (0..1) — the headline attribution ("decision 3
	// in expr caused 81% of backtracked tokens").
	WastedShare float64 `json:"wasted_share"`
	// BacktrackShare is its fraction of all backtracking events.
	BacktrackShare float64 `json:"backtrack_share"`
}

// Hotspots ranks exercised decisions by cost: wasted-speculation
// tokens first, then total speculated tokens, then prediction volume.
// Decisions the corpus never reached are excluded.
func (s *Snapshot) Hotspots() []Hotspot {
	totalWasted := s.TotalWastedSpecTokens()
	var totalBack int64
	for i := range s.Decisions {
		totalBack += s.Decisions[i].Strategy[StratBacktrack]
	}
	var out []Hotspot
	for i := range s.Decisions {
		d := &s.Decisions[i]
		if d.Predictions == 0 {
			continue
		}
		h := Hotspot{Meta: s.Meta.Decisions[i], Cov: *d}
		if totalWasted > 0 {
			h.WastedShare = float64(d.WastedSpecTokens) / float64(totalWasted)
		}
		if totalBack > 0 {
			h.BacktrackShare = float64(d.Strategy[StratBacktrack]) / float64(totalBack)
		}
		out = append(out, h)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := &out[i].Cov, &out[j].Cov
		if a.WastedSpecTokens != b.WastedSpecTokens {
			return a.WastedSpecTokens > b.WastedSpecTokens
		}
		if a.SpecTokens != b.SpecTokens {
			return a.SpecTokens > b.SpecTokens
		}
		if a.Predictions != b.Predictions {
			return a.Predictions > b.Predictions
		}
		return out[i].Meta.ID < out[j].Meta.ID
	})
	return out
}

// WriteHotspots renders the top hotspot rows as a sorted table.
// top <= 0 prints every exercised decision.
func (s *Snapshot) WriteHotspots(w io.Writer, top int) error {
	hs := s.Hotspots()
	if top > 0 && len(hs) > top {
		hs = hs[:top]
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "decision\trule\tclass\tpredicts\tLL(1)\tLL(k)\tcyclic\tbacktrack\tspec tokens\twasted\twasted share\tmax k")
	for _, h := range hs {
		c := &h.Cov
		fmt.Fprintf(tw, "d%d\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f%%\t%d\n",
			h.Meta.ID, h.Meta.Rule, h.Meta.Class, c.Predictions,
			c.Strategy[StratLL1], c.Strategy[StratLLk], c.Strategy[StratCyclic], c.Strategy[StratBacktrack],
			c.SpecTokens, c.WastedSpecTokens, 100*h.WastedShare, c.MaxK)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(hs) > 0 && hs[0].Cov.WastedSpecTokens > 0 {
		h := hs[0]
		fmt.Fprintf(w, "hottest: decision %d in %s caused %.0f%% of wasted speculation tokens (%d of %d)\n",
			h.Meta.ID, h.Meta.Rule, 100*h.WastedShare,
			h.Cov.WastedSpecTokens, s.TotalWastedSpecTokens())
	}
	return nil
}
