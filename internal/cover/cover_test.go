package cover

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func testMeta() Meta {
	return Meta{
		Grammar: "test",
		Decisions: []DecisionMeta{
			{ID: 0, Rule: "expr", Desc: "expr alts", Class: "fixed", NAlts: 2, DFAStates: 3},
			{ID: 1, Rule: "stat", Desc: "stat alts", Class: "cyclic", NAlts: 3, DFAStates: 4},
			{ID: 2, Rule: "decl", Desc: "decl alts", Class: "backtrack", NAlts: 2, DFAStates: 0},
		},
		Rules: []string{"expr", "stat", "decl"},
	}
}

func TestRecorderFlushSnapshot(t *testing.T) {
	p := NewProfile(testMeta())
	r := p.NewRecorder()

	r.Prediction(0, 1, 1, false, false) // LL(1)
	r.Prediction(0, 2, 3, false, false) // LL(k)
	r.Prediction(1, 2, 5, false, false) // cyclic class
	r.Prediction(2, 1, 2, true, false)  // backtracked
	r.Prediction(2, 0, 2, true, true)   // failed
	r.State(0, 0)
	r.State(0, 2)
	r.Edge(0)
	r.Edge(0)
	r.Speculation(2, 10, 1, false)
	r.Speculation(2, 4, 2, true)
	r.Resync(1, 3)
	r.Rule(0)
	r.Rule(0)
	r.Rule(2)
	r.Memo(2, true)
	r.Memo(2, false)
	r.EndParse(42, false)
	r.Flush()

	s := p.Snapshot()
	if s.Parses != 1 || s.Tokens != 42 || s.ParseErrors != 0 {
		t.Fatalf("parse totals: %+v", s)
	}
	d0 := s.Decisions[0]
	if d0.Predictions != 2 || d0.Strategy[StratLL1] != 1 || d0.Strategy[StratLLk] != 1 {
		t.Fatalf("d0 strategies: %+v", d0)
	}
	if d0.MaxK != 3 || d0.EdgesTaken != 2 || d0.StatesCovered() != 2 || d0.AltsCovered() != 2 {
		t.Fatalf("d0 detail: %+v", d0)
	}
	d1 := s.Decisions[1]
	if d1.Strategy[StratCyclic] != 1 || d1.Resyncs != 1 || d1.ResyncTokens != 3 {
		t.Fatalf("d1: %+v", d1)
	}
	d2 := s.Decisions[2]
	if d2.Strategy[StratBacktrack] != 2 || d2.Errors != 1 {
		t.Fatalf("d2 strategies: %+v", d2)
	}
	if d2.SpecEvents != 2 || d2.SpecTokens != 14 || d2.WastedSpecEvents != 1 || d2.WastedSpecTokens != 10 || d2.MaxSpecDepth != 2 {
		t.Fatalf("d2 speculation: %+v", d2)
	}
	if d2.AltsCovered() != 1 {
		t.Fatalf("d2 alts (failed prediction must not count an alt): %+v", d2.Alts)
	}
	if s.Rules[0].Invocations != 2 || s.Rules[2].MemoHits != 1 || s.Rules[2].MemoMisses != 1 {
		t.Fatalf("rules: %+v", s.Rules)
	}

	// Flush cleared the recorder: a second flush adds nothing.
	r.Flush()
	if s2 := p.Snapshot(); !reflect.DeepEqual(s, s2) {
		t.Fatalf("double flush changed profile:\n%+v\n%+v", s, s2)
	}
}

func TestStrategyCountsSumToPredictions(t *testing.T) {
	p := NewProfile(testMeta())
	r := p.NewRecorder()
	for i := 0; i < 100; i++ {
		r.Prediction(i%3, 1+i%2, 1+i%4, i%5 == 0, i%7 == 0)
	}
	r.Flush()
	s := p.Snapshot()
	for i, d := range s.Decisions {
		var sum int64
		for _, n := range d.Strategy {
			sum += n
		}
		if sum != d.Predictions {
			t.Fatalf("decision %d: strategy sum %d != predictions %d", i, sum, d.Predictions)
		}
	}
}

// TestMergeEqualsSum verifies the acceptance property driving the
// design: flushing many recorders concurrently into one profile yields
// exactly the element-wise sum of the individual contributions.
func TestMergeEqualsSum(t *testing.T) {
	merged := NewProfile(testMeta())
	var parts []*Snapshot
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			solo := NewProfile(testMeta())
			for _, p := range []*Profile{merged, solo} {
				r := p.NewRecorder()
				for i := 0; i < 50+w; i++ {
					dec := (i + w) % 3
					r.Prediction(dec, 1+i%2, 1+(i+w)%5, dec == 2, false)
					r.State(dec, i%4)
					r.Edge(dec)
					if dec == 2 {
						r.Speculation(dec, i%9, 1, i%2 == 0)
					}
					r.Rule(dec)
					r.Memo(dec, i%3 == 0)
				}
				r.EndParse(int64(100+w), w%2 == 0)
				r.Flush()
			}
			mu.Lock()
			parts = append(parts, solo.Snapshot())
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	sum := NewProfile(testMeta())
	for _, s := range parts {
		sum.Merge(s)
	}
	a, b := merged.Snapshot(), sum.Snapshot()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("merged profile != sum of per-parse profiles\nmerged: %+v\nsum:    %+v", a, b)
	}
}

func TestResetClearsCountersKeepsShape(t *testing.T) {
	p := NewProfile(testMeta())
	r := p.NewRecorder()
	r.Prediction(0, 1, 1, false, false)
	r.State(1, 2)
	r.EndParse(5, true)
	r.Flush()
	p.Reset()
	s := p.Snapshot()
	if s.Parses != 0 || s.ParseErrors != 0 || s.Tokens != 0 {
		t.Fatalf("reset totals: %+v", s)
	}
	for i, d := range s.Decisions {
		if d.Predictions != 0 || d.StatesCovered() != 0 || d.AltsCovered() != 0 {
			t.Fatalf("decision %d not cleared: %+v", i, d)
		}
		if len(d.Alts) != testMeta().Decisions[i].NAlts {
			t.Fatalf("decision %d lost alt shape", i)
		}
	}
}

func TestOutOfRangeEventsIgnored(t *testing.T) {
	p := NewProfile(testMeta())
	r := p.NewRecorder()
	r.Prediction(-1, 1, 1, false, false)
	r.Prediction(99, 1, 1, false, false)
	r.Prediction(0, 99, 1, false, false) // alt out of range: counted, alt dropped
	r.State(0, 99)
	r.State(99, 0)
	r.Edge(-5)
	r.Speculation(42, 3, 1, false)
	r.Resync(-1, 2)
	r.Rule(99)
	r.Memo(-1, true)
	r.Flush()
	s := p.Snapshot()
	if s.Decisions[0].Predictions != 1 || s.Decisions[0].AltsCovered() != 0 {
		t.Fatalf("out-of-range alt handling: %+v", s.Decisions[0])
	}
	if s.Decisions[0].StatesCovered() != 0 {
		t.Fatalf("out-of-range state recorded")
	}
}

func TestReportAndHotspots(t *testing.T) {
	p := NewProfile(testMeta())
	r := p.NewRecorder()
	r.Prediction(0, 1, 1, false, false)
	r.State(0, 0)
	r.Prediction(2, 1, 3, true, false)
	r.Speculation(2, 81, 1, false)
	r.Speculation(2, 19, 1, true)
	r.Rule(0)
	r.Rule(2)
	r.EndParse(100, false)
	r.Flush()
	s := p.Snapshot()

	var rep bytes.Buffer
	if err := s.WriteReport(&rep); err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{
		"grammar coverage: test",
		"rules      2/3",
		"rules never invoked (1):",
		"stat",                            // the uncovered rule
		"decisions never exercised (1):",  // d1 untouched
		"alternatives never chosen:",      // d0 alt 2, d2 alt 2
		"DFA states never visited:",       // d0 visited 1 of 3
		"backtrack            1 (50.00%)", // strategy split
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	hs := s.Hotspots()
	if len(hs) != 2 {
		t.Fatalf("want 2 exercised decisions, got %d", len(hs))
	}
	if hs[0].Meta.ID != 2 {
		t.Fatalf("hottest should be d2 (wasted tokens), got d%d", hs[0].Meta.ID)
	}
	if hs[0].WastedShare != 1.0 {
		t.Fatalf("d2 wasted share: %v", hs[0].WastedShare)
	}

	var hot bytes.Buffer
	if err := s.WriteHotspots(&hot, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(hot.String(), "hottest: decision 2 in decl caused 100% of wasted speculation tokens (81 of 81)") {
		t.Errorf("hotspot headline missing:\n%s", hot.String())
	}

	var html bytes.Buffer
	if err := s.WriteHTML(&html); err != nil {
		t.Fatal(err)
	}
	h := html.String()
	for _, want := range []string{"<!DOCTYPE html>", "Grammar coverage", "decl", "wasted spec tokens", "Rules never invoked"} {
		if !strings.Contains(h, want) {
			t.Errorf("html missing %q", want)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	p := NewProfile(testMeta())
	r := p.NewRecorder()
	r.Prediction(0, 1, 2, false, false)
	r.EndParse(7, false)
	r.Flush()
	s := p.Snapshot()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Meta.Grammar != "test" || back.Parses != 1 || back.Decisions[0].Predictions != 1 {
		t.Fatalf("round trip: %+v", back)
	}
	// A merged round-tripped snapshot behaves like the original.
	p2 := NewProfile(testMeta())
	p2.Merge(&back)
	if got := p2.Snapshot(); !reflect.DeepEqual(got.Decisions, s.Decisions) {
		t.Fatalf("merge of unmarshaled snapshot differs")
	}
}
