// Package runtime provides the LL(*) parser runtime (Section 4 of the
// paper): buffered token streams with mark/rewind for speculation, the
// packrat memoization table, per-decision profiling counters (the raw
// material for Tables 2–4), syntax-error values that point at the
// offending token (Section 4.4), and the hook registry through which
// host-language semantic predicates and actions are bound.
package runtime

import (
	"llstar/internal/token"
)

// TokenSource produces tokens; the lexer engine implements it, and tests
// can supply slices via SliceSource.
type TokenSource interface {
	// NextToken returns the next token. After end of input it must keep
	// returning a token with Type == token.EOF.
	NextToken() (token.Token, error)
}

// SliceSource is a TokenSource over a fixed slice, for tests and tools.
type SliceSource struct {
	Tokens []token.Token
	i      int
}

// NextToken implements TokenSource.
func (s *SliceSource) NextToken() (token.Token, error) {
	if s.i >= len(s.Tokens) {
		return token.Token{Type: token.EOF, Pos: s.eofPos()}, nil
	}
	t := s.Tokens[s.i]
	s.i++
	return t, nil
}

func (s *SliceSource) eofPos() token.Pos {
	if len(s.Tokens) == 0 {
		return token.Pos{Line: 1, Col: 1}
	}
	p := s.Tokens[len(s.Tokens)-1].Pos
	p.Col += len(s.Tokens[len(s.Tokens)-1].Text)
	return p
}

// TokenStream is a buffered stream over a TokenSource supporting
// arbitrary lookahead (LT/LA), seeking for backtracking, and a high-water
// mark for measuring lookahead depth per decision event.
type TokenStream struct {
	src    TokenSource
	tokens []token.Token
	p      int // index of the current (next unconsumed) token
	err    error

	// high is the largest absolute index examined since WatermarkReset;
	// used by the profiler to measure lookahead depth.
	high int
}

// NewTokenStream returns a stream reading lazily from src. Off-channel
// tokens (Channel != 0) are filtered out.
func NewTokenStream(src TokenSource) *TokenStream {
	return &TokenStream{src: src, high: -1}
}

// fill ensures the buffer holds at least n+1 tokens (index n valid).
func (s *TokenStream) fill(n int) {
	for len(s.tokens) <= n {
		if s.err != nil {
			// After a lex error, pad with EOF so parsing can stop.
			s.tokens = append(s.tokens, token.Token{Type: token.EOF})
			continue
		}
		t, err := s.src.NextToken()
		if err != nil {
			s.err = err
			continue
		}
		if t.Channel != 0 && t.Type != token.EOF {
			continue
		}
		t.Index = len(s.tokens)
		s.tokens = append(s.tokens, t)
		if t.Type == token.EOF {
			// Keep exactly one EOF; fill re-serves it via index clamp.
			break
		}
	}
}

// clamp maps an index past EOF back onto the EOF token.
func (s *TokenStream) clamp(i int) int {
	s.fill(i)
	if i >= len(s.tokens) {
		return len(s.tokens) - 1
	}
	return i
}

// LT returns the token i positions ahead (LT(1) is the current token).
func (s *TokenStream) LT(i int) token.Token {
	idx := s.p + i - 1
	if idx >= len(s.tokens) {
		idx = s.clamp(idx)
	}
	if idx > s.high {
		s.high = idx
	}
	return s.tokens[idx]
}

// LA returns the token type i positions ahead.
func (s *TokenStream) LA(i int) token.Type {
	idx := s.p + i - 1
	if idx >= len(s.tokens) {
		idx = s.clamp(idx)
	}
	if idx > s.high {
		s.high = idx
	}
	return s.tokens[idx].Type
}

// Consume advances past the current token.
func (s *TokenStream) Consume() {
	s.fill(s.p)
	if s.tokens[s.p].Type != token.EOF {
		s.p++
	}
}

// Index returns the current absolute position.
func (s *TokenStream) Index() int { return s.p }

// Seek rewinds (or fast-forwards) to an absolute position.
func (s *TokenStream) Seek(i int) {
	s.fill(i)
	if i > len(s.tokens)-1 {
		i = len(s.tokens) - 1
	}
	s.p = i
}

// Err returns the first token-source error, if any.
func (s *TokenStream) Err() error { return s.err }

// Size returns the number of tokens buffered so far (including EOF once
// reached); it grows as the parser looks ahead.
func (s *TokenStream) Size() int { return len(s.tokens) }

// WatermarkReset resets the lookahead high-water mark and returns the
// previous one (absolute index, -1 if untouched).
func (s *TokenStream) WatermarkReset() int {
	h := s.high
	s.high = -1
	return h
}

// Watermark returns the largest absolute index examined since the last
// reset (-1 if none).
func (s *TokenStream) Watermark() int { return s.high }

// ExtendWatermark raises the high-water mark to at least h; nested
// lookahead measurements use it to restore an outer scope's mark.
func (s *TokenStream) ExtendWatermark(h int) {
	if h > s.high {
		s.high = h
	}
}
