// Package runtime provides the LL(*) parser runtime (Section 4 of the
// paper): buffered token streams with mark/rewind for speculation, the
// packrat memoization table, per-decision profiling counters (the raw
// material for Tables 2–4), syntax-error values that point at the
// offending token (Section 4.4), and the hook registry through which
// host-language semantic predicates and actions are bound.
package runtime

import (
	"llstar/internal/token"
)

// TokenSource produces tokens; the lexer engine implements it, and tests
// can supply slices via SliceSource.
type TokenSource interface {
	// NextToken returns the next token. After end of input it must keep
	// returning a token with Type == token.EOF.
	NextToken() (token.Token, error)
}

// SliceSource is a TokenSource over a fixed slice, for tests and tools.
type SliceSource struct {
	Tokens []token.Token
	i      int
}

// NextToken implements TokenSource.
func (s *SliceSource) NextToken() (token.Token, error) {
	if s.i >= len(s.Tokens) {
		return token.Token{Type: token.EOF, Pos: s.eofPos()}, nil
	}
	t := s.Tokens[s.i]
	s.i++
	return t, nil
}

func (s *SliceSource) eofPos() token.Pos {
	if len(s.Tokens) == 0 {
		return token.Pos{Line: 1, Col: 1}
	}
	p := s.Tokens[len(s.Tokens)-1].Pos
	p.Col += len(s.Tokens[len(s.Tokens)-1].Text)
	return p
}

// trimKeepBehind is how many already-consumed tokens TrimTo retains
// behind the requested position (error messages may still reference the
// previous token).
const trimKeepBehind = 2

// trimCompactAt is the dead-prefix length that triggers a physical
// copy-down, amortizing compaction cost over many trims.
const trimCompactAt = 1024

// TokenStream is a buffered stream over a TokenSource supporting
// arbitrary lookahead (LT/LA), seeking for backtracking, and a high-water
// mark for measuring lookahead depth per decision event.
//
// All positions (Index, Seek, watermark, token.Index) are absolute: the
// stream may start at a nonzero base (NewTokenStreamAt) and, in windowed
// mode (EnableWindow + TrimTo), may physically discard retired tokens —
// absolute indexes stay stable either way.
type TokenStream struct {
	src    TokenSource
	tokens []token.Token // tokens[i] has absolute index base+i
	base   int           // absolute index of tokens[0]
	p      int           // absolute index of the current (next unconsumed) token
	err    error
	window bool

	// high is the largest absolute index examined since WatermarkReset;
	// used by the profiler to measure lookahead depth.
	high int
}

// NewTokenStream returns a stream reading lazily from src. Off-channel
// tokens (Channel != 0) are filtered out.
func NewTokenStream(src TokenSource) *TokenStream {
	return &TokenStream{src: src, high: -1}
}

// NewTokenStreamAt returns a stream whose first token has absolute index
// base. Incremental reparse uses it to parse a fragment of a larger
// document under the document's own token numbering, so memoized
// verdicts keyed by absolute position stay valid.
func NewTokenStreamAt(src TokenSource, base int) *TokenStream {
	return &TokenStream{src: src, base: base, p: base, high: -1}
}

// EnableWindow allows TrimTo to discard retired tokens. Off by default:
// batch parsing keeps the whole buffer so the tree and error paths can
// assume it.
func (s *TokenStream) EnableWindow() { s.window = true }

// TrimTo declares that no position below abs will ever be read or
// Seek'd to again. In windowed mode the dead prefix (minus a small
// keep-behind margin) is released once large enough; the return value
// is the new base after a physical compaction, or -1 when nothing was
// released. No-op when windowing is off.
//
// Safety: the parser only rewinds to speculation start points, which
// are never below the last non-speculative consume — so trimming at
// each such consume can never discard a live rewind target.
func (s *TokenStream) TrimTo(abs int) int {
	if !s.window {
		return -1
	}
	lo := abs - trimKeepBehind
	if lo <= s.base {
		return -1
	}
	dead := lo - s.base
	if dead < trimCompactAt {
		return -1
	}
	n := copy(s.tokens, s.tokens[dead:])
	// Zero the vacated tail so retired token text is actually collectable.
	tail := s.tokens[n:]
	for i := range tail {
		tail[i] = token.Token{}
	}
	s.tokens = s.tokens[:n]
	s.base = lo
	return s.base
}

// fill ensures the buffer covers absolute index n.
func (s *TokenStream) fill(n int) {
	for s.base+len(s.tokens) <= n {
		if s.err != nil {
			// After a lex error, pad with EOF so parsing can stop.
			s.tokens = append(s.tokens, token.Token{Type: token.EOF, Index: s.base + len(s.tokens)})
			continue
		}
		t, err := s.src.NextToken()
		if err != nil {
			s.err = err
			continue
		}
		if t.Channel != 0 && t.Type != token.EOF {
			continue
		}
		t.Index = s.base + len(s.tokens)
		s.tokens = append(s.tokens, t)
		if t.Type == token.EOF {
			// Keep exactly one EOF; fill re-serves it via index clamp.
			break
		}
	}
}

// clamp maps an absolute index past EOF back onto the EOF token.
func (s *TokenStream) clamp(i int) int {
	s.fill(i)
	if i >= s.base+len(s.tokens) {
		return s.base + len(s.tokens) - 1
	}
	return i
}

// LT returns the token i positions ahead (LT(1) is the current token).
func (s *TokenStream) LT(i int) token.Token {
	idx := s.p + i - 1
	if idx >= s.base+len(s.tokens) {
		idx = s.clamp(idx)
	}
	if idx > s.high {
		s.high = idx
	}
	return s.tokens[idx-s.base]
}

// LA returns the token type i positions ahead.
func (s *TokenStream) LA(i int) token.Type {
	idx := s.p + i - 1
	if idx >= s.base+len(s.tokens) {
		idx = s.clamp(idx)
	}
	if idx > s.high {
		s.high = idx
	}
	return s.tokens[idx-s.base].Type
}

// Consume advances past the current token.
func (s *TokenStream) Consume() {
	s.fill(s.p)
	if s.tokens[s.p-s.base].Type != token.EOF {
		s.p++
	}
}

// Index returns the current absolute position.
func (s *TokenStream) Index() int { return s.p }

// Seek rewinds (or fast-forwards) to an absolute position.
func (s *TokenStream) Seek(i int) {
	s.fill(i)
	if i > s.base+len(s.tokens)-1 {
		i = s.base + len(s.tokens) - 1
	}
	s.p = i
}

// Err returns the first token-source error, if any.
func (s *TokenStream) Err() error { return s.err }

// Size returns the total number of tokens seen so far (including EOF
// once reached), counting any trimmed away; it grows as the parser
// looks ahead.
func (s *TokenStream) Size() int { return s.base + len(s.tokens) }

// Buffered returns the tokens currently held in memory — the live
// window in streaming mode, everything in batch mode. The slice aliases
// the stream's buffer; copy before retaining.
func (s *TokenStream) Buffered() []token.Token { return s.tokens }

// WatermarkReset resets the lookahead high-water mark and returns the
// previous one (absolute index, -1 if untouched).
func (s *TokenStream) WatermarkReset() int {
	h := s.high
	s.high = -1
	return h
}

// Watermark returns the largest absolute index examined since the last
// reset (-1 if none).
func (s *TokenStream) Watermark() int { return s.high }

// ExtendWatermark raises the high-water mark to at least h; nested
// lookahead measurements use it to restore an outer scope's mark.
func (s *TokenStream) ExtendWatermark(h int) {
	if h > s.high {
		s.high = h
	}
}
