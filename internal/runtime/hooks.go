package runtime

import (
	"fmt"
	"strconv"
	"strings"

	"llstar/internal/token"
)

// Context is the state visible to semantic predicates and actions: the
// paper's machine state S plus the current stream and rule frame. User
// code stores whatever it wants in State (e.g. a symbol table).
type Context struct {
	// Stream gives predicates access to lookahead (e.g. the C grammar's
	// isTypeName(next token) predicate).
	Stream *TokenStream
	// State is arbitrary user state, threaded through the whole parse.
	State any
	// Arg is the current rule's integer argument for parameterized rules
	// (the precedence loops produced by the left-recursion rewrite).
	Arg int
	// Speculating reports whether the parser is inside a speculative
	// parse; mutators are disabled then unless marked {{...}}.
	Speculating bool
	// LastToken is the most recently consumed token (nil before any).
	LastToken *token.Token
}

// Hooks binds grammar predicate/action text to host (Go) code. Keys are
// the exact text between the braces, trimmed.
type Hooks struct {
	// Preds maps semantic-predicate text to its evaluation.
	Preds map[string]func(*Context) bool
	// Actions maps action text to its implementation.
	Actions map[string]func(*Context)
}

// EvalPred evaluates a semantic predicate. Precedence comparisons of the
// form "p <= 3" (produced by the left-recursion rewrite) are evaluated
// natively against ctx.Arg; anything else must be bound in Hooks.Preds.
func (h Hooks) EvalPred(text string, ctx *Context) (bool, error) {
	if ok, matched := evalArgComparison(text, ctx.Arg); matched {
		return ok, nil
	}
	if h.Preds != nil {
		if fn, ok := h.Preds[strings.TrimSpace(text)]; ok {
			return fn(ctx), nil
		}
	}
	return false, fmt.Errorf("semantic predicate {%s}? has no binding", text)
}

// RunAction executes an action if bound; unbound actions are ignored (a
// grammar may carry actions meant only for the code generator).
func (h Hooks) RunAction(text string, ctx *Context) {
	if h.Actions == nil {
		return
	}
	if fn, ok := h.Actions[strings.TrimSpace(text)]; ok {
		fn(ctx)
	}
}

// evalArgComparison handles "<ident> OP <int>" with OP in <=, <, >=, >,
// ==, != against the rule argument. matched reports whether the text has
// that shape.
func evalArgComparison(text string, arg int) (result, matched bool) {
	fields := strings.Fields(text)
	if len(fields) != 3 {
		return false, false
	}
	if !isIdent(fields[0]) {
		return false, false
	}
	n, err := strconv.Atoi(fields[2])
	if err != nil {
		return false, false
	}
	switch fields[1] {
	case "<=":
		return arg <= n, true
	case "<":
		return arg < n, true
	case ">=":
		return arg >= n, true
	case ">":
		return arg > n, true
	case "==":
		return arg == n, true
	case "!=":
		return arg != n, true
	}
	return false, false
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// EvalRuleArg evaluates the actual-argument text of a parameterized rule
// call: an integer literal, the identifier of the caller's own argument,
// or "<ident> + <int>" / "<ident> - <int>".
func EvalRuleArg(text string, callerArg int) (int, error) {
	t := strings.TrimSpace(text)
	if t == "" {
		return 0, nil
	}
	if n, err := strconv.Atoi(t); err == nil {
		return n, nil
	}
	if isIdent(t) {
		return callerArg, nil
	}
	for _, op := range []string{"+", "-"} {
		if i := strings.Index(t, op); i > 0 {
			lhs, rhs := strings.TrimSpace(t[:i]), strings.TrimSpace(t[i+1:])
			n, err := strconv.Atoi(rhs)
			if err != nil || !isIdent(lhs) {
				break
			}
			if op == "+" {
				return callerArg + n, nil
			}
			return callerArg - n, nil
		}
	}
	return 0, fmt.Errorf("cannot evaluate rule argument %q", text)
}
