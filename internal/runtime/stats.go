package runtime

import "fmt"

// DecisionStats profiles one parsing decision at runtime; the benchmark
// harness aggregates these into Tables 3 and 4.
type DecisionStats struct {
	// Events counts prediction events at this decision.
	Events int
	// SumK accumulates the lookahead depth (tokens examined) per event.
	SumK int64
	// MaxK is the deepest lookahead of any event.
	MaxK int
	// BacktrackEvents counts events that engaged speculation.
	BacktrackEvents int
	// SumBacktrackK accumulates speculation depth (tokens speculated)
	// for backtracking events.
	SumBacktrackK int64
	// CanBacktrack marks decisions whose DFA contains speculation edges.
	CanBacktrack bool
}

// ParseStats aggregates runtime profiling for one or more parses.
type ParseStats struct {
	Decisions []DecisionStats // indexed by decision ID

	// MemoEntries is the memo-table size after the parse(s).
	MemoEntries int
	// MemoHits/MemoMisses count cache activity.
	MemoHits   int
	MemoMisses int
	// MemoStores counts Put operations (entries written, including
	// overwrites).
	MemoStores int
}

// NewParseStats sizes the table for n decisions.
func NewParseStats(n int) *ParseStats {
	return &ParseStats{Decisions: make([]DecisionStats, n)}
}

// Reset clears all accumulated counters while preserving the static
// CanBacktrack marks, so a pooled parser starts each parse with a clean
// profile.
func (ps *ParseStats) Reset() {
	if ps == nil {
		return
	}
	for i := range ps.Decisions {
		can := ps.Decisions[i].CanBacktrack
		ps.Decisions[i] = DecisionStats{CanBacktrack: can}
	}
	ps.MemoEntries = 0
	ps.MemoHits = 0
	ps.MemoMisses = 0
	ps.MemoStores = 0
}

// Record logs one prediction event.
func (ps *ParseStats) Record(decision, k int, backtracked bool, backtrackK int) {
	if ps == nil || decision < 0 || decision >= len(ps.Decisions) {
		return
	}
	d := &ps.Decisions[decision]
	d.Events++
	d.SumK += int64(k)
	if k > d.MaxK {
		d.MaxK = k
	}
	if backtracked {
		d.BacktrackEvents++
		d.SumBacktrackK += int64(backtrackK)
	}
}

// TotalEvents sums decision events.
func (ps *ParseStats) TotalEvents() int {
	n := 0
	for i := range ps.Decisions {
		n += ps.Decisions[i].Events
	}
	return n
}

// DecisionsCovered counts decisions with at least one event (the paper's
// "decision points covered while parsing", Table 3 column n).
func (ps *ParseStats) DecisionsCovered() int {
	n := 0
	for i := range ps.Decisions {
		if ps.Decisions[i].Events > 0 {
			n++
		}
	}
	return n
}

// AvgK is the mean lookahead depth across all decision events (Table 3).
func (ps *ParseStats) AvgK() float64 {
	var sum int64
	var events int
	for i := range ps.Decisions {
		sum += ps.Decisions[i].SumK
		events += ps.Decisions[i].Events
	}
	if events == 0 {
		return 0
	}
	return float64(sum) / float64(events)
}

// MaxK is the deepest lookahead of any decision event (Table 3).
func (ps *ParseStats) MaxK() int {
	m := 0
	for i := range ps.Decisions {
		if ps.Decisions[i].MaxK > m {
			m = ps.Decisions[i].MaxK
		}
	}
	return m
}

// BacktrackEvents counts decision events that engaged speculation.
func (ps *ParseStats) BacktrackEvents() int {
	n := 0
	for i := range ps.Decisions {
		n += ps.Decisions[i].BacktrackEvents
	}
	return n
}

// BacktrackRatio is the fraction of decision events that backtracked
// (Table 4 "Backtrack" column).
func (ps *ParseStats) BacktrackRatio() float64 {
	ev := ps.TotalEvents()
	if ev == 0 {
		return 0
	}
	return float64(ps.BacktrackEvents()) / float64(ev)
}

// AvgBacktrackK is the mean speculation depth over backtracking events
// only (Table 3 "back. k").
func (ps *ParseStats) AvgBacktrackK() float64 {
	var sum int64
	var events int
	for i := range ps.Decisions {
		sum += ps.Decisions[i].SumBacktrackK
		events += ps.Decisions[i].BacktrackEvents
	}
	if events == 0 {
		return 0
	}
	return float64(sum) / float64(events)
}

// CanBacktrackCount counts decisions marked as potentially backtracking
// that were exercised ("Can back." in Table 4 counts all such decisions;
// see DidBacktrackCount for "Did back.").
func (ps *ParseStats) CanBacktrackCount() int {
	n := 0
	for i := range ps.Decisions {
		if ps.Decisions[i].CanBacktrack {
			n++
		}
	}
	return n
}

// DidBacktrackCount counts potentially-backtracking decisions that
// actually backtracked at least once (Table 4 "Did back.").
func (ps *ParseStats) DidBacktrackCount() int {
	n := 0
	for i := range ps.Decisions {
		if ps.Decisions[i].BacktrackEvents > 0 {
			n++
		}
	}
	return n
}

// BacktrackTriggerRate is the likelihood that an event at a
// potentially-backtracking decision actually backtracks (Table 4
// "Back. rate").
func (ps *ParseStats) BacktrackTriggerRate() float64 {
	var events, backs int
	for i := range ps.Decisions {
		if ps.Decisions[i].CanBacktrack {
			events += ps.Decisions[i].Events
			backs += ps.Decisions[i].BacktrackEvents
		}
	}
	if events == 0 {
		return 0
	}
	return float64(backs) / float64(events)
}

// MemoHitRatio is the fraction of memo lookups that hit (0 with no
// lookups).
func (ps *ParseStats) MemoHitRatio() float64 {
	lookups := ps.MemoHits + ps.MemoMisses
	if lookups == 0 {
		return 0
	}
	return float64(ps.MemoHits) / float64(lookups)
}

// String summarizes the profile, including memo-cache effectiveness
// (hits, misses, stores, and hit ratio — not just the entry count).
func (ps *ParseStats) String() string {
	return fmt.Sprintf("events=%d covered=%d avgK=%.2f maxK=%d backtrack=%.2f%% backK=%.2f memo=%d hits=%d misses=%d stores=%d hit-ratio=%.1f%%",
		ps.TotalEvents(), ps.DecisionsCovered(), ps.AvgK(), ps.MaxK(),
		100*ps.BacktrackRatio(), ps.AvgBacktrackK(), ps.MemoEntries,
		ps.MemoHits, ps.MemoMisses, ps.MemoStores, 100*ps.MemoHitRatio())
}
