package runtime

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"llstar/internal/token"
)

func toks(types ...token.Type) []token.Token {
	out := make([]token.Token, len(types))
	for i, t := range types {
		out[i] = token.Token{Type: t, Text: "t", Pos: token.Pos{Line: 1, Col: i + 1}}
	}
	return out
}

func TestTokenStreamBasics(t *testing.T) {
	s := NewTokenStream(&SliceSource{Tokens: toks(1, 2, 3)})
	if s.LA(1) != 1 || s.LA(2) != 2 || s.LA(4) != token.EOF || s.LA(99) != token.EOF {
		t.Fatalf("lookahead wrong")
	}
	s.Consume()
	if s.LA(1) != 2 || s.Index() != 1 {
		t.Fatalf("consume wrong")
	}
	s.Seek(0)
	if s.LA(1) != 1 {
		t.Fatalf("seek wrong")
	}
	// Consuming past EOF is a no-op.
	for i := 0; i < 10; i++ {
		s.Consume()
	}
	if s.LA(1) != token.EOF {
		t.Fatalf("must stick at EOF")
	}
}

func TestTokenStreamWatermark(t *testing.T) {
	s := NewTokenStream(&SliceSource{Tokens: toks(1, 2, 3, 4, 5)})
	s.WatermarkReset()
	s.LA(3)
	if s.Watermark() != 2 {
		t.Fatalf("watermark = %d, want 2", s.Watermark())
	}
	prev := s.WatermarkReset()
	if prev != 2 || s.Watermark() != -1 {
		t.Fatalf("reset: prev=%d cur=%d", prev, s.Watermark())
	}
	s.ExtendWatermark(7)
	if s.Watermark() != 7 {
		t.Fatalf("extend failed")
	}
}

// Property: any interleaving of Consume/Seek/LA agrees with a reference
// implementation over the same token slice.
func TestTokenStreamMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		types := make([]token.Type, n)
		for i := range types {
			types[i] = token.Type(1 + r.Intn(5))
		}
		s := NewTokenStream(&SliceSource{Tokens: toks(types...)})
		pos := 0
		la := func(i int) token.Type {
			idx := pos + i - 1
			if idx >= len(types) {
				return token.EOF
			}
			return types[idx]
		}
		for step := 0; step < 60; step++ {
			switch r.Intn(3) {
			case 0:
				k := 1 + r.Intn(4)
				if s.LA(k) != la(k) {
					return false
				}
			case 1:
				s.Consume()
				if pos < len(types) {
					pos++
				}
			case 2:
				target := r.Intn(n + 2)
				s.Seek(target)
				pos = target
				if pos > len(types) {
					pos = len(types)
				}
			}
			if s.LA(1) != la(1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestMemoTable(t *testing.T) {
	m := NewMemoTable(3)
	if _, ok := m.Get(1, 5); ok {
		t.Fatal("unexpected hit")
	}
	m.Put(1, 5, 9)
	if stop, ok := m.Get(1, 5); !ok || stop != 9 {
		t.Fatalf("get: %d %v", stop, ok)
	}
	m.Put(2, 0, MemoFailed)
	if stop, ok := m.Get(2, 0); !ok || stop != MemoFailed {
		t.Fatalf("failed entry: %d %v", stop, ok)
	}
	if m.Entries() != 2 {
		t.Fatalf("entries = %d", m.Entries())
	}
	if m.Hits() != 2 || m.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", m.Hits(), m.Misses())
	}
	if m.Stores() != 2 {
		t.Fatalf("stores = %d, want 2", m.Stores())
	}
	// Overwriting an entry counts as a store but not a new entry.
	m.Put(1, 5, 11)
	if m.Stores() != 3 || m.Entries() != 2 {
		t.Fatalf("after overwrite: stores=%d entries=%d", m.Stores(), m.Entries())
	}
	// Out-of-range rows must not panic.
	m.Put(99, 0, 1)
	if _, ok := m.Get(99, 0); ok {
		t.Fatal("out-of-range row hit")
	}
	var nilTable *MemoTable
	if nilTable.Entries() != 0 {
		t.Fatal("nil table entries")
	}
}

func TestParseStatsStringMemo(t *testing.T) {
	ps := NewParseStats(1)
	ps.Record(0, 1, false, 0)
	ps.MemoEntries = 4
	ps.MemoHits = 3
	ps.MemoMisses = 1
	ps.MemoStores = 5
	s := ps.String()
	for _, want := range []string{"memo=4", "hits=3", "misses=1", "stores=5", "hit-ratio=75.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
	if got := ps.MemoHitRatio(); got != 0.75 {
		t.Errorf("MemoHitRatio = %v", got)
	}
	// No lookups at all: the ratio is 0, not NaN, and String stays terse.
	empty := NewParseStats(1)
	if got := empty.MemoHitRatio(); got != 0 {
		t.Errorf("empty ratio = %v", got)
	}
	if s := empty.String(); strings.Contains(s, "NaN") {
		t.Errorf("String() leaks NaN: %s", s)
	}
}

func TestParseStatsAggregation(t *testing.T) {
	ps := NewParseStats(3)
	ps.Decisions[1].CanBacktrack = true
	ps.Record(0, 1, false, 0)
	ps.Record(0, 3, false, 0)
	ps.Record(1, 5, true, 5)
	ps.Record(1, 1, false, 0)
	ps.Record(-1, 9, false, 0) // ignored
	ps.Record(99, 9, false, 0) // ignored

	if ps.TotalEvents() != 4 {
		t.Errorf("events = %d", ps.TotalEvents())
	}
	if ps.DecisionsCovered() != 2 {
		t.Errorf("covered = %d", ps.DecisionsCovered())
	}
	if got := ps.AvgK(); got != 2.5 {
		t.Errorf("avgK = %v", got)
	}
	if ps.MaxK() != 5 {
		t.Errorf("maxK = %d", ps.MaxK())
	}
	if ps.BacktrackEvents() != 1 {
		t.Errorf("backs = %d", ps.BacktrackEvents())
	}
	if got := ps.BacktrackRatio(); got != 0.25 {
		t.Errorf("ratio = %v", got)
	}
	if got := ps.AvgBacktrackK(); got != 5 {
		t.Errorf("backK = %v", got)
	}
	if ps.CanBacktrackCount() != 1 || ps.DidBacktrackCount() != 1 {
		t.Errorf("can/did = %d/%d", ps.CanBacktrackCount(), ps.DidBacktrackCount())
	}
	if got := ps.BacktrackTriggerRate(); got != 0.5 {
		t.Errorf("trigger rate = %v", got)
	}
	if ps.String() == "" {
		t.Error("empty String")
	}
}

func TestHooksEvalPred(t *testing.T) {
	var h Hooks
	ctx := &Context{Arg: 3}
	for _, tc := range []struct {
		text string
		want bool
	}{
		{"p <= 3", true},
		{"p <= 2", false},
		{"p < 4", true},
		{"p >= 3", true},
		{"p > 3", false},
		{"p == 3", true},
		{"p != 3", false},
	} {
		got, err := h.EvalPred(tc.text, ctx)
		if err != nil {
			t.Errorf("%q: %v", tc.text, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%q with arg 3: got %v", tc.text, got)
		}
	}
	// Unbound predicate errors.
	if _, err := h.EvalPred("isFoo()", ctx); err == nil {
		t.Error("unbound predicate must error")
	}
	// Bound predicate dispatches.
	h.Preds = map[string]func(*Context) bool{"isFoo()": func(*Context) bool { return true }}
	if ok, err := h.EvalPred("isFoo()", ctx); err != nil || !ok {
		t.Errorf("bound predicate: %v %v", ok, err)
	}
	// A non-nil Preds map that lacks the key still errors, naming the
	// predicate text.
	if _, err := h.EvalPred("isBar()", ctx); err == nil || !strings.Contains(err.Error(), "isBar()") {
		t.Errorf("missing-key predicate: %v", err)
	}
	// Bound-predicate text is trimmed before lookup.
	if ok, err := h.EvalPred("  isFoo()  ", ctx); err != nil || !ok {
		t.Errorf("trimmed predicate: %v %v", ok, err)
	}
}

func TestEvalArgComparisonMalformed(t *testing.T) {
	// None of these have the "<ident> OP <int>" shape; they must fall
	// through to Hooks.Preds (matched=false), not silently evaluate.
	for _, text := range []string{
		"p ?? 3",   // unknown operator
		"1 <= 3",   // literal lhs, not an identifier
		"p <= x",   // non-integer rhs
		"p <=",     // two fields
		"p",        // one field
		"p <= 3 4", // four fields
		"",         // empty
	} {
		if _, matched := evalArgComparison(text, 3); matched {
			t.Errorf("%q must not match as an arg comparison", text)
		}
	}
	// And EvalPred therefore reports them unbound.
	var h Hooks
	if _, err := h.EvalPred("1 <= 3", &Context{Arg: 3}); err == nil {
		t.Error("malformed comparison must be treated as unbound")
	}
}

func TestEvalRuleArg(t *testing.T) {
	for _, tc := range []struct {
		text   string
		caller int
		want   int
		err    bool
	}{
		{"", 7, 0, false},
		{"3", 7, 3, false},
		{"p", 7, 7, false},
		{"p + 1", 7, 8, false},
		{"p - 2", 7, 5, false},
		{"p+1", 7, 8, false}, // spacing is optional
		{"p-2", 7, 5, false},
		{"  p + 1  ", 7, 8, false},
		{"p * 2", 7, 0, true},
		{"wat?", 7, 0, true},
		{"p +", 7, 0, true},   // missing rhs
		{"+ 3", 7, 0, true},   // missing lhs (operator at index 0)
		{"2 + 2", 7, 0, true}, // lhs is not an identifier
		{"p + q", 7, 0, true}, // rhs is not an integer
	} {
		got, err := EvalRuleArg(tc.text, tc.caller)
		if (err != nil) != tc.err {
			t.Errorf("%q: err=%v", tc.text, err)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("%q: got %d want %d", tc.text, got, tc.want)
		}
	}
}

func TestSyntaxErrorFormat(t *testing.T) {
	e := &SyntaxError{
		Offending: token.Token{Text: "x", Pos: token.Pos{Line: 2, Col: 5}},
		Rule:      "expr",
		Msg:       "no viable alternative",
	}
	want := `2:5: rule expr: no viable alternative at "x"`
	if e.Error() != want {
		t.Errorf("got %q want %q", e.Error(), want)
	}
	eofErr := &SyntaxError{Offending: token.Token{Type: token.EOF}, Msg: "m"}
	if got := eofErr.Error(); got != `0:0: m at "<EOF>"` {
		t.Errorf("eof error: %q", got)
	}
}
