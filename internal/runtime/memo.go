package runtime

// Memoization (Section 6.2): while speculating, the parser records, per
// (rule, start position), whether the rule matched and where it stopped,
// so no input position is ever parsed by the same production twice —
// Ford's packrat guarantee. ANTLR (and this runtime) memoizes only while
// speculating, which is why less backtracking means a smaller cache.

// MemoFailed marks a (rule, position) pair that failed to match.
const MemoFailed = -2

// MemoTable memoizes speculative rule invocations.
type MemoTable struct {
	// byRule[rule][start] = stop index of a successful speculative match,
	// or MemoFailed. Synpred fragments get their own rows after the
	// parser rules.
	byRule []map[int]int
	hits   int
	misses int
	stores int
}

// NewMemoTable returns a table with rows rules.
func NewMemoTable(rows int) *MemoTable {
	return &MemoTable{byRule: make([]map[int]int, rows)}
}

// Get looks up a prior speculative parse of rule at start. ok reports
// whether an entry exists; stop is the recorded stop index or MemoFailed.
func (m *MemoTable) Get(rule, start int) (stop int, ok bool) {
	if m == nil || rule < 0 || rule >= len(m.byRule) || m.byRule[rule] == nil {
		if m != nil {
			m.misses++
		}
		return 0, false
	}
	stop, ok = m.byRule[rule][start]
	if ok {
		m.hits++
	} else {
		m.misses++
	}
	return stop, ok
}

// Put records the outcome of a speculative parse.
func (m *MemoTable) Put(rule, start, stop int) {
	if m == nil || rule < 0 || rule >= len(m.byRule) {
		return
	}
	if m.byRule[rule] == nil {
		m.byRule[rule] = make(map[int]int)
	}
	m.byRule[rule][start] = stop
	m.stores++
}

// Entries returns the number of memoized outcomes, the cache-size metric
// the paper discusses (O(|N|·n) worst case).
func (m *MemoTable) Entries() int {
	if m == nil {
		return 0
	}
	n := 0
	for _, row := range m.byRule {
		n += len(row)
	}
	return n
}

// Hits returns successful lookups.
func (m *MemoTable) Hits() int { return m.hits }

// Misses returns failed lookups.
func (m *MemoTable) Misses() int { return m.misses }

// Stores returns how many outcomes Put has recorded, including
// overwrites of an existing (rule, start) entry — which is why Stores
// can exceed Entries.
func (m *MemoTable) Stores() int { return m.stores }

// PruneBelow drops every entry whose start position is below min.
// Streaming parses call it when the token window slides: positions the
// parser has retired can never be looked up again, so their verdicts
// are dead weight.
func (m *MemoTable) PruneBelow(min int) {
	if m == nil {
		return
	}
	for _, row := range m.byRule {
		for start := range row {
			if start < min {
				delete(row, start)
			}
		}
	}
}

// Rebase adjusts the table for an edit that replaced token positions
// [damStart, damEnd) with damEnd-damStart+delta tokens. Entries are
// kept only when the speculation that produced them provably never
// examined a damaged token: margin is the parser's observed maximum
// lookahead depth, so a successful entry spanning [start, stop)
// examined at most margin-1 tokens past its stop — it survives in
// place when stop+margin <= damStart. Entries starting at or after the
// damage shift by delta: they examined only tokens that moved
// uniformly with the edit. Everything else is dropped, including every
// failed entry left of the damage — a failed speculation scans
// arbitrarily far before failing, so its extent cannot be bounded.
// Returns how many entries were kept and dropped.
func (m *MemoTable) Rebase(damStart, damEnd, delta, margin int) (kept, dropped int) {
	if m == nil {
		return 0, 0
	}
	if margin < 1 {
		margin = 1
	}
	for rule, row := range m.byRule {
		if len(row) == 0 {
			continue
		}
		next := make(map[int]int, len(row))
		for start, stop := range row {
			switch {
			case stop != MemoFailed && start < damStart && stop+margin <= damStart:
				next[start] = stop
				kept++
			case start >= damEnd:
				if stop == MemoFailed {
					next[start+delta] = stop
				} else {
					next[start+delta] = stop + delta
				}
				kept++
			default:
				dropped++
			}
		}
		m.byRule[rule] = next
	}
	return kept, dropped
}
