package runtime

import (
	"fmt"

	"llstar/internal/token"
)

// SyntaxError reports a parse failure at a specific token. Per
// Section 4.4, LL(*) parsers report the token that drove the lookahead
// DFA (or the deepest speculative parse) into an error state, not the
// token where prediction started.
type SyntaxError struct {
	// Offending is the token at which the failure was detected.
	Offending token.Token
	// Rule is the rule being parsed when the error surfaced.
	Rule string
	// Msg describes the failure ("no viable alternative", "expecting X",
	// "predicate failed", ...).
	Msg string
}

func (e *SyntaxError) Error() string {
	what := e.Offending.Text
	if e.Offending.Type == token.EOF {
		what = "<EOF>"
	}
	if e.Rule != "" {
		return fmt.Sprintf("%s: rule %s: %s at %q", e.Offending.Pos, e.Rule, e.Msg, what)
	}
	return fmt.Sprintf("%s: %s at %q", e.Offending.Pos, e.Msg, what)
}

// LexError reports a character the lexer could not match.
type LexError struct {
	Pos  token.Pos
	Rune rune
}

func (e *LexError) Error() string {
	return fmt.Sprintf("%s: cannot match character %q", e.Pos, e.Rune)
}

// ErrorListener receives syntax errors as they are detected; parsers call
// it before attempting recovery. A nil listener means errors are only
// returned.
type ErrorListener func(*SyntaxError)
