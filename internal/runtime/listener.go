package runtime

import "llstar/internal/token"

// ParseListener receives SAX-style parse events as the interpreter
// commits them. Callbacks fire only for non-speculative work — exactly
// where tree nodes would be created — so a listener that builds a tree
// reproduces the batch parse tree node for node. Callbacks run
// synchronously on the parsing goroutine; they must not call back into
// the parser.
type ParseListener interface {
	// EnterRule fires when a committed rule invocation begins. The root
	// rule of a parse is included.
	EnterRule(rule string)
	// ExitRule fires when that invocation ends, including when it
	// unwinds on a syntax error (every EnterRule gets a matching
	// ExitRule).
	ExitRule(rule string)
	// Token fires for each committed, consumed on-channel token, in
	// input order. Error-recovery insertions (match of a missing token)
	// do not fire; recovery deletions skip the deleted token.
	Token(t token.Token)
}
