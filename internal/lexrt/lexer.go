// Package lexrt is the lexer engine: it simulates the character-level
// ATN built from a grammar's lexer rules with maximal-munch semantics —
// longest match wins, and among rules matching the same longest prefix
// the one declared first (with implicit literals outranking named rules)
// wins. Matches from rules carrying a skip() action are discarded;
// channel(HIDDEN) rules are emitted off the default channel.
//
// For speed the engine performs subset construction on the fly: NFA
// configuration sets are interned as DFA states and transitions are
// memoized per rune, so steady-state lexing costs one map lookup per
// character (the same trick ANTLR's lexers use).
package lexrt

import (
	"sort"
	"strconv"
	"strings"

	"llstar/internal/atn"
	"llstar/internal/runtime"
	"llstar/internal/token"
)

// dfaState is an interned NFA configuration set with memoized rune
// transitions. accept is the best (lowest-index) lexer rule accepting in
// this set, or -1.
type dfaState struct {
	states []*atn.State
	accept int
	edges  map[rune]*dfaState // nil target = dead end, also memoized
}

// Lexer tokenizes an input string using a LexMachine. It implements
// runtime.TokenSource.
type Lexer struct {
	lm    *atn.LexMachine
	input []rune
	pos   int
	line  int
	col   int

	start    *dfaState
	interned map[string]*dfaState

	// scratch buffers for uncached transitions
	next []*atn.State
	seen []int
	gen  int
}

var _ runtime.TokenSource = (*Lexer)(nil)

// New returns a lexer over input.
func New(lm *atn.LexMachine, input string) *Lexer {
	lx := &Lexer{
		lm:       lm,
		input:    []rune(input),
		line:     1,
		col:      1,
		interned: make(map[string]*dfaState),
		seen:     make([]int, len(lm.States)),
	}
	// Copy the shared precomputed closure: intern sorts its argument in
	// place, and concurrent lexers share one LexMachine.
	lx.start = lx.intern(append([]*atn.State(nil), lm.Closure(lm.Start)...))
	return lx
}

// intern canonicalizes a configuration set into a shared dfaState.
func (l *Lexer) intern(states []*atn.State) *dfaState {
	sort.Slice(states, func(i, j int) bool { return states[i].ID < states[j].ID })
	var key strings.Builder
	for _, s := range states {
		key.WriteString(strconv.Itoa(s.ID))
		key.WriteByte('.')
	}
	if d, ok := l.interned[key.String()]; ok {
		return d
	}
	accept := -1
	for _, s := range states {
		if r := l.lm.AcceptRule(s); r >= 0 && (accept < 0 || r < accept) {
			accept = r
		}
	}
	d := &dfaState{states: states, accept: accept, edges: make(map[rune]*dfaState)}
	l.interned[key.String()] = d
	return d
}

// step computes (and memoizes) the successor of d on rune r.
func (l *Lexer) step(d *dfaState, r rune) *dfaState {
	if next, ok := d.edges[r]; ok {
		return next
	}
	l.gen++
	l.next = l.next[:0]
	for _, s := range d.states {
		for _, tr := range s.Trans {
			if tr.Kind == atn.TEpsilon || !tr.MatchesRune(r) {
				continue
			}
			for _, c := range l.lm.Closure(tr.To) {
				if l.seen[c.ID] != l.gen {
					l.seen[c.ID] = l.gen
					l.next = append(l.next, c)
				}
			}
		}
	}
	var next *dfaState
	if len(l.next) > 0 {
		next = l.intern(append([]*atn.State(nil), l.next...))
	}
	d.edges[r] = next
	return next
}

// NextToken implements runtime.TokenSource: it returns the next token on
// any channel (the token stream filters channels), an EOF token at end of
// input (repeatedly), or a *runtime.LexError.
func (l *Lexer) NextToken() (token.Token, error) {
	for {
		if l.pos >= len(l.input) {
			return token.Token{Type: token.EOF, Pos: token.Pos{Line: l.line, Col: l.col}}, nil
		}
		tok, skip, err := l.match()
		if err != nil {
			return token.Token{}, err
		}
		if skip {
			continue
		}
		return tok, nil
	}
}

// match runs one maximal-munch simulation from the current position.
func (l *Lexer) match() (token.Token, bool, error) {
	start := l.pos
	startPos := token.Pos{Line: l.line, Col: l.col}

	d := l.start
	bestEnd, bestRule := -1, -1
	if d.accept >= 0 {
		bestEnd, bestRule = start, d.accept
	}
	for i := start; i < len(l.input); i++ {
		d = l.step(d, l.input[i])
		if d == nil {
			break
		}
		if d.accept >= 0 {
			bestEnd, bestRule = i+1, d.accept
		}
	}

	if bestRule < 0 {
		return token.Token{}, false, &runtime.LexError{Pos: startPos, Rune: l.input[start]}
	}
	text := string(l.input[start:bestEnd])
	l.advance(start, bestEnd)
	info := l.lm.Rules[bestRule]
	if info.Skip {
		return token.Token{}, true, nil
	}
	return token.Token{Type: info.Type, Text: text, Pos: startPos, Channel: info.Channel}, false, nil
}

// advance updates line/col over input[start:end) and moves the cursor.
func (l *Lexer) advance(start, end int) {
	for i := start; i < end; i++ {
		if l.input[i] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
	}
	l.pos = end
}
