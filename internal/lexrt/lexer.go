// Package lexrt is the lexer engine: it simulates the character-level
// ATN built from a grammar's lexer rules with maximal-munch semantics —
// longest match wins, and among rules matching the same longest prefix
// the one declared first (with implicit literals outranking named rules)
// wins. Matches from rules carrying a skip() action are discarded;
// channel(HIDDEN) rules are emitted off the default channel.
//
// For speed the engine performs subset construction on the fly: NFA
// configuration sets are interned as DFA states and transitions are
// memoized per rune, so steady-state lexing costs one map lookup per
// character (the same trick ANTLR's lexers use).
//
// Two drivers share the engine: Lexer tokenizes a whole in-memory
// string, and ChunkLexer (chunk.go) tokenizes byte chunks arriving
// incrementally, suspending mid-token at buffer boundaries.
package lexrt

import (
	"sort"
	"strconv"
	"strings"
	"unicode/utf8"

	"llstar/internal/atn"
	"llstar/internal/runtime"
	"llstar/internal/token"
)

// dfaState is an interned NFA configuration set with memoized rune
// transitions. accept is the best (lowest-index) lexer rule accepting in
// this set, or -1.
type dfaState struct {
	states []*atn.State
	accept int
	edges  map[rune]*dfaState // nil target = dead end, also memoized
}

// engine holds the on-the-fly subset construction shared by the batch
// Lexer and the streaming ChunkLexer: the interned DFA states and the
// scratch buffers for uncached transitions. Not safe for concurrent use.
type engine struct {
	lm       *atn.LexMachine
	start    *dfaState
	interned map[string]*dfaState

	// scratch buffers for uncached transitions
	next []*atn.State
	seen []int
	gen  int
}

func (e *engine) init(lm *atn.LexMachine) {
	e.lm = lm
	e.interned = make(map[string]*dfaState)
	e.seen = make([]int, len(lm.States))
	// Copy the shared precomputed closure: intern sorts its argument in
	// place, and concurrent lexers share one LexMachine.
	e.start = e.intern(append([]*atn.State(nil), lm.Closure(lm.Start)...))
}

// intern canonicalizes a configuration set into a shared dfaState.
func (e *engine) intern(states []*atn.State) *dfaState {
	sort.Slice(states, func(i, j int) bool { return states[i].ID < states[j].ID })
	var key strings.Builder
	for _, s := range states {
		key.WriteString(strconv.Itoa(s.ID))
		key.WriteByte('.')
	}
	if d, ok := e.interned[key.String()]; ok {
		return d
	}
	accept := -1
	for _, s := range states {
		if r := e.lm.AcceptRule(s); r >= 0 && (accept < 0 || r < accept) {
			accept = r
		}
	}
	d := &dfaState{states: states, accept: accept, edges: make(map[rune]*dfaState)}
	e.interned[key.String()] = d
	return d
}

// step computes (and memoizes) the successor of d on rune r.
func (e *engine) step(d *dfaState, r rune) *dfaState {
	if next, ok := d.edges[r]; ok {
		return next
	}
	e.gen++
	e.next = e.next[:0]
	for _, s := range d.states {
		for _, tr := range s.Trans {
			if tr.Kind == atn.TEpsilon || !tr.MatchesRune(r) {
				continue
			}
			for _, c := range e.lm.Closure(tr.To) {
				if e.seen[c.ID] != e.gen {
					e.seen[c.ID] = e.gen
					e.next = append(e.next, c)
				}
			}
		}
	}
	var next *dfaState
	if len(e.next) > 0 {
		next = e.intern(append([]*atn.State(nil), e.next...))
	}
	d.edges[r] = next
	return next
}

// Lexer tokenizes an input string using a LexMachine. It implements
// runtime.TokenSource.
type Lexer struct {
	engine
	input []rune
	pos   int
	line  int
	col   int
	off   int // byte offset of input[pos] in the original string
}

var _ runtime.TokenSource = (*Lexer)(nil)

// New returns a lexer over input.
func New(lm *atn.LexMachine, input string) *Lexer {
	lx := &Lexer{
		input: []rune(input),
		line:  1,
		col:   1,
	}
	lx.engine.init(lm)
	return lx
}

// NextToken implements runtime.TokenSource: it returns the next token on
// any channel (the token stream filters channels), an EOF token at end of
// input (repeatedly), or a *runtime.LexError.
func (l *Lexer) NextToken() (token.Token, error) {
	for {
		if l.pos >= len(l.input) {
			return token.Token{Type: token.EOF, Pos: token.Pos{Line: l.line, Col: l.col}, Off: l.off}, nil
		}
		tok, skip, err := l.match()
		if err != nil {
			return token.Token{}, err
		}
		if skip {
			continue
		}
		return tok, nil
	}
}

// match runs one maximal-munch simulation from the current position.
func (l *Lexer) match() (token.Token, bool, error) {
	start := l.pos
	startPos := token.Pos{Line: l.line, Col: l.col}
	startOff := l.off

	d := l.start
	bestEnd, bestRule := -1, -1
	if d.accept >= 0 {
		bestEnd, bestRule = start, d.accept
	}
	for i := start; i < len(l.input); i++ {
		d = l.step(d, l.input[i])
		if d == nil {
			break
		}
		if d.accept >= 0 {
			bestEnd, bestRule = i+1, d.accept
		}
	}

	if bestRule < 0 {
		return token.Token{}, false, &runtime.LexError{Pos: startPos, Rune: l.input[start]}
	}
	text := string(l.input[start:bestEnd])
	l.advance(start, bestEnd)
	info := l.lm.Rules[bestRule]
	if info.Skip {
		return token.Token{}, true, nil
	}
	return token.Token{Type: info.Type, Text: text, Pos: startPos, Off: startOff, Channel: info.Channel}, false, nil
}

// advance updates line/col/off over input[start:end) and moves the cursor.
func (l *Lexer) advance(start, end int) {
	for i := start; i < end; i++ {
		if l.input[i] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.off += utf8.RuneLen(l.input[i])
	}
	l.pos = end
}
