package lexrt

import (
	"os"
	"path/filepath"
	"testing"

	"llstar/internal/atn"
	"llstar/internal/meta"
	"llstar/internal/token"
)

func buildLex(t *testing.T, src string) *atn.LexMachine {
	t.Helper()
	g, err := meta.Parse("t.g", src)
	if err != nil {
		t.Fatalf("grammar: %v", err)
	}
	// No grammar.Validate here: only the lexer half is exercised, and
	// some repo grammars (calc.g) are left-recursive before rewriting.
	m, err := atn.Build(g)
	if err != nil {
		t.Fatalf("atn: %v", err)
	}
	return m.Lex
}

// chunkAll runs the chunk lexer over input split at the given byte
// offsets, pumping tokens out between feeds the way a session would.
func chunkAll(t *testing.T, lm *atn.LexMachine, input string, cuts []int) ([]token.Token, error) {
	t.Helper()
	c := NewChunk(lm)
	var out []token.Token
	drain := func() error {
		for {
			tok, ok, err := c.Next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if tok.IsEOF() {
				out = append(out, tok)
				return nil
			}
			out = append(out, tok)
		}
	}
	prev := 0
	for _, cut := range cuts {
		c.Feed([]byte(input[prev:cut]))
		if err := drain(); err != nil {
			return out, err
		}
		prev = cut
	}
	c.Feed([]byte(input[prev:]))
	if err := drain(); err != nil {
		return out, err
	}
	c.Finish()
	err := drain()
	return out, err
}

// batchAll runs the batch lexer and appends its EOF token, for
// comparison with chunkAll output.
func batchAll(t *testing.T, lm *atn.LexMachine, input string) ([]token.Token, error) {
	t.Helper()
	lx := New(lm, input)
	var out []token.Token
	for {
		tok, err := lx.NextToken()
		if err != nil {
			return out, err
		}
		out = append(out, tok)
		if tok.IsEOF() {
			return out, nil
		}
	}
}

func sameToks(a, b []token.Token) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		// Index is assigned by the token stream, not the lexer.
		x.Index, y.Index = 0, 0
		if x != y {
			return false
		}
	}
	return true
}

const tortureGrammar = `
grammar T;
s : ID ;
ARROW : '->' ;
SHIFT : '<<' | '>>' ;
LE : '<=' ;
EQ : '==' ;
ASSIGN : '=' ;
LT : '<' ;
GT : '>' ;
MINUS : '-' ;
STRING : '"' (~('"'|'\\') | '\\' .)* '"' ;
ID : ('a'..'z'|'A'..'Z'|'\u00c0'..'\uffff')+ ;
INT : ('0'..'9')+ ;
WS : (' '|'\t'|'\r'|'\n')+ { skip(); } ;
`

// TestChunkBoundaryTorture splits inputs containing multi-character
// operators, escaped strings, and multi-byte UTF-8 runes at every byte
// offset (all 2-chunk splits, plus 3-chunk splits on a stride) and
// requires the token sequence to be byte-identical to the batch
// lexer's.
func TestChunkBoundaryTorture(t *testing.T) {
	lm := buildLex(t, tortureGrammar)
	inputs := []string{
		"a->b <= c << d >> e == f = g",
		`"hello \"world\" \\ end" abc`,
		"caf\u00e9 \u4e16\u754c \u6f22\u5b57x 42",
		"<<<=<<=->-x=== \"q\"",
		`"unclosed-at-first-chunk \" more" tail`,
	}
	for _, input := range inputs {
		want, werr := batchAll(t, lm, input)
		if werr != nil {
			t.Fatalf("batch lex %q: %v", input, werr)
		}
		n := len(input)
		for cut := 0; cut <= n; cut++ {
			got, err := chunkAll(t, lm, input, []int{cut})
			if err != nil {
				t.Fatalf("chunk lex %q cut=%d: %v", input, cut, err)
			}
			if !sameToks(got, want) {
				t.Fatalf("chunk lex %q cut=%d:\n got %+v\nwant %+v", input, cut, got, want)
			}
		}
		for c1 := 0; c1 <= n; c1 += 2 {
			for c2 := c1; c2 <= n; c2 += 3 {
				got, err := chunkAll(t, lm, input, []int{c1, c2})
				if err != nil {
					t.Fatalf("chunk lex %q cuts=%d,%d: %v", input, c1, c2, err)
				}
				if !sameToks(got, want) {
					t.Fatalf("chunk lex %q cuts=%d,%d mismatch", input, c1, c2)
				}
			}
		}
	}
}

// TestChunkRepoGrammars checks every 2-chunk split against the batch
// lexer for the four repository grammars.
func TestChunkRepoGrammars(t *testing.T) {
	cases := []struct {
		file  string
		input string
	}{
		{"calc.g", "1 + 23*(456 - 7) / 89"},
		{"figure1.g", "unsigned unsigned int x\ny = 42"},
		{"figure2.g", "- - abc"},
		{"json.g", `{"k\u00e9y": [1.5e-3, true, "v\\\"al"], "n": null}`},
	}
	for _, tc := range cases {
		src, err := os.ReadFile(filepath.Join("..", "..", "grammars", tc.file))
		if err != nil {
			t.Fatalf("read %s: %v", tc.file, err)
		}
		lm := buildLex(t, string(src))
		want, werr := batchAll(t, lm, tc.input)
		if werr != nil {
			t.Fatalf("%s: batch lex: %v", tc.file, werr)
		}
		for cut := 0; cut <= len(tc.input); cut++ {
			got, err := chunkAll(t, lm, tc.input, []int{cut})
			if err != nil {
				t.Fatalf("%s cut=%d: %v", tc.file, cut, err)
			}
			if !sameToks(got, want) {
				t.Fatalf("%s cut=%d:\n got %+v\nwant %+v", tc.file, cut, got, want)
			}
		}
	}
}

// TestChunkInvalidUTF8Deterministic: invalid bytes decode the same way
// regardless of chunking (the batch lexer is not compared here — its
// byte-offset accounting assumes valid UTF-8).
func TestChunkInvalidUTF8Deterministic(t *testing.T) {
	lm := buildLex(t, tortureGrammar)
	input := "ab\xffcd \xc3("
	want, werr := chunkAll(t, lm, input, nil)
	for cut := 0; cut <= len(input); cut++ {
		got, err := chunkAll(t, lm, input, []int{cut})
		if (err == nil) != (werr == nil) {
			t.Fatalf("cut=%d: err=%v want %v", cut, err, werr)
		}
		if !sameToks(got, want) {
			t.Fatalf("cut=%d: %+v want %+v", cut, got, want)
		}
	}
}

// TestChunkEOFForever: after Finish, Next returns EOF indefinitely.
func TestChunkEOFForever(t *testing.T) {
	lm := buildLex(t, tortureGrammar)
	c := NewChunk(lm)
	c.Feed([]byte("ab"))
	c.Finish()
	sawEOF := 0
	for i := 0; i < 5; i++ {
		tok, ok, err := c.Next()
		if err != nil || !ok {
			t.Fatalf("next: ok=%v err=%v", ok, err)
		}
		if tok.IsEOF() {
			sawEOF++
		}
	}
	if sawEOF != 4 {
		t.Fatalf("EOF count = %d, want 4", sawEOF)
	}
}

// TestChunkUnits: unit extents record how far each match scanned —
// the soundness anchor for incremental relexing. A token whose DFA is
// still alive at forced end of input (here the trailing ID) reports an
// unbounded extent, since appending bytes could extend it.
func TestChunkUnits(t *testing.T) {
	lm := buildLex(t, tortureGrammar)
	c := NewChunk(lm)
	c.RecordUnits()
	c.Feed([]byte(`ab "c" xy`))
	c.Finish()
	for {
		tok, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("starved before EOF")
		}
		if tok.IsEOF() {
			break
		}
	}
	units := c.Units()
	// ID WS STRING WS ID.
	if len(units) != 5 {
		t.Fatalf("units = %+v, want 5", units)
	}
	// ID "ab" at offset 0: maximal munch examined the space at offset 2,
	// so its extent is 3 (exclusive).
	if units[0].Off != 0 || units[0].Extent != 3 {
		t.Fatalf("unit 0 = %+v, want Off=0 Extent=3", units[0])
	}
	// STRING "c" at offset 3 stops dead at its closing quote: the DFA
	// examined through offset 6 plus the following space.
	if units[2].Off != 3 || units[2].Extent != 7 {
		t.Fatalf("unit 2 = %+v, want Off=3 Extent=7", units[2])
	}
	last := units[len(units)-1]
	if last.Off != 7 || last.Extent != UnboundedExtent {
		t.Fatalf("last unit = %+v, want Off=7 unbounded extent", last)
	}
}

// TestChunkPendingBounded: feeding many complete small tokens keeps the
// pending tail tiny — the lexer's buffer tracks the longest pending
// token, not the input.
func TestChunkPendingBounded(t *testing.T) {
	lm := buildLex(t, tortureGrammar)
	c := NewChunk(lm)
	for i := 0; i < 10000; i++ {
		c.Feed([]byte("abc 123 "))
		for {
			_, ok, err := c.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
		}
		if p := c.Pending(); p > 8 {
			t.Fatalf("pending = %d after chunk %d, want small", p, i)
		}
	}
}
