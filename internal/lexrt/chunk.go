package lexrt

import (
	"unicode/utf8"

	"llstar/internal/atn"
	"llstar/internal/runtime"
	"llstar/internal/token"
)

// chunkCompactAt is the consumed-rune threshold past which the
// ChunkLexer copies its unconsumed tail to the front of the buffer.
// Amortized O(1) per rune; keeps retained memory proportional to the
// longest pending token, not the input.
const chunkCompactAt = 4096

// ChunkLexer tokenizes input that arrives in byte chunks. Tokens never
// split across chunk boundaries: when the DFA is still alive at the end
// of the buffered input the match is tentative — more bytes could
// extend it under maximal munch — so Next reports "need more input" and
// the unconsumed tail (including any partial UTF-8 sequence) is kept
// until the next Feed or Finish. Given the same bytes, the token
// sequence is identical to the batch Lexer's regardless of how the
// input is sliced into chunks.
type ChunkLexer struct {
	engine
	buf      []byte  // undecoded bytes: at most one partial UTF-8 rune between Feeds
	runes    []rune  // decoded, not-yet-consumed window
	sizes    []uint8 // byte width of each rune in runes (actual source bytes, not re-encoded)
	pos      int     // next unconsumed rune in runes
	line     int
	col      int
	off      int // byte offset of runes[pos] in the overall input
	finished bool

	record bool
	units  []Unit
}

// Unit records one completed maximal-munch match — emitted, hidden, or
// skipped — with the byte extent its DFA simulation examined.
// Incremental relexing uses extents to find the earliest lexeme an edit
// can affect: a unit is untouched by a change at byte b iff Extent <= b.
type Unit struct {
	Off  int // byte offset of the unit's first byte
	Line int // 1-based start line
	Col  int // 1-based start column
	// Extent is the exclusive byte offset of the last byte the match
	// examined (maximal munch scans past the accepted end until the DFA
	// dies). UnboundedExtent when the DFA was still alive at forced end
	// of input — any append could have extended the match.
	Extent int
}

// UnboundedExtent marks a unit whose match was still extensible at end
// of input.
const UnboundedExtent = int(^uint(0) >> 2)

// NewChunk returns a chunk-fed lexer. Feed it bytes, then call Finish
// once the input ends.
func NewChunk(lm *atn.LexMachine) *ChunkLexer {
	c := &ChunkLexer{line: 1, col: 1}
	c.engine.init(lm)
	return c
}

// SetPosition overrides the position bookkeeping for the next token.
// Incremental reparse uses it to relex from the middle of a document
// with correct byte offsets and line/column numbers.
func (c *ChunkLexer) SetPosition(off, line, col int) {
	c.off, c.line, c.col = off, line, col
}

// Position returns the current byte offset and line/column — the start
// of the next unit to be matched.
func (c *ChunkLexer) Position() (off, line, col int) { return c.off, c.line, c.col }

// RecordUnits enables unit recording (see Unit). Incremental sessions
// turn it on so edits can locate safe relex restart points.
func (c *ChunkLexer) RecordUnits() { c.record = true }

// Units returns the units recorded so far, in input order.
func (c *ChunkLexer) Units() []Unit { return c.units }

// Feed appends a chunk of input bytes. It never blocks and never
// returns tokens — call Next until it reports no complete token.
func (c *ChunkLexer) Feed(p []byte) {
	c.buf = append(c.buf, p...)
	c.decode()
}

// Finish marks end of input: pending tentative matches become final and
// any trailing partial UTF-8 sequence decodes as replacement runes.
func (c *ChunkLexer) Finish() {
	c.finished = true
	c.decode()
}

// Finished reports whether Finish has been called.
func (c *ChunkLexer) Finished() bool { return c.finished }

// Pending returns the number of buffered, unconsumed runes — the
// tail held back waiting for a token boundary.
func (c *ChunkLexer) Pending() int { return len(c.runes) - c.pos }

// decode converts complete UTF-8 sequences from buf into runes. An
// incomplete trailing sequence waits for more bytes (unless finished);
// genuinely invalid bytes decode as width-1 U+FFFD, matching what
// []rune(string) produces for the same bytes.
func (c *ChunkLexer) decode() {
	n := 0
	for n < len(c.buf) {
		r, size := utf8.DecodeRune(c.buf[n:])
		if r == utf8.RuneError && size == 1 && !c.finished && !utf8.FullRune(c.buf[n:]) {
			break // possibly a rune prefix: wait for the next chunk
		}
		c.runes = append(c.runes, r)
		c.sizes = append(c.sizes, uint8(size))
		n += size
	}
	if n > 0 {
		c.buf = append(c.buf[:0], c.buf[n:]...)
	}
}

// Next returns the next token. ok=false means no complete token is
// available yet: either the buffer is empty or the DFA can still extend
// the current match — feed more bytes or call Finish. After Finish,
// Next drains the remaining tokens and then returns EOF forever.
func (c *ChunkLexer) Next() (token.Token, bool, error) {
	for {
		if c.pos >= len(c.runes) {
			if !c.finished {
				return token.Token{}, false, nil
			}
			return token.Token{Type: token.EOF, Pos: token.Pos{Line: c.line, Col: c.col}, Off: c.off}, true, nil
		}
		tok, skip, ok, err := c.match()
		if err != nil || !ok {
			return token.Token{}, ok, err
		}
		c.compact()
		if skip {
			continue
		}
		return tok, true, nil
	}
}

// match mirrors Lexer.match with one extra outcome: a match whose DFA
// is still alive at the end of the buffered runes is tentative unless
// the input is finished.
func (c *ChunkLexer) match() (tok token.Token, skip, ok bool, err error) {
	start := c.pos
	startPos := token.Pos{Line: c.line, Col: c.col}
	startOff := c.off

	d := c.start
	bestEnd, bestRule := -1, -1
	if d.accept >= 0 {
		bestEnd, bestRule = start, d.accept
	}
	scan := 0 // bytes examined by the DFA simulation
	for i := start; i < len(c.runes); i++ {
		scan += int(c.sizes[i])
		d = c.step(d, c.runes[i])
		if d == nil {
			break
		}
		if d.accept >= 0 {
			bestEnd, bestRule = i+1, d.accept
		}
	}
	if d != nil && !c.finished {
		return token.Token{}, false, false, nil
	}
	if bestRule < 0 {
		return token.Token{}, false, false, &runtime.LexError{Pos: startPos, Rune: c.runes[start]}
	}
	if c.record {
		extent := startOff + scan
		if d != nil {
			// Still alive at end of input: an append could extend it.
			extent = UnboundedExtent
		}
		c.units = append(c.units, Unit{Off: startOff, Line: startPos.Line, Col: startPos.Col, Extent: extent})
	}
	text := string(c.runes[start:bestEnd])
	c.advance(start, bestEnd)
	info := c.lm.Rules[bestRule]
	if info.Skip {
		return token.Token{}, true, true, nil
	}
	return token.Token{Type: info.Type, Text: text, Pos: startPos, Off: startOff, Channel: info.Channel}, false, true, nil
}

// advance updates line/col/off over runes[start:end) and moves the cursor.
func (c *ChunkLexer) advance(start, end int) {
	for i := start; i < end; i++ {
		if c.runes[i] == '\n' {
			c.line++
			c.col = 1
		} else {
			c.col++
		}
		c.off += int(c.sizes[i])
	}
	c.pos = end
}

// compact drops consumed runes once enough have accumulated.
func (c *ChunkLexer) compact() {
	if c.pos < chunkCompactAt {
		return
	}
	n := copy(c.runes, c.runes[c.pos:])
	copy(c.sizes, c.sizes[c.pos:])
	c.runes = c.runes[:n]
	c.sizes = c.sizes[:n]
	c.pos = 0
}
