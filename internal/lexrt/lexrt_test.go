package lexrt

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"llstar/internal/atn"
	"llstar/internal/grammar"
	"llstar/internal/meta"
	"llstar/internal/runtime"
	"llstar/internal/token"
)

func lexAll(t *testing.T, src, input string) ([]token.Token, error) {
	t.Helper()
	g, err := meta.Parse("t.g", src)
	if err != nil {
		t.Fatalf("grammar: %v", err)
	}
	if err := grammar.FirstFatal(grammar.Validate(g)); err != nil {
		t.Fatalf("validate: %v", err)
	}
	m, err := atn.Build(g)
	if err != nil {
		t.Fatalf("atn: %v", err)
	}
	lx := New(m.Lex, input)
	var out []token.Token
	for {
		tok, err := lx.NextToken()
		if err != nil {
			return out, err
		}
		if tok.Type == token.EOF {
			return out, nil
		}
		out = append(out, tok)
	}
}

const lexGrammar = `
grammar L;
s : ID ;
ID : ('a'..'z'|'_') ('a'..'z'|'0'..'9'|'_')* ;
INT : ('0'..'9')+ ;
FLOAT : ('0'..'9')+ '.' ('0'..'9')+ ;
WS : (' '|'\t'|'\n')+ { skip(); } ;
`

func kinds(g string, toks []token.Token) string {
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = t.Text
	}
	return strings.Join(parts, "|")
}

func TestLexBasics(t *testing.T) {
	toks, err := lexAll(t, lexGrammar, "abc 12 3.5 x_1")
	if err != nil {
		t.Fatal(err)
	}
	if got := kinds("", toks); got != "abc|12|3.5|x_1" {
		t.Errorf("tokens: %s", got)
	}
}

// Maximal munch: FLOAT beats INT '.' INT; longest ID wins.
func TestLongestMatch(t *testing.T) {
	toks, err := lexAll(t, lexGrammar, "12.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || toks[0].Text != "12.5" {
		t.Errorf("want one FLOAT token, got %v", toks)
	}
}

// Literals used in parser rules outrank named lexer rules on equal-length
// matches: 'if' lexes as the literal, 'iffy' as ID.
func TestLiteralPriority(t *testing.T) {
	src := `
grammar K;
s : 'if' ID ;
ID : ('a'..'z')+ ;
WS : (' ')+ { skip(); } ;
`
	g, err := meta.Parse("t.g", src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := atn.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	lx := New(m.Lex, "if iffy")
	t1, _ := lx.NextToken()
	t2, _ := lx.NextToken()
	if t1.Type != g.Vocab.Literal("if") {
		t.Errorf("'if' should lex as literal, got type %d", t1.Type)
	}
	if t2.Type != g.Vocab.Lookup("ID") || t2.Text != "iffy" {
		t.Errorf("'iffy' should lex as ID, got %v", t2)
	}
}

func TestPositions(t *testing.T) {
	toks, err := lexAll(t, lexGrammar, "ab\n  cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("first pos: %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("second pos: %v", toks[1].Pos)
	}
}

func TestLexError(t *testing.T) {
	_, err := lexAll(t, lexGrammar, "ab @")
	le, ok := err.(*runtime.LexError)
	if !ok {
		t.Fatalf("want LexError, got %v", err)
	}
	if le.Rune != '@' || le.Pos.Col != 4 {
		t.Errorf("error detail: %v", le)
	}
}

// Block comments with the (~'*' | '*'+ ~('/'|'*'))* '*'+ '/' shape must
// stop at the first terminator, not the last.
func TestBlockCommentNonGreedy(t *testing.T) {
	src := `
grammar C;
s : ID ;
ID : ('a'..'z')+ ;
WS : (' ')+ { skip(); } ;
COMMENT : '/*' (~('*') | ('*')+ ~('/'|'*'))* ('*')+ '/' { skip(); } ;
`
	toks, err := lexAll(t, src, "/* one */ mid /* two **/ end")
	if err != nil {
		t.Fatal(err)
	}
	if got := kinds("", toks); got != "mid|end" {
		t.Errorf("comment handling: %s", got)
	}
}

// Fragments inline; recursive lexer rules are rejected at build time.
func TestFragmentsAndRecursion(t *testing.T) {
	src := `
grammar F;
s : NUM ;
fragment DIGIT : '0'..'9' ;
NUM : DIGIT (DIGIT)* ;
`
	toks, err := lexAll(t, src, "123")
	if err != nil || len(toks) != 1 {
		t.Fatalf("fragment lexing: %v %v", toks, err)
	}

	bad := `
grammar R;
s : A ;
A : 'x' A | 'y' ;
`
	g, err := meta.Parse("t.g", bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atn.Build(g); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("recursive lexer rule must be rejected, got %v", err)
	}
}

// Property: lexing the space-joined rendering of random tokens yields
// exactly those tokens back (round-trip through the on-the-fly DFA
// cache), for any interleaving and length.
func TestLexRoundTripProperty(t *testing.T) {
	g, err := meta.Parse("t.g", lexGrammar)
	if err != nil {
		t.Fatal(err)
	}
	m, err := atn.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	id, in, fl := g.Vocab.Lookup("ID"), g.Vocab.Lookup("INT"), g.Vocab.Lookup("FLOAT")
	samples := []struct {
		text string
		typ  token.Type
	}{
		{"abc", id}, {"x", id}, {"zz_9", id},
		{"0", in}, {"42", in}, {"123456", in},
		{"1.5", fl}, {"0.001", fl},
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(30)
		var parts []string
		var want []token.Type
		for i := 0; i < n; i++ {
			s := samples[r.Intn(len(samples))]
			parts = append(parts, s.text)
			want = append(want, s.typ)
		}
		lx := New(m.Lex, strings.Join(parts, " "))
		for i := 0; ; i++ {
			tok, err := lx.NextToken()
			if err != nil {
				return false
			}
			if tok.Type == token.EOF {
				return i == len(want)
			}
			if i >= len(want) || tok.Type != want[i] || tok.Text != parts[i] {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// EOF repeats forever once reached.
func TestEOFSticky(t *testing.T) {
	g, _ := meta.Parse("t.g", lexGrammar)
	m, _ := atn.Build(g)
	lx := New(m.Lex, "a")
	lx.NextToken()
	for i := 0; i < 3; i++ {
		tok, err := lx.NextToken()
		if err != nil || tok.Type != token.EOF {
			t.Fatalf("EOF not sticky: %v %v", tok, err)
		}
	}
}
