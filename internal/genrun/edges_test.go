package genrun

import (
	"strings"
	"testing"

	"llstar"
)

// synpredGrammar forces a syntactic-predicate fallback decision: stmt's
// first alternative is gated by (ID '=')=>, so the generated parser
// must speculate before committing, with PEG-mode backtracking behind
// every other ambiguous decision.
const synpredGrammar = `
grammar Stmt;
options { backtrack=true; memoize=true; }
prog : (stmt)+ ;
stmt : (ID '=')=> ID '=' sum ';'
     | sum ';'
     ;
sum  : prod (('+' | '-') prod)* ;
prod : atom (('*' | '/') atom)* ;
atom : INT
     | ID
     | '(' sum ')'
     | '-' atom
     ;
ID : ('a'..'z')+ ;
INT : ('0'..'9')+ ;
WS : (' '|'\t'|'\r'|'\n')+ { skip(); } ;
`

// TestGeneratedMemoizeToggle runs the checked-in figure2 parser — a
// PEG-mode grammar whose decisions actually speculate — with
// memoization forced on and forced off, asserting both modes produce
// identical verdicts, trees, and error positions (memoization is a pure
// speedup, never a semantic change).
func TestGeneratedMemoizeToggle(t *testing.T) {
	run := checkedIn["figure2"]
	on, off := true, false
	inputs := []string{
		"x", "-x", "---abc", "-5", "--42",
		"", "-", "--", "x-", "5 5",
		strings.Repeat("-", 40) + "zz",
		strings.Repeat("-", 40), // dies after deep speculation
	}
	for _, input := range inputs {
		got1 := run("t", input, &on, true)
		got2 := run("t", input, &off, true)
		if got1 != got2 {
			t.Errorf("memoize changed the verdict for %q:\n  on:  %+v\n  off: %+v", input, got1, got2)
		}
	}
}

// TestGeneratedSynpredFallback builds a parser for a grammar with an
// explicit (ID '=')=> syntactic predicate and checks the generated
// speculation machinery picks the right alternative in both directions,
// matching the interpreter exactly — including when the synpred
// succeeds but the committed parse then fails.
func TestGeneratedSynpredFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("builds Go modules")
	}
	g, err := llstar.LoadWith("stmt.g", synpredGrammar, llstar.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Build(g, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	inputs := []string{
		"x = 1 + 2;",        // synpred succeeds -> assignment alt
		"1 + 2;",            // synpred fails on INT -> expression alt
		"x + 2;",            // ID but no '=' -> synpred fails, expression alt
		"x = y = 1;",        // synpred succeeds, committed parse fails at inner '='
		"a = 1; b + 2; c;",  // mixed statements, loop re-predicts per stmt
		"x = (a + 1) * -b;", // assignment with nested speculation in atom
		"x =",               // synpred succeeds, commit fails at EOF
		"= 1;",              // neither alt viable
		"x = 1 + 2; 3 * 4;", // assignment then expression
		"-(-(-1)) - -2;",    // unary chain, expression alt
	}
	for _, input := range inputs {
		got, err := r.Do(Request{Rule: "prog", Input: input, Tree: true})
		if err != nil {
			t.Fatalf("%q: %v", input, err)
		}
		checkParity(t, input, interpVerdict(g, "prog", input), got)
	}
}

// TestGeneratedDeepSpeculation drives the checked-in parsers with
// inputs that force maximal speculation depth: hundreds of nested
// parens on calc (deep rule recursion inside a precedence loop) and
// long '-' prefixes on figure2 (the PEG-mode decision must speculate to
// the end of the prefix before choosing an alternative). The generated
// engine must agree with the interpreter on both acceptance and the
// failure position when the nesting is left unclosed.
func TestGeneratedDeepSpeculation(t *testing.T) {
	const depth = 200
	cases := []struct {
		pkg, grammar, start string
		inputs              []string
	}{
		{
			pkg: "calc", grammar: "calc.g", start: "e",
			inputs: []string{
				strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth),
				strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth-1), // unclosed
				strings.Repeat("(", depth) + strings.Repeat(")", depth),         // empty core
				strings.Repeat("1+", depth) + "1",
			},
		},
		{
			pkg: "figure2", grammar: "figure2.g", start: "t",
			inputs: []string{
				strings.Repeat("-", 500) + "abc",
				strings.Repeat("-", 500) + "7",
				strings.Repeat("-", 500), // speculation runs off the end
			},
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.pkg, func(t *testing.T) {
			var rg repoGrammar
			for _, r := range repoGrammars {
				if r.File == c.grammar {
					rg = r
				}
			}
			g := loadRepoGrammar(t, rg)
			run := checkedIn[c.pkg]
			for _, input := range c.inputs {
				got := run(c.start, input, nil, true)
				label := input
				if len(label) > 24 {
					label = label[:24] + "..."
				}
				checkParity(t, label, interpVerdict(g, c.start, input), got)
			}
		})
	}
}
