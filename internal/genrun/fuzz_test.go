package genrun

import (
	"strings"
	"testing"

	"llstar"
)

// FuzzGeneratedParser is the differential fuzz target: every input is
// fed to the interpreter and to the checked-in generated calc and
// figure2 parsers (the two grammars that exercise precedence loops and
// PEG-mode speculation), and any divergence in accept/reject, tree
// shape, or error position fails. Runs in-process so `go test -fuzz`
// iterates at full speed with no subprocess round trips.
func FuzzGeneratedParser(f *testing.F) {
	type target struct {
		rg  repoGrammar
		g   *llstar.Grammar
		run runFunc
	}
	var targets []target
	for _, rg := range repoGrammars {
		if rg.File != "calc.g" && rg.File != "figure2.g" {
			continue
		}
		targets = append(targets, target{rg, loadRepoGrammar(f, rg), checkedIn[strings.TrimSuffix(rg.File, ".g")]})
		for _, s := range rg.Valid {
			f.Add(s)
		}
		for _, s := range rg.Invalid {
			f.Add(s)
		}
	}
	f.Add("((1+2)*3)-4/5")
	f.Add("----x")
	f.Add(strings.Repeat("(", 50) + "1")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<12 {
			t.Skip("input too large")
		}
		for _, tg := range targets {
			got := tg.run(tg.rg.Start, input, nil, true)
			checkParity(t, tg.rg.File, interpVerdict(tg.g, tg.rg.Start, input), got)
		}
	})
}
