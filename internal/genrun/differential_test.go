package genrun

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"llstar"
	"llstar/internal/bench"
	"llstar/internal/runtime"
)

// repoGrammar describes one checked-in grammar under grammars/ with its
// start rule and differential corpus seeds.
type repoGrammar struct {
	File    string
	Start   string
	LeftRec bool
	Valid   []string
	Invalid []string
}

var repoGrammars = []repoGrammar{
	{
		File:  "figure1.g",
		Start: "s",
		Valid: []string{
			"x",
			"x = 3",
			"unsigned int x",
			"unsigned unsigned int x",
			"unsigned unsigned x y",
			"int x",
			"x y",
		},
		Invalid: []string{
			"",
			"x =",
			"= 3",
			"unsigned",
			"unsigned int",
			"x y z",
			"3",
			"x @ y",
		},
	},
	{
		File:  "figure2.g",
		Start: "t",
		Valid: []string{
			"x",
			"-x",
			"---abc",
			"5",
			"-5",
			"--42",
		},
		Invalid: []string{
			"",
			"-",
			"--",
			"x-",
			"5 5",
			"x!",
		},
	},
	{
		File:  "json.g",
		Start: "value",
		Valid: []string{
			`[1, {"a": true}]`,
			`{"k": [1, 2.5e-3, "s"], "m": {}}`,
			`"str"`,
			`-0.5`,
			`[[], [null, false]]`,
		},
		Invalid: []string{
			"",
			`[1,]`,
			`{"a" 1}`,
			`{a: 1}`,
			`[1, 2`,
			`tru`,
			`[1] extra`,
		},
	},
	{
		File:    "calc.g",
		Start:   "e",
		LeftRec: true,
		Valid: []string{
			"1",
			"1+2*3",
			"(1+2)*3",
			"1-2/3+4",
			"((((5))))",
			"1*2*3*4-5",
		},
		Invalid: []string{
			"",
			"1+",
			"*3",
			"(1+2",
			"1 2",
			"1+%",
		},
	},
}

// loadRepoGrammar loads grammars/<file> with the same options make
// generate uses for the checked-in parsers.
func loadRepoGrammar(t testing.TB, rg repoGrammar) *llstar.Grammar {
	t.Helper()
	path := filepath.Join("..", "..", "grammars", rg.File)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	g, err := llstar.LoadWith(path, string(data), llstar.LoadOptions{
		RewriteLeftRecursion: rg.LeftRec,
	})
	if err != nil {
		t.Fatalf("load %s: %v", rg.File, err)
	}
	return g
}

// corpus expands valid seeds with the differential mutations (truncate,
// delete a mid-input byte) and appends explicit invalid inputs.
func corpus(valid, invalid []string) map[string]string {
	out := map[string]string{}
	for i, v := range valid {
		out[fmt.Sprintf("valid-%d", i)] = v
		if len(v) > 4 {
			out[fmt.Sprintf("trunc-%d", i)] = v[:len(v)*3/5]
			mid := len(v) / 2
			out[fmt.Sprintf("del-%d", i)] = v[:mid] + v[mid+1:]
		}
	}
	for i, v := range invalid {
		out[fmt.Sprintf("invalid-%d", i)] = v
	}
	return out
}

// interpVerdict runs the interpreter and normalizes its outcome into
// the driver's response shape for comparison.
type verdict struct {
	ok         bool
	tree       string
	line, col  int
	lexErr     bool
	hasSyntax  bool
	errMessage string
}

func interpVerdict(g *llstar.Grammar, start, input string) verdict {
	p := g.NewParser(llstar.WithTree())
	tree, err := p.Parse(start, input)
	if err == nil {
		return verdict{ok: true, tree: tree.String()}
	}
	switch e := err.(type) {
	case *llstar.SyntaxError:
		return verdict{line: e.Offending.Pos.Line, col: e.Offending.Pos.Col, hasSyntax: true, errMessage: e.Error()}
	case *runtime.LexError:
		return verdict{line: e.Pos.Line, col: e.Pos.Col, lexErr: true, errMessage: e.Error()}
	default:
		return verdict{errMessage: err.Error()}
	}
}

// checkParity asserts one input's generated-parser response matches the
// interpreter verdict: accept/reject, tree shape, and error positions.
func checkParity(t *testing.T, label string, want verdict, got Response) {
	t.Helper()
	if want.ok != got.OK {
		t.Errorf("%s: accept/reject mismatch: interp ok=%v (%s), generated ok=%v (%s)",
			label, want.ok, want.errMessage, got.OK, got.Msg)
		return
	}
	if want.ok {
		if want.tree != got.Tree {
			t.Errorf("%s: tree mismatch:\n  interp:    %s\n  generated: %s", label, want.tree, got.Tree)
		}
		return
	}
	// Both reject. When the engines fail in the same phase the error
	// positions must agree exactly. A cross-phase disagreement (one
	// reports a parse error, the other a lex error) can only happen
	// because the generated lexer is eager while the interpreter lexes
	// on demand, so positions are not comparable there.
	if want.lexErr != got.LexErr {
		if got.LexErr && want.hasSyntax {
			return
		}
		t.Errorf("%s: error-phase mismatch: interp lexErr=%v (%s), generated lexErr=%v (%s)",
			label, want.lexErr, want.errMessage, got.LexErr, got.Msg)
		return
	}
	if want.line != got.Line || want.col != got.Col {
		t.Errorf("%s: error position mismatch: interp %d:%d (%s), generated %d:%d (%s)",
			label, want.line, want.col, want.errMessage, got.Line, got.Col, got.Msg)
	}
}

// TestDifferentialRepoGrammars generates, builds, and runs the parser
// for every checked-in grammar under grammars/, feeding the
// differential corpus (valid + mutated + invalid inputs) and asserting
// accept/reject, tree-shape, and error-position parity against the
// interpreter.
func TestDifferentialRepoGrammars(t *testing.T) {
	if testing.Short() {
		t.Skip("builds Go modules")
	}
	for _, rg := range repoGrammars {
		rg := rg
		t.Run(rg.File, func(t *testing.T) {
			t.Parallel()
			g := loadRepoGrammar(t, rg)
			r, err := Build(g, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			for label, input := range corpus(rg.Valid, rg.Invalid) {
				got, err := r.Do(Request{Rule: rg.Start, Input: input, Tree: true})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				checkParity(t, label+"/"+input, interpVerdict(g, rg.Start, input), got)
			}
		})
	}
}

// TestDifferentialBenchGrammars runs the same parity suite over the six
// benchmark grammars and their synthetic corpora — the grammars with
// cyclic lookahead, PEG-mode backtracking, and syntactic predicates.
func TestDifferentialBenchGrammars(t *testing.T) {
	if testing.Short() {
		t.Skip("builds Go modules")
	}
	for _, w := range bench.Workloads {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			g, err := w.Load()
			if err != nil {
				t.Fatal(err)
			}
			r, err := Build(g, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			for seed := int64(1); seed <= 2; seed++ {
				valid := w.Input(seed, 20)
				inputs := map[string]string{"valid": valid}
				if len(valid) > 4 {
					inputs["truncated"] = valid[:len(valid)*3/5]
					mid := len(valid) / 2
					inputs["deleted-byte"] = valid[:mid] + valid[mid+1:]
				}
				for label, input := range inputs {
					got, err := r.Do(Request{Rule: w.Start, Input: input, Tree: true})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					checkParity(t, fmt.Sprintf("seed=%d/%s", seed, label),
						interpVerdict(g, w.Start, input), got)
				}
			}
		})
	}
}
