package genrun

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"llstar/examples/gen/calc"
	"llstar/examples/gen/figure1"
	"llstar/examples/gen/figure2"
	"llstar/examples/gen/json"
)

// runFunc adapts one checked-in generated package to the driver's
// Response shape so the parity assertions can be shared. Each generated
// package defines its own (structurally identical) types, so the
// adapters are per-package closures.
type runFunc func(rule, input string, memoize *bool, tree bool) Response

var checkedIn = map[string]runFunc{
	"figure1": func(rule, input string, memoize *bool, tree bool) Response {
		toks, err := figure1.Tokenize(input)
		if err != nil {
			se := err.(*figure1.SyntaxError)
			return Response{LexErr: true, Line: se.Line, Col: se.Col, Msg: se.Msg}
		}
		p := figure1.NewParser(toks)
		p.BuildTree = tree
		if memoize != nil {
			p.Memoize = *memoize
		}
		tr, err := p.ParseRule(rule)
		if err != nil {
			se := err.(*figure1.SyntaxError)
			return Response{Line: se.Line, Col: se.Col, Msg: se.Msg}
		}
		out := Response{OK: true}
		if tree {
			out.Tree = tr.String()
		}
		return out
	},
	"figure2": func(rule, input string, memoize *bool, tree bool) Response {
		toks, err := figure2.Tokenize(input)
		if err != nil {
			se := err.(*figure2.SyntaxError)
			return Response{LexErr: true, Line: se.Line, Col: se.Col, Msg: se.Msg}
		}
		p := figure2.NewParser(toks)
		p.BuildTree = tree
		if memoize != nil {
			p.Memoize = *memoize
		}
		tr, err := p.ParseRule(rule)
		if err != nil {
			se := err.(*figure2.SyntaxError)
			return Response{Line: se.Line, Col: se.Col, Msg: se.Msg}
		}
		out := Response{OK: true}
		if tree {
			out.Tree = tr.String()
		}
		return out
	},
	"json": func(rule, input string, memoize *bool, tree bool) Response {
		toks, err := json.Tokenize(input)
		if err != nil {
			se := err.(*json.SyntaxError)
			return Response{LexErr: true, Line: se.Line, Col: se.Col, Msg: se.Msg}
		}
		p := json.NewParser(toks)
		p.BuildTree = tree
		if memoize != nil {
			p.Memoize = *memoize
		}
		tr, err := p.ParseRule(rule)
		if err != nil {
			se := err.(*json.SyntaxError)
			return Response{Line: se.Line, Col: se.Col, Msg: se.Msg}
		}
		out := Response{OK: true}
		if tree {
			out.Tree = tr.String()
		}
		return out
	},
	"calc": func(rule, input string, memoize *bool, tree bool) Response {
		toks, err := calc.Tokenize(input)
		if err != nil {
			se := err.(*calc.SyntaxError)
			return Response{LexErr: true, Line: se.Line, Col: se.Col, Msg: se.Msg}
		}
		p := calc.NewParser(toks)
		p.BuildTree = tree
		if memoize != nil {
			p.Memoize = *memoize
		}
		tr, err := p.ParseRule(rule)
		if err != nil {
			se := err.(*calc.SyntaxError)
			return Response{Line: se.Line, Col: se.Col, Msg: se.Msg}
		}
		out := Response{OK: true}
		if tree {
			out.Tree = tr.String()
		}
		return out
	},
}

// pkgFor maps a grammar file to its checked-in package adapter.
func pkgFor(t *testing.T, file string) runFunc {
	t.Helper()
	name := file[:len(file)-len(".g")]
	run, ok := checkedIn[name]
	if !ok {
		t.Fatalf("no checked-in generated package for %s", file)
	}
	return run
}

// TestCheckedInParsersMatchInterp runs the checked-in generated
// packages under examples/gen/ (linked into this test binary, so the CI
// -race run executes them) over the full differential corpus and
// asserts parity with the interpreter.
func TestCheckedInParsersMatchInterp(t *testing.T) {
	for _, rg := range repoGrammars {
		rg := rg
		t.Run(rg.File, func(t *testing.T) {
			g := loadRepoGrammar(t, rg)
			run := pkgFor(t, rg.File)
			for label, input := range corpus(rg.Valid, rg.Invalid) {
				got := run(rg.Start, input, nil, true)
				checkParity(t, label+"/"+input, interpVerdict(g, rg.Start, input), got)
			}
		})
	}
}

// TestCheckedInParsersFresh regenerates each checked-in parser with the
// same options make generate uses and requires the bytes on disk to
// match — the in-test version of CI's `make generate && git diff
// --exit-code` staleness gate.
func TestCheckedInParsersFresh(t *testing.T) {
	for _, rg := range repoGrammars {
		rg := rg
		t.Run(rg.File, func(t *testing.T) {
			g := loadRepoGrammar(t, rg)
			name := rg.File[:len(rg.File)-len(".g")]
			want, err := g.GenerateGo(name)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("..", "..", "examples", "gen", name, "parser.go")
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Errorf("%s is stale: regenerate with `make generate`", path)
			}
		})
	}
}
