// Package genrun builds and executes generated parsers as real Go
// programs: it emits a grammar's parser with internal/codegen, wraps it
// in a small JSON-line driver, compiles the result with the Go
// toolchain, and exposes request/response parsing over the running
// binary. The test harness uses it to prove every checked-in grammar's
// generated parser agrees with the interpreter on accept/reject, parse
// trees, and error positions; the benchmark harness uses the same
// driver's bench mode for interpreter-vs-generated throughput.
package genrun

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"llstar"
)

// Request is one parse request to a generated-parser driver.
type Request struct {
	// Rule is the start rule.
	Rule string `json:"rule"`
	// Input is the text to lex and parse.
	Input string `json:"input"`
	// Memoize, when non-nil, overrides the grammar's memoize option.
	Memoize *bool `json:"memoize,omitempty"`
	// Tree requests the parse tree rendered as an s-expression.
	Tree bool `json:"tree"`
	// Bench, when > 1, re-runs tokenize+parse that many times and
	// reports the best wall time instead of a tree.
	Bench int `json:"bench,omitempty"`
}

// Response is the driver's answer.
type Response struct {
	OK     bool   `json:"ok"`
	Tree   string `json:"tree,omitempty"`
	Line   int    `json:"line"`
	Col    int    `json:"col"`
	Msg    string `json:"msg,omitempty"`
	LexErr bool   `json:"lex_err,omitempty"`
	Tokens int    `json:"tokens"`
	// NS is the best-of-Bench wall time in nanoseconds (bench mode).
	NS int64 `json:"ns,omitempty"`
}

// Runner drives one generated-parser binary over a JSON-line pipe.
type Runner struct {
	cmd *exec.Cmd
	in  io.WriteCloser
	out *bufio.Scanner
}

// Build generates the parser for g, writes a self-contained Go module
// (parser + driver) under dir, compiles it, and starts the driver.
// Callers own dir (use t.TempDir in tests) and must Close the runner.
func Build(g *llstar.Grammar, dir string) (*Runner, error) {
	src, err := g.GenerateGo("main")
	if err != nil {
		return nil, fmt.Errorf("genrun: generate: %w", err)
	}
	files := map[string]string{
		"go.mod":    "module genrun_parser\n\ngo 1.22\n",
		"parser.go": string(src),
		"main.go":   driverSource,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return nil, err
		}
	}
	bin := filepath.Join(dir, "parser.bin")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Dir = dir
	build.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=-mod=mod")
	if out, err := build.CombinedOutput(); err != nil {
		return nil, fmt.Errorf("genrun: go build: %v\n%s", err, out)
	}
	return Start(bin)
}

// Start launches an already-built driver binary.
func Start(bin string) (*Runner, error) {
	cmd := exec.Command(bin)
	in, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(out)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	return &Runner{cmd: cmd, in: in, out: sc}, nil
}

// Do sends one request and reads its response.
func (r *Runner) Do(rq Request) (Response, error) {
	b, err := json.Marshal(rq)
	if err != nil {
		return Response{}, err
	}
	if _, err := r.in.Write(append(b, '\n')); err != nil {
		return Response{}, fmt.Errorf("genrun: driver write: %w", err)
	}
	if !r.out.Scan() {
		if err := r.out.Err(); err != nil {
			return Response{}, fmt.Errorf("genrun: driver read: %w", err)
		}
		return Response{}, fmt.Errorf("genrun: driver exited early")
	}
	var resp Response
	if err := json.Unmarshal(r.out.Bytes(), &resp); err != nil {
		return Response{}, fmt.Errorf("genrun: bad driver response %q: %w", r.out.Text(), err)
	}
	return resp, nil
}

// Close shuts the driver down and reaps the process.
func (r *Runner) Close() error {
	r.in.Close()
	return r.cmd.Wait()
}

// driverSource is the JSON-line driver compiled next to every generated
// parser: one request per stdin line, one response per stdout line.
const driverSource = `package main

import (
	"bufio"
	"encoding/json"
	"os"
	"time"
)

type request struct {
	Rule    string ` + "`json:\"rule\"`" + `
	Input   string ` + "`json:\"input\"`" + `
	Memoize *bool  ` + "`json:\"memoize,omitempty\"`" + `
	Tree    bool   ` + "`json:\"tree\"`" + `
	Bench   int    ` + "`json:\"bench,omitempty\"`" + `
}

type response struct {
	OK     bool   ` + "`json:\"ok\"`" + `
	Tree   string ` + "`json:\"tree,omitempty\"`" + `
	Line   int    ` + "`json:\"line\"`" + `
	Col    int    ` + "`json:\"col\"`" + `
	Msg    string ` + "`json:\"msg,omitempty\"`" + `
	LexErr bool   ` + "`json:\"lex_err,omitempty\"`" + `
	Tokens int    ` + "`json:\"tokens\"`" + `
	NS     int64  ` + "`json:\"ns,omitempty\"`" + `
}

func main() {
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 0, 1<<16), 1<<26)
	out := bufio.NewWriter(os.Stdout)
	enc := json.NewEncoder(out)
	var p *Parser
	for in.Scan() {
		var rq request
		if err := json.Unmarshal(in.Bytes(), &rq); err != nil {
			enc.Encode(response{Msg: "bad request: " + err.Error()})
			out.Flush()
			continue
		}
		enc.Encode(serve(&p, rq))
		out.Flush()
	}
}

// reset readies the shared parser for toks under rq's options.
func reset(pp **Parser, rq request, toks []Token) *Parser {
	if *pp == nil {
		*pp = NewParser(toks)
	} else {
		(*pp).Reset(toks)
	}
	p := *pp
	p.BuildTree = rq.Tree
	p.Memoize = defaultMemoize
	if rq.Memoize != nil {
		p.Memoize = *rq.Memoize
	}
	return p
}

func serve(pp **Parser, rq request) response {
	if rq.Bench > 1 {
		return bench(pp, rq)
	}
	toks, err := Tokenize(rq.Input)
	if err != nil {
		se := err.(*SyntaxError)
		return response{LexErr: true, Line: se.Line, Col: se.Col, Msg: se.Msg, Tokens: len(toks)}
	}
	p := reset(pp, rq, toks)
	tree, err := p.ParseRule(rq.Rule)
	if err != nil {
		if se, ok := err.(*SyntaxError); ok {
			return response{Line: se.Line, Col: se.Col, Msg: se.Msg, Tokens: len(toks)}
		}
		return response{Msg: err.Error(), Tokens: len(toks)}
	}
	out := response{OK: true, Tokens: len(toks)}
	if rq.Tree {
		out.Tree = tree.String()
	}
	return out
}

// bench measures tokenize+parse end to end, best of rq.Bench runs.
func bench(pp **Parser, rq request) response {
	var out response
	best := int64(-1)
	for i := 0; i < rq.Bench; i++ {
		t0 := time.Now()
		toks, err := Tokenize(rq.Input)
		var perr error
		if err == nil {
			p := reset(pp, rq, toks)
			_, perr = p.ParseRule(rq.Rule)
		} else {
			perr = err
		}
		d := time.Since(t0).Nanoseconds()
		if best < 0 || d < best {
			best = d
		}
		out.OK = perr == nil
		out.Tokens = len(toks)
	}
	out.NS = best
	return out
}
`
