// Package token defines lexical tokens, source positions, and token-type
// vocabularies shared by the lexer engine, the parser runtime, and the
// LL(*) analysis.
//
// A grammar defines a vocabulary: a dense mapping from token-type integers
// to names. Types <= EOF are reserved. The analysis and the lookahead DFA
// both operate on token types, never on token text.
package token

import (
	"fmt"
	"sort"
	"strings"
)

// Type is a token type. Grammar token types are dense small integers
// assigned by the vocabulary; negative values are reserved sentinels.
type Type int

// Reserved token types.
const (
	// Invalid is the zero value; no real token has this type.
	Invalid Type = 0
	// EOF marks end of input. Streams return an EOF token forever once
	// the underlying input is exhausted.
	EOF Type = -1
	// Epsilon is used internally by the analysis for ε-edges; it never
	// appears in a token stream.
	Epsilon Type = -2
	// MinUserType is the first token type assignable to user tokens.
	MinUserType Type = 1
)

// Pos is a position in source input.
type Pos struct {
	Line int // 1-based line number
	Col  int // 1-based column (rune count)
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexed token.
type Token struct {
	Type  Type
	Text  string
	Pos   Pos
	Index int // index in the token stream, assigned by the stream
	// Off is the byte offset of the token's first byte in the input
	// (UTF-8 encoding). Incremental reparse uses it to locate the
	// damaged token range of an edit.
	Off int
	// Channel distinguishes default tokens (0) from hidden ones (e.g.
	// whitespace a lexer rule routed off-channel instead of skipping).
	Channel int
}

func (t Token) String() string {
	return fmt.Sprintf("%q<%d>@%s", t.Text, t.Type, t.Pos)
}

// IsEOF reports whether the token is the end-of-file sentinel.
func (t Token) IsEOF() bool { return t.Type == EOF }

// Vocabulary maps token type integers to symbolic names and literal
// spellings. It is built by the meta-language front end while reading a
// grammar and is immutable afterwards from the parser runtime's view.
type Vocabulary struct {
	names    []string        // index = int(Type); names[0] unused
	literals map[string]Type // 'literal' text -> type
	byName   map[string]Type
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{
		names:    []string{"<invalid>"},
		literals: make(map[string]Type),
		byName:   make(map[string]Type),
	}
}

// Define registers name as a token type and returns its type. Defining the
// same name twice returns the original type.
func (v *Vocabulary) Define(name string) Type {
	if t, ok := v.byName[name]; ok {
		return t
	}
	t := Type(len(v.names))
	v.names = append(v.names, name)
	v.byName[name] = t
	return t
}

// DefineLiteral registers a quoted literal such as "'int'" and returns its
// type. The literal text excludes the quotes. Literals get synthetic names
// of the form 'text'.
func (v *Vocabulary) DefineLiteral(text string) Type {
	if t, ok := v.literals[text]; ok {
		return t
	}
	t := v.Define("'" + text + "'")
	v.literals[text] = t
	return t
}

// Literal returns the type previously assigned to a literal, or Invalid.
func (v *Vocabulary) Literal(text string) Type {
	return v.literals[text]
}

// Lookup returns the type for a token name, or Invalid if unknown.
func (v *Vocabulary) Lookup(name string) Type {
	return v.byName[name]
}

// Name returns the symbolic name for a token type.
func (v *Vocabulary) Name(t Type) string {
	switch {
	case t == EOF:
		return "EOF"
	case t == Epsilon:
		return "ε"
	case t > 0 && int(t) < len(v.names):
		return v.names[t]
	default:
		return fmt.Sprintf("<type %d>", int(t))
	}
}

// Size returns the number of defined token types (excluding reserved ones).
func (v *Vocabulary) Size() int { return len(v.names) - 1 }

// MaxType returns the largest assigned token type.
func (v *Vocabulary) MaxType() Type { return Type(len(v.names) - 1) }

// Names returns all defined names ordered by type.
func (v *Vocabulary) Names() []string {
	out := make([]string, 0, v.Size())
	out = append(out, v.names[1:]...)
	return out
}

// Literals returns the literal spellings sorted lexicographically,
// primarily for deterministic lexer construction.
func (v *Vocabulary) Literals() []string {
	out := make([]string, 0, len(v.literals))
	for s := range v.literals {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Set is a set of token types, used for lookahead sets and DFA edge labels.
// The zero value is an empty set.
type Set struct {
	bits []uint64
	eof  bool
}

// NewSet returns a set containing the given types.
func NewSet(types ...Type) *Set {
	s := &Set{}
	for _, t := range types {
		s.Add(t)
	}
	return s
}

// Add inserts t into the set.
func (s *Set) Add(t Type) {
	if t == EOF {
		s.eof = true
		return
	}
	if t < 0 {
		return
	}
	i := int(t)
	for i/64 >= len(s.bits) {
		s.bits = append(s.bits, 0)
	}
	s.bits[i/64] |= 1 << (uint(i) % 64)
}

// AddSet inserts every member of o.
func (s *Set) AddSet(o *Set) {
	if o == nil {
		return
	}
	if o.eof {
		s.eof = true
	}
	for len(s.bits) < len(o.bits) {
		s.bits = append(s.bits, 0)
	}
	for i, b := range o.bits {
		s.bits[i] |= b
	}
}

// Remove deletes t from the set.
func (s *Set) Remove(t Type) {
	if t == EOF {
		s.eof = false
		return
	}
	i := int(t)
	if t < 0 || i/64 >= len(s.bits) {
		return
	}
	s.bits[i/64] &^= 1 << (uint(i) % 64)
}

// Contains reports whether t is in the set.
func (s *Set) Contains(t Type) bool {
	if s == nil {
		return false
	}
	if t == EOF {
		return s.eof
	}
	i := int(t)
	if t < 0 || i/64 >= len(s.bits) {
		return false
	}
	return s.bits[i/64]&(1<<(uint(i)%64)) != 0
}

// Empty reports whether the set has no members.
func (s *Set) Empty() bool {
	if s == nil {
		return true
	}
	if s.eof {
		return false
	}
	for _, b := range s.bits {
		if b != 0 {
			return false
		}
	}
	return true
}

// Len returns the number of members.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	if s.eof {
		n++
	}
	for _, b := range s.bits {
		for ; b != 0; b &= b - 1 {
			n++
		}
	}
	return n
}

// Types returns the members in ascending order (EOF first if present).
func (s *Set) Types() []Type {
	if s == nil {
		return nil
	}
	out := make([]Type, 0, s.Len())
	if s.eof {
		out = append(out, EOF)
	}
	for i, b := range s.bits {
		for b != 0 {
			low := b & -b
			bit := 0
			for m := low; m > 1; m >>= 1 {
				bit++
			}
			out = append(out, Type(i*64+bit))
			b &^= low
		}
	}
	return out
}

// Intersects reports whether s and o share a member.
func (s *Set) Intersects(o *Set) bool {
	if s == nil || o == nil {
		return false
	}
	if s.eof && o.eof {
		return true
	}
	n := len(s.bits)
	if len(o.bits) < n {
		n = len(o.bits)
	}
	for i := 0; i < n; i++ {
		if s.bits[i]&o.bits[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports set equality.
func (s *Set) Equal(o *Set) bool {
	if s.eof != o.eof {
		return false
	}
	a, b := s.bits, o.bits
	if len(a) < len(b) {
		a, b = b, a
	}
	for i := range b {
		if a[i] != b[i] {
			return false
		}
	}
	for _, w := range a[len(b):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns a copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{eof: s.eof}
	c.bits = append(c.bits, s.bits...)
	return c
}

// Format renders the set using a vocabulary, e.g. {ID, 'int', EOF}.
func (s *Set) Format(v *Vocabulary) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range s.Types() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.Name(t))
	}
	b.WriteByte('}')
	return b.String()
}
