package token

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestVocabulary(t *testing.T) {
	v := NewVocabulary()
	id := v.Define("ID")
	if id != 1 {
		t.Fatalf("first type = %d, want 1", id)
	}
	if v.Define("ID") != id {
		t.Errorf("re-defining must return the same type")
	}
	lit := v.DefineLiteral("int")
	if lit == id {
		t.Errorf("literal must get a fresh type")
	}
	if v.Literal("int") != lit {
		t.Errorf("Literal lookup failed")
	}
	if v.Lookup("ID") != id {
		t.Errorf("Lookup failed")
	}
	if v.Name(id) != "ID" || v.Name(lit) != "'int'" {
		t.Errorf("names: %q %q", v.Name(id), v.Name(lit))
	}
	if v.Name(EOF) != "EOF" {
		t.Errorf("EOF name: %q", v.Name(EOF))
	}
	if v.Size() != 2 || v.MaxType() != lit {
		t.Errorf("size=%d max=%d", v.Size(), v.MaxType())
	}
	if got := v.Literals(); len(got) != 1 || got[0] != "int" {
		t.Errorf("literals: %v", got)
	}
}

// genSet builds a set plus the reference map from random values.
func genSet(r *rand.Rand) (*Set, map[Type]bool) {
	s := NewSet()
	ref := map[Type]bool{}
	n := r.Intn(40)
	for i := 0; i < n; i++ {
		t := Type(r.Intn(200))
		if r.Intn(10) == 0 {
			t = EOF
		}
		s.Add(t)
		ref[t] = true
	}
	return s, ref
}

// Property: Set behaves exactly like a map-based reference set.
func TestSetMatchesReference(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, ref := genSet(r)
		if s.Len() != len(ref) {
			return false
		}
		for tt := range ref {
			if !s.Contains(tt) {
				return false
			}
		}
		got := s.Types()
		if len(got) != len(ref) {
			return false
		}
		// Remove half and re-check.
		for tt := range ref {
			if r.Intn(2) == 0 {
				s.Remove(tt)
				delete(ref, tt)
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		for _, tt := range s.Types() {
			if !ref[tt] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: AddSet is union; Intersects agrees with a reference check;
// Equal is reflexive and detects differences.
func TestSetAlgebra(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, refA := genSet(r)
		b, refB := genSet(r)

		u := a.Clone()
		u.AddSet(b)
		for tt := range refA {
			if !u.Contains(tt) {
				return false
			}
		}
		for tt := range refB {
			if !u.Contains(tt) {
				return false
			}
		}
		if u.Len() > len(refA)+len(refB) {
			return false
		}

		wantInter := false
		for tt := range refA {
			if refB[tt] {
				wantInter = true
			}
		}
		if a.Intersects(b) != wantInter {
			return false
		}
		if !a.Equal(a.Clone()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSetEdgeCases(t *testing.T) {
	var nilSet *Set
	if nilSet.Contains(1) || nilSet.Len() != 0 || !nilSet.Empty() {
		t.Errorf("nil set must behave as empty")
	}
	s := NewSet(EOF, 3)
	if !s.Contains(EOF) || !s.Contains(3) || s.Contains(4) {
		t.Errorf("membership broken")
	}
	if got := s.Types(); !reflect.DeepEqual(got, []Type{EOF, 3}) {
		t.Errorf("types order: %v", got)
	}
	s.Add(Epsilon) // reserved types other than EOF are ignored
	if s.Len() != 2 {
		t.Errorf("epsilon must not be stored")
	}
	v := NewVocabulary()
	v.Define("A")
	if got := s.Format(v); got != "{EOF, <type 3>}" {
		t.Errorf("format: %q", got)
	}
}

func TestTokenBasics(t *testing.T) {
	tok := Token{Type: EOF}
	if !tok.IsEOF() {
		t.Error("EOF detection")
	}
	p := Pos{Line: 3, Col: 9}
	if p.String() != "3:9" {
		t.Errorf("pos: %s", p)
	}
}
