package stream

import (
	"errors"
	"fmt"
	"time"

	"llstar/internal/core"
	"llstar/internal/interp"
	"llstar/internal/lexrt"
	"llstar/internal/obs"
	"llstar/internal/runtime"
	"llstar/internal/token"
)

// ErrTooLarge is returned by Feed and Edit when accepting the bytes
// would exceed the session's byte cap. The server maps it to 413.
var ErrTooLarge = errors.New("stream: session byte cap exceeded")

// ErrFinished is returned by Feed after Finish or Close.
var ErrFinished = errors.New("stream: session already finished")

// Options configure a Session.
type Options struct {
	// Rule is the start rule ("" = the grammar's start rule).
	Rule string
	// Sink receives SAX events. May be nil (events are counted but
	// dropped — useful for validation-only streaming).
	Sink Sink
	// Incremental retains the input text, token stream, memo table, and
	// parse tree after Finish so the session can accept Edits. It
	// disables the sliding token window (the whole stream must stay
	// addressable) and enables tree building.
	Incremental bool
	// Recover enables error recovery: syntax errors become events and
	// the parse continues.
	Recover bool
	// MaxBytes caps total input bytes accepted (0 = unlimited).
	MaxBytes int64
	// Tracer/Flight/Metrics instrument the session (stream.feed and
	// stream.parse spans, llstar_stream_* counters). All may be nil.
	Tracer  obs.Tracer
	Flight  obs.Tracer
	Metrics *obs.Metrics
}

// Stats describes a session after Finish (and after each Edit).
type Stats struct {
	// BytesFed and Chunks count Feed traffic.
	BytesFed int64
	Chunks   int64
	// Events counts sink events emitted.
	Events int64
	// Tokens is the total on-channel tokens seen (including EOF).
	Tokens int
	// PeakWindow is the largest number of tokens simultaneously
	// buffered — the streaming memory bound, a function of grammar
	// shape, not input length.
	PeakWindow int
	// MaxK is the deepest lookahead observed.
	MaxK int
	// Edits counts accepted Edit calls.
	Edits int
	// ReusedTokens/RelexedTokens describe the last Edit: tokens spliced
	// through unchanged vs. produced by relexing the damaged range.
	ReusedTokens  int
	RelexedTokens int
	// TokenReuseRatio = ReusedTokens / (ReusedTokens + RelexedTokens).
	TokenReuseRatio float64
	// ReusedMemo/DroppedMemo describe the last Edit's memo rebase.
	ReusedMemo  int
	DroppedMemo int
	// Errors counts syntax-error events.
	Errors int64
}

// Session is a streaming parse: feed input bytes in chunks, receive
// SAX events synchronously, then Finish. The parse runs on a dedicated
// goroutine that suspends (parks) whenever the lexer has no complete
// token; Feed hands it the next chunk and blocks until it parks again,
// so callbacks and session state need no locking — at most one side is
// running at any instant.
type Session struct {
	res  *core.Result
	opts Options
	rule string
	ip   *interp.Parser
	lx   *lexrt.ChunkLexer
	ts   *runtime.TokenStream

	parked chan struct{}
	wake   chan struct{}
	doneCh chan struct{}
	done   bool
	abort  bool
	err    error

	stats      Stats
	lastEvents int64 // events already flushed to metrics
	tr         obs.Tracer
	mx         *obs.Metrics
	t0         time.Duration

	// Incremental state, populated at Finish when opts.Incremental.
	text   []byte
	tokens []token.Token
	units  []lexrt.Unit
	tree   *interp.Node
	memo   *runtime.MemoTable
	maxK   int
	clean  bool // tree is a clean (no recovered errors) parse of tokens
	// aliased means every leaf of tree points into the tokens array's
	// backing store (established by renumberLeaves), so an in-place
	// token splice updates leaf positions for free and only a grafted
	// repair fragment needs renumbering.
	aliased bool
}

// New starts a streaming session over an analyzed grammar. The parse
// goroutine launches immediately and parks waiting for the first Feed.
func New(res *core.Result, opts Options) (*Session, error) {
	if res.Machine.Lex == nil {
		return nil, fmt.Errorf("stream: grammar %s has no lexer rules", res.Grammar.Name)
	}
	rule := opts.Rule
	if rule == "" {
		rule = res.Grammar.Start().Name
	}
	if res.Machine.RuleIndexByName(rule) < 0 {
		return nil, fmt.Errorf("stream: no parser rule %s", rule)
	}
	s := &Session{
		res:    res,
		opts:   opts,
		rule:   rule,
		lx:     lexrt.NewChunk(res.Machine.Lex),
		parked: make(chan struct{}),
		wake:   make(chan struct{}),
		doneCh: make(chan struct{}),
		tr:     obs.Tee(opts.Tracer, opts.Flight),
		mx:     opts.Metrics,
	}
	memoize := true
	iopts := interp.Options{
		CollectStats: true,
		Memoize:      &memoize,
		Listener:     sinkListener{s},
		Recover:      opts.Recover,
		Tracer:       opts.Tracer,
		Flight:       opts.Flight,
		Metrics:      opts.Metrics,
		ErrorListener: func(se *runtime.SyntaxError) {
			s.stats.Errors++
			s.emit(Event{Kind: KindSyntaxError, Err: &SyntaxError{
				Offending: se.Offending, Rule: se.Rule, Msg: se.Msg,
			}})
		},
	}
	if opts.Incremental {
		iopts.BuildTree = true
		s.lx.RecordUnits()
	} else {
		iopts.Window = true
	}
	s.ip = interp.New(res, iopts)
	s.ts = runtime.NewTokenStream(chunkSource{s})
	if s.tr != nil {
		s.t0 = s.tr.Now()
	}
	if s.mx != nil {
		s.mx.Counter("llstar_stream_sessions_total").Inc()
	}
	go func() {
		tree, err := s.ip.ParseTokens(s.rule, s.ts)
		s.tree, s.err = tree, err
		close(s.doneCh)
	}()
	s.wait()
	return s, nil
}

// chunkSource adapts the chunk lexer to runtime.TokenSource: when no
// complete token is buffered it parks the parse goroutine until the
// session feeds more input (or finishes, or aborts).
type chunkSource struct{ s *Session }

// NextToken implements runtime.TokenSource. Runs on the parse goroutine.
func (cs chunkSource) NextToken() (token.Token, error) {
	s := cs.s
	for {
		if s.abort {
			return token.Token{Type: token.EOF}, nil
		}
		t, ok, err := s.lx.Next()
		if err != nil {
			return token.Token{}, err
		}
		if ok {
			return t, nil
		}
		s.parked <- struct{}{}
		<-s.wake
	}
}

// wait blocks until the parse goroutine parks or completes.
func (s *Session) wait() {
	select {
	case <-s.parked:
	case <-s.doneCh:
		s.done = true
	}
	if n := len(s.ts.Buffered()); n > s.stats.PeakWindow {
		s.stats.PeakWindow = n
	}
	s.flushEventCount()
}

// emit delivers one event to the sink (parse goroutine only).
func (s *Session) emit(e Event) {
	s.stats.Events++
	if s.opts.Sink != nil {
		s.opts.Sink.Event(e)
	}
}

// sinkListener adapts the interpreter's ParseListener to the sink.
type sinkListener struct{ s *Session }

func (l sinkListener) EnterRule(rule string) { l.s.emit(Event{Kind: KindRuleEnter, Rule: rule}) }
func (l sinkListener) ExitRule(rule string)  { l.s.emit(Event{Kind: KindRuleExit, Rule: rule}) }
func (l sinkListener) Token(t token.Token)   { l.s.emit(Event{Kind: KindToken, Token: t}) }

func (s *Session) flushEventCount() {
	if s.mx != nil && s.stats.Events > s.lastEvents {
		s.mx.Counter("llstar_stream_events_total").Add(s.stats.Events - s.lastEvents)
		s.lastEvents = s.stats.Events
	}
}

// Feed hands the session the next chunk of input and blocks until the
// parse has consumed every complete token in it and parked again. It
// returns the terminal parse error as soon as the parse fails (callers
// may stop feeding), ErrTooLarge past the byte cap, or nil.
func (s *Session) Feed(p []byte) error {
	if s.done {
		if s.err != nil {
			return s.err
		}
		return ErrFinished
	}
	if s.opts.MaxBytes > 0 && s.stats.BytesFed+int64(len(p)) > s.opts.MaxBytes {
		return ErrTooLarge
	}
	var t0 time.Duration
	if s.tr != nil {
		t0 = s.tr.Now()
	}
	s.lx.Feed(p)
	if s.opts.Incremental {
		s.text = append(s.text, p...)
	}
	s.stats.BytesFed += int64(len(p))
	s.stats.Chunks++
	if s.mx != nil {
		s.mx.Counter("llstar_stream_bytes_total").Add(int64(len(p)))
	}
	s.wake <- struct{}{}
	s.wait()
	if s.tr != nil {
		s.tr.Emit(obs.Event{
			Name: "stream.feed", Cat: obs.PhaseStream, Ph: obs.PhSpan,
			TS: t0, Dur: s.tr.Now() - t0, Decision: -1,
			Rule: s.rule, N: int64(len(p)), OK: s.err == nil,
		})
	}
	if s.done && s.err != nil {
		return s.err
	}
	return nil
}

// Finish marks end of input, waits for the parse to complete, and
// returns its verdict. Safe to call once; Feed fails afterwards.
func (s *Session) Finish() error {
	if !s.done {
		s.lx.Finish()
		s.wake <- struct{}{}
		<-s.doneCh
		s.done = true
		if n := len(s.ts.Buffered()); n > s.stats.PeakWindow {
			s.stats.PeakWindow = n
		}
	}
	s.finishStats()
	return s.err
}

// finishStats folds parser results into the session stats and emits the
// stream.parse span; in incremental mode it also captures the state an
// Edit needs.
func (s *Session) finishStats() {
	s.stats.Tokens = s.ts.Size()
	if st := s.ip.Stats(); st != nil {
		if k := st.MaxK(); k > s.maxK {
			s.maxK = k
		}
	}
	s.stats.MaxK = s.maxK
	s.flushEventCount()
	if s.opts.Incremental && s.tokens == nil {
		s.tokens = append([]token.Token(nil), s.ts.Buffered()...)
		s.units = s.lx.Units()
		s.memo = s.ip.Memo()
		s.clean = s.err == nil && len(s.ip.Errors()) == 0
	}
	if s.tr != nil {
		s.tr.Emit(obs.Event{
			Name: "stream.parse", Cat: obs.PhaseStream, Ph: obs.PhSpan,
			TS: s.t0, Dur: s.tr.Now() - s.t0, Decision: -1,
			Rule: s.rule, OK: s.err == nil, N: int64(s.stats.Tokens),
		})
	}
}

// Close aborts an unfinished session, terminating the parse goroutine.
// It returns the session's terminal error, if any.
func (s *Session) Close() error {
	if !s.done {
		s.abort = true
		s.wake <- struct{}{}
		<-s.doneCh
		s.done = true
	}
	return s.err
}

// Err returns the terminal parse error (nil while running or on
// success).
func (s *Session) Err() error { return s.err }

// Done reports whether the parse has completed (successfully or not).
func (s *Session) Done() bool { return s.done }

// Stats returns a snapshot of the session statistics. Valid between
// pumps (the parse goroutine is parked or done whenever the caller has
// control).
func (s *Session) Stats() Stats {
	st := s.stats
	st.MaxK = s.maxK
	return st
}

// Tree returns the retained parse tree (incremental sessions after a
// successful Finish; nil otherwise).
func (s *Session) Tree() *interp.Node { return s.tree }

// Text returns the retained input text (incremental sessions).
func (s *Session) Text() []byte { return s.text }

// Rule returns the session's start rule.
func (s *Session) Rule() string { return s.rule }
