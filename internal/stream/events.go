// Package stream implements streaming parse sessions on top of the
// LL(*) interpreter: a Session owns a restartable chunk-fed lexer and a
// suspendable parse loop that emits SAX-style events through a
// caller-supplied sink instead of materializing a tree, with memory
// bounded by grammar depth + lookahead window rather than input length.
// Sessions opened in incremental mode retain their text, token stream,
// memo table, and tree, and repair all four in response to edits,
// relexing only the damaged byte range and re-parsing only the nearest
// enclosing rule.
package stream

import (
	"llstar/internal/interp"
	"llstar/internal/token"
)

// EventKind discriminates session events.
type EventKind uint8

// Event kinds, in the order a well-formed stream interleaves them.
const (
	// KindRuleEnter marks the start of a committed rule invocation.
	KindRuleEnter EventKind = iota
	// KindRuleExit marks its end (always paired, even on error unwind).
	KindRuleExit
	// KindToken carries one committed on-channel token.
	KindToken
	// KindSyntaxError carries a syntax error (the parse may continue in
	// Recover mode; otherwise it is the last event before the session
	// fails).
	KindSyntaxError
)

var kindNames = [...]string{"rule_enter", "rule_exit", "token", "error"}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one SAX-style parse event. Rule is set for enter/exit,
// Token for token events, Err for syntax errors.
type Event struct {
	Kind  EventKind
	Rule  string
	Token token.Token
	Err   *SyntaxError
}

// SyntaxError mirrors runtime.SyntaxError for event consumers: the
// offending token, the rule that was parsing, and the message.
type SyntaxError struct {
	Offending token.Token
	Rule      string
	Msg       string
}

// Sink consumes session events. Callbacks run synchronously on the
// parsing goroutine while the feeding caller blocks, so a sink needs no
// locking of its own; it must not call back into the Session.
type Sink interface {
	Event(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Event implements Sink.
func (f SinkFunc) Event(e Event) { f(e) }

// TreeBuilder is a Sink that reconstructs the parse tree from the
// event stream — byte-identical to what a batch parse with tree
// building would have produced, which the differential tests assert.
type TreeBuilder struct {
	holder *interp.Node
	stack  []*interp.Node
}

// NewTreeBuilder returns an empty tree builder.
func NewTreeBuilder() *TreeBuilder {
	h := &interp.Node{}
	return &TreeBuilder{holder: h, stack: []*interp.Node{h}}
}

// Event implements Sink.
func (b *TreeBuilder) Event(e Event) {
	switch e.Kind {
	case KindRuleEnter:
		n := &interp.Node{Rule: e.Rule}
		top := b.stack[len(b.stack)-1]
		top.Children = append(top.Children, n)
		b.stack = append(b.stack, n)
	case KindRuleExit:
		if len(b.stack) > 1 {
			b.stack = b.stack[:len(b.stack)-1]
		}
	case KindToken:
		t := e.Token
		top := b.stack[len(b.stack)-1]
		top.Children = append(top.Children, &interp.Node{Token: &t})
	}
}

// Tree returns the reconstructed parse tree (nil before any rule
// completed).
func (b *TreeBuilder) Tree() *interp.Node {
	if len(b.holder.Children) == 0 {
		return nil
	}
	return b.holder.Children[0]
}
