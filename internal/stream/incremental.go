package stream

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"llstar/internal/interp"
	"llstar/internal/lexrt"
	"llstar/internal/obs"
	"llstar/internal/runtime"
	"llstar/internal/token"
)

// Edit describes one text replacement: OldLen bytes at Offset are
// replaced by NewText. A pure insertion has OldLen 0; a pure deletion
// has NewText "".
type Edit struct {
	Offset  int    `json:"offset"`
	OldLen  int    `json:"old_len"`
	NewText string `json:"new_text"`
}

// ErrNotIncremental is returned by Edit on sessions not opened in
// incremental mode, or before Finish.
var ErrNotIncremental = errors.New("stream: session is not incremental (or not finished)")

// relexFeedChunk is how much of the edited text the relexer is fed at a
// time; small enough that an edit converging quickly never decodes the
// whole document.
const relexFeedChunk = 64 << 10

// Edit applies a text edit to a finished incremental session: it
// relexes only the damaged byte range (restarting at the earliest
// lexeme whose DFA scan reached the edit), splices the unchanged token
// tail back in at shifted offsets, rebases the memo table around the
// damage, and re-parses from the nearest enclosing rule whose span
// covers the damage plus a lookahead margin — falling back to wider
// enclosing rules and finally a full reparse when the repair does not
// line up. On success the session's text, tokens, tree, and stats
// reflect the new document. A parse failure (the edited text no longer
// parses) is returned as an error; the session stays editable — the
// text and tokens are updated, and the next successful Edit restores a
// tree via full reparse.
func (s *Session) Edit(e Edit) (err error) {
	if !s.opts.Incremental || !s.done {
		return ErrNotIncremental
	}
	if s.tr != nil {
		t0 := s.tr.Now()
		defer func() {
			s.tr.Emit(obs.Event{
				Name: "stream.edit", Cat: obs.PhaseStream, Ph: obs.PhSpan,
				TS: t0, Dur: s.tr.Now() - t0, Decision: -1,
				Rule: s.rule, N: int64(s.stats.RelexedTokens), OK: err == nil,
			})
		}()
	}
	if e.Offset < 0 || e.OldLen < 0 || e.Offset+e.OldLen > len(s.text) {
		return fmt.Errorf("stream: edit out of range: offset=%d old_len=%d text=%d bytes", e.Offset, e.OldLen, len(s.text))
	}
	if s.opts.MaxBytes > 0 && int64(len(s.text)-e.OldLen+len(e.NewText)) > s.opts.MaxBytes {
		return ErrTooLarge
	}
	newText := make([]byte, 0, len(s.text)-e.OldLen+len(e.NewText))
	newText = append(newText, s.text[:e.Offset]...)
	newText = append(newText, e.NewText...)
	newText = append(newText, s.text[e.Offset+e.OldLen:]...)

	s.stats.Edits++
	if !s.clean || s.tree == nil {
		// The retained state is not a clean parse (prior failure or
		// recovered errors): rebuild from scratch.
		return s.rebuildAll(newText)
	}
	sp, err := s.relex(e, newText)
	if err != nil {
		// Lex error: reject the edit, session state unchanged.
		return err
	}
	s.noteEditReuse(sp)
	if !sp.structural {
		// Only hidden text changed: token types and texts are
		// identical, so the tree shape and every memo verdict stand.
		// Adopt the re-positioned tokens; with aliased leaves and an
		// in-place splice the positions already updated for free.
		s.adopt(newText, sp)
		if !(sp.inPlace && s.aliased) {
			s.renumberLeaves()
		}
		s.err = nil
		return nil
	}
	kept, dropped := s.memo.Rebase(sp.damStart, sp.damEnd, sp.tokenDelta, s.maxK)
	s.stats.ReusedMemo, s.stats.DroppedMemo = kept, dropped
	graft, graftBase, err := s.reparse(sp.newTokens, sp)
	s.adopt(newText, sp)
	if err != nil {
		s.tree = nil
		s.clean = false
		s.aliased = false
		s.err = err
		return err
	}
	if sp.inPlace && s.aliased && graft != nil {
		// The unchanged tree already aliases the spliced array; only
		// the grafted fragment's fresh leaves need pointing at it.
		s.renumberFrom(graft, graftBase)
	} else {
		s.renumberLeaves()
	}
	s.clean = true
	s.err = nil
	if st := s.ip.Stats(); st != nil {
		if k := st.MaxK(); k > s.maxK {
			s.maxK = k
		}
	}
	return nil
}

// splice is the outcome of relexing an edit's damaged range.
type splice struct {
	newTokens  []token.Token // full new token array, renumbered, EOF last
	newUnits   []lexrt.Unit
	damStart   int // first replaced token index (old numbering)
	damEnd     int // first reused token index (old numbering)
	relexed    int // on-channel tokens produced by relexing
	tokenDelta int // len(new damage tokens) - (damEnd - damStart)
	structural bool
	inPlace    bool // newTokens is s.tokens spliced in place (tokenDelta 0)
}

// relex restarts the lexer at the earliest unit whose scan reached the
// edit and lexes forward until a unit start re-aligns with the old
// unit sequence past the edit (or end of input).
func (s *Session) relex(e Edit, newText []byte) (*splice, error) {
	delta := len(e.NewText) - e.OldLen
	editEndNew := e.Offset + len(e.NewText)

	// Restart point: first unit whose examined bytes reach the edit.
	u0 := sort.Search(len(s.units), func(i int) bool { return s.units[i].Extent > e.Offset })
	startOff, startLine, startCol := 0, 1, 1
	if u0 == len(s.units) {
		// Nothing scanned the edited bytes: appending at the very end.
		eof := s.tokens[len(s.tokens)-1]
		startOff, startLine, startCol = eof.Off, eof.Pos.Line, eof.Pos.Col
	} else if u0 > 0 {
		u := s.units[u0]
		startOff, startLine, startCol = u.Off, u.Line, u.Col
	}

	rl := lexrt.NewChunk(s.res.Machine.Lex)
	rl.RecordUnits()
	rl.SetPosition(startOff, startLine, startCol)
	feedPos := startOff
	feed := func() {
		if feedPos >= len(newText) {
			rl.Finish()
			return
		}
		end := feedPos + relexFeedChunk
		if end > len(newText) {
			end = len(newText)
		}
		rl.Feed(newText[feedPos:end])
		feedPos = end
	}

	var produced []token.Token // on-channel tokens from the relex
	convOffOld := -1           // old byte offset where relexing re-aligned
	lineDelta, colDelta, convLineOld := 0, 0, 0
	sawEOF := false
	for {
		t, ok, lerr := rl.Next()
		if lerr != nil {
			return nil, lerr
		}
		if !ok {
			feed()
			continue
		}
		if t.Off >= editEndNew {
			if oldU, found := s.unitAt(t.Off - delta); found {
				// A unit starts here in both documents and the bytes
				// from here on are identical: everything after replays
				// exactly, so splice the old tail back in.
				convOffOld = t.Off - delta
				lineDelta = t.Pos.Line - oldU.Line
				colDelta = t.Pos.Col - oldU.Col
				convLineOld = oldU.Line
				break
			}
			if t.IsEOF() && len(newText)-delta == len(s.text) {
				// Reached the new EOF without re-aligning: nothing of
				// the old tail survives.
				produced = append(produced, t)
				sawEOF = true
				break
			}
		}
		if t.IsEOF() {
			produced = append(produced, t)
			sawEOF = true
			break
		}
		if t.Channel == 0 {
			produced = append(produced, t)
		}
	}

	// Token-level damage range in the old numbering.
	damStart := s.tokenIdxAt(startOff)
	damEnd := len(s.tokens)
	if !sawEOF {
		damEnd = s.tokenIdxAt(convOffOld)
	}

	// Structural verdict must precede assembly: the in-place splice
	// below overwrites the old damage range it compares against.
	structural := len(produced) != damEnd-damStart ||
		!sameTokens(produced, s.tokens[damStart:damEnd])

	// Assemble the new token array: untouched prefix, relexed damage,
	// shifted reused tail. The common case — an edit that does not
	// change the token count — splices in place: no reallocation, no
	// copy of the untouched prefix, and indices keep their positions.
	var newTokens []token.Token
	inPlace := len(produced) == damEnd-damStart
	if inPlace {
		newTokens = s.tokens
		copy(newTokens[damStart:damEnd], produced)
		for i := damStart; i < damEnd; i++ {
			newTokens[i].Index = i
		}
		for i := damEnd; i < len(newTokens); i++ {
			t := &newTokens[i]
			if t.Pos.Line == convLineOld {
				t.Pos.Col += colDelta
			}
			t.Pos.Line += lineDelta
			t.Off += delta
		}
	} else {
		newTokens = make([]token.Token, 0, damStart+len(produced)+(len(s.tokens)-damEnd))
		newTokens = append(newTokens, s.tokens[:damStart]...)
		newTokens = append(newTokens, produced...)
		reusedTail := s.tokens[damEnd:]
		for _, t := range reusedTail {
			if t.Pos.Line == convLineOld {
				t.Pos.Col += colDelta
			}
			t.Pos.Line += lineDelta
			t.Off += delta
			newTokens = append(newTokens, t)
		}
		for i := range newTokens {
			newTokens[i].Index = i
		}
	}

	// Same splice at the unit level, for the next edit.
	recorded := rl.Units()
	if convOffOld >= 0 {
		// Drop recorded units at/past the convergence point: the
		// shifted old units cover them.
		cut := len(recorded)
		for i, u := range recorded {
			if u.Off >= convOffOld+delta {
				cut = i
				break
			}
		}
		recorded = recorded[:cut]
	}
	var newUnits []lexrt.Unit
	uTail := len(s.units)
	if convOffOld >= 0 {
		uTail = sort.Search(len(s.units), func(i int) bool { return s.units[i].Off >= convOffOld })
	}
	if len(recorded) == uTail-u0 {
		// Same unit count: splice and shift in place.
		newUnits = s.units
		copy(newUnits[u0:uTail], recorded)
		for i := uTail; i < len(newUnits); i++ {
			u := &newUnits[i]
			if u.Line == convLineOld {
				u.Col += colDelta
			}
			u.Line += lineDelta
			u.Off += delta
			if u.Extent != lexrt.UnboundedExtent {
				u.Extent += delta
			}
		}
	} else {
		newUnits = make([]lexrt.Unit, 0, u0+len(recorded)+(len(s.units)-uTail))
		newUnits = append(newUnits, s.units[:u0]...)
		newUnits = append(newUnits, recorded...)
		for _, u := range s.units[uTail:] {
			if u.Line == convLineOld {
				u.Col += colDelta
			}
			u.Line += lineDelta
			u.Off += delta
			if u.Extent != lexrt.UnboundedExtent {
				u.Extent += delta
			}
			newUnits = append(newUnits, u)
		}
	}

	sp := &splice{
		newTokens:  newTokens,
		newUnits:   newUnits,
		damStart:   damStart,
		damEnd:     damEnd,
		relexed:    len(produced),
		tokenDelta: len(produced) - (damEnd - damStart),
		inPlace:    inPlace,
	}
	sp.structural = structural
	return sp, nil
}

// sameTokens reports type+text equality (positions ignored).
func sameTokens(a, b []token.Token) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Type != b[i].Type || a[i].Text != b[i].Text {
			return false
		}
	}
	return true
}

// unitAt finds the old unit starting exactly at byte off.
func (s *Session) unitAt(off int) (lexrt.Unit, bool) {
	i := sort.Search(len(s.units), func(i int) bool { return s.units[i].Off >= off })
	if i < len(s.units) && s.units[i].Off == off {
		return s.units[i], true
	}
	return lexrt.Unit{}, false
}

// tokenIdxAt returns the first old token index with Off >= off.
func (s *Session) tokenIdxAt(off int) int {
	return sort.Search(len(s.tokens), func(i int) bool { return s.tokens[i].Off >= off })
}

// adopt installs the spliced text/tokens/units as the session's state.
func (s *Session) adopt(newText []byte, sp *splice) {
	s.text = newText
	s.tokens = sp.newTokens
	s.units = sp.newUnits
}

// noteEditReuse updates the reuse statistics and metrics for one edit.
func (s *Session) noteEditReuse(sp *splice) {
	reused := len(sp.newTokens) - sp.relexed
	s.stats.ReusedTokens = reused
	s.stats.RelexedTokens = sp.relexed
	if total := reused + sp.relexed; total > 0 {
		s.stats.TokenReuseRatio = float64(reused) / float64(total)
	}
	s.stats.Tokens = len(sp.newTokens)
	if s.mx != nil {
		s.mx.Counter("llstar_stream_reused_tokens_total").Add(int64(reused))
	}
}

// reparse repairs the tree for a structural splice: it re-parses the
// smallest enclosing rule whose leaf span covers the damage plus the
// lookahead margin, widening to ancestors (and finally the start rule)
// until the repaired fragment consumes exactly the span the old one
// did, adjusted for the token delta.
func (s *Session) reparse(newTokens []token.Token, sp *splice) (graft *interp.Node, graftBase int, err error) {
	lo := sp.damStart - s.maxK
	if lo < 0 {
		lo = 0
	}
	hi := sp.damStart
	if sp.damEnd > sp.damStart {
		hi = sp.damEnd - 1
	}
	eofIdxOld := len(s.tokens) - 1

	var path []*interp.Node
	if hi < eofIdxOld {
		path = s.coverPath(lo, hi)
	}
	// Try candidates from the innermost out; each failed candidate
	// widens the repair region.
	for i := len(path) - 1; i >= 1; i-- {
		n := path[i]
		ns, ne, ok := leafSpan(n)
		if !ok {
			continue
		}
		if ridx := s.res.Machine.RuleIndexByName(n.Rule); ridx < 0 || s.res.Grammar.Rules[ridx].Args != "" {
			continue // parameterized rules lose their argument context
		}
		frag, stop, err := s.fragment(n.Rule, ns, newTokens)
		if err != nil {
			continue
		}
		if stop != ne+1+sp.tokenDelta {
			continue // repaired span disagrees: widen
		}
		// Splice the repaired subtree in place of the old one.
		parent := path[i-1]
		for ci, c := range parent.Children {
			if c == n {
				parent.Children[ci] = frag
				break
			}
		}
		return frag, ns, nil
	}
	// Full reparse from the start rule (still reusing rebased memo
	// verdicts).
	frag, stop, err := s.fragment(s.rule, 0, newTokens)
	if err != nil {
		return nil, 0, err
	}
	if stop != len(newTokens)-1 {
		return nil, 0, &runtime.SyntaxError{
			Offending: newTokens[stop], Rule: s.rule,
			Msg: "extraneous input after parse",
		}
	}
	s.tree = frag
	return nil, 0, nil
}

// fragment re-parses one rule over tokens starting at absolute token
// index base, reusing the session's memo table.
func (s *Session) fragment(rule string, base int, tokens []token.Token) (*interp.Node, int, error) {
	src := &runtime.SliceSource{Tokens: tokens[base:]}
	return s.ip.ParseFragment(rule, runtime.NewTokenStreamAt(src, base), s.memo)
}

// coverPath returns the chain of nodes from the root down to the
// smallest node whose leaf span covers [lo, hi].
func (s *Session) coverPath(lo, hi int) []*interp.Node {
	if s.tree == nil {
		return nil
	}
	ns, ne, ok := leafSpan(s.tree)
	if !ok || ns > lo || ne < hi {
		return nil
	}
	path := []*interp.Node{s.tree}
	cur := s.tree
	for {
		var next *interp.Node
		for _, c := range cur.Children {
			if c.Token != nil {
				continue
			}
			cs, ce, ok := leafSpan(c)
			if ok && cs <= lo && ce >= hi {
				next = c
				break
			}
		}
		if next == nil {
			return path
		}
		path = append(path, next)
		cur = next
	}
}

// leafSpan returns the first and last leaf token indexes under n.
// Cost is the depth to the outermost leaves, not the subtree size —
// coverPath calls it per candidate on repair paths near the root.
func leafSpan(n *interp.Node) (first, last int, ok bool) {
	f := firstLeaf(n)
	if f == nil {
		return 0, 0, false
	}
	return f.Token.Index, lastLeaf(n).Token.Index, true
}

// firstLeaf returns n's leftmost leaf (nil if the subtree is all-empty
// rule nodes).
func firstLeaf(n *interp.Node) *interp.Node {
	if n.Token != nil {
		return n
	}
	for _, c := range n.Children {
		if l := firstLeaf(c); l != nil {
			return l
		}
	}
	return nil
}

// lastLeaf returns n's rightmost leaf.
func lastLeaf(n *interp.Node) *interp.Node {
	if n.Token != nil {
		return n
	}
	for i := len(n.Children) - 1; i >= 0; i-- {
		if l := lastLeaf(n.Children[i]); l != nil {
			return l
		}
	}
	return nil
}

// renumberLeaves rewrites every leaf of the retained tree from the new
// token array, in order. Valid because a clean parse consumes each
// on-channel non-EOF token exactly once, left to right.
func (s *Session) renumberLeaves() {
	k := 0
	var walk func(n *interp.Node)
	walk = func(n *interp.Node) {
		if n.Token != nil {
			// Alias the session's token array instead of allocating a
			// copy per leaf: nothing mutates s.tokens entries except a
			// later in-place splice, which renumbers again.
			n.Token = &s.tokens[k]
			k++
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	if s.tree != nil {
		walk(s.tree)
	}
	s.aliased = true
}

// renumberFrom re-points only the leaves under n, whose leftmost leaf
// has token index base — the grafted-fragment fast path when the rest
// of the tree already aliases the token array.
func (s *Session) renumberFrom(n *interp.Node, base int) {
	k := base
	var walk func(n *interp.Node)
	walk = func(n *interp.Node) {
		if n.Token != nil {
			n.Token = &s.tokens[k]
			k++
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(n)
}

// rebuildAll relexes and reparses the whole document — the fallback
// when no clean prior state exists to repair.
func (s *Session) rebuildAll(newText []byte) error {
	rl := lexrt.NewChunk(s.res.Machine.Lex)
	rl.RecordUnits()
	rl.Feed(newText)
	rl.Finish()
	var tokens []token.Token
	for {
		t, _, err := rl.Next()
		if err != nil {
			return err
		}
		if t.Channel == 0 {
			tokens = append(tokens, t)
		}
		if t.IsEOF() {
			break
		}
	}
	for i := range tokens {
		tokens[i].Index = i
	}
	s.text = newText
	s.tokens = tokens
	s.units = rl.Units()
	s.memo = runtime.NewMemoTable(len(s.res.Grammar.Rules))
	s.stats.ReusedTokens = 0
	s.stats.RelexedTokens = len(tokens)
	s.stats.TokenReuseRatio = 0
	s.stats.Tokens = len(tokens)
	frag, stop, err := s.fragment(s.rule, 0, tokens)
	if err == nil && stop != len(tokens)-1 {
		err = &runtime.SyntaxError{Offending: tokens[stop], Rule: s.rule, Msg: "extraneous input after parse"}
	}
	if err != nil {
		s.tree = nil
		s.clean = false
		s.aliased = false
		s.err = err
		return err
	}
	s.tree = frag
	s.clean = true
	s.aliased = false
	s.err = nil
	if st := s.ip.Stats(); st != nil {
		if k := st.MaxK(); k > s.maxK {
			s.maxK = k
		}
	}
	return nil
}

// TreeString renders the retained tree as an s-expression (empty when
// no tree is retained).
func (s *Session) TreeString() string {
	if s.tree == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString(s.tree.String())
	return b.String()
}
