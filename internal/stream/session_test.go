package stream_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"llstar"
)

func loadRepoGrammar(t *testing.T, file string) *llstar.Grammar {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "grammars", file))
	if err != nil {
		t.Fatalf("read %s: %v", file, err)
	}
	g, err := llstar.LoadWith(file, string(src), llstar.LoadOptions{RewriteLeftRecursion: true})
	if err != nil {
		t.Fatalf("load %s: %v", file, err)
	}
	return g
}

// feedChunks pumps input into the session in fixed-size chunks.
func feedChunks(t *testing.T, s *llstar.Session, input string, chunk int) error {
	t.Helper()
	for i := 0; i < len(input); i += chunk {
		end := i + chunk
		if end > len(input) {
			end = len(input)
		}
		if err := s.Feed([]byte(input[i:end])); err != nil {
			return err
		}
	}
	return s.Finish()
}

// genJSON builds a deterministic JSON document of n array elements.
func genJSON(n int) string {
	var b strings.Builder
	b.WriteString("[\n")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(",\n")
		}
		fmt.Fprintf(&b, `  {"id": %d, "name": "item%d", "ok": true, "vals": [%d, %d.5, null]}`, i, i, i*2, i)
	}
	b.WriteString("\n]\n")
	return b.String()
}

// TestStreamTreeMatchesBatch replays streaming events into a
// TreeBuilder and requires the reconstructed tree to be byte-identical
// to a batch parse, across several chunk sizes and the repo grammars.
func TestStreamTreeMatchesBatch(t *testing.T) {
	cases := []struct {
		file, rule, input string
	}{
		{"json.g", "value", genJSON(50)},
		{"calc.g", "e", "1+2*(3-4)/5 - 6*7"},
		{"figure1.g", "s", "unsigned unsigned int x"},
		{"figure2.g", "t", "---abc"},
	}
	for _, tc := range cases {
		g := loadRepoGrammar(t, tc.file)
		batch, err := g.NewParser(llstar.WithTree()).Parse(tc.rule, tc.input)
		if err != nil {
			t.Fatalf("%s: batch parse: %v", tc.file, err)
		}
		for _, chunk := range []int{1, 3, 7, 64, 1 << 20} {
			tb := llstar.NewStreamTreeBuilder()
			s, err := g.NewSession(llstar.WithStartRule(tc.rule), llstar.WithSink(tb))
			if err != nil {
				t.Fatalf("%s: session: %v", tc.file, err)
			}
			if err := feedChunks(t, s, tc.input, chunk); err != nil {
				t.Fatalf("%s chunk=%d: stream parse: %v", tc.file, chunk, err)
			}
			if got, want := tb.Tree().String(), batch.String(); got != want {
				t.Fatalf("%s chunk=%d:\n got %s\nwant %s", tc.file, chunk, got, want)
			}
		}
	}
}

// TestStreamEventShape checks event pairing and ordering invariants on
// a small parse.
func TestStreamEventShape(t *testing.T) {
	g := loadRepoGrammar(t, "json.g")
	var events []llstar.StreamEvent
	s, err := g.NewSession(llstar.WithEvents(func(e llstar.StreamEvent) {
		events = append(events, e)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := feedChunks(t, s, `{"a": [1, true]}`, 4); err != nil {
		t.Fatal(err)
	}
	depth, tokens := 0, 0
	for _, e := range events {
		switch e.Kind {
		case llstar.StreamRuleEnter:
			depth++
		case llstar.StreamRuleExit:
			depth--
			if depth < 0 {
				t.Fatal("rule exit without matching enter")
			}
		case llstar.StreamToken:
			if depth == 0 {
				t.Fatal("token outside any rule")
			}
			tokens++
		}
	}
	if depth != 0 {
		t.Fatalf("unbalanced enter/exit: depth %d at end", depth)
	}
	// { "a" : [ 1 , true ] }
	if tokens != 9 {
		t.Fatalf("token events = %d, want 9", tokens)
	}
	if st := s.Stats(); st.Events != int64(len(events)) || st.Tokens == 0 {
		t.Fatalf("stats = %+v, want Events=%d", st, len(events))
	}
}

// TestStreamSyntaxError: a bad input surfaces as a KindSyntaxError
// event and a terminal error from Feed or Finish.
func TestStreamSyntaxError(t *testing.T) {
	g := loadRepoGrammar(t, "json.g")
	var errEvents int
	s, err := g.NewSession(llstar.WithEvents(func(e llstar.StreamEvent) {
		if e.Kind == llstar.StreamSyntaxError {
			errEvents++
			if e.Err == nil {
				t.Fatal("error event without payload")
			}
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	ferr := feedChunks(t, s, `{"a": ]}`, 3)
	if ferr == nil {
		t.Fatal("bad input parsed")
	}
	if errEvents == 0 {
		t.Fatal("no syntax-error event emitted")
	}
	if s.Err() == nil {
		t.Fatal("session Err is nil after failure")
	}
}

// TestStreamMaxBytes: the byte cap rejects the overflowing Feed.
func TestStreamMaxBytes(t *testing.T) {
	g := loadRepoGrammar(t, "json.g")
	s, err := g.NewSession(llstar.WithMaxBytes(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Feed([]byte(`[1,2]`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Feed([]byte(`,3,4]`)); err != llstar.ErrStreamTooLarge {
		t.Fatalf("err = %v, want ErrStreamTooLarge", err)
	}
	_ = s.Close()
}

// TestStreamClose terminates an unfinished session without deadlock
// and Feed afterwards reports it finished.
func TestStreamClose(t *testing.T) {
	g := loadRepoGrammar(t, "json.g")
	s, err := g.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Feed([]byte(`[1, 2, 3`)); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()
	if !s.Done() {
		t.Fatal("session not done after Close")
	}
	if err := s.Feed([]byte(`]`)); err == nil {
		t.Fatal("Feed succeeded after Close")
	}
}

// TestStreamWindowBounded: the token window stays small on a long flat
// input — streaming memory tracks grammar shape, not input length.
func TestStreamWindowBounded(t *testing.T) {
	g := loadRepoGrammar(t, "json.g")
	small, large := genJSON(100), genJSON(2000)
	peak := func(input string) int {
		s, err := g.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		if err := feedChunks(t, s, input, 4096); err != nil {
			t.Fatal(err)
		}
		return s.Stats().PeakWindow
	}
	ps, pl := peak(small), peak(large)
	// The window compacts once ~1024 consumed tokens accumulate, so the
	// peak is bounded by that threshold plus the live lookahead window —
	// a constant — while the large input holds ~28k tokens total.
	const bound = 1200
	if pl > bound {
		t.Fatalf("peak window = %d tokens on 2000-line input, want <= %d", pl, bound)
	}
	if ps == 0 {
		t.Fatal("peak window = 0, expected some buffering")
	}
}

// TestStreamHeapBounded: peak heap while streaming is independent of
// input size. Sizes are modest to keep the test fast; the bench
// harness repeats the measurement at 100MB.
func TestStreamHeapBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("heap measurement")
	}
	g := loadRepoGrammar(t, "json.g")
	peakHeap := func(n int) uint64 {
		// Materialize the input before the baseline so the measured
		// delta is session memory only, not the document itself.
		input := genJSON(n)
		runtime.GC()
		var base runtime.MemStats
		runtime.ReadMemStats(&base)
		s, err := g.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		var peak uint64
		chunk, fed := 1<<16, 0
		for i := 0; i < len(input); i += chunk {
			end := i + chunk
			if end > len(input) {
				end = len(input)
			}
			if err := s.Feed([]byte(input[i:end])); err != nil {
				t.Fatal(err)
			}
			if fed++; fed%8 == 0 {
				runtime.GC()
				var m runtime.MemStats
				runtime.ReadMemStats(&m)
				if m.HeapAlloc > peak {
					peak = m.HeapAlloc
				}
			}
		}
		if err := s.Finish(); err != nil {
			t.Fatal(err)
		}
		if peak < base.HeapAlloc {
			return 0
		}
		return peak - base.HeapAlloc
	}
	small := peakHeap(20000)  // ~2MB of JSON
	large := peakHeap(100000) // ~10MB of JSON
	if large > 2*small+(8<<20) {
		t.Fatalf("peak heap grew with input: %dKB (small) -> %dKB (5x input)", small>>10, large>>10)
	}
}

// TestIncrementalEditDifferential applies a series of random edits to
// a JSON document and, after each, requires the session's repaired
// tree to match a from-scratch batch parse of the same text — and the
// edit to fail exactly when the batch parse fails.
func TestIncrementalEditDifferential(t *testing.T) {
	g := loadRepoGrammar(t, "json.g")
	input := genJSON(40)
	s, err := g.NewSession(llstar.WithIncremental())
	if err != nil {
		t.Fatal(err)
	}
	if err := feedChunks(t, s, input, 512); err != nil {
		t.Fatal(err)
	}
	p := g.NewParser(llstar.WithTree())

	r := rand.New(rand.NewSource(7))
	inserts := []string{"1", ", 7", `"zz"`, " ", "\n", "[]", `{"q": 0}`, ":", "}", `\`, `"`}
	for i := 0; i < 120; i++ {
		text := string(s.Text())
		var e llstar.Edit
		switch r.Intn(3) {
		case 0: // insert
			e = llstar.Edit{Offset: r.Intn(len(text) + 1), NewText: inserts[r.Intn(len(inserts))]}
		case 1: // delete
			off := r.Intn(len(text))
			e = llstar.Edit{Offset: off, OldLen: 1 + r.Intn(min(4, len(text)-off))}
		default: // replace
			off := r.Intn(len(text))
			e = llstar.Edit{Offset: off, OldLen: 1 + r.Intn(min(3, len(text)-off)), NewText: inserts[r.Intn(len(inserts))]}
		}
		editErr := s.Edit(e)
		newText := string(s.Text())
		want, batchErr := p.Parse("value", newText)
		if lexRejected(editErr, newText, text) {
			// Lex errors reject the edit outright: text unchanged.
			continue
		}
		if (editErr == nil) != (batchErr == nil) {
			t.Fatalf("edit %d %+v: editErr=%v batchErr=%v\ntext: %q", i, e, editErr, batchErr, newText)
		}
		if editErr == nil {
			if got := s.Tree().String(); got != want.String() {
				t.Fatalf("edit %d %+v: tree mismatch\n got %s\nwant %s", i, e, got, want)
			}
		}
	}
}

// lexRejected reports whether an edit was rejected at the lex stage
// (session text unchanged).
func lexRejected(editErr error, newText, oldText string) bool {
	return editErr != nil && newText == oldText
}

// TestIncrementalReuse: a one-token edit in a large document reuses
// almost all tokens and repairs the tree correctly.
func TestIncrementalReuse(t *testing.T) {
	g := loadRepoGrammar(t, "json.g")
	input := genJSON(2000) // ~2000 lines
	s, err := g.NewSession(llstar.WithIncremental())
	if err != nil {
		t.Fatal(err)
	}
	if err := feedChunks(t, s, input, 4096); err != nil {
		t.Fatal(err)
	}
	// Replace the literal 500 in `"id": 500,` with 501.
	off := strings.Index(input, `"id": 500,`)
	if off < 0 {
		t.Fatal("marker not found")
	}
	off += len(`"id": `)
	if err := s.Edit(llstar.Edit{Offset: off, OldLen: 3, NewText: "501"}); err != nil {
		t.Fatalf("edit: %v", err)
	}
	st := s.Stats()
	if st.TokenReuseRatio < 0.9 {
		t.Fatalf("token reuse ratio = %.3f, want >= 0.9 (reused=%d relexed=%d)",
			st.TokenReuseRatio, st.ReusedTokens, st.RelexedTokens)
	}
	want, err := g.NewParser(llstar.WithTree()).Parse("value", string(s.Text()))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Tree().String(); got != want.String() {
		t.Fatal("tree mismatch after one-token edit")
	}
}

// TestIncrementalWhitespaceFastPath: an edit that only changes hidden
// text reuses every token and the whole tree.
func TestIncrementalWhitespaceFastPath(t *testing.T) {
	g := loadRepoGrammar(t, "json.g")
	input := genJSON(50)
	s, err := g.NewSession(llstar.WithIncremental())
	if err != nil {
		t.Fatal(err)
	}
	if err := feedChunks(t, s, input, 512); err != nil {
		t.Fatal(err)
	}
	before := s.Tree()
	if err := s.Edit(llstar.Edit{Offset: strings.IndexByte(input, '\n') + 1, NewText: "    \n"}); err != nil {
		t.Fatal(err)
	}
	if s.Tree() != before {
		t.Fatal("whitespace edit rebuilt the tree")
	}
	want, err := g.NewParser(llstar.WithTree()).Parse("value", string(s.Text()))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Tree().String(); got != want.String() {
		t.Fatal("tree mismatch after whitespace edit")
	}
}

// TestIncrementalUnclosedStringExtent: editing the byte that closes a
// previously unclosed scan region must invalidate the earlier token —
// the scan-extent bookkeeping, not token boundaries, decides the relex
// restart point.
func TestIncrementalUnclosedStringExtent(t *testing.T) {
	g := loadRepoGrammar(t, "json.g")
	// The string "a,b" swallows what looks like array punctuation.
	input := `["a,b", 1]`
	s, err := g.NewSession(llstar.WithIncremental())
	if err != nil {
		t.Fatal(err)
	}
	if err := feedChunks(t, s, input, 3); err != nil {
		t.Fatal(err)
	}
	// Replace the closing quote of "a,b" with a space: the string token
	// now ends later (at the quote before 1... which is unbalanced), so
	// the early tokens change.
	off := strings.Index(input, `b"`) + 1
	editErr := s.Edit(llstar.Edit{Offset: off, OldLen: 1, NewText: " "})
	newText := string(s.Text())
	want, batchErr := g.NewParser(llstar.WithTree()).Parse("value", newText)
	if lexRejected(editErr, newText, input) {
		return
	}
	if (editErr == nil) != (batchErr == nil) {
		t.Fatalf("editErr=%v batchErr=%v text=%q", editErr, batchErr, newText)
	}
	if editErr == nil && s.Tree().String() != want.String() {
		t.Fatal("tree mismatch")
	}
}

// TestIncrementalAppend: appending at the end of the document relexes
// from the last extensible token, not from the start.
func TestIncrementalAppend(t *testing.T) {
	g := loadRepoGrammar(t, "calc.g")
	input := "1+2*3"
	s, err := g.NewSession(llstar.WithIncremental())
	if err != nil {
		t.Fatal(err)
	}
	if err := feedChunks(t, s, input, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Edit(llstar.Edit{Offset: len(input), NewText: "4-5"}); err != nil {
		t.Fatalf("append edit: %v", err)
	}
	want, err := g.NewParser(llstar.WithTree()).Parse("e", "1+2*34-5")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Tree().String(); got != want.String() {
		t.Fatalf("tree after append:\n got %s\nwant %s", got, want)
	}
}

// TestIncrementalEditAfterFailure: a failed edit leaves the session
// editable; a follow-up fix restores a correct tree via full reparse.
func TestIncrementalEditAfterFailure(t *testing.T) {
	g := loadRepoGrammar(t, "json.g")
	input := `{"a": [1, 2, 3]}`
	s, err := g.NewSession(llstar.WithIncremental())
	if err != nil {
		t.Fatal(err)
	}
	if err := feedChunks(t, s, input, 4); err != nil {
		t.Fatal(err)
	}
	// Break it: delete the colon.
	off := strings.IndexByte(input, ':')
	if err := s.Edit(llstar.Edit{Offset: off, OldLen: 1}); err == nil {
		t.Fatal("edit producing invalid JSON succeeded")
	}
	// Fix it: put the colon back.
	if err := s.Edit(llstar.Edit{Offset: off, NewText: ":"}); err != nil {
		t.Fatalf("repair edit: %v", err)
	}
	want, err := g.NewParser(llstar.WithTree()).Parse("value", input)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Tree().String(); got != want.String() {
		t.Fatal("tree mismatch after repair")
	}
}

// TestStreamMetrics: the llstar_stream_* counters move.
func TestStreamMetrics(t *testing.T) {
	g := loadRepoGrammar(t, "json.g")
	m := llstar.NewMetrics()
	s, err := g.NewSession(llstar.WithSessionMetrics(m), llstar.WithIncremental())
	if err != nil {
		t.Fatal(err)
	}
	input := `[1, 2, 3]`
	if err := feedChunks(t, s, input, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Edit(llstar.Edit{Offset: 1, OldLen: 1, NewText: "9"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"llstar_stream_sessions_total",
		"llstar_stream_bytes_total",
		"llstar_stream_events_total",
		"llstar_stream_reused_tokens_total",
	} {
		if m.Counter(name).Value() == 0 {
			t.Fatalf("counter %s = 0, want > 0", name)
		}
	}
}

// TestStreamNoSinkCounts: without a sink, events are still counted.
func TestStreamNoSinkCounts(t *testing.T) {
	g := loadRepoGrammar(t, "json.g")
	s, err := g.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := feedChunks(t, s, `[1]`, 1); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Events == 0 {
		t.Fatal("no events counted without sink")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestStreamSpans checks that a traced session emits stream.feed,
// stream.parse, and stream.edit spans in the "stream" category.
func TestStreamSpans(t *testing.T) {
	g := loadRepoGrammar(t, "json.g")
	var buf bytes.Buffer
	tracer := llstar.NewJSONLTracer(&buf)
	s, err := g.NewSession(
		llstar.WithStartRule("value"),
		llstar.WithIncremental(),
		llstar.WithSessionTracer(tracer),
	)
	if err != nil {
		t.Fatal(err)
	}
	input := genJSON(5)
	if err := feedChunks(t, s, input, 16); err != nil {
		t.Fatal(err)
	}
	idx := strings.Index(input, `"id": 3`)
	if err := s.Edit(llstar.Edit{Offset: idx + len(`"id": `), OldLen: 1, NewText: "42"}); err != nil {
		t.Fatalf("edit: %v", err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		name := ev["name"].(string)
		if strings.HasPrefix(name, "stream.") && ev["cat"] != "stream" {
			t.Errorf("event %v: cat = %v, want stream", name, ev["cat"])
		}
		byName[name]++
	}
	if want := (len(input) + 15) / 16; byName["stream.feed"] != want {
		t.Errorf("stream.feed spans = %d, want %d", byName["stream.feed"], want)
	}
	if byName["stream.parse"] != 1 {
		t.Errorf("stream.parse spans = %d, want 1", byName["stream.parse"])
	}
	if byName["stream.edit"] != 1 {
		t.Errorf("stream.edit spans = %d, want 1", byName["stream.edit"])
	}
}
