package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestActiveNormalizesNop(t *testing.T) {
	if Active(nil) != nil {
		t.Error("Active(nil) must be nil")
	}
	if Active(Nop) != nil {
		t.Error("Active(Nop) must be nil")
	}
	w := NewJSONL(&bytes.Buffer{})
	if Active(w) != Tracer(w) {
		t.Error("Active must pass real tracers through")
	}
	// The no-op tracer itself must be callable.
	Nop.Emit(Event{Name: "x"})
	if Nop.Now() != 0 {
		t.Error("Nop.Now must be 0")
	}
}

func TestJSONLWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONL(&buf)
	w.Emit(Event{
		Name: "predict", Cat: PhaseRuntime, Ph: PhSpan,
		TS: 5 * time.Microsecond, Dur: 7 * time.Microsecond,
		Decision: 3, Rule: "expr", Alt: 2, K: 4, Throttle: "fixed", OK: true,
	})
	w.Emit(Event{Name: "analysis.warning", Cat: PhaseAnalysis, Ph: PhInstant, Decision: -1, Detail: "ambiguity: x"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d: %q", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	for k, want := range map[string]any{
		"name": "predict", "cat": "runtime", "ph": "X",
		"decision": float64(3), "rule": "expr", "alt": float64(2),
		"k": float64(4), "throttle": "fixed", "ok": true,
		"ts_us": float64(5), "dur_us": float64(7),
	} {
		if first[k] != want {
			t.Errorf("line 0 %s = %v, want %v", k, first[k], want)
		}
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if _, present := second["decision"]; present {
		t.Error("decision -1 must be omitted")
	}
	if second["detail"] != "ambiguity: x" || second["ph"] != "i" {
		t.Errorf("line 1 = %v", second)
	}
}

func TestChromeWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewChrome(&buf)
	w.Emit(Event{
		Name: "predict", Cat: PhaseRuntime, Ph: PhSpan,
		TS: 10 * time.Microsecond, Dur: 2 * time.Microsecond,
		Decision: 1, Rule: "s", Alt: 1, K: 2, Throttle: "cyclic", OK: true,
	})
	w.Emit(Event{Name: "memo.hit", Cat: PhaseRuntime, Ph: PhInstant, Decision: -1, Rule: "expr", N: 9})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("want 2 events, got %d", len(events))
	}
	e0 := events[0]
	if e0["name"] != "predict" || e0["ph"] != "X" || e0["ts"] != float64(10) || e0["dur"] != float64(2) {
		t.Errorf("span event = %v", e0)
	}
	if e0["pid"] != float64(1) || e0["tid"] != float64(1) {
		t.Errorf("pid/tid missing: %v", e0)
	}
	args := e0["args"].(map[string]any)
	if args["decision"] != float64(1) || args["throttle"] != "cyclic" || args["k"] != float64(2) {
		t.Errorf("args = %v", args)
	}
	e1 := events[1]
	if e1["ph"] != "i" || e1["s"] != "t" {
		t.Errorf("instant event = %v", e1)
	}
}

func TestChromeWriterZeroDurationVisible(t *testing.T) {
	var buf bytes.Buffer
	w := NewChrome(&buf)
	w.Emit(Event{Name: "parse", Cat: PhaseRuntime, Ph: PhSpan, Decision: -1})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if d := events[0]["dur"].(float64); d <= 0 {
		t.Errorf("zero-duration span must be clamped positive, got %v", d)
	}
}

func TestChromeWriterEmpty(t *testing.T) {
	var buf bytes.Buffer
	w := NewChrome(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var events []any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty trace must still be valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 0 {
		t.Errorf("want empty array, got %v", events)
	}
}

func TestWriterAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONL(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w.Emit(Event{Name: "late"}) // must be a silent no-op
	if w.Events() != 0 {
		t.Error("emit after close must not record")
	}
	if err := w.Close(); err != nil {
		t.Error("double close must be idempotent")
	}
}

// collector is a minimal Tracer for Tee tests with a fixed clock.
type collector struct {
	events []Event
	now    time.Duration
}

func (c *collector) Emit(e Event)       { c.events = append(c.events, e) }
func (c *collector) Now() time.Duration { return c.now }

func TestTee(t *testing.T) {
	a := &collector{now: 100}
	b := &collector{now: 200}

	// Both sides active: events fan out, the primary's clock wins.
	tee := Tee(a, b)
	tee.Emit(Event{Name: "x"})
	if len(a.events) != 1 || len(b.events) != 1 {
		t.Errorf("fan-out: a=%d b=%d", len(a.events), len(b.events))
	}
	if tee.Now() != 100 {
		t.Errorf("Now = %v, want primary's 100", tee.Now())
	}

	// One side nil or Nop: the other is returned unwrapped.
	if got := Tee(a, nil); got != Tracer(a) {
		t.Errorf("Tee(a, nil) = %T, want a itself", got)
	}
	if got := Tee(nil, b); got != Tracer(b) {
		t.Errorf("Tee(nil, b) = %T, want b itself", got)
	}
	if got := Tee(a, Nop); got != Tracer(a) {
		t.Errorf("Tee(a, Nop) = %T, want a itself", got)
	}

	// Neither active: nil, preserving hot-path nil-check gating.
	if got := Tee(nil, nil); got != nil {
		t.Errorf("Tee(nil, nil) = %v, want nil", got)
	}
	if got := Tee(Nop, Nop); got != nil {
		t.Errorf("Tee(Nop, Nop) = %v, want nil", got)
	}
}
