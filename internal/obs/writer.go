package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Format selects a TraceWriter's on-disk encoding.
type Format int

// Trace formats.
const (
	// FormatJSONL writes one JSON object per line — easy to grep, jq,
	// or load into a dataframe.
	FormatJSONL Format = iota
	// FormatChrome writes a Chrome trace_event JSON array loadable by
	// chrome://tracing and Perfetto (ui.perfetto.dev) as a timeline.
	FormatChrome
)

// TraceWriter is a Tracer that serializes events to an io.Writer in
// JSONL or Chrome trace_event format. It is safe for concurrent use.
// Close must be called to flush (and, for the Chrome format, terminate
// the JSON array).
type TraceWriter struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	format Format
	start  time.Time
	n      int // events written
	closed bool
	err    error
}

// NewJSONL returns a TraceWriter emitting one JSON object per line.
func NewJSONL(w io.Writer) *TraceWriter {
	return &TraceWriter{bw: bufio.NewWriter(w), format: FormatJSONL, start: time.Now()}
}

// NewChrome returns a TraceWriter emitting a Chrome trace_event array.
func NewChrome(w io.Writer) *TraceWriter {
	return &TraceWriter{bw: bufio.NewWriter(w), format: FormatChrome, start: time.Now()}
}

// Now implements Tracer.
func (t *TraceWriter) Now() time.Duration { return time.Since(t.start) }

// jsonlEvent is the line schema of FormatJSONL (docs/observability.md).
type jsonlEvent struct {
	TS          int64  `json:"ts_us"`
	Dur         int64  `json:"dur_us,omitempty"`
	Ph          string `json:"ph"`
	Cat         string `json:"cat"`
	Name        string `json:"name"`
	Decision    *int   `json:"decision,omitempty"`
	Rule        string `json:"rule,omitempty"`
	Alt         int    `json:"alt,omitempty"`
	K           *int   `json:"k,omitempty"`
	Depth       int    `json:"depth,omitempty"`
	Throttle    string `json:"throttle,omitempty"`
	Backtracked bool   `json:"backtracked,omitempty"`
	OK          bool   `json:"ok"`
	N           int64  `json:"n,omitempty"`
	Worker      int    `json:"worker,omitempty"`
	Detail      string `json:"detail,omitempty"`
}

// chromeEvent is one element of the Chrome trace_event array.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Emit implements Tracer.
func (t *TraceWriter) Emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.err != nil {
		return
	}
	var payload any
	switch t.format {
	case FormatChrome:
		ce := chromeEvent{
			Name: e.Name,
			Cat:  string(e.Cat),
			Ph:   string(e.Ph),
			TS:   float64(e.TS) / float64(time.Microsecond),
			PID:  1,
			TID:  1 + e.Worker,
		}
		if e.Ph == PhSpan {
			ce.Dur = float64(e.Dur) / float64(time.Microsecond)
			// Perfetto drops zero-duration complete events; clamp to the
			// smallest representable tick so every span stays visible.
			if ce.Dur == 0 {
				ce.Dur = 0.001
			}
		}
		if e.Ph == PhInstant {
			ce.Scope = "t"
		}
		ce.Args = chromeArgs(e)
		payload = ce
	default:
		je := jsonlEvent{
			TS:          e.TS.Microseconds(),
			Ph:          string(e.Ph),
			Cat:         string(e.Cat),
			Name:        e.Name,
			Rule:        e.Rule,
			Alt:         e.Alt,
			Depth:       e.Depth,
			Throttle:    e.Throttle,
			Backtracked: e.Backtracked,
			OK:          e.OK,
			N:           e.N,
			Worker:      e.Worker,
			Detail:      e.Detail,
		}
		if e.Ph == PhSpan {
			je.Dur = e.Dur.Microseconds()
		}
		if e.Decision >= 0 {
			d := e.Decision
			je.Decision = &d
		}
		if e.Name == "predict" || e.Name == "speculate.alt" || e.Name == "speculate.synpred" {
			k := e.K
			je.K = &k
		}
		payload = je
	}
	data, err := json.Marshal(payload)
	if err != nil {
		t.err = err
		return
	}
	if t.format == FormatChrome {
		if t.n == 0 {
			_, t.err = t.bw.WriteString("[\n")
		} else {
			_, t.err = t.bw.WriteString(",\n")
		}
		if t.err != nil {
			return
		}
	}
	if _, err := t.bw.Write(data); err != nil {
		t.err = err
		return
	}
	if t.format == FormatJSONL {
		t.err = t.bw.WriteByte('\n')
	}
	t.n++
}

// chromeArgs builds the args object for the trace viewer's detail pane,
// including only attributes the event actually carries.
func chromeArgs(e Event) map[string]any {
	args := map[string]any{}
	if e.Decision >= 0 {
		args["decision"] = e.Decision
	}
	if e.Rule != "" {
		args["rule"] = e.Rule
	}
	if e.Alt != 0 {
		args["alt"] = e.Alt
	}
	if e.Throttle != "" {
		args["throttle"] = e.Throttle
	}
	switch e.Name {
	case "predict", "speculate.alt", "speculate.synpred":
		args["k"] = e.K
		args["depth"] = e.Depth
		args["backtracked"] = e.Backtracked
		args["ok"] = e.OK
	default:
		if e.OK {
			args["ok"] = true
		}
	}
	if e.N != 0 {
		args["n"] = e.N
	}
	if e.Worker != 0 {
		args["worker"] = e.Worker
	}
	if e.Detail != "" {
		args["detail"] = e.Detail
	}
	if len(args) == 0 {
		return nil
	}
	return args
}

// Close flushes buffered events and finalizes the output. For the
// Chrome format it terminates the JSON array; the file is not loadable
// before Close. It returns the first error encountered while writing.
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	if t.err == nil && t.format == FormatChrome {
		closer := "\n]\n"
		if t.n == 0 {
			closer = "[\n]\n"
		}
		_, t.err = t.bw.WriteString(closer)
	}
	if ferr := t.bw.Flush(); t.err == nil {
		t.err = ferr
	}
	return t.err
}

// Err returns the first write or encoding error, if any.
func (t *TraceWriter) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Events returns how many events have been written.
func (t *TraceWriter) Events() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}
