// Package flight is the request-scoped flight recorder of the
// observability layer: a bounded, allocation-free ring buffer that
// keeps the last N trace events of one parse, plus an anomaly trigger
// and a server-wide bounded capture store, so the full event timeline
// of "the one slow request" is retrievable after the fact without
// paying for always-on full tracing.
//
// The design follows the paper's operational reality: LL(*) prediction
// is adaptive (Sections 4–5), so a production parse can silently
// degrade from LL(1) to cyclic-DFA scanning to full backtracking.
// Aggregate metrics and coverage profiles show that a fleet degrades;
// only a per-request capture shows *which* request degraded and at
// which decisions. A Recorder rides along every request cheaply
// (single-writer, fixed capacity, no locks, no allocation after
// construction); when the request turns out anomalous — too slow, a
// 5xx, a panic, or over its speculation budget — the ring is frozen
// into a Capture and persisted in a Store for the /debug/flight
// endpoints.
//
// The cost contract matches the tracer and coverage profiler: with no
// recorder installed the parser's instrumentation sites reduce to one
// nil check (obs.Active semantics), so a disabled flight recorder is
// indistinguishable from no observability at all.
package flight

import (
	"fmt"
	"html/template"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"llstar/internal/obs"
)

// DefaultEvents is the ring capacity used when a Recorder is created
// with a non-positive capacity: enough to hold the prediction tail of
// a degraded parse without dominating request memory.
const DefaultEvents = 256

// Recorder is a bounded ring-buffer obs.Tracer for one request (or one
// CLI parse). It is single-writer — exactly like the parser that owns
// it — and never allocates after construction: Emit overwrites the
// oldest slot once the ring is full. Reset rearms it for reuse from a
// sync.Pool.
type Recorder struct {
	epoch time.Time
	buf   []obs.Event
	n     int // events emitted since Reset (may exceed len(buf))
}

// NewRecorder returns a recorder holding the last capacity events
// (DefaultEvents if capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultEvents
	}
	return &Recorder{epoch: time.Now(), buf: make([]obs.Event, capacity)}
}

// Emit implements obs.Tracer: store the event, overwriting the oldest
// once the ring is full.
func (r *Recorder) Emit(e obs.Event) {
	r.buf[r.n%len(r.buf)] = e
	r.n++
}

// Now implements obs.Tracer: time since the recorder's epoch (the last
// Reset), so a pooled recorder timestamps events relative to request
// start.
func (r *Recorder) Now() time.Duration { return time.Since(r.epoch) }

// Reset clears the ring and restarts the clock, making the recorder
// ready for the next request.
func (r *Recorder) Reset() {
	r.n = 0
	r.epoch = time.Now()
}

// Len reports how many events the ring currently holds.
func (r *Recorder) Len() int {
	if r.n < len(r.buf) {
		return r.n
	}
	return len(r.buf)
}

// Dropped reports how many events were overwritten since Reset.
func (r *Recorder) Dropped() int {
	if r.n <= len(r.buf) {
		return 0
	}
	return r.n - len(r.buf)
}

// Events returns the retained events in emission order (oldest first).
func (r *Recorder) Events() []obs.Event {
	out := make([]obs.Event, 0, r.Len())
	start := 0
	if r.n > len(r.buf) {
		start = r.n - len(r.buf)
	}
	for i := start; i < r.n; i++ {
		out = append(out, r.buf[i%len(r.buf)])
	}
	return out
}

// EventRecord is the JSON shape of one captured event, matching the
// JSONL trace schema (docs/observability.md) so captures and trace
// files jq the same way.
type EventRecord struct {
	TSUS        int64  `json:"ts_us"`
	DurUS       int64  `json:"dur_us,omitempty"`
	Ph          string `json:"ph"`
	Cat         string `json:"cat"`
	Name        string `json:"name"`
	Decision    *int   `json:"decision,omitempty"`
	Rule        string `json:"rule,omitempty"`
	Alt         int    `json:"alt,omitempty"`
	K           int    `json:"k,omitempty"`
	Depth       int    `json:"depth,omitempty"`
	Throttle    string `json:"throttle,omitempty"`
	Backtracked bool   `json:"backtracked,omitempty"`
	OK          bool   `json:"ok"`
	N           int64  `json:"n,omitempty"`
	Detail      string `json:"detail,omitempty"`
}

// toRecord converts one live event into its capture shape.
func toRecord(e obs.Event) EventRecord {
	rec := EventRecord{
		TSUS:        e.TS.Microseconds(),
		Ph:          string(e.Ph),
		Cat:         string(e.Cat),
		Name:        e.Name,
		Rule:        e.Rule,
		Alt:         e.Alt,
		K:           e.K,
		Depth:       e.Depth,
		Throttle:    e.Throttle,
		Backtracked: e.Backtracked,
		OK:          e.OK,
		N:           e.N,
		Detail:      e.Detail,
	}
	if e.Ph == obs.PhSpan {
		rec.DurUS = e.Dur.Microseconds()
	}
	if e.Decision >= 0 {
		d := e.Decision
		rec.Decision = &d
	}
	return rec
}

// toEvent reconstructs a live event from its capture shape (for
// replaying a capture through the Chrome trace_event writer).
func toEvent(rec EventRecord) obs.Event {
	e := obs.Event{
		TS:          time.Duration(rec.TSUS) * time.Microsecond,
		Dur:         time.Duration(rec.DurUS) * time.Microsecond,
		Cat:         obs.Phase(rec.Cat),
		Name:        rec.Name,
		Decision:    -1,
		Rule:        rec.Rule,
		Alt:         rec.Alt,
		K:           rec.K,
		Depth:       rec.Depth,
		Throttle:    rec.Throttle,
		Backtracked: rec.Backtracked,
		OK:          rec.OK,
		N:           rec.N,
		Detail:      rec.Detail,
	}
	if rec.Ph != "" {
		e.Ph = rec.Ph[0]
	}
	if rec.Decision != nil {
		e.Decision = *rec.Decision
	}
	return e
}

// Stats summarizes the runtime profile of the captured parse: the
// trigger inputs (backtrack activity, wasted speculation tokens) plus
// enough context to read the event tail without the full ParseStats.
type Stats struct {
	Tokens          int64 `json:"tokens,omitempty"`
	PredictEvents   int   `json:"predict_events,omitempty"`
	MaxLookahead    int   `json:"max_lookahead,omitempty"`
	BacktrackEvents int   `json:"backtrack_events,omitempty"`
	BacktrackTokens int64 `json:"backtrack_tokens,omitempty"`
	MemoHits        int   `json:"memo_hits,omitempty"`
	MemoMisses      int   `json:"memo_misses,omitempty"`
}

// Capture is one persisted flight recording: the identity of the
// request (request id and W3C trace id, correlating it with log lines
// and server.<endpoint> spans), what was parsed, how the request
// ended, why it was captured, and the last-N event timeline.
type Capture struct {
	// ID is the store-assigned capture id (stable, monotonic); the
	// /debug/flight/{id} endpoint resolves it, or the RequestID.
	ID        string `json:"id"`
	RequestID string `json:"request_id,omitempty"`
	TraceID   string `json:"trace_id,omitempty"`
	// SpanID is the capture's own child span id within the trace. Each
	// /v1/batch item mints a distinct one, so a by-trace lookup can
	// tell the items of one batch request apart.
	SpanID string `json:"span_id,omitempty"`
	// Replica is the cluster address of the replica that recorded the
	// capture — how a fleet-wide by-trace result says which side of a
	// proxy hop each capture came from. Empty when not cluster-attached.
	Replica  string `json:"replica,omitempty"`
	Endpoint string `json:"endpoint,omitempty"`
	Grammar  string `json:"grammar,omitempty"`
	Rule     string `json:"rule,omitempty"`
	// SessionID correlates captures from streaming sessions: every
	// capture taken for the same /v1/sessions session carries its id.
	SessionID string `json:"session_id,omitempty"`
	// Status is the HTTP status the request answered (0 for CLI captures).
	Status int `json:"status,omitempty"`
	// Trigger names the anomaly that fired: "slow", "status", "panic",
	// "backtrack", "wasted", "error" (CLI parse failure), or "manual".
	Trigger string    `json:"trigger"`
	Time    time.Time `json:"time"`
	DurUS   int64     `json:"dur_us"`
	Stats   Stats     `json:"stats"`
	// EventCount and Dropped size the timeline: events retained, and
	// older events the ring overwrote.
	EventCount int           `json:"event_count"`
	Dropped    int           `json:"dropped_events,omitempty"`
	Events     []EventRecord `json:"events,omitempty"`
}

// Snapshot freezes the recorder's current ring into capture form.
func (r *Recorder) Snapshot() ([]EventRecord, int) {
	evs := r.Events()
	out := make([]EventRecord, len(evs))
	for i, e := range evs {
		out[i] = toRecord(e)
	}
	return out, r.Dropped()
}

// Summary returns the capture without its event timeline, for listings.
func (c *Capture) Summary() Capture {
	s := *c
	s.Events = nil
	return s
}

// WriteChrome replays the capture through the Chrome trace_event
// writer, producing a JSON array loadable by chrome://tracing and
// Perfetto — the same renderer the -trace-format=chrome flag uses.
func (c *Capture) WriteChrome(w io.Writer) error {
	tw := obs.NewChrome(w)
	for _, rec := range c.Events {
		tw.Emit(toEvent(rec))
	}
	return tw.Close()
}

// Trigger decides which finished requests deserve a persisted capture.
// The zero value never fires; each field arms one condition.
type Trigger struct {
	// Slow fires when the request took at least this long.
	Slow time.Duration
	// MinStatus fires on a final HTTP status >= this (500 captures all
	// server errors including the 504 deadline path).
	MinStatus int
	// BacktrackEvents fires when the parse speculated at least this
	// many times.
	BacktrackEvents int
	// BacktrackTokens fires when speculation consumed (and rewound) at
	// least this many tokens — the wasted-work budget.
	BacktrackTokens int64
}

// Eval names the first armed condition the request crossed, or "".
func (t Trigger) Eval(status int, dur time.Duration, st Stats) string {
	switch {
	case t.MinStatus > 0 && status >= t.MinStatus:
		return "status"
	case t.Slow > 0 && dur >= t.Slow:
		return "slow"
	case t.BacktrackEvents > 0 && st.BacktrackEvents >= t.BacktrackEvents:
		return "backtrack"
	case t.BacktrackTokens > 0 && st.BacktrackTokens >= t.BacktrackTokens:
		return "wasted"
	}
	return ""
}

// DefaultCaptures bounds the Store when constructed with a
// non-positive capacity.
const DefaultCaptures = 64

// Store is the server-wide bounded capture store: the newest N
// captures, evicting the oldest. It is safe for concurrent use — any
// number of request goroutines Add while the debug endpoints List/Get.
type Store struct {
	mu   sync.Mutex
	max  int
	seq  int
	caps []*Capture // oldest first
}

// NewStore returns a store retaining the newest max captures
// (DefaultCaptures if max <= 0).
func NewStore(max int) *Store {
	if max <= 0 {
		max = DefaultCaptures
	}
	return &Store{max: max}
}

// Add assigns the capture its store id, persists it, and evicts the
// oldest capture beyond the bound. It returns the assigned id.
func (s *Store) Add(c *Capture) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	c.ID = fmt.Sprintf("f%06d", s.seq)
	c.EventCount = len(c.Events)
	s.caps = append(s.caps, c)
	if len(s.caps) > s.max {
		s.caps = append(s.caps[:0], s.caps[len(s.caps)-s.max:]...)
	}
	return c.ID
}

// List returns capture summaries (no event timelines), newest first.
func (s *Store) List() []Capture {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Capture, 0, len(s.caps))
	for i := len(s.caps) - 1; i >= 0; i-- {
		out = append(out, s.caps[i].Summary())
	}
	return out
}

// Get resolves a capture by store id, or — so an operator can go
// straight from a logged request_id to its timeline — by request id
// (newest match wins).
func (s *Store) Get(id string) (*Capture, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.caps) - 1; i >= 0; i-- {
		if c := s.caps[i]; c.ID == id || (c.RequestID != "" && c.RequestID == id) {
			return c, true
		}
	}
	return nil, false
}

// ByTrace returns every retained capture whose trace id matches,
// oldest first and with full event timelines — the local half of the
// fleet-wide /debug/flight/by-trace lookup. A proxied request leaves
// captures on two replicas sharing one trace id; a batch request
// leaves one per item, distinguished by SpanID.
func (s *Store) ByTrace(traceID string) []Capture {
	if traceID == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Capture
	for _, c := range s.caps {
		if c.TraceID == traceID {
			out = append(out, *c)
		}
	}
	return out
}

// Len reports how many captures the store holds.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.caps)
}

// htmlTmpl renders a capture as a self-contained timeline page: the
// request header block, then one row per event with an offset bar
// scaled to the capture window — the flight-recorder counterpart of
// the coverage profiler's WriteHTML.
var htmlTmpl = template.Must(template.New("flight").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>flight {{.C.ID}}</title>
<style>
body { font: 13px/1.45 -apple-system, system-ui, sans-serif; margin: 1.5em; color: #1a1a2e; }
h1 { font-size: 1.2em; } code { background: #f0f0f5; padding: 0 3px; border-radius: 3px; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 2px 8px; font: 12px ui-monospace, monospace; white-space: nowrap; }
th { border-bottom: 1px solid #ccc; }
tr:hover { background: #f5f7ff; }
.meta td { font-family: inherit; }
.bar { position: relative; width: 320px; height: 10px; background: #eef; }
.bar span { position: absolute; top: 0; height: 10px; background: #4464d0; min-width: 1px; }
.i .bar span { background: #d08a44; }
.bad td.name { color: #b0303c; }
.dim { color: #777; }
</style></head><body>
<h1>flight capture <code>{{.C.ID}}</code> — {{.C.Grammar}}{{if .C.Rule}} / {{.C.Rule}}{{end}}</h1>
<table class="meta">
<tr><td>trigger</td><td><b>{{.C.Trigger}}</b></td><td>status</td><td>{{.C.Status}}</td></tr>
<tr><td>request_id</td><td><code>{{.C.RequestID}}</code></td><td>trace_id</td><td><code>{{.C.TraceID}}</code></td></tr>
<tr><td>endpoint</td><td>{{.C.Endpoint}}</td><td>duration</td><td>{{.C.DurUS}}&micro;s</td></tr>
<tr><td>events</td><td>{{.C.EventCount}}{{if .C.Dropped}} (+{{.C.Dropped}} dropped){{end}}</td>
<td>backtracks</td><td>{{.C.Stats.BacktrackEvents}} ({{.C.Stats.BacktrackTokens}} tokens wasted)</td></tr>
</table>
<p class="dim">window {{.Span}}&micro;s &mdash; bars show each event's offset and duration within the capture.</p>
<table>
<tr><th>ts&micro;s</th><th>dur&micro;s</th><th>timeline</th><th>event</th><th>rule</th><th>dec</th><th>alt</th><th>k</th><th>throttle</th><th>detail</th></tr>
{{range .Rows}}<tr class="{{.Class}}"><td>{{.TS}}</td><td>{{.Dur}}</td>
<td><div class="bar"><span style="left:{{.Left}}%;width:{{.Width}}%"></span></div></td>
<td class="name">{{.Name}}</td><td>{{.Rule}}</td><td>{{.Dec}}</td><td>{{.Alt}}</td><td>{{.K}}</td><td>{{.Throttle}}</td><td>{{.Detail}}</td></tr>
{{end}}</table>
</body></html>
`))

type htmlRow struct {
	TS, Dur               int64
	Left, Width           float64
	Class                 string
	Name, Rule, Detail    string
	Dec, Alt, K, Throttle string
}

// WriteHTML renders the capture as a self-contained HTML timeline.
func (c *Capture) WriteHTML(w io.Writer) error {
	lo, hi := int64(0), int64(1)
	if len(c.Events) > 0 {
		lo = c.Events[0].TSUS
		hi = lo
		for _, e := range c.Events {
			if e.TSUS < lo {
				lo = e.TSUS
			}
			if end := e.TSUS + e.DurUS; end > hi {
				hi = end
			}
		}
		if hi == lo {
			hi = lo + 1
		}
	}
	span := hi - lo
	rows := make([]htmlRow, 0, len(c.Events))
	for _, e := range c.Events {
		row := htmlRow{
			TS:       e.TSUS - lo,
			Dur:      e.DurUS,
			Left:     100 * float64(e.TSUS-lo) / float64(span),
			Width:    100 * float64(e.DurUS) / float64(span),
			Name:     e.Name,
			Rule:     e.Rule,
			Throttle: e.Throttle,
			Detail:   e.Detail,
		}
		if row.Width < 0.3 {
			row.Width = 0.3
		}
		if e.Ph == string(obs.PhInstant) {
			row.Class = "i"
		}
		if !e.OK && (e.Name == "parse" || e.Name == "predict" || e.Name == "error") {
			row.Class = strings.TrimSpace(row.Class + " bad")
		}
		if e.Decision != nil {
			row.Dec = fmt.Sprint(*e.Decision)
		}
		if e.Alt != 0 {
			row.Alt = fmt.Sprint(e.Alt)
		}
		if e.K != 0 {
			row.K = fmt.Sprint(e.K)
		}
		rows = append(rows, row)
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].TS < rows[j].TS })
	return htmlTmpl.Execute(w, struct {
		C    *Capture
		Span int64
		Rows []htmlRow
	}{c, span, rows})
}
