package flight

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"llstar/internal/obs"
)

func ev(name string, ts time.Duration, n int64) obs.Event {
	return obs.Event{
		Name: name, Cat: obs.PhaseRuntime, Ph: obs.PhInstant,
		TS: ts, Decision: -1, N: n,
	}
}

func TestRecorderRingOverwrite(t *testing.T) {
	r := NewRecorder(4)
	if got := r.Len(); got != 0 {
		t.Fatalf("empty Len = %d", got)
	}
	for i := 0; i < 10; i++ {
		r.Emit(ev("e", time.Duration(i), int64(i)))
	}
	if got := r.Len(); got != 4 {
		t.Errorf("Len = %d, want 4", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d", len(evs))
	}
	// Oldest first: the last 4 of 10 emissions are 6,7,8,9.
	for i, e := range evs {
		if want := int64(6 + i); e.N != want {
			t.Errorf("event %d: N = %d, want %d", i, e.N, want)
		}
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 7; i++ {
		r.Emit(ev("e", 0, int64(i)))
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Errorf("after Reset: Len=%d Dropped=%d", r.Len(), r.Dropped())
	}
	r.Emit(ev("fresh", 0, 42))
	evs := r.Events()
	if len(evs) != 1 || evs[0].N != 42 {
		t.Errorf("after Reset events = %+v", evs)
	}
}

func TestRecorderDefaultCapacity(t *testing.T) {
	r := NewRecorder(0)
	if got := len(r.buf); got != DefaultEvents {
		t.Errorf("default capacity = %d, want %d", got, DefaultEvents)
	}
}

func TestEventRecordRoundTrip(t *testing.T) {
	in := obs.Event{
		Name: "predict", Cat: obs.PhaseRuntime, Ph: obs.PhSpan,
		TS: 1500 * time.Microsecond, Dur: 250 * time.Microsecond,
		Decision: 7, Rule: "expr", Alt: 2, K: 3, Depth: 1,
		Throttle: "cyclic", Backtracked: true, OK: true, N: 9,
		Detail: "d",
	}
	out := toEvent(toRecord(in))
	if out != in {
		t.Errorf("round trip:\n in  %+v\n out %+v", in, out)
	}

	// Decision -1 must survive as "no decision", not become 0.
	noDec := obs.Event{Name: "i", Ph: obs.PhInstant, Decision: -1}
	rec := toRecord(noDec)
	if rec.Decision != nil {
		t.Errorf("decision -1 serialized as %v", *rec.Decision)
	}
	if got := toEvent(rec).Decision; got != -1 {
		t.Errorf("decision round trip = %d, want -1", got)
	}
	data, _ := json.Marshal(rec)
	if strings.Contains(string(data), "decision") {
		t.Errorf("decision key leaked into JSON: %s", data)
	}
}

func TestTriggerEval(t *testing.T) {
	tr := Trigger{Slow: 100 * time.Millisecond, MinStatus: 500, BacktrackTokens: 1000}
	cases := []struct {
		status int
		dur    time.Duration
		st     Stats
		want   string
	}{
		{200, time.Millisecond, Stats{}, ""},
		{422, time.Millisecond, Stats{}, ""},
		{500, time.Millisecond, Stats{}, "status"},
		{504, time.Millisecond, Stats{}, "status"},
		{200, 100 * time.Millisecond, Stats{}, "slow"},
		{200, time.Millisecond, Stats{BacktrackTokens: 1000}, "wasted"},
		// status outranks slow.
		{500, time.Second, Stats{}, "status"},
	}
	for i, c := range cases {
		if got := tr.Eval(c.status, c.dur, c.st); got != c.want {
			t.Errorf("case %d: Eval = %q, want %q", i, got, c.want)
		}
	}
	// Disarmed trigger never fires.
	if got := (Trigger{}).Eval(500, time.Hour, Stats{BacktrackTokens: 1 << 40}); got != "" {
		t.Errorf("zero trigger fired: %q", got)
	}
	// BacktrackEvents arm.
	be := Trigger{BacktrackEvents: 3}
	if got := be.Eval(200, 0, Stats{BacktrackEvents: 3}); got != "backtrack" {
		t.Errorf("backtrack trigger = %q", got)
	}
}

func TestStoreBoundAndLookup(t *testing.T) {
	s := NewStore(3)
	var lastID string
	for i := 0; i < 5; i++ {
		lastID = s.Add(&Capture{RequestID: "req" + string(rune('a'+i)), Trigger: "slow"})
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	list := s.List()
	if len(list) != 3 {
		t.Fatalf("List len = %d", len(list))
	}
	// Newest first, and ids keep climbing past evictions.
	if list[0].ID != lastID || lastID != "f000005" {
		t.Errorf("newest = %q, want f000005", list[0].ID)
	}
	// Evicted captures are gone; retained ones resolve by store id and
	// by request id.
	if _, ok := s.Get("f000001"); ok {
		t.Error("evicted capture still resolvable")
	}
	if c, ok := s.Get("f000004"); !ok || c.RequestID != "reqd" {
		t.Errorf("Get by id = %+v, %v", c, ok)
	}
	if c, ok := s.Get("reqe"); !ok || c.ID != "f000005" {
		t.Errorf("Get by request id = %+v, %v", c, ok)
	}
	// Listings carry no timelines.
	for _, c := range list {
		if c.Events != nil {
			t.Error("List leaked event timeline")
		}
	}
}

func TestStoreByTrace(t *testing.T) {
	s := NewStore(8)
	trace := "0123456789abcdef0123456789abcdef"
	// A proxied parse (owner-side capture) plus a two-item batch on the
	// same trace, and one unrelated capture.
	s.Add(&Capture{TraceID: trace, Replica: "127.0.0.1:7001", SpanID: "aaaaaaaaaaaaaaaa", Trigger: "slow",
		Events: []EventRecord{{Name: "predict"}}})
	s.Add(&Capture{TraceID: trace, Replica: "127.0.0.1:7002", SpanID: "bbbbbbbbbbbbbbbb", Trigger: "slow"})
	s.Add(&Capture{TraceID: trace, Replica: "127.0.0.1:7002", SpanID: "cccccccccccccccc", Trigger: "slow"})
	s.Add(&Capture{TraceID: "ffffffffffffffffffffffffffffffff", Trigger: "status"})

	got := s.ByTrace(trace)
	if len(got) != 3 {
		t.Fatalf("ByTrace returned %d captures, want 3", len(got))
	}
	// Oldest first, full timelines retained, span ids distinct.
	if got[0].ID != "f000001" || got[0].Events == nil {
		t.Errorf("first capture = %+v", got[0].Summary())
	}
	spans := map[string]bool{}
	for _, c := range got {
		spans[c.SpanID] = true
	}
	if len(spans) != 3 {
		t.Errorf("span ids not distinct: %v", spans)
	}
	if s.ByTrace("") != nil {
		t.Error("empty trace id matched captures")
	}
	if s.ByTrace("deadbeefdeadbeefdeadbeefdeadbeef") != nil {
		t.Error("unknown trace id matched captures")
	}
}

func TestCaptureWriters(t *testing.T) {
	r := NewRecorder(8)
	r.Emit(obs.Event{Name: "predict", Cat: obs.PhaseRuntime, Ph: obs.PhSpan,
		TS: 10 * time.Microsecond, Dur: 5 * time.Microsecond, Decision: 1, Rule: "e", Alt: 2, K: 1})
	r.Emit(obs.Event{Name: "memo.hit", Cat: obs.PhaseRuntime, Ph: obs.PhInstant,
		TS: 20 * time.Microsecond, Decision: -1, Rule: "e", N: 7})
	events, dropped := r.Snapshot()
	c := &Capture{
		ID: "f000001", RequestID: "rid1", TraceID: "0123456789abcdef0123456789abcdef",
		Endpoint: "parse", Grammar: "expr", Rule: "e", Status: 504, Trigger: "status",
		Time: time.Now(), DurUS: 1234, EventCount: len(events), Dropped: dropped,
		Events: events,
	}

	var html bytes.Buffer
	if err := c.WriteHTML(&html); err != nil {
		t.Fatalf("WriteHTML: %v", err)
	}
	for _, want := range []string{"rid1", "0123456789abcdef0123456789abcdef", "predict", "memo.hit", "expr"} {
		if !strings.Contains(html.String(), want) {
			t.Errorf("HTML missing %q", want)
		}
	}

	var chrome bytes.Buffer
	if err := c.WriteChrome(&chrome); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(chrome.Bytes(), &arr); err != nil {
		t.Fatalf("chrome output not a JSON array: %v\n%s", err, chrome.String())
	}
	if len(arr) == 0 {
		t.Error("chrome output empty")
	}
}

func TestRecorderIsObsTracer(t *testing.T) {
	var tr obs.Tracer = NewRecorder(4)
	if obs.Active(tr) == nil {
		t.Error("recorder normalized away by Active")
	}
	if tr.Now() < 0 {
		t.Error("Now went backwards")
	}
}
