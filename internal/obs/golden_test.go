package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// goldenTrace is a fixed mixed workload: parallel analysis spans across
// three workers, a runtime prediction sequence with speculation and a
// resync, and a server request span carrying a request id — every
// event shape the Chrome exporter has to render. Timestamps are
// explicit, so the serialized bytes are fully deterministic.
func goldenTrace() []Event {
	us := func(n int64) time.Duration { return time.Duration(n) * time.Microsecond }
	return []Event{
		// Parallel analysis: one dfa.construct span per worker; worker N
		// must land in Chrome thread lane N+1.
		{Name: "analysis", Cat: PhaseAnalysis, Ph: PhSpan, TS: us(0), Dur: us(900), Decision: -1, OK: true, N: 3},
		{Name: "dfa.construct", Cat: PhaseAnalysis, Ph: PhSpan, TS: us(10), Dur: us(300), Decision: 0, Rule: "s", Throttle: "fixed", OK: true, N: 4, Worker: 0},
		{Name: "dfa.construct", Cat: PhaseAnalysis, Ph: PhSpan, TS: us(12), Dur: us(450), Decision: 1, Rule: "expr", Throttle: "cyclic", OK: true, N: 17, Worker: 1},
		{Name: "dfa.construct", Cat: PhaseAnalysis, Ph: PhSpan, TS: us(15), Dur: us(200), Decision: 2, Rule: "decl", Throttle: "backtrack", OK: false, N: 9, Worker: 2,
			Detail: "recursion overflow; falling back to backtracking"},
		// Runtime: a fixed prediction, a backtracking one with a nested
		// speculation, a memo hit, and a resync instant.
		{Name: "parse", Cat: PhaseRuntime, Ph: PhSpan, TS: us(1000), Dur: us(500), Decision: -1, Rule: "s", OK: true, N: 42},
		{Name: "predict", Cat: PhaseRuntime, Ph: PhSpan, TS: us(1010), Dur: us(3), Decision: 0, Rule: "s", Alt: 1, K: 1, Throttle: "fixed", OK: true},
		{Name: "speculate.alt", Cat: PhaseRuntime, Ph: PhSpan, TS: us(1020), Dur: us(40), Decision: 2, Rule: "decl", Alt: 2, K: 81, Depth: 1, Backtracked: true, OK: false},
		{Name: "predict", Cat: PhaseRuntime, Ph: PhSpan, TS: us(1065), Dur: us(50), Decision: 2, Rule: "decl", Alt: 1, K: 81, Throttle: "backtrack", Backtracked: true, OK: true},
		{Name: "memo.hit", Cat: PhaseRuntime, Ph: PhInstant, TS: us(1100), Decision: -1, Rule: "type", N: 7},
		{Name: "resync", Cat: PhaseRuntime, Ph: PhInstant, TS: us(1200), Decision: 3, Rule: "stmt", N: 2, Detail: "deleted 2 tokens"},
		// Server: the request span wrapping it all, request id in Detail.
		{Name: "server.parse", Cat: PhaseServer, Ph: PhSpan, TS: us(950), Dur: us(600), Decision: -1, OK: true, N: 200, Detail: "req-41d8cd98"},
	}
}

// TestChromeGoldenRoundTrip locks the Chrome trace_event encoding to a
// checked-in golden file and re-parses the output to verify the
// structural invariants a viewer depends on: event count and order,
// worker-to-lane assignment, span durations, and args. Regenerate with
//
//	UPDATE_GOLDEN=1 go test ./internal/obs -run TestChromeGoldenRoundTrip
func TestChromeGoldenRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw := NewChrome(&buf)
	for _, e := range goldenTrace() {
		tw.Emit(e)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, buf.Len())
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome encoding drifted from %s.\nIf the change is intentional, regenerate with UPDATE_GOLDEN=1.\ngot:\n%s", golden, buf.String())
	}

	// Round trip: the file must be one well-formed JSON array a trace
	// viewer can load.
	var got []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		S    string         `json:"s"`
		Args map[string]any `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("chrome output is not a JSON array: %v", err)
	}
	events := goldenTrace()
	if len(got) != len(events) {
		t.Fatalf("round trip lost events: %d in, %d out", len(events), len(got))
	}
	for i, e := range events {
		c := got[i]
		if c.Name != e.Name || c.Cat != string(e.Cat) || c.Ph != string(e.Ph) {
			t.Errorf("event %d: identity %s/%s/%s, want %s/%s/%c", i, c.Name, c.Cat, c.Ph, e.Name, e.Cat, e.Ph)
		}
		// Worker lanes: analysis worker N renders as thread N+1, so
		// parallel DFA construction gets one timeline row per worker.
		if c.TID != 1+e.Worker {
			t.Errorf("event %d (%s): tid = %d, want %d", i, e.Name, c.TID, 1+e.Worker)
		}
		if c.TS != float64(e.TS.Microseconds()) {
			t.Errorf("event %d (%s): ts = %v, want %d", i, e.Name, c.TS, e.TS.Microseconds())
		}
		if e.Ph == PhSpan && c.Dur != float64(e.Dur.Microseconds()) {
			t.Errorf("event %d (%s): dur = %v, want %d", i, e.Name, c.Dur, e.Dur.Microseconds())
		}
		if e.Ph == PhInstant && c.S != "t" {
			t.Errorf("event %d (%s): instant scope = %q, want t", i, e.Name, c.S)
		}
		if e.Detail != "" && c.Args["detail"] != e.Detail {
			t.Errorf("event %d (%s): args.detail = %v, want %q", i, e.Name, c.Args["detail"], e.Detail)
		}
	}
	// The server span's request id survives into the viewer's detail pane.
	if got[len(got)-1].Args["detail"] != "req-41d8cd98" {
		t.Errorf("server span lost its request id: %v", got[len(got)-1].Args)
	}
	// Monotonic file order is preserved: viewers sort by ts, but the
	// writer must not reorder what tracers emit.
	for i := 1; i < len(got); i++ {
		if got[i].Name == got[i-1].Name && got[i].TS < got[i-1].TS {
			t.Errorf("events %d/%d reordered", i-1, i)
		}
	}
}
