package obs

import (
	"sync"
	"testing"
	"time"
)

func TestEventLogRing(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Add(FleetEvent{Kind: EventReload, Grammar: string(rune('a' + i)), OK: true})
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	if l.Total() != 10 {
		t.Fatalf("Total = %d, want 10", l.Total())
	}
	ev := l.Events()
	if len(ev) != 4 {
		t.Fatalf("Events returned %d, want 4", len(ev))
	}
	// Newest first: seq 10, 9, 8, 7.
	for i, e := range ev {
		if want := int64(10 - i); e.Seq != want {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, want)
		}
		if e.Time.IsZero() {
			t.Errorf("event %d missing timestamp", i)
		}
	}
	if ev[0].Grammar != "j" || ev[3].Grammar != "g" {
		t.Errorf("ring order wrong: %q ... %q", ev[0].Grammar, ev[3].Grammar)
	}
}

func TestEventLogPreservesExplicitTime(t *testing.T) {
	l := NewEventLog(2)
	ts := time.Date(2026, 8, 7, 14, 3, 0, 0, time.UTC)
	l.Add(FleetEvent{Kind: EventPeerDown, Peer: "127.0.0.1:9", Time: ts})
	if got := l.Events()[0].Time; !got.Equal(ts) {
		t.Errorf("Time = %v, want %v", got, ts)
	}
}

// TestEventLogNilSafe pins the producer-side contract: every writer
// (cluster probes, registry reloads) calls Add unconditionally, so a
// nil log must be a silent no-op, not a panic.
func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Add(FleetEvent{Kind: EventPeerUp})
	if l.Events() != nil || l.Len() != 0 || l.Total() != 0 {
		t.Error("nil EventLog not inert")
	}
}

func TestEventLogConcurrent(t *testing.T) {
	l := NewEventLog(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Add(FleetEvent{Kind: EventArtifactFetch, OK: true})
				l.Events()
			}
		}()
	}
	wg.Wait()
	if l.Total() != 800 {
		t.Fatalf("Total = %d, want 800", l.Total())
	}
	ev := l.Events()
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq != ev[i-1].Seq-1 {
			t.Fatalf("seqs not contiguous newest-first: %d then %d", ev[i-1].Seq, ev[i].Seq)
		}
	}
}

// TestEventLogDisabledNoAlloc pins the cost contract the fleet event
// log shares with the tracer and flight recorder: when the log is off
// (a nil *EventLog — Config.EventLogSize < 0), producers scattered
// through the cluster and registry paths must cost a nil check and
// nothing else. A pre-sized histogram's Observe is likewise
// allocation-free, so the new per-endpoint latency series cannot leak
// allocations into the request path.
func TestEventLogDisabledNoAlloc(t *testing.T) {
	var off *EventLog
	ev := FleetEvent{Kind: EventReload, Grammar: "expr", OK: true}
	if n := testing.AllocsPerRun(200, func() { off.Add(ev) }); n != 0 {
		t.Errorf("nil EventLog.Add allocates %.1f per call, want 0", n)
	}
	h := NewMetrics().Histogram("llstar_test_latency_us", 100, 1000, 10000)
	if n := testing.AllocsPerRun(200, func() { h.Observe(512) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f per call, want 0", n)
	}
}
